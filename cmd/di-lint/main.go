// Command di-lint runs the repo's invariant analyzers (wirekind, epochpin,
// lockio, ctxflow, noalloc — see docs/ANALYZERS.md) over Go packages.
//
// Standalone:
//
//	go run ./cmd/di-lint ./...
//
// As a vet tool, speaking the cmd/go unitchecker protocol (-V=full
// handshake, then one JSON config file per package):
//
//	go install ./cmd/di-lint
//	go vet -vettool=$(go env GOPATH)/bin/di-lint ./...
//
// With -allocharness, instead of linting it prints a testing.AllocsPerRun
// skeleton for every //dimatch:noalloc function not yet covered by its
// package's alloc_pin_test.go.
//
// Exit status: 0 clean, 2 findings, 1 failure of the tool itself.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"os"
	"path/filepath"
	"strings"

	"dimatch/internal/analyzers"
	"dimatch/internal/analyzers/analysis"
	"dimatch/internal/analyzers/noalloc"
)

func main() {
	versionFlag := flag.String("V", "", "print version and exit (cmd/go vettool handshake)")
	flagsFlag := flag.Bool("flags", false, "print the tool's flag schema as JSON and exit (cmd/go vettool handshake)")
	allocHarness := flag.Bool("allocharness", false, "print AllocsPerRun pin-test skeletons for unpinned //dimatch:noalloc functions")
	flag.Parse()

	if *versionFlag != "" {
		// The exact shape cmd/go expects from a vet tool's -V=full output.
		fmt.Printf("di-lint version devel comments-go-here buildID=8e3a92f4c1d7b6509e3a92f4c1d7b650\n")
		return
	}
	if *flagsFlag {
		// cmd/go asks which analyzer flags the tool accepts; the suite has none
		// it wants forwarded, so the schema is empty.
		fmt.Println("[]")
		return
	}

	args := flag.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(runUnitchecker(args[0]))
	}
	if len(args) == 0 {
		args = []string{"./..."}
	}
	if *allocHarness {
		os.Exit(runAllocHarness(args))
	}
	os.Exit(runStandalone(args))
}

// runStandalone loads packages via the go tool and prints findings.
func runStandalone(patterns []string) int {
	pkgs, err := analysis.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "di-lint:", err)
		return 1
	}
	found := 0
	for _, pkg := range pkgs {
		diags, err := analysis.Run(pkg.Fset, pkg.Files, pkg.Pkg, pkg.Info, analyzers.All)
		if err != nil {
			fmt.Fprintln(os.Stderr, "di-lint:", err)
			return 1
		}
		for _, d := range diags {
			fmt.Fprintf(os.Stderr, "%s: %s (%s)\n", d.Position(pkg.Fset), d.Message, d.Analyzer)
			found++
		}
	}
	if found > 0 {
		fmt.Fprintf(os.Stderr, "di-lint: %d finding(s)\n", found)
		return 2
	}
	return 0
}

// vetConfig is the JSON config cmd/go hands a vet tool for each package.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runUnitchecker analyzes one package described by a vet config file.
func runUnitchecker(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "di-lint:", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "di-lint: parsing %s: %v\n", cfgPath, err)
		return 1
	}

	// cmd/go expects a facts file regardless of findings; the suite keeps no
	// cross-package facts, so an empty one is complete.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "di-lint:", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	exports := make(map[string]string, len(cfg.PackageFile))
	for path, file := range cfg.PackageFile {
		exports[path] = file
	}
	for path, canonical := range cfg.ImportMap {
		if file, ok := cfg.PackageFile[canonical]; ok {
			exports[path] = file
		}
	}

	pkg, err := analysis.CheckFiles(cfg.ImportPath, cfg.GoFiles, exports)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(os.Stderr, "di-lint:", err)
		return 1
	}
	diags, err := analysis.Run(pkg.Fset, pkg.Files, pkg.Pkg, pkg.Info, analyzers.All)
	if err != nil {
		fmt.Fprintln(os.Stderr, "di-lint:", err)
		return 1
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s (%s)\n", d.Position(pkg.Fset), d.Message, d.Analyzer)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

// runAllocHarness prints pin-test skeletons for annotated functions that no
// alloc_pin_test.go in their package mentions yet.
func runAllocHarness(patterns []string) int {
	pkgs, err := analysis.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "di-lint:", err)
		return 1
	}
	missing := 0
	for _, pkg := range pkgs {
		var dir, pkgName string
		var unpinned []string
		for _, f := range pkg.Files {
			dir = filepath.Dir(pkg.Fset.Position(f.Pos()).Filename)
			pkgName = f.Name.Name
			pins, _ := os.ReadFile(filepath.Join(dir, "alloc_pin_test.go"))
			for _, decl := range f.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || !noalloc.Annotated(fn) {
					continue
				}
				name := noalloc.DisplayName(fn)
				if !strings.Contains(string(pins), name) {
					unpinned = append(unpinned, name)
				}
			}
		}
		if len(unpinned) == 0 {
			continue
		}
		missing += len(unpinned)
		fmt.Printf("// %s: %d //dimatch:noalloc function(s) without an AllocsPerRun pin.\n", pkg.ImportPath, len(unpinned))
		fmt.Printf("// Complete and save as %s:\n\npackage %s\n\nimport \"testing\"\n\n", filepath.Join(dir, "alloc_pin_test.go"), pkgName)
		for _, name := range unpinned {
			testName := strings.NewReplacer("(", "", ")", "", "*", "", ".", "").Replace(name)
			fmt.Printf("func TestNoalloc%s(t *testing.T) {\n\t// arrange: build a warm receiver/arguments for %s\n\tif n := testing.AllocsPerRun(100, func() {\n\t\t// call %s here\n\t}); n != 0 {\n\t\tt.Fatalf(\"%s allocates %%v times per run; //dimatch:noalloc requires 0\", n)\n\t}\n}\n\n", testName, name, name, name)
		}
	}
	if missing > 0 {
		return 2
	}
	return 0
}
