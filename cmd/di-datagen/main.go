// Command di-datagen emits a synthetic city-scale CDR/CDL dataset — the
// substrate standing in for the paper's proprietary mobile-network data —
// as CSV on stdout.
//
// Usage:
//
//	di-datagen [-persons N] [-stations N] [-days N] [-seed N] -out cdr|cdl|patterns|persons
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"sort"

	"dimatch/internal/cdr"
)

func main() {
	var (
		persons  = flag.Int("persons", 310, "population size")
		stations = flag.Int("stations", 64, "number of base stations")
		days     = flag.Int("days", 2, "observation window in days")
		seed     = flag.Uint64("seed", 1, "generator seed")
		out      = flag.String("out", "cdr", "what to emit: cdr, cdl, patterns, persons")
	)
	flag.Parse()

	cfg := cdr.DefaultConfig()
	cfg.Persons = *persons
	cfg.Stations = *stations
	cfg.Days = *days
	cfg.Seed = *seed

	if err := emit(cfg, *out); err != nil {
		fmt.Fprintln(os.Stderr, "di-datagen:", err)
		os.Exit(1)
	}
}

func emit(cfg cdr.Config, out string) error {
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()

	switch out {
	case "cdr":
		rs, err := cdr.GenerateRecords(cfg)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, "caller,type,callee,station,day,start_sec,dur_sec")
		stations := make([]cdr.StationID, 0, len(rs.Records))
		for s := range rs.Records {
			stations = append(stations, s)
		}
		sort.Slice(stations, func(i, j int) bool { return stations[i] < stations[j] })
		for _, s := range stations {
			for _, r := range rs.Records[s] {
				fmt.Fprintf(w, "%d,%d,%d,%d,%d,%d,%d\n", r.Caller, r.Type, r.Callee, r.Station, r.Day, r.StartSec, r.DurSec)
			}
		}
	case "cdl":
		rs, err := cdr.GenerateRecords(cfg)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, "station,x_km,y_km")
		for _, c := range rs.Cells {
			fmt.Fprintf(w, "%d,%.2f,%.2f\n", c.Station, c.X, c.Y)
		}
	case "patterns":
		d, err := cdr.Generate(cfg)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, "station,person,pattern")
		for _, s := range d.StationIDs() {
			locals := d.StationLocals(s)
			ids := make([]cdr.PersonID, 0, len(locals))
			for p := range locals {
				ids = append(ids, p)
			}
			sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
			for _, p := range ids {
				fmt.Fprintf(w, "%d,%d,%q\n", s, p, fmt.Sprint(locals[p]))
			}
		}
	case "persons":
		d, err := cdr.Generate(cfg)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, "person,category,outlier,anchors")
		for _, p := range d.Persons {
			fmt.Fprintf(w, "%d,%s,%v,%q\n", p.ID, p.Category, p.Outlier, fmt.Sprint(p.Anchors))
		}
	default:
		return fmt.Errorf("unknown -out %q (want cdr, cdl, patterns or persons)", out)
	}
	return nil
}
