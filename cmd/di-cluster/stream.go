package main

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"dimatch"
)

// runStream is the streaming-ingest demo and CI's stream chaos smoke test:
// an empty replicated cluster, a durable pipeline streaming a warm cohort,
// then sustained rate-limited ingest with background searches during which
// one station is killed, a TTL pipeline whose cohort visibly expires, and a
// deliberately saturated shed-mode pipeline. The command exits non-zero if
// streamed patterns stop matching after the kill, if TTL eviction leaks or
// overreaches, or if the pipeline loses a copy it acknowledged.
func runStream(stationCount int, rate int, ttl, duration time.Duration, seed uint64) error {
	const (
		length     = 12
		warmCohort = 200
		ttlCohort  = 150
		shedLoad   = 2000
	)
	if stationCount < 2 {
		return fmt.Errorf("-stream needs at least 2 stations to survive a kill (got %d)", stationCount)
	}
	stations := make([]uint32, stationCount)
	for i := range stations {
		stations[i] = uint32(i)
	}
	// Exact matching (Epsilon 0) over synthetic patterns: recall below 1.0
	// can then only mean a lost copy, never Bloom noise.
	c, err := dimatch.NewEmptyCluster(dimatch.Options{
		Params:   dimatch.Params{Bits: 1 << 16, Hashes: 4, Samples: 4, Epsilon: 0, Seed: seed},
		MinScore: 1.0,
	}, stations, length)
	if err != nil {
		return err
	}
	defer c.Shutdown() //nolint:errcheck // demo teardown
	ctx := context.Background()

	pat := func(p dimatch.PersonID) dimatch.Pattern {
		rng := rand.New(rand.NewSource(int64(seed ^ uint64(p)*0x9e3779b97f4a7c15)))
		out := make(dimatch.Pattern, length)
		for i := range out {
			out[i] = int64(rng.Intn(1000))
		}
		out[0]++ // never all-zero: all-zero submissions are dropped by design
		return out
	}
	recallOf := func(ids []dimatch.PersonID) (float64, error) {
		hit := 0
		for start := 0; start < len(ids); start += 8 {
			end := start + 8
			if end > len(ids) {
				end = len(ids)
			}
			queries := make([]dimatch.Query, 0, end-start)
			for i, p := range ids[start:end] {
				queries = append(queries, dimatch.Query{
					ID:     dimatch.QueryID(i + 1),
					Locals: []dimatch.Pattern{pat(p)},
				})
			}
			out, err := c.Search(ctx, queries)
			if err != nil {
				return 0, err
			}
			for i, p := range ids[start:end] {
				for _, got := range out.Persons(dimatch.QueryID(i + 1)) {
					if got == p {
						hit++
						break
					}
				}
			}
		}
		return float64(hit) / float64(len(ids)), nil
	}

	// Phase 1 — durable pipeline: stream the warm cohort, flush, and require
	// full recall before any chaos. This is the healthy baseline the kill
	// must not dent.
	durable, err := c.Stream(dimatch.StreamOptions{Admission: dimatch.StreamBlock})
	if err != nil {
		return err
	}
	defer durable.Close() //nolint:errcheck // demo teardown
	warm := make([]dimatch.PersonID, warmCohort)
	for i := range warm {
		warm[i] = dimatch.PersonID(i + 1)
		if err := durable.Submit(ctx, warm[i], pat(warm[i])); err != nil {
			return err
		}
	}
	if err := durable.Flush(ctx); err != nil {
		return err
	}
	recall, err := recallOf(warm)
	if err != nil {
		return err
	}
	fmt.Printf("stream demo: %d stations, R=%d, warm cohort %d streamed, recall %.3f\n",
		stationCount, dimatch.DefaultReplication, warmCohort, recall)
	if recall < 1 {
		return fmt.Errorf("warm cohort recall %.3f before any failure — pipeline lost a copy", recall)
	}

	// Phase 2 — sustained ingest at the offered rate with background
	// searches, killing one station mid-window. Acked patterns must remain
	// retrievable afterwards: the retired shard re-keys its queue onto the
	// survivors and the settler tops replication back up.
	var (
		nextID    atomic.Uint64
		streamed  []dimatch.PersonID
		searchMu  sync.Mutex
		searches  int
		wg        sync.WaitGroup
		stop      = make(chan struct{})
		bgErr     error
		bandStart = uint64(1_000_000)
	)
	nextID.Store(bandStart)
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(int64(seed) + 17))
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := recallOf([]dimatch.PersonID{warm[rng.Intn(len(warm))]}); err != nil {
				bgErr = err
				return
			}
			searchMu.Lock()
			searches++
			searchMu.Unlock()
		}
	}()

	victim := stations[stationCount-1]
	killAt := time.NewTimer(duration / 2)
	defer killAt.Stop()
	killed := false
	start := time.Now()
	deadline := start.Add(duration)
	ticker := time.NewTicker(5 * time.Millisecond)
	defer ticker.Stop()
	burst := rate / 200 // submissions per 5ms tick
	if burst < 1 {
		burst = 1
	}
	for time.Now().Before(deadline) {
		select {
		case <-killAt.C:
			if err := c.KillStation(victim); err != nil {
				return err
			}
			killed = true
			fmt.Printf("  killed station %d mid-ingest\n", victim)
		case <-ticker.C:
			for i := 0; i < burst; i++ {
				p := dimatch.PersonID(nextID.Add(1))
				if err := durable.Submit(ctx, p, pat(p)); err != nil {
					return fmt.Errorf("sustained submit: %w", err)
				}
				streamed = append(streamed, p)
			}
		}
	}
	if !killed {
		if err := c.KillStation(victim); err != nil {
			return err
		}
		fmt.Printf("  killed station %d after the window\n", victim)
	}
	if err := durable.Flush(ctx); err != nil {
		return err
	}
	elapsed := time.Since(start)
	close(stop)
	wg.Wait()
	if bgErr != nil {
		return fmt.Errorf("background search: %w", bgErr)
	}
	rep := durable.Report()
	fmt.Printf("sustained: %d accepted in %.2fs (%.0f patterns/sec offered %d/s), %d flushes, %d rerouted, %d lost, %d searches alongside\n",
		rep.Accepted, elapsed.Seconds(), float64(len(streamed))/elapsed.Seconds(), rate,
		rep.Flushes, rep.Rerouted, rep.FlushFailures, searches)
	if rep.FlushFailures != 0 {
		return fmt.Errorf("pipeline abandoned %d acked copies", rep.FlushFailures)
	}
	// Recall must hold across the kill for both cohorts. Sample the streamed
	// band rather than searching all of it.
	count := 100
	if len(streamed) < count {
		count = len(streamed)
	}
	sample := make([]dimatch.PersonID, 0, count)
	for i := 0; i < count; i++ {
		sample = append(sample, streamed[i*len(streamed)/count])
	}
	for phase, ids := range map[string][]dimatch.PersonID{"warm": warm, "streamed": sample} {
		recall, err := recallOf(ids)
		if err != nil {
			return err
		}
		fmt.Printf("  %s cohort recall after kill: %.3f\n", phase, recall)
		if recall < 1 {
			return fmt.Errorf("%s cohort recall %.3f after KillStation — replicas did not cover the failure", phase, recall)
		}
	}

	// Phase 3 — TTL churn: a second pipeline whose cohort expires. Recall
	// over the cohort goes 1.0 -> 0.0 while the durable population is
	// untouched.
	churner, err := c.Stream(dimatch.StreamOptions{Admission: dimatch.StreamBlock, TTL: ttl})
	if err != nil {
		return err
	}
	cohort := make([]dimatch.PersonID, ttlCohort)
	for i := range cohort {
		cohort[i] = dimatch.PersonID(uint64(2_000_000) + uint64(i))
		if err := churner.Submit(ctx, cohort[i], pat(cohort[i])); err != nil {
			churner.Close() //nolint:errcheck // demo teardown
			return err
		}
	}
	if err := churner.Flush(ctx); err != nil {
		churner.Close() //nolint:errcheck // demo teardown
		return err
	}
	before, err := recallOf(cohort)
	if err != nil {
		churner.Close() //nolint:errcheck // demo teardown
		return err
	}
	evictDeadline := time.Now().Add(10*ttl + 5*time.Second)
	for churner.Report().TTLEvictions < uint64(ttlCohort) {
		if time.Now().After(evictDeadline) {
			churner.Close() //nolint:errcheck // demo teardown
			return fmt.Errorf("TTL evicted only %d of %d within the deadline", churner.Report().TTLEvictions, ttlCohort)
		}
		time.Sleep(ttl / 10)
	}
	if err := churner.Close(); err != nil {
		return err
	}
	after, err := recallOf(cohort)
	if err != nil {
		return err
	}
	staticRecall, err := recallOf(warm)
	if err != nil {
		return err
	}
	fmt.Printf("ttl churn: %d patterns at ttl %v: recall before %.3f, after expiry %.3f (static cohort %.3f)\n",
		ttlCohort, ttl, before, after, staticRecall)
	if before < 1 || after != 0 || staticRecall < 1 {
		return fmt.Errorf("ttl churn gate failed: before %.3f after %.3f static %.3f", before, after, staticRecall)
	}

	// Phase 4 — shed admission: a deliberately tiny pipeline under burst
	// load must drop (and account for) work instead of blocking.
	shedder, err := c.Stream(dimatch.StreamOptions{
		Admission: dimatch.StreamShed, Encoders: 1, QueueCap: 4, FlushBatch: 1, Replication: 1,
	})
	if err != nil {
		return err
	}
	var workers sync.WaitGroup
	for w := 0; w < 8; w++ {
		workers.Add(1)
		go func(w int) {
			defer workers.Done()
			for i := 0; i < shedLoad/8; i++ {
				p := dimatch.PersonID(uint64(3_000_000) + uint64(w*shedLoad+i))
				if err := shedder.Submit(ctx, p, pat(p)); err != nil && !errors.Is(err, dimatch.ErrOverloaded) {
					return
				}
			}
		}(w)
	}
	workers.Wait()
	if err := shedder.Close(); err != nil {
		return err
	}
	srep := shedder.Report()
	exact := srep.Accepted+srep.Shed+srep.Rejected == srep.Submitted
	fmt.Printf("shed admission: %d submitted, %d accepted, %d shed (%.1f%%), accounting exact: %v\n",
		srep.Submitted, srep.Accepted, srep.Shed,
		100*float64(srep.Shed)/float64(srep.Submitted), exact)
	if srep.Shed == 0 || !exact {
		return fmt.Errorf("shed gate failed: %+v", srep)
	}

	// The durable pipeline is still open: cluster stats carry its health.
	st, err := c.Stats(ctx)
	if err != nil {
		return err
	}
	if st.Stream != nil {
		fmt.Printf("pipeline health: %d accepted, %d flushes across %d station shards (epoch %d)\n",
			st.Stream.Accepted, st.Stream.Flushes, len(st.Stream.Stations), st.Epoch)
	}
	if err := durable.Close(); err != nil {
		return err
	}
	fmt.Println("stream chaos smoke passed: acked patterns survived the kill, TTL evicted exactly its cohort, shed mode dropped instead of blocking")
	return nil
}
