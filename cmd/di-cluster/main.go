// Command di-cluster runs a genuinely distributed DI-matching deployment:
// one process per node, talking over TCP.
//
// Start the data center first, then one process per station (both sides
// regenerate the same synthetic city from the shared seed, so stations know
// their local data and the center knows the pattern length):
//
//	di-cluster -role center -listen 127.0.0.1:4620 -stations 4 &
//	di-cluster -role station -connect 127.0.0.1:4620 -stations 4 -station 0 &
//	di-cluster -role station -connect 127.0.0.1:4620 -stations 4 -station 1 &
//	...
//
// -persons, -seed and -stations must match on every node: they define the
// shared city and its sharding.
//
// The center waits for all stations, searches for customers similar to a
// reference person, prints the ranked answer plus cost accounting, and
// shuts the stations down.
//
// With -churn the command instead runs a single-process live-cluster demo
// of the lifecycle API: it starts a cluster missing one station, measures
// precision/recall, then — while background searches keep running — grows
// the cluster with AddStation, ingests a brand-new person, evicts them
// again and finally removes the station, printing precision/recall after
// every step.
//
// With -churn -replicas N the demo runs the replicated placement layer
// instead: an empty cluster, every person's global pattern placed onto N
// rendezvous-hashed replicas, then — with background searches in flight —
// one station is killed and another removed. The command asserts that
// recall never drops below the healthy cluster's value (the replica
// guarantee) and exits non-zero if it does, which makes it CI's replication
// chaos smoke test.
//
// With -stream the command runs the streaming-ingest demo instead: an empty
// replicated cluster fed through Cluster.Stream pipelines. It streams a warm
// cohort, sustains -rate patterns/sec for -window while background searches
// run and a station is killed mid-ingest, expires a TTL cohort (-ttl) and
// shows recall before/after the churn, and saturates a tiny shed-mode
// pipeline to demonstrate accounted load-shedding. It exits non-zero unless
// every acknowledged pattern survives the kill with recall 1.0 — CI's
// streaming chaos smoke test.
//
// With -tiers 2 the command runs the hierarchical-routing chaos smoke
// instead: a two-tier deployment where region coordinators (dimatch.
// ServeRegion) sit between the center and its stations over real TCP links.
// Every person is placed at R>=2 across regions, tree-routed searches run
// against a full fan-out reference (results must match exactly), and one
// region coordinator is killed mid-search — taking its whole subtree with
// it. Cross-region replicas must hold recall at the healthy value; any drop
// or result divergence exits non-zero, which makes this CI's hierarchy
// chaos smoke test. -fanout sets the digest-tree fanout at every
// coordinator (0 keeps the library default); see docs/ROUTING.md for how to
// choose it.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"sync"
	"time"

	"dimatch"
)

func main() {
	var (
		role      = flag.String("role", "center", "node role: center or station")
		listen    = flag.String("listen", "127.0.0.1:4620", "center: address to listen on")
		connect   = flag.String("connect", "127.0.0.1:4620", "station: center address to dial")
		stations  = flag.Int("stations", 4, "center: number of stations to wait for")
		station   = flag.Uint("station", 0, "station: this node's station index (0-based)")
		persons   = flag.Int("persons", 310, "synthetic city population")
		seed      = flag.Uint64("seed", 1, "synthetic city seed (must match across nodes)")
		ref       = flag.Uint64("ref", 0, "center: reference person to search for")
		topK      = flag.Int("topk", 10, "center: result size")
		strategy  = flag.String("strategy", "wbf", "center: search strategy (naive, bf, wbf)")
		queries   = flag.Int("queries", 1, "center: total queries in the search batch (the reference person, padded with further references)")
		batch     = flag.Int("batch", 0, "center: WithBatching bound: 0 packs all queries into one wire exchange per station, 1 sends legacy per-query frames, n>1 splits into rounds of n")
		routing   = flag.String("routing", "summary", "center: fan-out routing mode: summary (prune stations via cached summaries) or full (classic every-station fan-out)")
		timeout   = flag.Duration("timeout", time.Minute, "center: per-search deadline (0 for none)")
		churn     = flag.Bool("churn", false, "run the in-process live-mutation demo (ignores -role)")
		replicas  = flag.Int("replicas", 0, "with -churn: run the replicated-placement chaos demo at this replication factor (0 keeps the station-addressed demo)")
		stream    = flag.Bool("stream", false, "run the in-process streaming-ingest demo and chaos smoke (ignores -role)")
		rate      = flag.Int("rate", 20000, "with -stream: offered ingest rate in patterns/sec")
		ttl       = flag.Duration("ttl", 1500*time.Millisecond, "with -stream: pattern time-to-live for the churn phase")
		window    = flag.Duration("window", 2*time.Second, "with -stream: sustained-ingest window")
		storeKind = flag.String("store", "memory", "station: resident store backend: memory or wal")
		dir       = flag.String("dir", "", "station: WAL store directory (required with -store wal)")
		empty     = flag.Bool("empty", false, "station: start with no local data (residents arrive via recovery and placement)")
		recovery  = flag.Bool("recover", false, "run the kill-9 station-recovery chaos smoke (ignores -role)")
		tiers     = flag.Int("tiers", 1, "deployment depth: 1 is flat; 2 runs the hierarchical chaos smoke (region coordinators between center and stations, ignores -role)")
		fanout    = flag.Int("fanout", 0, "digest-tree fanout at every coordinator (0 uses the library default)")
	)
	flag.Parse()

	cfg := dimatch.DefaultCityConfig()
	cfg.Persons = *persons
	cfg.Seed = *seed

	var err error
	if *tiers > 1 {
		if *tiers > 2 {
			fmt.Fprintln(os.Stderr, "di-cluster: -tiers supports 1 (flat) or 2 (regions); deeper stacks nest ServeRegion the same way")
			os.Exit(1)
		}
		if err := runHierarchyChurn(cfg, *replicas, *fanout); err != nil {
			fmt.Fprintln(os.Stderr, "di-cluster:", err)
			os.Exit(1)
		}
		return
	}
	if *recovery {
		if err := runRecoveryChurn(cfg, *dir); err != nil {
			fmt.Fprintln(os.Stderr, "di-cluster:", err)
			os.Exit(1)
		}
		return
	}
	if *stream {
		if err := runStream(*stations, *rate, *ttl, *window, *seed); err != nil {
			fmt.Fprintln(os.Stderr, "di-cluster:", err)
			os.Exit(1)
		}
		return
	}
	if *churn {
		run := runChurn
		if *replicas > 0 {
			run = func(cfg dimatch.CityConfig) error { return runReplicatedChurn(cfg, *replicas) }
		}
		if err := run(cfg); err != nil {
			fmt.Fprintln(os.Stderr, "di-cluster:", err)
			os.Exit(1)
		}
		return
	}
	switch *role {
	case "center":
		var strat dimatch.Strategy
		strat, err = dimatch.ParseStrategy(*strategy)
		var route dimatch.RoutingMode
		if err == nil {
			route, err = dimatch.ParseRoutingMode(*routing)
		}
		if err == nil {
			err = runCenter(cfg, *listen, *stations, dimatch.PersonID(*ref), *topK, strat, *timeout, *queries, *batch, route)
		}
	case "station":
		err = runStation(cfg, *connect, uint32(*station), *stations, *storeKind, *dir, *empty)
	default:
		err = fmt.Errorf("unknown role %q", *role)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "di-cluster:", err)
		os.Exit(1)
	}
}

// runCenter accepts station links, runs one WBF search and shuts down.
// Stations identify themselves by sending their index as the first byte
// sequence of the demo protocol — here simplified: accept order must match
// station start order, so start stations 0..n-1 in sequence.
func runCenter(cfg dimatch.CityConfig, listenAddr string, stationCount int, ref dimatch.PersonID, topK int, strat dimatch.Strategy, timeout time.Duration, queryCount, batch int, routing dimatch.RoutingMode) error {
	city, err := dimatch.GenerateCity(cfg)
	if err != nil {
		return err
	}
	groups := stationGroups(city, stationCount)

	var down, up dimatch.Meter
	ln, err := dimatch.Listen(listenAddr, &down, &up)
	if err != nil {
		return err
	}
	defer ln.Close()
	fmt.Printf("center: listening on %s for %d stations\n", ln.Addr(), stationCount)

	links := make(map[uint32]dimatch.Link, stationCount)
	for i := 0; i < stationCount; i++ {
		link, err := ln.Accept()
		if err != nil {
			return err
		}
		links[uint32(i)] = link
		fmt.Printf("center: station %d connected (%d persons locally)\n", i, len(groups[uint32(i)]))
	}

	c, err := dimatch.NewClusterWithLinks(dimatch.Options{
		Params:   dimatch.Params{Samples: 8, Epsilon: 1, Seed: cfg.Seed, PositionSalted: true},
		MinScore: 0.9,
		TopK:     topK,
	}, links, city.Length(), &down, &up)
	if err != nil {
		return err
	}
	defer c.Shutdown() //nolint:errcheck // demo teardown

	ctx := context.Background()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	searchQueries := centerQueries(city, ref, queryCount)
	out, err := c.Search(ctx, searchQueries,
		dimatch.WithStrategy(strat), dimatch.WithTopK(topK), dimatch.WithBatching(batch),
		dimatch.WithRouting(routing))
	if err != nil {
		return err
	}
	fmt.Printf("center: %s top-%d persons similar to %d (%d queries in the batch):\n",
		strat, topK, ref, len(searchQueries))
	for _, r := range out.PerQuery[1] {
		fmt.Printf("  person %-6d weight %.3f (%d stations)\n", r.Person, r.Score(), r.Stations)
	}
	fmt.Printf("center: dissemination %d B / %d msgs, reports %d B / %d msgs, %d batched rounds, elapsed %v\n",
		out.Cost.BytesDown, out.Cost.MessagesDown, out.Cost.BytesUp, out.Cost.MessagesUp,
		out.Cost.Batches, out.Cost.Elapsed)
	fmt.Printf("center: routing %s: %d stations pruned, %d summary refreshes (%d B)\n",
		routing, out.Cost.StationsPruned, out.Cost.SummaryRefreshes,
		out.Cost.SummaryBytesDown+out.Cost.SummaryBytesUp)
	return nil
}

// centerQueries builds the search batch: the reference person's query plus
// up to n-1 further references drawn across the city's categories — the
// multi-tenant load the batched pipeline amortizes into one exchange per
// station.
func centerQueries(city *dimatch.City, ref dimatch.PersonID, n int) []dimatch.Query {
	queries := []dimatch.Query{dimatch.QueryFromPerson(city, 1, ref)}
	id := dimatch.QueryID(2)
	for _, cat := range dimatch.Categories() {
		for _, p := range city.PersonsInCategory(cat) {
			if len(queries) >= n {
				return queries
			}
			if dimatch.PersonID(p) == ref {
				continue
			}
			queries = append(queries, dimatch.QueryFromPerson(city, id, dimatch.PersonID(p)))
			id++
		}
	}
	return queries
}

// runStation serves one station node. With -empty it starts with no local
// data (residents arrive via store recovery and center placement); otherwise
// it regenerates the city and takes its shard. With -store wal the resident
// store is durable: every acked mutation lands in the WAL directory before
// the ack, and a restart from the same directory recovers it.
func runStation(cfg dimatch.CityConfig, connectAddr string, index uint32, stationCount int, storeKind, dir string, empty bool) error {
	var locals map[dimatch.PersonID]dimatch.Pattern
	if !empty {
		city, err := dimatch.GenerateCity(cfg)
		if err != nil {
			return err
		}
		groups := stationGroups(city, stationCount)
		locals = groups[index]
		if len(locals) == 0 {
			return fmt.Errorf("station %d has no local data (only %d shards)", index, stationCount)
		}
	}

	var st dimatch.Store
	switch storeKind {
	case "memory":
	case "wal":
		if dir == "" {
			return fmt.Errorf("station %d: -store wal needs -dir", index)
		}
		var err error
		st, err = dimatch.OpenWALStore(dir, dimatch.WALOptions{})
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown store backend %q (memory or wal)", storeKind)
	}

	var up dimatch.Meter
	link, err := dimatch.Dial(connectAddr, &up, nil)
	if err != nil {
		return err
	}
	fmt.Printf("station %d: connected, serving %d local patterns (store %s)\n", index, len(locals), storeKind)
	if st != nil {
		err = dimatch.ServeStoredStation(index, locals, link, st)
	} else {
		err = dimatch.ServeStation(index, locals, link)
	}
	if err != nil {
		return err
	}
	fmt.Printf("station %d: shut down (sent %d B of reports)\n", index, up.Bytes())
	return nil
}

// runChurn is the live-cluster demo: one process, real mutations, searches
// in flight the whole time.
func runChurn(cfg dimatch.CityConfig) error {
	city, err := dimatch.GenerateCity(cfg)
	if err != nil {
		return err
	}
	data := dimatch.StationData(city)

	ref, ok := dimatch.CleanReference(city, dimatch.OfficeWorker)
	if !ok {
		return fmt.Errorf("no clean reference in category %v", dimatch.OfficeWorker)
	}
	relevant := dimatch.RelevantSet(city, ref)
	query := dimatch.QueryFromPerson(city, 1, ref)

	// Hold out the station carrying the most relevant persons' pieces: its
	// absence visibly dents recall, its arrival visibly restores it.
	heldOut, best := uint32(0), -1
	for s, locals := range data {
		n := 0
		for _, p := range relevant {
			if _, ok := locals[p]; ok {
				n++
			}
		}
		if n > best {
			heldOut, best = s, n
		}
	}
	initial := make(map[uint32]map[dimatch.PersonID]dimatch.Pattern, len(data)-1)
	for s, locals := range data {
		if s != heldOut {
			initial[s] = locals
		}
	}

	// TopK 0 returns every qualified person: the demo's precision/recall
	// then reflect the cluster's contents, not a ranking cutoff.
	c, err := dimatch.NewCluster(dimatch.Options{
		Params:   dimatch.Params{Samples: 8, Epsilon: 1, Seed: cfg.Seed, PositionSalted: true},
		MinScore: 0.9,
		Verify:   true,
	}, initial)
	if err != nil {
		return err
	}
	defer c.Shutdown() //nolint:errcheck // demo teardown
	ctx := context.Background()

	report := func(phase string) error {
		out, err := c.Search(ctx, []dimatch.Query{query})
		if err != nil {
			return err
		}
		conf := dimatch.Evaluate(out.Persons(1), relevant)
		fmt.Printf("%-28s stations=%-3d precision=%.3f recall=%.3f (failed=%d)\n",
			phase, c.Stations(), conf.Precision(), conf.Recall(), out.Cost.StationsFailed)
		return nil
	}

	fmt.Printf("churn demo: %d persons, %d stations, station %d held out (%d relevant pieces)\n",
		cfg.Persons, len(data), heldOut, best)
	if err := report("before churn:"); err != nil {
		return err
	}

	// Background searches run across every mutation below.
	var (
		wg       sync.WaitGroup
		stop     = make(chan struct{})
		searches int
		bgErr    error
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := c.Search(ctx, []dimatch.Query{query}); err != nil {
				bgErr = err
				return
			}
			searches++
		}
	}()

	// Grow: the held-out station joins the running cluster.
	if err := c.AddStation(ctx, heldOut, data[heldOut]); err != nil {
		return err
	}
	if err := report("after AddStation:"); err != nil {
		return err
	}

	// Ingest: a newcomer cloned from the reference appears at the
	// reference's stations; a search for the reference pattern now also
	// retrieves them.
	newcomer := dimatch.PersonID(uint64(cfg.Persons) + 1_000_000)
	refLocals := dimatch.PersonLocals(city, ref)
	for s, l := range refLocals {
		if err := c.Ingest(ctx, s, map[dimatch.PersonID]dimatch.Pattern{newcomer: l.Clone()}); err != nil {
			return err
		}
	}
	out, err := c.Search(ctx, []dimatch.Query{query})
	if err != nil {
		return err
	}
	got := false
	for _, p := range out.Persons(1) {
		got = got || p == newcomer
	}
	fmt.Printf("%-28s newcomer retrieved=%v\n", "after Ingest:", got)

	// Evict the newcomer everywhere; they must disappear.
	for s := range refLocals {
		if err := c.Evict(ctx, s, []dimatch.PersonID{newcomer}); err != nil {
			return err
		}
	}
	out, err = c.Search(ctx, []dimatch.Query{query})
	if err != nil {
		return err
	}
	got = false
	for _, p := range out.Persons(1) {
		got = got || p == newcomer
	}
	fmt.Printf("%-28s newcomer retrieved=%v\n", "after Evict:", got)

	// Shrink: the station leaves again.
	if err := c.RemoveStation(ctx, heldOut); err != nil {
		return err
	}
	if err := report("after RemoveStation:"); err != nil {
		return err
	}

	close(stop)
	wg.Wait()
	if bgErr != nil {
		return fmt.Errorf("background search: %w", bgErr)
	}
	st, err := c.Stats(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("ran %d background searches during churn; final stats: %d residents, %d B across %d stations (epoch %d)\n",
		searches, st.TotalResidents(), st.TotalStorageBytes(), len(st.Stations), st.Epoch)
	return nil
}

// runReplicatedChurn is the replicated-placement chaos demo: an empty
// cluster, every person's global pattern placed at the given replication
// factor, then a station killed and another removed while background
// searches run. It returns an error — and the process exits non-zero — if
// recall ever drops below the healthy cluster's value, so CI can use it as
// the replication smoke test.
func runReplicatedChurn(cfg dimatch.CityConfig, replicas int) error {
	city, err := dimatch.GenerateCity(cfg)
	if err != nil {
		return err
	}
	stations := make([]uint32, 0, len(city.StationIDs()))
	for _, s := range city.StationIDs() {
		stations = append(stations, uint32(s))
	}

	c, err := dimatch.NewEmptyCluster(dimatch.Options{
		Params:   dimatch.Params{Samples: 8, Epsilon: 1, Seed: cfg.Seed, PositionSalted: true},
		MinScore: 0.9,
	}, stations, city.Length())
	if err != nil {
		return err
	}
	defer c.Shutdown() //nolint:errcheck // demo teardown
	ctx := context.Background()

	globals := dimatch.PersonGlobals(city)
	if err := c.Place(ctx, globals, dimatch.WithReplication(replicas)); err != nil {
		return err
	}
	st, err := c.Stats(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("replication demo: %d persons placed at R=%d across %d stations (%d replicas resident)\n",
		c.Placed(), replicas, len(stations), st.TotalResidents())

	ref, ok := dimatch.CleanReference(city, dimatch.OfficeWorker)
	if !ok {
		return fmt.Errorf("no clean reference in category %v", dimatch.OfficeWorker)
	}
	relevant := dimatch.RelevantSet(city, ref)
	query := dimatch.QueryFromPerson(city, 1, ref)

	recallAt := func(phase string) (float64, error) {
		out, err := c.Search(ctx, []dimatch.Query{query})
		if err != nil {
			return 0, err
		}
		conf := dimatch.Evaluate(out.Persons(1), relevant)
		fmt.Printf("%-24s stations=%-3d precision=%.3f recall=%.3f (failed=%d)\n",
			phase, c.Stations(), conf.Precision(), conf.Recall(), out.Cost.StationsFailed)
		return conf.Recall(), nil
	}
	healthy, err := recallAt("healthy:")
	if err != nil {
		return err
	}

	// Background searches run across every failure below.
	var (
		wg       sync.WaitGroup
		stop     = make(chan struct{})
		searches int
		bgErr    error
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := c.Search(ctx, []dimatch.Query{query}); err != nil {
				bgErr = err
				return
			}
			searches++
		}
	}()

	assertHeld := func(phase string, recall float64) error {
		if recall < healthy {
			return fmt.Errorf("%s recall %.3f dropped below healthy %.3f — replicas did not cover the failure",
				phase, recall, healthy)
		}
		return nil
	}

	// Kill one station mid-run: its replicas cover the searches in flight,
	// and the kill re-replicates its placements onto the survivors.
	if err := c.KillStation(stations[0]); err != nil {
		return err
	}
	recall, err := recallAt("after KillStation:")
	if err != nil {
		return err
	}
	if err := assertHeld("after KillStation", recall); err != nil {
		return err
	}

	// Remove another station deliberately: same guarantee through the
	// planned-departure path.
	if err := c.RemoveStation(ctx, stations[1]); err != nil {
		return err
	}
	recall, err = recallAt("after RemoveStation:")
	if err != nil {
		return err
	}
	if err := assertHeld("after RemoveStation", recall); err != nil {
		return err
	}

	close(stop)
	wg.Wait()
	if bgErr != nil {
		return fmt.Errorf("background search: %w", bgErr)
	}

	rep, err := c.Rebalance(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("ran %d background searches through the failures; reconcile check: %d placed, %d to copy, %d lost\n",
		searches, rep.Placed, rep.Copied, rep.Lost)
	if rep.Copied != 0 || rep.Lost != 0 {
		return fmt.Errorf("reconcile check found residual work (%d to copy, %d lost) — self-healing incomplete", rep.Copied, rep.Lost)
	}
	fmt.Printf("replica guarantee held: recall never dropped below the healthy value %.3f\n", healthy)
	return nil
}

// runRecoveryChurn is the kill-9 station-recovery chaos smoke: a two-station
// TCP cluster where station 1 runs a WAL-backed resident store in a real
// subprocess. Every person is placed at R=2, the durable station is killed
// with SIGKILL (no shutdown handshake, no store flush), removed, and then
// relaunched from the same WAL directory. The relaunch must recover its
// residents locally — the rejoin may only ship the delta placed while it was
// down, never a full re-replication — and recall must match the healthy
// cluster throughout. Any violation exits non-zero, which makes this CI's
// durability chaos smoke test.
func runRecoveryChurn(cfg dimatch.CityConfig, dir string) error {
	if dir == "" {
		tmp, err := os.MkdirTemp("", "di-cluster-recover-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	}
	self, err := os.Executable()
	if err != nil {
		return err
	}
	city, err := dimatch.GenerateCity(cfg)
	if err != nil {
		return err
	}

	var down, up dimatch.Meter
	ln, err := dimatch.Listen("127.0.0.1:0", &down, &up)
	if err != nil {
		return err
	}
	defer ln.Close()

	const walStation = 1
	spawn := func(id uint32, walDir string) (*exec.Cmd, dimatch.Link, error) {
		args := []string{"-role", "station", "-connect", ln.Addr(), "-station", fmt.Sprint(id), "-empty"}
		if walDir != "" {
			args = append(args, "-store", "wal", "-dir", walDir)
		}
		cmd := exec.Command(self, args...)
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			return nil, nil, err
		}
		link, err := ln.Accept()
		if err != nil {
			_ = cmd.Process.Kill()
			_ = cmd.Wait()
			return nil, nil, err
		}
		return cmd, link, nil
	}
	cmds := make(map[uint32]*exec.Cmd, 2)
	defer func() {
		for _, cmd := range cmds {
			_ = cmd.Process.Kill()
			_ = cmd.Wait()
		}
	}()

	links := make(map[uint32]dimatch.Link, 2)
	for id := uint32(0); id < 2; id++ {
		walDir := ""
		if id == walStation {
			walDir = dir
		}
		cmd, link, err := spawn(id, walDir)
		if err != nil {
			return err
		}
		cmds[id], links[id] = cmd, link
	}

	c, err := dimatch.NewClusterWithLinks(dimatch.Options{
		Params:   dimatch.Params{Samples: 8, Epsilon: 1, Seed: cfg.Seed, PositionSalted: true},
		MinScore: 0.9,
	}, links, city.Length(), &down, &up)
	if err != nil {
		return err
	}
	defer c.Shutdown() //nolint:errcheck // demo teardown
	ctx := context.Background()

	globals := dimatch.PersonGlobals(city)
	if err := c.Place(ctx, globals, dimatch.WithReplication(2)); err != nil {
		return err
	}
	placeBytes := down.Bytes()

	residentsAt := func(id uint32) (int, error) {
		st, err := c.Stats(ctx)
		if err != nil {
			return 0, err
		}
		for _, s := range st.Stations {
			if s.Station == id {
				return s.Residents, nil
			}
		}
		return 0, fmt.Errorf("station %d missing from stats", id)
	}
	ref, ok := dimatch.CleanReference(city, dimatch.OfficeWorker)
	if !ok {
		return fmt.Errorf("no clean reference in category %v", dimatch.OfficeWorker)
	}
	relevant := dimatch.RelevantSet(city, ref)
	query := dimatch.QueryFromPerson(city, 1, ref)
	recallAt := func(phase string) (float64, error) {
		out, err := c.Search(ctx, []dimatch.Query{query})
		if err != nil {
			return 0, err
		}
		conf := dimatch.Evaluate(out.Persons(1), relevant)
		fmt.Printf("%-24s stations=%-3d precision=%.3f recall=%.3f (failed=%d)\n",
			phase, c.Stations(), conf.Precision(), conf.Recall(), out.Cost.StationsFailed)
		return conf.Recall(), nil
	}

	preKill, err := residentsAt(walStation)
	if err != nil {
		return err
	}
	fmt.Printf("recovery demo: %d persons placed at R=2, station %d holds %d residents in WAL dir %s (%d B disseminated)\n",
		c.Placed(), walStation, preKill, dir, placeBytes)
	healthy, err := recallAt("healthy:")
	if err != nil {
		return err
	}

	// SIGKILL: the station process dies mid-flight with no chance to flush.
	// Every acked batch must already be on disk (the WAL fsyncs per batch
	// before the ack), so this is the crash the store exists to survive.
	if err := cmds[walStation].Process.Kill(); err != nil {
		return err
	}
	_ = cmds[walStation].Wait()
	delete(cmds, walStation)
	if err := c.KillStation(walStation); err != nil {
		return err
	}
	recall, err := recallAt("after kill -9:")
	if err != nil {
		return err
	}
	if recall < healthy {
		return fmt.Errorf("recall %.3f dropped below healthy %.3f after kill — replicas did not cover the crash", recall, healthy)
	}
	if err := c.RemoveStation(ctx, walStation); err != nil {
		return err
	}

	// Late arrivals while the station is down: the only data a rejoin is
	// allowed to fetch over the wire.
	late := make(map[dimatch.PersonID]dimatch.Pattern, 16)
	for i := 0; i < 16; i++ {
		p := make(dimatch.Pattern, city.Length())
		p[0] = int64(i + 1)
		late[dimatch.PersonID(uint64(cfg.Persons)+2_000_000+uint64(i))] = p
	}
	if err := c.Place(ctx, late, dimatch.WithReplication(2)); err != nil {
		return err
	}

	// Relaunch from the same directory: recovery, not re-replication.
	rejoinStart := down.Bytes()
	cmd, link, err := spawn(walStation, dir)
	if err != nil {
		return err
	}
	cmds[walStation] = cmd
	if err := c.AddStationLink(ctx, walStation, link); err != nil {
		return err
	}
	rejoinBytes := down.Bytes() - rejoinStart

	post, err := residentsAt(walStation)
	if err != nil {
		return err
	}
	fmt.Printf("after restart from WAL: station %d holds %d residents (was %d before the kill), rejoin disseminated %d B vs %d B initial placement\n",
		walStation, post, preKill, rejoinBytes, placeBytes)
	if post < preKill {
		return fmt.Errorf("restarted station recovered %d residents, had %d before the kill — WAL recovery lost data", post, preKill)
	}
	if rejoinBytes*4 >= placeBytes {
		return fmt.Errorf("rejoin disseminated %d B against %d B initial placement — that is re-replication, not delta top-up", rejoinBytes, placeBytes)
	}
	recall, err = recallAt("after restart:")
	if err != nil {
		return err
	}
	if recall < healthy {
		return fmt.Errorf("recall %.3f dropped below healthy %.3f after restart — recovery incomplete", recall, healthy)
	}

	rep, err := c.Rebalance(ctx)
	if err != nil {
		return err
	}
	if rep.Copied != 0 || rep.Lost != 0 {
		return fmt.Errorf("reconcile check found residual work (%d to copy, %d lost) — rejoin heal incomplete", rep.Copied, rep.Lost)
	}
	fmt.Printf("recovery guarantee held: kill -9 lost nothing, rejoin shipped the delta only (reconcile: %d placed, 0 to copy, 0 lost)\n", rep.Placed)
	return nil
}

// runHierarchyChurn is the hierarchical-routing chaos smoke: a two-tier
// deployment where region coordinators (dimatch.ServeRegion) front disjoint
// subsets of the stations over real TCP links, with the center talking only
// to the regions. Every person's global pattern is placed at R>=2 — the
// root's rendezvous hashing spreads the replicas across regions — and
// tree-routed searches are checked against full fan-out for exact result
// equality before and after one region coordinator is killed mid-search,
// taking its whole subtree with it. Cross-region replicas must hold recall
// at the healthy value; any drop or divergence returns an error and the
// process exits non-zero, which makes this CI's hierarchy chaos smoke test.
func runHierarchyChurn(cfg dimatch.CityConfig, replicas, fanout int) error {
	if replicas < 2 {
		replicas = 2 // a kill below R=2 is allowed to lose data; the smoke needs the guarantee
	}
	city, err := dimatch.GenerateCity(cfg)
	if err != nil {
		return err
	}
	stations := make([]uint32, 0, len(city.StationIDs()))
	for _, s := range city.StationIDs() {
		stations = append(stations, uint32(s))
	}

	const regionCount = 3
	opts := dimatch.Options{
		Params:     dimatch.Params{Samples: 8, Epsilon: 1, Seed: cfg.Seed, PositionSalted: true},
		MinScore:   0.9,
		TreeFanout: fanout,
	}
	var down, up dimatch.Meter
	ln, err := dimatch.Listen("127.0.0.1:0", &down, &up)
	if err != nil {
		return err
	}
	defer ln.Close()

	// Stand the regions up one at a time: each is an in-process sub-cluster
	// of empty stations fronted by a ServeRegion loop on a dialed link, and
	// dial order matches accept order so every link is attributable.
	links := make(map[uint32]dimatch.Link, regionCount)
	subs := make(map[uint32]*dimatch.Cluster, regionCount)
	defer func() {
		for _, sub := range subs {
			_ = sub.Shutdown()
		}
	}()
	regionIDs := make([]uint32, 0, regionCount)
	for r := 0; r < regionCount; r++ {
		var members []uint32
		for _, s := range stations {
			if int(s)%regionCount == r {
				members = append(members, s)
			}
		}
		sub, err := dimatch.NewEmptyCluster(opts, members, city.Length())
		if err != nil {
			return err
		}
		regionID := uint32(1000 + r)
		subs[regionID] = sub
		regionIDs = append(regionIDs, regionID)
		link, err := dimatch.Dial(ln.Addr(), nil, nil)
		if err != nil {
			return err
		}
		go func(id uint32, sub *dimatch.Cluster, link dimatch.Link) {
			// Returns when the center closes or kills the link; the smoke
			// owns the sub-cluster and shuts it down on exit.
			_ = dimatch.ServeRegion(id, sub, link)
		}(regionID, sub, link)
		accepted, err := ln.Accept()
		if err != nil {
			return err
		}
		links[regionID] = accepted
		fmt.Printf("region %d: serving %d stations\n", regionID, len(members))
	}

	root, err := dimatch.NewClusterWithLinks(opts, links, city.Length(), &down, &up)
	if err != nil {
		return err
	}
	defer root.Shutdown() //nolint:errcheck // demo teardown
	ctx := context.Background()

	globals := dimatch.PersonGlobals(city)
	if err := root.Place(ctx, globals, dimatch.WithReplication(replicas)); err != nil {
		return err
	}
	fmt.Printf("hierarchy demo: %d persons placed at R=%d across %d regions (tree fanout %d)\n",
		root.Placed(), replicas, regionCount, fanout)

	ref, ok := dimatch.CleanReference(city, dimatch.OfficeWorker)
	if !ok {
		return fmt.Errorf("no clean reference in category %v", dimatch.OfficeWorker)
	}
	relevant := dimatch.RelevantSet(city, ref)
	query := dimatch.QueryFromPerson(city, 1, ref)

	// Every checkpoint runs the search twice — tree-routed through the
	// regions, then classic full fan-out — and requires the identical ranked
	// answer: the routed plan may only change cost, never results.
	recallAt := func(phase string) (float64, error) {
		routed, err := root.Search(ctx, []dimatch.Query{query}, dimatch.WithRouting(dimatch.RoutingTree))
		if err != nil {
			return 0, err
		}
		full, err := root.Search(ctx, []dimatch.Query{query}, dimatch.WithRouting(dimatch.RoutingFull))
		if err != nil {
			return 0, err
		}
		rp, fp := routed.Persons(1), full.Persons(1)
		if len(rp) != len(fp) {
			return 0, fmt.Errorf("%s tree-routed search returned %d persons, full fan-out %d — routing changed results", phase, len(rp), len(fp))
		}
		for i := range rp {
			if rp[i] != fp[i] {
				return 0, fmt.Errorf("%s tree-routed result %d is person %d, full fan-out has %d — routing changed results", phase, i, rp[i], fp[i])
			}
		}
		conf := dimatch.Evaluate(rp, relevant)
		fmt.Printf("%-24s regions=%-2d precision=%.3f recall=%.3f (tier hops=%d, probes=%d, failed=%d)\n",
			phase, root.Stations(), conf.Precision(), conf.Recall(),
			routed.Cost.TierHops, routed.Cost.SubtreeProbes, routed.Cost.StationsFailed)
		return conf.Recall(), nil
	}
	healthy, err := recallAt("healthy:")
	if err != nil {
		return err
	}

	// Background tree-routed searches run across the kill below.
	var (
		wg       sync.WaitGroup
		stop     = make(chan struct{})
		searches int
		bgErr    error
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := root.Search(ctx, []dimatch.Query{query}, dimatch.WithRouting(dimatch.RoutingTree)); err != nil {
				bgErr = err
				return
			}
			searches++
		}
	}()

	// Kill one region coordinator mid-search: its whole subtree goes with
	// it, and the root re-replicates the lost placements from the survivors.
	if err := root.KillStation(regionIDs[1]); err != nil {
		return err
	}
	recall, err := recallAt("after region kill:")
	if err != nil {
		return err
	}
	if recall < healthy {
		return fmt.Errorf("recall %.3f dropped below healthy %.3f after the region kill — cross-region replicas did not cover the subtree", recall, healthy)
	}

	close(stop)
	wg.Wait()
	if bgErr != nil {
		return fmt.Errorf("background search: %w", bgErr)
	}

	rep, err := root.Rebalance(ctx)
	if err != nil {
		return err
	}
	if rep.Copied != 0 || rep.Lost != 0 {
		return fmt.Errorf("reconcile check found residual work (%d to copy, %d lost) — region heal incomplete", rep.Copied, rep.Lost)
	}
	fmt.Printf("ran %d background searches through the region kill; hierarchy guarantee held: recall never dropped below %.3f and routed results matched full fan-out throughout\n",
		searches, healthy)
	return nil
}

// stationGroups folds the synthetic city's base stations onto the given
// number of node processes (process i serves city stations s with
// s % stationCount == i), merging each person's locals per process.
func stationGroups(city *dimatch.City, stationCount int) map[uint32]map[dimatch.PersonID]dimatch.Pattern {
	data := dimatch.StationData(city)
	out := make(map[uint32]map[dimatch.PersonID]dimatch.Pattern, stationCount)
	for s, locals := range data {
		g := s % uint32(stationCount)
		dst := out[g]
		if dst == nil {
			dst = make(map[dimatch.PersonID]dimatch.Pattern)
			out[g] = dst
		}
		for p, l := range locals {
			if existing, ok := dst[p]; ok {
				merged := existing.Clone()
				for i, v := range l {
					merged[i] += v
				}
				dst[p] = merged
				continue
			}
			dst[p] = l
		}
	}
	return out
}
