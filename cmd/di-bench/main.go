// Command di-bench regenerates the paper's evaluation tables and figures
// (DESIGN.md §4) and prints them as text tables.
//
// Usage:
//
//	di-bench [-run all|fig1a|fig1b|fig3|conv|fig4|table2|salting|tolerance|sizing|resilience|batch|replication|recovery|routing|stream|hierarchy|adaptive] [-quick] [-strategy wbf]
//	di-bench -run batch -batch-out BENCH_batch.json
//	di-bench -batch-check BENCH_batch.json
//	di-bench -run replication -replication-out BENCH_replication.json
//	di-bench -replication-check BENCH_replication.json
//	di-bench -run recovery -recovery-out BENCH_recovery.json
//	di-bench -recovery-check BENCH_recovery.json
//	di-bench -run routing -routing-out BENCH_routing.json
//	di-bench -routing-check BENCH_routing.json
//	di-bench -run stream -stream-out BENCH_stream.json
//	di-bench -stream-check BENCH_stream.json
//	di-bench -run hierarchy -hierarchy-out BENCH_hierarchy.json
//	di-bench -hierarchy-check BENCH_hierarchy.json
//	di-bench -run adaptive -adaptive-out BENCH_adaptive.json
//	di-bench -adaptive-check BENCH_adaptive.json
//
// The default -run all executes every experiment at full scale (a few
// minutes); -quick shrinks the workloads for a fast smoke run. -strategy
// selects which strategy the resilience experiment degrades (naive, bf or
// wbf).
//
// -run batch measures the batched search pipeline against the unbatched
// legacy pipeline over TCP loopback and, with -batch-out, records the
// result as the repository's perf baseline (BENCH_batch.json).
// -batch-check validates a previously recorded baseline file and exits
// non-zero if it is empty or malformed — the CI gate.
//
// -run routing measures the summary-routed search pipeline against full
// fan-out over TCP loopback — selective queries on a replicated
// placement-first deployment at 4/16/64 stations — and, with -routing-out,
// records the result as BENCH_routing.json. -routing-check validates a
// recorded baseline and exits non-zero unless routed searches move fewer
// messages per query than full fan-out at 16+ stations with results and
// recall asserted identical — the CI gate for the routing claim.
//
// -run replication measures search quality on a placement-first deployment
// under station loss at replication factors 1 and 2 — the healthy cluster,
// every single-station kill, and a cumulative kill sweep with self-healing
// re-replication in between — and, with -replication-out, records the
// result as BENCH_replication.json. -replication-check validates a recorded
// baseline and exits non-zero unless killing any single station keeps
// recall at the healthy value for every factor >= 2 — the CI gate for the
// replica guarantee.
//
// -run recovery compares a station restart's two restore paths at 100k
// residents — recovering from the station's own snapshot + WAL
// (internal/store/wal) versus re-replicating the same residents over TCP
// loopback onto an empty station — and, with -recovery-out, records the
// result as BENCH_recovery.json. -recovery-check validates a recorded
// baseline and exits non-zero unless WAL recovery is at least 5x faster
// than re-replication with recall 1.0 and the routing digest byte-identical
// across the restart — the CI gate for the persistence claim.
//
// -run stream exercises the streaming ingest pipeline over TCP loopback —
// sustained block-mode ingest with concurrent searches, TTL churn, and a
// saturated shed-mode pipeline — and, with -stream-out, records the result
// as BENCH_stream.json. -stream-check validates a recorded baseline and
// exits non-zero unless the pipeline sustained 10k+ patterns/sec with
// concurrent-search recall 1 and bounded p99, evicted its whole TTL cohort
// without touching the static population, and demonstrably shed (with exact
// accounting) when saturated — the CI gate for the streaming claim.
//
// -run hierarchy compares flat and two-tier deployments at 256/512/1024
// in-process stations — a root over ~sqrt(N) region coordinators versus one
// flat coordinator over the same stations, searched under every routing mode
// with results asserted identical to flat full fan-out and recall 1 before
// anything is recorded — and, with -hierarchy-out, records the result as
// BENCH_hierarchy.json. -hierarchy-check validates a recorded baseline and
// exits non-zero unless at 1024 stations the hierarchical search evaluates
// at most 0.25·N digest probes per query, no hierarchical coordinator holds
// as much routing state as the flat coordinator, and searches crossed two
// tiers — the CI gate for the hierarchical-routing claim. Note the quick
// run shrinks the sweep below 1024 stations, so its output does not pass
// -hierarchy-check; record the baseline at full scale.
//
// -run adaptive measures the traffic-adaptive parameter rollout on a Zipfian
// traffic mix — at each skew a live cluster is warmed with routed traffic,
// RederiveParams rolls a Daisy-style plan onto every station, and the
// adaptive digests are compared against static ones at exactly equal memory
// — and, with -adaptive-out, records the result as BENCH_adaptive.json.
// -adaptive-check validates a recorded baseline and exits non-zero unless
// every skew cell rolled out to all stations, searched byte-identically to a
// never-adapted twin with recall 1, and made strictly fewer empty-band false
// admissions than static (false routes no worse measured, strictly better by
// the analytic bound) — the CI gate for the adaptivity claim.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"dimatch"
	"dimatch/internal/bench"
)

func main() {
	var (
		run              = flag.String("run", "all", "experiment to run: all, fig1a, fig1b, fig3, conv, fig4, table2, salting, tolerance, sizing, resilience, batch, replication, recovery, routing, stream, hierarchy, adaptive")
		quick            = flag.Bool("quick", false, "use reduced workloads (seconds instead of minutes)")
		strategy         = flag.String("strategy", "wbf", "strategy for the resilience experiment (naive, bf, wbf)")
		batchOut         = flag.String("batch-out", "", "with -run batch: also write the report as JSON to this file")
		batchCheck       = flag.String("batch-check", "", "validate a recorded BENCH_batch.json and exit (no experiments run)")
		replicationOut   = flag.String("replication-out", "", "with -run replication: also write the report as JSON to this file")
		replicationCheck = flag.String("replication-check", "", "validate a recorded BENCH_replication.json and exit (no experiments run)")
		recoveryOut      = flag.String("recovery-out", "", "with -run recovery: also write the report as JSON to this file")
		recoveryCheck    = flag.String("recovery-check", "", "validate a recorded BENCH_recovery.json and exit (no experiments run)")
		routingOut       = flag.String("routing-out", "", "with -run routing: also write the report as JSON to this file")
		routingCheck     = flag.String("routing-check", "", "validate a recorded BENCH_routing.json and exit (no experiments run)")
		streamOut        = flag.String("stream-out", "", "with -run stream: also write the report as JSON to this file")
		streamCheck      = flag.String("stream-check", "", "validate a recorded BENCH_stream.json and exit (no experiments run)")
		hierarchyOut     = flag.String("hierarchy-out", "", "with -run hierarchy: also write the report as JSON to this file")
		hierarchyCheck   = flag.String("hierarchy-check", "", "validate a recorded BENCH_hierarchy.json and exit (no experiments run)")
		adaptiveOut      = flag.String("adaptive-out", "", "with -run adaptive: also write the report as JSON to this file")
		adaptiveCheck    = flag.String("adaptive-check", "", "validate a recorded BENCH_adaptive.json and exit (no experiments run)")
	)
	flag.Parse()
	if *batchCheck != "" {
		if err := checkBatchFile(*batchCheck); err != nil {
			fmt.Fprintln(os.Stderr, "di-bench:", err)
			os.Exit(1)
		}
		fmt.Printf("%s: valid batch baseline\n", *batchCheck)
		return
	}
	if *replicationCheck != "" {
		if err := checkReplicationFile(*replicationCheck); err != nil {
			fmt.Fprintln(os.Stderr, "di-bench:", err)
			os.Exit(1)
		}
		fmt.Printf("%s: valid replication baseline\n", *replicationCheck)
		return
	}
	if *recoveryCheck != "" {
		if err := checkRecoveryFile(*recoveryCheck); err != nil {
			fmt.Fprintln(os.Stderr, "di-bench:", err)
			os.Exit(1)
		}
		fmt.Printf("%s: valid recovery baseline\n", *recoveryCheck)
		return
	}
	if *routingCheck != "" {
		if err := checkRoutingFile(*routingCheck); err != nil {
			fmt.Fprintln(os.Stderr, "di-bench:", err)
			os.Exit(1)
		}
		fmt.Printf("%s: valid routing baseline\n", *routingCheck)
		return
	}
	if *streamCheck != "" {
		if err := checkStreamFile(*streamCheck); err != nil {
			fmt.Fprintln(os.Stderr, "di-bench:", err)
			os.Exit(1)
		}
		fmt.Printf("%s: valid stream baseline\n", *streamCheck)
		return
	}
	if *adaptiveCheck != "" {
		if err := checkAdaptiveFile(*adaptiveCheck); err != nil {
			fmt.Fprintln(os.Stderr, "di-bench:", err)
			os.Exit(1)
		}
		fmt.Printf("%s: valid adaptive baseline\n", *adaptiveCheck)
		return
	}
	if *hierarchyCheck != "" {
		if err := checkHierarchyFile(*hierarchyCheck); err != nil {
			fmt.Fprintln(os.Stderr, "di-bench:", err)
			os.Exit(1)
		}
		fmt.Printf("%s: valid hierarchy baseline\n", *hierarchyCheck)
		return
	}
	strat, err := dimatch.ParseStrategy(*strategy)
	if err != nil {
		fmt.Fprintln(os.Stderr, "di-bench:", err)
		os.Exit(1)
	}
	if err := runExperiments(*run, *quick, strat, *batchOut, *replicationOut, *recoveryOut, *routingOut, *streamOut, *hierarchyOut, *adaptiveOut); err != nil {
		fmt.Fprintln(os.Stderr, "di-bench:", err)
		os.Exit(1)
	}
}

// checkBaselineFile validates a recorded baseline file with the given
// report checker.
func checkBaselineFile(path string, check func(io.Reader) error) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return err
	}
	if st.Size() == 0 {
		return fmt.Errorf("%s: empty baseline file", path)
	}
	if err := check(f); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	return nil
}

// checkBatchFile validates a recorded batch baseline.
func checkBatchFile(path string) error {
	return checkBaselineFile(path, bench.CheckBatchBenchJSON)
}

// checkReplicationFile validates a recorded replication baseline.
func checkReplicationFile(path string) error {
	return checkBaselineFile(path, bench.CheckReplicationJSON)
}

// checkRecoveryFile validates a recorded recovery baseline.
func checkRecoveryFile(path string) error {
	return checkBaselineFile(path, bench.CheckRecoveryJSON)
}

// checkRoutingFile validates a recorded routing baseline.
func checkRoutingFile(path string) error {
	return checkBaselineFile(path, bench.CheckRoutingJSON)
}

// checkStreamFile validates a recorded streaming baseline.
func checkStreamFile(path string) error {
	return checkBaselineFile(path, bench.CheckStreamJSON)
}

// checkHierarchyFile validates a recorded hierarchy baseline.
func checkHierarchyFile(path string) error {
	return checkBaselineFile(path, bench.CheckHierarchyJSON)
}

// checkAdaptiveFile validates a recorded adaptive-parameters baseline.
func checkAdaptiveFile(path string) error {
	return checkBaselineFile(path, bench.CheckAdaptiveJSON)
}

// runAdaptiveBaseline runs the adaptive-vs-static skew sweep, prints it, and
// optionally records the JSON baseline. The quick run shrinks the traffic
// samples; its output is still expected to pass -adaptive-check (the gates
// are seeded and deterministic), but the recorded baseline comes from the
// full-scale run.
func runAdaptiveBaseline(w *os.File, quick bool, out string) error {
	cfg := bench.AdaptiveConfig{}
	if quick {
		cfg.WarmQueries = 300
		cfg.MeasureQueries = 800
		cfg.Skews = []bench.AdaptiveSkew{
			{Name: "uniform", ZipfS: 0, DigestSeeds: 1},
			{Name: "zipf1.2", ZipfS: 1.2, DigestSeeds: 1},
			{Name: "zipf2.0", ZipfS: 2.0, DigestSeeds: 3},
		}
	}
	r, err := bench.RunAdaptiveBench(context.Background(), cfg)
	if err != nil {
		return err
	}
	bench.RenderAdaptive(w, r)
	fmt.Fprintln(w)
	if out == "" {
		return nil
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	if err := bench.WriteAdaptiveJSON(f, r); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(w, "recorded adaptive baseline: %s\n", out)
	return nil
}

// runHierarchyBaseline runs the flat-vs-hierarchy sweep, prints it, and
// optionally records the JSON baseline. The quick sweep stays below the
// 1024-station gate, so it prints and records but will not pass
// -hierarchy-check.
func runHierarchyBaseline(w *os.File, quick bool, out string) error {
	cfg := bench.HierarchyConfig{}
	if quick {
		cfg.StationCounts = []int{64, 256}
		cfg.ResidentsPerStation = 8
		cfg.Repetitions = 2
	}
	r, err := bench.RunHierarchyBench(context.Background(), cfg)
	if err != nil {
		return err
	}
	bench.RenderHierarchy(w, r)
	fmt.Fprintln(w)
	if out == "" {
		return nil
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	if err := bench.WriteHierarchyJSON(f, r); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(w, "baseline recorded to %s\n", out)
	return nil
}

// runStreamBaseline runs the streaming phases, prints them, and optionally
// records the JSON baseline.
func runStreamBaseline(w *os.File, quick bool, out string) error {
	cfg := bench.StreamBenchConfig{}
	if quick {
		cfg.Duration = 500 * time.Millisecond
		cfg.TargetRate = 20000
		cfg.ChurnPersons = 100
		cfg.TTL = time.Second
		cfg.ShedSubmissions = 2000
	}
	r, err := bench.RunStreamBench(context.Background(), cfg)
	if err != nil {
		return err
	}
	bench.RenderStream(w, r)
	fmt.Fprintln(w)
	if out == "" {
		return nil
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	if err := bench.WriteStreamJSON(f, r); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(w, "baseline recorded to %s\n", out)
	return nil
}

// runRoutingBaseline runs the routed-vs-full sweep, prints it, and
// optionally records the JSON baseline.
func runRoutingBaseline(w *os.File, quick bool, out string) error {
	cfg := bench.RoutingConfig{}
	if quick {
		cfg.Persons = 200
		cfg.StationCounts = []int{4, 16}
		cfg.Repetitions = 2
	}
	r, err := bench.RunRoutingBench(context.Background(), cfg)
	if err != nil {
		return err
	}
	bench.RenderRouting(w, r)
	fmt.Fprintln(w)
	if out == "" {
		return nil
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	if err := bench.WriteRoutingJSON(f, r); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(w, "baseline recorded to %s\n", out)
	return nil
}

// runReplicationBaseline runs the replication sweep, prints it, and
// optionally records the JSON baseline.
func runReplicationBaseline(w *os.File, quick bool, out string) error {
	cfg := bench.ReplicationConfig{}
	if quick {
		cfg.Persons = 150
		cfg.Stations = 4
	}
	r, err := bench.RunReplicationBench(context.Background(), cfg)
	if err != nil {
		return err
	}
	bench.RenderReplication(w, r)
	fmt.Fprintln(w)
	if out == "" {
		return nil
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	if err := bench.WriteReplicationJSON(f, r); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(w, "baseline recorded to %s\n", out)
	return nil
}

// runRecoveryBaseline runs the restart-cost comparison, prints it, and
// optionally records the JSON baseline.
func runRecoveryBaseline(w *os.File, quick bool, out string) error {
	cfg := bench.RecoveryConfig{}
	if quick {
		cfg.Residents = 20000
		cfg.Repetitions = 1
	}
	dir, err := os.MkdirTemp("", "di-bench-recovery-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	cfg.Dir = dir
	r, err := bench.RunRecoveryBench(context.Background(), cfg)
	if err != nil {
		return err
	}
	bench.RenderRecovery(w, r)
	fmt.Fprintln(w)
	if out == "" {
		return nil
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	if err := bench.WriteRecoveryJSON(f, r); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(w, "baseline recorded to %s\n", out)
	return nil
}

// runBatchBaseline runs the batch sweep, prints it, and optionally records
// the JSON baseline.
func runBatchBaseline(w *os.File, quick bool, out string) error {
	cfg := bench.BatchBenchConfig{}
	if quick {
		cfg.Persons = 600
		cfg.Repetitions = 4
	}
	r, err := bench.RunBatchBench(context.Background(), cfg)
	if err != nil {
		return err
	}
	bench.RenderBatchBench(w, r)
	fmt.Fprintln(w)
	if out == "" {
		return nil
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	if err := bench.WriteBatchBenchJSON(f, r); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(w, "baseline recorded to %s\n", out)
	return nil
}

func runExperiments(run string, quick bool, strat dimatch.Strategy, batchOut, replicationOut, recoveryOut, routingOut, streamOut, hierarchyOut, adaptiveOut string) error {
	selected := func(name string) bool { return run == "all" || run == name }
	any := false
	w := os.Stdout

	if selected("fig1a") {
		any = true
		series, err := bench.Figure1a(bench.Figure1aConfig{})
		if err != nil {
			return err
		}
		bench.RenderFigure1a(w, series)
		fmt.Fprintln(w)
	}
	if selected("fig1b") {
		any = true
		cfg := bench.Figure1bConfig{}
		if quick {
			cfg.Persons = 120
		}
		r, err := bench.Figure1b(cfg)
		if err != nil {
			return err
		}
		bench.RenderFigure1b(w, r)
		fmt.Fprintln(w)
	}
	if selected("fig3") {
		any = true
		series, err := bench.Figure3(bench.Figure1aConfig{})
		if err != nil {
			return err
		}
		bench.RenderFigure3(w, series)
		fmt.Fprintln(w)
	}
	if selected("conv") {
		any = true
		cfg := bench.ConvergenceConfig{}
		if quick {
			cfg.Groups = 2
			cfg.SampleCounts = []int{2, 5, 8, 12}
			cfg.Persons = 60
		}
		points, err := bench.Convergence(context.Background(), cfg)
		if err != nil {
			return err
		}
		bench.RenderConvergence(w, points)
		fmt.Fprintln(w)
	}
	if selected("fig4") {
		any = true
		cfg := bench.Figure4Config{}
		if quick {
			cfg.Persons = 2000
			cfg.Stations = 36
			cfg.PatternCounts = []int{5, 15, 30}
			cfg.QueriesScored = 5
		}
		points, err := bench.Figure4(context.Background(), cfg)
		if err != nil {
			return err
		}
		bench.RenderFigure4(w, points)
		fmt.Fprintln(w)
	}
	if selected("table2") {
		any = true
		cfg := bench.TableIIConfig{}
		if quick {
			cfg.Persons = 120
			cfg.Days = 2
			cfg.QueriesPerDay = 6
		}
		rows, err := bench.TableII(context.Background(), cfg)
		if err != nil {
			return err
		}
		bench.RenderTableII(w, rows)
		fmt.Fprintln(w)
	}
	if selected("salting") {
		any = true
		cfg := bench.AblationConfig{}
		if quick {
			cfg.Persons = 120
		}
		rows, err := bench.AblationSalting(context.Background(), cfg)
		if err != nil {
			return err
		}
		bench.RenderAblation(w, "Ablation (DESIGN.md D8): position salting at ε > 0", rows)
		fmt.Fprintln(w)
	}
	if selected("tolerance") {
		any = true
		cfg := bench.AblationConfig{}
		if quick {
			cfg.Persons = 120
		}
		rows, err := bench.AblationTolerance(context.Background(), cfg)
		if err != nil {
			return err
		}
		bench.RenderAblation(w, "Ablation (DESIGN.md D1): scaled vs absolute ε bands", rows)
		fmt.Fprintln(w)
	}
	if selected("sizing") {
		any = true
		cfg := bench.AblationConfig{}
		if quick {
			cfg.Persons = 120
		}
		rows, err := bench.SizingSweep(context.Background(), cfg, nil)
		if err != nil {
			return err
		}
		bench.RenderSizing(w, rows)
		fmt.Fprintln(w)
	}
	if selected("resilience") {
		any = true
		cfg := bench.AblationConfig{}
		if quick {
			cfg.Persons = 120
		}
		rows, err := bench.Resilience(context.Background(), cfg, nil, strat)
		if err != nil {
			return err
		}
		bench.RenderResilience(w, rows)
		fmt.Fprintln(w)
	}
	if selected("batch") {
		any = true
		if err := runBatchBaseline(os.Stdout, quick, batchOut); err != nil {
			return err
		}
	}
	if selected("replication") {
		any = true
		if err := runReplicationBaseline(os.Stdout, quick, replicationOut); err != nil {
			return err
		}
	}
	if selected("recovery") {
		any = true
		if err := runRecoveryBaseline(os.Stdout, quick, recoveryOut); err != nil {
			return err
		}
	}
	if selected("routing") {
		any = true
		if err := runRoutingBaseline(os.Stdout, quick, routingOut); err != nil {
			return err
		}
	}
	if selected("stream") {
		any = true
		if err := runStreamBaseline(os.Stdout, quick, streamOut); err != nil {
			return err
		}
	}
	if selected("hierarchy") {
		any = true
		if err := runHierarchyBaseline(os.Stdout, quick, hierarchyOut); err != nil {
			return err
		}
	}
	if selected("adaptive") {
		any = true
		if err := runAdaptiveBaseline(os.Stdout, quick, adaptiveOut); err != nil {
			return err
		}
	}
	if !any {
		return fmt.Errorf("unknown experiment %q (want one of: all fig1a fig1b fig3 conv fig4 table2 salting tolerance sizing resilience batch replication recovery routing stream hierarchy adaptive)", strings.TrimSpace(run))
	}
	return nil
}
