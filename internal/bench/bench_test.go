package bench

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"dimatch/internal/cluster"
)

func TestFigure1aShape(t *testing.T) {
	series, err := Figure1a(Figure1aConfig{Persons: 60})
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 6 {
		t.Fatalf("%d series, want 6 categories", len(series))
	}
	for _, s := range series {
		if len(s.Y) != 8 {
			t.Fatalf("series %s has %d points, want 8 (2 days x 4)", s.Label, len(s.Y))
		}
		// Periodicity: the two weekday halves are close.
		for i := 0; i < 4; i++ {
			if d := s.Y[i] - s.Y[4+i]; d > 0.6 || d < -0.6 {
				t.Fatalf("series %s not periodic at %d: %v vs %v", s.Label, i, s.Y[i], s.Y[4+i])
			}
		}
	}
	var buf bytes.Buffer
	RenderFigure1a(&buf, series)
	if !strings.Contains(buf.String(), "Figure 1(a)") {
		t.Fatal("render missing title")
	}
}

func TestFigure3Divisible(t *testing.T) {
	series, err := Figure3(Figure1aConfig{Persons: 60})
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 6 {
		t.Fatalf("%d series", len(series))
	}
	// Accumulated curves are non-decreasing and end at distinct values.
	finals := make(map[string]float64, 6)
	for _, s := range series {
		prev := -1.0
		for _, y := range s.Y {
			if y < prev {
				t.Fatalf("series %s not monotone", s.Label)
			}
			prev = y
		}
		finals[s.Label] = s.Y[len(s.Y)-1]
	}
	for a, va := range finals {
		for b, vb := range finals {
			if a < b {
				if d := va - vb; d < 5 && d > -5 {
					t.Fatalf("categories %s and %s end too close: %v vs %v", a, b, va, vb)
				}
			}
		}
	}
	var buf bytes.Buffer
	RenderFigure3(&buf, series)
	if !strings.Contains(buf.String(), "Figure 3") {
		t.Fatal("render missing title")
	}
}

func TestFigure1bStatistic(t *testing.T) {
	r, err := Figure1b(Figure1bConfig{Persons: 90})
	if err != nil {
		t.Fatal(err)
	}
	if r.Pairs == 0 {
		t.Fatal("no pairs evaluated")
	}
	if r.FractionAtLeastOne < 0.9 {
		t.Fatalf("P(>=1 similar local) = %.2f, paper observes > 0.9", r.FractionAtLeastOne)
	}
	last := r.CDF[len(r.CDF)-1]
	if last.P < 0.999 {
		t.Fatalf("CDF does not reach 1: %v", r.CDF)
	}
	var buf bytes.Buffer
	RenderFigure1b(&buf, r)
	if !strings.Contains(buf.String(), "Figure 1(b)") {
		t.Fatal("render missing title")
	}
}

func TestConvergenceShape(t *testing.T) {
	points, err := Convergence(context.Background(), ConvergenceConfig{
		Groups:       2,
		SampleCounts: []int{2, 8, 12},
		Persons:      60,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("%d points", len(points))
	}
	// Accuracy at the paper's stable b=12 must be at least as good as at
	// b=2 for every group, and high in absolute terms.
	for gi := range points[0].Accuracy {
		if points[2].Accuracy[gi] < points[0].Accuracy[gi]-0.05 {
			t.Fatalf("group %d: accuracy fell from b=2 (%v) to b=12 (%v)",
				gi, points[0].Accuracy[gi], points[2].Accuracy[gi])
		}
	}
	if points[2].Accuracy[0] < 0.85 {
		t.Fatalf("stable-b accuracy %.2f too low", points[2].Accuracy[0])
	}
	var buf bytes.Buffer
	RenderConvergence(&buf, points)
	if !strings.Contains(buf.String(), "Convergence") {
		t.Fatal("render missing title")
	}
}

func TestFigure4SmallSweep(t *testing.T) {
	points, err := Figure4(context.Background(), Figure4Config{
		Persons:       1500,
		Stations:      36,
		PatternCounts: []int{5, 30},
		QueriesScored: 5,
		FilterBits:    1 << 17, // small so the BF degrades within the mini sweep
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("%d points", len(points))
	}
	first, last := points[0], points[1]

	// 4(a): naive precision is 1; WBF stays close; BF degrades as the
	// fixed filter fills.
	for _, p := range points {
		if p.Precision[cluster.StrategyNaive] < 0.999 {
			t.Fatalf("naive precision %.3f != 1", p.Precision[cluster.StrategyNaive])
		}
		if p.Precision[cluster.StrategyWBF] < 0.9 {
			t.Fatalf("WBF precision %.3f below 0.9 at a=%d", p.Precision[cluster.StrategyWBF], p.Patterns)
		}
	}
	if last.FilterFill <= first.FilterFill {
		t.Fatal("filter fill did not grow with patterns")
	}
	if last.Precision[cluster.StrategyBF] >= first.Precision[cluster.StrategyBF] &&
		last.Precision[cluster.StrategyBF] > 0.5 {
		t.Fatalf("BF did not degrade: %.3f -> %.3f",
			first.Precision[cluster.StrategyBF], last.Precision[cluster.StrategyBF])
	}
	if last.Precision[cluster.StrategyWBF] <= last.Precision[cluster.StrategyBF] {
		t.Fatal("WBF should beat BF at high load")
	}

	// 4(c): WBF uplink well below naive's shipment at every point.
	for _, p := range points {
		if p.BytesUp[cluster.StrategyWBF]*2 > p.BytesUp[cluster.StrategyNaive] {
			t.Fatalf("a=%d: WBF uplink %d not well below naive %d",
				p.Patterns, p.BytesUp[cluster.StrategyWBF], p.BytesUp[cluster.StrategyNaive])
		}
	}

	// 4(d): naive center storage constant in a; WBF storage grows with the
	// query load, not the data.
	if float64(last.CenterStorage[cluster.StrategyNaive]) > 1.2*float64(first.CenterStorage[cluster.StrategyNaive]) {
		t.Fatal("naive storage should not grow with patterns")
	}

	var buf bytes.Buffer
	RenderFigure4(&buf, points)
	for _, want := range []string{"Figure 4(a)", "Figure 4(b)", "Figure 4(c)", "Figure 4(d)"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("render missing %s", want)
		}
	}
}

func TestTableIISmall(t *testing.T) {
	rows, err := TableII(context.Background(), TableIIConfig{Persons: 120, Days: 2, QueriesPerDay: 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.Precision < 0.9 || r.Recall < 0.9 {
			t.Fatalf("row %s below paper's band: %+v", r.Day, r)
		}
	}
	var buf bytes.Buffer
	RenderTableII(&buf, rows)
	if !strings.Contains(buf.String(), "Table II") {
		t.Fatal("render missing title")
	}
}

func TestAblationSalting(t *testing.T) {
	rows, err := AblationSalting(context.Background(), AblationConfig{Persons: 120})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	salted, unsalted := rows[0], rows[1]
	// The D1 caveat made measurable: at ε=1 the salted variant must beat
	// the unsalted one on precision.
	if salted.Precision <= unsalted.Precision {
		t.Fatalf("salting did not help: %.3f vs %.3f", salted.Precision, unsalted.Precision)
	}
	var buf bytes.Buffer
	RenderAblation(&buf, "salting", rows)
	if !strings.Contains(buf.String(), "salted") {
		t.Fatal("render missing rows")
	}
}

func TestAblationTolerance(t *testing.T) {
	rows, err := AblationTolerance(context.Background(), AblationConfig{Persons: 120})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	scaled, absolute := rows[0], rows[1]
	// Scaled bands guarantee no false negatives: recall at least matches
	// the absolute variant.
	if scaled.Recall < absolute.Recall-1e-9 {
		t.Fatalf("scaled recall %.3f below absolute %.3f", scaled.Recall, absolute.Recall)
	}
}

func TestResilienceDegradesGracefully(t *testing.T) {
	rows, err := Resilience(context.Background(), AblationConfig{Persons: 120}, []int{0, 8, 24}, cluster.StrategyWBF)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	if rows[0].StationsKilled != 0 || rows[0].Recall < 0.9 {
		t.Fatalf("healthy baseline off: %+v", rows[0])
	}
	// Recall decays as stations die; it never goes back up.
	for i := 1; i < len(rows); i++ {
		if rows[i].Recall > rows[i-1].Recall+1e-9 {
			t.Fatalf("recall rose after killing stations: %+v", rows)
		}
	}
	if last := rows[len(rows)-1]; last.Recall >= rows[0].Recall {
		t.Fatalf("killing %d stations did not reduce recall: %+v", last.StationsKilled, rows)
	}
	var buf bytes.Buffer
	RenderResilience(&buf, rows)
	if !strings.Contains(buf.String(), "Failure injection") {
		t.Fatal("render missing title")
	}
}

func TestSizingSweep(t *testing.T) {
	rows, err := SizingSweep(context.Background(), AblationConfig{Persons: 120}, []uint64{1 << 13, 1 << 17})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	small, big := rows[0], rows[1]
	if small.Fill <= big.Fill {
		t.Fatal("smaller filter should be fuller")
	}
	if small.AnalyticFP <= big.AnalyticFP {
		t.Fatal("smaller filter should have higher FP rate")
	}
	// Measured value-level FP tracks the analytic estimate.
	for _, r := range rows {
		if r.MeasuredFP > r.AnalyticFP*1.5+0.01 {
			t.Fatalf("measured FP %v far above analytic %v at m=%d", r.MeasuredFP, r.AnalyticFP, r.Bits)
		}
	}
	var buf bytes.Buffer
	RenderSizing(&buf, rows)
	if !strings.Contains(buf.String(), "sizing") {
		t.Fatal("render missing title")
	}
}
