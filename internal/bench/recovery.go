// Recovery benchmark: the recorded restart-cost baseline.
//
// The scenarios compare the two ways a station's resident set can come back
// after a hard stop. WAL recovery reads the station's own snapshot + log
// (internal/store/wal) — one sequential file scan and a fold. Re-replication
// ships the same residents over TCP loopback as ingest batches, which is
// what a replacement station with no local state costs (the Rebalance path,
// minus real network latency, so the comparison is conservative). The
// headline claim, validated in CI against BENCH_recovery.json: at 100k
// residents per station, WAL recovery is at least 5x faster than
// re-replication, restores every resident (recall 1.0 on sampled queries),
// and reproduces the routing digest byte-for-byte.
package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"sort"
	"time"

	"dimatch/internal/cluster"
	"dimatch/internal/core"
	"dimatch/internal/index"
	"dimatch/internal/pattern"
	"dimatch/internal/store"
	"dimatch/internal/store/wal"
	"dimatch/internal/transport"
	"dimatch/internal/wire"
)

// RecoveryConfig parameterizes the restart-cost comparison.
type RecoveryConfig struct {
	// Seed fixes the resident population and the sampled queries.
	Seed uint64
	// Residents is the station's resident count (default 100000 — the scale
	// the acceptance gate is stated at).
	Residents int
	// PatternLength is the per-resident time-series length (default 8).
	PatternLength int
	// ChunkSize is the batch size for both WAL population and
	// re-replication ingest (default 2048, the Rebalance copy granularity
	// class).
	ChunkSize int
	// Queries is how many residents are sampled for the recall probe
	// (default 64).
	Queries int
	// Repetitions is how many times the recovery path is re-measured (the
	// minimum is reported; default 3). Re-replication runs once — it is the
	// slow side, so noise only helps it.
	Repetitions int

	// Dir is the scratch directory for WAL stores. Empty means the caller
	// must set it (di-bench uses a temp dir).
	Dir string `json:"-"`
}

func (c RecoveryConfig) withDefaults() RecoveryConfig {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Residents == 0 {
		c.Residents = 100_000
	}
	if c.PatternLength == 0 {
		c.PatternLength = 8
	}
	if c.ChunkSize == 0 {
		c.ChunkSize = 2048
	}
	if c.Queries == 0 {
		c.Queries = 64
	}
	if c.Repetitions == 0 {
		c.Repetitions = 3
	}
	return c
}

// RecoveryScenario is one timed cell.
type RecoveryScenario struct {
	// Phase is "recover-snapshot-log" (WAL restart folding a snapshot plus
	// a log tail), "recover-snapshot" (WAL restart from a sealed snapshot,
	// digest included) or "re-replicate" (ingest of the full resident set
	// over TCP loopback onto an empty station).
	Phase string `json:"phase"`
	// Residents is the resident count restored.
	Residents int `json:"residents"`
	// Millis is the wall time of the restore (minimum over repetitions).
	Millis float64 `json:"millis"`
	// PersonsPerSec is Residents / seconds.
	PersonsPerSec float64 `json:"persons_per_sec"`
}

// RecoverySummary is the headline comparison.
type RecoverySummary struct {
	Residents int `json:"residents"`
	// RecoverMillis is the slower WAL path (snapshot + log tail) — the
	// conservative side of the speedup claim.
	RecoverMillis     float64 `json:"recover_millis"`
	RereplicateMillis float64 `json:"rereplicate_millis"`
	// Speedup is RereplicateMillis / RecoverMillis; CI gates >= 5.
	Speedup float64 `json:"speedup"`
	// Recall is the fraction of sampled resident queries answered by the
	// recovered station; CI gates == 1.
	Recall float64 `json:"recall"`
	// DigestMatch records that the routing digest served after recovery is
	// byte-identical to a never-restarted station's; CI gates true. The
	// sealed-snapshot path recovers it verbatim, the snapshot+log path
	// rebuilds it from the recovered residents — both must land on the
	// reference bytes.
	DigestMatch bool `json:"digest_match"`
	// SnapshotBytes and LogRecords size the recovered state, for reading
	// the millis figures in context.
	SnapshotBytes int64 `json:"snapshot_bytes"`
	LogRecords    int   `json:"log_records"`
}

// RecoveryReport is the full run, serialized to BENCH_recovery.json.
type RecoveryReport struct {
	Schema     string             `json:"schema"`
	GoVersion  string             `json:"go"`
	GOOS       string             `json:"goos"`
	GOARCH     string             `json:"goarch"`
	GOMAXPROCS int                `json:"gomaxprocs"`
	Config     RecoveryConfig     `json:"config"`
	Scenarios  []RecoveryScenario `json:"scenarios"`
	Summary    RecoverySummary    `json:"summary"`
}

// recoverySchema versions the JSON layout for the CI validator.
const recoverySchema = "dimatch-recovery-bench/v1"

// recoveryStation is the station ID every phase restores.
const recoveryStation = 1

// recoveryOptions sizes the cluster for the recall probe.
func recoveryOptions(seed uint64) cluster.Options {
	return cluster.Options{
		Params: core.Params{
			Bits:    1 << 22,
			Hashes:  5,
			Samples: core.DefaultSamples,
			Epsilon: 0,
			Seed:    seed,
		},
		MinScore: 0.9,
	}
}

// recoveryResidents generates the deterministic resident set, persons
// ascending so both population and re-replication insert at the tail.
func recoveryResidents(cfg RecoveryConfig) ([]core.PersonID, []pattern.Pattern) {
	rng := rand.New(rand.NewSource(int64(cfg.Seed)))
	persons := make([]core.PersonID, cfg.Residents)
	locals := make([]pattern.Pattern, cfg.Residents)
	for i := range persons {
		persons[i] = core.PersonID(i + 1)
		p := make(pattern.Pattern, cfg.PatternLength)
		p[0] = rng.Int63n(999) + 1 // nonzero sum, always admissible
		for j := 1; j < cfg.PatternLength; j++ {
			p[j] = rng.Int63n(1000)
		}
		locals[i] = p
	}
	return persons, locals
}

// populateWAL writes the resident set into a fresh store under dir: the
// first half folded into a snapshot (carrying the digest of that half), the
// second half left as log records — the shape a snapshotting station dies
// in. Returns the snapshot size and log record count for the report.
func populateWAL(dir string, persons []core.PersonID, locals []pattern.Pattern, cfg RecoveryConfig, sealAll bool) (int64, int, error) {
	st, err := wal.Open(dir, wal.Options{SnapshotEvery: -1, SnapshotBytes: -1})
	if err != nil {
		return 0, 0, err
	}
	defer st.Close()
	half := len(persons) / 2
	if sealAll {
		half = len(persons)
	}
	appendChunks := func(p []core.PersonID, l []pattern.Pattern) error {
		for i := 0; i < len(p); i += cfg.ChunkSize {
			end := i + cfg.ChunkSize
			if end > len(p) {
				end = len(p)
			}
			if err := st.Append(store.Batch{Op: store.OpIngest, Persons: p[i:end], Locals: l[i:end]}); err != nil {
				return err
			}
		}
		return nil
	}
	if err := appendChunks(persons[:half], locals[:half]); err != nil {
		return 0, 0, err
	}
	digest, err := index.Build(cfg.PatternLength, locals[:half])
	if err != nil {
		return 0, 0, err
	}
	if err := st.Snapshot(store.Image{Persons: persons[:half], Locals: locals[:half], Digest: digest}); err != nil {
		return 0, 0, err
	}
	if err := appendChunks(persons[half:], locals[half:]); err != nil {
		return 0, 0, err
	}
	return st.SnapshotBytes(), st.LogRecords(), st.Close()
}

// timeRecovery opens the store and recovers the image, repeated, returning
// the minimum wall time and the last recovered image.
func timeRecovery(dir string, reps int) (time.Duration, store.Image, error) {
	var best time.Duration
	var img store.Image
	for r := 0; r < reps; r++ {
		start := time.Now()
		st, err := wal.Open(dir, wal.Options{})
		if err != nil {
			return 0, store.Image{}, err
		}
		img, err = st.Recover()
		if err != nil {
			_ = st.Close()
			return 0, store.Image{}, err
		}
		elapsed := time.Since(start)
		if err := st.Close(); err != nil {
			return 0, store.Image{}, err
		}
		if r == 0 || elapsed < best {
			best = elapsed
		}
	}
	return best, img, nil
}

// loopbackStation dials one TCP loopback link and serves a fresh empty
// station over it, returning the center's end.
func loopbackStation(ln *transport.Listener, id uint32) (transport.Link, error) {
	stationLink, err := transport.Dial(ln.Addr(), nil, nil)
	if err != nil {
		return nil, err
	}
	centerLink, err := ln.Accept()
	if err != nil {
		return nil, err
	}
	go func() {
		_ = cluster.ServeStation(id, nil, stationLink)
	}()
	return centerLink, nil
}

// timeRereplicate measures the restore path a station with no local state
// pays: the real Rebalance. A two-station loopback cluster holds every
// resident at R=2; the station under test is hard-stopped and removed, a
// fresh empty one joins in its place, and the join's heal pass dumps the
// copies from the surviving peer and re-ingests all of them into the
// replacement — the timed window is exactly that join.
func timeRereplicate(ctx context.Context, cfg RecoveryConfig, persons []core.PersonID, locals []pattern.Pattern) (time.Duration, error) {
	const peer = recoveryStation + 1
	ln, err := transport.Listen("127.0.0.1:0", nil, nil)
	if err != nil {
		return 0, err
	}
	defer ln.Close()
	links := make(map[uint32]transport.Link, 2)
	for _, id := range []uint32{recoveryStation, peer} {
		link, err := loopbackStation(ln, id)
		if err != nil {
			return 0, err
		}
		links[id] = link
	}
	c, err := cluster.NewWithLinks(recoveryOptions(cfg.Seed), links, cfg.PatternLength, nil, nil)
	if err != nil {
		return 0, err
	}
	defer c.Shutdown()

	globals := make(map[core.PersonID]pattern.Pattern, len(persons))
	for i, p := range persons {
		globals[p] = locals[i]
	}
	if err := c.Place(ctx, globals, cluster.WithReplication(2)); err != nil {
		return 0, err
	}
	if err := c.KillStation(recoveryStation); err != nil {
		return 0, err
	}
	if err := c.RemoveStation(ctx, recoveryStation); err != nil {
		return 0, err
	}
	replacement, err := loopbackStation(ln, recoveryStation)
	if err != nil {
		return 0, err
	}

	start := time.Now()
	if err := c.AddStationLink(ctx, recoveryStation, replacement); err != nil {
		return 0, err
	}
	elapsed := time.Since(start)

	// The join's heal must actually have restored the copies, or the timed
	// window measured nothing.
	st, err := c.Stats(ctx)
	if err != nil {
		return 0, err
	}
	for _, s := range st.Stations {
		if s.Station == recoveryStation && s.Residents != len(persons) {
			return 0, fmt.Errorf("bench: replacement station holds %d residents after rejoin, want %d", s.Residents, len(persons))
		}
	}
	return elapsed, nil
}

// recoveryRecall boots a cluster over the recovered store and probes it
// with sampled residents' exact patterns.
func recoveryRecall(ctx context.Context, cfg RecoveryConfig, dir string, persons []core.PersonID, locals []pattern.Pattern) (float64, error) {
	st, err := wal.Open(dir, wal.Options{})
	if err != nil {
		return 0, err
	}
	c, err := cluster.NewStored(recoveryOptions(cfg.Seed), map[uint32]store.Store{recoveryStation: st}, cfg.PatternLength)
	if err != nil {
		_ = st.Close()
		return 0, err
	}
	c.Start()
	defer c.Shutdown()

	rng := rand.New(rand.NewSource(int64(cfg.Seed) + 7))
	picks := rng.Perm(len(persons))[:cfg.Queries]
	sort.Ints(picks)
	queries := make([]core.Query, len(picks))
	for i, p := range picks {
		queries[i] = core.Query{ID: core.QueryID(i + 1), Locals: []pattern.Pattern{locals[p]}}
	}
	out, err := c.Search(ctx, queries)
	if err != nil {
		return 0, err
	}
	found := 0
	for i, p := range picks {
		for _, r := range out.PerQuery[core.QueryID(i+1)] {
			if r.Person == persons[p] {
				found++
				break
			}
		}
	}
	return float64(found) / float64(len(queries)), nil
}

// digestBytes is the comparable wire form of a routing digest.
func digestBytes(d *index.Summary) []byte {
	return wire.EncodeSummaryPayload(d, recoveryStation)
}

// RunRecoveryBench executes the comparison and assembles the report. cfg.Dir
// must point at an empty scratch directory.
func RunRecoveryBench(ctx context.Context, cfg RecoveryConfig) (*RecoveryReport, error) {
	cfg = cfg.withDefaults()
	if cfg.Dir == "" {
		return nil, fmt.Errorf("bench: recovery needs a scratch dir")
	}
	persons, locals := recoveryResidents(cfg)
	reference, err := index.Build(cfg.PatternLength, locals)
	if err != nil {
		return nil, err
	}
	wantDigest := digestBytes(reference)

	report := &RecoveryReport{
		Schema:     recoverySchema,
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Config:     cfg,
	}
	scenario := func(phase string, d time.Duration) {
		report.Scenarios = append(report.Scenarios, RecoveryScenario{
			Phase:         phase,
			Residents:     cfg.Residents,
			Millis:        float64(d.Microseconds()) / 1000,
			PersonsPerSec: float64(cfg.Residents) / d.Seconds(),
		})
	}
	sameResidents := func(img store.Image) error {
		if len(img.Persons) != cfg.Residents {
			return fmt.Errorf("bench: recovered %d residents, want %d", len(img.Persons), cfg.Residents)
		}
		return nil
	}

	// Phase 1: snapshot + log tail, the shape a snapshotting station dies
	// in. The digest is not recoverable verbatim (records follow the
	// snapshot), so it is rebuilt from the recovered residents — and must
	// land on the reference bytes.
	tailDir := cfg.Dir + "/tail"
	snapBytes, logRecords, err := populateWAL(tailDir, persons, locals, cfg, false)
	if err != nil {
		return nil, err
	}
	recoverD, img, err := timeRecovery(tailDir, cfg.Repetitions)
	if err != nil {
		return nil, err
	}
	if err := sameResidents(img); err != nil {
		return nil, err
	}
	if img.Digest != nil {
		return nil, fmt.Errorf("bench: digest survived a log tail — it cannot cover those records")
	}
	rebuilt, err := index.Build(cfg.PatternLength, img.Locals)
	if err != nil {
		return nil, err
	}
	digestMatch := string(digestBytes(rebuilt)) == string(wantDigest)
	scenario("recover-snapshot-log", recoverD)

	// Phase 2: a sealed snapshot (clean fold, then crash) recovers the
	// digest verbatim.
	sealedDir := cfg.Dir + "/sealed"
	if _, _, err := populateWAL(sealedDir, persons, locals, cfg, true); err != nil {
		return nil, err
	}
	sealedD, sealedImg, err := timeRecovery(sealedDir, cfg.Repetitions)
	if err != nil {
		return nil, err
	}
	if err := sameResidents(sealedImg); err != nil {
		return nil, err
	}
	if sealedImg.Digest == nil {
		return nil, fmt.Errorf("bench: sealed snapshot lost its digest")
	}
	digestMatch = digestMatch && string(digestBytes(sealedImg.Digest)) == string(wantDigest)
	scenario("recover-snapshot", sealedD)

	// Phase 3: re-replication of the same residents onto an empty station
	// over TCP loopback.
	rereplD, err := timeRereplicate(ctx, cfg, persons, locals)
	if err != nil {
		return nil, err
	}
	scenario("re-replicate", rereplD)

	recall, err := recoveryRecall(ctx, cfg, tailDir, persons, locals)
	if err != nil {
		return nil, err
	}

	report.Summary = RecoverySummary{
		Residents:         cfg.Residents,
		RecoverMillis:     float64(recoverD.Microseconds()) / 1000,
		RereplicateMillis: float64(rereplD.Microseconds()) / 1000,
		Speedup:           rereplD.Seconds() / recoverD.Seconds(),
		Recall:            recall,
		DigestMatch:       digestMatch,
		SnapshotBytes:     snapBytes,
		LogRecords:        logRecords,
	}
	return report, nil
}

// WriteRecoveryJSON serializes the report, indented for diff-friendly
// commits of the recorded baseline.
func WriteRecoveryJSON(w io.Writer, r *RecoveryReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// CheckRecoveryJSON validates a serialized report: parseable, the right
// schema, stated at the gate's scale, and — the acceptance gates — WAL
// recovery at least 5x faster than re-replication, recall 1.0 on the
// sampled queries, and the routing digest byte-identical across the
// restart. The timing ratio is machine-local but wide: one sequential file
// scan versus tens of wire round-trips does not come down to 5x on any
// hardware in the same class.
func CheckRecoveryJSON(r io.Reader) error {
	var report RecoveryReport
	if err := json.NewDecoder(r).Decode(&report); err != nil {
		return fmt.Errorf("bench: malformed recovery report: %w", err)
	}
	if report.Schema != recoverySchema {
		return fmt.Errorf("bench: schema %q, want %q", report.Schema, recoverySchema)
	}
	if len(report.Scenarios) == 0 {
		return fmt.Errorf("bench: recovery report is empty")
	}
	for _, s := range report.Scenarios {
		switch s.Phase {
		case "recover-snapshot-log", "recover-snapshot", "re-replicate":
		default:
			return fmt.Errorf("bench: unknown phase %q", s.Phase)
		}
	}
	sm := report.Summary
	if sm.Residents < 100_000 {
		return fmt.Errorf("bench: recovery gate stated at >= 100000 residents, report has %d", sm.Residents)
	}
	if sm.Speedup < 5 {
		return fmt.Errorf("bench: WAL recovery only %.1fx faster than re-replication, gate is 5x", sm.Speedup)
	}
	if sm.Recall != 1 {
		return fmt.Errorf("bench: recovered station recall %.3f, gate is 1.0", sm.Recall)
	}
	if !sm.DigestMatch {
		return fmt.Errorf("bench: routing digest not byte-identical across the restart")
	}
	return nil
}

// RenderRecovery prints the report as an aligned text table plus the
// headline comparison.
func RenderRecovery(w io.Writer, r *RecoveryReport) {
	fmt.Fprintf(w, "Station recovery (%s, %s/%s, %d residents, pattern length %d)\n",
		r.GoVersion, r.GOOS, r.GOARCH, r.Config.Residents, r.Config.PatternLength)
	fmt.Fprintf(w, "%22s %10s %12s %16s\n", "phase", "residents", "millis", "persons/sec")
	for _, s := range r.Scenarios {
		fmt.Fprintf(w, "%22s %10d %12.1f %16.0f\n", s.Phase, s.Residents, s.Millis, s.PersonsPerSec)
	}
	sm := r.Summary
	fmt.Fprintf(w, "recover %.1fms vs re-replicate %.1fms: %.1fx faster, recall %.3f, digest match %v (snapshot %d bytes + %d log records)\n",
		sm.RecoverMillis, sm.RereplicateMillis, sm.Speedup, sm.Recall, sm.DigestMatch, sm.SnapshotBytes, sm.LogRecords)
}
