package bench

import (
	"context"
	"fmt"
	"io"

	"dimatch/internal/cdr"
	"dimatch/internal/cluster"
	"dimatch/internal/core"
	"dimatch/internal/metrics"
)

// ConvergenceConfig parameterizes the sample-count study of Section V-B:
// "when the number of sample values is 5, the accuracy rates in different
// groups of data become converged, and when [it] is 12, the accuracy rates
// ... become stable".
type ConvergenceConfig struct {
	// Groups is the number of independent data groups (the paper uses four
	// days of data; we use four seeds). Default 4.
	Groups int
	// SampleCounts is the sweep of b (default 1..16).
	SampleCounts []int
	// Persons per group (default 120).
	Persons int
	// QueriesScored per group per point (default 6, one per category).
	QueriesScored int
	// Seed of the first group.
	Seed uint64
}

func (c ConvergenceConfig) withDefaults() ConvergenceConfig {
	if c.Groups == 0 {
		c.Groups = 4
	}
	if len(c.SampleCounts) == 0 {
		c.SampleCounts = []int{1, 2, 3, 4, 5, 6, 8, 10, 12, 14, 16}
	}
	if c.Persons == 0 {
		c.Persons = 120
	}
	if c.QueriesScored == 0 {
		c.QueriesScored = 6
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// ConvergencePoint is one b value's accuracy per data group.
type ConvergencePoint struct {
	Samples  int
	Accuracy []float64 // F1 per group
}

// Spread returns max-min accuracy across groups, the convergence measure.
func (p ConvergencePoint) Spread() float64 {
	if len(p.Accuracy) == 0 {
		return 0
	}
	lo, hi := p.Accuracy[0], p.Accuracy[0]
	for _, a := range p.Accuracy[1:] {
		if a < lo {
			lo = a
		}
		if a > hi {
			hi = a
		}
	}
	return hi - lo
}

// Convergence runs the study. Patterns are four days long (16 intervals)
// so the b sweep has room above the paper's stable point of 12.
func Convergence(ctx context.Context, cfg ConvergenceConfig) ([]ConvergencePoint, error) {
	cfg = cfg.withDefaults()

	type group struct {
		city *cdr.Dataset
		cl   *cluster.Cluster
		refs []cdr.PersonID
	}
	groups := make([]*group, 0, cfg.Groups)
	defer func() {
		for _, g := range groups {
			_ = g.cl.Shutdown()
		}
	}()

	points := make([]ConvergencePoint, 0, len(cfg.SampleCounts))
	for _, b := range cfg.SampleCounts {
		point := ConvergencePoint{Samples: b}
		for gi := 0; gi < cfg.Groups; gi++ {
			// Build each group lazily once; rebuild the cluster per b by
			// recreating options (the filter pipeline depends on b).
			city := cdr.DefaultConfig()
			city.Seed = cfg.Seed + uint64(gi)*101
			city.Persons = cfg.Persons
			city.Days = 4
			d, err := cdr.Generate(city)
			if err != nil {
				return nil, err
			}
			opts := cluster.Options{
				Params: core.Params{
					Bits:           1 << 18,
					Hashes:         5,
					Samples:        b,
					Epsilon:        1,
					Seed:           cfg.Seed,
					PositionSalted: true,
				},
				MinScore: 0.9,
			}
			cl, err := cluster.New(opts, stationData(d))
			if err != nil {
				return nil, err
			}
			cl.Start()

			var refs []cdr.PersonID
			for _, c := range cdr.Categories() {
				refs = append(refs, pickReferences(d, c, 1)...)
			}
			if len(refs) > cfg.QueriesScored {
				refs = refs[:cfg.QueriesScored]
			}
			queries := make([]core.Query, len(refs))
			for i, ref := range refs {
				queries[i] = queryFor(d, core.QueryID(i+1), ref)
			}
			out, err := cl.Search(ctx, queries, cluster.WithStrategy(cluster.StrategyWBF))
			if err != nil {
				_ = cl.Shutdown()
				return nil, err
			}
			var total metrics.Confusion
			for i, ref := range refs {
				total.Add(scoreQuery(out, core.QueryID(i+1), ref, relevantSet(d, ref)))
			}
			point.Accuracy = append(point.Accuracy, total.F1())
			if err := cl.Shutdown(); err != nil {
				return nil, err
			}
		}
		points = append(points, point)
	}
	return points, nil
}

// RenderConvergence writes the study as a text table.
func RenderConvergence(w io.Writer, points []ConvergencePoint) {
	fmt.Fprintln(w, "Convergence study (Section V-B): F1 per data group vs sample count b")
	if len(points) == 0 {
		return
	}
	fmt.Fprintf(w, "%6s", "b")
	for i := range points[0].Accuracy {
		fmt.Fprintf(w, " %8s", fmt.Sprintf("group%d", i+1))
	}
	fmt.Fprintf(w, " %8s\n", "spread")
	for _, p := range points {
		fmt.Fprintf(w, "%6d", p.Samples)
		for _, a := range p.Accuracy {
			fmt.Fprintf(w, " %8.3f", a)
		}
		fmt.Fprintf(w, " %8.3f\n", p.Spread())
	}
	fmt.Fprintln(w, "(paper: groups converge by b=5 and are stable by b=12)")
}
