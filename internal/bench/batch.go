// Batch pipeline benchmark: the recorded perf baseline for the repository.
//
// The scenarios compare the batched search pipeline (all queries of a
// search packed into one KindBatchQuery exchange per station, matched in a
// single pooled walk over each station's residents) against the unbatched
// legacy pipeline (one filter and one KindWBFQuery frame per query) over a
// real TCP loopback deployment — the same transport a distributed
// deployment uses, so framing, syscalls and round trips are all real.
// RunBatchBench emits a typed report that WriteBatchBenchJSON serializes as
// BENCH_batch.json; CI regenerates and validates the file on every push so
// a regression in the batch path fails loudly. Methodology details live in
// ARCHITECTURE.md §Benchmark methodology.
package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sort"
	"time"

	"dimatch/internal/cdr"
	"dimatch/internal/cluster"
	"dimatch/internal/core"
	"dimatch/internal/transport"
)

// BatchBenchConfig parameterizes the batched-vs-unbatched comparison.
type BatchBenchConfig struct {
	// Seed fixes the city and therefore the whole run.
	Seed uint64
	// Persons sizes the population shared by every scenario (default 2000).
	Persons int
	// QueryCounts is the sweep of queries per search (default {1, 8, 64}).
	QueryCounts []int
	// StationCounts is the sweep of cluster sizes (default {4, 16}).
	StationCounts []int
	// Repetitions is the number of timed searches per scenario after one
	// untimed warm-up (default 10).
	Repetitions int
}

func (c BatchBenchConfig) withDefaults() BatchBenchConfig {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Persons == 0 {
		c.Persons = 2000
	}
	if len(c.QueryCounts) == 0 {
		c.QueryCounts = []int{1, 8, 64}
	}
	if len(c.StationCounts) == 0 {
		c.StationCounts = []int{4, 16}
	}
	if c.Repetitions == 0 {
		c.Repetitions = 10
	}
	return c
}

// BatchScenario is one measured cell of the sweep.
type BatchScenario struct {
	Transport string `json:"transport"`
	Stations  int    `json:"stations"`
	Queries   int    `json:"queries"`
	// Mode is "batched" (one KindBatchQuery exchange per station per
	// search) or "unbatched" (one KindWBFQuery exchange per query per
	// station — the legacy pipeline, WithBatching(1)).
	Mode        string `json:"mode"`
	Repetitions int    `json:"repetitions"`
	// ThroughputQPS is queries answered per second of search wall-clock.
	ThroughputQPS float64 `json:"throughput_qps"`
	// P50Micros / P99Micros are per-search latency percentiles. With small
	// repetition counts p99 degrades to the maximum observed.
	P50Micros float64 `json:"p50_us"`
	P99Micros float64 `json:"p99_us"`
	// BytesPerQuery / MessagesPerQuery divide one search's wire totals
	// (both directions) by the query count.
	BytesPerQuery    float64 `json:"bytes_per_query"`
	MessagesPerQuery float64 `json:"messages_per_query"`
	// MessagesTotal / BytesTotal are one search's absolute totals.
	MessagesTotal uint64 `json:"messages_total"`
	BytesTotal    uint64 `json:"bytes_total"`
}

// BatchSummary is the headline comparison at one sweep cell: how much the
// batched pipeline wins over the unbatched one.
type BatchSummary struct {
	Stations int `json:"stations"`
	Queries  int `json:"queries"`
	// MessagesPerQueryRatio is unbatched / batched messages per query —
	// the wire-exchange amortization factor.
	MessagesPerQueryRatio float64 `json:"messages_per_query_ratio"`
	// ThroughputRatio is batched / unbatched throughput.
	ThroughputRatio float64 `json:"throughput_ratio"`
}

// BatchReport is the full run, serialized to BENCH_batch.json.
type BatchReport struct {
	Schema     string           `json:"schema"`
	GoVersion  string           `json:"go"`
	GOOS       string           `json:"goos"`
	GOARCH     string           `json:"goarch"`
	GOMAXPROCS int              `json:"gomaxprocs"`
	Config     BatchBenchConfig `json:"config"`
	Scenarios  []BatchScenario  `json:"scenarios"`
	// Summaries holds one batched-vs-unbatched comparison per (stations,
	// queries) cell with more than one query.
	Summaries []BatchSummary `json:"summaries"`
}

// batchBenchSchema versions the JSON layout for the CI validator.
const batchBenchSchema = "dimatch-batch-bench/v1"

// batchQuerySet builds n query pattern sets from the city's persons,
// spreading across categories so the filters carry realistic weight tables.
func batchQuerySet(d *cdr.Dataset, n int) ([]core.Query, error) {
	var persons []cdr.PersonID
	for _, cat := range cdr.Categories() {
		persons = append(persons, pickReferences(d, cat, n)...)
	}
	if len(persons) < n {
		return nil, fmt.Errorf("bench: only %d reference persons for %d queries", len(persons), n)
	}
	queries := make([]core.Query, n)
	for i := 0; i < n; i++ {
		queries[i] = queryFor(d, core.QueryID(i+1), persons[i])
	}
	return queries, nil
}

// tcpBatchCluster stands up a loopback-TCP deployment of the city: one
// listener, one dialled connection and one serving goroutine per station.
func tcpBatchCluster(d *cdr.Dataset, opts cluster.Options) (*cluster.Cluster, func(), error) {
	data := stationData(d)
	ln, err := transport.Listen("127.0.0.1:0", nil, nil)
	if err != nil {
		return nil, nil, err
	}
	ids := make([]uint32, 0, len(data))
	for id := range data {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	links := make(map[uint32]transport.Link, len(ids))
	for _, id := range ids {
		stationLink, err := transport.Dial(ln.Addr(), nil, nil)
		if err != nil {
			ln.Close()
			return nil, nil, err
		}
		centerLink, err := ln.Accept()
		if err != nil {
			ln.Close()
			return nil, nil, err
		}
		links[id] = centerLink
		go func(id uint32, link transport.Link) {
			_ = cluster.ServeStation(id, data[id], link)
		}(id, stationLink)
	}
	c, err := cluster.NewWithLinks(opts, links, d.Length(), nil, nil)
	if err != nil {
		ln.Close()
		return nil, nil, err
	}
	cleanup := func() {
		_ = c.Shutdown()
		_ = ln.Close()
	}
	return c, cleanup, nil
}

// runBatchScenario times one (cluster, queries, mode) cell. Summary
// routing is forced off so the cell isolates what batching buys — the
// routed-vs-full comparison has its own baseline (BENCH_routing.json).
func runBatchScenario(ctx context.Context, c *cluster.Cluster, queries []core.Query, mode string, reps int) (BatchScenario, error) {
	batchSize := 0 // batched: whole set in one round
	if mode == "unbatched" {
		batchSize = 1
	}
	opts := []cluster.SearchOption{cluster.WithBatching(batchSize), cluster.WithRouting(cluster.RoutingFull)}
	// Warm-up: fills the epoch's stats/version cache and the TCP buffers.
	if _, err := c.Search(ctx, queries, opts...); err != nil {
		return BatchScenario{}, err
	}
	durations := make([]time.Duration, 0, reps)
	var last *cluster.Outcome
	start := time.Now()
	for i := 0; i < reps; i++ {
		out, err := c.Search(ctx, queries, opts...)
		if err != nil {
			return BatchScenario{}, err
		}
		durations = append(durations, out.Cost.Elapsed)
		last = out
	}
	total := time.Since(start)
	sort.Slice(durations, func(i, j int) bool { return durations[i] < durations[j] })
	pct := func(p float64) float64 {
		idx := int(p * float64(len(durations)-1))
		return float64(durations[idx].Microseconds())
	}
	msgs := last.Cost.MessagesDown + last.Cost.MessagesUp
	bytes := last.Cost.TotalBytes()
	q := float64(len(queries))
	return BatchScenario{
		Transport:        "tcp",
		Stations:         c.Stations(),
		Queries:          len(queries),
		Mode:             mode,
		Repetitions:      reps,
		ThroughputQPS:    q * float64(reps) / total.Seconds(),
		P50Micros:        pct(0.50),
		P99Micros:        pct(0.99),
		BytesPerQuery:    float64(bytes) / q,
		MessagesPerQuery: float64(msgs) / q,
		MessagesTotal:    msgs,
		BytesTotal:       bytes,
	}, nil
}

// RunBatchBench executes the full sweep and assembles the report.
func RunBatchBench(ctx context.Context, cfg BatchBenchConfig) (*BatchReport, error) {
	cfg = cfg.withDefaults()
	report := &BatchReport{
		Schema:     batchBenchSchema,
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Config:     cfg,
	}
	for _, stations := range cfg.StationCounts {
		city := cdr.DefaultConfig()
		city.Seed = cfg.Seed
		city.Persons = cfg.Persons
		city.Stations = stations
		d, err := cdr.Generate(city)
		if err != nil {
			return nil, err
		}
		c, cleanup, err := tcpBatchCluster(d, cluster.Options{
			Params: core.Params{Samples: 8, Epsilon: 0, Seed: cfg.Seed},
			TopK:   10,
		})
		if err != nil {
			return nil, err
		}
		for _, nq := range cfg.QueryCounts {
			queries, err := batchQuerySet(d, nq)
			if err != nil {
				cleanup()
				return nil, err
			}
			var cell [2]BatchScenario
			for i, mode := range []string{"batched", "unbatched"} {
				s, err := runBatchScenario(ctx, c, queries, mode, cfg.Repetitions)
				if err != nil {
					cleanup()
					return nil, err
				}
				cell[i] = s
				report.Scenarios = append(report.Scenarios, s)
			}
			if nq > 1 && cell[0].MessagesPerQuery > 0 && cell[1].ThroughputQPS > 0 {
				report.Summaries = append(report.Summaries, BatchSummary{
					Stations:              stations,
					Queries:               nq,
					MessagesPerQueryRatio: cell[1].MessagesPerQuery / cell[0].MessagesPerQuery,
					ThroughputRatio:       cell[0].ThroughputQPS / cell[1].ThroughputQPS,
				})
			}
		}
		cleanup()
	}
	return report, nil
}

// WriteBatchBenchJSON serializes the report, indented for diff-friendly
// commits of the recorded baseline.
func WriteBatchBenchJSON(w io.Writer, r *BatchReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// CheckBatchBenchJSON validates a serialized report: parseable, the right
// schema, non-empty, every scenario carries real measurements, and every
// summary shows the batched pipeline actually amortizing exchanges
// (messages-per-query ratio ≥ 2). The ratio bound is protocol-determined
// — an n-query round is n frames per station unbatched vs one batched — so
// it is deterministic across machines, unlike throughput; a change that
// silently routes every search down the per-query path fails here. CI runs
// this against both the freshly generated artifact and the committed
// BENCH_batch.json.
func CheckBatchBenchJSON(r io.Reader) error {
	var report BatchReport
	dec := json.NewDecoder(r)
	if err := dec.Decode(&report); err != nil {
		return fmt.Errorf("bench: malformed batch report: %w", err)
	}
	if report.Schema != batchBenchSchema {
		return fmt.Errorf("bench: schema %q, want %q", report.Schema, batchBenchSchema)
	}
	if len(report.Scenarios) == 0 {
		return fmt.Errorf("bench: batch report has no scenarios")
	}
	for i, s := range report.Scenarios {
		if s.Mode != "batched" && s.Mode != "unbatched" {
			return fmt.Errorf("bench: scenario %d has unknown mode %q", i, s.Mode)
		}
		if s.Repetitions <= 0 || s.ThroughputQPS <= 0 || s.MessagesTotal == 0 || s.BytesTotal == 0 {
			return fmt.Errorf("bench: scenario %d (%d stations, %d queries, %s) has empty measurements", i, s.Stations, s.Queries, s.Mode)
		}
	}
	if len(report.Summaries) == 0 {
		return fmt.Errorf("bench: batch report has no summaries")
	}
	for _, sm := range report.Summaries {
		if sm.MessagesPerQueryRatio < 2 {
			return fmt.Errorf("bench: %d queries x %d stations: messages-per-query ratio %.2f < 2 — batching is not amortizing exchanges", sm.Queries, sm.Stations, sm.MessagesPerQueryRatio)
		}
	}
	return nil
}

// RenderBatchBench prints the report as an aligned text table plus the
// headline ratios.
func RenderBatchBench(w io.Writer, r *BatchReport) {
	fmt.Fprintf(w, "Batch pipeline baseline (%s, %s/%s, GOMAXPROCS=%d)\n",
		r.GoVersion, r.GOOS, r.GOARCH, r.GOMAXPROCS)
	fmt.Fprintf(w, "%9s %8s %10s %14s %10s %10s %12s %10s\n",
		"stations", "queries", "mode", "thruput q/s", "p50 µs", "p99 µs", "bytes/query", "msgs/query")
	for _, s := range r.Scenarios {
		fmt.Fprintf(w, "%9d %8d %10s %14.1f %10.0f %10.0f %12.0f %10.2f\n",
			s.Stations, s.Queries, s.Mode, s.ThroughputQPS, s.P50Micros, s.P99Micros, s.BytesPerQuery, s.MessagesPerQuery)
	}
	for _, sm := range r.Summaries {
		fmt.Fprintf(w, "batched vs unbatched at %d queries x %d stations: %.1fx fewer messages/query, %.2fx throughput\n",
			sm.Queries, sm.Stations, sm.MessagesPerQueryRatio, sm.ThroughputRatio)
	}
}
