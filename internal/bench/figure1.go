package bench

import (
	"fmt"
	"io"

	"dimatch/internal/cdr"
	"dimatch/internal/metrics"
	"dimatch/internal/pattern"
)

// Figure1aConfig parameterizes the periodicity/divisibility figure.
type Figure1aConfig struct {
	// Seed and Persons size the underlying city; zero values take the
	// defaults (seed 1, 310 persons — the paper's study population).
	Seed    uint64
	Persons int
}

// Figure1a reproduces Figure 1(a): the normalized communication patterns of
// the six population categories over two days in 6-hour units. Each curve
// is the category's mean global pattern normalized to mean 1 (the paper
// normalizes "to the mean value").
func Figure1a(cfg Figure1aConfig) ([]Series, error) {
	city := cdr.DefaultConfig()
	if cfg.Seed != 0 {
		city.Seed = cfg.Seed
	}
	if cfg.Persons != 0 {
		city.Persons = cfg.Persons
	}
	city.Days = 2
	d, err := cdr.Generate(city)
	if err != nil {
		return nil, err
	}
	return categorySeries(d, false), nil
}

// Figure3 reproduces Figure 3: the accumulated category patterns over one
// week, where the categories become divisible over time.
func Figure3(cfg Figure1aConfig) ([]Series, error) {
	city := cdr.DefaultConfig()
	if cfg.Seed != 0 {
		city.Seed = cfg.Seed
	}
	if cfg.Persons != 0 {
		city.Persons = cfg.Persons
	}
	city.Days = 7
	d, err := cdr.Generate(city)
	if err != nil {
		return nil, err
	}
	return categorySeries(d, true), nil
}

// categorySeries builds one curve per category, optionally accumulated.
func categorySeries(d *cdr.Dataset, accumulate bool) []Series {
	out := make([]Series, 0, 6)
	for _, c := range cdr.Categories() {
		mean := d.CategoryMean(c)
		ys := make([]float64, len(mean))
		if accumulate {
			run := 0.0
			for i, v := range mean {
				run += v
				ys[i] = run
			}
		} else {
			// Normalize to the curve's own mean, as the paper plots.
			var sum float64
			for _, v := range mean {
				sum += v
			}
			m := sum / float64(len(mean))
			for i, v := range mean {
				if m > 0 {
					ys[i] = v / m
				}
			}
		}
		xs := make([]float64, len(mean))
		for i := range xs {
			xs[i] = float64(i)
		}
		out = append(out, Series{Label: c.String(), X: xs, Y: ys})
	}
	return out
}

// Figure1bConfig parameterizes the local-similarity CDF.
type Figure1bConfig struct {
	Seed    uint64
	Persons int
	// Epsilon is the similarity tolerance for both the global pair filter
	// and the per-local comparison (default 4).
	Epsilon int64
}

// Figure1bResult carries the CDF plus the headline statistic the paper
// quotes ("the percentage that there exist more than one similar local
// patterns is greater than 90%").
type Figure1bResult struct {
	CDF []metrics.CDFPoint
	// FractionAtLeastOne is P(X >= 1): the share of similar-global pairs
	// sharing at least one similar local pattern.
	FractionAtLeastOne float64
	Pairs              int
}

// Figure1b reproduces Figure 1(b): over pairs of persons with ε-similar
// global patterns, the CDF of how many of one person's local patterns have
// an ε-similar counterpart among the other's.
func Figure1b(cfg Figure1bConfig) (*Figure1bResult, error) {
	city := cdr.DefaultConfig()
	if cfg.Seed != 0 {
		city.Seed = cfg.Seed
	}
	if cfg.Persons != 0 {
		city.Persons = cfg.Persons
	}
	eps := cfg.Epsilon
	if eps == 0 {
		eps = 4
	}
	d, err := cdr.Generate(city)
	if err != nil {
		return nil, err
	}

	var counts []int
	atLeastOne := 0
	for _, c := range cdr.Categories() {
		ids := d.PersonsInCategory(c)
		for i := 0; i < len(ids); i++ {
			gi := d.GlobalOf(ids[i])
			li := d.QueryLocalsOf(ids[i])
			for j := i + 1; j < len(ids); j++ {
				if !pattern.Similar(gi, d.GlobalOf(ids[j]), eps) {
					continue // Figure 1b conditions on similar globals
				}
				similar := 0
				for _, lj := range d.QueryLocalsOf(ids[j]) {
					for _, l := range li {
						if pattern.Similar(l, lj, eps) {
							similar++
							break
						}
					}
				}
				counts = append(counts, similar)
				if similar >= 1 {
					atLeastOne++
				}
			}
		}
	}
	if len(counts) == 0 {
		return nil, fmt.Errorf("bench: no similar-global pairs at ε=%d", eps)
	}
	return &Figure1bResult{
		CDF:                metrics.CDF(counts),
		FractionAtLeastOne: float64(atLeastOne) / float64(len(counts)),
		Pairs:              len(counts),
	}, nil
}

// RenderFigure1a writes the figure as a text table.
func RenderFigure1a(w io.Writer, series []Series) {
	renderSeries(w, "Figure 1(a): normalized category patterns, 2 days x 6-hour units", "interval", series)
}

// RenderFigure3 writes the figure as a text table.
func RenderFigure3(w io.Writer, series []Series) {
	renderSeries(w, "Figure 3: accumulated category patterns, 1 week x 6-hour units", "interval", series)
}

// RenderFigure1b writes the CDF as a text table.
func RenderFigure1b(w io.Writer, r *Figure1bResult) {
	fmt.Fprintf(w, "Figure 1(b): CDF of similar local patterns over %d similar-global pairs\n", r.Pairs)
	fmt.Fprintf(w, "%8s %8s\n", "locals", "CDF")
	for _, p := range r.CDF {
		fmt.Fprintf(w, "%8d %8.3f\n", p.X, p.P)
	}
	fmt.Fprintf(w, "P(>=1 similar local) = %.3f (paper: > 0.90)\n", r.FractionAtLeastOne)
}
