// Replication resilience benchmark: the recorded churn-survival baseline.
//
// The scenarios measure search quality on a placement-first deployment —
// every person's global pattern placed onto rendezvous-hashed replicas —
// under station loss, at replication factors 1 and 2. Three phases per
// factor: the healthy cluster, every possible single-station kill (each on a
// fresh cluster), and a cumulative kill sweep where the automatic
// re-replication gets to heal between kills. The headline claim, validated
// in CI against BENCH_replication.json: with R=2, killing any single station
// yields exactly the healthy cluster's recall, because the dead station's
// replicas cover it; and with self-healing, recall stays at the healthy
// value through repeated kills until the membership can no longer hold R
// copies. R=1 is the control: every kill permanently loses the patterns the
// station held.
package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"runtime"

	"dimatch/internal/cdr"
	"dimatch/internal/cluster"
	"dimatch/internal/core"
	"dimatch/internal/metrics"
	"dimatch/internal/pattern"
)

// ReplicationConfig parameterizes the replication resilience sweep.
type ReplicationConfig struct {
	// Seed fixes the city and the placement, and therefore the whole run.
	Seed uint64
	// Persons sizes the placed population (default 400).
	Persons int
	// Stations is the cluster size (default 6).
	Stations int
	// Replications is the sweep of replication factors (default {1, 2}).
	Replications []int
	// CumulativeKills bounds the healing sweep's kill count (default
	// stations-1, so one station always survives).
	CumulativeKills int
}

func (c ReplicationConfig) withDefaults() ReplicationConfig {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Persons == 0 {
		c.Persons = 400
	}
	if c.Stations == 0 {
		c.Stations = 6
	}
	if len(c.Replications) == 0 {
		c.Replications = []int{1, 2}
	}
	if c.CumulativeKills == 0 || c.CumulativeKills > c.Stations-1 {
		c.CumulativeKills = c.Stations - 1
	}
	return c
}

// ReplicationScenario is one measured cell of the sweep.
type ReplicationScenario struct {
	// Replication is the WithReplication factor the cluster was placed at.
	Replication int `json:"replication"`
	// Phase is "healthy" (no failures), "kill-one" (a single station killed
	// on a fresh cluster) or "cumulative" (the n-th kill of the healing
	// sweep, self-healing between kills).
	Phase string `json:"phase"`
	// Station is the killed station's ID (kill-one and cumulative), -1 for
	// healthy.
	Station int `json:"station"`
	// Killed is the total stations dead at measurement time.
	Killed int `json:"killed"`
	// Stations is the cluster's total membership.
	Stations  int     `json:"stations"`
	Precision float64 `json:"precision"`
	Recall    float64 `json:"recall"`
	F1        float64 `json:"f1"`
}

// ReplicationSummary is the headline per replication factor.
type ReplicationSummary struct {
	Replication   int     `json:"replication"`
	HealthyRecall float64 `json:"healthy_recall"`
	// MinSingleKillRecall is the worst recall over every possible
	// single-station kill. With R >= 2 it must equal HealthyRecall — that
	// is the acceptance gate CI enforces.
	MinSingleKillRecall float64 `json:"min_single_kill_recall"`
	// FinalCumulativeRecall is the recall after the full healing sweep
	// (CumulativeKills sequential kills with re-replication in between).
	FinalCumulativeRecall float64 `json:"final_cumulative_recall"`
}

// ReplicationReport is the full run, serialized to BENCH_replication.json.
type ReplicationReport struct {
	Schema     string                `json:"schema"`
	GoVersion  string                `json:"go"`
	GOOS       string                `json:"goos"`
	GOARCH     string                `json:"goarch"`
	GOMAXPROCS int                   `json:"gomaxprocs"`
	Config     ReplicationConfig     `json:"config"`
	Scenarios  []ReplicationScenario `json:"scenarios"`
	Summaries  []ReplicationSummary  `json:"summaries"`
}

// replicationSchema versions the JSON layout for the CI validator.
const replicationSchema = "dimatch-replication-bench/v1"

// replicationOptions are the search knobs shared by every scenario — the
// resilience experiment's parameters, so the two failure studies compare.
func replicationOptions(seed uint64) cluster.Options {
	return cluster.Options{
		Params: core.Params{
			Bits:           1 << 18,
			Hashes:         5,
			Samples:        core.DefaultSamples,
			Epsilon:        1,
			Seed:           seed,
			PositionSalted: true,
		},
		MinScore: 0.9,
	}
}

// placedCluster stands up an empty in-process cluster over the city's
// station IDs and places every person's global pattern at factor r.
func placedCluster(ctx context.Context, d *cdr.Dataset, seed uint64, stations []uint32, r int) (*cluster.Cluster, error) {
	c, err := cluster.NewEmpty(replicationOptions(seed), stations, d.Length())
	if err != nil {
		return nil, err
	}
	c.Start()
	globals := make(map[core.PersonID]pattern.Pattern)
	for _, cat := range cdr.Categories() {
		for _, p := range d.PersonsInCategory(cat) {
			globals[core.PersonID(p)] = d.GlobalOf(p)
		}
	}
	if err := c.Place(ctx, globals, cluster.WithReplication(r)); err != nil {
		_ = c.Shutdown()
		return nil, err
	}
	return c, nil
}

// replicationQuality runs the reference queries and scores them against the
// category ground truth.
func replicationQuality(ctx context.Context, c *cluster.Cluster, d *cdr.Dataset, refs []cdr.PersonID, queries []core.Query) (metrics.Confusion, error) {
	out, err := c.Search(ctx, queries)
	if err != nil {
		return metrics.Confusion{}, err
	}
	var total metrics.Confusion
	for i, ref := range refs {
		total.Add(scoreQuery(out, core.QueryID(i+1), ref, relevantSet(d, ref)))
	}
	return total, nil
}

// RunReplicationBench executes the full sweep and assembles the report.
func RunReplicationBench(ctx context.Context, cfg ReplicationConfig) (*ReplicationReport, error) {
	cfg = cfg.withDefaults()
	city := cdr.DefaultConfig()
	city.Seed = cfg.Seed
	city.Persons = cfg.Persons
	city.Stations = cfg.Stations
	d, err := cdr.Generate(city)
	if err != nil {
		return nil, err
	}
	stations := make([]uint32, 0, len(d.StationIDs()))
	for _, s := range d.StationIDs() {
		stations = append(stations, uint32(s))
	}

	var refs []cdr.PersonID
	for _, c := range cdr.Categories() {
		refs = append(refs, pickReferences(d, c, 1)...)
	}
	queries := make([]core.Query, len(refs))
	for i, ref := range refs {
		queries[i] = queryFor(d, core.QueryID(i+1), ref)
	}

	report := &ReplicationReport{
		Schema:     replicationSchema,
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Config:     cfg,
	}

	for _, r := range cfg.Replications {
		summary := ReplicationSummary{Replication: r, MinSingleKillRecall: 1}

		// Healthy baseline.
		c, err := placedCluster(ctx, d, cfg.Seed, stations, r)
		if err != nil {
			return nil, err
		}
		conf, err := replicationQuality(ctx, c, d, refs, queries)
		_ = c.Shutdown()
		if err != nil {
			return nil, err
		}
		summary.HealthyRecall = conf.Recall()
		report.Scenarios = append(report.Scenarios, ReplicationScenario{
			Replication: r, Phase: "healthy", Station: -1,
			Stations:  len(stations),
			Precision: conf.Precision(), Recall: conf.Recall(), F1: conf.F1(),
		})

		// Every possible single-station kill, each on a fresh cluster.
		for _, victim := range stations {
			c, err := placedCluster(ctx, d, cfg.Seed, stations, r)
			if err != nil {
				return nil, err
			}
			if err := c.KillStation(victim); err != nil {
				_ = c.Shutdown()
				return nil, err
			}
			conf, err := replicationQuality(ctx, c, d, refs, queries)
			_ = c.Shutdown()
			if err != nil {
				return nil, err
			}
			if conf.Recall() < summary.MinSingleKillRecall {
				summary.MinSingleKillRecall = conf.Recall()
			}
			report.Scenarios = append(report.Scenarios, ReplicationScenario{
				Replication: r, Phase: "kill-one", Station: int(victim), Killed: 1,
				Stations:  len(stations),
				Precision: conf.Precision(), Recall: conf.Recall(), F1: conf.F1(),
			})
		}

		// Cumulative kills with self-healing in between: each KillStation
		// re-replicates the dead station's placements onto the survivors
		// before the next kill lands.
		c, err = placedCluster(ctx, d, cfg.Seed, stations, r)
		if err != nil {
			return nil, err
		}
		for killed := 1; killed <= cfg.CumulativeKills; killed++ {
			victim := stations[killed-1]
			if err := c.KillStation(victim); err != nil {
				_ = c.Shutdown()
				return nil, err
			}
			conf, err := replicationQuality(ctx, c, d, refs, queries)
			if err != nil {
				_ = c.Shutdown()
				return nil, err
			}
			summary.FinalCumulativeRecall = conf.Recall()
			report.Scenarios = append(report.Scenarios, ReplicationScenario{
				Replication: r, Phase: "cumulative", Station: int(victim), Killed: killed,
				Stations:  len(stations),
				Precision: conf.Precision(), Recall: conf.Recall(), F1: conf.F1(),
			})
		}
		_ = c.Shutdown()

		report.Summaries = append(report.Summaries, summary)
	}
	return report, nil
}

// WriteReplicationJSON serializes the report, indented for diff-friendly
// commits of the recorded baseline.
func WriteReplicationJSON(w io.Writer, r *ReplicationReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// CheckReplicationJSON validates a serialized report: parseable, the right
// schema, non-empty, and — the acceptance gate — at every replication
// factor >= 2, the worst single-station kill keeps recall exactly at the
// healthy cluster's value (the dead station's replicas cover it), and the
// healthy recall is itself non-degenerate. The gate is deterministic: the
// sweep is seeded and runs in-process, so CI regenerating the report on a
// different machine reproduces the same quality figures.
func CheckReplicationJSON(r io.Reader) error {
	var report ReplicationReport
	if err := json.NewDecoder(r).Decode(&report); err != nil {
		return fmt.Errorf("bench: malformed replication report: %w", err)
	}
	if report.Schema != replicationSchema {
		return fmt.Errorf("bench: schema %q, want %q", report.Schema, replicationSchema)
	}
	if len(report.Scenarios) == 0 || len(report.Summaries) == 0 {
		return fmt.Errorf("bench: replication report is empty")
	}
	for _, s := range report.Scenarios {
		switch s.Phase {
		case "healthy", "kill-one", "cumulative":
		default:
			return fmt.Errorf("bench: unknown phase %q", s.Phase)
		}
	}
	gated := false
	for _, sm := range report.Summaries {
		if sm.Replication < 2 {
			continue
		}
		gated = true
		if sm.HealthyRecall < 0.5 {
			return fmt.Errorf("bench: R=%d healthy recall %.3f is degenerate", sm.Replication, sm.HealthyRecall)
		}
		if sm.MinSingleKillRecall < sm.HealthyRecall {
			return fmt.Errorf("bench: R=%d worst single-kill recall %.3f below healthy %.3f — replicas are not covering failures",
				sm.Replication, sm.MinSingleKillRecall, sm.HealthyRecall)
		}
		if sm.FinalCumulativeRecall < sm.HealthyRecall {
			return fmt.Errorf("bench: R=%d recall after healing sweep %.3f below healthy %.3f — re-replication is not restoring copies",
				sm.Replication, sm.FinalCumulativeRecall, sm.HealthyRecall)
		}
	}
	if !gated {
		return fmt.Errorf("bench: no replication factor >= 2 in report — nothing validates the replica guarantee")
	}
	return nil
}

// RenderReplication prints the report as an aligned text table plus the
// headline guarantees.
func RenderReplication(w io.Writer, r *ReplicationReport) {
	fmt.Fprintf(w, "Replication resilience (%s, %s/%s, %d stations, %d persons placed)\n",
		r.GoVersion, r.GOOS, r.GOARCH, r.Config.Stations, r.Config.Persons)
	fmt.Fprintf(w, "%12s %12s %8s %7s %10s %10s %10s\n",
		"replication", "phase", "station", "killed", "precision", "recall", "f1")
	for _, s := range r.Scenarios {
		station := "-"
		if s.Station >= 0 {
			station = fmt.Sprintf("%d", s.Station)
		}
		fmt.Fprintf(w, "%12d %12s %8s %7d %10.3f %10.3f %10.3f\n",
			s.Replication, s.Phase, station, s.Killed, s.Precision, s.Recall, s.F1)
	}
	for _, sm := range r.Summaries {
		fmt.Fprintf(w, "R=%d: healthy recall %.3f, worst single kill %.3f, after healing sweep %.3f\n",
			sm.Replication, sm.HealthyRecall, sm.MinSingleKillRecall, sm.FinalCumulativeRecall)
	}
}
