// Summary-routing benchmark: the recorded fan-out-pruning baseline.
//
// The scenarios measure what the coordinator-side routing index buys on the
// workload it exists for — selective (needle) queries over a replicated
// placement-first deployment, where each queried person's pattern lives on
// only R=2 of the member stations. Every cell runs the same searches twice,
// WithRouting(RoutingFull) versus the default summary routing, over real
// TCP loopback, and the runner asserts the two modes return identical
// results with every target retrieved (recall 1) before a single figure is
// recorded: the saving is only worth reporting if recall provably did not
// move. The headline, validated in CI against BENCH_routing.json: at 16+
// stations a routed single-target search sends a small constant number of
// query exchanges instead of one per station. Broad queries whose matches
// spread over every station admit everywhere and degrade to full fan-out by
// design — docs/OPERATIONS.md discusses when routing pays.
package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"sort"
	"time"

	"dimatch/internal/cluster"
	"dimatch/internal/core"
	"dimatch/internal/pattern"
	"dimatch/internal/transport"
)

// RoutingConfig parameterizes the routed-vs-full comparison.
type RoutingConfig struct {
	// Seed fixes the placed population and therefore the whole run.
	Seed uint64
	// Persons sizes the placed population (default 600).
	Persons int
	// PatternLength is the placed time series' length (default 12).
	PatternLength int
	// StationCounts is the sweep of cluster sizes (default {4, 16, 64}).
	StationCounts []int
	// QueryCounts is the sweep of queries per search (default {1, 8}).
	QueryCounts []int
	// Replication is the placement factor (default 2 — the ISSUE's R).
	Replication int
	// Repetitions is the number of timed searches per cell after one
	// untimed warm-up (default 6).
	Repetitions int
}

func (c RoutingConfig) withDefaults() RoutingConfig {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Persons == 0 {
		c.Persons = 600
	}
	if c.PatternLength == 0 {
		c.PatternLength = 12
	}
	if len(c.StationCounts) == 0 {
		c.StationCounts = []int{4, 16, 64}
	}
	if len(c.QueryCounts) == 0 {
		c.QueryCounts = []int{1, 8}
	}
	if c.Replication == 0 {
		c.Replication = 2
	}
	if c.Repetitions == 0 {
		c.Repetitions = 6
	}
	return c
}

// RoutingScenario is one measured cell of the sweep.
type RoutingScenario struct {
	Transport string `json:"transport"`
	Stations  int    `json:"stations"`
	Queries   int    `json:"queries"`
	// Mode is "routed" (default summary routing) or "full"
	// (WithRouting(RoutingFull)).
	Mode          string  `json:"mode"`
	Repetitions   int     `json:"repetitions"`
	Replication   int     `json:"replication"`
	ThroughputQPS float64 `json:"throughput_qps"`
	P50Micros     float64 `json:"p50_us"`
	P99Micros     float64 `json:"p99_us"`
	// BytesPerQuery / MessagesPerQuery divide one steady-state search's
	// wire totals (both directions, summary refreshes excluded — the warm
	// cache is the steady state) by the query count.
	BytesPerQuery    float64 `json:"bytes_per_query"`
	MessagesPerQuery float64 `json:"messages_per_query"`
	MessagesTotal    uint64  `json:"messages_total"`
	BytesTotal       uint64  `json:"bytes_total"`
	// StationsPruned is the steady-state per-search prune count (0 in full
	// mode by definition).
	StationsPruned int `json:"stations_pruned"`
	// SummaryRefreshBytes is the one-time cache-fill cost the warm-up
	// search paid (both directions); steady-state searches refresh nothing.
	SummaryRefreshBytes uint64 `json:"summary_refresh_bytes"`
	// Recall is the fraction of queried targets retrieved (must be 1).
	Recall float64 `json:"recall"`
	// ResultsMatchFull records that every timed search returned results
	// identical to the full-fan-out reference (trivially true in full
	// mode).
	ResultsMatchFull bool `json:"results_match_full"`
}

// RoutingComparison is the headline at one sweep cell.
type RoutingComparison struct {
	Stations int `json:"stations"`
	Queries  int `json:"queries"`
	// MessagesPerQueryRatio is full / routed messages per query — the
	// fan-out pruning factor.
	MessagesPerQueryRatio float64 `json:"messages_per_query_ratio"`
	// ThroughputRatio is routed / full throughput.
	ThroughputRatio float64 `json:"throughput_ratio"`
	// StationsPruned is the routed cell's steady-state prune count.
	StationsPruned int `json:"stations_pruned"`
}

// RoutingReport is the full run, serialized to BENCH_routing.json.
type RoutingReport struct {
	Schema      string              `json:"schema"`
	GoVersion   string              `json:"go"`
	GOOS        string              `json:"goos"`
	GOARCH      string              `json:"goarch"`
	GOMAXPROCS  int                 `json:"gomaxprocs"`
	Config      RoutingConfig       `json:"config"`
	Scenarios   []RoutingScenario   `json:"scenarios"`
	Comparisons []RoutingComparison `json:"comparisons"`
}

// routingSchema versions the JSON layout for the CI validator.
const routingSchema = "dimatch-routing-bench/v1"

// routingOptions are the search knobs shared by every cell.
func routingOptions(seed uint64) cluster.Options {
	return cluster.Options{
		Params: core.Params{
			Bits:           1 << 18,
			Hashes:         5,
			Samples:        8,
			Epsilon:        1,
			Seed:           seed,
			PositionSalted: true,
		},
		MinScore: 0.9,
	}
}

// routingPopulation builds the deterministic placed population: random
// integer series whose per-interval spread (values up to 1000) is wide
// relative to the ε=1 bands, so a single-target query admits (essentially)
// only the target's replicas. That selectivity is the workload's point — a
// summary has no joint information across positions, so a population whose
// values are dense relative to ε admits everywhere and routing degrades to
// full fan-out by design (docs/OPERATIONS.md covers the sizing intuition).
func routingPopulation(cfg RoutingConfig) map[core.PersonID]pattern.Pattern {
	rng := rand.New(rand.NewSource(int64(cfg.Seed)))
	out := make(map[core.PersonID]pattern.Pattern, cfg.Persons)
	for p := 1; p <= cfg.Persons; p++ {
		pat := make(pattern.Pattern, cfg.PatternLength)
		for i := range pat {
			pat[i] = rng.Int63n(1000)
		}
		pat[0]++ // never all-zero
		out[core.PersonID(p)] = pat
	}
	return out
}

// routingQuerySet builds n single-target queries: the exact patterns of the
// first n placed persons (deterministic target set).
func routingQuerySet(pop map[core.PersonID]pattern.Pattern, n int) ([]core.Query, []core.PersonID) {
	queries := make([]core.Query, n)
	targets := make([]core.PersonID, n)
	for i := 0; i < n; i++ {
		p := core.PersonID(i + 1)
		queries[i] = core.Query{ID: core.QueryID(i + 1), Locals: []pattern.Pattern{pop[p]}}
		targets[i] = p
	}
	return queries, targets
}

// tcpRoutedCluster stands up a loopback-TCP placement-first deployment:
// stationCount empty serving stations, then the whole population placed at
// the configured replication factor.
func tcpRoutedCluster(ctx context.Context, cfg RoutingConfig, pop map[core.PersonID]pattern.Pattern, stationCount int) (*cluster.Cluster, func(), error) {
	ln, err := transport.Listen("127.0.0.1:0", nil, nil)
	if err != nil {
		return nil, nil, err
	}
	links := make(map[uint32]transport.Link, stationCount)
	for id := uint32(0); id < uint32(stationCount); id++ {
		stationLink, err := transport.Dial(ln.Addr(), nil, nil)
		if err != nil {
			ln.Close()
			return nil, nil, err
		}
		centerLink, err := ln.Accept()
		if err != nil {
			ln.Close()
			return nil, nil, err
		}
		links[id] = centerLink
		go func(id uint32, link transport.Link) {
			_ = cluster.ServeStation(id, nil, link)
		}(id, stationLink)
	}
	c, err := cluster.NewWithLinks(routingOptions(cfg.Seed), links, cfg.PatternLength, nil, nil)
	if err != nil {
		ln.Close()
		return nil, nil, err
	}
	cleanup := func() {
		_ = c.Shutdown()
		_ = ln.Close()
	}
	if err := c.Place(ctx, pop, cluster.WithReplication(cfg.Replication)); err != nil {
		cleanup()
		return nil, nil, err
	}
	return c, cleanup, nil
}

// outcomesEqual reports whether two outcomes rank identically per query.
func outcomesEqual(queries []core.Query, a, b *cluster.Outcome) bool {
	for _, q := range queries {
		ra, rb := a.PerQuery[q.ID], b.PerQuery[q.ID]
		if len(ra) != len(rb) {
			return false
		}
		for i := range ra {
			if ra[i].Person != rb[i].Person || ra[i].Numerator != rb[i].Numerator || ra[i].Denominator != rb[i].Denominator {
				return false
			}
		}
	}
	return true
}

// targetRecall returns the fraction of targets present in their query's
// results.
func targetRecall(out *cluster.Outcome, targets []core.PersonID) float64 {
	hit := 0
	for i, target := range targets {
		for _, r := range out.PerQuery[core.QueryID(i+1)] {
			if r.Person == target {
				hit++
				break
			}
		}
	}
	if len(targets) == 0 {
		return 0
	}
	return float64(hit) / float64(len(targets))
}

// runRoutingScenario times one (cluster, queries, mode) cell. reference is
// the full-fan-out outcome the routed mode must reproduce (nil when this
// cell IS the reference).
func runRoutingScenario(ctx context.Context, c *cluster.Cluster, cfg RoutingConfig, queries []core.Query, targets []core.PersonID, mode string, reference *cluster.Outcome) (RoutingScenario, *cluster.Outcome, error) {
	var opts []cluster.SearchOption
	if mode == "full" {
		opts = append(opts, cluster.WithRouting(cluster.RoutingFull))
	}
	// Warm-up: fills the epoch's stats/version cache, the TCP buffers and —
	// in routed mode — the coordinator's summary cache; its refresh bytes
	// are the recorded one-time cost.
	warm, err := c.Search(ctx, queries, opts...)
	if err != nil {
		return RoutingScenario{}, nil, err
	}
	s := RoutingScenario{
		Transport:           "tcp",
		Stations:            c.Stations(),
		Queries:             len(queries),
		Mode:                mode,
		Repetitions:         cfg.Repetitions,
		Replication:         cfg.Replication,
		SummaryRefreshBytes: warm.Cost.SummaryBytesDown + warm.Cost.SummaryBytesUp,
		ResultsMatchFull:    true,
	}
	durations := make([]time.Duration, 0, cfg.Repetitions)
	var last *cluster.Outcome
	start := time.Now()
	for i := 0; i < cfg.Repetitions; i++ {
		out, err := c.Search(ctx, queries, opts...)
		if err != nil {
			return RoutingScenario{}, nil, err
		}
		if reference != nil && !outcomesEqual(queries, reference, out) {
			return RoutingScenario{}, nil, fmt.Errorf("bench: %d stations, %d queries: routed results diverge from full fan-out", c.Stations(), len(queries))
		}
		durations = append(durations, out.Cost.Elapsed)
		last = out
	}
	total := time.Since(start)
	sort.Slice(durations, func(i, j int) bool { return durations[i] < durations[j] })
	pct := func(p float64) float64 {
		return float64(durations[int(p*float64(len(durations)-1))].Microseconds())
	}
	msgs := last.Cost.MessagesDown + last.Cost.MessagesUp
	bytes := last.Cost.TotalBytes()
	q := float64(len(queries))
	s.ThroughputQPS = q * float64(cfg.Repetitions) / total.Seconds()
	s.P50Micros = pct(0.50)
	s.P99Micros = pct(0.99)
	s.BytesPerQuery = float64(bytes) / q
	s.MessagesPerQuery = float64(msgs) / q
	s.MessagesTotal = msgs
	s.BytesTotal = bytes
	s.StationsPruned = last.Cost.StationsPruned
	s.Recall = targetRecall(last, targets)
	if s.Recall != 1 {
		return RoutingScenario{}, nil, fmt.Errorf("bench: %d stations, %d queries, %s: recall %.3f, want 1", c.Stations(), len(queries), mode, s.Recall)
	}
	return s, last, nil
}

// RunRoutingBench executes the full sweep and assembles the report.
func RunRoutingBench(ctx context.Context, cfg RoutingConfig) (*RoutingReport, error) {
	cfg = cfg.withDefaults()
	pop := routingPopulation(cfg)
	report := &RoutingReport{
		Schema:     routingSchema,
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Config:     cfg,
	}
	for _, stations := range cfg.StationCounts {
		c, cleanup, err := tcpRoutedCluster(ctx, cfg, pop, stations)
		if err != nil {
			return nil, err
		}
		for _, nq := range cfg.QueryCounts {
			queries, targets := routingQuerySet(pop, nq)
			full, fullOut, err := runRoutingScenario(ctx, c, cfg, queries, targets, "full", nil)
			if err != nil {
				cleanup()
				return nil, err
			}
			routed, _, err := runRoutingScenario(ctx, c, cfg, queries, targets, "routed", fullOut)
			if err != nil {
				cleanup()
				return nil, err
			}
			report.Scenarios = append(report.Scenarios, full, routed)
			cmp := RoutingComparison{
				Stations:       stations,
				Queries:        nq,
				StationsPruned: routed.StationsPruned,
			}
			if routed.MessagesPerQuery > 0 {
				cmp.MessagesPerQueryRatio = full.MessagesPerQuery / routed.MessagesPerQuery
			}
			if full.ThroughputQPS > 0 {
				cmp.ThroughputRatio = routed.ThroughputQPS / full.ThroughputQPS
			}
			report.Comparisons = append(report.Comparisons, cmp)
		}
		cleanup()
	}
	return report, nil
}

// WriteRoutingJSON serializes the report, indented for diff-friendly
// commits of the recorded baseline.
func WriteRoutingJSON(w io.Writer, r *RoutingReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// CheckRoutingJSON validates a serialized report: parseable, the right
// schema, non-empty, every scenario recall-clean — and the acceptance gate:
// at every cell with 16 or more stations, the routed search moved strictly
// fewer messages per query than full fan-out with results asserted
// identical, and single-target cells pruned by at least 2×. The message
// counts are protocol-determined (the run is seeded, in-process bloom state
// included), so the gate is deterministic across machines, unlike
// throughput. CI runs this against both the freshly generated artifact and
// the committed BENCH_routing.json.
func CheckRoutingJSON(r io.Reader) error {
	var report RoutingReport
	if err := json.NewDecoder(r).Decode(&report); err != nil {
		return fmt.Errorf("bench: malformed routing report: %w", err)
	}
	if report.Schema != routingSchema {
		return fmt.Errorf("bench: schema %q, want %q", report.Schema, routingSchema)
	}
	if len(report.Scenarios) == 0 || len(report.Comparisons) == 0 {
		return fmt.Errorf("bench: routing report is empty")
	}
	for i, s := range report.Scenarios {
		if s.Mode != "routed" && s.Mode != "full" {
			return fmt.Errorf("bench: scenario %d has unknown mode %q", i, s.Mode)
		}
		if s.Repetitions <= 0 || s.ThroughputQPS <= 0 || s.MessagesTotal == 0 || s.BytesTotal == 0 {
			return fmt.Errorf("bench: scenario %d (%d stations, %d queries, %s) has empty measurements", i, s.Stations, s.Queries, s.Mode)
		}
		if s.Recall != 1 {
			return fmt.Errorf("bench: scenario %d (%d stations, %d queries, %s) recall %.3f — routing changed recall", i, s.Stations, s.Queries, s.Mode, s.Recall)
		}
		if !s.ResultsMatchFull {
			return fmt.Errorf("bench: scenario %d (%d stations, %d queries, %s) diverged from full fan-out", i, s.Stations, s.Queries, s.Mode)
		}
		if s.Mode == "full" && s.StationsPruned != 0 {
			return fmt.Errorf("bench: scenario %d: full fan-out claims %d pruned stations", i, s.StationsPruned)
		}
	}
	gated := false
	for _, cmp := range report.Comparisons {
		if cmp.Stations < 16 {
			continue
		}
		gated = true
		if cmp.MessagesPerQueryRatio <= 1 {
			return fmt.Errorf("bench: %d stations x %d queries: messages-per-query ratio %.2f — routing is not pruning fan-out", cmp.Stations, cmp.Queries, cmp.MessagesPerQueryRatio)
		}
		if cmp.Queries == 1 && cmp.MessagesPerQueryRatio < 2 {
			return fmt.Errorf("bench: %d stations single-target ratio %.2f < 2 — summaries barely prune", cmp.Stations, cmp.MessagesPerQueryRatio)
		}
		if cmp.StationsPruned == 0 {
			return fmt.Errorf("bench: %d stations x %d queries: nothing pruned at 16+ stations", cmp.Stations, cmp.Queries)
		}
	}
	if !gated {
		return fmt.Errorf("bench: no cell with >= 16 stations — nothing validates the pruning claim")
	}
	return nil
}

// RenderRouting prints the report as an aligned text table plus the
// headline ratios.
func RenderRouting(w io.Writer, r *RoutingReport) {
	fmt.Fprintf(w, "Summary routing baseline (%s, %s/%s, GOMAXPROCS=%d, R=%d, %d persons placed)\n",
		r.GoVersion, r.GOOS, r.GOARCH, r.GOMAXPROCS, r.Config.Replication, r.Config.Persons)
	fmt.Fprintf(w, "%9s %8s %8s %14s %10s %12s %10s %8s %10s\n",
		"stations", "queries", "mode", "thruput q/s", "p50 µs", "bytes/query", "msgs/query", "pruned", "recall")
	for _, s := range r.Scenarios {
		fmt.Fprintf(w, "%9d %8d %8s %14.1f %10.0f %12.0f %10.2f %8d %10.3f\n",
			s.Stations, s.Queries, s.Mode, s.ThroughputQPS, s.P50Micros, s.BytesPerQuery, s.MessagesPerQuery, s.StationsPruned, s.Recall)
	}
	for _, cmp := range r.Comparisons {
		fmt.Fprintf(w, "routed vs full at %d queries x %d stations: %.1fx fewer messages/query (%d stations pruned), %.2fx throughput\n",
			cmp.Queries, cmp.Stations, cmp.MessagesPerQueryRatio, cmp.StationsPruned, cmp.ThroughputRatio)
	}
}
