package bench

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

// quickAdaptiveConfig shrinks the traffic samples for the unit-test tier.
// The gates are seeded and protocol-determined, so even the small run must
// pass CheckAdaptiveJSON.
func quickAdaptiveConfig() AdaptiveConfig {
	return AdaptiveConfig{
		WarmQueries:    300,
		MeasureQueries: 800,
		Skews: []AdaptiveSkew{
			{Name: "uniform", ZipfS: 0, DigestSeeds: 1},
			{Name: "zipf1.2", ZipfS: 1.2, DigestSeeds: 1},
			{Name: "zipf2.0", ZipfS: 2.0, DigestSeeds: 3},
		},
	}
}

func TestAdaptiveBenchReportShape(t *testing.T) {
	r, err := RunAdaptiveBench(context.Background(), quickAdaptiveConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Scenarios) != 3 {
		t.Fatalf("%d scenarios, want 3", len(r.Scenarios))
	}
	for _, s := range r.Scenarios {
		if !s.ResultsMatchStatic || s.Recall != 1 {
			t.Fatalf("scenario %+v: the runner must refuse to record result drift", s)
		}
		if s.RolloutApplied != 6 {
			t.Fatalf("%s: rollout reached %d stations, want 6", s.Skew, s.RolloutApplied)
		}
	}
	var buf bytes.Buffer
	if err := WriteAdaptiveJSON(&buf, r); err != nil {
		t.Fatal(err)
	}
	if err := CheckAdaptiveJSON(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("round-tripped report fails its own check: %v", err)
	}
	var render bytes.Buffer
	RenderAdaptive(&render, r)
	if !strings.Contains(render.String(), "uniform") {
		t.Fatalf("render missing skew rows:\n%s", render.String())
	}
}

func TestCheckAdaptiveJSONRejects(t *testing.T) {
	if err := CheckAdaptiveJSON(strings.NewReader("{}")); err == nil {
		t.Fatal("empty report passed the check")
	}
	if err := CheckAdaptiveJSON(strings.NewReader("not json")); err == nil {
		t.Fatal("malformed report passed the check")
	}
}
