package bench

import (
	"context"
	"fmt"
	"io"
	"time"

	"dimatch/internal/cdr"
	"dimatch/internal/cluster"
	"dimatch/internal/core"
	"dimatch/internal/metrics"
)

// Figure4Config parameterizes the accuracy/efficiency sweep (Figures
// 4a-4d): a growing batch of query pattern sets against a fixed city and a
// fixed-size filter, so the Bloom baseline degrades with load exactly as in
// the paper.
type Figure4Config struct {
	// Seed fixes the city and the query draw.
	Seed uint64
	// Persons sizes the population (default 20_000 — large enough that the
	// naive shipment dominates the filter, as at the paper's scale).
	Persons int
	// Stations sizes the city grid (default 32; the simulator has far
	// fewer cores than a real deployment has stations, so wall-clock time
	// at high station counts measures decode serialization, not matching).
	Stations int
	// PatternCounts is the sweep of a, the number of query pattern sets
	// (default {10, 20, 30, 40, 50}; the paper sweeps 100..500 on a
	// 3.6M-person dataset — both are ~2.5% to 12.5% of the relevant
	// category's size).
	PatternCounts []int
	// QueriesScored caps how many queries per point are evaluated for
	// precision (scoring scans the whole population per query; the filter
	// is always built from all a queries). Default 10.
	QueriesScored int
	// FilterBits fixes m across the sweep (default 1<<15). Fixed sizing is
	// what produces the paper's BF degradation as a grows.
	FilterBits uint64
}

func (c Figure4Config) withDefaults() Figure4Config {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Persons == 0 {
		c.Persons = 20_000
	}
	if c.Stations == 0 {
		c.Stations = 32
	}
	if len(c.PatternCounts) == 0 {
		c.PatternCounts = []int{10, 25, 50, 75, 100}
	}
	if c.QueriesScored == 0 {
		c.QueriesScored = 10
	}
	if c.FilterBits == 0 {
		c.FilterBits = 1 << 15
	}
	return c
}

// Figure4Point is one x-position of Figures 4a-4d: every strategy's
// precision, time, communication and storage at one query-batch size.
type Figure4Point struct {
	Patterns  int
	Precision map[cluster.Strategy]float64
	Elapsed   map[cluster.Strategy]time.Duration
	// BytesUp is station->center traffic; BytesDissemination is one copy
	// of the query message (broadcast-effective downlink).
	BytesUp            map[cluster.Strategy]uint64
	BytesDissemination map[cluster.Strategy]uint64
	// CenterStorage is what the center must hold to answer (the whole
	// dataset for naive; filter plus reports otherwise).
	CenterStorage map[cluster.Strategy]uint64
	// FilterFill is the WBF bit-array fill ratio, the degradation driver.
	FilterFill float64
}

var figure4Strategies = []cluster.Strategy{cluster.StrategyNaive, cluster.StrategyBF, cluster.StrategyWBF}

// Figure4 runs the sweep in the paper's exact-matching regime (ε = 0, the
// unsalted scheme the paper describes): a service provider searches for
// customers matching preferred customers of one minority segment. Pattern
// diversity within the segment comes from quantized per-person volume
// levels, and ground truth per query is the exact IPM answer (Eq. 2 over
// materialized globals) — so naive precision is 1 by construction, exactly
// as the paper's Figure 4(a) shows.
func Figure4(ctx context.Context, cfg Figure4Config) ([]Figure4Point, error) {
	cfg = cfg.withDefaults()
	city := cdr.DefaultConfig()
	city.Seed = cfg.Seed
	city.Persons = cfg.Persons
	city.Stations = cfg.Stations
	// A week-long window: report traffic is per-match and does not grow
	// with pattern length, while the naive shipment does — the same length
	// asymmetry the paper's month-scale windows exhibit.
	city.Days = 7
	// The provider queries a minority segment, as in the paper's scenario;
	// report traffic scales with the segment's size, the naive shipment
	// with the whole population.
	city.CategoryWeights = []float64{0.04, 0.192, 0.192, 0.192, 0.192, 0.192}
	// Exact-matching regime: no per-interval jitter; diversity via volume
	// levels instead.
	city.Noise = 0
	city.VolumeLevels = 17
	d, err := cdr.Generate(city)
	if err != nil {
		return nil, err
	}
	data := stationData(d)

	maxA := 0
	for _, a := range cfg.PatternCounts {
		if a > maxA {
			maxA = a
		}
	}
	refPool := pickReferences(d, cdr.OfficeWorker, maxA)
	if maxA > len(refPool) {
		return nil, fmt.Errorf("bench: %d queries requested but category holds %d persons", maxA, len(refPool))
	}

	opts := cluster.Options{
		Params: core.Params{
			Bits:    cfg.FilterBits,
			Hashes:  5,
			Samples: core.DefaultSamples,
			Epsilon: 0, // exact matching: the regime where the paper's
			// unsalted scheme is sound (DESIGN.md D1/D8)
			Seed:      cfg.Seed,
			Tolerance: core.ToleranceScaled,
		},
		// Only complete partitions (weight sum exactly 1) are answers.
		MinScore: 0.999,
	}
	cl, err := cluster.New(opts, data)
	if err != nil {
		return nil, err
	}
	cl.Start()
	defer cl.Shutdown() //nolint:errcheck // benchmark teardown

	points := make([]Figure4Point, 0, len(cfg.PatternCounts))
	for _, a := range cfg.PatternCounts {
		queries := make([]core.Query, a)
		for i := 0; i < a; i++ {
			queries[i] = queryFor(d, core.QueryID(i+1), refPool[i])
		}
		point := Figure4Point{
			Patterns:           a,
			Precision:          make(map[cluster.Strategy]float64, 3),
			Elapsed:            make(map[cluster.Strategy]time.Duration, 3),
			BytesUp:            make(map[cluster.Strategy]uint64, 3),
			BytesDissemination: make(map[cluster.Strategy]uint64, 3),
			CenterStorage:      make(map[cluster.Strategy]uint64, 3),
		}
		for _, strat := range figure4Strategies {
			out, err := cl.Search(ctx, queries, cluster.WithStrategy(strat))
			if err != nil {
				return nil, err
			}
			point.Elapsed[strat] = out.Cost.Elapsed
			point.BytesUp[strat] = out.Cost.BytesUp
			point.BytesDissemination[strat] = out.Cost.BytesDown / uint64(cl.Stations())
			point.CenterStorage[strat] = out.Cost.CenterStorageBytes

			scored := cfg.QueriesScored
			if scored > a {
				scored = a
			}
			var total metrics.Confusion
			for i := 0; i < scored; i++ {
				ref := refPool[i]
				oracle, err := cluster.Oracle(data, queries[i], 0, 0)
				if err != nil {
					return nil, err
				}
				relevant := oracle[:0:0]
				for _, p := range oracle {
					if p != core.PersonID(ref) {
						relevant = append(relevant, p)
					}
				}
				total.Add(scoreQuery(out, core.QueryID(i+1), ref, relevant))
			}
			point.Precision[strat] = total.Precision()

			if strat == cluster.StrategyWBF {
				// Rebuild the filter once to read its fill (cheap relative
				// to the search itself).
				enc, err := core.NewEncoder(opts.Params, cl.PatternLength())
				if err != nil {
					return nil, err
				}
				for _, q := range queries {
					if err := enc.AddQuery(q); err != nil {
						return nil, err
					}
				}
				point.FilterFill = enc.Filter().FillRatio()
			}
		}
		points = append(points, point)
	}
	return points, nil
}

// RenderFigure4 writes the four panels as text tables, with communication
// and storage normalized to the naive strategy as the paper plots them.
func RenderFigure4(w io.Writer, points []Figure4Point) {
	fmt.Fprintln(w, "Figure 4(a): precision vs number of patterns")
	fmt.Fprintf(w, "%10s %10s %10s %10s %10s\n", "patterns", "naive", "bf", "wbf", "wbf-fill")
	for _, p := range points {
		fmt.Fprintf(w, "%10d %10.3f %10.3f %10.3f %10.3f\n", p.Patterns,
			p.Precision[cluster.StrategyNaive], p.Precision[cluster.StrategyBF],
			p.Precision[cluster.StrategyWBF], p.FilterFill)
	}
	fmt.Fprintln(w, "\nFigure 4(b): time cost vs number of patterns (ms)")
	fmt.Fprintf(w, "%10s %10s %10s %10s\n", "patterns", "naive", "bf", "wbf")
	for _, p := range points {
		fmt.Fprintf(w, "%10d %10.1f %10.1f %10.1f\n", p.Patterns,
			ms(p.Elapsed[cluster.StrategyNaive]), ms(p.Elapsed[cluster.StrategyBF]),
			ms(p.Elapsed[cluster.StrategyWBF]))
	}
	fmt.Fprintln(w, "\nFigure 4(c): communication cost vs number of patterns (fraction of naive; uplink + one dissemination)")
	fmt.Fprintf(w, "%10s %10s %10s %10s %14s\n", "patterns", "naive", "bf", "wbf", "naive-bytes")
	for _, p := range points {
		naive := float64(p.BytesUp[cluster.StrategyNaive] + p.BytesDissemination[cluster.StrategyNaive])
		bf := float64(p.BytesUp[cluster.StrategyBF] + p.BytesDissemination[cluster.StrategyBF])
		wbf := float64(p.BytesUp[cluster.StrategyWBF] + p.BytesDissemination[cluster.StrategyWBF])
		fmt.Fprintf(w, "%10d %10.3f %10.3f %10.3f %14.0f\n", p.Patterns, 1.0, bf/naive, wbf/naive, naive)
	}
	fmt.Fprintln(w, "\nFigure 4(d): center storage cost vs number of patterns (fraction of naive)")
	fmt.Fprintf(w, "%10s %10s %10s %10s %14s\n", "patterns", "naive", "bf", "wbf", "naive-bytes")
	for _, p := range points {
		naive := float64(p.CenterStorage[cluster.StrategyNaive])
		fmt.Fprintf(w, "%10d %10.3f %10.3f %10.3f %14.0f\n", p.Patterns, 1.0,
			float64(p.CenterStorage[cluster.StrategyBF])/naive,
			float64(p.CenterStorage[cluster.StrategyWBF])/naive, naive)
	}
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
