package bench

import (
	"context"
	"fmt"
	"io"

	"dimatch/internal/cdr"
	"dimatch/internal/cluster"
	"dimatch/internal/core"
	"dimatch/internal/metrics"
)

// TableIIConfig parameterizes the effectiveness evaluation on the labelled
// study population (paper Data set 2: 310 persons over four days, March
// 28-31 2009, six ground-truth categories).
type TableIIConfig struct {
	// Persons per day window (default 310, the paper's population).
	Persons int
	// Days is the number of independent one-day windows (default 4).
	Days int
	// QueriesPerDay is how many reference persons are queried per window
	// (default 12, two per category).
	QueriesPerDay int
	// Seed of the first window.
	Seed uint64
	// Verify enables the candidate-verification phase (exact Eq. 2 check on
	// fetched globals) — eliminates residual false positives for a small
	// extra round trip.
	Verify bool
}

func (c TableIIConfig) withDefaults() TableIIConfig {
	if c.Persons == 0 {
		c.Persons = 310
	}
	if c.Days == 0 {
		c.Days = 4
	}
	if c.QueriesPerDay == 0 {
		c.QueriesPerDay = 12
	}
	if c.Seed == 0 {
		c.Seed = 328 // March 28th
	}
	return c
}

// TableIIRow is one day's effectiveness numbers.
type TableIIRow struct {
	Day       string
	Precision float64
	Recall    float64
	F1        float64
}

// TableII runs the per-day effectiveness evaluation: for each one-day
// window, query a sample of labelled persons and score retrieval against
// category membership (the paper's ground truth).
func TableII(ctx context.Context, cfg TableIIConfig) ([]TableIIRow, error) {
	cfg = cfg.withDefaults()
	dayNames := []string{
		"March 28th, 2009", "March 29th, 2009", "March 30th, 2009", "March 31st, 2009",
		"day 5", "day 6", "day 7",
	}
	rows := make([]TableIIRow, 0, cfg.Days)
	for day := 0; day < cfg.Days; day++ {
		city := cdr.DefaultConfig()
		city.Seed = cfg.Seed + uint64(day)
		city.Persons = cfg.Persons
		city.Days = 1
		city.IntervalsPerDay = 4 // the paper's 6-hour figure resolution
		d, err := cdr.Generate(city)
		if err != nil {
			return nil, err
		}
		cl, err := cluster.New(cluster.Options{
			Params: core.Params{
				Bits:           1 << 18,
				Hashes:         5,
				Samples:        core.DefaultSamples,
				Epsilon:        1,
				Seed:           cfg.Seed,
				PositionSalted: true,
			},
			MinScore: 0.9,
			Verify:   cfg.Verify,
		}, stationData(d))
		if err != nil {
			return nil, err
		}
		cl.Start()

		// Reference persons cycle the categories, preferring exemplars
		// whose anchors expose the full category split.
		perCat := (cfg.QueriesPerDay + 5) / 6
		pools := make([][]cdr.PersonID, 0, 6)
		for _, c := range cdr.Categories() {
			pools = append(pools, pickReferences(d, c, perCat))
		}
		var refs []cdr.PersonID
		for round := 0; len(refs) < cfg.QueriesPerDay; round++ {
			added := false
			for _, pool := range pools {
				if round < len(pool) && len(refs) < cfg.QueriesPerDay {
					refs = append(refs, pool[round])
					added = true
				}
			}
			if !added {
				break
			}
		}
		queries := make([]core.Query, len(refs))
		for i, ref := range refs {
			queries[i] = queryFor(d, core.QueryID(i+1), ref)
		}
		out, err := cl.Search(ctx, queries, cluster.WithStrategy(cluster.StrategyWBF))
		if err != nil {
			_ = cl.Shutdown()
			return nil, err
		}
		var total metrics.Confusion
		for i, ref := range refs {
			total.Add(scoreQuery(out, core.QueryID(i+1), ref, relevantSet(d, ref)))
		}
		if err := cl.Shutdown(); err != nil {
			return nil, err
		}

		name := fmt.Sprintf("day %d", day+1)
		if day < len(dayNames) {
			name = dayNames[day]
		}
		rows = append(rows, TableIIRow{
			Day:       name,
			Precision: total.Precision(),
			Recall:    total.Recall(),
			F1:        total.F1(),
		})
	}
	return rows, nil
}

// RenderTableII writes the table in the paper's format.
func RenderTableII(w io.Writer, rows []TableIIRow) {
	fmt.Fprintln(w, "Table II: incomplete pattern matching effectiveness")
	fmt.Fprintf(w, "%-18s %10s %10s %10s\n", "Days", "Precision", "Recall", "F1")
	for _, r := range rows {
		fmt.Fprintf(w, "%-18s %10.2f %10.2f %10.2f\n", r.Day, r.Precision, r.Recall, r.F1)
	}
	fmt.Fprintln(w, "(paper: precision 0.97-0.99, recall 0.99, F1 0.98-0.99)")
}
