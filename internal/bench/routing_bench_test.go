package bench

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

// quickRoutingConfig keeps the sweep small enough for the unit-test tier
// while still crossing the 16-station gate threshold.
func quickRoutingConfig() RoutingConfig {
	return RoutingConfig{
		Persons:       200,
		StationCounts: []int{4, 16},
		QueryCounts:   []int{1, 8},
		Repetitions:   2,
	}
}

func TestRoutingBenchReportShape(t *testing.T) {
	r, err := RunRoutingBench(context.Background(), quickRoutingConfig())
	if err != nil {
		t.Fatal(err)
	}
	// 2 station counts × 2 query counts × 2 modes.
	if len(r.Scenarios) != 8 {
		t.Fatalf("%d scenarios, want 8", len(r.Scenarios))
	}
	if len(r.Comparisons) != 4 {
		t.Fatalf("%d comparisons, want 4", len(r.Comparisons))
	}
	for _, s := range r.Scenarios {
		if s.Recall != 1 || !s.ResultsMatchFull {
			t.Fatalf("scenario %+v: the runner must refuse to record recall drift", s)
		}
	}
	for _, cmp := range r.Comparisons {
		if cmp.Stations < 16 {
			continue
		}
		if cmp.MessagesPerQueryRatio <= 1 || cmp.StationsPruned == 0 {
			t.Fatalf("16-station cell did not prune: %+v", cmp)
		}
		if cmp.Queries == 1 && cmp.MessagesPerQueryRatio < 2 {
			t.Fatalf("single-target ratio %.2f < 2 at 16 stations", cmp.MessagesPerQueryRatio)
		}
	}

	var buf bytes.Buffer
	if err := WriteRoutingJSON(&buf, r); err != nil {
		t.Fatal(err)
	}
	if err := CheckRoutingJSON(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("round-tripped report rejected: %v", err)
	}
	var render bytes.Buffer
	RenderRouting(&render, r)
	if !strings.Contains(render.String(), "fewer messages/query") {
		t.Fatal("render missing comparison line")
	}
}

func TestCheckRoutingJSONRejectsBadInput(t *testing.T) {
	scenario := `{"mode":"routed","repetitions":1,"throughput_qps":1,"messages_total":1,"bytes_total":1,"recall":1,"results_match_full":true,"stations":16,"queries":1}`
	comparison := `{"stations":16,"queries":1,"messages_per_query_ratio":4,"stations_pruned":10}`
	cases := map[string]string{
		"empty":        "",
		"not json":     "not json at all",
		"wrong schema": `{"schema":"other/v9","scenarios":[` + scenario + `],"comparisons":[` + comparison + `]}`,
		"no scenarios": `{"schema":"dimatch-routing-bench/v1","scenarios":[],"comparisons":[]}`,
		"recall drift": `{"schema":"dimatch-routing-bench/v1","scenarios":[
			{"mode":"routed","repetitions":1,"throughput_qps":1,"messages_total":1,"bytes_total":1,"recall":0.5,"results_match_full":true,"stations":16,"queries":1}],"comparisons":[` + comparison + `]}`,
		"result drift": `{"schema":"dimatch-routing-bench/v1","scenarios":[
			{"mode":"routed","repetitions":1,"throughput_qps":1,"messages_total":1,"bytes_total":1,"recall":1,"results_match_full":false,"stations":16,"queries":1}],"comparisons":[` + comparison + `]}`,
		"no pruning at 16": `{"schema":"dimatch-routing-bench/v1","scenarios":[` + scenario + `],"comparisons":[
			{"stations":16,"queries":1,"messages_per_query_ratio":1.0,"stations_pruned":0}]}`,
		"only small cells": `{"schema":"dimatch-routing-bench/v1","scenarios":[` + scenario + `],"comparisons":[
			{"stations":4,"queries":1,"messages_per_query_ratio":2,"stations_pruned":2}]}`,
	}
	for name, in := range cases {
		if err := CheckRoutingJSON(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
