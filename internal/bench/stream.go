// Streaming-ingest benchmark: the recorded sustained-pipeline baseline.
//
// Three phases run over one loopback-TCP cluster and one report gates all
// of them in CI against BENCH_stream.json:
//
//   - Sustained: producers offer a fixed pattern rate to a block-mode
//     pipeline while searcher goroutines continuously query a static warm
//     cohort. The recorded figures are the accepted patterns/sec (the
//     acceptance floor is 10k/s), the searchers' p50/p99 latency (p99 must
//     stay bounded under ingest load), warm-cohort recall during the storm
//     and full-population recall after the final flush — the runner refuses
//     to record anything if recall moved off 1.
//   - Churn: a second, TTL-bearing pipeline streams a cohort, proves it
//     live, then waits for the deadline wheel to evict it and proves the
//     expired patterns stopped matching while the static population's
//     recall held — TTL churn must not bleed into unexpired residents.
//   - Shed: a deliberately tiny shed-mode pipeline is saturated to show
//     admission control dropping instead of blocking, with the accounting
//     invariant Accepted + Shed + Rejected == Submitted checked exactly.
package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dimatch/internal/cluster"
	"dimatch/internal/core"
	"dimatch/internal/pattern"
	"dimatch/internal/stream"
	"dimatch/internal/transport"
)

// StreamBenchConfig parameterizes the streaming baseline.
type StreamBenchConfig struct {
	// Seed fixes every generated pattern and the searchers' sampling.
	Seed uint64
	// Stations is the cluster size (default 4).
	Stations int
	// PatternLength is the streamed time series' length (default 12).
	PatternLength int
	// Replication is the pipeline's copy factor (default 2).
	Replication int
	// TargetRate is the offered sustained load in patterns/sec (default
	// 50000). Block-mode admission means accepted == offered unless the
	// pipeline genuinely cannot keep up.
	TargetRate int
	// Duration is the sustained-phase window (default 2s).
	Duration time.Duration
	// Producers is the number of submitting goroutines (default 2).
	Producers int
	// Searchers is the number of concurrent search goroutines (default 2);
	// each runs SearchBatch-query searches back to back (default 4).
	Searchers   int
	SearchBatch int
	// WarmPersons sizes the static cohort the concurrent searches target
	// (default 48).
	WarmPersons int
	// ChurnPersons sizes the TTL cohort (default 300); TTL is its lifetime
	// (default 1500ms — comfortably past the flush-and-verify preamble).
	ChurnPersons int
	TTL          time.Duration
	// ShedSubmissions is the saturation volume for the shed phase (default
	// 4000).
	ShedSubmissions int
}

func (c StreamBenchConfig) withDefaults() StreamBenchConfig {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Stations == 0 {
		c.Stations = 4
	}
	if c.PatternLength == 0 {
		c.PatternLength = 12
	}
	if c.Replication == 0 {
		c.Replication = 2
	}
	if c.TargetRate == 0 {
		c.TargetRate = 50000
	}
	if c.Duration == 0 {
		c.Duration = 2 * time.Second
	}
	if c.Producers == 0 {
		c.Producers = 2
	}
	if c.Searchers == 0 {
		c.Searchers = 2
	}
	if c.SearchBatch == 0 {
		c.SearchBatch = 4
	}
	if c.WarmPersons == 0 {
		c.WarmPersons = 48
	}
	if c.ChurnPersons == 0 {
		c.ChurnPersons = 300
	}
	if c.TTL == 0 {
		c.TTL = 1500 * time.Millisecond
	}
	if c.ShedSubmissions == 0 {
		c.ShedSubmissions = 4000
	}
	return c
}

// StreamSustained is the sustained-ingest phase's record.
type StreamSustained struct {
	OfferedRate     int     `json:"offered_rate"`
	DurationSeconds float64 `json:"duration_seconds"`
	Submitted       uint64  `json:"submitted"`
	Accepted        uint64  `json:"accepted"`
	Blocked         uint64  `json:"blocked"`
	FlushFailures   uint64  `json:"flush_failures"`
	Flushes         uint64  `json:"flushes"`
	FlushedCopies   uint64  `json:"flushed_copies"`
	// PatternsPerSec is accepted patterns over the window including the
	// final drain — the sustained figure the acceptance gates at 10k/s.
	PatternsPerSec float64 `json:"patterns_per_sec"`
	CopiesPerSec   float64 `json:"copies_per_sec"`
	// Searches ran concurrently with the ingest storm; their recall over
	// the warm cohort must be 1 and their p99 bounded.
	Searches     int     `json:"searches"`
	SearchRecall float64 `json:"search_recall"`
	SearchP50Us  float64 `json:"search_p50_us"`
	SearchP99Us  float64 `json:"search_p99_us"`
	// FinalRecall samples the streamed population after the last flush —
	// everything accepted must be retrievable (recall 1 vs. the oracle of
	// submitted patterns).
	FinalRecall     float64 `json:"final_recall"`
	AccountingExact bool    `json:"accounting_exact"`
}

// StreamChurn is the TTL-eviction phase's record.
type StreamChurn struct {
	Cohort          int     `json:"cohort"`
	TTLMillis       int64   `json:"ttl_ms"`
	LiveRecall      float64 `json:"live_recall"`
	Evicted         uint64  `json:"evicted"`
	ExpiredMatches  int     `json:"expired_matches"`
	StaticRecall    float64 `json:"static_recall_after"`
	ResidentsBefore int     `json:"residents_before"`
	ResidentsAfter  int     `json:"residents_after"`
}

// StreamShed is the admission-control phase's record.
type StreamShed struct {
	Submitted       uint64 `json:"submitted"`
	Accepted        uint64 `json:"accepted"`
	Shed            uint64 `json:"shed"`
	Rejected        uint64 `json:"rejected"`
	AccountingExact bool   `json:"accounting_exact"`
}

// StreamReport is the full run, serialized to BENCH_stream.json.
type StreamReport struct {
	Schema     string            `json:"schema"`
	GoVersion  string            `json:"go"`
	GOOS       string            `json:"goos"`
	GOARCH     string            `json:"goarch"`
	GOMAXPROCS int               `json:"gomaxprocs"`
	Config     StreamBenchConfig `json:"config"`
	Sustained  StreamSustained   `json:"sustained"`
	Churn      StreamChurn       `json:"churn"`
	Shed       StreamShed        `json:"shed"`
}

// streamSchema versions the JSON layout for the CI validator.
const streamSchema = "dimatch-stream-bench/v1"

// streamPattern derives person p's deterministic wide-valued pattern:
// values up to 1000 keep single-target queries selective at ε=1, exactly as
// the routing population does.
func streamPattern(seed uint64, p core.PersonID, length int) pattern.Pattern {
	rng := rand.New(rand.NewSource(int64(seed ^ uint64(p)*0x9e3779b97f4a7c15)))
	pat := make(pattern.Pattern, length)
	for i := range pat {
		pat[i] = rng.Int63n(1000)
	}
	pat[0]++ // never all-zero
	return pat
}

// Person-ID bands per phase, far apart so the phases never collide.
const (
	streamWarmBase      core.PersonID = 1
	streamSustainedBase core.PersonID = 1_000_000
	streamChurnBase     core.PersonID = 2_000_000
	streamShedBase      core.PersonID = 3_000_000
)

// tcpStreamCluster stands up an empty loopback-TCP cluster for streaming.
func tcpStreamCluster(cfg StreamBenchConfig) (*cluster.Cluster, func(), error) {
	ln, err := transport.Listen("127.0.0.1:0", nil, nil)
	if err != nil {
		return nil, nil, err
	}
	links := make(map[uint32]transport.Link, cfg.Stations)
	for id := uint32(0); id < uint32(cfg.Stations); id++ {
		stationLink, err := transport.Dial(ln.Addr(), nil, nil)
		if err != nil {
			ln.Close()
			return nil, nil, err
		}
		centerLink, err := ln.Accept()
		if err != nil {
			ln.Close()
			return nil, nil, err
		}
		links[id] = centerLink
		go func(id uint32, link transport.Link) {
			_ = cluster.ServeStation(id, nil, link)
		}(id, stationLink)
	}
	c, err := cluster.NewWithLinks(routingOptions(cfg.Seed), links, cfg.PatternLength, nil, nil)
	if err != nil {
		ln.Close()
		return nil, nil, err
	}
	return c, func() { _ = c.Shutdown(); _ = ln.Close() }, nil
}

// streamRecall searches for the given persons' exact patterns in batches
// and returns the fraction retrieved.
func streamRecall(ctx context.Context, c *cluster.Cluster, cfg StreamBenchConfig, persons []core.PersonID) (float64, error) {
	hit := 0
	for at := 0; at < len(persons); at += 8 {
		end := at + 8
		if end > len(persons) {
			end = len(persons)
		}
		batch := persons[at:end]
		queries := make([]core.Query, len(batch))
		for i, p := range batch {
			queries[i] = core.Query{ID: core.QueryID(i + 1), Locals: []pattern.Pattern{streamPattern(cfg.Seed, p, cfg.PatternLength)}}
		}
		out, err := c.Search(ctx, queries)
		if err != nil {
			return 0, err
		}
		for i, p := range batch {
			for _, r := range out.PerQuery[core.QueryID(i+1)] {
				if r.Person == p {
					hit++
					break
				}
			}
		}
	}
	if len(persons) == 0 {
		return 0, nil
	}
	return float64(hit) / float64(len(persons)), nil
}

// runStreamSustained executes the sustained phase on the shared cluster.
func runStreamSustained(ctx context.Context, c *cluster.Cluster, cfg StreamBenchConfig) (StreamSustained, error) {
	in, err := stream.New(c, stream.Options{Replication: cfg.Replication})
	if err != nil {
		return StreamSustained{}, err
	}
	defer in.Close()

	// Warm cohort: the fixed targets the concurrent searches chase.
	warm := make([]core.PersonID, cfg.WarmPersons)
	for i := range warm {
		warm[i] = streamWarmBase + core.PersonID(i)
		if err := in.Submit(ctx, warm[i], streamPattern(cfg.Seed, warm[i], cfg.PatternLength)); err != nil {
			return StreamSustained{}, err
		}
	}
	if err := in.Flush(ctx); err != nil {
		return StreamSustained{}, err
	}
	if r, err := streamRecall(ctx, c, cfg, warm); err != nil {
		return StreamSustained{}, err
	} else if r != 1 {
		return StreamSustained{}, fmt.Errorf("bench: warm cohort recall %.3f before the storm, want 1", r)
	}

	// Concurrent searchers: recall over the warm cohort must hold while
	// the pipeline storms; their latency distribution is the bounded-p99
	// evidence.
	stop := make(chan struct{})
	var searchWg sync.WaitGroup
	var searchMu sync.Mutex
	var durations []time.Duration
	misses := 0
	var searchErr error
	for w := 0; w < cfg.Searchers; w++ {
		w := w
		searchWg.Add(1)
		go func() {
			defer searchWg.Done()
			rng := rand.New(rand.NewSource(int64(cfg.Seed) + int64(w) + 7))
			for {
				select {
				case <-stop:
					return
				default:
				}
				queries := make([]core.Query, cfg.SearchBatch)
				targets := make([]core.PersonID, cfg.SearchBatch)
				for i := range queries {
					p := warm[rng.Intn(len(warm))]
					targets[i] = p
					queries[i] = core.Query{ID: core.QueryID(i + 1), Locals: []pattern.Pattern{streamPattern(cfg.Seed, p, cfg.PatternLength)}}
				}
				out, err := c.Search(ctx, queries)
				searchMu.Lock()
				if err != nil {
					if searchErr == nil {
						searchErr = err
					}
					searchMu.Unlock()
					return
				}
				durations = append(durations, out.Cost.Elapsed)
				for i, p := range targets {
					found := false
					for _, r := range out.PerQuery[core.QueryID(i+1)] {
						if r.Person == p {
							found = true
							break
						}
					}
					if !found {
						misses++
					}
				}
				searchMu.Unlock()
			}
		}()
	}

	// Producers: offer TargetRate patterns/sec in 5ms bursts until the
	// window closes. Block-mode admission makes every offered pattern land
	// (or the throughput figure sag — which the gate would catch).
	var next atomic.Uint64
	next.Store(uint64(streamSustainedBase))
	deadline := time.Now().Add(cfg.Duration)
	burst := cfg.TargetRate / cfg.Producers / 200 // per 5ms tick
	if burst < 1 {
		burst = 1
	}
	var prodWg sync.WaitGroup
	var prodMu sync.Mutex
	var prodErr error
	start := time.Now()
	for g := 0; g < cfg.Producers; g++ {
		prodWg.Add(1)
		go func() {
			defer prodWg.Done()
			ticker := time.NewTicker(5 * time.Millisecond)
			defer ticker.Stop()
			for time.Now().Before(deadline) {
				for i := 0; i < burst; i++ {
					p := core.PersonID(next.Add(1))
					if err := in.Submit(ctx, p, streamPattern(cfg.Seed, p, cfg.PatternLength)); err != nil {
						prodMu.Lock()
						if prodErr == nil {
							prodErr = err
						}
						prodMu.Unlock()
						return
					}
				}
				select {
				case <-ticker.C:
				case <-ctx.Done():
					return
				}
			}
		}()
	}
	prodWg.Wait()
	if err := in.Flush(ctx); err != nil {
		return StreamSustained{}, err
	}
	elapsed := time.Since(start)
	close(stop)
	searchWg.Wait()
	if prodErr != nil {
		return StreamSustained{}, prodErr
	}
	if searchErr != nil {
		return StreamSustained{}, searchErr
	}

	rep := in.Report()
	s := StreamSustained{
		OfferedRate:     cfg.TargetRate,
		DurationSeconds: elapsed.Seconds(),
		Submitted:       rep.Submitted,
		Accepted:        rep.Accepted,
		Blocked:         rep.Blocked,
		FlushFailures:   rep.FlushFailures,
		Flushes:         rep.Flushes,
		FlushedCopies:   rep.FlushedPatterns,
		PatternsPerSec:  float64(rep.Accepted) / elapsed.Seconds(),
		CopiesPerSec:    float64(rep.FlushedPatterns) / elapsed.Seconds(),
		Searches:        len(durations),
		AccountingExact: rep.Accepted+rep.Shed+rep.Rejected == rep.Submitted,
	}
	if len(durations) > 0 {
		sort.Slice(durations, func(i, j int) bool { return durations[i] < durations[j] })
		pct := func(p float64) float64 {
			return float64(durations[int(p*float64(len(durations)-1))].Microseconds())
		}
		s.SearchP50Us = pct(0.50)
		s.SearchP99Us = pct(0.99)
	}
	total := 0
	searchMu.Lock()
	total = misses
	searchMu.Unlock()
	if total == 0 {
		s.SearchRecall = 1
	} else {
		s.SearchRecall = 1 - float64(total)/float64(len(durations)*cfg.SearchBatch)
	}
	if s.SearchRecall != 1 {
		return StreamSustained{}, fmt.Errorf("bench: concurrent-search recall %.4f under ingest load, want 1", s.SearchRecall)
	}

	// Final recall: sample the streamed population evenly and verify every
	// accepted pattern is retrievable.
	last := core.PersonID(next.Load())
	streamed := int(last - streamSustainedBase)
	sampleN := 96
	if streamed < sampleN {
		sampleN = streamed
	}
	sample := make([]core.PersonID, 0, sampleN)
	for i := 0; i < sampleN; i++ {
		sample = append(sample, streamSustainedBase+1+core.PersonID(i*streamed/sampleN))
	}
	final, err := streamRecall(ctx, c, cfg, sample)
	if err != nil {
		return StreamSustained{}, err
	}
	s.FinalRecall = final
	if final != 1 {
		return StreamSustained{}, fmt.Errorf("bench: final streamed-population recall %.4f, want 1", final)
	}
	return s, nil
}

// runStreamChurn executes the TTL phase on the shared cluster.
func runStreamChurn(ctx context.Context, c *cluster.Cluster, cfg StreamBenchConfig) (StreamChurn, error) {
	in, err := stream.New(c, stream.Options{Replication: cfg.Replication, TTL: cfg.TTL})
	if err != nil {
		return StreamChurn{}, err
	}
	defer in.Close()

	cohort := make([]core.PersonID, cfg.ChurnPersons)
	for i := range cohort {
		cohort[i] = streamChurnBase + core.PersonID(i)
		if err := in.Submit(ctx, cohort[i], streamPattern(cfg.Seed, cohort[i], cfg.PatternLength)); err != nil {
			return StreamChurn{}, err
		}
	}
	if err := in.Flush(ctx); err != nil {
		return StreamChurn{}, err
	}
	churn := StreamChurn{Cohort: cfg.ChurnPersons, TTLMillis: cfg.TTL.Milliseconds()}

	live, err := streamRecall(ctx, c, cfg, cohort)
	if err != nil {
		return StreamChurn{}, err
	}
	churn.LiveRecall = live
	if live != 1 {
		return StreamChurn{}, fmt.Errorf("bench: churn cohort recall %.3f while live, want 1", live)
	}
	st, err := c.Stats(ctx)
	if err != nil {
		return StreamChurn{}, err
	}
	churn.ResidentsBefore = st.TotalResidents()

	expiry := time.Now().Add(10*cfg.TTL + 5*time.Second)
	for in.Report().TTLEvictions < uint64(cfg.ChurnPersons) {
		if time.Now().After(expiry) {
			return StreamChurn{}, fmt.Errorf("bench: only %d/%d TTL evictions before timeout", in.Report().TTLEvictions, cfg.ChurnPersons)
		}
		time.Sleep(cfg.TTL / 20)
	}
	churn.Evicted = in.Report().TTLEvictions

	// Expired patterns must stop matching; the static warm cohort must not.
	expired, err := streamRecall(ctx, c, cfg, cohort)
	if err != nil {
		return StreamChurn{}, err
	}
	churn.ExpiredMatches = int(expired * float64(len(cohort)))
	if churn.ExpiredMatches != 0 {
		return StreamChurn{}, fmt.Errorf("bench: %d expired patterns still match", churn.ExpiredMatches)
	}
	warm := make([]core.PersonID, cfg.WarmPersons)
	for i := range warm {
		warm[i] = streamWarmBase + core.PersonID(i)
	}
	static, err := streamRecall(ctx, c, cfg, warm)
	if err != nil {
		return StreamChurn{}, err
	}
	churn.StaticRecall = static
	if static != 1 {
		return StreamChurn{}, fmt.Errorf("bench: static population recall %.3f after TTL churn, want 1", static)
	}
	st, err = c.Stats(ctx)
	if err != nil {
		return StreamChurn{}, err
	}
	churn.ResidentsAfter = st.TotalResidents()
	if churn.ResidentsAfter >= churn.ResidentsBefore {
		return StreamChurn{}, fmt.Errorf("bench: residents %d -> %d; TTL eviction freed nothing", churn.ResidentsBefore, churn.ResidentsAfter)
	}
	return churn, nil
}

// runStreamShed executes the admission-control phase on the shared cluster.
func runStreamShed(ctx context.Context, c *cluster.Cluster, cfg StreamBenchConfig) (StreamShed, error) {
	in, err := stream.New(c, stream.Options{
		QueueCap:    4,
		FlushBatch:  1,
		Encoders:    1,
		Admission:   stream.Shed,
		Replication: 1,
	})
	if err != nil {
		return StreamShed{}, err
	}
	defer in.Close()

	var wg sync.WaitGroup
	workers := 8
	for g := 0; g < workers; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < cfg.ShedSubmissions/workers; i++ {
				p := streamShedBase + core.PersonID(g*cfg.ShedSubmissions/workers+i)
				_ = in.Submit(ctx, p, streamPattern(cfg.Seed, p, cfg.PatternLength))
			}
		}()
	}
	wg.Wait()
	if err := in.Flush(ctx); err != nil {
		return StreamShed{}, err
	}
	rep := in.Report()
	shed := StreamShed{
		Submitted:       rep.Submitted,
		Accepted:        rep.Accepted,
		Shed:            rep.Shed,
		Rejected:        rep.Rejected,
		AccountingExact: rep.Accepted+rep.Shed+rep.Rejected == rep.Submitted,
	}
	if shed.Shed == 0 {
		return StreamShed{}, fmt.Errorf("bench: %d submissions through a 4-deep shed-mode queue shed nothing", shed.Submitted)
	}
	if !shed.AccountingExact {
		return StreamShed{}, fmt.Errorf("bench: shed accounting broken: %d+%d+%d != %d", shed.Accepted, shed.Shed, shed.Rejected, shed.Submitted)
	}
	return shed, nil
}

// RunStreamBench executes the three phases and assembles the report.
func RunStreamBench(ctx context.Context, cfg StreamBenchConfig) (*StreamReport, error) {
	cfg = cfg.withDefaults()
	c, cleanup, err := tcpStreamCluster(cfg)
	if err != nil {
		return nil, err
	}
	defer cleanup()
	report := &StreamReport{
		Schema:     streamSchema,
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Config:     cfg,
	}
	if report.Sustained, err = runStreamSustained(ctx, c, cfg); err != nil {
		return nil, err
	}
	if report.Churn, err = runStreamChurn(ctx, c, cfg); err != nil {
		return nil, err
	}
	if report.Shed, err = runStreamShed(ctx, c, cfg); err != nil {
		return nil, err
	}
	return report, nil
}

// WriteStreamJSON serializes the report, indented for diff-friendly commits
// of the recorded baseline.
func WriteStreamJSON(w io.Writer, r *StreamReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// CheckStreamJSON validates a serialized report against the acceptance
// gates: sustained ingest at 10k+ patterns/sec with concurrent-search
// recall 1 and p99 under 250ms, zero lost copies, exact admission
// accounting, a TTL churn pass that evicted its whole cohort without
// touching the static population, and a shed phase that demonstrably
// dropped (and accounted) instead of blocking. CI runs this against both
// the freshly generated artifact and the committed BENCH_stream.json.
func CheckStreamJSON(r io.Reader) error {
	var report StreamReport
	if err := json.NewDecoder(r).Decode(&report); err != nil {
		return fmt.Errorf("bench: malformed stream report: %w", err)
	}
	if report.Schema != streamSchema {
		return fmt.Errorf("bench: schema %q, want %q", report.Schema, streamSchema)
	}
	s := report.Sustained
	if s.Accepted == 0 || s.Searches == 0 {
		return fmt.Errorf("bench: sustained phase is empty")
	}
	if s.PatternsPerSec < 10000 {
		return fmt.Errorf("bench: sustained %.0f patterns/sec < the 10k floor", s.PatternsPerSec)
	}
	if s.SearchRecall != 1 {
		return fmt.Errorf("bench: concurrent-search recall %.4f, want 1", s.SearchRecall)
	}
	if s.FinalRecall != 1 {
		return fmt.Errorf("bench: final streamed-population recall %.4f, want 1", s.FinalRecall)
	}
	if s.FlushFailures != 0 {
		return fmt.Errorf("bench: %d copies lost to flush failures", s.FlushFailures)
	}
	if s.SearchP99Us <= 0 || s.SearchP99Us > 250_000 {
		return fmt.Errorf("bench: search p99 %.0fµs under ingest load — unbounded or unmeasured", s.SearchP99Us)
	}
	if !s.AccountingExact {
		return fmt.Errorf("bench: sustained admission accounting is inexact")
	}
	ch := report.Churn
	if ch.Cohort == 0 || ch.Evicted < uint64(ch.Cohort) {
		return fmt.Errorf("bench: churn evicted %d of %d", ch.Evicted, ch.Cohort)
	}
	if ch.LiveRecall != 1 || ch.StaticRecall != 1 {
		return fmt.Errorf("bench: churn recall live %.3f / static-after %.3f, want 1/1", ch.LiveRecall, ch.StaticRecall)
	}
	if ch.ExpiredMatches != 0 {
		return fmt.Errorf("bench: %d expired patterns still matched", ch.ExpiredMatches)
	}
	if ch.ResidentsAfter >= ch.ResidentsBefore {
		return fmt.Errorf("bench: TTL churn freed no residents (%d -> %d)", ch.ResidentsBefore, ch.ResidentsAfter)
	}
	sh := report.Shed
	if sh.Shed == 0 {
		return fmt.Errorf("bench: shed phase dropped nothing — backpressure never engaged")
	}
	if !sh.AccountingExact {
		return fmt.Errorf("bench: shed accounting is inexact")
	}
	return nil
}

// RenderStream prints the report as aligned text.
func RenderStream(w io.Writer, r *StreamReport) {
	fmt.Fprintf(w, "Streaming ingest baseline (%s, %s/%s, GOMAXPROCS=%d, %d stations, R=%d)\n",
		r.GoVersion, r.GOOS, r.GOARCH, r.GOMAXPROCS, r.Config.Stations, r.Config.Replication)
	s := r.Sustained
	fmt.Fprintf(w, "sustained: %.0f patterns/sec accepted (offered %d/s for %.2fs), %d flushes, %.0f copies/sec, %d lost\n",
		s.PatternsPerSec, s.OfferedRate, s.DurationSeconds, s.Flushes, s.CopiesPerSec, s.FlushFailures)
	fmt.Fprintf(w, "  concurrent searches: %d runs, recall %.3f, p50 %.0fµs, p99 %.0fµs; final recall %.3f\n",
		s.Searches, s.SearchRecall, s.SearchP50Us, s.SearchP99Us, s.FinalRecall)
	ch := r.Churn
	fmt.Fprintf(w, "ttl churn: %d patterns, ttl %dms: live recall %.3f, evicted %d, expired matches %d, static recall %.3f, residents %d -> %d\n",
		ch.Cohort, ch.TTLMillis, ch.LiveRecall, ch.Evicted, ch.ExpiredMatches, ch.StaticRecall, ch.ResidentsBefore, ch.ResidentsAfter)
	sh := r.Shed
	fmt.Fprintf(w, "shed admission: %d submitted, %d accepted, %d shed, %d rejected (accounting exact: %v)\n",
		sh.Submitted, sh.Accepted, sh.Shed, sh.Rejected, sh.AccountingExact)
}
