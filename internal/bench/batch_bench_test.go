package bench

import (
	"bytes"
	"context"
	"os"
	"strings"
	"testing"
)

// quickBatchConfig keeps the sweep small enough for the unit-test tier.
func quickBatchConfig() BatchBenchConfig {
	return BatchBenchConfig{
		Persons:       240,
		QueryCounts:   []int{1, 4},
		StationCounts: []int{4},
		Repetitions:   2,
	}
}

func TestBatchBenchReportShape(t *testing.T) {
	r, err := RunBatchBench(context.Background(), quickBatchConfig())
	if err != nil {
		t.Fatal(err)
	}
	// 1 station count × 2 query counts × 2 modes.
	if len(r.Scenarios) != 4 {
		t.Fatalf("%d scenarios, want 4", len(r.Scenarios))
	}
	if len(r.Summaries) != 1 {
		t.Fatalf("%d summaries, want 1 (only multi-query cells compare)", len(r.Summaries))
	}
	sm := r.Summaries[0]
	if sm.Queries != 4 || sm.Stations != 4 {
		t.Fatalf("summary cell %+v", sm)
	}
	// 4 queries unbatched = 4 exchanges/station vs 1 batched: exactly 4x.
	if sm.MessagesPerQueryRatio < 3.9 || sm.MessagesPerQueryRatio > 4.1 {
		t.Fatalf("messages ratio %v, want ~4", sm.MessagesPerQueryRatio)
	}

	var buf bytes.Buffer
	if err := WriteBatchBenchJSON(&buf, r); err != nil {
		t.Fatal(err)
	}
	if err := CheckBatchBenchJSON(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("round-tripped report rejected: %v", err)
	}

	var render bytes.Buffer
	RenderBatchBench(&render, r)
	if !strings.Contains(render.String(), "fewer messages/query") {
		t.Fatal("render missing summary line")
	}
}

func TestCheckBatchBenchJSONRejectsBadInput(t *testing.T) {
	cases := map[string]string{
		"empty":        "",
		"not json":     "not json at all",
		"wrong schema": `{"schema":"other/v9","scenarios":[{"mode":"batched","repetitions":1,"throughput_qps":1,"messages_total":1,"bytes_total":1}]}`,
		"no scenarios": `{"schema":"dimatch-batch-bench/v1","scenarios":[]}`,
		"empty measurements": `{"schema":"dimatch-batch-bench/v1","scenarios":[
			{"mode":"batched","repetitions":0,"throughput_qps":0,"messages_total":0,"bytes_total":0}]}`,
		"bad mode": `{"schema":"dimatch-batch-bench/v1","scenarios":[
			{"mode":"sideways","repetitions":1,"throughput_qps":1,"messages_total":1,"bytes_total":1}]}`,
	}
	for name, in := range cases {
		if err := CheckBatchBenchJSON(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// BenchmarkBatchPipeline is the CI bench-baseline entry point: one
// iteration (-benchtime=1x) runs the full sweep, and the report is written
// to the path in BENCH_BATCH_OUT as BENCH_batch.json for upload. Without
// that variable the benchmark skips, keeping the multi-second TCP sweep
// out of the ordinary `-bench=.` smoke pass (the dedicated bench-baseline
// job sets it).
func BenchmarkBatchPipeline(b *testing.B) {
	if os.Getenv("BENCH_BATCH_OUT") == "" {
		b.Skip("set BENCH_BATCH_OUT to run the full TCP batch sweep (CI bench-baseline job)")
	}
	cfg := BatchBenchConfig{Persons: 1200, Repetitions: 6}
	for i := 0; i < b.N; i++ {
		r, err := RunBatchBench(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, sm := range r.Summaries {
			if sm.Queries == 64 {
				b.ReportMetric(sm.MessagesPerQueryRatio, "msgratio64q")
				b.ReportMetric(sm.ThroughputRatio, "tputratio64q")
			}
		}
		if out := os.Getenv("BENCH_BATCH_OUT"); out != "" && i == 0 {
			f, err := os.Create(out)
			if err != nil {
				b.Fatal(err)
			}
			if err := WriteBatchBenchJSON(f, r); err != nil {
				f.Close()
				b.Fatal(err)
			}
			if err := f.Close(); err != nil {
				b.Fatal(err)
			}
		}
	}
}
