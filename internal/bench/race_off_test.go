//go:build !race

package bench

// raceEnabled reports whether the race detector instruments this build.
// Throughput-floor assertions are skipped under the detector: it costs an
// order of magnitude of wall-clock, and the production floors are gated by
// CI's non-instrumented bench-baseline job.
const raceEnabled = false
