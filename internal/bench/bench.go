// Package bench regenerates every table and figure of the paper's
// evaluation (Section V) on the synthetic city substrate. Each runner
// returns typed rows/series and has a text renderer; cmd/di-bench drives
// them from the command line and bench_test.go wraps them as testing.B
// benchmarks.
//
// Experiment index (DESIGN.md §4): Figure1a (E1), Figure1b (E2), Figure3
// (E3), Convergence (E4), Figure4 (E5-E8), TableII (E9), plus the
// FP-bound demonstration and the D1/D8 ablations.
package bench

import (
	"fmt"
	"io"

	"dimatch/internal/cdr"
	"dimatch/internal/cluster"
	"dimatch/internal/core"
	"dimatch/internal/metrics"
	"dimatch/internal/pattern"
)

// Series is one labelled curve of a figure.
type Series struct {
	Label string
	X     []float64
	Y     []float64
}

// stationData converts a dataset to the cluster's input form.
func stationData(d *cdr.Dataset) map[uint32]map[core.PersonID]pattern.Pattern {
	out := make(map[uint32]map[core.PersonID]pattern.Pattern)
	for _, s := range d.StationIDs() {
		locals := d.StationLocals(s)
		m := make(map[core.PersonID]pattern.Pattern, len(locals))
		for p, l := range locals {
			m[core.PersonID(p)] = l
		}
		out[uint32(s)] = m
	}
	return out
}

// queryFor builds the query pattern set of one person.
func queryFor(d *cdr.Dataset, id core.QueryID, person cdr.PersonID) core.Query {
	return core.Query{ID: id, Locals: d.QueryLocalsOf(person)}
}

// pickReferences returns up to n persons of a category whose role anchors
// occupy distinct stations (their locals expose the category's full split).
// A query built from a person whose anchors collapsed onto one station has
// merged locals that other members' separate pieces cannot partition, so a
// provider would choose clean exemplars; if the category has too few, the
// remainder is filled with merged members.
func pickReferences(d *cdr.Dataset, c cdr.Category, n int) []cdr.PersonID {
	ids := d.PersonsInCategory(c)
	var clean, merged []cdr.PersonID
	for _, id := range ids {
		p, err := d.PersonByID(id)
		if err != nil {
			continue
		}
		if len(d.LocalsOf(id)) == len(p.Anchors) {
			clean = append(clean, id)
		} else {
			merged = append(merged, id)
		}
	}
	out := append(clean, merged...)
	if len(out) > n {
		out = out[:n]
	}
	return out
}

// relevantSet returns the ground-truth relevant persons for a query built
// from the given person (same category, excluding the person).
func relevantSet(d *cdr.Dataset, person cdr.PersonID) []core.PersonID {
	p, err := d.PersonByID(person)
	if err != nil {
		return nil
	}
	var out []core.PersonID
	for _, other := range d.PersonsInCategory(p.Category) {
		if other == person {
			continue
		}
		out = append(out, core.PersonID(other))
	}
	return out
}

// scoreQuery evaluates one query's retrieved list against ground truth,
// excluding the reference person from both sides.
func scoreQuery(out *cluster.Outcome, q core.QueryID, ref cdr.PersonID, relevant []core.PersonID) metrics.Confusion {
	var retrieved []core.PersonID
	for _, r := range out.PerQuery[q] {
		if r.Person == core.PersonID(ref) {
			continue
		}
		retrieved = append(retrieved, r.Person)
	}
	return metrics.Evaluate(retrieved, relevant)
}

// renderSeries prints curves as aligned text columns.
func renderSeries(w io.Writer, title, xLabel string, series []Series) {
	fmt.Fprintf(w, "%s\n", title)
	fmt.Fprintf(w, "%12s", xLabel)
	for _, s := range series {
		fmt.Fprintf(w, " %14s", s.Label)
	}
	fmt.Fprintln(w)
	if len(series) == 0 || len(series[0].X) == 0 {
		return
	}
	for i := range series[0].X {
		fmt.Fprintf(w, "%12.2f", series[0].X[i])
		for _, s := range series {
			if i < len(s.Y) {
				fmt.Fprintf(w, " %14.4f", s.Y[i])
			} else {
				fmt.Fprintf(w, " %14s", "-")
			}
		}
		fmt.Fprintln(w)
	}
}
