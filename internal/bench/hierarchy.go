// Hierarchy benchmark: the recorded digest-tree / multi-tier baseline.
//
// The sweep stands the same station population up twice at each size — once
// flat (one coordinator over every in-process station) and once as a two-tier
// hierarchy (a root over ~sqrt(N) region coordinators, each fronting its
// share of the stations via ServeRegion) — and measures what the Bloofi-style
// digest tree and the tier split buy: planning cost in digest probes per
// query and per-coordinator routing-state bytes, both of which must scale
// sublinearly in N, where the flat summary scan is linear by construction.
// Every cell asserts recall 1.0 and results identical to the flat full
// fan-out before a single figure is recorded — the hierarchy is only worth
// measuring because it provably changes nothing but cost. The headline,
// validated in CI against BENCH_hierarchy.json: at 1024 stations the
// hierarchical search evaluates at most 0.25·N digest probes per query and
// no coordinator holds as much routing state as the flat coordinator does.
package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"runtime"
	"time"

	"dimatch/internal/cluster"
	"dimatch/internal/core"
	"dimatch/internal/pattern"
	"dimatch/internal/transport"
)

// HierarchyConfig parameterizes the flat-vs-hierarchy comparison.
type HierarchyConfig struct {
	// Seed fixes the population and therefore the whole run.
	Seed uint64
	// StationCounts is the sweep of station totals (default {256, 512,
	// 1024} — the recorded baseline's sizes).
	StationCounts []int
	// ResidentsPerStation sizes each station's store (default 32).
	ResidentsPerStation int
	// PatternLength is the time-series length (default 8).
	PatternLength int
	// Queries is the number of single-target queries per search (default 4,
	// targets spread across regions).
	Queries int
	// Repetitions is the number of measured searches per cell after one
	// untimed warm-up (default 3).
	Repetitions int
	// TreeFanout is the digest tree's fanout at every coordinator (default
	// cluster.Options default).
	TreeFanout int
}

func (c HierarchyConfig) withDefaults() HierarchyConfig {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if len(c.StationCounts) == 0 {
		c.StationCounts = []int{256, 512, 1024}
	}
	if c.ResidentsPerStation == 0 {
		c.ResidentsPerStation = 32
	}
	if c.PatternLength == 0 {
		c.PatternLength = 8
	}
	if c.Queries == 0 {
		c.Queries = 4
	}
	if c.Repetitions == 0 {
		c.Repetitions = 3
	}
	return c
}

// HierarchyScenario is one measured cell.
type HierarchyScenario struct {
	// Topology is "flat" or "hier"; Mode is the routing mode the search ran
	// under ("full", "summary", "tree" — hier cells always delegate, the
	// mode steers both the root's region pruning and each region's internal
	// planning).
	Topology string `json:"topology"`
	Mode     string `json:"mode"`
	Stations int    `json:"stations"`
	// Regions is the middle-tier coordinator count (1 for flat).
	Regions     int `json:"regions"`
	Queries     int `json:"queries"`
	Repetitions int `json:"repetitions"`
	// ProbesPerQuery is the steady-state planning cost: digest-membership
	// evaluations (CostReport.SubtreeProbes, summed across tiers) divided by
	// the query count.
	ProbesPerQuery float64 `json:"probes_per_query"`
	// MaxCoordinatorStateBytes is the largest routing-state footprint any
	// single coordinator holds (cached digests + digest tree): the flat
	// coordinator's total, or the max over root and regions.
	MaxCoordinatorStateBytes uint64 `json:"max_coordinator_state_bytes"`
	// StationsPruned counts fan-out targets the plan skipped (regions count
	// once at the root plus their internal station prunes).
	StationsPruned int `json:"stations_pruned"`
	// TierHops is the coordinator depth (1 flat, 2 hierarchical).
	TierHops int `json:"tier_hops"`
	// MessagesPerQuery is the steady-state query fan-out traffic per query
	// (summary refreshes excluded, as in the routing baseline).
	MessagesPerQuery float64 `json:"messages_per_query"`
	P50Micros        float64 `json:"p50_us"`
	// Recall is the fraction of queried targets retrieved (must be 1).
	Recall float64 `json:"recall"`
	// ResultsMatchFull records that every measured search returned results
	// identical to the flat full-fan-out reference.
	ResultsMatchFull bool `json:"results_match_full"`
}

// HierarchyComparison is the headline at one station count.
type HierarchyComparison struct {
	Stations int `json:"stations"`
	Regions  int `json:"regions"`
	// FlatProbesPerQuery is the flat summary scan's planning cost (linear in
	// N by construction); TreeProbesPerQuery the flat digest-tree descent's;
	// HierProbesPerQuery the two-tier total.
	FlatProbesPerQuery float64 `json:"flat_probes_per_query"`
	TreeProbesPerQuery float64 `json:"tree_probes_per_query"`
	HierProbesPerQuery float64 `json:"hier_probes_per_query"`
	// HierProbeFraction is HierProbesPerQuery / stations — the acceptance
	// gate holds it at or under 0.25 at 1024 stations.
	HierProbeFraction float64 `json:"hier_probe_fraction"`
	// FlatStateBytes is the flat coordinator's routing-state footprint;
	// HierMaxStateBytes the largest any hierarchical coordinator holds.
	FlatStateBytes    uint64 `json:"flat_state_bytes"`
	HierMaxStateBytes uint64 `json:"hier_max_state_bytes"`
}

// HierarchyReport is the full run, serialized to BENCH_hierarchy.json.
type HierarchyReport struct {
	Schema      string                `json:"schema"`
	GoVersion   string                `json:"go"`
	GOOS        string                `json:"goos"`
	GOARCH      string                `json:"goarch"`
	GOMAXPROCS  int                   `json:"gomaxprocs"`
	Config      HierarchyConfig       `json:"config"`
	Scenarios   []HierarchyScenario   `json:"scenarios"`
	Comparisons []HierarchyComparison `json:"comparisons"`
}

// hierarchySchema versions the JSON layout for the CI validator.
const hierarchySchema = "dimatch-hierarchy-bench/v1"

// hierarchyOptions are the search knobs shared by every coordinator at every
// tier. Params are pinned (not auto-sized) so the root's RouteQuery ships the
// exact values every region uses — one less moving part when asserting
// byte-equal results across topologies.
func hierarchyOptions(cfg HierarchyConfig) cluster.Options {
	return cluster.Options{
		Params: core.Params{
			Bits:           1 << 18,
			Hashes:         5,
			Samples:        8,
			Epsilon:        1,
			Seed:           cfg.Seed,
			PositionSalted: true,
		},
		MinScore:   0.9,
		TreeFanout: cfg.TreeFanout,
	}
}

// hierarchyPopulation deals ResidentsPerStation wide-spread random patterns
// to every station id in [0, stations). Values up to 1e6 against ε=1 bands
// keep single-target probes selective at every tier — the workload routing
// exists for (docs/OPERATIONS.md covers the sizing intuition).
func hierarchyPopulation(cfg HierarchyConfig, stations int) map[uint32]map[core.PersonID]pattern.Pattern {
	rng := rand.New(rand.NewSource(int64(cfg.Seed)))
	data := make(map[uint32]map[core.PersonID]pattern.Pattern, stations)
	next := core.PersonID(1)
	for s := uint32(0); s < uint32(stations); s++ {
		st := make(map[core.PersonID]pattern.Pattern, cfg.ResidentsPerStation)
		for r := 0; r < cfg.ResidentsPerStation; r++ {
			pat := make(pattern.Pattern, cfg.PatternLength)
			for i := range pat {
				pat[i] = rng.Int63n(1_000_000)
			}
			pat[0]++ // never all-zero
			st[next] = pat
			next++
		}
		data[s] = st
	}
	return data
}

// hierarchyQuerySet builds cfg.Queries single-target queries whose targets
// are spread evenly across the station range (and therefore across regions).
func hierarchyQuerySet(cfg HierarchyConfig, data map[uint32]map[core.PersonID]pattern.Pattern, stations int) ([]core.Query, []core.PersonID) {
	queries := make([]core.Query, 0, cfg.Queries)
	targets := make([]core.PersonID, 0, cfg.Queries)
	for i := 0; i < cfg.Queries; i++ {
		station := uint32(i * stations / cfg.Queries)
		// First person dealt to that station: ids are dealt densely in
		// station order.
		p := core.PersonID(int(station)*cfg.ResidentsPerStation + 1)
		queries = append(queries, core.Query{ID: core.QueryID(i + 1), Locals: []pattern.Pattern{data[station][p]}})
		targets = append(targets, p)
	}
	return queries, targets
}

// hierCluster is one stood-up topology: the coordinator to search, and every
// coordinator whose routing state the cell reports.
type hierCluster struct {
	search  *cluster.Cluster
	coords  []*cluster.Cluster
	regions int
	cleanup func()
}

// flatHierCluster builds the flat reference: one coordinator over every
// station, in-process.
func flatHierCluster(cfg HierarchyConfig, data map[uint32]map[core.PersonID]pattern.Pattern) (*hierCluster, error) {
	c, err := cluster.New(hierarchyOptions(cfg), data)
	if err != nil {
		return nil, err
	}
	c.Start()
	return &hierCluster{
		search:  c,
		coords:  []*cluster.Cluster{c},
		regions: 1,
		cleanup: func() { _ = c.Shutdown() },
	}, nil
}

// twoTierCluster splits the stations over floor(sqrt(N)) region coordinators
// (each an in-process sub-cluster served via ServeRegion over a pipe) and
// builds the root over the region links.
func twoTierCluster(cfg HierarchyConfig, data map[uint32]map[core.PersonID]pattern.Pattern, stations int) (*hierCluster, error) {
	regions := int(math.Sqrt(float64(stations)))
	if regions < 1 {
		regions = 1
	}
	per := (stations + regions - 1) / regions
	links := make(map[uint32]transport.Link, regions)
	var subs []*cluster.Cluster
	fail := func(err error) (*hierCluster, error) {
		for _, s := range subs {
			_ = s.Shutdown()
		}
		return nil, err
	}
	for r := 0; r < regions; r++ {
		sub := make(map[uint32]map[core.PersonID]pattern.Pattern, per)
		for s := r * per; s < (r+1)*per && s < stations; s++ {
			sub[uint32(s)] = data[uint32(s)]
		}
		if len(sub) == 0 {
			continue
		}
		rc, err := cluster.New(hierarchyOptions(cfg), sub)
		if err != nil {
			return fail(err)
		}
		rc.Start()
		subs = append(subs, rc)
		regionID := uint32(1_000_000 + r)
		rootEnd, regionEnd := transport.Pipe(nil, nil)
		go func(id uint32, rc *cluster.Cluster, link transport.Link) {
			_ = cluster.ServeRegion(id, rc, link)
		}(regionID, rc, regionEnd)
		links[regionID] = rootEnd
	}
	root, err := cluster.NewWithLinks(hierarchyOptions(cfg), links, cfg.PatternLength, nil, nil)
	if err != nil {
		return fail(err)
	}
	coords := append([]*cluster.Cluster{root}, subs...)
	return &hierCluster{
		search:  root,
		coords:  coords,
		regions: len(subs),
		cleanup: func() {
			_ = root.Shutdown()
			for _, s := range subs {
				_ = s.Shutdown()
			}
		},
	}, nil
}

// maxCoordinatorState returns the largest routing-state footprint across the
// topology's coordinators.
func (h *hierCluster) maxCoordinatorState() uint64 {
	var max uint64
	for _, c := range h.coords {
		if b := c.RoutingState().TotalBytes(); b > max {
			max = b
		}
	}
	return max
}

// runHierarchyScenario measures one (topology, mode) cell. reference is the
// flat full-fan-out outcome every other cell must reproduce (nil when this
// cell IS the reference).
func runHierarchyScenario(ctx context.Context, h *hierCluster, cfg HierarchyConfig, topology string, mode cluster.RoutingMode, queries []core.Query, targets []core.PersonID, reference *cluster.Outcome) (HierarchyScenario, *cluster.Outcome, error) {
	opts := []cluster.SearchOption{cluster.WithRouting(mode)}
	// Warm-up fills stats/version caches and — for routed modes — every
	// tier's digest cache, so the measured repetitions are steady state.
	if _, err := h.search.Search(ctx, queries, opts...); err != nil {
		return HierarchyScenario{}, nil, err
	}
	s := HierarchyScenario{
		Topology:         topology,
		Mode:             mode.String(),
		Stations:         0,
		Regions:          h.regions,
		Queries:          len(queries),
		Repetitions:      cfg.Repetitions,
		ResultsMatchFull: true,
	}
	durations := make([]time.Duration, 0, cfg.Repetitions)
	var last *cluster.Outcome
	for i := 0; i < cfg.Repetitions; i++ {
		out, err := h.search.Search(ctx, queries, opts...)
		if err != nil {
			return HierarchyScenario{}, nil, err
		}
		if reference != nil && !outcomesEqual(queries, reference, out) {
			return HierarchyScenario{}, nil, fmt.Errorf("bench: %s/%s: results diverge from flat full fan-out", topology, mode)
		}
		durations = append(durations, out.Cost.Elapsed)
		last = out
	}
	q := float64(len(queries))
	s.ProbesPerQuery = float64(last.Cost.SubtreeProbes) / q
	s.MaxCoordinatorStateBytes = h.maxCoordinatorState()
	s.StationsPruned = last.Cost.StationsPruned
	s.TierHops = last.Cost.TierHops
	s.MessagesPerQuery = float64(last.Cost.MessagesDown+last.Cost.MessagesUp) / q
	for i := 1; i < len(durations); i++ { // insertion sort: tiny slice
		for j := i; j > 0 && durations[j] < durations[j-1]; j-- {
			durations[j], durations[j-1] = durations[j-1], durations[j]
		}
	}
	s.P50Micros = float64(durations[len(durations)/2].Microseconds())
	s.Recall = targetRecall(last, targets)
	if s.Recall != 1 {
		return HierarchyScenario{}, nil, fmt.Errorf("bench: %s/%s: recall %.3f, want 1", topology, mode, s.Recall)
	}
	return s, last, nil
}

// RunHierarchyBench executes the full sweep and assembles the report.
func RunHierarchyBench(ctx context.Context, cfg HierarchyConfig) (*HierarchyReport, error) {
	cfg = cfg.withDefaults()
	report := &HierarchyReport{
		Schema:     hierarchySchema,
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Config:     cfg,
	}
	for _, stations := range cfg.StationCounts {
		data := hierarchyPopulation(cfg, stations)
		queries, targets := hierarchyQuerySet(cfg, data, stations)

		flat, err := flatHierCluster(cfg, data)
		if err != nil {
			return nil, err
		}
		full, reference, err := runHierarchyScenario(ctx, flat, cfg, "flat", cluster.RoutingFull, queries, targets, nil)
		if err != nil {
			flat.cleanup()
			return nil, err
		}
		summary, _, err := runHierarchyScenario(ctx, flat, cfg, "flat", cluster.RoutingSummary, queries, targets, reference)
		if err != nil {
			flat.cleanup()
			return nil, err
		}
		tree, _, err := runHierarchyScenario(ctx, flat, cfg, "flat", cluster.RoutingTree, queries, targets, reference)
		if err != nil {
			flat.cleanup()
			return nil, err
		}
		flatState := flat.maxCoordinatorState()
		flat.cleanup()

		hier, err := twoTierCluster(cfg, data, stations)
		if err != nil {
			return nil, err
		}
		routed, _, err := runHierarchyScenario(ctx, hier, cfg, "hier", cluster.RoutingTree, queries, targets, reference)
		if err != nil {
			hier.cleanup()
			return nil, err
		}
		hierState := hier.maxCoordinatorState()
		regions := hier.regions
		hier.cleanup()

		full.Stations, summary.Stations, tree.Stations, routed.Stations = stations, stations, stations, stations
		report.Scenarios = append(report.Scenarios, full, summary, tree, routed)
		report.Comparisons = append(report.Comparisons, HierarchyComparison{
			Stations:           stations,
			Regions:            regions,
			FlatProbesPerQuery: summary.ProbesPerQuery,
			TreeProbesPerQuery: tree.ProbesPerQuery,
			HierProbesPerQuery: routed.ProbesPerQuery,
			HierProbeFraction:  routed.ProbesPerQuery / float64(stations),
			FlatStateBytes:     flatState,
			HierMaxStateBytes:  hierState,
		})
	}
	return report, nil
}

// WriteHierarchyJSON serializes the report, indented for diff-friendly
// commits of the recorded baseline.
func WriteHierarchyJSON(w io.Writer, r *HierarchyReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// CheckHierarchyJSON validates a serialized report: parseable, the right
// schema, non-empty, every scenario recall-clean and result-equal to the
// flat full fan-out — and the acceptance gates at the largest cell, which
// must cover at least 1024 stations: the hierarchical search evaluates at
// most 0.25·N digest probes per query, no hierarchical coordinator holds as
// much routing state as the flat coordinator, and the search really crossed
// two tiers. The probe counts are protocol-determined (the run is seeded),
// so the gates are deterministic across machines, unlike latency. CI runs
// this against both the freshly generated artifact and the committed
// BENCH_hierarchy.json.
func CheckHierarchyJSON(r io.Reader) error {
	var report HierarchyReport
	if err := json.NewDecoder(r).Decode(&report); err != nil {
		return fmt.Errorf("bench: malformed hierarchy report: %w", err)
	}
	if report.Schema != hierarchySchema {
		return fmt.Errorf("bench: schema %q, want %q", report.Schema, hierarchySchema)
	}
	if len(report.Scenarios) == 0 || len(report.Comparisons) == 0 {
		return fmt.Errorf("bench: hierarchy report is empty")
	}
	for i, s := range report.Scenarios {
		if s.Topology != "flat" && s.Topology != "hier" {
			return fmt.Errorf("bench: scenario %d has unknown topology %q", i, s.Topology)
		}
		if s.Recall != 1 {
			return fmt.Errorf("bench: scenario %d (%s/%s, %d stations) recall %.3f — hierarchy changed recall", i, s.Topology, s.Mode, s.Stations, s.Recall)
		}
		if !s.ResultsMatchFull {
			return fmt.Errorf("bench: scenario %d (%s/%s, %d stations) diverged from flat full fan-out", i, s.Topology, s.Mode, s.Stations)
		}
		if s.Topology == "hier" && s.TierHops != 2 {
			return fmt.Errorf("bench: scenario %d: hierarchical search crossed %d tiers, want 2", i, s.TierHops)
		}
		if s.Topology == "flat" && s.Mode != "full" && s.ProbesPerQuery == 0 {
			return fmt.Errorf("bench: scenario %d (%s/%s) planned without probing any digest", i, s.Topology, s.Mode)
		}
	}
	largest := 0
	for _, cmp := range report.Comparisons {
		if cmp.Stations > largest {
			largest = cmp.Stations
		}
	}
	if largest < 1024 {
		return fmt.Errorf("bench: largest cell is %d stations — the 1024-station gate never ran", largest)
	}
	for _, cmp := range report.Comparisons {
		if cmp.HierMaxStateBytes >= cmp.FlatStateBytes {
			return fmt.Errorf("bench: %d stations: hierarchical coordinator state %d B >= flat %d B — the tier split buys no state reduction", cmp.Stations, cmp.HierMaxStateBytes, cmp.FlatStateBytes)
		}
		if cmp.Stations != largest {
			continue
		}
		if cmp.HierProbeFraction > 0.25 {
			return fmt.Errorf("bench: %d stations: %.1f probes per query (fraction %.3f > 0.25) — hierarchical planning is not sublinear", cmp.Stations, cmp.HierProbesPerQuery, cmp.HierProbeFraction)
		}
		if cmp.FlatProbesPerQuery > 0 && cmp.HierProbesPerQuery >= cmp.FlatProbesPerQuery {
			return fmt.Errorf("bench: %d stations: hierarchy probes %.1f >= flat scan %.1f", cmp.Stations, cmp.HierProbesPerQuery, cmp.FlatProbesPerQuery)
		}
	}
	return nil
}

// RenderHierarchy prints the report as an aligned text table plus the
// headline scaling lines.
func RenderHierarchy(w io.Writer, r *HierarchyReport) {
	fmt.Fprintf(w, "Hierarchical routing baseline (%s, %s/%s, GOMAXPROCS=%d, %d residents/station)\n",
		r.GoVersion, r.GOOS, r.GOARCH, r.GOMAXPROCS, r.Config.ResidentsPerStation)
	fmt.Fprintf(w, "%9s %6s %9s %8s %13s %12s %8s %6s %10s %8s\n",
		"stations", "topo", "mode", "regions", "probes/query", "state bytes", "pruned", "hops", "msgs/query", "p50 µs")
	for _, s := range r.Scenarios {
		fmt.Fprintf(w, "%9d %6s %9s %8d %13.1f %12d %8d %6d %10.2f %8.0f\n",
			s.Stations, s.Topology, s.Mode, s.Regions, s.ProbesPerQuery, s.MaxCoordinatorStateBytes, s.StationsPruned, s.TierHops, s.MessagesPerQuery, s.P50Micros)
	}
	for _, cmp := range r.Comparisons {
		fmt.Fprintf(w, "at %d stations (%d regions): hier %.1f probes/query (%.3f of N) vs flat scan %.1f, tree %.1f; max coordinator state %d B vs flat %d B\n",
			cmp.Stations, cmp.Regions, cmp.HierProbesPerQuery, cmp.HierProbeFraction, cmp.FlatProbesPerQuery, cmp.TreeProbesPerQuery, cmp.HierMaxStateBytes, cmp.FlatStateBytes)
	}
}
