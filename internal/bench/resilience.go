package bench

import (
	"context"
	"fmt"
	"io"

	"dimatch/internal/cdr"
	"dimatch/internal/cluster"
	"dimatch/internal/core"
	"dimatch/internal/metrics"
)

// ResilienceRow is one point of the failure-injection experiment: search
// quality after a number of base stations have been severed.
type ResilienceRow struct {
	StationsKilled int
	StationsTotal  int
	Precision      float64
	Recall         float64
	F1             float64
}

// Resilience measures graceful degradation (DESIGN.md §6): base stations
// are killed one group at a time and the same queries re-run under strat
// (zero selects the WBF default). Losing a station loses the local pieces
// it held — affected persons' weight sums fall below 1, so recall decays
// while precision holds (the surviving evidence is still exact).
func Resilience(ctx context.Context, cfg AblationConfig, killSteps []int, strat cluster.Strategy) ([]ResilienceRow, error) {
	if strat == 0 {
		strat = cluster.StrategyWBF
	}
	cfg = cfg.withDefaults()
	if len(killSteps) == 0 {
		killSteps = []int{0, 4, 8, 16, 32}
	}
	city := cdr.DefaultConfig()
	city.Seed = cfg.Seed
	city.Persons = cfg.Persons
	d, err := cdr.Generate(city)
	if err != nil {
		return nil, err
	}
	cl, err := cluster.New(cluster.Options{
		Params: core.Params{
			Bits:           1 << 18,
			Hashes:         5,
			Samples:        core.DefaultSamples,
			Epsilon:        1,
			Seed:           cfg.Seed,
			PositionSalted: true,
		},
		MinScore: 0.9,
	}, stationData(d))
	if err != nil {
		return nil, err
	}
	cl.Start()
	defer cl.Shutdown() //nolint:errcheck // benchmark teardown

	var refs []cdr.PersonID
	for _, c := range cdr.Categories() {
		refs = append(refs, pickReferences(d, c, 1)...)
	}
	queries := make([]core.Query, len(refs))
	for i, ref := range refs {
		queries[i] = queryFor(d, core.QueryID(i+1), ref)
	}

	stations := d.StationIDs()
	killed := 0
	rows := make([]ResilienceRow, 0, len(killSteps))
	for _, target := range killSteps {
		if target > len(stations) {
			target = len(stations)
		}
		for killed < target {
			if err := cl.KillStation(uint32(stations[killed])); err != nil {
				return nil, err
			}
			killed++
		}
		out, err := cl.Search(ctx, queries, cluster.WithStrategy(strat))
		if err != nil {
			return nil, err
		}
		var total metrics.Confusion
		for i, ref := range refs {
			total.Add(scoreQuery(out, core.QueryID(i+1), ref, relevantSet(d, ref)))
		}
		rows = append(rows, ResilienceRow{
			StationsKilled: killed,
			StationsTotal:  len(stations),
			Precision:      total.Precision(),
			Recall:         total.Recall(),
			F1:             total.F1(),
		})
	}
	return rows, nil
}

// RenderResilience writes the failure-injection results as a text table.
func RenderResilience(w io.Writer, rows []ResilienceRow) {
	fmt.Fprintln(w, "Failure injection: search quality vs killed base stations")
	fmt.Fprintf(w, "%8s %8s %10s %10s %10s\n", "killed", "total", "precision", "recall", "f1")
	for _, r := range rows {
		fmt.Fprintf(w, "%8d %8d %10.3f %10.3f %10.3f\n", r.StationsKilled, r.StationsTotal, r.Precision, r.Recall, r.F1)
	}
}
