package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"runtime"

	"dimatch/internal/adapt"
	"dimatch/internal/cluster"
	"dimatch/internal/core"
	"dimatch/internal/index"
	"dimatch/internal/pattern"
)

// The adaptive bench measures the Daisy-style parameter rollout end to end:
// a live cluster is warmed with skewed routed traffic, RederiveParams rolls
// a plan onto every station, and the resulting adaptive digests are compared
// against static digests at exactly equal memory — measured empty-band false
// admissions, measured false routes, and the analytic Daisy bounds. The live
// half of each cell also asserts the adaptivity contract: routed search
// results stay byte-identical to a never-adapted twin cluster, and recall on
// resident targets stays 1.

// AdaptiveSkew is one traffic shape of the sweep: a value distribution and
// the number of fixed hash seeds the digest comparison aggregates (heavier
// skews concentrate the empty-band probes on fewer distinct keys, so they
// need more digest pairs for the same statistical power).
type AdaptiveSkew struct {
	Name string `json:"name"`
	// ZipfS is the Zipf exponent of the value distribution; 0 is uniform.
	ZipfS float64 `json:"zipf_s"`
	// DigestSeeds is how many fixed-seed digest pairs the offline
	// comparison aggregates.
	DigestSeeds int `json:"digest_seeds"`
}

// AdaptiveConfig sizes the run.
type AdaptiveConfig struct {
	// Seed fixes populations, traffic and the cluster hash family.
	Seed uint64 `json:"seed"`
	// Stations is the cluster width (default 6).
	Stations int `json:"stations"`
	// ResidentsPerStation sizes each station's store (default 64).
	ResidentsPerStation int `json:"residents_per_station"`
	// PatternLength is the time-series length (default 8).
	PatternLength int `json:"pattern_length"`
	// Domain bounds drawn attribute values to [1, Domain] (default 3000).
	Domain int64 `json:"domain"`
	// Samples is b, the sampled positions per probe (default 2: the
	// solver's target regime — a few hot positions, the rest idle — and a
	// band-product short enough that whole-query false routes actually
	// occur at measurable rates).
	Samples int `json:"samples"`
	// Epsilon is the scaled matching tolerance (default 3).
	Epsilon int64 `json:"epsilon"`
	// WarmQueries is the routed traffic profiled before the rollout
	// (default 600).
	WarmQueries int `json:"warm_queries"`
	// MeasureQueries is the offline probe sample replayed against every
	// digest pair (default 2500).
	MeasureQueries int `json:"measure_queries"`
	// LiveQueries is the post-rollout live search whose results must match
	// the static twin byte for byte (default 48, on top of one exact
	// resident target per station).
	LiveQueries int `json:"live_queries"`
	// Skews is the traffic-shape sweep (default uniform, zipf 1.2 and
	// zipf 2.0).
	Skews []AdaptiveSkew `json:"skews"`
}

func (c AdaptiveConfig) withDefaults() AdaptiveConfig {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Stations == 0 {
		c.Stations = 6
	}
	if c.ResidentsPerStation == 0 {
		c.ResidentsPerStation = 64
	}
	if c.PatternLength == 0 {
		c.PatternLength = 8
	}
	if c.Domain == 0 {
		c.Domain = 3000
	}
	if c.Samples == 0 {
		c.Samples = 2
	}
	if c.Epsilon == 0 {
		c.Epsilon = 3
	}
	if c.WarmQueries == 0 {
		c.WarmQueries = 600
	}
	if c.MeasureQueries == 0 {
		c.MeasureQueries = 2500
	}
	if c.LiveQueries == 0 {
		c.LiveQueries = 48
	}
	if len(c.Skews) == 0 {
		c.Skews = []AdaptiveSkew{
			{Name: "uniform", ZipfS: 0, DigestSeeds: 2},
			{Name: "zipf1.2", ZipfS: 1.2, DigestSeeds: 2},
			{Name: "zipf2.0", ZipfS: 2.0, DigestSeeds: 8},
		}
	}
	return c
}

// AdaptiveScenario is one skew cell of the recorded report.
type AdaptiveScenario struct {
	Skew  string  `json:"skew"`
	ZipfS float64 `json:"zipf_s"`
	// RolloutEpoch is the epoch RederiveParams installed; RolloutApplied
	// counts stations that acknowledged running the plan (must be all).
	RolloutEpoch   uint64 `json:"rollout_epoch"`
	RolloutApplied int    `json:"rollout_applied"`
	// ParamEpoch is the epoch the post-rollout live search stamped into its
	// cost report — proof the searches actually ran under the plan.
	ParamEpoch uint64 `json:"param_epoch"`
	// ResultsMatchStatic: the adaptive cluster's routed results were
	// byte-identical to a never-adapted twin's full fan-out.
	ResultsMatchStatic bool `json:"results_match_static"`
	// Recall is the fraction of exact resident targets retrieved (must
	// be 1).
	Recall float64 `json:"recall"`
	// DigestBits is each digest's size; adaptive and static pairs are
	// asserted equal before anything is counted.
	DigestBits  uint64 `json:"digest_bits"`
	DigestPairs int    `json:"digest_pairs"`
	// EmptyBands is the number of (probe, band, station) lookups whose band
	// holds no resident — the false-admission trials. The *BandFPs fields
	// count how many each digest kind falsely admitted.
	EmptyBands      int `json:"empty_bands"`
	AdaptiveBandFPs int `json:"adaptive_band_fps"`
	StaticBandFPs   int `json:"static_band_fps"`
	// *FalseRoutes count whole probes admitted at a station holding no true
	// match; *Misses count true matches a digest rejected (must be 0).
	AdaptiveFalseRoutes int `json:"adaptive_false_routes"`
	StaticFalseRoutes   int `json:"static_false_routes"`
	AdaptiveMisses      int `json:"adaptive_misses"`
	StaticMisses        int `json:"static_misses"`
	// AdaptiveBound / StaticBound are the analytic Daisy-style expected
	// false-admission bounds at the recorded budget.
	AdaptiveBound float64 `json:"adaptive_bound"`
	StaticBound   float64 `json:"static_bound"`
}

// AdaptiveReport is the full run, serialized to BENCH_adaptive.json.
type AdaptiveReport struct {
	Schema     string             `json:"schema"`
	GoVersion  string             `json:"go"`
	GOOS       string             `json:"goos"`
	GOARCH     string             `json:"goarch"`
	GOMAXPROCS int                `json:"gomaxprocs"`
	Config     AdaptiveConfig     `json:"config"`
	Scenarios  []AdaptiveScenario `json:"scenarios"`
}

// adaptiveSchema versions the JSON layout for the CI validator.
const adaptiveSchema = "dimatch-adaptive-bench/v1"

// adaptiveDraw samples one attribute value under the skew.
func adaptiveDraw(r *rand.Rand, z *rand.Zipf, domain int64) int64 {
	if z == nil {
		return 1 + r.Int63n(domain)
	}
	return 1 + int64(z.Uint64())
}

func adaptivePattern(r *rand.Rand, z *rand.Zipf, cfg AdaptiveConfig) pattern.Pattern {
	p := make(pattern.Pattern, cfg.PatternLength)
	for i := range p {
		p[i] = adaptiveDraw(r, z, cfg.Domain)
	}
	return p
}

// adaptiveOptions pins every search knob so the adaptive cluster and its
// static twin run byte-identical pipelines — the only permitted divergence
// is the routing digests' parameter plan.
func adaptiveOptions(cfg AdaptiveConfig) cluster.Options {
	return cluster.Options{
		Params: core.Params{
			Bits:    1 << 16,
			Hashes:  5,
			Samples: cfg.Samples,
			Epsilon: cfg.Epsilon,
			Seed:    cfg.Seed,
		},
		MinScore:    0.9,
		AdaptWindow: 1 << 20, // larger than any run's traffic: no decay mid-profile
	}
}

// adaptiveBand is one probe band, flattened for ground-truth replay.
type adaptiveBand struct {
	pos    int
	lo, hi int64
}

// runAdaptiveScenario runs one skew cell end to end.
func runAdaptiveScenario(ctx context.Context, cfg AdaptiveConfig, sk AdaptiveSkew) (AdaptiveScenario, error) {
	fail := func(err error) (AdaptiveScenario, error) {
		return AdaptiveScenario{}, fmt.Errorf("bench: adaptive %s: %w", sk.Name, err)
	}
	rng := rand.New(rand.NewSource(int64(cfg.Seed) ^ int64(len(sk.Name))<<32 ^ int64(sk.ZipfS*1000)))
	var z *rand.Zipf
	if sk.ZipfS != 0 {
		z = rand.NewZipf(rng, sk.ZipfS, 1, uint64(cfg.Domain-1))
	}

	// Population: Stations stores of ResidentsPerStation patterns drawn
	// under the same skew as the traffic.
	data := make(map[uint32]map[core.PersonID]pattern.Pattern, cfg.Stations)
	locals := make(map[uint32][]pattern.Pattern, cfg.Stations)
	for s := 0; s < cfg.Stations; s++ {
		st := make(map[core.PersonID]pattern.Pattern, cfg.ResidentsPerStation)
		for j := 0; j < cfg.ResidentsPerStation; j++ {
			pid := core.PersonID(s*cfg.ResidentsPerStation + j + 1)
			p := adaptivePattern(rng, z, cfg)
			st[pid] = p
			locals[uint32(s)] = append(locals[uint32(s)], p)
		}
		data[uint32(s)] = st
	}

	// Twin clusters over identical data and identical pinned options. Only
	// the adaptive one will ever see a rollout.
	adaptiveC, err := cluster.New(adaptiveOptions(cfg), data)
	if err != nil {
		return fail(err)
	}
	adaptiveC.Start()
	defer func() { _ = adaptiveC.Shutdown() }()
	staticC, err := cluster.New(adaptiveOptions(cfg), data)
	if err != nil {
		return fail(err)
	}
	staticC.Start()
	defer func() { _ = staticC.Shutdown() }()

	// Warm phase: routed traffic feeds the adaptive cluster's profiler
	// (probe bands plus the digest-rejected emptiness signal).
	const warmBatch = 25
	for off := 0; off < cfg.WarmQueries; off += warmBatch {
		n := warmBatch
		if off+n > cfg.WarmQueries {
			n = cfg.WarmQueries - off
		}
		queries := make([]core.Query, n)
		for i := range queries {
			queries[i] = core.Query{
				ID:     core.QueryID(off + i + 1),
				Locals: []pattern.Pattern{adaptivePattern(rng, z, cfg)},
			}
		}
		if _, err := adaptiveC.Search(ctx, queries); err != nil {
			return fail(err)
		}
	}

	// The profile the plan is derived from — captured before the rollout so
	// the analytic bounds below are computed on exactly the derivation
	// input.
	snap := adaptiveC.TrafficSnapshot()
	roll, err := adaptiveC.RederiveParams(ctx)
	if err != nil {
		return fail(err)
	}
	if roll.Plan == nil {
		return fail(fmt.Errorf("rollout installed no plan"))
	}
	scen := AdaptiveScenario{
		Skew:           sk.Name,
		ZipfS:          sk.ZipfS,
		RolloutEpoch:   roll.Epoch,
		RolloutApplied: len(roll.Applied),
	}

	// Live equivalence: the first Stations queries target one exact
	// resident per station (the recall probes), the rest are skewed draws.
	// The adaptive cluster's routed search must reproduce the static twin's
	// full fan-out byte for byte.
	targets := make([]core.PersonID, cfg.Stations)
	live := make([]core.Query, 0, cfg.Stations+cfg.LiveQueries)
	for s := 0; s < cfg.Stations; s++ {
		pid := core.PersonID(s*cfg.ResidentsPerStation + 1)
		targets[s] = pid
		live = append(live, core.Query{
			ID:     core.QueryID(s + 1),
			Locals: []pattern.Pattern{data[uint32(s)][pid]},
		})
	}
	for i := 0; i < cfg.LiveQueries; i++ {
		live = append(live, core.Query{
			ID:     core.QueryID(cfg.Stations + i + 1),
			Locals: []pattern.Pattern{adaptivePattern(rng, z, cfg)},
		})
	}
	reference, err := staticC.Search(ctx, live, cluster.WithRouting(cluster.RoutingFull))
	if err != nil {
		return fail(err)
	}
	staticRouted, err := staticC.Search(ctx, live)
	if err != nil {
		return fail(err)
	}
	adaptiveRouted, err := adaptiveC.Search(ctx, live)
	if err != nil {
		return fail(err)
	}
	scen.ResultsMatchStatic = outcomesEqual(live, reference, adaptiveRouted) &&
		outcomesEqual(live, reference, staticRouted)
	scen.Recall = targetRecall(adaptiveRouted, targets)
	scen.ParamEpoch = adaptiveRouted.Cost.ParamEpoch

	// Offline digest comparison at equal memory: replay a fresh skewed
	// probe sample against adaptive and static digests rebuilt from the
	// live plan under several fixed hash seeds. Band ground truth (does any
	// resident's accumulated value fall in the band?) is seed-independent,
	// so it is computed once per (probe, station).
	_, plan := adaptiveC.ParamState()
	if plan == nil {
		return fail(fmt.Errorf("no live plan after rollout"))
	}
	accs := make(map[uint32][]pattern.Pattern, cfg.Stations)
	for s, ps := range locals {
		for _, p := range ps {
			accs[s] = append(accs[s], p.Accumulate())
		}
	}
	probes := make([]index.Probe, cfg.MeasureQueries)
	bands := make([][]adaptiveBand, cfg.MeasureQueries)
	for i := range probes {
		pr, err := index.NewProbe(
			core.Query{ID: core.QueryID(i + 1), Locals: []pattern.Pattern{adaptivePattern(rng, z, cfg)}},
			cfg.Samples, cfg.Epsilon)
		if err != nil {
			return fail(err)
		}
		probes[i] = pr
		pr.EachBand(func(pos int, lo, hi int64) {
			bands[i] = append(bands[i], adaptiveBand{pos: pos, lo: lo, hi: hi})
		})
	}
	// occupied[s][i][b]: band b of probe i truly holds a resident of
	// station s; truth[s][i]: every band does (an exact-admission match).
	occupied := make(map[uint32][][]bool, cfg.Stations)
	truth := make(map[uint32][]bool, cfg.Stations)
	for s := uint32(0); s < uint32(cfg.Stations); s++ {
		occupied[s] = make([][]bool, cfg.MeasureQueries)
		truth[s] = make([]bool, cfg.MeasureQueries)
		for i, bs := range bands {
			occ := make([]bool, len(bs))
			all := true
			for b, band := range bs {
				for _, acc := range accs[s] {
					if acc[band.pos] >= band.lo && acc[band.pos] <= band.hi {
						occ[b] = true
						break
					}
				}
				if !occ[b] {
					all = false
				}
			}
			occupied[s][i] = occ
			truth[s][i] = all
		}
	}

	scen.DigestPairs = sk.DigestSeeds * cfg.Stations
	for seed := 0; seed < sk.DigestSeeds; seed++ {
		p := plan.Clone()
		p.Seed = 0x5eed0000 + uint64(seed)
		for s := uint32(0); s < uint32(cfg.Stations); s++ {
			adaptiveD, err := index.BuildAdaptive(p, cfg.PatternLength, locals[s])
			if err != nil {
				return fail(err)
			}
			staticD, err := index.New(cfg.PatternLength, cfg.ResidentsPerStation, 0, p.Seed)
			if err != nil {
				return fail(err)
			}
			for _, l := range locals[s] {
				if err := staticD.Add(l); err != nil {
					return fail(err)
				}
			}
			if adaptiveD.Bits() != staticD.Bits() {
				return fail(fmt.Errorf("unequal memory: adaptive %d bits, static %d", adaptiveD.Bits(), staticD.Bits()))
			}
			scen.DigestBits = adaptiveD.Bits()
			if scen.StaticBound == 0 {
				scen.StaticBound = adapt.StaticFalseRouteBound(snap, cfg.ResidentsPerStation, staticD.Bits(), staticD.Hashes())
				scen.AdaptiveBound, err = adapt.PlanFalseRouteBound(plan, snap, cfg.ResidentsPerStation, adaptiveD.Bits())
				if err != nil {
					return fail(err)
				}
			}
			for i, pr := range probes {
				for b, band := range bands[i] {
					if occupied[s][i][b] {
						continue
					}
					scen.EmptyBands++
					if adaptiveD.BandAdmit(band.pos, band.lo, band.hi) {
						scen.AdaptiveBandFPs++
					}
					if staticD.BandAdmit(band.pos, band.lo, band.hi) {
						scen.StaticBandFPs++
					}
				}
				switch {
				case truth[s][i]:
					if !adaptiveD.Admits(pr) {
						scen.AdaptiveMisses++
					}
					if !staticD.Admits(pr) {
						scen.StaticMisses++
					}
				default:
					if adaptiveD.Admits(pr) {
						scen.AdaptiveFalseRoutes++
					}
					if staticD.Admits(pr) {
						scen.StaticFalseRoutes++
					}
				}
			}
		}
	}
	return scen, nil
}

// RunAdaptiveBench runs the whole skew sweep.
func RunAdaptiveBench(ctx context.Context, cfg AdaptiveConfig) (*AdaptiveReport, error) {
	cfg = cfg.withDefaults()
	report := &AdaptiveReport{
		Schema:     adaptiveSchema,
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Config:     cfg,
	}
	for _, sk := range cfg.Skews {
		scen, err := runAdaptiveScenario(ctx, cfg, sk)
		if err != nil {
			return nil, err
		}
		report.Scenarios = append(report.Scenarios, scen)
	}
	return report, nil
}

// WriteAdaptiveJSON serializes the report, indented for diff-friendly
// commits of the recorded baseline.
func WriteAdaptiveJSON(w io.Writer, r *AdaptiveReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// CheckAdaptiveJSON validates a serialized report: parseable, the right
// schema, and every skew cell passing the adaptivity gates — the rollout
// reached every station, the live searches ran under the installed epoch
// with results byte-equal to the static twin and recall 1, no digest missed
// a true match, and at exactly equal memory the adaptive digests made
// strictly fewer empty-band false admissions than the static ones (equal
// only when static made none), with false routes no worse measured and
// strictly better by the analytic bound. The counts are seeded and
// protocol-determined, so the gates are deterministic across machines. CI
// runs this against both the freshly generated artifact and the committed
// BENCH_adaptive.json.
func CheckAdaptiveJSON(r io.Reader) error {
	var report AdaptiveReport
	if err := json.NewDecoder(r).Decode(&report); err != nil {
		return fmt.Errorf("bench: malformed adaptive report: %w", err)
	}
	if report.Schema != adaptiveSchema {
		return fmt.Errorf("bench: schema %q, want %q", report.Schema, adaptiveSchema)
	}
	if len(report.Scenarios) < 3 {
		return fmt.Errorf("bench: %d skew cells recorded, want at least 3 (uniform plus two Zipf shapes)", len(report.Scenarios))
	}
	stations := report.Config.Stations
	totalAdaptiveFPs, totalStaticFPs := 0, 0
	for _, s := range report.Scenarios {
		if s.RolloutApplied != stations {
			return fmt.Errorf("bench: %s: rollout reached %d of %d stations", s.Skew, s.RolloutApplied, stations)
		}
		if s.RolloutEpoch == 0 || s.ParamEpoch != s.RolloutEpoch {
			return fmt.Errorf("bench: %s: live search ran at epoch %d, rollout installed %d", s.Skew, s.ParamEpoch, s.RolloutEpoch)
		}
		if !s.ResultsMatchStatic {
			return fmt.Errorf("bench: %s: adaptive routed results diverged from the static twin", s.Skew)
		}
		if s.Recall != 1 {
			return fmt.Errorf("bench: %s: recall %.3f — adaptation changed recall", s.Skew, s.Recall)
		}
		if s.AdaptiveMisses != 0 || s.StaticMisses != 0 {
			return fmt.Errorf("bench: %s: digests missed true matches (adaptive %d, static %d)", s.Skew, s.AdaptiveMisses, s.StaticMisses)
		}
		if s.DigestBits == 0 || s.EmptyBands == 0 {
			return fmt.Errorf("bench: %s: empty measurement (bits %d, empty bands %d)", s.Skew, s.DigestBits, s.EmptyBands)
		}
		if s.StaticBandFPs > 0 && s.AdaptiveBandFPs >= s.StaticBandFPs {
			return fmt.Errorf("bench: %s: adaptive falsely admits %d of %d empty bands, static %d — no strict win at equal memory",
				s.Skew, s.AdaptiveBandFPs, s.EmptyBands, s.StaticBandFPs)
		}
		if s.StaticBandFPs == 0 && s.AdaptiveBandFPs > 0 {
			return fmt.Errorf("bench: %s: adaptive falsely admits %d empty bands where static admits none", s.Skew, s.AdaptiveBandFPs)
		}
		if s.AdaptiveFalseRoutes > s.StaticFalseRoutes {
			return fmt.Errorf("bench: %s: adaptive false-routes %d probes, static %d — adaptivity regressed routing",
				s.Skew, s.AdaptiveFalseRoutes, s.StaticFalseRoutes)
		}
		if s.AdaptiveBound >= s.StaticBound {
			return fmt.Errorf("bench: %s: adaptive bound %.5f not below static bound %.5f at equal memory",
				s.Skew, s.AdaptiveBound, s.StaticBound)
		}
		totalAdaptiveFPs += s.AdaptiveBandFPs
		totalStaticFPs += s.StaticBandFPs
	}
	if totalAdaptiveFPs >= totalStaticFPs {
		return fmt.Errorf("bench: adaptive band FPs %d not strictly below static %d summed over the sweep", totalAdaptiveFPs, totalStaticFPs)
	}
	return nil
}

// RenderAdaptive prints the report as an aligned text table.
func RenderAdaptive(w io.Writer, r *AdaptiveReport) {
	fmt.Fprintf(w, "Adaptive parameter baseline (%s, %s/%s, GOMAXPROCS=%d, %d stations x %d residents, %d b / eps %d)\n",
		r.GoVersion, r.GOOS, r.GOARCH, r.GOMAXPROCS,
		r.Config.Stations, r.Config.ResidentsPerStation, r.Config.Samples, r.Config.Epsilon)
	fmt.Fprintf(w, "%9s %6s %6s %10s %11s %10s %9s %9s %10s %10s\n",
		"skew", "epoch", "bits", "emptyband", "adaptFP", "staticFP", "adaptRt", "staticRt", "adaptBnd", "staticBnd")
	for _, s := range r.Scenarios {
		fmt.Fprintf(w, "%9s %6d %6d %10d %11d %10d %9d %9d %10.5f %10.5f\n",
			s.Skew, s.RolloutEpoch, s.DigestBits, s.EmptyBands,
			s.AdaptiveBandFPs, s.StaticBandFPs,
			s.AdaptiveFalseRoutes, s.StaticFalseRoutes,
			s.AdaptiveBound, s.StaticBound)
	}
	for _, s := range r.Scenarios {
		fmt.Fprintf(w, "%s: results byte-equal to static twin: %v, recall %.2f, rollout reached %d stations\n",
			s.Skew, s.ResultsMatchStatic, s.Recall, s.RolloutApplied)
	}
}
