package bench

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// quickStreamConfig shrinks the phases for the unit-test tier while keeping
// every gate crossable: the offered rate stays above the 10k/s floor, only
// the window shrinks.
func quickStreamConfig() StreamBenchConfig {
	return StreamBenchConfig{
		Duration:        300 * time.Millisecond,
		TargetRate:      20000,
		ChurnPersons:    60,
		TTL:             900 * time.Millisecond,
		ShedSubmissions: 1600,
		WarmPersons:     16,
	}
}

func TestStreamBenchReportShape(t *testing.T) {
	r, err := RunStreamBench(context.Background(), quickStreamConfig())
	if err != nil {
		t.Fatal(err)
	}
	if r.Sustained.Accepted == 0 || r.Sustained.Searches == 0 {
		t.Fatalf("sustained phase empty: %+v", r.Sustained)
	}
	if r.Sustained.SearchRecall != 1 || r.Sustained.FinalRecall != 1 {
		t.Fatalf("the runner must refuse to record recall drift: %+v", r.Sustained)
	}
	if r.Churn.Evicted < uint64(r.Churn.Cohort) {
		t.Fatalf("churn evicted %d of %d", r.Churn.Evicted, r.Churn.Cohort)
	}
	if r.Shed.Shed == 0 || !r.Shed.AccountingExact {
		t.Fatalf("shed phase did not engage: %+v", r.Shed)
	}

	var buf bytes.Buffer
	if err := WriteStreamJSON(&buf, r); err != nil {
		t.Fatal(err)
	}
	if raceEnabled {
		t.Log("race detector on: skipping the CheckStreamJSON round-trip (its patterns/sec floor is a non-instrumented gate)")
	} else if err := CheckStreamJSON(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("round-tripped report rejected: %v", err)
	}
	var render bytes.Buffer
	RenderStream(&render, r)
	if !strings.Contains(render.String(), "patterns/sec") {
		t.Fatal("render missing sustained line")
	}
}

func TestCheckStreamJSONRejectsBadInput(t *testing.T) {
	good := func(mutate func(m map[string]any)) string {
		m := map[string]any{
			"schema": "dimatch-stream-bench/v1",
			"sustained": map[string]any{
				"accepted": 1000, "searches": 10, "patterns_per_sec": 20000.0,
				"search_recall": 1.0, "final_recall": 1.0, "flush_failures": 0,
				"search_p99_us": 500.0, "accounting_exact": true,
			},
			"churn": map[string]any{
				"cohort": 60, "evicted": 60, "live_recall": 1.0,
				"static_recall_after": 1.0, "expired_matches": 0,
				"residents_before": 200, "residents_after": 80,
			},
			"shed": map[string]any{
				"submitted": 1600, "accepted": 700, "shed": 900, "rejected": 0,
				"accounting_exact": true,
			},
		}
		if mutate != nil {
			mutate(m)
		}
		b, err := json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	cases := map[string]string{
		"empty":    "",
		"not json": "not json at all",
		"wrong schema": good(func(m map[string]any) {
			m["schema"] = "other/v9"
		}),
		"below rate floor": good(func(m map[string]any) {
			m["sustained"].(map[string]any)["patterns_per_sec"] = 5000.0
		}),
		"recall drift": good(func(m map[string]any) {
			m["sustained"].(map[string]any)["search_recall"] = 0.98
		}),
		"lost copies": good(func(m map[string]any) {
			m["sustained"].(map[string]any)["flush_failures"] = 3
		}),
		"unbounded p99": good(func(m map[string]any) {
			m["sustained"].(map[string]any)["search_p99_us"] = 900000.0
		}),
		"partial eviction": good(func(m map[string]any) {
			m["churn"].(map[string]any)["evicted"] = 10
		}),
		"expired still match": good(func(m map[string]any) {
			m["churn"].(map[string]any)["expired_matches"] = 2
		}),
		"nothing shed": good(func(m map[string]any) {
			m["shed"].(map[string]any)["shed"] = 0
		}),
		"inexact accounting": good(func(m map[string]any) {
			m["shed"].(map[string]any)["accounting_exact"] = false
		}),
	}
	if err := CheckStreamJSON(strings.NewReader(good(nil))); err != nil {
		t.Fatalf("baseline fixture rejected: %v", err)
	}
	for name, in := range cases {
		if err := CheckStreamJSON(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// BenchmarkStreamPipeline is the CI bench-smoke entry point: one shrunken
// end-to-end run per iteration.
func BenchmarkStreamPipeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := RunStreamBench(context.Background(), quickStreamConfig()); err != nil {
			b.Fatal(err)
		}
	}
}
