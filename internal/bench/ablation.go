package bench

import (
	"context"
	"fmt"
	"io"

	"dimatch/internal/bloom"
	"dimatch/internal/cdr"
	"dimatch/internal/cluster"
	"dimatch/internal/core"
	"dimatch/internal/metrics"
)

// AblationConfig parameterizes the design-choice ablations of DESIGN.md §6.
type AblationConfig struct {
	Seed          uint64
	Persons       int
	QueriesScored int
}

func (c AblationConfig) withDefaults() AblationConfig {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Persons == 0 {
		c.Persons = 300
	}
	if c.QueriesScored == 0 {
		c.QueriesScored = 6
	}
	return c
}

// AblationRow is one configuration's effectiveness and cost.
type AblationRow struct {
	Name      string
	Precision float64
	Recall    float64
	F1        float64
	BytesUp   uint64
	Reports   int
}

// runVariant executes one parameter variant over a fresh city and scores
// one query per category.
func runVariant(ctx context.Context, cfg AblationConfig, name string, params core.Params, minScore float64) (AblationRow, error) {
	city := cdr.DefaultConfig()
	city.Seed = cfg.Seed
	city.Persons = cfg.Persons
	d, err := cdr.Generate(city)
	if err != nil {
		return AblationRow{}, err
	}
	cl, err := cluster.New(cluster.Options{Params: params, MinScore: minScore}, stationData(d))
	if err != nil {
		return AblationRow{}, err
	}
	cl.Start()
	defer cl.Shutdown() //nolint:errcheck // benchmark teardown

	var refs []cdr.PersonID
	for _, c := range cdr.Categories() {
		refs = append(refs, pickReferences(d, c, 1)...)
	}
	if len(refs) > cfg.QueriesScored {
		refs = refs[:cfg.QueriesScored]
	}
	queries := make([]core.Query, len(refs))
	for i, ref := range refs {
		queries[i] = queryFor(d, core.QueryID(i+1), ref)
	}
	out, err := cl.Search(ctx, queries, cluster.WithStrategy(cluster.StrategyWBF))
	if err != nil {
		return AblationRow{}, err
	}
	var total metrics.Confusion
	for i, ref := range refs {
		total.Add(scoreQuery(out, core.QueryID(i+1), ref, relevantSet(d, ref)))
	}
	return AblationRow{
		Name:      name,
		Precision: total.Precision(),
		Recall:    total.Recall(),
		F1:        total.F1(),
		BytesUp:   out.Cost.BytesUp,
		Reports:   out.Cost.ReportsReceived,
	}, nil
}

// AblationSalting measures DESIGN.md D8: position-salted vs the paper's
// unsalted keys at ε = 1, plus the unsalted exact-matching (ε = 0) case
// where the original scheme is sound.
func AblationSalting(ctx context.Context, cfg AblationConfig) ([]AblationRow, error) {
	cfg = cfg.withDefaults()
	base := core.Params{
		Bits:    1 << 18,
		Hashes:  5,
		Samples: core.DefaultSamples,
		Seed:    cfg.Seed,
	}
	variants := []struct {
		name     string
		mutate   func(*core.Params)
		minScore float64
	}{
		{name: "salted eps=1 (default)", mutate: func(p *core.Params) { p.PositionSalted = true; p.Epsilon = 1 }, minScore: 0.9},
		{name: "unsalted eps=1 (paper)", mutate: func(p *core.Params) { p.Epsilon = 1 }, minScore: 0.9},
		{name: "unsalted eps=0 (paper, exact)", mutate: func(p *core.Params) {}, minScore: 0.9},
	}
	rows := make([]AblationRow, 0, len(variants))
	for _, v := range variants {
		p := base
		v.mutate(&p)
		row, err := runVariant(ctx, cfg, v.name, p, v.minScore)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// AblationTolerance measures DESIGN.md D1: scaled (no false negatives)
// versus absolute (cheaper, lossy) ε banding.
func AblationTolerance(ctx context.Context, cfg AblationConfig) ([]AblationRow, error) {
	cfg = cfg.withDefaults()
	base := core.Params{
		Bits:           1 << 18,
		Hashes:         5,
		Samples:        core.DefaultSamples,
		Epsilon:        1,
		Seed:           cfg.Seed,
		PositionSalted: true,
	}
	rows := make([]AblationRow, 0, 2)
	for _, v := range []struct {
		name string
		mode core.ToleranceMode
	}{
		{name: "scaled bands (default)", mode: core.ToleranceScaled},
		{name: "absolute bands", mode: core.ToleranceAbsolute},
	} {
		p := base
		p.Tolerance = v.mode
		row, err := runVariant(ctx, cfg, v.name, p, 0.9)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// SizingRow is one point of the filter-sizing sweep.
type SizingRow struct {
	Bits       uint64
	Fill       float64
	AnalyticFP float64
	MeasuredFP float64
	Precision  float64
}

// SizingSweep measures filter fill, the analytic value-level false-positive
// rate and the measured rate on guaranteed-absent probes, across filter
// sizes — the empirical side of the paper's "upper bound tightness"
// discussion (Section V).
func SizingSweep(ctx context.Context, cfg AblationConfig, bitSizes []uint64) ([]SizingRow, error) {
	cfg = cfg.withDefaults()
	if len(bitSizes) == 0 {
		bitSizes = []uint64{1 << 14, 1 << 16, 1 << 18, 1 << 20}
	}
	city := cdr.DefaultConfig()
	city.Seed = cfg.Seed
	city.Persons = cfg.Persons
	d, err := cdr.Generate(city)
	if err != nil {
		return nil, err
	}
	var refs []cdr.PersonID
	for _, c := range cdr.Categories() {
		refs = append(refs, pickReferences(d, c, 1)...)
	}
	rows := make([]SizingRow, 0, len(bitSizes))
	for _, bits := range bitSizes {
		params := core.Params{
			Bits:           bits,
			Hashes:         5,
			Samples:        core.DefaultSamples,
			Epsilon:        1,
			Seed:           cfg.Seed,
			PositionSalted: true,
		}
		enc, err := core.NewEncoder(params, d.Length())
		if err != nil {
			return nil, err
		}
		for i, ref := range refs {
			if err := enc.AddQuery(queryFor(d, core.QueryID(i+1), ref)); err != nil {
				return nil, err
			}
		}
		filter := enc.Filter()
		an := core.Analyze(filter)

		// Measure value-level FP on values far beyond any accumulated
		// pattern (guaranteed absent).
		probes, hits := 50_000, 0
		bf, err := bloom.FromParts(filter.Words(), params.Bits, params.Hashes, params.Seed, filter.Inserted())
		if err != nil {
			return nil, err
		}
		for i := 0; i < probes; i++ {
			if bf.Contains(1_000_000 + int64(i)*7919) {
				hits++
			}
		}

		// Precision at this sizing through the full pipeline.
		row, err := runVariant(ctx, cfg, fmt.Sprintf("m=%d", bits), params, 0.9)
		if err != nil {
			return nil, err
		}
		rows = append(rows, SizingRow{
			Bits:       bits,
			Fill:       filter.FillRatio(),
			AnalyticFP: an.ValueFPProb,
			MeasuredFP: float64(hits) / float64(probes),
			Precision:  row.Precision,
		})
	}
	return rows, nil
}

// RenderAblation writes ablation rows as a text table.
func RenderAblation(w io.Writer, title string, rows []AblationRow) {
	fmt.Fprintln(w, title)
	fmt.Fprintf(w, "%-32s %10s %10s %10s %10s %9s\n", "variant", "precision", "recall", "f1", "bytes-up", "reports")
	for _, r := range rows {
		fmt.Fprintf(w, "%-32s %10.3f %10.3f %10.3f %10d %9d\n", r.Name, r.Precision, r.Recall, r.F1, r.BytesUp, r.Reports)
	}
}

// RenderSizing writes the sizing sweep as a text table.
func RenderSizing(w io.Writer, rows []SizingRow) {
	fmt.Fprintln(w, "Filter sizing sweep: fill, analytic vs measured value-level FP, end-to-end precision")
	fmt.Fprintf(w, "%12s %8s %12s %12s %10s\n", "bits", "fill", "analyticFP", "measuredFP", "precision")
	for _, r := range rows {
		fmt.Fprintf(w, "%12d %8.3f %12.5f %12.5f %10.3f\n", r.Bits, r.Fill, r.AnalyticFP, r.MeasuredFP, r.Precision)
	}
}
