package bloom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 3, 1); err == nil {
		t.Fatal("expected error for m=0")
	}
	if _, err := New(64, 0, 1); err == nil {
		t.Fatal("expected error for k=0")
	}
}

func TestNoFalseNegatives(t *testing.T) {
	f, err := New(1<<12, 4, 99)
	if err != nil {
		t.Fatal(err)
	}
	for v := int64(0); v < 200; v++ {
		f.Add(v * 31)
	}
	for v := int64(0); v < 200; v++ {
		if !f.Contains(v * 31) {
			t.Fatalf("false negative for %d", v*31)
		}
	}
	if f.N() != 200 {
		t.Fatalf("N = %d, want 200", f.N())
	}
}

func TestPropertyNoFalseNegatives(t *testing.T) {
	f := func(vals []int64) bool {
		bf, err := New(1<<14, 5, 7)
		if err != nil {
			return false
		}
		for _, v := range vals {
			bf.Add(v)
		}
		for _, v := range vals {
			if !bf.Contains(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestObservedFPRateNearAnalytic(t *testing.T) {
	const (
		m = 1 << 14
		k = 5
		n = 1500
	)
	f, err := New(m, k, 3)
	if err != nil {
		t.Fatal(err)
	}
	for v := int64(0); v < n; v++ {
		f.Add(v)
	}
	fp := 0
	const probes = 20000
	for v := int64(n); v < n+probes; v++ {
		if f.Contains(v) {
			fp++
		}
	}
	observed := float64(fp) / probes
	analytic := f.FalsePositiveRate()
	if observed > analytic*2+0.01 {
		t.Fatalf("observed FP rate %.4f far above analytic %.4f", observed, analytic)
	}
	if analytic > 0.05 {
		t.Fatalf("analytic FP rate %.4f unexpectedly high for this sizing", analytic)
	}
}

func TestFromPartsRoundTrip(t *testing.T) {
	f, err := New(256, 3, 11)
	if err != nil {
		t.Fatal(err)
	}
	for v := int64(0); v < 20; v++ {
		f.Add(v)
	}
	g, err := FromParts(f.Words(), f.M(), f.K(), 11, f.N())
	if err != nil {
		t.Fatal(err)
	}
	for v := int64(0); v < 20; v++ {
		if !g.Contains(v) {
			t.Fatalf("reconstructed filter lost element %d", v)
		}
	}
	if g.N() != f.N() || g.M() != f.M() || g.K() != f.K() {
		t.Fatal("reconstructed parameters differ")
	}
	// Probing behaviour must be bit-for-bit identical: same verdict on a
	// sweep of non-inserted values.
	for v := int64(100); v < 400; v++ {
		if f.Contains(v) != g.Contains(v) {
			t.Fatalf("verdict mismatch for %d after round trip", v)
		}
	}
}

func TestFromPartsValidation(t *testing.T) {
	if _, err := FromParts([]uint64{0}, 128, 3, 1, 0); err == nil {
		t.Fatal("expected word-count error")
	}
	if _, err := FromParts([]uint64{0}, 64, 0, 1, 0); err == nil {
		t.Fatal("expected k error")
	}
}

func TestOptimalParams(t *testing.T) {
	m, k := OptimalParams(1000, 0.01)
	// Standard formula: ~9.59 bits/element and k ~ 7 at 1% FP.
	if m < 9000 || m > 10100 {
		t.Fatalf("m = %d, want ~9586", m)
	}
	if k < 6 || k > 8 {
		t.Fatalf("k = %d, want ~7", k)
	}
	// Degenerate inputs fall back to safe defaults rather than zeros.
	m, k = OptimalParams(0, -1)
	if m == 0 || k < 1 {
		t.Fatalf("degenerate OptimalParams = (%d,%d)", m, k)
	}
}

func TestAnalyticFPRateMonotoneInN(t *testing.T) {
	prev := 0.0
	for n := uint64(0); n <= 5000; n += 500 {
		r := AnalyticFPRate(1<<12, 4, n)
		if r < prev {
			t.Fatalf("FP rate decreased as n grew: %v -> %v at n=%d", prev, r, n)
		}
		if r < 0 || r > 1 {
			t.Fatalf("FP rate %v outside [0,1]", r)
		}
		prev = r
	}
	if got := AnalyticFPRate(0, 4, 10); got != 1 {
		t.Fatalf("AnalyticFPRate(m=0) = %v, want 1", got)
	}
}

func TestFillRatioGrowsWithInserts(t *testing.T) {
	f, err := New(1024, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	if f.FillRatio() != 0 {
		t.Fatal("fresh filter should be empty")
	}
	for v := int64(0); v < 100; v++ {
		f.Add(v)
	}
	if f.FillRatio() <= 0 {
		t.Fatal("fill ratio did not grow")
	}
	if f.SizeBytes() != 1024/8 {
		t.Fatalf("SizeBytes = %d", f.SizeBytes())
	}
}

func TestOptimalParamsAchieveTarget(t *testing.T) {
	for _, target := range []float64{0.1, 0.01, 0.001} {
		m, k := OptimalParams(5000, target)
		got := AnalyticFPRate(m, k, 5000)
		if got > target*1.3 {
			t.Fatalf("target %v: analytic rate %v with (m=%d,k=%d)", target, got, m, k)
		}
		if math.IsNaN(got) {
			t.Fatal("NaN rate")
		}
	}
}
