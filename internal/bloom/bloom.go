// Package bloom implements the classic Bloom filter (Bloom, 1970): the
// baseline data structure the paper's Weighted Bloom Filter extends and is
// evaluated against ("BF" in Figure 4).
//
// A Bloom filter answers approximate membership: Contains may return false
// positives but never false negatives. It cannot distinguish which inserted
// element set a bit, which is exactly the weakness the WBF's weight pointers
// repair.
package bloom

import (
	"fmt"
	"math"

	"dimatch/internal/bitset"
	"dimatch/internal/hash"
)

// Filter is a classic Bloom filter over int64 elements.
type Filter struct {
	bits   *bitset.Set
	family hash.Family
	n      uint64 // elements inserted
}

// New returns a filter of m bits using k hash functions derived from seed.
// m and k must be positive.
func New(m uint64, k int, seed uint64) (*Filter, error) {
	if m == 0 {
		return nil, fmt.Errorf("bloom: m must be positive")
	}
	if k <= 0 {
		return nil, fmt.Errorf("bloom: k must be positive, got %d", k)
	}
	return &Filter{
		bits:   bitset.New(m),
		family: hash.NewFamily(seed, k, m),
	}, nil
}

// maxWireK caps the hash count accepted from serialized state: k bounds the
// loop every Contains runs, and a BF-baseline query frame carries k verbatim,
// so values beyond any useful configuration are corruption, not parameters.
const maxWireK = 512

// FromParts reconstructs a filter from serialized state (wire decoding).
func FromParts(words []uint64, m uint64, k int, seed uint64, n uint64) (*Filter, error) {
	if k <= 0 || k > maxWireK {
		return nil, fmt.Errorf("bloom: k = %d, want 1..%d", k, maxWireK)
	}
	bits, err := bitset.FromWords(words, m)
	if err != nil {
		return nil, fmt.Errorf("bloom: %w", err)
	}
	return &Filter{
		bits:   bits,
		family: hash.NewFamily(seed, k, m),
		n:      n,
	}, nil
}

// Add inserts v into the filter.
func (f *Filter) Add(v int64) {
	var buf [16]uint64
	for _, idx := range f.family.Indexes(v, buf[:0]) {
		f.bits.Set(idx)
	}
	f.n++
}

// Contains reports whether v may be in the filter. False positives are
// possible; false negatives are not.
//
//dimatch:noalloc
func (f *Filter) Contains(v int64) bool {
	var buf [16]uint64
	for _, idx := range f.family.Indexes(v, buf[:0]) {
		if !f.bits.Test(idx) {
			return false
		}
	}
	return true
}

// AbsorbFold ORs src's bits into f, folding or expanding across mismatched
// power-of-two lengths (bitset.OrFoldFrom), and accounts src's insertions.
// The caller is responsible for seed compatibility and for probing the
// result with at most src's hash count; given those, every element of src
// still tests positive in f — the union is conservative.
func (f *Filter) AbsorbFold(src *Filter) error {
	if err := f.bits.OrFoldFrom(src.bits); err != nil {
		return fmt.Errorf("bloom: %w", err)
	}
	f.n += src.n
	return nil
}

// N returns the number of Add calls (inserted elements, with multiplicity).
func (f *Filter) N() uint64 { return f.n }

// M returns the filter length in bits.
func (f *Filter) M() uint64 { return f.bits.Len() }

// K returns the number of hash functions.
func (f *Filter) K() int { return f.family.K() }

// Words returns the bit storage for serialization.
func (f *Filter) Words() []uint64 { return f.bits.Words() }

// FillRatio returns the fraction of set bits.
func (f *Filter) FillRatio() float64 { return f.bits.FillRatio() }

// SizeBytes returns the in-memory size of the bit array, for the
// storage-cost experiments.
func (f *Filter) SizeBytes() uint64 { return f.bits.SizeBytes() }

// FalsePositiveRate returns the analytic false-positive probability for the
// filter's current load: (1 - (1-1/m)^(k*n))^k, the quantity the paper calls
// the lower bound BF can guarantee (Table I's p and q).
func (f *Filter) FalsePositiveRate() float64 {
	return AnalyticFPRate(f.M(), f.K(), f.n)
}

// AnalyticFPRate returns the standard Bloom false-positive estimate for m
// bits, k hashes and n inserted elements.
func AnalyticFPRate(m uint64, k int, n uint64) float64 {
	if m == 0 || k <= 0 {
		return 1
	}
	pZero := math.Pow(1-1/float64(m), float64(k)*float64(n))
	return math.Pow(1-pZero, float64(k))
}

// OptimalParams returns the standard optimal (m, k) for n elements at the
// target false-positive rate: m = -n ln(p)/ln(2)^2, k = (m/n) ln(2).
func OptimalParams(n uint64, fpRate float64) (m uint64, k int) {
	if n == 0 {
		n = 1
	}
	if fpRate <= 0 || fpRate >= 1 {
		fpRate = 0.01
	}
	ln2 := math.Ln2
	mf := -float64(n) * math.Log(fpRate) / (ln2 * ln2)
	m = uint64(math.Ceil(mf))
	if m == 0 {
		m = 1
	}
	k = int(math.Round(mf / float64(n) * ln2))
	if k < 1 {
		k = 1
	}
	return m, k
}
