// AllocsPerRun pins for the //dimatch:noalloc functions of this package.
// The noalloc analyzer is the static early warning; these tests are the
// runtime ground truth. cmd/di-lint -allocharness reports any annotated
// function missing from this file.
package bloom

import "testing"

var containsSink bool

func TestNoallocFilterContains(t *testing.T) {
	f, err := New(1<<12, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	for v := int64(0); v < 100; v++ {
		f.Add(v * 3)
	}
	if n := testing.AllocsPerRun(100, func() {
		for v := int64(0); v < 50; v++ {
			containsSink = f.Contains(v)
		}
	}); n != 0 {
		t.Fatalf("(*Filter).Contains allocates %v times per run; //dimatch:noalloc requires 0", n)
	}
}
