package cluster

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"dimatch/internal/core"
	"dimatch/internal/pattern"
	"dimatch/internal/transport"
	"dimatch/internal/wire"
)

// Strategy selects how a search is executed across the cluster.
type Strategy int

const (
	// StrategyNaive ships every station's data to the center and matches
	// there (the paper's Approach 1 / "Naïve" curve).
	StrategyNaive Strategy = iota + 1
	// StrategyBF runs DI-matching with a plain Bloom filter (the paper's
	// "BF" curve): stations report bare IDs, the center cannot verify them.
	StrategyBF
	// StrategyWBF runs full DI-matching with the Weighted Bloom Filter.
	StrategyWBF
)

func (s Strategy) String() string {
	switch s {
	case StrategyNaive:
		return "naive"
	case StrategyBF:
		return "bf"
	case StrategyWBF:
		return "wbf"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// Options configures a cluster's default search knobs. Every knob can be
// overridden per call with a SearchOption.
type Options struct {
	// Params carries the pipeline knobs (samples b, hashes k, ε, seed...).
	// If Params.Bits is zero the filter is auto-sized per search to TargetFP
	// over the estimated insertions — the same sizing for BF and WBF, so the
	// storage comparison is apples to apples.
	Params core.Params
	// TopK limits each query's answer; <= 0 returns all qualified persons.
	TopK int
	// MinScore drops WBF and naive results scoring below the threshold
	// (0 keeps everything). A person whose local matches partition the
	// query's locals scores exactly 1, so thresholds near 1 select complete
	// matches. The BF baseline has no weights and cannot honor MinScore —
	// one of its fundamental weaknesses.
	MinScore float64
	// Verify enables the verification phase on WBF searches: the center
	// fetches the ranked candidates' local patterns from the stations,
	// materializes their globals and keeps only exact Eq. 2 matches. It
	// trades a second, candidate-sized round trip (still far below the
	// naive shipment) for eliminating residual false positives — the
	// "aggregation and verification" step of the paper's Section I.
	Verify bool
	// TargetFP is the sizing target used when Params.Bits == 0
	// (default 0.01).
	TargetFP float64
}

// CostReport quantifies one search, feeding Figures 4b-4d. Counts are
// per-search: concurrent searches over the same cluster each see only their
// own traffic. Traffic covers completed exchanges; a station that fails
// mid-exchange is counted in StationsFailed, not in the byte tallies.
type CostReport struct {
	// BytesDown / MessagesDown is dissemination traffic (center→stations).
	BytesDown, MessagesDown uint64
	// BytesUp / MessagesUp is report traffic (stations→center).
	BytesUp, MessagesUp uint64
	// FilterBytes is the in-memory footprint of the disseminated filter
	// (zero for naive) — the extra storage every station must hold.
	FilterBytes uint64
	// CenterStorageBytes is what the data center must keep to answer the
	// query: the whole dataset for naive, the filter plus reports otherwise.
	CenterStorageBytes uint64
	// StationRawBytes is the raw local-pattern storage across stations,
	// identical for all strategies (their own data).
	StationRawBytes uint64
	// Elapsed is the wall-clock search duration.
	Elapsed time.Duration
	// StationsFailed counts stations that did not answer (failure
	// injection or closed links).
	StationsFailed int
	// ReportsReceived counts candidate tuples received by the center.
	ReportsReceived int
}

// TotalBytes returns all traffic the search moved.
func (c CostReport) TotalBytes() uint64 { return c.BytesDown + c.BytesUp }

// Outcome is one search's full result.
type Outcome struct {
	Strategy Strategy
	// PerQuery maps each query to its ranked results. For StrategyBF the
	// center cannot attribute candidates to queries (no weights), so every
	// query receives the same candidate list ranked by reporting-station
	// count — the baseline's fundamental weakness.
	PerQuery map[core.QueryID][]core.Result
	Cost     CostReport
}

// Persons returns the ranked person IDs for one query.
func (o *Outcome) Persons(q core.QueryID) []core.PersonID {
	rs := o.PerQuery[q]
	out := make([]core.PersonID, len(rs))
	for i, r := range rs {
		out[i] = r.Person
	}
	return out
}

// Cluster wires one data center to a set of base stations over metered,
// request-multiplexed links, each in-process station served by its own
// goroutine. Any number of Search calls may run concurrently: each link's
// mux serializes outgoing frames and routes replies back to the owning
// search by wire request ID.
type Cluster struct {
	opts    Options
	length  int
	station []*Station

	muxes map[uint32]*transport.Mux // center end, by station id
	ids   []uint32                  // ascending station ids

	downMeter *transport.Meter
	upMeter   *transport.Meter

	mu      sync.Mutex
	dead    map[uint32]bool
	started bool
	closed  bool

	wg       sync.WaitGroup
	serveMu  sync.Mutex
	serveErr []error
}

// New builds a cluster from per-station local data. All patterns must share
// one length. The cluster is inert until Start.
func New(opts Options, stationData map[uint32]map[core.PersonID]pattern.Pattern) (*Cluster, error) {
	if len(stationData) == 0 {
		return nil, errors.New("cluster: no stations")
	}
	if opts.TargetFP == 0 {
		opts.TargetFP = 0.01
	}
	c := &Cluster{
		opts:      opts,
		muxes:     make(map[uint32]*transport.Mux, len(stationData)),
		dead:      make(map[uint32]bool),
		downMeter: &transport.Meter{},
		upMeter:   &transport.Meter{},
	}
	for id := range stationData {
		c.ids = append(c.ids, id)
	}
	sort.Slice(c.ids, func(i, j int) bool { return c.ids[i] < c.ids[j] })
	for _, id := range c.ids {
		locals := stationData[id]
		for _, l := range locals {
			if c.length == 0 {
				c.length = len(l)
			}
			if len(l) != c.length {
				c.closeMuxes()
				return nil, fmt.Errorf("%w: station %d pattern length %d, want %d", ErrLengthMismatch, id, len(l), c.length)
			}
		}
		center, stationEnd := transport.Pipe(c.downMeter, c.upMeter)
		c.muxes[id] = transport.NewMux(center)
		c.station = append(c.station, NewStation(id, locals, stationEnd))
	}
	if c.length == 0 {
		c.closeMuxes()
		return nil, errors.New("cluster: stations hold no patterns")
	}
	return c, nil
}

// NewWithLinks builds a data center over externally established links (for
// example TCP connections to remote station processes). The caller supplies
// the shared pattern length and the meters its links record into (either
// may be nil). Start is a no-op — remote stations run their own Serve
// loops — and Shutdown sends each station a shutdown message and closes the
// links. The cluster takes ownership of the links: each is wrapped in a
// request mux, so callers must not Recv on them afterwards.
func NewWithLinks(opts Options, links map[uint32]transport.Link, patternLength int, downMeter, upMeter *transport.Meter) (*Cluster, error) {
	if len(links) == 0 {
		return nil, errors.New("cluster: no station links")
	}
	if patternLength <= 0 {
		return nil, fmt.Errorf("cluster: pattern length %d, want > 0", patternLength)
	}
	if opts.TargetFP == 0 {
		opts.TargetFP = 0.01
	}
	if downMeter == nil {
		downMeter = &transport.Meter{}
	}
	if upMeter == nil {
		upMeter = &transport.Meter{}
	}
	c := &Cluster{
		opts:      opts,
		length:    patternLength,
		muxes:     make(map[uint32]*transport.Mux, len(links)),
		dead:      make(map[uint32]bool),
		downMeter: downMeter,
		upMeter:   upMeter,
	}
	for id, link := range links {
		c.ids = append(c.ids, id)
		c.muxes[id] = transport.NewMux(link)
	}
	sort.Slice(c.ids, func(i, j int) bool { return c.ids[i] < c.ids[j] })
	return c, nil
}

// ServeStation runs a base station loop over an established link until the
// center sends a shutdown or the link closes — the body of a remote station
// process.
func ServeStation(id uint32, locals map[core.PersonID]pattern.Pattern, link transport.Link) error {
	return NewStation(id, locals, link).Serve()
}

// Start launches the station goroutines. It is idempotent.
func (c *Cluster) Start() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.started {
		return
	}
	c.started = true
	for _, s := range c.station {
		s := s
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			if err := s.Serve(); err != nil {
				c.serveMu.Lock()
				c.serveErr = append(c.serveErr, err)
				c.serveMu.Unlock()
			}
		}()
	}
}

// Stations returns the number of stations (dead or alive).
func (c *Cluster) Stations() int { return len(c.ids) }

// PatternLength returns the cluster's time-series length.
func (c *Cluster) PatternLength() int { return c.length }

// KillStation severs one station's link, simulating a failure. The data
// center is not told: subsequent (and in-flight) searches discover the
// failure when their exchange fails and count it in
// CostReport.StationsFailed.
func (c *Cluster) KillStation(id uint32) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	mux, ok := c.muxes[id]
	if !ok {
		return fmt.Errorf("cluster: unknown station %d", id)
	}
	if c.dead[id] {
		return nil
	}
	c.dead[id] = true
	return mux.Close()
}

// closeMuxes closes every mux (and thus every link) without shutdown
// frames — construction-failure cleanup.
func (c *Cluster) closeMuxes() {
	for _, m := range c.muxes {
		_ = m.Close()
	}
}

// shutdownGrace bounds how long Shutdown waits for a station to accept its
// shutdown frame before closing the link out from under it. A stalled link
// (dead TCP peer, abandoned send holding the mux's send slot) would
// otherwise block Shutdown forever.
const shutdownGrace = 100 * time.Millisecond

// Shutdown stops all stations and waits for their goroutines to exit.
// Subsequent Search calls return ErrClusterClosed. The cluster lock is not
// held while frames are sent, so concurrent Search and KillStation calls
// cannot deadlock against a stalled station; each station gets a bounded
// grace to accept the shutdown frame, after which its link is closed (which
// also unblocks any send stalled on it).
func (c *Cluster) Shutdown() error {
	c.mu.Lock()
	c.closed = true
	var toStop []*transport.Mux
	for _, id := range c.ids {
		if c.dead[id] {
			continue
		}
		c.dead[id] = true
		toStop = append(toStop, c.muxes[id])
	}
	c.mu.Unlock()

	var stopWg sync.WaitGroup
	for _, m := range toStop {
		m := m
		stopWg.Add(1)
		go func() {
			defer stopWg.Done()
			// Best effort: the station may already be gone, or the link may
			// be stalled — Close below unblocks a stalled send.
			sent := make(chan struct{})
			go func() {
				_ = m.Send(wire.ShutdownMessage())
				close(sent)
			}()
			select {
			case <-sent:
			case <-time.After(shutdownGrace):
			}
			_ = m.Close()
		}()
	}
	stopWg.Wait()
	c.wg.Wait()
	c.serveMu.Lock()
	defer c.serveMu.Unlock()
	return errors.Join(c.serveErr...)
}

// allMuxes snapshots every station mux in station-ID order, including
// severed ones — the center discovers failures by talking, as it would in a
// real deployment.
func (c *Cluster) allMuxes() []*transport.Mux {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*transport.Mux, 0, len(c.ids))
	for _, id := range c.ids {
		out = append(out, c.muxes[id])
	}
	return out
}

// Search runs one batch of queries and returns ranked results plus cost
// accounting. The variadic options override the cluster's defaults for this
// call only (strategy, top-K, verification, score threshold, sizing target);
// with no options it runs a WBF search under the cluster Options.
//
// Search honors ctx: cancellation or timeout abandons the in-flight fan-out
// round and returns an error wrapping both ErrCancelled and ctx.Err(),
// leaving the links usable for subsequent searches. Any number of Search
// calls may run concurrently over one cluster.
func (c *Cluster) Search(ctx context.Context, queries []core.Query, opts ...SearchOption) (*Outcome, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	cfg := c.searchDefaults()
	for _, o := range opts {
		o(&cfg)
	}
	if len(queries) == 0 {
		return nil, ErrNoQueries
	}
	for _, q := range queries {
		if err := q.Validate(); err != nil {
			return nil, err
		}
		if q.Length() != c.length {
			return nil, fmt.Errorf("%w: query %d length %d, cluster is %d", ErrLengthMismatch, q.ID, q.Length(), c.length)
		}
	}
	c.mu.Lock()
	closed := c.closed
	c.mu.Unlock()
	if closed {
		return nil, ErrClusterClosed
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("%w: %w", ErrCancelled, err)
	}

	start := time.Now()
	var (
		out *Outcome
		err error
	)
	switch cfg.strategy {
	case StrategyWBF:
		out, err = c.searchWBF(ctx, cfg, queries)
	case StrategyBF:
		out, err = c.searchBF(ctx, cfg, queries)
	case StrategyNaive:
		out, err = c.searchNaive(ctx, cfg, queries)
	default:
		return nil, fmt.Errorf("%w: %d", ErrUnknownStrategy, int(cfg.strategy))
	}
	if err != nil {
		return nil, err
	}

	out.Strategy = cfg.strategy
	out.Cost.Elapsed = time.Since(start)
	for _, s := range c.station {
		out.Cost.StationRawBytes += s.StorageBytes()
	}
	return out, nil
}

// fanOut sends one request to every station concurrently and waits for all
// replies (or failures), invoking handle for each reply in station-ID order.
// Per-search traffic is tallied directly into cost, covering completed
// exchanges (request out, reply back); a station that dies mid-exchange
// contributes only to StationsFailed. Unlike shared-meter deltas, the tally
// is unaffected by other searches running concurrently on the same links.
//
// Stations that fail are counted, not fatal: the search degrades exactly as
// a real deployment would. Every reply is drained and accounted even if
// handle returns an error partway, so StationsFailed stays truthful; the
// first handle error is returned after the drain. A cancelled context
// abandons the round and returns an error wrapping ErrCancelled.
func (c *Cluster) fanOut(ctx context.Context, msg wire.Message, cost *CostReport, handle func(reply wire.Message) error) (failed int, err error) {
	muxes := c.allMuxes()
	type replyOrErr struct {
		m   wire.Message
		err error
	}
	replies := make([]replyOrErr, len(muxes))
	var wg sync.WaitGroup
	for i, mx := range muxes {
		i, mx := i, mx
		wg.Add(1)
		go func() {
			defer wg.Done()
			m, err := mx.Roundtrip(ctx, msg)
			replies[i] = replyOrErr{m: m, err: err}
		}()
	}
	wg.Wait()
	if ctxErr := ctx.Err(); ctxErr != nil {
		return 0, fmt.Errorf("%w: %w", ErrCancelled, ctxErr)
	}
	allFailed := true
	for _, r := range replies {
		if r.err == nil {
			allFailed = false
			break
		}
	}
	if allFailed && len(replies) > 0 {
		// Distinguish a Shutdown racing this search from genuine total
		// station loss: the former must not read as an empty success.
		c.mu.Lock()
		closed := c.closed
		c.mu.Unlock()
		if closed {
			return 0, ErrClusterClosed
		}
	}

	requestSize := uint64(msg.EncodedSize())
	var handleErr error
	for _, r := range replies {
		if r.err != nil {
			failed++
			continue
		}
		cost.BytesDown += requestSize
		cost.MessagesDown++
		cost.BytesUp += uint64(r.m.EncodedSize())
		cost.MessagesUp++
		if handleErr == nil {
			handleErr = handle(r.m)
		}
	}
	return failed, handleErr
}

// searchWBF is the paper's DI-matching pipeline end to end.
func (c *Cluster) searchWBF(ctx context.Context, cfg searchConfig, queries []core.Query) (*Outcome, error) {
	params, err := c.resolveParams(cfg, queries)
	if err != nil {
		return nil, err
	}
	enc, err := core.NewEncoder(params, c.length)
	if err != nil {
		return nil, err
	}
	for _, q := range queries {
		if err := enc.AddQuery(q); err != nil {
			return nil, err
		}
	}
	filter := enc.Filter()
	agg := core.NewAggregator(filter)

	out := &Outcome{PerQuery: make(map[core.QueryID][]core.Result, len(queries))}
	msg := wire.EncodeWBFQuery(filter)
	var reportBytes uint64
	failed, err := c.fanOut(ctx, msg, &out.Cost, func(reply wire.Message) error {
		batch, err := wire.DecodeReports(reply)
		if err != nil {
			return err
		}
		reportBytes += uint64(reply.EncodedSize())
		for _, rep := range batch.Reports {
			out.Cost.ReportsReceived++
			if err := agg.Add(rep); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, q := range queries {
		out.PerQuery[q.ID] = rankWBF(cfg, agg, q.ID)
	}
	out.Cost.StationsFailed = failed
	out.Cost.FilterBytes = filter.SizeBytes()
	out.Cost.CenterStorageBytes = filter.SizeBytes() + reportBytes
	if cfg.verify {
		if err := c.verifyWBF(ctx, cfg, queries, out); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// verifyWBF runs the verification phase: fetch every ranked candidate's
// local patterns, materialize their globals and drop candidates that fail
// the exact Eq. 2 check against their query.
func (c *Cluster) verifyWBF(ctx context.Context, cfg searchConfig, queries []core.Query, out *Outcome) error {
	candidates := make(map[core.PersonID]bool)
	for _, results := range out.PerQuery {
		for _, r := range results {
			candidates[r.Person] = true
		}
	}
	if len(candidates) == 0 {
		return nil
	}
	fetch := wire.Fetch{Persons: make([]core.PersonID, 0, len(candidates))}
	for p := range candidates {
		fetch.Persons = append(fetch.Persons, p)
	}

	globals := make(map[core.PersonID]pattern.Pattern, len(candidates))
	var fetchedBytes uint64
	failed, err := c.fanOut(ctx, wire.EncodeFetch(fetch), &out.Cost, func(reply wire.Message) error {
		data, err := wire.DecodeNaiveData(reply)
		if err != nil {
			return err
		}
		fetchedBytes += uint64(reply.EncodedSize())
		for i, p := range data.Persons {
			g := globals[p]
			if g == nil {
				g = make(pattern.Pattern, c.length)
				globals[p] = g
			}
			for j, v := range data.Locals[i] {
				if j < len(g) {
					g[j] += v
				}
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	if failed > out.Cost.StationsFailed {
		out.Cost.StationsFailed = failed
	}
	out.Cost.CenterStorageBytes += fetchedBytes

	eps := cfg.params.Epsilon
	for _, q := range queries {
		qGlobal, err := q.Global()
		if err != nil {
			return err
		}
		results := out.PerQuery[q.ID]
		kept := results[:0]
		for _, r := range results {
			if pattern.Similar(qGlobal, globals[r.Person], eps) {
				kept = append(kept, r)
			}
		}
		out.PerQuery[q.ID] = kept
	}
	return nil
}

// rankWBF finalizes one query's WBF candidates. With MinScore unset the
// paper's strict Algorithm 3 applies (delete weight sums above 1, rank
// descending). With MinScore set, ε-induced attribution error is tolerated
// symmetrically: candidates scoring within [MinScore, 2-MinScore] are kept
// and ranked by closeness to the perfect partition score of 1 — a complete
// match sums to exactly 1, a same-category match with jitter lands just
// beside it, and a cross-category accident overshoots far past the band.
func rankWBF(cfg searchConfig, agg *core.Aggregator, q core.QueryID) []core.Result {
	if cfg.minScore <= 0 {
		return agg.TopK(q, cfg.topK)
	}
	lo, hi := cfg.minScore, 2-cfg.minScore
	results := agg.Results(q)
	kept := results[:0]
	for _, r := range results {
		if s := r.Score(); s >= lo && s <= hi {
			kept = append(kept, r)
		}
	}
	results = kept
	dist := func(r core.Result) float64 {
		d := 1 - r.Score()
		if d < 0 {
			d = -d
		}
		return d
	}
	sort.Slice(results, func(i, j int) bool {
		di, dj := dist(results[i]), dist(results[j])
		if di != dj {
			return di < dj
		}
		return results[i].Person < results[j].Person
	})
	if cfg.topK > 0 && len(results) > cfg.topK {
		results = results[:cfg.topK]
	}
	return results
}

// searchBF is the Bloom-filter baseline: same pipeline, no weights, so the
// center can only count how many stations reported each person.
func (c *Cluster) searchBF(ctx context.Context, cfg searchConfig, queries []core.Query) (*Outcome, error) {
	params, err := c.resolveParams(cfg, queries)
	if err != nil {
		return nil, err
	}
	enc, err := core.NewBFEncoder(params, c.length)
	if err != nil {
		return nil, err
	}
	for _, q := range queries {
		if err := enc.AddQuery(q); err != nil {
			return nil, err
		}
	}
	filter := enc.Filter()

	counts := make(map[core.PersonID]int)
	out := &Outcome{PerQuery: make(map[core.QueryID][]core.Result, len(queries))}
	msg := wire.EncodeBFQuery(wire.BFQuery{Filter: filter, Params: params, Length: c.length})
	var reportBytes uint64
	failed, err := c.fanOut(ctx, msg, &out.Cost, func(reply wire.Message) error {
		batch, err := wire.DecodeBFMatches(reply)
		if err != nil {
			return err
		}
		reportBytes += uint64(reply.EncodedSize())
		for _, p := range batch.Persons {
			out.Cost.ReportsReceived++
			counts[p]++
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	ranked := make([]core.Result, 0, len(counts))
	stations := int64(len(c.ids))
	for p, n := range counts {
		ranked = append(ranked, core.Result{
			Person:      p,
			Numerator:   int64(n),
			Denominator: stations,
			Stations:    n,
		})
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].Numerator != ranked[j].Numerator {
			return ranked[i].Numerator > ranked[j].Numerator
		}
		return ranked[i].Person < ranked[j].Person
	})
	if cfg.topK > 0 && len(ranked) > cfg.topK {
		ranked = ranked[:cfg.topK]
	}
	for _, q := range queries {
		out.PerQuery[q.ID] = ranked
	}
	out.Cost.StationsFailed = failed
	out.Cost.FilterBytes = filter.SizeBytes()
	out.Cost.CenterStorageBytes = filter.SizeBytes() + reportBytes
	return out, nil
}

// searchNaive ships everything and matches centrally with the exact Eq. 2
// predicate. Precision is 1 by construction; the cost is the point.
func (c *Cluster) searchNaive(ctx context.Context, cfg searchConfig, queries []core.Query) (*Outcome, error) {
	globals := make(map[core.PersonID]pattern.Pattern)
	var shippedBytes uint64
	out := &Outcome{PerQuery: make(map[core.QueryID][]core.Result, len(queries))}
	failed, err := c.fanOut(ctx, wire.ShipAllMessage(), &out.Cost, func(reply wire.Message) error {
		data, err := wire.DecodeNaiveData(reply)
		if err != nil {
			return err
		}
		shippedBytes += uint64(reply.EncodedSize())
		for i, p := range data.Persons {
			g := globals[p]
			if g == nil {
				g = make(pattern.Pattern, c.length)
				globals[p] = g
			}
			for j, v := range data.Locals[i] {
				g[j] += v
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	eps := cfg.params.Epsilon
	for _, q := range queries {
		qGlobal, err := q.Global()
		if err != nil {
			return nil, err
		}
		type cand struct {
			person core.PersonID
			dist   int64
		}
		var cands []cand
		for p, g := range globals {
			d, err := pattern.MaxAbsDiff(qGlobal, g)
			if err != nil {
				continue // length mismatch: cannot match
			}
			if d > eps {
				continue
			}
			if cfg.minScore > 0 {
				if score := float64(eps-d+1) / float64(eps+1); score < cfg.minScore {
					continue
				}
			}
			cands = append(cands, cand{person: p, dist: d})
		}
		sort.Slice(cands, func(i, j int) bool {
			if cands[i].dist != cands[j].dist {
				return cands[i].dist < cands[j].dist
			}
			return cands[i].person < cands[j].person
		})
		if cfg.topK > 0 && len(cands) > cfg.topK {
			cands = cands[:cfg.topK]
		}
		rs := make([]core.Result, len(cands))
		for i, cd := range cands {
			rs[i] = core.Result{
				Person:      cd.person,
				Numerator:   eps - cd.dist + 1,
				Denominator: eps + 1,
				Stations:    len(c.ids),
			}
		}
		out.PerQuery[q.ID] = rs
	}
	out.Cost.StationsFailed = failed
	out.Cost.ReportsReceived = len(globals)
	out.Cost.CenterStorageBytes = shippedBytes
	return out, nil
}
