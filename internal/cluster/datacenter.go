package cluster

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"dimatch/internal/adapt"
	"dimatch/internal/core"
	"dimatch/internal/index"
	"dimatch/internal/metrics"
	"dimatch/internal/pattern"
	"dimatch/internal/placement"
	"dimatch/internal/transport"
	"dimatch/internal/wire"
)

// Strategy selects how a search is executed across the cluster.
type Strategy int

const (
	// StrategyNaive ships every station's data to the center and matches
	// there (the paper's Approach 1 / "Naïve" curve).
	StrategyNaive Strategy = iota + 1
	// StrategyBF runs DI-matching with a plain Bloom filter (the paper's
	// "BF" curve): stations report bare IDs, the center cannot verify them.
	StrategyBF
	// StrategyWBF runs full DI-matching with the Weighted Bloom Filter.
	StrategyWBF
)

func (s Strategy) String() string {
	switch s {
	case StrategyNaive:
		return "naive"
	case StrategyBF:
		return "bf"
	case StrategyWBF:
		return "wbf"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// Options configures a cluster's default search knobs. Every knob can be
// overridden per call with a SearchOption.
type Options struct {
	// Params carries the pipeline knobs (samples b, hashes k, ε, seed...).
	// If Params.Bits is zero the filter is auto-sized per search to TargetFP
	// over the estimated insertions — the same sizing for BF and WBF, so the
	// storage comparison is apples to apples.
	Params core.Params
	// TopK limits each query's answer; <= 0 returns all qualified persons.
	TopK int
	// MinScore drops WBF and naive results scoring below the threshold
	// (0 keeps everything). A person whose local matches partition the
	// query's locals scores exactly 1, so thresholds near 1 select complete
	// matches. The BF baseline has no weights and cannot honor MinScore —
	// one of its fundamental weaknesses.
	MinScore float64
	// Verify enables the verification phase on WBF searches: the center
	// fetches the ranked candidates' local patterns from the stations,
	// materializes their globals and keeps only exact Eq. 2 matches. It
	// trades a second, candidate-sized round trip (still far below the
	// naive shipment) for eliminating residual false positives — the
	// "aggregation and verification" step of the paper's Section I.
	Verify bool
	// TargetFP is the sizing target used when Params.Bits == 0
	// (default 0.01).
	TargetFP float64
	// BatchSize bounds how many queries a WBF search packs into one batched
	// wire exchange. 0 (the default) packs the whole query set into a single
	// round; 1 disables batching and runs the legacy one-frame-per-query
	// pipeline; n > 1 splits the set into rounds of at most n queries.
	// Override per call with WithBatching.
	BatchSize int
	// Routing selects the default fan-out routing for WBF searches. The
	// zero value, RoutingSummary, prunes stations whose cached routing
	// summary admits no possible match; RoutingFull keeps the classic
	// every-station fan-out; RoutingTree plans over the Bloofi digest tree.
	// Override per call with WithRouting.
	Routing RoutingMode
	// TreeFanout bounds the digest tree's node width under RoutingTree
	// (default tree.DefaultFanout). Smaller fanouts prune with fewer union
	// probes per level but hold more inner-node unions; see docs/ROUTING.md
	// and docs/OPERATIONS.md for choosing it.
	TreeFanout int
	// AdaptWindow is the traffic profiler's sliding window in observed
	// band probes: once that many accumulate, every counter halves, so the
	// profile tracks the recent mix instead of all history (see
	// internal/adapt and docs/OPERATIONS.md on sizing it). 0 keeps the
	// unbounded all-history profile.
	AdaptWindow int
}

// CostReport quantifies one search, feeding Figures 4b-4d. Counts are
// per-search: concurrent searches over the same cluster each see only their
// own traffic. Traffic covers completed exchanges; a station that fails
// mid-exchange is counted in StationsFailed, not in the byte tallies.
type CostReport struct {
	// BytesDown / MessagesDown is dissemination traffic (center→stations).
	BytesDown, MessagesDown uint64
	// BytesUp / MessagesUp is report traffic (stations→center).
	BytesUp, MessagesUp uint64
	// FilterBytes is the in-memory footprint of the disseminated filter
	// (zero for naive) — the extra storage every station must hold.
	FilterBytes uint64
	// CenterStorageBytes is what the data center must keep to answer the
	// query: the whole dataset for naive, the filter plus reports otherwise.
	CenterStorageBytes uint64
	// StationRawBytes is the raw local-pattern storage across stations,
	// identical for all strategies (their own data). The stations report it
	// themselves over the wire (cached per membership epoch), so in-process
	// and link-backed clusters measure the same figure; a station that fails
	// the stats exchange contributes 0.
	StationRawBytes uint64
	// Elapsed is the wall-clock search duration.
	Elapsed time.Duration
	// StationsFailed counts stations that did not answer (failure
	// injection or closed links).
	StationsFailed int
	// ReportsReceived counts candidate tuples received by the center.
	ReportsReceived int
	// Batches counts the fan-out rounds that actually sent a KindBatchQuery
	// frame: ceil(queries / batch size) when batching is active and at
	// least one station accepts batch frames, 0 for a legacy per-query
	// search or an all-pre-v3 fleet. Messages and bytes above reflect
	// whatever mix of batched and per-query exchanges actually ran.
	Batches int
	// StationsPruned counts member stations the summary-routing step
	// excluded from this search's query fan-out: their cached summaries
	// admitted no possible match for any query of the batch. Pruned
	// stations are not failed — they were never asked. Always 0 under
	// RoutingFull, for BF/naive searches, and when the routed plan fell
	// back to full fan-out.
	StationsPruned int
	// SummaryRefreshes counts the KindSummary exchanges this search
	// triggered to (re)fill the coordinator's summary cache, and
	// SummaryBytesDown / SummaryBytesUp their traffic. Like the per-epoch
	// stats exchange, refresh traffic fills cluster-level state shared by
	// every search, so it is billed here and NOT into the Bytes/Messages
	// totals above; an operator weighs these against the exchanges routing
	// pruned (docs/OPERATIONS.md).
	SummaryRefreshes int
	SummaryBytesDown uint64
	SummaryBytesUp   uint64
	// SubtreeProbes counts digest-membership evaluations the routing plan
	// performed: one per (probe, digest) pair under RoutingSummary's flat
	// scan, one per (probe, tree node) visited under RoutingTree's descent —
	// including union probes on pruned subtrees and the root's probes on
	// region digests. It is the planning-cost figure BENCH_hierarchy.json
	// tracks: flat planning grows linearly in the membership, tree descent
	// sublinearly.
	SubtreeProbes uint64
	// TierHops is the coordinator depth this WBF search traversed: 1 for a
	// flat cluster, 1 + the deepest delegate's own TierHops when route
	// delegates (regions) answered. 0 for BF/naive searches, which never
	// delegate.
	TierHops int
	// ParamEpoch is the adaptive parameter epoch live at this search's
	// start (see Cluster.RederiveParams), 0 while the cluster runs pure
	// static parameters. The search is pinned to it for observability: a
	// rollout completing mid-search changes station digests (each
	// self-describing and individually conservative), never this search's
	// results.
	ParamEpoch uint64
}

// TotalBytes returns the search's dissemination plus report traffic.
// Summary-refresh traffic is billed separately (SummaryBytesDown/Up): it
// fills a cluster-level cache shared by every search, like the per-epoch
// stats exchange.
func (c CostReport) TotalBytes() uint64 { return c.BytesDown + c.BytesUp }

// Outcome is one search's full result.
type Outcome struct {
	Strategy Strategy
	// PerQuery maps each query to its ranked results. For StrategyBF the
	// center cannot attribute candidates to queries (no weights), so every
	// query receives the same candidate list ranked by reporting-station
	// count — the baseline's fundamental weakness.
	PerQuery map[core.QueryID][]core.Result
	Cost     CostReport
}

// Persons returns the ranked person IDs for one query.
func (o *Outcome) Persons(q core.QueryID) []core.PersonID {
	rs := o.PerQuery[q]
	out := make([]core.PersonID, len(rs))
	for i, r := range rs {
		out[i] = r.Person
	}
	return out
}

// StationStats is one station's resident data, as reported by the station
// itself over the wire.
type StationStats struct {
	// Station is the reporting station's ID.
	Station uint32
	// Residents is the number of local patterns the station holds.
	Residents int
	// StorageBytes is the raw bytes those patterns occupy (8 per value).
	StorageBytes uint64
	// PatternLength is the time-series length the station serves (0 when it
	// holds no patterns).
	PatternLength int
	// WireVersion is the highest wire protocol version the station
	// advertised in its stats reply. Stations at wire.Version3 or above can
	// receive batched search rounds; older ones are served per-query frames.
	WireVersion int
	// Delegate reports whether the peer advertised wire.FlagRouteDelegate:
	// it is a region coordinator fronting a whole sub-cluster and accepts
	// KindRouteQuery rounds. The flag — not the version — is what gates
	// delegation: a plain v6 station would fail its serve loop on a route
	// query.
	Delegate bool
}

// Stats is a cluster-wide storage snapshot fetched from the stations over
// the wire (one KindStats exchange per station, cached per membership
// epoch). Stations appear in ascending-ID order; a station that failed the
// exchange is counted in StationsFailed and omitted from Stations.
type Stats struct {
	// Epoch is the membership epoch the snapshot belongs to; it advances on
	// every mutation (ingest, evict, add/remove station, failure injection).
	Epoch uint64
	// Stations holds the per-station figures, ascending by station ID.
	Stations []StationStats
	// StationsFailed counts stations that did not answer the exchange.
	StationsFailed int
	// Stream is the merged health snapshot of every streaming ingest
	// pipeline currently registered on the cluster (see
	// RegisterStreamStats): admission/flush/eviction totals plus
	// per-station queue depths. Unlike the storage figures above it is not
	// epoch-cached — every Stats call reads the pipelines live — and it is
	// nil when no pipeline is attached.
	Stream *metrics.StreamStats
}

// TotalResidents sums the resident counts across reporting stations.
func (s *Stats) TotalResidents() int {
	n := 0
	for _, st := range s.Stations {
		n += st.Residents
	}
	return n
}

// TotalStorageBytes sums the raw pattern storage across reporting stations.
func (s *Stats) TotalStorageBytes() uint64 {
	var n uint64
	for _, st := range s.Stations {
		n += st.StorageBytes
	}
	return n
}

// epoch is one immutable snapshot of cluster membership. Every search pins
// the epoch current at its start and fans out over exactly that station
// set, so membership mutations can swap in the next epoch while searches
// are in flight without racing them. ids ascend; muxes is parallel.
type epoch struct {
	version uint64
	ids     []uint32
	muxes   []*transport.Mux

	// stats caches the stations' KindStats replies for this epoch. Every
	// mutation installs a fresh epoch, so a filled cache can never go
	// stale.
	statsMu sync.Mutex
	stats   *Stats // dimatch:guardedby statsMu
}

// find returns the index of id in the epoch's membership, or -1.
func (ep *epoch) find(id uint32) int {
	i := sort.Search(len(ep.ids), func(i int) bool { return ep.ids[i] >= id })
	if i < len(ep.ids) && ep.ids[i] == id {
		return i
	}
	return -1
}

// cachedStats returns the epoch's stats snapshot, or nil before the first
// successful fetch.
func (ep *epoch) cachedStats() *Stats {
	ep.statsMu.Lock()
	defer ep.statsMu.Unlock()
	return ep.stats
}

// seedStats pre-fills the epoch's cache from a predecessor epoch's snapshot
// with one station's entry replaced (or inserted, keeping ascending order)
// by a fresh reply. A fetch that already won the race is left in place.
func (ep *epoch) seedStats(prev *Stats, fresh wire.StatsReply) {
	entry := StationStats{
		Station:       fresh.Station,
		Residents:     int(fresh.Residents),
		StorageBytes:  fresh.StorageBytes,
		PatternLength: int(fresh.Length),
		WireVersion:   int(fresh.MaxVersion),
		Delegate:      fresh.Flags&wire.FlagRouteDelegate != 0,
	}
	stations := make([]StationStats, 0, len(prev.Stations)+1)
	inserted := false
	for _, s := range prev.Stations {
		if s.Station == fresh.Station {
			continue
		}
		if !inserted && s.Station > fresh.Station {
			stations = append(stations, entry)
			inserted = true
		}
		stations = append(stations, s)
	}
	if !inserted {
		stations = append(stations, entry)
	}
	st := &Stats{Epoch: ep.version, Stations: stations}
	if missing := len(ep.ids) - len(stations); missing > 0 {
		st.StationsFailed = missing
	}
	ep.statsMu.Lock()
	if ep.stats == nil {
		ep.stats = st
	}
	ep.statsMu.Unlock()
}

// Cluster wires one data center to a set of base stations over metered,
// request-multiplexed links, each in-process station served by its own
// goroutine. Any number of Search calls may run concurrently: each link's
// mux serializes outgoing frames and routes replies back to the owning
// search by wire request ID.
//
// The cluster is live: Ingest and Evict mutate a station's resident
// patterns, AddStation/AddStationLink and RemoveStation grow and shrink the
// membership, all while searches are in flight. Membership lives in an
// epoch-versioned snapshot: an in-flight search works over the epoch it
// started with, a mutation installs the next one.
type Cluster struct {
	opts   Options
	length int

	downMeter *transport.Meter
	upMeter   *transport.Meter

	mu      sync.Mutex
	ep      *epoch          // dimatch:guardedby mu — searches pin a snapshot via pinEpoch, never read this live
	epochs  uint64          // dimatch:guardedby mu — version counter feeding ep.version
	pending []*Station      // dimatch:guardedby mu — in-process stations awaiting Start
	dead    map[uint32]bool // dimatch:guardedby mu
	started bool            // dimatch:guardedby mu
	closed  bool            // dimatch:guardedby mu

	// placeTab tracks persons under automatic placement (see Place); nil
	// until the first Place call, so station-addressed clusters pay nothing.
	// healMu serializes reconciliation passes.
	placeTab *placement.Table
	healMu   sync.Mutex

	// summaries is the routing-summary cache: one probeable digest per
	// station, filled lazily by routed searches and kept honest by the
	// mutation hooks (ingest delta-updates, evict and membership changes
	// invalidate). See route.go.
	summaries summaryCache

	// upward is the cached subtree digest a region coordinator serves to its
	// parent, keyed by the churn state it was built under. See
	// Cluster.routingDigest (region.go).
	upward upwardDigest

	// profiler accumulates the band-traffic profile the routing step
	// observes; RederiveParams turns it into an adaptive parameter plan
	// (params.go). Internally synchronized — searches feed it concurrently.
	profiler *adapt.Profiler
	// rolloutMu serializes whole parameter rollouts (RederiveParams,
	// ResetParams): held across the update fan-out, never by searches.
	// paramMu guards the live epoch/plan pair with short critical sections.
	rolloutMu  sync.Mutex
	paramMu    sync.Mutex
	paramEpoch uint64      // dimatch:guardedby paramMu
	paramPlan  *index.Plan // dimatch:guardedby paramMu

	// Streaming-pipeline hooks (see stream_hooks.go): membership-change
	// subscribers and registered health-snapshot providers. hookMu is
	// leaf-level — never held while c.mu is taken or a callback runs.
	hookMu      sync.Mutex
	memberSubs  map[uint64]func()                      // dimatch:guardedby hookMu
	streamStats map[uint64]func() *metrics.StreamStats // dimatch:guardedby hookMu
	hookSeq     uint64                                 // dimatch:guardedby hookMu

	wg       sync.WaitGroup
	serveMu  sync.Mutex
	serveErr []error // dimatch:guardedby serveMu
}

// New builds a cluster from per-station local data. All patterns must share
// one length. The cluster is inert until Start.
func New(opts Options, stationData map[uint32]map[core.PersonID]pattern.Pattern) (*Cluster, error) {
	if len(stationData) == 0 {
		return nil, errors.New("cluster: no stations")
	}
	if opts.TargetFP == 0 {
		opts.TargetFP = 0.01
	}
	c := &Cluster{
		opts:      opts,
		dead:      make(map[uint32]bool),
		downMeter: &transport.Meter{},
		upMeter:   &transport.Meter{},
	}
	ids := make([]uint32, 0, len(stationData))
	for id := range stationData {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	muxes := make([]*transport.Mux, 0, len(ids))
	fail := func(err error) (*Cluster, error) {
		for _, m := range muxes {
			_ = m.Close()
		}
		return nil, err
	}
	for _, id := range ids {
		locals := stationData[id]
		for _, l := range locals {
			if c.length == 0 {
				c.length = len(l)
			}
			if len(l) != c.length {
				return fail(fmt.Errorf("%w: station %d pattern length %d, want %d", ErrLengthMismatch, id, len(l), c.length))
			}
		}
		center, stationEnd := transport.Pipe(c.downMeter, c.upMeter)
		muxes = append(muxes, transport.NewMux(center))
		c.pending = append(c.pending, NewStation(id, locals, stationEnd))
	}
	if c.length == 0 {
		return fail(errors.New("cluster: stations hold no patterns"))
	}
	c.profiler = adapt.NewProfiler(c.length, opts.AdaptWindow)
	c.installEpochLocked(ids, muxes)
	return c, nil
}

// NewWithLinks builds a data center over externally established links (for
// example TCP connections to remote station processes). The caller supplies
// the shared pattern length and the meters its links record into (either
// may be nil). Start is a no-op — remote stations run their own Serve
// loops — and Shutdown sends each station a shutdown message and closes the
// links. The cluster takes ownership of the links: each is wrapped in a
// request mux, so callers must not Recv on them afterwards.
func NewWithLinks(opts Options, links map[uint32]transport.Link, patternLength int, downMeter, upMeter *transport.Meter) (*Cluster, error) {
	if len(links) == 0 {
		return nil, errors.New("cluster: no station links")
	}
	if patternLength <= 0 {
		return nil, fmt.Errorf("cluster: pattern length %d, want > 0", patternLength)
	}
	if opts.TargetFP == 0 {
		opts.TargetFP = 0.01
	}
	if downMeter == nil {
		downMeter = &transport.Meter{}
	}
	if upMeter == nil {
		upMeter = &transport.Meter{}
	}
	c := &Cluster{
		opts:      opts,
		length:    patternLength,
		dead:      make(map[uint32]bool),
		downMeter: downMeter,
		upMeter:   upMeter,
		// Remote stations run their own Serve loops: the cluster is live
		// from construction (Start stays an idempotent no-op), and stations
		// added later via AddStation are served immediately.
		started: true,
	}
	ids := make([]uint32, 0, len(links))
	for id := range links {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	muxes := make([]*transport.Mux, 0, len(ids))
	for _, id := range ids {
		muxes = append(muxes, transport.NewMux(links[id]))
	}
	c.profiler = adapt.NewProfiler(c.length, opts.AdaptWindow)
	c.installEpochLocked(ids, muxes)
	return c, nil
}

// installEpochLocked makes (ids, muxes) the live membership snapshot with a
// fresh, empty stats cache. Callers hold c.mu (or own the cluster
// exclusively during construction). Passing the previous epoch's slices
// unchanged is how ingest/evict/kill invalidate the stats cache without
// touching membership.
func (c *Cluster) installEpochLocked(ids []uint32, muxes []*transport.Mux) {
	c.epochs++
	c.ep = &epoch{version: c.epochs, ids: ids, muxes: muxes}
}

// currentEpoch returns the live membership snapshot.
func (c *Cluster) currentEpoch() *epoch {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ep
}

// ServeStation runs a base station loop over an established link until the
// center sends a shutdown or the link closes — the body of a remote station
// process.
func ServeStation(id uint32, locals map[core.PersonID]pattern.Pattern, link transport.Link) error {
	return NewStation(id, locals, link).Serve()
}

// serveLocked launches one in-process station goroutine. Callers hold c.mu.
func (c *Cluster) serveLocked(s *Station) {
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		if err := s.Serve(); err != nil {
			c.serveMu.Lock()
			c.serveErr = append(c.serveErr, err)
			c.serveMu.Unlock()
		}
	}()
}

// Start launches the station goroutines. It is idempotent.
func (c *Cluster) Start() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.started {
		return
	}
	c.started = true
	for _, s := range c.pending {
		c.serveLocked(s)
	}
	c.pending = nil
}

// Stations returns the number of member stations (dead or alive).
func (c *Cluster) Stations() int { return len(c.currentEpoch().ids) }

// PatternLength returns the cluster's time-series length.
func (c *Cluster) PatternLength() int { return c.length }

// KillStation severs one station's link, simulating a failure. The station
// stays a member — the data center is not told: subsequent (and in-flight)
// searches discover the failure when their exchange fails and count it in
// CostReport.StationsFailed. Use RemoveStation for a deliberate departure.
//
// When patterns are placed (see Place), the kill triggers a reconciliation
// pass: copies the dead station held are re-replicated from their surviving
// replicas onto the stations that now win the rendezvous hash, restoring the
// requested replication factor.
func (c *Cluster) KillStation(id uint32) error {
	c.mu.Lock()
	i := c.ep.find(id)
	if i < 0 {
		c.mu.Unlock()
		return fmt.Errorf("%w: station %d", ErrUnknownStation, id)
	}
	if c.dead[id] {
		c.mu.Unlock()
		return nil
	}
	c.dead[id] = true
	err := c.ep.muxes[i].Close()
	// Same membership, fresh epoch: cached stats must stop counting the
	// severed station.
	c.installEpochLocked(c.ep.ids, c.ep.muxes)
	c.mu.Unlock()
	c.summaries.invalidate(id)
	// Streaming pipelines re-key the dead station's shard before the heal:
	// queued copies must stop targeting a link that can no longer ack them.
	c.notifyMembership()
	c.heal(context.Background()) //dimatch:allow ctxflow — KillStation is a ctx-less fault-injection API; healing must outlive the injected fault
	return err
}

// shutdownGrace bounds how long a shutdown frame may take to be accepted
// before the link is closed out from under the station. A stalled link
// (dead TCP peer, abandoned send holding the mux's send slot) would
// otherwise block Shutdown or RemoveStation forever.
const shutdownGrace = 100 * time.Millisecond

// stopMux sends a best-effort shutdown frame — bounded by shutdownGrace and
// ctx — then closes the mux, which also unblocks any send stalled on it.
func stopMux(ctx context.Context, m *transport.Mux) {
	sent := make(chan struct{})
	go func() {
		_ = m.Send(wire.ShutdownMessage())
		close(sent)
	}()
	select {
	case <-sent:
	case <-time.After(shutdownGrace):
	case <-ctx.Done():
	}
	_ = m.Close()
}

// Shutdown stops all stations and waits for their goroutines to exit.
// Subsequent Search calls return ErrClusterClosed. The cluster lock is not
// held while frames are sent, so concurrent Search and KillStation calls
// cannot deadlock against a stalled station; each station gets a bounded
// grace to accept the shutdown frame, after which its link is closed (which
// also unblocks any send stalled on it).
func (c *Cluster) Shutdown() error {
	c.mu.Lock()
	c.closed = true
	var toStop []*transport.Mux
	for i, id := range c.ep.ids {
		if c.dead[id] {
			continue
		}
		c.dead[id] = true
		toStop = append(toStop, c.ep.muxes[i])
	}
	c.mu.Unlock()

	var stopWg sync.WaitGroup
	for _, m := range toStop {
		m := m
		stopWg.Add(1)
		go func() {
			defer stopWg.Done()
			stopMux(context.Background(), m) //dimatch:allow ctxflow — Shutdown tears the cluster down unconditionally; shutdownGrace bounds it instead of a ctx
		}()
	}
	stopWg.Wait()
	c.wg.Wait()
	c.serveMu.Lock()
	defer c.serveMu.Unlock()
	return errors.Join(c.serveErr...)
}

// ---- live mutation: ingest, evict, membership ----

// Ingest adds (or replaces) resident patterns at one station — the center
// routing freshly observed call data to the station that saw it. The
// mutation travels the same request/reply loop as queries, so the station
// applies it between exchanges and no search observes a half-applied store.
// Pattern lengths must match the cluster's. All-zero patterns are dropped
// by the station (no measurable activity means no local pattern).
func (c *Cluster) Ingest(ctx context.Context, stationID uint32, patterns map[core.PersonID]pattern.Pattern) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if len(patterns) == 0 {
		return nil
	}
	in := wire.Ingest{
		Persons: make([]core.PersonID, 0, len(patterns)),
		Locals:  make([]pattern.Pattern, 0, len(patterns)),
	}
	for p, pat := range patterns {
		if len(pat) != c.length {
			return fmt.Errorf("%w: ingest person %d pattern length %d, cluster is %d", ErrLengthMismatch, p, len(pat), c.length)
		}
		in.Persons = append(in.Persons, p)
	}
	sort.Slice(in.Persons, func(i, j int) bool { return in.Persons[i] < in.Persons[j] })
	for _, p := range in.Persons {
		in.Locals = append(in.Locals, patterns[p])
	}
	msg, err := wire.EncodeIngest(in)
	if err != nil {
		return err
	}
	if err := c.mutate(ctx, stationID, msg); err != nil {
		// The exchange failed, but the frame may still have been delivered
		// and applied (a lost ack, a deadline while awaiting it). A cached
		// digest missing an applied ingest would prune the station away
		// from its new residents — the one staleness direction that loses
		// recall — so the slot is invalidated on the error path too.
		c.summaries.invalidate(stationID)
		return err
	}
	// The station's routing summary grew: delta-update the cached digest
	// (Bloom inserts are monotone) so routed searches keep pruning without
	// a refresh round trip. See summaryCache.noteIngest for the staleness
	// contract.
	c.summaries.noteIngest(stationID, in.Locals)
	return nil
}

// Evict removes residents from one station — expired retention windows,
// opted-out subscribers, or data handed off elsewhere. Unknown persons are
// ignored. Like Ingest, the mutation serializes through the station's
// request/reply loop.
func (c *Cluster) Evict(ctx context.Context, stationID uint32, persons []core.PersonID) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if len(persons) == 0 {
		return nil
	}
	if err := c.mutate(ctx, stationID, wire.EncodeEvict(wire.Evict{Persons: persons})); err != nil {
		return err
	}
	// Bloom digests cannot delete: drop the cached summary and let the next
	// routed search refetch. Keeping the stale digest would only waste
	// probes, but it would also never shrink.
	c.summaries.invalidate(stationID)
	return nil
}

// mutate runs one acknowledged mutation exchange against a member station
// and, on success, installs a fresh epoch. When the outgoing epoch already
// holds a stats snapshot, the new epoch's cache is seeded from it with just
// the mutated station's entry refreshed (one extra single-station
// exchange), so churn workloads keep answering Stats — and the per-search
// StationRawBytes lookup — from cache instead of paying a full stats
// fan-out after every mutation.
func (c *Cluster) mutate(ctx context.Context, id uint32, msg wire.Message) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClusterClosed
	}
	i := c.ep.find(id)
	if i < 0 {
		c.mu.Unlock()
		return fmt.Errorf("%w: station %d", ErrUnknownStation, id)
	}
	mux := c.ep.muxes[i]
	c.mu.Unlock()

	reply, err := mux.Roundtrip(ctx, msg)
	if err != nil {
		if ctxErr := ctx.Err(); ctxErr != nil {
			return fmt.Errorf("%w: %w", ErrCancelled, ctxErr)
		}
		return fmt.Errorf("cluster: station %d: %w", id, err)
	}
	if _, err := wire.DecodeAck(reply); err != nil {
		return fmt.Errorf("cluster: station %d: %w", id, err)
	}

	// The mutation is applied; the refresh below is best effort and must
	// not fail it — on any miss the new epoch simply starts with a cold
	// cache.
	var fresh *wire.StatsReply
	if reply, err := mux.Roundtrip(ctx, wire.StatsMessage()); err == nil {
		if sr, err := wire.DecodeStatsReply(reply); err == nil {
			fresh = &sr
		}
	}
	c.mu.Lock()
	if !c.closed {
		prev := c.ep
		c.installEpochLocked(prev.ids, prev.muxes)
		// Seed only while the station is still a member: a concurrent
		// RemoveStation must not resurrect its storage figures.
		if fresh != nil && c.ep.find(fresh.Station) >= 0 {
			if cached := prev.cachedStats(); cached != nil {
				c.ep.seedStats(cached, *fresh)
			}
		}
	}
	c.mu.Unlock()
	return nil
}

// AddStation grows the membership of a running cluster with a new
// in-process station holding the given local patterns (which may be empty).
// Searches already in flight complete against their own epoch; searches
// started after the call fan out to the new station too.
//
// When patterns are placed (see Place), the join triggers a reconciliation
// pass that rebalances exactly the placed patterns whose rendezvous winners
// changed — the new station takes over the placements it out-scores an
// incumbent for, and nothing else moves.
func (c *Cluster) AddStation(ctx context.Context, id uint32, locals map[core.PersonID]pattern.Pattern) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("%w: %w", ErrCancelled, err)
	}
	for p, l := range locals {
		if len(l) != c.length {
			return fmt.Errorf("%w: station %d person %d pattern length %d, cluster is %d", ErrLengthMismatch, id, p, len(l), c.length)
		}
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClusterClosed
	}
	if c.ep.find(id) >= 0 {
		c.mu.Unlock()
		return fmt.Errorf("%w: station %d", ErrStationExists, id)
	}
	center, stationEnd := transport.Pipe(c.downMeter, c.upMeter)
	st := NewStation(id, locals, stationEnd)
	if c.started {
		c.serveLocked(st)
	} else {
		c.pending = append(c.pending, st)
	}
	c.addMemberLocked(id, transport.NewMux(center))
	c.mu.Unlock()
	// A departed member may have left a digest under the same id; the new
	// station starts with a cold summary slot.
	c.summaries.invalidate(id)
	c.notifyMembership()
	c.heal(ctx)
	return nil
}

// AddStationLink grows the membership with a remote station reachable over
// an established link. The cluster takes ownership of the link immediately:
// it is wrapped in a request mux, and closed if the join fails. Joining
// performs a stats handshake — the station must answer, and if it already
// holds patterns their length must match the cluster's (ErrLengthMismatch
// otherwise).
func (c *Cluster) AddStationLink(ctx context.Context, id uint32, link transport.Link) error {
	if ctx == nil {
		ctx = context.Background()
	}
	mux := transport.NewMux(link)
	c.mu.Lock()
	closed, exists := c.closed, c.ep.find(id) >= 0
	c.mu.Unlock()
	if closed || exists {
		_ = mux.Close()
		if closed {
			return ErrClusterClosed
		}
		return fmt.Errorf("%w: station %d", ErrStationExists, id)
	}

	reply, err := mux.Roundtrip(ctx, wire.StatsMessage())
	if err != nil {
		_ = mux.Close()
		if ctxErr := ctx.Err(); ctxErr != nil {
			return fmt.Errorf("%w: %w", ErrCancelled, ctxErr)
		}
		return fmt.Errorf("cluster: station %d handshake: %w", id, err)
	}
	sr, err := wire.DecodeStatsReply(reply)
	if err != nil {
		_ = mux.Close()
		return fmt.Errorf("cluster: station %d handshake: %w", id, err)
	}
	if sr.Length != 0 && int(sr.Length) != c.length {
		_ = mux.Close()
		return fmt.Errorf("%w: station %d pattern length %d, cluster is %d", ErrLengthMismatch, id, sr.Length, c.length)
	}

	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		_ = mux.Close()
		return ErrClusterClosed
	}
	if c.ep.find(id) >= 0 {
		c.mu.Unlock()
		_ = mux.Close()
		return fmt.Errorf("%w: station %d", ErrStationExists, id)
	}
	c.addMemberLocked(id, mux)
	c.mu.Unlock()
	c.summaries.invalidate(id)
	c.notifyMembership()
	c.heal(ctx)
	return nil
}

// addMemberLocked installs a new epoch with id inserted in order. Callers
// hold c.mu and have verified id is not a member.
func (c *Cluster) addMemberLocked(id uint32, mux *transport.Mux) {
	i := sort.Search(len(c.ep.ids), func(i int) bool { return c.ep.ids[i] >= id })
	ids := make([]uint32, 0, len(c.ep.ids)+1)
	ids = append(append(append(ids, c.ep.ids[:i]...), id), c.ep.ids[i:]...)
	muxes := make([]*transport.Mux, 0, len(c.ep.muxes)+1)
	muxes = append(append(append(muxes, c.ep.muxes[:i]...), mux), c.ep.muxes[i:]...)
	c.installEpochLocked(ids, muxes)
}

// RemoveStation shrinks the membership of a running cluster: the station
// leaves the next epoch, receives a best-effort shutdown frame (bounded by
// ctx and a grace period) and its link is closed. A search already in
// flight over a previous epoch sees the closure as a failed exchange and
// counts it in CostReport.StationsFailed — removal is never a search error.
// When patterns are placed (see Place), the departure triggers a
// reconciliation pass that re-replicates the copies the station held from
// their surviving replicas onto the new rendezvous winners.
func (c *Cluster) RemoveStation(ctx context.Context, id uint32) error {
	if ctx == nil {
		ctx = context.Background()
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClusterClosed
	}
	i := c.ep.find(id)
	if i < 0 {
		c.mu.Unlock()
		return fmt.Errorf("%w: station %d", ErrUnknownStation, id)
	}
	mux := c.ep.muxes[i]
	wasDead := c.dead[id]
	delete(c.dead, id)
	ids := make([]uint32, 0, len(c.ep.ids)-1)
	ids = append(append(ids, c.ep.ids[:i]...), c.ep.ids[i+1:]...)
	muxes := make([]*transport.Mux, 0, len(c.ep.muxes)-1)
	muxes = append(append(muxes, c.ep.muxes[:i]...), c.ep.muxes[i+1:]...)
	c.installEpochLocked(ids, muxes)
	// A pending (never-started) in-process station must not be launched
	// after its link is gone.
	for j, s := range c.pending {
		if s.ID() == id {
			c.pending = append(c.pending[:j], c.pending[j+1:]...)
			break
		}
	}
	c.mu.Unlock()
	c.summaries.invalidate(id)
	// Re-key before the link goes down: a streaming applier still targeting
	// the departed station drains its queue onto the survivors, and only
	// then does the station receive its shutdown frame.
	c.notifyMembership()

	if !wasDead {
		stopMux(ctx, mux)
	}
	c.heal(ctx)
	return nil
}

// ---- stats ----

// Stats fetches every member station's resident count and storage bytes
// over the wire (KindStats). The result is cached on the membership epoch:
// repeated calls between mutations answer from the cache, and any mutation
// installs a fresh epoch whose first Stats refetches. Stations that fail
// the exchange are counted, not fatal.
func (c *Cluster) Stats(ctx context.Context) (*Stats, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClusterClosed
	}
	ep := c.ep
	c.mu.Unlock()
	st, err := c.epochStats(ctx, ep)
	if err != nil {
		return nil, err
	}
	// Hand out a copy: the cached snapshot is shared with concurrent
	// callers and with the per-search StationRawBytes tally. Stream health
	// is attached per call — pipelines mutate continuously, so caching it
	// on the epoch would freeze the queue gauges between mutations.
	return &Stats{
		Epoch:          st.Epoch,
		Stations:       append([]StationStats(nil), st.Stations...),
		StationsFailed: st.StationsFailed,
		Stream:         c.streamHealth(),
	}, nil
}

// epochStats returns the epoch's cached stats, fetching them on first use.
// Concurrent first uses may fetch redundantly; all converge on one cached
// snapshot. Only a successful fetch is cached, so a cancelled caller does
// not poison the epoch.
func (c *Cluster) epochStats(ctx context.Context, ep *epoch) (*Stats, error) {
	ep.statsMu.Lock()
	if st := ep.stats; st != nil {
		ep.statsMu.Unlock()
		return st, nil
	}
	ep.statsMu.Unlock()

	st := &Stats{Epoch: ep.version}
	// Stats traffic is cluster bookkeeping: it crosses the shared link
	// meters but is billed to no search's CostReport.
	var scratch CostReport
	failed, err := c.fanOut(ctx, ep, wire.StatsMessage(), &scratch, func(reply wire.Message) error {
		sr, err := wire.DecodeStatsReply(reply)
		if err != nil {
			return err
		}
		st.Stations = append(st.Stations, StationStats{
			Station:       sr.Station,
			Residents:     int(sr.Residents),
			StorageBytes:  sr.StorageBytes,
			PatternLength: int(sr.Length),
			WireVersion:   int(sr.MaxVersion),
			Delegate:      sr.Flags&wire.FlagRouteDelegate != 0,
		})
		return nil
	})
	if err != nil {
		return nil, err
	}
	st.StationsFailed = failed

	ep.statsMu.Lock()
	if ep.stats == nil {
		ep.stats = st
	} else {
		st = ep.stats
	}
	ep.statsMu.Unlock()
	return st, nil
}

// ---- search ----

// Search runs one batch of queries and returns ranked results plus cost
// accounting. The variadic options override the cluster's defaults for this
// call only (strategy, top-K, verification, score threshold, sizing target);
// with no options it runs a WBF search under the cluster Options.
//
// Search honors ctx: cancellation or timeout abandons the in-flight fan-out
// round and returns an error wrapping both ErrCancelled and ctx.Err(),
// leaving the links usable for subsequent searches. Any number of Search
// calls may run concurrently over one cluster, and concurrent mutations are
// safe: the search pins the membership epoch current at its start and every
// fan-out round covers exactly that station set.
func (c *Cluster) Search(ctx context.Context, queries []core.Query, opts ...SearchOption) (*Outcome, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	cfg := c.searchDefaults()
	for _, o := range opts {
		o(&cfg)
	}
	if len(queries) == 0 {
		return nil, ErrNoQueries
	}
	for _, q := range queries {
		if err := q.Validate(); err != nil {
			return nil, err
		}
		if q.Length() != c.length {
			return nil, fmt.Errorf("%w: query %d length %d, cluster is %d", ErrLengthMismatch, q.ID, q.Length(), c.length)
		}
	}
	c.mu.Lock()
	closed := c.closed
	ep := c.ep
	c.mu.Unlock()
	if closed {
		return nil, ErrClusterClosed
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("%w: %w", ErrCancelled, err)
	}

	// Pin the parameter epoch live at the search's start; a rollout landing
	// mid-search swaps digests (each self-describing), never results.
	paramEpoch, _ := c.ParamState()

	start := time.Now()
	var (
		out *Outcome
		err error
	)
	switch cfg.strategy {
	case StrategyWBF:
		out, err = c.searchWBF(ctx, ep, cfg, queries)
	case StrategyBF:
		out, err = c.searchBF(ctx, ep, cfg, queries)
	case StrategyNaive:
		out, err = c.searchNaive(ctx, ep, cfg, queries)
	default:
		return nil, fmt.Errorf("%w: %d", ErrUnknownStrategy, int(cfg.strategy))
	}
	if err != nil {
		return nil, err
	}

	out.Strategy = cfg.strategy
	out.Cost.ParamEpoch = paramEpoch
	// Elapsed is stamped before the stats lookup: storage bookkeeping must
	// not inflate the latency figures the benchmarks report.
	out.Cost.Elapsed = time.Since(start)
	// Best effort: station storage is the stations' own report (cached per
	// epoch); a search that already answered is not failed over
	// bookkeeping.
	if st, statsErr := c.epochStats(ctx, ep); statsErr == nil {
		out.Cost.StationRawBytes = st.TotalStorageBytes()
	}
	return out, nil
}

// fanOutEach runs one exchange sequence per station of the pinned epoch
// concurrently — a single roundtrip for most rounds, a pipelined request
// sequence for the per-query compatibility path — and waits for every
// station to answer or fail, invoking handle with each station's replies in
// station-ID order. Per-search traffic is tallied directly into cost,
// covering completed exchanges (requests out, replies back); a station that
// dies mid-sequence contributes only to the failed list. Unlike
// shared-meter deltas, the tally is unaffected by other searches running
// concurrently on the same links.
//
// Stations that fail are reported, not fatal: the search degrades exactly
// as a real deployment would. Every station's replies are drained and
// accounted even if handle returns an error partway, so the failure count
// stays truthful; the first handle error is returned after the drain. A
// cancelled context abandons the round and returns an error wrapping
// ErrCancelled.
func (c *Cluster) fanOutEach(ctx context.Context, ep *epoch, msgs func(i int) []wire.Message, cost *CostReport, handle func(i int, replies []wire.Message) error) (failed []int, err error) {
	muxes := ep.muxes
	type repliesOrErr struct {
		replies []wire.Message
		err     error
	}
	results := make([]repliesOrErr, len(muxes))
	var wg sync.WaitGroup
	for i, mx := range muxes {
		i, mx := i, mx
		wg.Add(1)
		go func() {
			defer wg.Done()
			rs, err := mx.RoundtripMany(ctx, msgs(i))
			results[i] = repliesOrErr{replies: rs, err: err}
		}()
	}
	wg.Wait()
	if ctxErr := ctx.Err(); ctxErr != nil {
		return nil, fmt.Errorf("%w: %w", ErrCancelled, ctxErr)
	}
	allFailed := true
	for _, r := range results {
		if r.err == nil {
			allFailed = false
			break
		}
	}
	if allFailed && len(results) > 0 {
		// Distinguish a Shutdown racing this search from genuine total
		// station loss: the former must not read as an empty success.
		c.mu.Lock()
		closed := c.closed
		c.mu.Unlock()
		if closed {
			return nil, ErrClusterClosed
		}
	}

	var handleErr error
	for i, r := range results {
		if r.err != nil {
			failed = append(failed, i)
			continue
		}
		for _, m := range msgs(i) {
			cost.BytesDown += uint64(m.EncodedSize())
			cost.MessagesDown++
		}
		for _, reply := range r.replies {
			cost.BytesUp += uint64(reply.EncodedSize())
			cost.MessagesUp++
		}
		if handleErr == nil {
			handleErr = handle(i, r.replies)
		}
	}
	return failed, handleErr
}

// fanOut is the single-message special case: the same request to every
// station, handle invoked once per reply.
func (c *Cluster) fanOut(ctx context.Context, ep *epoch, msg wire.Message, cost *CostReport, handle func(reply wire.Message) error) (failed int, err error) {
	single := []wire.Message{msg}
	failedIdx, err := c.fanOutEach(ctx, ep, func(int) []wire.Message { return single }, cost, func(_ int, replies []wire.Message) error {
		return handle(replies[0])
	})
	return len(failedIdx), err
}

// batchQueries splits the query set into rounds of at most size queries.
// size <= 0 means one round carrying everything, clamped to the wire
// protocol's per-frame query limit so arbitrarily large searches still
// encode (they just take multiple rounds).
func batchQueries(queries []core.Query, size int) [][]core.Query {
	if size <= 0 || size > wire.MaxBatchQueries {
		size = wire.MaxBatchQueries
	}
	if size >= len(queries) {
		return [][]core.Query{queries}
	}
	out := make([][]core.Query, 0, (len(queries)+size-1)/size)
	for len(queries) > size {
		out = append(out, queries[:size])
		queries = queries[size:]
	}
	return append(out, queries)
}

// peerVersions returns each member station's advertised wire version, read
// from the epoch's stats snapshot — fetched over the wire once per epoch and
// cached, so the version handshake costs one exchange per membership change,
// not one per search. A station absent from the snapshot (it failed that
// one fetch, perhaps transiently) is retried with a direct stats exchange
// so a capable peer is not stuck on the per-query path for the epoch's
// whole lifetime; a station that is genuinely down fails the retry exactly
// as it will fail the round itself. On a failed snapshot fetch the map may
// be empty and every station falls back to the per-query path.
func (c *Cluster) peerVersions(ctx context.Context, ep *epoch) map[uint32]uint8 {
	vers := make(map[uint32]uint8, len(ep.ids))
	if st, err := c.epochStats(ctx, ep); err == nil {
		for _, s := range st.Stations {
			vers[s.Station] = uint8(s.WireVersion)
		}
	}
	for i, id := range ep.ids {
		if _, ok := vers[id]; ok {
			continue
		}
		reply, err := ep.muxes[i].Roundtrip(ctx, wire.StatsMessage())
		if err != nil {
			continue // down now, down for the round too
		}
		if sr, err := wire.DecodeStatsReply(reply); err == nil {
			vers[id] = sr.MaxVersion
		}
	}
	return vers
}

// searchWBF is the paper's DI-matching pipeline end to end, executed as a
// sequence of batched rounds. Each round packs up to batchSize queries into
// one combined filter and — for stations that advertised wire version 3 —
// one KindBatchQuery exchange; stations below version 3 (and every station
// when batching is disabled with batchSize 1) are served the legacy
// pipeline instead: one filter and one KindWBFQuery frame per query,
// pipelined over the link. Reports from both paths merge into one
// aggregation, so a mixed-version cluster still answers every query
// exactly once.
func (c *Cluster) searchWBF(ctx context.Context, ep *epoch, cfg searchConfig, queries []core.Query) (*Outcome, error) {
	out := &Outcome{PerQuery: make(map[core.QueryID][]core.Result, len(queries))}
	agg := core.NewBatchAggregator()
	// Replica-aware aggregation: placed persons' replicas report the same
	// pattern, so the best report wins instead of the weights summing — and
	// a replica that fails mid-fan-out is covered by any survivor.
	agg.SetReplicated(c.replicatedPred())
	legacyAll := cfg.batchSize == 1
	roundSize := cfg.batchSize
	if legacyAll {
		// Batch size 1 disables batch frames, not pipelining: the whole
		// query set runs as one legacy round whose per-query frames are
		// streamed back-to-back per station — the same code path pre-v3
		// stations are served inside a batched round.
		roundSize = 0
	}
	var vers map[uint32]uint8
	if len(ep.ids) > 0 && (!legacyAll || cfg.routing != RoutingFull) {
		vers = c.peerVersions(ctx, ep)
	}
	// The hierarchical tier: peers that advertised wire.FlagRouteDelegate are
	// region coordinators fronting whole sub-clusters. They are split out of
	// the batched rounds — each receives the entire query set as one
	// KindRouteQuery and answers raw partial sums — and their digests are
	// never cached: a region's membership churns invisibly to this
	// coordinator, so every search refetches (see docs/ROUTING.md).
	plainEp, delegates := c.splitDelegates(ctx, ep)
	// The routing step: probe the per-station summaries (flat scan or Bloofi
	// tree descent) and restrict the query fan-out to stations that might
	// answer. Verification below still uses the full epoch — a candidate's
	// locals can live on stations that hold no within-band resident, and the
	// verify fetch must see them all.
	routeEp := plainEp
	if cfg.routing != RoutingFull {
		routeEp = c.planRoute(ctx, plainEp, cfg, queries, vers, &out.Cost)
	}
	var reportBytes, filterBytes uint64
	failedStations := make(map[uint32]bool)
	for _, batch := range batchQueries(queries, roundSize) {
		if err := c.runWBFRound(ctx, routeEp, cfg, batch, vers, agg, out, &reportBytes, &filterBytes, failedStations); err != nil {
			return nil, err
		}
	}
	maxHops, err := c.fanDelegates(ctx, delegates, cfg, queries, agg, out, failedStations)
	if err != nil {
		return nil, err
	}
	out.Cost.TierHops = 1 + maxHops
	for _, q := range queries {
		if cfg.raw {
			out.PerQuery[q.ID] = rawResults(agg, q.ID)
		} else {
			out.PerQuery[q.ID] = rankWBF(cfg, agg, q.ID)
		}
	}
	out.Cost.StationsFailed += len(failedStations)
	out.Cost.FilterBytes = filterBytes
	out.Cost.CenterStorageBytes = filterBytes + reportBytes
	if cfg.verify && !cfg.raw {
		if err := c.verifyWBF(ctx, ep, cfg, queries, out); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// splitDelegates partitions the pinned epoch into its plain stations and its
// route delegates. Delegation is gated on the stats-reply capability flag,
// not the wire version: a plain v6 station would fail its serve loop on a
// KindRouteQuery, so only peers that explicitly advertised
// wire.FlagRouteDelegate leave the classic rounds. A peer whose stats never
// arrived stays plain — it is served the per-query compatibility path, which
// every delegate also accepts (regions forward classic frames to their
// stations), so misclassification degrades cost, never correctness.
func (c *Cluster) splitDelegates(ctx context.Context, ep *epoch) (*epoch, []delegatePeer) {
	st, err := c.epochStats(ctx, ep)
	if err != nil || st == nil {
		return ep, nil
	}
	flags := make(map[uint32]bool, len(st.Stations))
	any := false
	for _, s := range st.Stations {
		if s.Delegate {
			flags[s.Station] = true
			any = true
		}
	}
	if !any {
		return ep, nil
	}
	plain := &epoch{version: ep.version}
	var delegates []delegatePeer
	for i, id := range ep.ids {
		if flags[id] {
			delegates = append(delegates, delegatePeer{id: id, mux: ep.muxes[i]})
			continue
		}
		plain.ids = append(plain.ids, id)
		plain.muxes = append(plain.muxes, ep.muxes[i])
	}
	return plain, delegates
}

// delegatePeer is one route delegate of the pinned epoch: a region
// coordinator addressed like a station but spoken to in KindRouteQuery.
type delegatePeer struct {
	id  uint32
	mux *transport.Mux
}

// rawResults returns every accumulated partial for one query, person
// ascending — the region's answer shape. No Algorithm 3 deletion, no topK,
// no score band: finalizing is the root's job, after every region's partials
// have merged.
func rawResults(agg *core.Aggregator, q core.QueryID) []core.Result {
	results := agg.Results(q)
	sort.Slice(results, func(i, j int) bool { return results[i].Person < results[j].Person })
	return results
}

// fanDelegates runs the hierarchical tier of one WBF search: every route
// delegate receives the whole query set as a single KindRouteQuery and
// answers its region's raw per-person partial sums, which merge into the
// shared aggregation exactly as AddFrom would one tier down (core's Merge).
//
// Under summary or tree routing the root first pulls each delegate's
// aggregate digest — the bitwise-OR union of its whole subtree — and skips
// regions whose digest denies every probe. The pruning is conservative at
// this tier too: a failed or geometry-foreign digest fetch leaves the region
// visited, unselective probes visit everything, and an all-pruned delegate
// tier falls back to full fan-out, mirroring planRoute's rule. Digest
// traffic is billed to the Summary* counters; the route exchange itself to
// the search's Bytes/Messages totals. A delegate whose exchange fails is
// counted in failedStations exactly like a station.
func (c *Cluster) fanDelegates(ctx context.Context, delegates []delegatePeer, cfg searchConfig, queries []core.Query, agg *core.Aggregator, out *Outcome, failedStations map[uint32]bool) (maxHops int, err error) {
	if len(delegates) == 0 {
		return 0, nil
	}
	params, err := c.resolveParams(cfg, queries)
	if err != nil {
		return 0, err
	}
	routeMsg, err := wire.EncodeRouteQuery(wire.RouteQuery{
		Queries:   queries,
		Params:    cfg.params,
		TargetFP:  cfg.targetFP,
		BatchSize: cfg.batchSize,
		Routing:   uint8(cfg.routing),
	})
	if err != nil {
		return 0, err
	}

	// The pruning probes: same construction as planRoute's, probing each
	// region's union digest instead of per-station ones.
	var probes []index.Probe
	if cfg.routing != RoutingFull {
		for _, q := range queries {
			probe, perr := index.NewProbe(q, params.Samples, params.Epsilon)
			if perr != nil {
				probes = nil
				break
			}
			if probe.Selective() {
				probes = append(probes, probe)
			}
		}
	}

	type delegateAnswer struct {
		reply   wire.RouteReply
		pruned  bool
		failed  bool
		probes  uint64 // root-side probes on the region digest
		sumDown uint64
		sumUp   uint64
		down    uint64
		up      uint64
	}
	answers := make([]delegateAnswer, len(delegates))
	summaryMsg := wire.SummaryMessage()
	var wg sync.WaitGroup
	for i, d := range delegates {
		i, d := i, d
		wg.Add(1)
		go func() {
			defer wg.Done()
			a := &answers[i]
			if len(probes) > 0 {
				reply, err := d.mux.Roundtrip(ctx, summaryMsg)
				if err == nil {
					a.sumDown = uint64(summaryMsg.EncodedSize())
					a.sumUp = uint64(reply.EncodedSize())
					if _, sum, derr := wire.DecodeSummaryReply(reply); derr == nil {
						admit := false
						for _, p := range probes {
							a.probes++
							if sum.Admits(p) {
								admit = true
								break
							}
						}
						a.pruned = !admit
					}
					// A digest that failed to decode leaves the region
					// visited: corruption must never prune.
				}
			}
			if a.pruned {
				return
			}
			reply, err := d.mux.Roundtrip(ctx, routeMsg)
			if err != nil {
				a.failed = true
				return
			}
			a.down = uint64(routeMsg.EncodedSize())
			a.up = uint64(reply.EncodedSize())
			rr, derr := wire.DecodeRouteReply(reply)
			if derr != nil {
				a.failed = true
				return
			}
			a.reply = rr
		}()
	}
	wg.Wait()
	if ctxErr := ctx.Err(); ctxErr != nil {
		return 0, fmt.Errorf("%w: %w", ErrCancelled, ctxErr)
	}

	// All-pruned fallback, mirroring planRoute: if the plan would skip every
	// delegate, visit them all instead. (Pruning is provably exact, but the
	// fallback keeps every tier's worst case identical to full fan-out.)
	allPruned := true
	for i := range answers {
		if !answers[i].pruned {
			allPruned = false
			break
		}
	}
	if allPruned {
		for i, d := range delegates {
			i, d := i, d
			wg.Add(1)
			go func() {
				defer wg.Done()
				a := &answers[i]
				a.pruned = false
				reply, err := d.mux.Roundtrip(ctx, routeMsg)
				if err != nil {
					a.failed = true
					return
				}
				a.down = uint64(routeMsg.EncodedSize())
				a.up = uint64(reply.EncodedSize())
				rr, derr := wire.DecodeRouteReply(reply)
				if derr != nil {
					a.failed = true
					return
				}
				a.reply = rr
			}()
		}
		wg.Wait()
		if ctxErr := ctx.Err(); ctxErr != nil {
			return 0, fmt.Errorf("%w: %w", ErrCancelled, ctxErr)
		}
	}

	// Merge serially: the aggregator is not concurrency-safe, and ordering
	// does not matter (both merge modes are commutative).
	for i, d := range delegates {
		a := &answers[i]
		out.Cost.SubtreeProbes += a.probes
		out.Cost.SummaryBytesDown += a.sumDown
		out.Cost.SummaryBytesUp += a.sumUp
		if a.sumUp > 0 {
			out.Cost.SummaryRefreshes++
		}
		if a.pruned {
			out.Cost.StationsPruned++
			continue
		}
		if a.failed {
			failedStations[d.id] = true
			continue
		}
		out.Cost.BytesDown += a.down
		out.Cost.MessagesDown++
		out.Cost.BytesUp += a.up
		out.Cost.MessagesUp++
		out.Cost.SubtreeProbes += a.reply.Probes
		out.Cost.StationsPruned += int(a.reply.Pruned)
		out.Cost.StationsFailed += int(a.reply.Failed)
		if int(a.reply.Hops) > maxHops {
			maxHops = int(a.reply.Hops)
		}
		for _, r := range a.reply.Results {
			out.Cost.ReportsReceived++
			agg.Merge(core.QueryID(r.Query), core.Result{
				Person:      core.PersonID(r.Person),
				Numerator:   r.Numerator,
				Denominator: r.Denominator,
				Stations:    int(r.Stations),
			})
		}
	}
	return maxHops, nil
}

// runWBFRound executes one batch of queries across the epoch's stations:
// it encodes the round's filters, runs the per-station exchanges
// concurrently (one batched roundtrip or a pipelined per-query sequence,
// depending on the station's advertised version), tallies traffic for
// completed exchanges and feeds every report into the shared aggregation.
// Stations that fail are recorded in failedStations — never fatal, exactly
// like the single-exchange fan-out.
func (c *Cluster) runWBFRound(ctx context.Context, ep *epoch, cfg searchConfig, batch []core.Query, vers map[uint32]uint8, agg *core.Aggregator, out *Outcome, reportBytes, filterBytes *uint64, failedStations map[uint32]bool) error {
	legacyAll := cfg.batchSize == 1
	batchCapable := make([]bool, len(ep.ids))
	needLegacy := legacyAll
	anyBatch := false
	if !legacyAll {
		for i, id := range ep.ids {
			if vers[id] >= wire.Version3 {
				batchCapable[i] = true
				anyBatch = true
			} else {
				needLegacy = true
			}
		}
	}

	// The combined filter encodes the whole batch; every batch-capable
	// station receives it in a single frame. When no station can take batch
	// frames (all pre-v3, or version discovery failed), the round runs
	// purely legacy and no combined filter is built or billed.
	var (
		combined *core.Filter
		batchMsg wire.Message
	)
	if anyBatch {
		params, err := c.resolveParams(cfg, batch)
		if err != nil {
			return err
		}
		enc, err := core.NewEncoder(params, c.length)
		if err != nil {
			return err
		}
		ids := make([]core.QueryID, 0, len(batch))
		for _, q := range batch {
			if err := enc.AddQuery(q); err != nil {
				return err
			}
			ids = append(ids, q.ID)
		}
		combined = enc.Filter()
		batchMsg, err = wire.EncodeBatchQuery(wire.BatchQuery{Queries: ids, Filter: combined})
		if err != nil {
			return err
		}
		*filterBytes += combined.SizeBytes()
	}

	// Per-query filters serve the compatibility path. They are built once
	// per round and shared by every legacy station. Their footprint counts
	// toward FilterBytes whenever they are actually disseminated, so a
	// mixed-version round reports both filter forms the center built.
	//
	// A pre-v3 station could technically take the combined filter in one
	// KindWBFQuery frame; per-query filters are used instead so the
	// fallback shares one code path with WithBatching(1) and keeps each
	// query's false-positive sizing independent of whoever else shares its
	// round — the batch pipeline's win is then measured against a fully
	// query-isolated baseline, not conflated with combined-filter effects.
	var (
		legacyMsgs   []wire.Message
		legacyTables [][]core.WeightEntry
	)
	if needLegacy {
		for _, q := range batch {
			params, err := c.resolveParams(cfg, []core.Query{q})
			if err != nil {
				return err
			}
			enc, err := core.NewEncoder(params, c.length)
			if err != nil {
				return err
			}
			if err := enc.AddQuery(q); err != nil {
				return err
			}
			f := enc.Filter()
			legacyMsgs = append(legacyMsgs, wire.EncodeWBFQuery(f))
			legacyTables = append(legacyTables, f.Weights())
			*filterBytes += f.SizeBytes()
		}
	}

	batchMsgs := []wire.Message{batchMsg}
	failedIdx, err := c.fanOutEach(ctx, ep, func(i int) []wire.Message {
		if batchCapable[i] {
			return batchMsgs
		}
		return legacyMsgs
	}, &out.Cost, func(i int, replies []wire.Message) error {
		for _, reply := range replies {
			*reportBytes += uint64(reply.EncodedSize())
		}
		if batchCapable[i] {
			br, err := wire.DecodeBatchReply(replies[0])
			if err != nil {
				return err
			}
			if int(br.Queries) != len(batch) {
				return fmt.Errorf("cluster: station %d answered %d queries, round has %d", ep.ids[i], br.Queries, len(batch))
			}
			for _, rep := range br.Reports {
				out.Cost.ReportsReceived++
				if err := agg.AddFrom(combined.Weights(), rep); err != nil {
					return err
				}
			}
			return nil
		}
		for j, reply := range replies {
			rs, err := wire.DecodeReports(reply)
			if err != nil {
				return err
			}
			for _, rep := range rs.Reports {
				out.Cost.ReportsReceived++
				if err := agg.AddFrom(legacyTables[j], rep); err != nil {
					return err
				}
			}
		}
		return nil
	})
	for _, i := range failedIdx {
		failedStations[ep.ids[i]] = true
	}
	if err != nil {
		return err
	}
	if anyBatch {
		out.Cost.Batches++
	}
	return nil
}

// verifyWBF runs the verification phase: fetch every ranked candidate's
// local patterns, materialize their globals and drop candidates that fail
// the exact Eq. 2 check against their query.
func (c *Cluster) verifyWBF(ctx context.Context, ep *epoch, cfg searchConfig, queries []core.Query, out *Outcome) error {
	candidates := make(map[core.PersonID]bool)
	for _, results := range out.PerQuery {
		for _, r := range results {
			candidates[r.Person] = true
		}
	}
	if len(candidates) == 0 {
		return nil
	}
	fetch := wire.Fetch{Persons: make([]core.PersonID, 0, len(candidates))}
	for p := range candidates {
		fetch.Persons = append(fetch.Persons, p)
	}

	globals := make(map[core.PersonID]pattern.Pattern, len(candidates))
	replicated := c.replicatedPred()
	var fetchedBytes uint64
	failed, err := c.fanOut(ctx, ep, wire.EncodeFetch(fetch), &out.Cost, func(reply wire.Message) error {
		data, err := wire.DecodeNaiveData(reply)
		if err != nil {
			return err
		}
		fetchedBytes += uint64(reply.EncodedSize())
		for i, p := range data.Persons {
			g := globals[p]
			if g == nil {
				g = make(pattern.Pattern, c.length)
				globals[p] = g
			} else if replicated != nil && replicated(p) {
				// Replicas of a placed pattern are identical; the first
				// fetched copy is the person's whole global.
				continue
			}
			for j, v := range data.Locals[i] {
				if j < len(g) {
					g[j] += v
				}
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	if failed > out.Cost.StationsFailed {
		out.Cost.StationsFailed = failed
	}
	out.Cost.CenterStorageBytes += fetchedBytes

	eps := cfg.params.Epsilon
	for _, q := range queries {
		qGlobal, err := q.Global()
		if err != nil {
			return err
		}
		results := out.PerQuery[q.ID]
		kept := results[:0]
		for _, r := range results {
			if pattern.Similar(qGlobal, globals[r.Person], eps) {
				kept = append(kept, r)
			}
		}
		out.PerQuery[q.ID] = kept
	}
	return nil
}

// rankWBF finalizes one query's WBF candidates. With MinScore unset the
// paper's strict Algorithm 3 applies (delete weight sums above 1, rank
// descending). With MinScore set, ε-induced attribution error is tolerated
// symmetrically: candidates scoring within [MinScore, 2-MinScore] are kept
// and ranked by closeness to the perfect partition score of 1 — a complete
// match sums to exactly 1, a same-category match with jitter lands just
// beside it, and a cross-category accident overshoots far past the band.
func rankWBF(cfg searchConfig, agg *core.Aggregator, q core.QueryID) []core.Result {
	if cfg.minScore <= 0 {
		return agg.TopK(q, cfg.topK)
	}
	lo, hi := cfg.minScore, 2-cfg.minScore
	results := agg.Results(q)
	kept := results[:0]
	for _, r := range results {
		if s := r.Score(); s >= lo && s <= hi {
			kept = append(kept, r)
		}
	}
	results = kept
	dist := func(r core.Result) float64 {
		d := 1 - r.Score()
		if d < 0 {
			d = -d
		}
		return d
	}
	sort.Slice(results, func(i, j int) bool {
		di, dj := dist(results[i]), dist(results[j])
		if di != dj {
			return di < dj
		}
		return results[i].Person < results[j].Person
	})
	if cfg.topK > 0 && len(results) > cfg.topK {
		results = results[:cfg.topK]
	}
	return results
}

// searchBF is the Bloom-filter baseline: same pipeline, no weights, so the
// center can only count how many stations reported each person.
func (c *Cluster) searchBF(ctx context.Context, ep *epoch, cfg searchConfig, queries []core.Query) (*Outcome, error) {
	params, err := c.resolveParams(cfg, queries)
	if err != nil {
		return nil, err
	}
	enc, err := core.NewBFEncoder(params, c.length)
	if err != nil {
		return nil, err
	}
	for _, q := range queries {
		if err := enc.AddQuery(q); err != nil {
			return nil, err
		}
	}
	filter := enc.Filter()

	counts := make(map[core.PersonID]int)
	replicated := c.replicatedPred()
	out := &Outcome{PerQuery: make(map[core.QueryID][]core.Result, len(queries))}
	msg := wire.EncodeBFQuery(wire.BFQuery{Filter: filter, Params: params, Length: c.length})
	var reportBytes uint64
	failed, err := c.fanOut(ctx, ep, msg, &out.Cost, func(reply wire.Message) error {
		batch, err := wire.DecodeBFMatches(reply)
		if err != nil {
			return err
		}
		reportBytes += uint64(reply.EncodedSize())
		for _, p := range batch.Persons {
			out.Cost.ReportsReceived++
			// A placed person's stations are replicas of one pattern, not
			// independent sightings: they count as a single report so the
			// station-count ranking is not inflated by the replication
			// factor.
			if replicated != nil && replicated(p) {
				if counts[p] == 0 {
					counts[p] = 1
				}
				continue
			}
			counts[p]++
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	ranked := make([]core.Result, 0, len(counts))
	stations := int64(len(ep.ids))
	for p, n := range counts {
		ranked = append(ranked, core.Result{
			Person:      p,
			Numerator:   int64(n),
			Denominator: stations,
			Stations:    n,
		})
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].Numerator != ranked[j].Numerator {
			return ranked[i].Numerator > ranked[j].Numerator
		}
		return ranked[i].Person < ranked[j].Person
	})
	if cfg.topK > 0 && len(ranked) > cfg.topK {
		ranked = ranked[:cfg.topK]
	}
	for _, q := range queries {
		out.PerQuery[q.ID] = ranked
	}
	out.Cost.StationsFailed = failed
	out.Cost.FilterBytes = filter.SizeBytes()
	out.Cost.CenterStorageBytes = filter.SizeBytes() + reportBytes
	return out, nil
}

// searchNaive ships everything and matches centrally with the exact Eq. 2
// predicate. Precision is 1 by construction; the cost is the point.
func (c *Cluster) searchNaive(ctx context.Context, ep *epoch, cfg searchConfig, queries []core.Query) (*Outcome, error) {
	globals := make(map[core.PersonID]pattern.Pattern)
	replicated := c.replicatedPred()
	var shippedBytes uint64
	out := &Outcome{PerQuery: make(map[core.QueryID][]core.Result, len(queries))}
	failed, err := c.fanOut(ctx, ep, wire.ShipAllMessage(), &out.Cost, func(reply wire.Message) error {
		data, err := wire.DecodeNaiveData(reply)
		if err != nil {
			return err
		}
		shippedBytes += uint64(reply.EncodedSize())
		for i, p := range data.Persons {
			g := globals[p]
			if g == nil {
				g = make(pattern.Pattern, c.length)
				globals[p] = g
			} else if replicated != nil && replicated(p) {
				// A placed person's stations ship identical replicas of one
				// pattern: summing them would double the global, so the
				// first copy stands for all of them.
				continue
			}
			for j, v := range data.Locals[i] {
				g[j] += v
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	eps := cfg.params.Epsilon
	for _, q := range queries {
		qGlobal, err := q.Global()
		if err != nil {
			return nil, err
		}
		type cand struct {
			person core.PersonID
			dist   int64
		}
		var cands []cand
		for p, g := range globals {
			d, err := pattern.MaxAbsDiff(qGlobal, g)
			if err != nil {
				continue // length mismatch: cannot match
			}
			if d > eps {
				continue
			}
			if cfg.minScore > 0 {
				if score := float64(eps-d+1) / float64(eps+1); score < cfg.minScore {
					continue
				}
			}
			cands = append(cands, cand{person: p, dist: d})
		}
		sort.Slice(cands, func(i, j int) bool {
			if cands[i].dist != cands[j].dist {
				return cands[i].dist < cands[j].dist
			}
			return cands[i].person < cands[j].person
		})
		if cfg.topK > 0 && len(cands) > cfg.topK {
			cands = cands[:cfg.topK]
		}
		rs := make([]core.Result, len(cands))
		for i, cd := range cands {
			rs[i] = core.Result{
				Person:      cd.person,
				Numerator:   eps - cd.dist + 1,
				Denominator: eps + 1,
				Stations:    len(ep.ids),
			}
		}
		out.PerQuery[q.ID] = rs
	}
	out.Cost.StationsFailed = failed
	out.Cost.ReportsReceived = len(globals)
	out.Cost.CenterStorageBytes = shippedBytes
	return out, nil
}
