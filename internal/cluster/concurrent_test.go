package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"dimatch/internal/core"
	"dimatch/internal/pattern"
	"dimatch/internal/transport"
)

// manualCluster builds a data center over explicit pipes: stations 0 and 1
// of the paper scenario run real serve loops, station 2's link is returned
// unserved so a test can stall, kill or revive it deterministically.
func manualCluster(t *testing.T, opts Options) (*Cluster, transport.Link) {
	t.Helper()
	data := paperScenario()
	links := make(map[uint32]transport.Link, 3)
	var silent transport.Link
	for _, id := range []uint32{0, 1, 2} {
		center, stationEnd := transport.Pipe(nil, nil)
		links[id] = center
		if id == 2 {
			silent = stationEnd
			continue
		}
		id, stationEnd := id, stationEnd
		go func() {
			if err := ServeStation(id, data[id], stationEnd); err != nil {
				t.Errorf("station %d: %v", id, err)
			}
		}()
	}
	c, err := NewWithLinks(opts, links, 3, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Shutdown() })
	return c, silent
}

// TestConcurrentSearchesMatchSequential is the redesign's core guarantee:
// many searches with different strategies and per-call options over one
// cluster return exactly what they return sequentially — no frame
// interleaving, no cross-talk. Run under -race.
func TestConcurrentSearchesMatchSequential(t *testing.T) {
	c := startCluster(t, testOptions(), paperScenario())
	queries := []core.Query{paperQuery()}

	configs := map[string][]SearchOption{
		"wbf":          {WithStrategy(StrategyWBF)},
		"wbf-top1":     {WithStrategy(StrategyWBF), WithTopK(1)},
		"wbf-minscore": {WithStrategy(StrategyWBF), WithMinScore(0.9)},
		"wbf-verify":   {WithStrategy(StrategyWBF), WithVerify(true)},
		"bf":           {WithStrategy(StrategyBF)},
		"naive":        {WithStrategy(StrategyNaive)},
	}

	// Sequential baseline.
	want := make(map[string][]core.PersonID, len(configs))
	for name, opts := range configs {
		out, err := c.Search(context.Background(), queries, opts...)
		if err != nil {
			t.Fatalf("%s sequential: %v", name, err)
		}
		want[name] = out.Persons(1)
	}

	// The same configs, many in flight at once.
	const rounds = 4
	var wg sync.WaitGroup
	errs := make(chan error, rounds*len(configs))
	for r := 0; r < rounds; r++ {
		for name, opts := range configs {
			name, opts := name, opts
			wg.Add(1)
			go func() {
				defer wg.Done()
				out, err := c.Search(context.Background(), queries, opts...)
				if err != nil {
					errs <- fmt.Errorf("%s: %v", name, err)
					return
				}
				got := out.Persons(1)
				if len(got) != len(want[name]) {
					errs <- fmt.Errorf("%s: concurrent %v != sequential %v", name, got, want[name])
					return
				}
				for i := range got {
					if got[i] != want[name][i] {
						errs <- fmt.Errorf("%s: concurrent %v != sequential %v", name, got, want[name])
						return
					}
				}
				if out.Cost.StationsFailed != 0 {
					errs <- fmt.Errorf("%s: %d stations failed", name, out.Cost.StationsFailed)
				}
				if out.Cost.BytesDown == 0 || out.Cost.BytesUp == 0 {
					errs <- fmt.Errorf("%s: per-search traffic not tallied: %+v", name, out.Cost)
				}
			}()
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestPerSearchCostIsolation checks that concurrent searches tally only
// their own traffic: a search's dissemination count is exactly one message
// per live station per round, however many other searches are in flight.
func TestPerSearchCostIsolation(t *testing.T) {
	c := startCluster(t, testOptions(), paperScenario())
	queries := []core.Query{paperQuery()}
	stations := uint64(c.Stations())

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out, err := c.Search(context.Background(), queries)
			if err != nil {
				t.Error(err)
				return
			}
			if out.Cost.MessagesDown != stations {
				t.Errorf("MessagesDown = %d, want %d (own traffic only)", out.Cost.MessagesDown, stations)
			}
			if out.Cost.MessagesUp != stations {
				t.Errorf("MessagesUp = %d, want %d (own traffic only)", out.Cost.MessagesUp, stations)
			}
		}()
	}
	wg.Wait()
}

// TestSearchCancellationPromptAndClean cancels a search stalled on a silent
// station and checks (a) it returns promptly with both sentinel and context
// errors, and (b) the links survive: once the station comes alive, the next
// search succeeds even though the stale reply still arrives and must be
// dropped.
func TestSearchCancellationPromptAndClean(t *testing.T) {
	c, silent := manualCluster(t, testOptions())
	queries := []core.Query{paperQuery()}

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := c.Search(ctx, queries, WithStrategy(StrategyWBF))
		errc <- err
	}()
	time.Sleep(10 * time.Millisecond) // let the fan-out reach the silent station
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, ErrCancelled) {
			t.Fatalf("err = %v, want ErrCancelled", err)
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled in the chain", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled search did not return within one fan-out round")
	}

	// Revive station 2: it first drains the abandoned query (its reply is
	// dropped by the dispatcher), then serves the new search.
	go func() {
		if err := ServeStation(2, paperScenario()[2], silent); err != nil {
			t.Errorf("revived station: %v", err)
		}
	}()
	out, err := c.Search(context.Background(), queries, WithStrategy(StrategyWBF))
	if err != nil {
		t.Fatalf("search after cancellation: %v", err)
	}
	if out.Cost.StationsFailed != 0 {
		t.Fatalf("StationsFailed = %d after revival", out.Cost.StationsFailed)
	}
	found := false
	for _, p := range out.Persons(1) {
		if p == 11 { // person 11 lives only on station 2
			found = true
		}
	}
	if !found {
		t.Fatalf("station 2's person 11 missing after revival: %v", out.Persons(1))
	}
}

// TestSearchAlreadyCancelled checks the fast path: a context cancelled
// before the call returns immediately without touching the links.
func TestSearchAlreadyCancelled(t *testing.T) {
	c := startCluster(t, testOptions(), paperScenario())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := c.Search(ctx, []core.Query{paperQuery()})
	if !errors.Is(err, ErrCancelled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want ErrCancelled wrapping context.Canceled", err)
	}
}

// TestKillStationMidSearch severs a station while a search is blocked on
// its reply: the search must complete degraded (not hang, not fail), count
// the dead station, and keep the surviving stations' results.
func TestKillStationMidSearch(t *testing.T) {
	c, _ := manualCluster(t, testOptions())
	queries := []core.Query{paperQuery()}

	type result struct {
		out *Outcome
		err error
	}
	resc := make(chan result, 1)
	go func() {
		out, err := c.Search(context.Background(), queries, WithStrategy(StrategyWBF))
		resc <- result{out, err}
	}()
	time.Sleep(10 * time.Millisecond) // the fan-out is now waiting on station 2
	if err := c.KillStation(2); err != nil {
		t.Fatal(err)
	}
	select {
	case r := <-resc:
		if r.err != nil {
			t.Fatalf("degraded search failed: %v", r.err)
		}
		if r.out.Cost.StationsFailed != 1 {
			t.Fatalf("StationsFailed = %d, want 1", r.out.Cost.StationsFailed)
		}
		// Person 10 splits across the two surviving stations: still found.
		found := false
		for _, p := range r.out.Persons(1) {
			if p == 10 {
				found = true
			}
			if p == 11 {
				t.Fatal("person 11 lives only on the killed station; must be lost")
			}
		}
		if !found {
			t.Fatalf("surviving stations' person 10 missing: %v", r.out.Persons(1))
		}
	case <-time.After(5 * time.Second):
		t.Fatal("search hung on the killed station")
	}

	// The cluster stays usable.
	out, err := c.Search(context.Background(), queries)
	if err != nil {
		t.Fatalf("search after kill: %v", err)
	}
	if out.Cost.StationsFailed != 1 {
		t.Fatalf("StationsFailed = %d on follow-up, want 1", out.Cost.StationsFailed)
	}
}

// TestShutdownDuringSearchReturnsClosed covers the Search/Shutdown race: a
// search in flight when Shutdown lands must surface ErrClusterClosed, not
// an empty successful outcome.
func TestShutdownDuringSearchReturnsClosed(t *testing.T) {
	data := paperScenario()
	links := make(map[uint32]transport.Link, 1)
	center, _ := transport.Pipe(nil, nil) // station end never served: search stalls
	links[0] = center
	c, err := NewWithLinks(testOptions(), links, 3, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	_ = data

	errc := make(chan error, 1)
	go func() {
		_, err := c.Search(context.Background(), []core.Query{paperQuery()})
		errc <- err
	}()
	time.Sleep(10 * time.Millisecond) // the fan-out is now awaiting a reply
	if err := c.Shutdown(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errc:
		if !errors.Is(err, ErrClusterClosed) {
			t.Fatalf("err = %v, want ErrClusterClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("search hung across Shutdown")
	}
}

// TestSearchSentinelErrors pins the typed error surface.
func TestSearchSentinelErrors(t *testing.T) {
	c := startCluster(t, testOptions(), paperScenario())
	if _, err := c.Search(context.Background(), nil); !errors.Is(err, ErrNoQueries) {
		t.Fatalf("empty batch err = %v, want ErrNoQueries", err)
	}
	badLen := core.Query{ID: 1, Locals: []pattern.Pattern{{1, 2}}}
	if _, err := c.Search(context.Background(), []core.Query{badLen}); !errors.Is(err, ErrLengthMismatch) {
		t.Fatalf("length mismatch err = %v, want ErrLengthMismatch", err)
	}
	if _, err := c.Search(context.Background(), []core.Query{paperQuery()}, WithStrategy(Strategy(99))); !errors.Is(err, ErrUnknownStrategy) {
		t.Fatalf("unknown strategy err = %v, want ErrUnknownStrategy", err)
	}

	// Shutdown is idempotent, so reusing the helper (whose cleanup shuts
	// down again) is safe.
	closed := startCluster(t, testOptions(), paperScenario())
	if err := closed.Shutdown(); err != nil {
		t.Fatal(err)
	}
	if _, err := closed.Search(context.Background(), []core.Query{paperQuery()}); !errors.Is(err, ErrClusterClosed) {
		t.Fatalf("closed cluster err = %v, want ErrClusterClosed", err)
	}
}

// TestParseStrategy pins the Strategy.String inverse.
func TestParseStrategy(t *testing.T) {
	for _, s := range []Strategy{StrategyNaive, StrategyBF, StrategyWBF} {
		got, err := ParseStrategy(s.String())
		if err != nil || got != s {
			t.Fatalf("ParseStrategy(%q) = %v, %v", s.String(), got, err)
		}
	}
	if got, err := ParseStrategy("  WBF "); err != nil || got != StrategyWBF {
		t.Fatalf("case/space-insensitive parse failed: %v, %v", got, err)
	}
	if _, err := ParseStrategy("quantum"); !errors.Is(err, ErrUnknownStrategy) {
		t.Fatalf("err = %v, want ErrUnknownStrategy", err)
	}
}
