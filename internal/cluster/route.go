package cluster

import (
	"context"
	"sync"

	"dimatch/internal/core"
	"dimatch/internal/index"
	"dimatch/internal/index/tree"
	"dimatch/internal/pattern"
	"dimatch/internal/transport"
	"dimatch/internal/wire"
)

// summaryCache is the coordinator's per-station routing-summary store. It
// is generation-guarded: every mutation that can change a station's store
// bumps the station's generation, and a summary fetched over the wire is
// only installed if the generation it was fetched under still stands. That
// closes the race where a summary request lands at a station just before an
// ingest applies, and its (now stale) reply would otherwise overwrite the
// invalidation — a stale summary that lags an ingest could prune a station
// holding the new resident, which is the one staleness that loses recall.
// A summary lagging an evict merely admits a station that reports nothing
// (a wasted probe), so eviction staleness is only a cost concern.
type summaryCache struct {
	mu      sync.Mutex
	entries map[uint32]*index.Summary // dimatch:guardedby mu
	gens    map[uint32]uint64         // dimatch:guardedby mu
	// digests is the Bloofi tree over the cached entries (internal/index/tree),
	// built lazily by the first tree-routed search and kept in lockstep with
	// the cache from then on: put syncs the fresh digest in, invalidate
	// removes the station, noteIngest delta-propagates the new cells up the
	// station's root path. A digest the tree rejects (foreign geometry, e.g. a
	// legacy non-power-of-two filter) simply stays outside and is probed flat
	// — never pruned by a union it is not part of.
	digests *tree.Tree // dimatch:guardedby mu
}

// syncTreeLocked mirrors one cached digest into the tree. Callers hold mu.
// On rejection the station is evicted from the tree: a stale leaf left
// behind could prune the station away from residents its fresh (rejected)
// digest covers.
func (c *summaryCache) syncTreeLocked(id uint32, s *index.Summary) {
	if c.digests == nil {
		return
	}
	if err := c.digests.Add(id, s); err != nil {
		c.digests.Remove(id)
	}
}

// get returns the cached summary for a station (nil if absent) and the
// station's current generation. Callers that intend to fetch must read the
// generation BEFORE sending the request and pass it to put.
func (c *summaryCache) get(id uint32) (*index.Summary, uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.entries[id], c.gens[id]
}

// put installs a fetched summary if the station's generation is still the
// one the fetch was issued under; a summary outdated by a concurrent
// mutation is dropped.
func (c *summaryCache) put(id uint32, gen uint64, s *index.Summary) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.gens[id] != gen {
		return
	}
	if c.entries == nil {
		c.entries = make(map[uint32]*index.Summary)
	}
	c.entries[id] = s
	c.syncTreeLocked(id, s)
}

// genSnapshot returns each station's current generation, in the given
// order. Region coordinators key their cached upward digest on it: any
// mutation that bumps a member's generation forces a rebuild.
func (c *summaryCache) genSnapshot(ids []uint32) []uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	gens := make([]uint64, len(ids))
	for i, id := range ids {
		gens[i] = c.gens[id]
	}
	return gens
}

// invalidate bumps the station's generation and drops its digest: the next
// routed search refetches (and until then the station is never pruned).
func (c *summaryCache) invalidate(id uint32) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.gens == nil {
		c.gens = make(map[uint32]uint64)
	}
	c.gens[id]++
	delete(c.entries, id)
	if c.digests != nil {
		c.digests.Remove(id)
	}
}

// noteIngest applies an ingest to the cached digest: the generation bumps
// (so any in-flight pre-ingest fetch is discarded) and, when a digest is
// cached with matching geometry, the ingested patterns' cells are added to
// a copy — Bloom inserts are monotone, so the updated digest covers the
// post-ingest store without a wire refresh. Without a usable cached digest
// the slot is simply left invalidated.
func (c *summaryCache) noteIngest(id uint32, locals []pattern.Pattern) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.gens == nil {
		c.gens = make(map[uint32]uint64)
	}
	c.gens[id]++
	cur := c.entries[id]
	if cur == nil {
		return
	}
	updated := cur.Clone()
	for _, l := range locals {
		if l.Sum() == 0 {
			continue // stations drop all-zero patterns on ingest
		}
		if updated.Add(l) != nil {
			// Geometry mismatch (e.g. the placeholder digest of a station
			// that was empty): the digest cannot absorb the delta — drop it
			// and let the next routed search refetch.
			delete(c.entries, id)
			if c.digests != nil {
				c.digests.Remove(id)
			}
			return
		}
	}
	c.entries[id] = updated
	if c.digests != nil {
		// Propagate the delta up the station's root path copy-on-write; only
		// the touched ancestors' unions are rebuilt. A station the tree does
		// not hold (or a failed propagation) falls back to a full re-insert.
		synced := true
		for _, l := range locals {
			if l.Sum() == 0 {
				continue
			}
			if ok, err := c.digests.DeltaAdd(id, updated, l); err != nil || !ok {
				synced = false
				break
			}
		}
		if !synced {
			c.syncTreeLocked(id, updated)
		}
	}
}

// descend plans a tree-routed search: it (re)builds the Bloofi tree over the
// cached digests when needed — first tree-routed search, or a fanout change
// — then routes the probes through it. It returns which of the given
// stations the tree admits, which it tracks at all (an untracked station
// must be probed flat by the caller), and the number of union/leaf Admits
// evaluations the descent performed. Pure in-memory work under mu: no IO
// happens while the cache lock is held.
func (c *summaryCache) descend(fanout int, probes []index.Probe, ids []uint32) (admitted, member map[uint32]bool, evaluated int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.digests == nil || c.digests.Fanout() != tree.New(tree.Options{Fanout: fanout}).Fanout() {
		t := tree.New(tree.Options{Fanout: fanout})
		for id, sum := range c.entries {
			// Rejected digests (foreign geometry) stay outside the tree and
			// are probed flat by the caller.
			_ = t.Add(id, sum)
		}
		c.digests = t
	}
	hits, evaluated := c.digests.Route(probes)
	admitted = make(map[uint32]bool, len(hits))
	for _, id := range hits {
		admitted[id] = true
	}
	member = make(map[uint32]bool, len(ids))
	for _, id := range ids {
		if c.digests.Has(id) {
			member[id] = true
		}
	}
	return admitted, member, evaluated
}

// state snapshots the cache's memory footprint for Cluster.RoutingState.
func (c *summaryCache) state() (entries int, digestBytes uint64, treeInner int, treeBytes uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	entries = len(c.entries)
	for _, s := range c.entries {
		digestBytes += s.SizeBytes()
	}
	if c.digests != nil {
		treeInner, _ = c.digests.Nodes()
		treeBytes = c.digests.UnionBytes()
	}
	return entries, digestBytes, treeInner, treeBytes
}

// planRoute is the routing step of a WBF search: it probes each station's
// cached summary with the query batch and returns the epoch restricted to
// the stations that must be visited, charging summary-refresh traffic to
// cost. The full epoch is returned — and nothing is pruned — whenever
// pruning would be unsound or pointless: a single-station cluster, probes
// over budget, or a plan that would exclude everything (stale summaries
// must never turn a search into a silent no-op, so an empty candidate set
// falls back to full fan-out).
//
// Stations are kept (never pruned) individually when they predate wire v5,
// when their summary cannot be fetched, or when any query's probe admits
// them. Pruning is therefore strictly conservative: a pruned station
// provably held no resident inside any query combination's ε band at the
// sampled positions, so it could only have contributed hash-collision
// noise, never a true match's report.
func (c *Cluster) planRoute(ctx context.Context, ep *epoch, cfg searchConfig, queries []core.Query, vers map[uint32]uint8, cost *CostReport) *epoch {
	if len(ep.ids) < 2 {
		return ep
	}
	p := cfg.params
	samples := p.Samples
	if samples == 0 {
		samples = core.DefaultSamples
	}
	probes := make([]index.Probe, 0, len(queries))
	selective := false
	for _, q := range queries {
		pr, err := index.NewProbe(q, samples, p.Epsilon)
		if err != nil {
			return ep // queries were validated already; be conservative
		}
		probes = append(probes, pr)
		selective = selective || pr.Selective()
	}
	if !selective {
		// Nothing can prune: skip the summary traffic entirely. Unselective
		// probes still advance the profiler's query clock (no bands).
		c.observeRoute(probes, nil)
		return ep
	}

	// Collect cached summaries and fetch the missing ones concurrently.
	// Generations are read before the requests go out (see summaryCache).
	type slot struct {
		sum *index.Summary
		gen uint64
	}
	slots := make([]slot, len(ep.ids))
	var fetchIdx []int
	for i, id := range ep.ids {
		if vers[id] < wire.Version5 {
			continue // pre-v5 peer: never pruned, nothing to fetch
		}
		sum, gen := c.summaries.get(id)
		slots[i] = slot{sum: sum, gen: gen}
		if sum == nil {
			fetchIdx = append(fetchIdx, i)
		}
	}
	if len(fetchIdx) > 0 {
		fetched := make([]*index.Summary, len(fetchIdx))
		sizes := make([][2]uint64, len(fetchIdx)) // request, reply bytes
		var wg sync.WaitGroup
		req := wire.SummaryMessage()
		for fi, i := range fetchIdx {
			fi, mx := fi, ep.muxes[i]
			wg.Add(1)
			go func() {
				defer wg.Done()
				reply, err := mx.Roundtrip(ctx, req)
				if err != nil {
					return
				}
				_, sum, err := wire.DecodeSummaryReply(reply)
				if err != nil {
					return
				}
				fetched[fi] = sum
				sizes[fi] = [2]uint64{uint64(req.EncodedSize()), uint64(reply.EncodedSize())}
			}()
		}
		wg.Wait()
		if ctx.Err() != nil {
			return ep // cancelled mid-refresh: the round itself will surface it
		}
		for fi, i := range fetchIdx {
			if fetched[fi] == nil {
				continue // unreachable or corrupt: the station stays unpruned
			}
			slots[i].sum = fetched[fi]
			c.summaries.put(ep.ids[i], slots[i].gen, fetched[fi])
			// Refresh traffic fills a cluster-level cache shared by every
			// search, so — like the per-epoch stats exchange — it is billed
			// to the dedicated summary counters, not the search's
			// dissemination/report totals.
			cost.SummaryRefreshes++
			cost.SummaryBytesDown += sizes[fi][0]
			cost.SummaryBytesUp += sizes[fi][1]
		}
	}

	// Feed the traffic profiler: the probes' bands, plus emptiness feedback
	// against every digest this pass can consult — a band no station digest
	// admits is (to within digest fp) empty cluster-wide, exactly the
	// traffic whose false admissions the adaptive solver targets. Pre-v5
	// and unreachable stations contribute no digest; their residents are
	// invisible to the emptiness check, which only skews bit placement,
	// never soundness.
	consulted := make([]*index.Summary, 0, len(slots))
	for _, sl := range slots {
		if sl.sum != nil {
			consulted = append(consulted, sl.sum)
		}
	}
	c.observeRoute(probes, consulted)

	// The inclusion pass. Under RoutingTree the cached digests are arranged
	// in the Bloofi tree and the probes descend it — one union check can rule
	// out a whole subtree — with stations the tree does not track (no cached
	// digest, or a geometry it rejected) probed flat exactly like the summary
	// mode. Every Admits evaluation, flat or tree, counts into SubtreeProbes:
	// it is the planning-cost figure the hierarchy benchmark compares.
	var treeAdmit, treeMember map[uint32]bool
	if cfg.routing == RoutingTree {
		var evaluated int
		treeAdmit, treeMember, evaluated = c.summaries.descend(c.opts.TreeFanout, probes, ep.ids)
		cost.SubtreeProbes += uint64(evaluated)
	}
	included := make([]int, 0, len(ep.ids))
	for i, id := range ep.ids {
		sum := slots[i].sum
		if sum == nil {
			included = append(included, i)
			continue
		}
		if treeMember[id] {
			if treeAdmit[id] {
				included = append(included, i)
			}
			continue
		}
		for _, pr := range probes {
			cost.SubtreeProbes++
			if sum.Admits(pr) {
				included = append(included, i)
				break
			}
		}
	}
	if len(included) == len(ep.ids) || len(included) == 0 {
		return ep
	}
	cost.StationsPruned = len(ep.ids) - len(included)
	sub := &epoch{version: ep.version, ids: make([]uint32, len(included)), muxes: make([]*transport.Mux, len(included))}
	for j, i := range included {
		sub.ids[j] = ep.ids[i]
		sub.muxes[j] = ep.muxes[i]
	}
	return sub
}

// RoutingState describes the coordinator's routing-state footprint: what
// this node holds in memory to plan searches. In a flat deployment the
// cached digests grow linearly with the station count; in a multi-tier one
// each coordinator holds digests for its own children only, which is the
// sublinear-state property BENCH_hierarchy.json pins.
type RoutingState struct {
	// Entries is the number of cached per-station digests and
	// CachedDigestBytes their total filter bytes.
	Entries           int
	CachedDigestBytes uint64
	// TreeNodes is the number of inner (union) nodes of the Bloofi tree and
	// TreeBytes their filter bytes — zero until the first tree-routed search
	// builds it. Leaf digests are shared with the flat cache and counted in
	// CachedDigestBytes only.
	TreeNodes int
	TreeBytes uint64
}

// TotalBytes returns the coordinator's whole routing-state footprint.
func (s RoutingState) TotalBytes() uint64 { return s.CachedDigestBytes + s.TreeBytes }

// RoutingState snapshots the coordinator's current routing-state footprint.
func (c *Cluster) RoutingState() RoutingState {
	entries, digestBytes, inner, treeBytes := c.summaries.state()
	return RoutingState{
		Entries:           entries,
		CachedDigestBytes: digestBytes,
		TreeNodes:         inner,
		TreeBytes:         treeBytes,
	}
}
