package cluster

import (
	"context"
	"sync"

	"dimatch/internal/core"
	"dimatch/internal/index"
	"dimatch/internal/pattern"
	"dimatch/internal/transport"
	"dimatch/internal/wire"
)

// summaryCache is the coordinator's per-station routing-summary store. It
// is generation-guarded: every mutation that can change a station's store
// bumps the station's generation, and a summary fetched over the wire is
// only installed if the generation it was fetched under still stands. That
// closes the race where a summary request lands at a station just before an
// ingest applies, and its (now stale) reply would otherwise overwrite the
// invalidation — a stale summary that lags an ingest could prune a station
// holding the new resident, which is the one staleness that loses recall.
// A summary lagging an evict merely admits a station that reports nothing
// (a wasted probe), so eviction staleness is only a cost concern.
type summaryCache struct {
	mu      sync.Mutex
	entries map[uint32]*index.Summary // dimatch:guardedby mu
	gens    map[uint32]uint64         // dimatch:guardedby mu
}

// get returns the cached summary for a station (nil if absent) and the
// station's current generation. Callers that intend to fetch must read the
// generation BEFORE sending the request and pass it to put.
func (c *summaryCache) get(id uint32) (*index.Summary, uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.entries[id], c.gens[id]
}

// put installs a fetched summary if the station's generation is still the
// one the fetch was issued under; a summary outdated by a concurrent
// mutation is dropped.
func (c *summaryCache) put(id uint32, gen uint64, s *index.Summary) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.gens[id] != gen {
		return
	}
	if c.entries == nil {
		c.entries = make(map[uint32]*index.Summary)
	}
	c.entries[id] = s
}

// invalidate bumps the station's generation and drops its digest: the next
// routed search refetches (and until then the station is never pruned).
func (c *summaryCache) invalidate(id uint32) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.gens == nil {
		c.gens = make(map[uint32]uint64)
	}
	c.gens[id]++
	delete(c.entries, id)
}

// noteIngest applies an ingest to the cached digest: the generation bumps
// (so any in-flight pre-ingest fetch is discarded) and, when a digest is
// cached with matching geometry, the ingested patterns' cells are added to
// a copy — Bloom inserts are monotone, so the updated digest covers the
// post-ingest store without a wire refresh. Without a usable cached digest
// the slot is simply left invalidated.
func (c *summaryCache) noteIngest(id uint32, locals []pattern.Pattern) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.gens == nil {
		c.gens = make(map[uint32]uint64)
	}
	c.gens[id]++
	cur := c.entries[id]
	if cur == nil {
		return
	}
	updated := cur.Clone()
	for _, l := range locals {
		if l.Sum() == 0 {
			continue // stations drop all-zero patterns on ingest
		}
		if updated.Add(l) != nil {
			// Geometry mismatch (e.g. the placeholder digest of a station
			// that was empty): the digest cannot absorb the delta — drop it
			// and let the next routed search refetch.
			delete(c.entries, id)
			return
		}
	}
	c.entries[id] = updated
}

// planRoute is the routing step of a WBF search: it probes each station's
// cached summary with the query batch and returns the epoch restricted to
// the stations that must be visited, charging summary-refresh traffic to
// cost. The full epoch is returned — and nothing is pruned — whenever
// pruning would be unsound or pointless: a single-station cluster, probes
// over budget, or a plan that would exclude everything (stale summaries
// must never turn a search into a silent no-op, so an empty candidate set
// falls back to full fan-out).
//
// Stations are kept (never pruned) individually when they predate wire v5,
// when their summary cannot be fetched, or when any query's probe admits
// them. Pruning is therefore strictly conservative: a pruned station
// provably held no resident inside any query combination's ε band at the
// sampled positions, so it could only have contributed hash-collision
// noise, never a true match's report.
func (c *Cluster) planRoute(ctx context.Context, ep *epoch, cfg searchConfig, queries []core.Query, vers map[uint32]uint8, cost *CostReport) *epoch {
	if len(ep.ids) < 2 {
		return ep
	}
	p := cfg.params
	samples := p.Samples
	if samples == 0 {
		samples = core.DefaultSamples
	}
	probes := make([]index.Probe, 0, len(queries))
	selective := false
	for _, q := range queries {
		pr, err := index.NewProbe(q, samples, p.Epsilon)
		if err != nil {
			return ep // queries were validated already; be conservative
		}
		probes = append(probes, pr)
		selective = selective || pr.Selective()
	}
	if !selective {
		return ep // nothing can prune: skip the summary traffic entirely
	}

	// Collect cached summaries and fetch the missing ones concurrently.
	// Generations are read before the requests go out (see summaryCache).
	type slot struct {
		sum *index.Summary
		gen uint64
	}
	slots := make([]slot, len(ep.ids))
	var fetchIdx []int
	for i, id := range ep.ids {
		if vers[id] < wire.Version5 {
			continue // pre-v5 peer: never pruned, nothing to fetch
		}
		sum, gen := c.summaries.get(id)
		slots[i] = slot{sum: sum, gen: gen}
		if sum == nil {
			fetchIdx = append(fetchIdx, i)
		}
	}
	if len(fetchIdx) > 0 {
		fetched := make([]*index.Summary, len(fetchIdx))
		sizes := make([][2]uint64, len(fetchIdx)) // request, reply bytes
		var wg sync.WaitGroup
		req := wire.SummaryMessage()
		for fi, i := range fetchIdx {
			fi, mx := fi, ep.muxes[i]
			wg.Add(1)
			go func() {
				defer wg.Done()
				reply, err := mx.Roundtrip(ctx, req)
				if err != nil {
					return
				}
				_, sum, err := wire.DecodeSummaryReply(reply)
				if err != nil {
					return
				}
				fetched[fi] = sum
				sizes[fi] = [2]uint64{uint64(req.EncodedSize()), uint64(reply.EncodedSize())}
			}()
		}
		wg.Wait()
		if ctx.Err() != nil {
			return ep // cancelled mid-refresh: the round itself will surface it
		}
		for fi, i := range fetchIdx {
			if fetched[fi] == nil {
				continue // unreachable or corrupt: the station stays unpruned
			}
			slots[i].sum = fetched[fi]
			c.summaries.put(ep.ids[i], slots[i].gen, fetched[fi])
			// Refresh traffic fills a cluster-level cache shared by every
			// search, so — like the per-epoch stats exchange — it is billed
			// to the dedicated summary counters, not the search's
			// dissemination/report totals.
			cost.SummaryRefreshes++
			cost.SummaryBytesDown += sizes[fi][0]
			cost.SummaryBytesUp += sizes[fi][1]
		}
	}

	included := make([]int, 0, len(ep.ids))
	for i := range ep.ids {
		sum := slots[i].sum
		if sum == nil {
			included = append(included, i)
			continue
		}
		for _, pr := range probes {
			if sum.Admits(pr) {
				included = append(included, i)
				break
			}
		}
	}
	if len(included) == len(ep.ids) || len(included) == 0 {
		return ep
	}
	cost.StationsPruned = len(ep.ids) - len(included)
	sub := &epoch{version: ep.version, ids: make([]uint32, len(included)), muxes: make([]*transport.Mux, len(included))}
	for j, i := range included {
		sub.ids[j] = ep.ids[i]
		sub.muxes[j] = ep.muxes[i]
	}
	return sub
}
