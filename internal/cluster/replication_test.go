package cluster

import (
	"context"
	"errors"
	"sync"
	"testing"

	"dimatch/internal/core"
	"dimatch/internal/pattern"
	"dimatch/internal/placement"
)

// placedOptions sizes the filter explicitly so the tiny populations of these
// tests cannot hit Bloom false positives.
func placedOptions() Options {
	return Options{Params: core.Params{Bits: 1 << 16, Hashes: 4, Samples: 4, Epsilon: 0, Seed: 1}}
}

// newPlacedCluster stands up an empty in-process cluster and places the
// given patterns with replication r.
func newPlacedCluster(t *testing.T, stations []uint32, r int, patterns map[core.PersonID]pattern.Pattern) *Cluster {
	t.Helper()
	length := 0
	for _, p := range patterns {
		length = len(p)
		break
	}
	c, err := NewEmpty(placedOptions(), stations, length)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	t.Cleanup(func() { _ = c.Shutdown() })
	if err := c.Place(context.Background(), patterns, WithReplication(r)); err != nil {
		t.Fatal(err)
	}
	return c
}

// holdersOf returns the r stations a person's replicas live on.
func holdersOf(p core.PersonID, stations []uint32, r int) []uint32 {
	return placement.Pick(p, stations, r)
}

func TestPlaceReplicatedSearch(t *testing.T) {
	stations := []uint32{1, 2, 3, 4}
	patterns := map[core.PersonID]pattern.Pattern{
		200: {9, 9, 9, 9},
	}
	for p := core.PersonID(100); p < 110; p++ {
		patterns[p] = pattern.Pattern{1, 2, 3, 4}
	}
	c := newPlacedCluster(t, stations, 2, patterns)
	if got := c.Placed(); got != len(patterns) {
		t.Fatalf("Placed() = %d, want %d", got, len(patterns))
	}

	out, err := c.Search(context.Background(), []core.Query{
		{ID: 1, Locals: []pattern.Pattern{{1, 2, 3, 4}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	results := out.PerQuery[1]
	if len(results) != 10 {
		t.Fatalf("got %d results, want 10: %+v", len(results), results)
	}
	for _, r := range results {
		if r.Person < 100 || r.Person >= 110 {
			t.Fatalf("unexpected person %d retrieved", r.Person)
		}
		// Without replica dedup the two copies would sum to weight 2 and be
		// deleted as over-matched; with it each person scores exactly 1 and
		// reports both replicas.
		if r.Score() != 1.0 {
			t.Fatalf("person %d scored %.3f, want 1", r.Person, r.Score())
		}
		if r.Stations != 2 {
			t.Fatalf("person %d reported by %d stations, want 2 replicas", r.Person, r.Stations)
		}
	}

	// Stats must see each copy: 11 persons at R=2 is 22 residents.
	st, err := c.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.TotalResidents() != 2*len(patterns) {
		t.Fatalf("TotalResidents = %d, want %d", st.TotalResidents(), 2*len(patterns))
	}
}

// TestReplicaDedupDifferentScores: two replicas of one person report
// different sampled scores (one copy drifted); the aggregation must keep the
// highest, not sum them (deletion) or keep the lower.
func TestReplicaDedupDifferentScores(t *testing.T) {
	stations := []uint32{1, 2, 3, 4}
	c := newPlacedCluster(t, stations, 2, map[core.PersonID]pattern.Pattern{
		50: {3, 3, 3, 3},
	})
	ctx := context.Background()

	// Overwrite one replica with a copy that only matches the query's
	// second local (weight 8/12), while the intact replica matches the full
	// combination (weight 1).
	holders := holdersOf(50, stations, 2)
	if err := c.Ingest(ctx, holders[1], map[core.PersonID]pattern.Pattern{50: {2, 2, 2, 2}}); err != nil {
		t.Fatal(err)
	}

	out, err := c.Search(ctx, []core.Query{
		{ID: 1, Locals: []pattern.Pattern{{1, 1, 1, 1}, {2, 2, 2, 2}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	results := out.PerQuery[1]
	if len(results) != 1 || results[0].Person != 50 {
		t.Fatalf("results = %+v, want person 50", results)
	}
	if results[0].Score() != 1.0 {
		t.Fatalf("score = %.3f, want 1 (highest replica report wins)", results[0].Score())
	}
	if results[0].Stations != 2 {
		t.Fatalf("stations = %d, want 2", results[0].Stations)
	}
}

// TestSearchOverlappingRemoveStation: searches racing the removal of one
// replica must keep full recall — the surviving replica covers, whether the
// search catches the old epoch (failed exchange) or a post-heal one.
func TestSearchOverlappingRemoveStation(t *testing.T) {
	stations := []uint32{1, 2, 3, 4, 5}
	patterns := make(map[core.PersonID]pattern.Pattern)
	for p := core.PersonID(100); p < 120; p++ {
		patterns[p] = pattern.Pattern{1, 2, 3, 4}
	}
	c := newPlacedCluster(t, stations, 2, patterns)
	ctx := context.Background()
	query := []core.Query{{ID: 1, Locals: []pattern.Pattern{{1, 2, 3, 4}}}}

	victim := holdersOf(100, stations, 2)[0]
	var wg sync.WaitGroup
	start := make(chan struct{})
	errs := make(chan error, 16)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for i := 0; i < 5; i++ {
				out, err := c.Search(ctx, query)
				if err != nil {
					errs <- err
					return
				}
				found := make(map[core.PersonID]bool)
				for _, r := range out.PerQuery[1] {
					found[r.Person] = true
				}
				for p := core.PersonID(100); p < 120; p++ {
					if !found[p] {
						errs <- errors.New("person lost during replica removal")
						return
					}
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-start
		if err := c.RemoveStation(ctx, victim); err != nil {
			errs <- err
		}
	}()
	close(start)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestReReplicationRestoresR: killing a replica's station triggers
// re-replication from the survivor, so a subsequent loss of the OTHER
// original holder still leaves the pattern searchable — impossible unless a
// fresh copy was made.
func TestReReplicationRestoresR(t *testing.T) {
	stations := []uint32{1, 2, 3, 4, 5}
	patterns := make(map[core.PersonID]pattern.Pattern)
	for p := core.PersonID(100); p < 130; p++ {
		patterns[p] = pattern.Pattern{1, 2, 3, 4}
	}
	c := newPlacedCluster(t, stations, 2, patterns)
	ctx := context.Background()
	query := []core.Query{{ID: 1, Locals: []pattern.Pattern{{1, 2, 3, 4}}}}

	holders := holdersOf(100, stations, 2)
	if err := c.KillStation(holders[0]); err != nil {
		t.Fatal(err)
	}
	// The kill healed synchronously: an explicit pass finds nothing to do.
	rep, err := c.Rebalance(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Copied != 0 || rep.Lost != 0 {
		t.Fatalf("post-kill Rebalance = %+v, want nothing to copy and nothing lost", rep)
	}

	// Lose the other original holder too. Every pattern must survive: each
	// had at most one replica on the first victim, and the heal restored it.
	if err := c.KillStation(holders[1]); err != nil {
		t.Fatal(err)
	}
	out, err := c.Search(ctx, query)
	if err != nil {
		t.Fatal(err)
	}
	found := make(map[core.PersonID]bool)
	for _, r := range out.PerQuery[1] {
		found[r.Person] = true
		if r.Score() != 1.0 {
			t.Fatalf("person %d scored %.3f after re-replication", r.Person, r.Score())
		}
	}
	for p := core.PersonID(100); p < 130; p++ {
		if !found[p] {
			t.Fatalf("person %d lost after two kills despite re-replication", p)
		}
	}
}

// TestPlaceClampAndTopUp: a replication factor beyond the alive membership
// is clamped at execution, but the requested factor is recorded — when the
// membership grows, reconciliation tops placements back up.
func TestPlaceClampAndTopUp(t *testing.T) {
	c := newPlacedCluster(t, []uint32{1}, 2, map[core.PersonID]pattern.Pattern{
		7: {1, 2, 3, 4},
	})
	ctx := context.Background()

	// One station: one copy.
	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.TotalResidents() != 1 {
		t.Fatalf("TotalResidents = %d, want 1 (clamped)", st.TotalResidents())
	}

	// Growing the membership triggers the top-up to R=2.
	if err := c.AddStation(ctx, 2, nil); err != nil {
		t.Fatal(err)
	}
	st, err = c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.TotalResidents() != 2 {
		t.Fatalf("TotalResidents = %d, want 2 after top-up", st.TotalResidents())
	}

	// And the topped-up copy is real: the original station can die.
	if err := c.KillStation(1); err != nil {
		t.Fatal(err)
	}
	out, err := c.Search(ctx, []core.Query{{ID: 1, Locals: []pattern.Pattern{{1, 2, 3, 4}}}})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.PerQuery[1]) != 1 || out.PerQuery[1][0].Person != 7 {
		t.Fatalf("person 7 lost after killing the original holder: %+v", out.PerQuery[1])
	}
}

func TestUnplace(t *testing.T) {
	stations := []uint32{1, 2, 3}
	c := newPlacedCluster(t, stations, 2, map[core.PersonID]pattern.Pattern{
		7: {1, 2, 3, 4},
		8: {1, 2, 3, 4},
	})
	ctx := context.Background()
	if err := c.Unplace(ctx, []core.PersonID{7, 99}); err != nil {
		t.Fatal(err)
	}
	if got := c.Placed(); got != 1 {
		t.Fatalf("Placed() = %d, want 1", got)
	}
	out, err := c.Search(ctx, []core.Query{{ID: 1, Locals: []pattern.Pattern{{1, 2, 3, 4}}}})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.PerQuery[1]) != 1 || out.PerQuery[1][0].Person != 8 {
		t.Fatalf("results = %+v, want only person 8", out.PerQuery[1])
	}
}

func TestPlaceValidation(t *testing.T) {
	c := newPlacedCluster(t, []uint32{1, 2}, 2, map[core.PersonID]pattern.Pattern{7: {1, 2, 3, 4}})
	ctx := context.Background()
	if err := c.Place(ctx, map[core.PersonID]pattern.Pattern{9: {1, 2}}); !errors.Is(err, ErrLengthMismatch) {
		t.Fatalf("short pattern: err = %v, want ErrLengthMismatch", err)
	}
	if err := c.Place(ctx, nil); err != nil {
		t.Fatalf("empty place: %v", err)
	}
	// An all-zero pattern is skipped (stations would drop it on ingest), so
	// no unsatisfiable intent is recorded and reconciliation stays clean.
	if err := c.Place(ctx, map[core.PersonID]pattern.Pattern{42: {0, 0, 0, 0}}); err != nil {
		t.Fatalf("zero-sum place: %v", err)
	}
	if c.Placed() != 1 {
		t.Fatalf("Placed() = %d after zero-sum place, want 1", c.Placed())
	}
	if rep, err := c.Rebalance(ctx); err != nil || rep.Lost != 0 {
		t.Fatalf("Rebalance after zero-sum place = %+v, %v", rep, err)
	}
	if err := c.KillStation(1); err != nil {
		t.Fatal(err)
	}
	if err := c.KillStation(2); err != nil {
		t.Fatal(err)
	}
	if err := c.Place(ctx, map[core.PersonID]pattern.Pattern{9: {1, 2, 3, 4}}); !errors.Is(err, ErrNoAliveStations) {
		t.Fatalf("all dead: err = %v, want ErrNoAliveStations", err)
	}
}

func TestNewEmptyValidation(t *testing.T) {
	if _, err := NewEmpty(placedOptions(), nil, 4); err == nil {
		t.Fatal("no stations accepted")
	}
	if _, err := NewEmpty(placedOptions(), []uint32{1, 1}, 4); !errors.Is(err, ErrStationExists) {
		t.Fatal("duplicate station accepted")
	}
	if _, err := NewEmpty(placedOptions(), []uint32{1}, 0); err == nil {
		t.Fatal("zero length accepted")
	}
}

// TestStatsRefreshAfterKillStation is the regression test for the stats
// epoch cache: a kill must install a fresh epoch, so the next Stats call
// refetches and reports the dead station as failed instead of serving its
// stale resident counts.
func TestStatsRefreshAfterKillStation(t *testing.T) {
	data := map[uint32]map[core.PersonID]pattern.Pattern{
		1: {1: {1, 2, 3}},
		2: {2: {4, 5, 6}, 3: {7, 8, 9}},
	}
	c, err := New(placedOptions(), data)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	defer c.Shutdown()
	ctx := context.Background()

	before, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if before.TotalResidents() != 3 || before.StationsFailed != 0 {
		t.Fatalf("before kill: %+v", before)
	}

	if err := c.KillStation(2); err != nil {
		t.Fatal(err)
	}
	after, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if after.Epoch == before.Epoch {
		t.Fatalf("epoch did not advance on kill (still %d)", after.Epoch)
	}
	if after.StationsFailed != 1 {
		t.Fatalf("StationsFailed = %d, want 1 (the killed station)", after.StationsFailed)
	}
	if after.TotalResidents() != 1 {
		t.Fatalf("TotalResidents = %d, want 1 — dead station's residents served stale", after.TotalResidents())
	}
	for _, s := range after.Stations {
		if s.Station == 2 {
			t.Fatalf("dead station still listed: %+v", after.Stations)
		}
	}
}
