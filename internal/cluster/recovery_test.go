package cluster

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"

	"dimatch/internal/core"
	"dimatch/internal/pattern"
	"dimatch/internal/store"
	"dimatch/internal/store/wal"
	"dimatch/internal/transport"
	"dimatch/internal/wire"
)

// openWAL opens one station's WAL backend under dir.
func openWAL(t *testing.T, dir string, id uint32) *wal.Store {
	t.Helper()
	s, err := wal.Open(filepath.Join(dir, fmt.Sprintf("station-%d", id)), wal.Options{
		// Aggressive folding so restarts exercise snapshot + log replay, not
		// just log replay.
		SnapshotEvery: 8,
	})
	if err != nil {
		t.Fatalf("wal.Open: %v", err)
	}
	return s
}

// restartStation is the crash-and-rejoin path under test: sever the link
// (the in-process stand-in for kill -9), drop the member, reopen the same
// WAL directory, and rejoin through recovery. Churn is sequential and every
// batch is acked after its append, so the store on disk holds exactly the
// batches the cluster saw acknowledged.
func restartStation(t *testing.T, c *Cluster, dir string, id uint32) {
	t.Helper()
	ctx := context.Background()
	if err := c.KillStation(id); err != nil {
		t.Fatalf("KillStation(%d): %v", id, err)
	}
	if err := c.RemoveStation(ctx, id); err != nil {
		t.Fatalf("RemoveStation(%d): %v", id, err)
	}
	st := openWAL(t, dir, id)
	if err := c.AddStoredStation(ctx, id, nil, st); err != nil {
		t.Fatalf("AddStoredStation(%d): %v", id, err)
	}
}

// TestRecoveryEquivalence is the property pin: a cluster whose stations are
// hard-stopped and recovered from their WALs at random churn points must be
// observationally identical — residents, digests, search results — to a twin
// that never restarted. Run under -race in CI (recovery-chaos job).
func TestRecoveryEquivalence(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	ids := []uint32{0, 1, 2, 3}

	stores := make(map[uint32]store.Store, len(ids))
	for _, id := range ids {
		stores[id] = openWAL(t, dir, id)
	}
	durable, err := NewStored(Options{}, stores, 3)
	if err != nil {
		t.Fatal(err)
	}
	durable.Start()
	t.Cleanup(func() { _ = durable.Shutdown() })

	twin, err := NewEmpty(Options{}, ids, 3)
	if err != nil {
		t.Fatal(err)
	}
	twin.Start()
	t.Cleanup(func() { _ = twin.Shutdown() })

	rng := rand.New(rand.NewSource(42))
	restartAt := map[int]bool{23: true, 47: true, 71: true}
	next := core.PersonID(1)
	type placedAt struct {
		person  core.PersonID
		station uint32
	}
	var live []placedAt

	both := func(op func(c *Cluster) error) {
		t.Helper()
		if err := op(durable); err != nil {
			t.Fatalf("durable: %v", err)
		}
		if err := op(twin); err != nil {
			t.Fatalf("twin: %v", err)
		}
	}

	for step := 0; step < 90; step++ {
		if restartAt[step] {
			restartStation(t, durable, dir, ids[rng.Intn(len(ids))])
		}
		switch {
		case len(live) == 0 || rng.Intn(3) > 0:
			p := next
			next++
			s := ids[rng.Intn(len(ids))]
			pat := pattern.Pattern{rng.Int63n(900) + 1, rng.Int63n(900), rng.Int63n(900)}
			both(func(c *Cluster) error {
				return c.Ingest(ctx, s, map[core.PersonID]pattern.Pattern{p: pat})
			})
			live = append(live, placedAt{person: p, station: s})
		default:
			i := rng.Intn(len(live))
			both(func(c *Cluster) error {
				return c.Evict(ctx, live[i].station, []core.PersonID{live[i].person})
			})
			live = append(live[:i], live[i+1:]...)
		}

		if step%15 != 14 {
			continue
		}
		queries := []core.Query{
			{ID: 1, Locals: []pattern.Pattern{{rng.Int63n(900) + 1, rng.Int63n(900), rng.Int63n(900)}}},
			{ID: 2, Locals: []pattern.Pattern{{5, 6, 7}}},
		}
		wantOut, err := twin.Search(ctx, queries, WithRouting(RoutingFull))
		if err != nil {
			t.Fatal(err)
		}
		full, err := durable.Search(ctx, queries, WithRouting(RoutingFull))
		if err != nil {
			t.Fatal(err)
		}
		assertSameResults(t, fmt.Sprintf("step %d full", step), queries, wantOut, full)
		routed, err := durable.Search(ctx, queries)
		if err != nil {
			t.Fatal(err)
		}
		assertSameResults(t, fmt.Sprintf("step %d routed", step), queries, wantOut, routed)
	}

	// Per-station residents must agree exactly: recovery restored each
	// station's set, not just the union.
	dStats, err := durable.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	tStats, err := twin.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if dStats.StationsFailed != 0 || tStats.StationsFailed != 0 {
		t.Fatalf("stats failures: durable %d, twin %d", dStats.StationsFailed, tStats.StationsFailed)
	}
	if len(dStats.Stations) != len(tStats.Stations) {
		t.Fatalf("station counts differ: %d vs %d", len(dStats.Stations), len(tStats.Stations))
	}
	for i := range dStats.Stations {
		d, w := dStats.Stations[i], tStats.Stations[i]
		if d.Station != w.Station || d.Residents != w.Residents || d.StorageBytes != w.StorageBytes {
			t.Fatalf("station %d diverged after recovery: %+v vs twin %+v", d.Station, d, w)
		}
	}
}

// TestStoredStationDigestRecovery pins digest byte-identity across a
// restart: a digest folded into a snapshot is recovered verbatim, and a
// digest rebuilt after log replay is byte-identical to the one a
// never-restarted station would serve, because index.Build is deterministic
// in the resident set.
func TestStoredStationDigestRecovery(t *testing.T) {
	dir := t.TempDir()
	st, err := wal.Open(dir, wal.Options{SnapshotEvery: 1, SnapshotBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	locals := map[core.PersonID]pattern.Pattern{
		7: {3, -1, 4},
		9: {2, 2, 2},
	}
	_, stationEnd := transport.Pipe(nil, nil)
	s, err := NewStoredStation(1, locals, stationEnd, st)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.ensureSummary(); err != nil {
		t.Fatal(err)
	}
	want := wire.EncodeSummaryPayload(s.summary, 1)

	// Fold the log into a snapshot that carries the memoized digest.
	folded, err := st.Compact(func() (store.Image, error) {
		return store.Image{Persons: s.persons, Locals: s.locals, Digest: s.summary}, nil
	})
	if err != nil || !folded {
		t.Fatalf("Compact: folded=%v err=%v", folded, err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart: the digest comes back from the snapshot without a rebuild.
	st2, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, stationEnd2 := transport.Pipe(nil, nil)
	s2, err := NewStoredStation(1, nil, stationEnd2, st2)
	if err != nil {
		t.Fatal(err)
	}
	if s2.summary == nil {
		t.Fatal("snapshot digest not recovered into the station")
	}
	if got := wire.EncodeSummaryPayload(s2.summary, 1); !bytes.Equal(got, want) {
		t.Fatalf("recovered digest drifted:\n got %x\nwant %x", got, want)
	}

	// Append past the snapshot: the digest no longer covers the store, so a
	// restart rebuilds it lazily — and lands on the same bytes.
	if err := s2.persist(store.Batch{Op: store.OpIngest,
		Persons: []core.PersonID{12}, Locals: []pattern.Pattern{{8, 8, 8}}}); err != nil {
		t.Fatal(err)
	}
	s2.upsert(12, pattern.Pattern{8, 8, 8})
	s2.summary = nil
	if err := s2.ensureSummary(); err != nil {
		t.Fatal(err)
	}
	wantGrown := wire.EncodeSummaryPayload(s2.summary, 1)
	if err := st2.Close(); err != nil {
		t.Fatal(err)
	}

	st3, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st3.Close()
	_, stationEnd3 := transport.Pipe(nil, nil)
	s3, err := NewStoredStation(1, nil, stationEnd3, st3)
	if err != nil {
		t.Fatal(err)
	}
	if s3.summary != nil {
		t.Fatal("stale digest served after post-snapshot appends")
	}
	if err := s3.ensureSummary(); err != nil {
		t.Fatal(err)
	}
	if got := wire.EncodeSummaryPayload(s3.summary, 1); !bytes.Equal(got, wantGrown) {
		t.Fatalf("rebuilt digest drifted:\n got %x\nwant %x", got, wantGrown)
	}
}

// TestRecoveryDeltaOnlyRebalance pins the rejoin cost: a placed cluster
// whose station restarts from its WAL re-replicates only the copies placed
// while it was down — not its whole resident set.
func TestRecoveryDeltaOnlyRebalance(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	ids := []uint32{0, 1, 2}
	stores := make(map[uint32]store.Store, len(ids))
	for _, id := range ids {
		stores[id] = openWAL(t, dir, id)
	}
	c, err := NewStored(Options{}, stores, 2)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	t.Cleanup(func() { _ = c.Shutdown() })

	placed := make(map[core.PersonID]pattern.Pattern, 40)
	for i := 1; i <= 40; i++ {
		placed[core.PersonID(i)] = pattern.Pattern{int64(i), int64(i + 1)}
	}
	if err := c.Place(ctx, placed, WithReplication(2)); err != nil {
		t.Fatal(err)
	}

	// Hard-stop station 2 and drop it; the departure heal restores R=2 on
	// the survivors.
	if err := c.KillStation(2); err != nil {
		t.Fatal(err)
	}
	if err := c.RemoveStation(ctx, 2); err != nil {
		t.Fatal(err)
	}

	// Five more persons arrive while the station is down — the only copies
	// its recovered state can be missing.
	late := make(map[core.PersonID]pattern.Pattern, 5)
	for i := 41; i <= 45; i++ {
		late[core.PersonID(i)] = pattern.Pattern{int64(i), int64(i + 1)}
	}
	if err := c.Place(ctx, late, WithReplication(2)); err != nil {
		t.Fatal(err)
	}

	// Rejoin by hand — AddStoredStation's steps, with the heal replaced by
	// an explicit Rebalance so the report is observable.
	st := openWAL(t, dir, 2)
	center, stationEnd := transport.Pipe(c.downMeter, c.upMeter)
	station, err := NewStoredStation(2, nil, stationEnd, st)
	if err != nil {
		t.Fatal(err)
	}
	if station.patternLength() != 2 {
		t.Fatalf("recovered pattern length %d, want 2 — WAL came back empty?", station.patternLength())
	}
	recovered := len(station.persons)
	if recovered == 0 {
		t.Fatal("station 2 recovered no residents")
	}
	c.mu.Lock()
	c.serveLocked(station)
	c.addMemberLocked(2, transport.NewMux(center))
	c.mu.Unlock()
	c.summaries.invalidate(2)
	c.notifyMembership()

	report, err := c.Rebalance(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if report.Lost != 0 {
		t.Fatalf("rebalance lost %d persons", report.Lost)
	}
	// Delta-only: at most the five late arrivals need copying onto the
	// rejoined station. Full re-replication would copy its entire share
	// (~2/3 of 45 persons at R=2 over 3 stations).
	if report.Copied > len(late) {
		t.Fatalf("rejoin copied %d patterns — more than the %d placed while down (recovered %d)",
			report.Copied, len(late), recovered)
	}

	// Recall is whole: every placed person is still found.
	queries := make([]core.Query, 0, 45)
	for p, l := range placed {
		_ = p
		queries = append(queries, core.Query{ID: core.QueryID(len(queries) + 1), Locals: []pattern.Pattern{l}})
	}
	for _, l := range late {
		queries = append(queries, core.Query{ID: core.QueryID(len(queries) + 1), Locals: []pattern.Pattern{l}})
	}
	out, err := c.Search(ctx, queries, WithRouting(RoutingFull))
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range queries {
		if len(out.PerQuery[q.ID]) == 0 {
			t.Fatalf("query %d found nothing after rejoin", q.ID)
		}
	}
}
