package cluster

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"dimatch/internal/core"
	"dimatch/internal/pattern"
	"dimatch/internal/transport"
)

// paperScenario raw storage: 8 persons × 3 values × 8 bytes.
const paperScenarioRawBytes = 8 * 3 * 8

func TestIngestEvictVisibleToSearch(t *testing.T) {
	c := startCluster(t, testOptions(), paperScenario())
	ctx := context.Background()
	q := paperQuery()

	// Person 30 splits the query exactly like person 10 — but is not
	// resident yet.
	if err := c.Ingest(ctx, 0, map[core.PersonID]pattern.Pattern{30: {1, 2, 3}}); err != nil {
		t.Fatal(err)
	}
	if err := c.Ingest(ctx, 1, map[core.PersonID]pattern.Pattern{30: {2, 2, 2}}); err != nil {
		t.Fatal(err)
	}
	out, err := c.Search(ctx, []core.Query{q}, WithStrategy(StrategyWBF), WithVerify(true))
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range out.PerQuery[1] {
		if r.Person == 30 {
			found = true
			if r.Score() != 1.0 {
				t.Fatalf("ingested person 30 score = %v, want 1", r.Score())
			}
		}
	}
	if !found {
		t.Fatalf("ingested person 30 not retrieved: %v", out.Persons(1))
	}

	// Evicting one half degrades them to a partial match; evicting both
	// removes them entirely.
	if err := c.Evict(ctx, 1, []core.PersonID{30}); err != nil {
		t.Fatal(err)
	}
	out, err = c.Search(ctx, []core.Query{q}, WithStrategy(StrategyWBF))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range out.PerQuery[1] {
		if r.Person == 30 && r.Score() == 1.0 {
			t.Fatal("person 30 still scores 1 after half their data was evicted")
		}
	}
	if err := c.Evict(ctx, 0, []core.PersonID{30}); err != nil {
		t.Fatal(err)
	}
	out, err = c.Search(ctx, []core.Query{q}, WithStrategy(StrategyWBF))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range out.Persons(1) {
		if p == 30 {
			t.Fatal("person 30 retrieved after full eviction")
		}
	}
}

func TestIngestReplacesExistingResident(t *testing.T) {
	c := startCluster(t, testOptions(), paperScenario())
	ctx := context.Background()

	// Person 13 currently holds {7,1,9} at station 0 and never matches the
	// paper query; replacing their pattern with the query's station-0 half
	// upgrades them to a partial match.
	if err := c.Ingest(ctx, 0, map[core.PersonID]pattern.Pattern{13: {1, 2, 3}}); err != nil {
		t.Fatal(err)
	}
	out, err := c.Search(ctx, []core.Query{paperQuery()}, WithStrategy(StrategyWBF))
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range out.PerQuery[1] {
		if r.Person == 13 {
			found = true
			if r.Score() != 0.5 {
				t.Fatalf("replaced person 13 score = %v, want 0.5", r.Score())
			}
		}
	}
	if !found {
		t.Fatalf("person 13 not retrieved after pattern replacement: %v", out.Persons(1))
	}

	// Stats must reflect a replacement, not an insertion.
	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Stations[0].Residents != 4 {
		t.Fatalf("station 0 residents = %d after replacement, want 4", st.Stations[0].Residents)
	}
}

func TestStatsReportsAndCachesPerEpoch(t *testing.T) {
	c := startCluster(t, testOptions(), paperScenario())
	ctx := context.Background()

	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	wantResidents := map[uint32]int{0: 4, 1: 2, 2: 2}
	if len(st.Stations) != 3 || st.StationsFailed != 0 {
		t.Fatalf("stats = %+v", st)
	}
	for _, s := range st.Stations {
		if s.Residents != wantResidents[s.Station] {
			t.Fatalf("station %d residents = %d, want %d", s.Station, s.Residents, wantResidents[s.Station])
		}
		if s.StorageBytes != 8*3*uint64(s.Residents) {
			t.Fatalf("station %d storage = %d", s.Station, s.StorageBytes)
		}
		if s.PatternLength != 3 {
			t.Fatalf("station %d length = %d, want 3", s.Station, s.PatternLength)
		}
	}
	if st.TotalResidents() != 8 || st.TotalStorageBytes() != paperScenarioRawBytes {
		t.Fatalf("totals = %d residents, %d bytes", st.TotalResidents(), st.TotalStorageBytes())
	}

	// Unchanged cluster: the snapshot is served from the epoch cache — no
	// frames cross the links.
	quiet := c.downMeter.Messages()
	st2, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.downMeter.Messages(); got != quiet {
		t.Fatalf("cached Stats sent %d frames", got-quiet)
	}
	if st2.Epoch != st.Epoch || st2.TotalStorageBytes() != st.TotalStorageBytes() {
		t.Fatalf("cached snapshot diverged: %+v vs %+v", st2, st)
	}

	// A mutation installs a fresh epoch whose cache is seeded from the old
	// snapshot with the mutated station refreshed: totals update without a
	// full stats fan-out.
	if err := c.Ingest(ctx, 1, map[core.PersonID]pattern.Pattern{40: {9, 9, 9}}); err != nil {
		t.Fatal(err)
	}
	quiet = c.downMeter.Messages()
	st3, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.downMeter.Messages(); got != quiet {
		t.Fatalf("post-mutation Stats sent %d frames despite the seeded cache", got-quiet)
	}
	if st3.Epoch <= st.Epoch {
		t.Fatalf("epoch did not advance: %d -> %d", st.Epoch, st3.Epoch)
	}
	if st3.TotalResidents() != 9 || st3.TotalStorageBytes() != paperScenarioRawBytes+24 {
		t.Fatalf("post-ingest totals = %d residents, %d bytes", st3.TotalResidents(), st3.TotalStorageBytes())
	}

	// The returned snapshot is the caller's to mutate: scribbling on it
	// must not corrupt the shared cache.
	st3.Stations[0].StorageBytes = 1
	st4, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st4.Stations[0].StorageBytes == 1 {
		t.Fatal("caller mutation leaked into the epoch cache")
	}
}

// TestStationRawBytesMatchesOverLinks pins the satellite fix: an in-process
// cluster and a link-backed cluster over the same data report the same
// StationRawBytes, both sourced from the stations' own stats replies.
func TestStationRawBytesMatchesOverLinks(t *testing.T) {
	ctx := context.Background()
	q := []core.Query{paperQuery()}

	inProc := startCluster(t, testOptions(), paperScenario())
	outA, err := inProc.Search(ctx, q)
	if err != nil {
		t.Fatal(err)
	}

	data := paperScenario()
	links := make(map[uint32]transport.Link, len(data))
	for id := range data {
		center, stationEnd := transport.Pipe(nil, nil)
		links[id] = center
		id, stationEnd := id, stationEnd
		go func() {
			if err := ServeStation(id, data[id], stationEnd); err != nil {
				t.Errorf("station %d: %v", id, err)
			}
		}()
	}
	linked, err := NewWithLinks(testOptions(), links, 3, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = linked.Shutdown() })
	outB, err := linked.Search(ctx, q)
	if err != nil {
		t.Fatal(err)
	}

	if outA.Cost.StationRawBytes != paperScenarioRawBytes {
		t.Fatalf("in-process StationRawBytes = %d, want %d", outA.Cost.StationRawBytes, paperScenarioRawBytes)
	}
	if outB.Cost.StationRawBytes != paperScenarioRawBytes {
		t.Fatalf("link-backed StationRawBytes = %d, want %d", outB.Cost.StationRawBytes, paperScenarioRawBytes)
	}
}

// TestConcurrentIngestSearch races mutations against searches under -race:
// no search may error, and residents never touched by the churn stay
// retrievable throughout.
func TestConcurrentIngestSearch(t *testing.T) {
	c := startCluster(t, testOptions(), paperScenario())
	ctx := context.Background()
	queries := []core.Query{paperQuery()}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 40; i++ {
			if err := c.Ingest(ctx, 0, map[core.PersonID]pattern.Pattern{50: {2, 2, 2}}); err != nil {
				t.Errorf("ingest: %v", err)
				return
			}
			if err := c.Evict(ctx, 0, []core.PersonID{50}); err != nil {
				t.Errorf("evict: %v", err)
				return
			}
		}
	}()
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				out, err := c.Search(ctx, queries, WithStrategy(StrategyWBF))
				if err != nil {
					t.Errorf("search: %v", err)
					return
				}
				has10, has11 := false, false
				for _, p := range out.Persons(1) {
					has10 = has10 || p == 10
					has11 = has11 || p == 11
				}
				if !has10 || !has11 {
					t.Errorf("stable residents lost mid-churn: %v", out.Persons(1))
					return
				}
				if out.Cost.StationsFailed != 0 {
					t.Errorf("StationsFailed = %d during pure ingest churn", out.Cost.StationsFailed)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestRemoveStationDuringFanOut removes a station while a search is blocked
// on its reply: the search completes degraded — the departure is counted in
// StationsFailed, never surfaced as an error — and later searches fan out
// to the shrunken membership only.
func TestRemoveStationDuringFanOut(t *testing.T) {
	c, _ := manualCluster(t, testOptions())
	queries := []core.Query{paperQuery()}

	type result struct {
		out *Outcome
		err error
	}
	resc := make(chan result, 1)
	go func() {
		out, err := c.Search(context.Background(), queries, WithStrategy(StrategyWBF))
		resc <- result{out, err}
	}()
	time.Sleep(10 * time.Millisecond) // the fan-out is now waiting on station 2
	if err := c.RemoveStation(context.Background(), 2); err != nil {
		t.Fatal(err)
	}
	select {
	case r := <-resc:
		if r.err != nil {
			t.Fatalf("search across removal failed: %v", r.err)
		}
		if r.out.Cost.StationsFailed != 1 {
			t.Fatalf("StationsFailed = %d, want 1 (the removed station)", r.out.Cost.StationsFailed)
		}
		if r.out.Cost.MessagesDown != 2 {
			t.Fatalf("MessagesDown = %d, want 2 (pinned to the 3-station epoch, one removed)", r.out.Cost.MessagesDown)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("search hung across RemoveStation")
	}

	if got := c.Stations(); got != 2 {
		t.Fatalf("Stations() = %d after removal, want 2", got)
	}
	out, err := c.Search(context.Background(), queries)
	if err != nil {
		t.Fatal(err)
	}
	if out.Cost.StationsFailed != 0 || out.Cost.MessagesDown != 2 {
		t.Fatalf("post-removal search: failed=%d down=%d, want 0/2", out.Cost.StationsFailed, out.Cost.MessagesDown)
	}
}

func TestLifecycleSentinelErrors(t *testing.T) {
	c := startCluster(t, testOptions(), paperScenario())
	ctx := context.Background()

	if err := c.Ingest(ctx, 99, map[core.PersonID]pattern.Pattern{1: {1, 2, 3}}); !errors.Is(err, ErrUnknownStation) {
		t.Fatalf("ingest unknown station err = %v, want ErrUnknownStation", err)
	}
	if err := c.Ingest(ctx, 0, map[core.PersonID]pattern.Pattern{1: {1, 2}}); !errors.Is(err, ErrLengthMismatch) {
		t.Fatalf("ingest short pattern err = %v, want ErrLengthMismatch", err)
	}
	if err := c.Evict(ctx, 99, []core.PersonID{1}); !errors.Is(err, ErrUnknownStation) {
		t.Fatalf("evict unknown station err = %v, want ErrUnknownStation", err)
	}
	if err := c.AddStation(ctx, 0, nil); !errors.Is(err, ErrStationExists) {
		t.Fatalf("duplicate AddStation err = %v, want ErrStationExists", err)
	}
	if err := c.AddStation(ctx, 7, map[core.PersonID]pattern.Pattern{1: {1, 2, 3, 4}}); !errors.Is(err, ErrLengthMismatch) {
		t.Fatalf("AddStation long pattern err = %v, want ErrLengthMismatch", err)
	}
	if err := c.RemoveStation(ctx, 99); !errors.Is(err, ErrUnknownStation) {
		t.Fatalf("remove unknown station err = %v, want ErrUnknownStation", err)
	}

	// No-ops succeed without touching the wire.
	if err := c.Ingest(ctx, 0, nil); err != nil {
		t.Fatalf("empty ingest: %v", err)
	}
	if err := c.Evict(ctx, 0, nil); err != nil {
		t.Fatalf("empty evict: %v", err)
	}

	closed := startCluster(t, testOptions(), paperScenario())
	if err := closed.Shutdown(); err != nil {
		t.Fatal(err)
	}
	if err := closed.Ingest(ctx, 0, map[core.PersonID]pattern.Pattern{1: {1, 2, 3}}); !errors.Is(err, ErrClusterClosed) {
		t.Fatalf("ingest after shutdown err = %v, want ErrClusterClosed", err)
	}
	if err := closed.AddStation(ctx, 9, nil); !errors.Is(err, ErrClusterClosed) {
		t.Fatalf("AddStation after shutdown err = %v, want ErrClusterClosed", err)
	}
	if err := closed.RemoveStation(ctx, 0); !errors.Is(err, ErrClusterClosed) {
		t.Fatalf("RemoveStation after shutdown err = %v, want ErrClusterClosed", err)
	}
	if _, err := closed.Stats(ctx); !errors.Is(err, ErrClusterClosed) {
		t.Fatalf("Stats after shutdown err = %v, want ErrClusterClosed", err)
	}
}

func TestAddStationLinkHandshake(t *testing.T) {
	c := startCluster(t, testOptions(), paperScenario())
	ctx := context.Background()

	// A joining station whose resident patterns have the wrong length is
	// rejected by the stats handshake.
	center, stationEnd := transport.Pipe(nil, nil)
	go func() {
		_ = ServeStation(9, map[core.PersonID]pattern.Pattern{70: {1, 2, 3, 4}}, stationEnd)
	}()
	if err := c.AddStationLink(ctx, 9, center); !errors.Is(err, ErrLengthMismatch) {
		t.Fatalf("mismatched link err = %v, want ErrLengthMismatch", err)
	}

	// A compatible one joins and serves searches.
	center, stationEnd = transport.Pipe(nil, nil)
	go func() {
		_ = ServeStation(9, map[core.PersonID]pattern.Pattern{70: {3, 4, 5}}, stationEnd)
	}()
	if err := c.AddStationLink(ctx, 9, center); err != nil {
		t.Fatal(err)
	}
	q := core.Query{ID: 2, Locals: []pattern.Pattern{{3, 4, 5}}}
	out, err := c.Search(ctx, []core.Query{q}, WithStrategy(StrategyWBF), WithVerify(true))
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, p := range out.Persons(2) {
		found = found || p == 70
	}
	if !found {
		t.Fatalf("linked station's resident not retrieved: %v", out.Persons(2))
	}
}

// TestLiveMutationEndToEnd is the acceptance scenario: on a running cluster,
// Ingest a new person's first piece and AddStation a station holding the
// second, then prove a WBF search with verification finds the target whose
// pattern pieces span the new station — while a search that started before
// any mutation completes successfully against its own (pre-mutation) epoch.
func TestLiveMutationEndToEnd(t *testing.T) {
	c, silent := manualCluster(t, testOptions()) // stations 0,1 served; 2 silent
	ctx := context.Background()

	// Search A pins the 3-station epoch and stalls on silent station 2.
	type result struct {
		out *Outcome
		err error
	}
	resA := make(chan result, 1)
	go func() {
		out, err := c.Search(ctx, []core.Query{paperQuery()}, WithStrategy(StrategyWBF))
		resA <- result{out, err}
	}()
	time.Sleep(10 * time.Millisecond) // A's fan-out is now in flight

	// Mutations land while A is in flight: person 20's pieces will span the
	// ingested store (station 0) and the brand-new station 3.
	if err := c.Ingest(ctx, 0, map[core.PersonID]pattern.Pattern{20: {5, 0, 1}}); err != nil {
		t.Fatal(err)
	}
	if err := c.AddStation(ctx, 3, map[core.PersonID]pattern.Pattern{20: {1, 4, 2}}); err != nil {
		t.Fatal(err)
	}
	if got := c.Stations(); got != 4 {
		t.Fatalf("Stations() = %d after AddStation, want 4", got)
	}

	// Revive station 2 so both the pinned search and new searches can hear
	// from it.
	go func() {
		if err := ServeStation(2, paperScenario()[2], silent); err != nil {
			t.Errorf("revived station: %v", err)
		}
	}()

	// Search B, issued after the mutations, runs over the 4-station epoch
	// and — with verification — finds the spanning target exactly. Routing
	// is forced off: the message-count assertions below pin full fan-out
	// coverage of the new epoch (summary routing would legitimately skip
	// the stations that cannot answer; routing_test.go covers that).
	qB := core.Query{ID: 2, Locals: []pattern.Pattern{{5, 0, 1}, {1, 4, 2}}}
	outB, err := c.Search(ctx, []core.Query{qB}, WithStrategy(StrategyWBF), WithVerify(true), WithRouting(RoutingFull))
	if err != nil {
		t.Fatal(err)
	}
	if outB.Cost.StationsFailed != 0 {
		t.Fatalf("B StationsFailed = %d", outB.Cost.StationsFailed)
	}
	found := false
	for _, r := range outB.PerQuery[2] {
		if r.Person == 20 {
			found = true
			if r.Score() != 1.0 {
				t.Fatalf("spanning target score = %v, want 1 (verified)", r.Score())
			}
		}
	}
	if !found {
		t.Fatalf("target spanning ingest + new station not retrieved: %v", outB.Persons(2))
	}
	// Both fan-out rounds (query + verification fetch) covered 4 stations.
	if outB.Cost.MessagesDown != 8 {
		t.Fatalf("B MessagesDown = %d, want 8 (two rounds over four stations)", outB.Cost.MessagesDown)
	}

	// Search A completes against its own epoch: three stations, no
	// failures, untouched by the concurrent membership change.
	select {
	case r := <-resA:
		if r.err != nil {
			t.Fatalf("pre-mutation search failed: %v", r.err)
		}
		if r.out.Cost.MessagesDown != 3 {
			t.Fatalf("A MessagesDown = %d, want 3 (pinned pre-mutation epoch)", r.out.Cost.MessagesDown)
		}
		if r.out.Cost.StationsFailed != 0 {
			t.Fatalf("A StationsFailed = %d", r.out.Cost.StationsFailed)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("pre-mutation search did not complete")
	}
}
