package cluster

// Hooks for the streaming ingest pipeline (internal/stream). The pipeline
// lives outside this package and imports it, so everything it needs from
// the coordinator — the alive membership for HRW shard routing, placement
// intents for replica-aware aggregation, membership-change notification
// for shard re-keying, and a health-reporting slot in Stats — is exposed
// here as small, individually documented hooks rather than by handing the
// pipeline the cluster's internals.

import (
	"dimatch/internal/core"
	"dimatch/internal/metrics"
)

// AliveStationIDs returns the current epoch's non-dead member stations in
// ascending order. It is the membership view HRW shard routing keys on: a
// streaming encoder computes placement.Pick over exactly this set, so every
// encoder (and the reconciliation loop) derives identical targets from
// identical membership.
func (c *Cluster) AliveStationIDs() []uint32 {
	ids, _ := c.aliveMembers()
	return append([]uint32(nil), ids...)
}

// NotePlaced records persons as under automatic placement at the given
// replication factor without moving any data. The streaming pipeline calls
// it BEFORE flushing a person's replica copies — the same
// intent-before-copies ordering Place uses — so a search racing the first
// flush already dedupes the replica reports instead of summing them (a sum
// over full replicas exceeds 1 and Algorithm 3 deletes the true match).
// Marking early is harmless the other way: max-dedup over zero or one
// reports ranks identically to summation. r <= 0 falls back to
// DefaultReplication.
func (c *Cluster) NotePlaced(persons []core.PersonID, r int) {
	if len(persons) == 0 {
		return
	}
	if r <= 0 {
		r = DefaultReplication
	}
	t := c.placementTable()
	for _, p := range persons {
		t.Set(p, r)
	}
}

// OnMembershipChange registers fn to run after every membership mutation —
// AddStation, AddStationLink, RemoveStation, KillStation — once the new
// epoch is installed. Ingest/evict epochs do not fire it. The callback is
// invoked synchronously with no cluster lock held, so it may call back into
// the cluster (AliveStationIDs, Stats, mutations); it should still return
// promptly, since the mutation that triggered it waits. The returned cancel
// function unregisters fn and is idempotent.
func (c *Cluster) OnMembershipChange(fn func()) (cancel func()) {
	c.hookMu.Lock()
	if c.memberSubs == nil {
		c.memberSubs = make(map[uint64]func())
	}
	c.hookSeq++
	id := c.hookSeq
	c.memberSubs[id] = fn
	c.hookMu.Unlock()
	return func() {
		c.hookMu.Lock()
		delete(c.memberSubs, id)
		c.hookMu.Unlock()
	}
}

// notifyMembership invokes every registered membership callback. Callers
// must not hold c.mu: callbacks re-enter the cluster.
func (c *Cluster) notifyMembership() {
	c.hookMu.Lock()
	fns := make([]func(), 0, len(c.memberSubs))
	for _, fn := range c.memberSubs {
		fns = append(fns, fn)
	}
	c.hookMu.Unlock()
	for _, fn := range fns {
		fn()
	}
}

// RegisterStreamStats registers a health-snapshot provider — typically one
// streaming Ingestor's Report — to be merged into Cluster.Stats' Stream
// field. Multiple pipelines may register; their snapshots merge (totals
// sum, per-station entries combine). The returned cancel function
// unregisters the provider and is idempotent.
func (c *Cluster) RegisterStreamStats(fn func() *metrics.StreamStats) (cancel func()) {
	c.hookMu.Lock()
	if c.streamStats == nil {
		c.streamStats = make(map[uint64]func() *metrics.StreamStats)
	}
	c.hookSeq++
	id := c.hookSeq
	c.streamStats[id] = fn
	c.hookMu.Unlock()
	return func() {
		c.hookMu.Lock()
		delete(c.streamStats, id)
		c.hookMu.Unlock()
	}
}

// streamHealth merges every registered pipeline's snapshot and decorates
// each per-station entry with the station link's in-flight exchange count —
// the backlog past the pipeline's own queues. Returns nil when no pipeline
// is registered.
func (c *Cluster) streamHealth() *metrics.StreamStats {
	c.hookMu.Lock()
	fns := make([]func() *metrics.StreamStats, 0, len(c.streamStats))
	for _, fn := range c.streamStats {
		fns = append(fns, fn)
	}
	c.hookMu.Unlock()
	if len(fns) == 0 {
		return nil
	}
	parts := make([]*metrics.StreamStats, 0, len(fns))
	for _, fn := range fns {
		parts = append(parts, fn())
	}
	merged := metrics.MergeStreamStats(parts)
	if merged == nil {
		return nil
	}
	ep := c.currentEpoch()
	for i := range merged.Stations {
		if j := ep.find(merged.Stations[i].Station); j >= 0 {
			merged.Stations[i].LinkInFlight = ep.muxes[j].InFlight()
		}
	}
	return merged
}
