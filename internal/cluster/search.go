package cluster

import (
	"errors"
	"fmt"
	"strings"

	"dimatch/internal/core"
)

// Sentinel errors returned by Search. They wrap into the errors.Is chain so
// callers can branch without string matching.
var (
	// ErrNoQueries is returned when Search is called with an empty batch.
	ErrNoQueries = errors.New("cluster: no queries")
	// ErrLengthMismatch is returned when a query's time-series length does
	// not match the cluster's.
	ErrLengthMismatch = errors.New("cluster: query length mismatch")
	// ErrClusterClosed is returned by Search after Shutdown.
	ErrClusterClosed = errors.New("cluster: cluster closed")
	// ErrCancelled is returned when the search's context is cancelled or
	// times out; it wraps the context's error.
	ErrCancelled = errors.New("cluster: search cancelled")
	// ErrUnknownStrategy is returned for a strategy outside the known set.
	ErrUnknownStrategy = errors.New("cluster: unknown strategy")
	// ErrUnknownRouting is returned for a routing mode outside the known set.
	ErrUnknownRouting = errors.New("cluster: unknown routing mode")
	// ErrUnknownStation is returned by lifecycle calls naming a station that
	// is not a member of the current epoch.
	ErrUnknownStation = errors.New("cluster: unknown station")
	// ErrStationExists is returned by AddStation/AddStationLink when the id
	// is already a member.
	ErrStationExists = errors.New("cluster: station already exists")
	// ErrNoAliveStations is returned by Place and Rebalance when every
	// member station is dead — there is nowhere to put (or pull) a copy.
	ErrNoAliveStations = errors.New("cluster: no alive stations")
)

// ParseStrategy is the inverse of Strategy.String: it maps "naive", "bf" and
// "wbf" (case-insensitively) to the strategy constants.
func ParseStrategy(s string) (Strategy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "naive":
		return StrategyNaive, nil
	case "bf":
		return StrategyBF, nil
	case "wbf":
		return StrategyWBF, nil
	default:
		return 0, fmt.Errorf("%w: %q (want naive, bf or wbf)", ErrUnknownStrategy, s)
	}
}

// RoutingMode selects how a WBF search picks the stations it fans out to.
type RoutingMode int

const (
	// RoutingSummary (the default) probes the coordinator's cached
	// per-station routing summaries and sends each query round only to
	// stations whose summary admits a possible match. Stations without a
	// usable summary — pre-v5 peers, failed refreshes, probes over budget —
	// are always visited, and a plan that would prune everything falls back
	// to full fan-out, so routing never loses recall; it only skips
	// exchanges that provably cannot produce a report.
	RoutingSummary RoutingMode = iota
	// RoutingFull forces the classic full fan-out: every member station is
	// visited, no summaries are fetched or probed.
	RoutingFull
	// RoutingTree keeps the per-station digests in a Bloofi-style digest tree
	// (internal/index/tree) and plans each search by descending it: a whole
	// subtree whose union digest denies every probe is pruned with one check
	// instead of one per station. Pruning stays exactly as conservative as
	// RoutingSummary — the tree's inner nodes are bitwise-OR unions, which
	// only ever over-admit — so results are identical; the mode trades a few
	// union probes for sublinear planning cost on large memberships. See
	// docs/ROUTING.md.
	RoutingTree
)

func (m RoutingMode) String() string {
	switch m {
	case RoutingSummary:
		return "summary"
	case RoutingFull:
		return "full"
	case RoutingTree:
		return "tree"
	default:
		return fmt.Sprintf("RoutingMode(%d)", int(m))
	}
}

// ParseRoutingMode is the inverse of RoutingMode.String: it maps "summary",
// "full" and "tree" (case-insensitively) to the routing constants.
func ParseRoutingMode(s string) (RoutingMode, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "summary":
		return RoutingSummary, nil
	case "full":
		return RoutingFull, nil
	case "tree":
		return RoutingTree, nil
	default:
		return 0, fmt.Errorf("%w: %q (want summary, full or tree)", ErrUnknownRouting, s)
	}
}

// searchConfig is one search's resolved knobs: the cluster Options provide
// the defaults, per-call SearchOptions override them.
type searchConfig struct {
	strategy  Strategy
	params    core.Params
	topK      int
	minScore  float64
	verify    bool
	targetFP  float64
	batchSize int
	routing   RoutingMode
	// raw, set only by the region serve loop, skips ranking, verification,
	// topK and minScore: the search returns every accumulated partial sum,
	// person-ascending. A region answering a KindRouteQuery must not finalize
	// Algorithm 3 — the root holds partials from other regions, and deleting
	// or truncating here would change the merged outcome.
	raw bool
}

// SearchOption configures a single Search call.
type SearchOption func(*searchConfig)

// WithStrategy selects the execution strategy (default StrategyWBF).
func WithStrategy(s Strategy) SearchOption {
	return func(c *searchConfig) { c.strategy = s }
}

// WithTopK limits each query's answer; <= 0 returns all qualified persons.
func WithTopK(k int) SearchOption {
	return func(c *searchConfig) { c.topK = k }
}

// WithMinScore drops WBF and naive results scoring below the threshold
// (0 keeps everything). See Options.MinScore for the semantics.
func WithMinScore(s float64) SearchOption {
	return func(c *searchConfig) { c.minScore = s }
}

// WithVerify enables (or disables) the verification phase on WBF searches
// for this call. See Options.Verify for the semantics.
func WithVerify(v bool) SearchOption {
	return func(c *searchConfig) { c.verify = v }
}

// WithTargetFP overrides the false-positive sizing target used when
// Params.Bits is zero. Values <= 0 fall back to the default 0.01.
func WithTargetFP(fp float64) SearchOption {
	return func(c *searchConfig) { c.targetFP = fp }
}

// WithBatching bounds how many queries a WBF search packs into one batched
// exchange. n <= 0 (the default) packs the whole query set into a single
// KindBatchQuery round per station; n > 1 splits the set into rounds of at
// most n queries; n == 1 disables batching entirely and runs the legacy
// pipeline — one filter and one KindWBFQuery frame per query, pipelined per
// station — which is also the path stations that never advertised wire
// version 3 are served on. BF and naive searches already move one frame per
// station and ignore the setting. See Options.BatchSize for the cluster
// default.
func WithBatching(n int) SearchOption {
	return func(c *searchConfig) { c.batchSize = n }
}

// WithRouting selects the fan-out routing mode for this call (default
// RoutingSummary, or the cluster's Options.Routing). Routing applies to WBF
// searches only: BF and naive searches always fan out to every station —
// the naive strategy needs every store by definition, and the baseline is
// kept at the paper's cost model. Use WithRouting(RoutingFull) to force the
// classic full fan-out, e.g. to measure routing's saving or to sidestep
// summary refreshes in a mutation-heavy burst.
func WithRouting(m RoutingMode) SearchOption {
	return func(c *searchConfig) { c.routing = m }
}

// withParams installs the parent's already-resolved search parameters
// verbatim. The region serve loop uses it so every tier sizes filters from
// the same Params the root did — core.SizedParams is deterministic, but
// pinning the resolved values removes even the dependency on that.
func withParams(p core.Params) SearchOption {
	return func(c *searchConfig) { c.params = p }
}

// withRaw puts the search in raw (partial-sum) mode; see searchConfig.raw.
// Only the region serve loop sets it — exporting it would invite callers to
// skip Algorithm 3's deletion step and read unranked sums as answers.
func withRaw() SearchOption {
	return func(c *searchConfig) { c.raw = true }
}

// searchDefaults resolves the cluster-level Options into a per-call config.
func (c *Cluster) searchDefaults() searchConfig {
	return searchConfig{
		strategy:  StrategyWBF,
		params:    c.opts.Params,
		topK:      c.opts.TopK,
		minScore:  c.opts.MinScore,
		verify:    c.opts.Verify,
		targetFP:  c.opts.TargetFP,
		batchSize: c.opts.BatchSize,
		routing:   c.opts.Routing,
	}
}

// resolveParams returns the search parameters, auto-sizing the filter to the
// config's false-positive target if Bits is unset. Non-positive targets are
// clamped to the 0.01 default by the sizing math itself.
func (c *Cluster) resolveParams(cfg searchConfig, queries []core.Query) (core.Params, error) {
	p := cfg.params
	if p.Bits != 0 {
		return p, nil
	}
	return core.SizedParams(p, c.length, queries, cfg.targetFP)
}
