package cluster

import (
	"context"
	"fmt"
	"sync"

	"dimatch/internal/core"
	"dimatch/internal/index"
	"dimatch/internal/pattern"
	"dimatch/internal/transport"
	"dimatch/internal/wire"
)

// Region adapts one whole Cluster into a station-shaped peer: a region
// coordinator that owns a subtree of stations and answers a parent
// coordinator over a single link. To the parent it looks like one very large
// station — it aggregates stats, serves the union routing digest of its
// subtree, and accepts every classic station kind by forwarding it to its
// own members and merging the replies — plus, for v6 parents, the delegated
// search round: a KindRouteQuery runs the full existing WBF search path over
// the region's stations and answers raw per-person partial sums
// (KindRouteReply), leaving ranking, thresholding and verification to the
// root. That division is what makes a multi-tier topology's results provably
// identical to a flat fan-out (docs/ROUTING.md).
//
// The region advertises wire.FlagRouteDelegate in its stats replies; the
// capability flag — not the wire version — is what tells a parent it may
// delegate. Because every classic kind is also served, a pre-v6 parent can
// use a region as an ordinary (big) station and still get exact results.
type Region struct {
	id   uint32
	c    *Cluster
	link transport.Link
}

// NewRegion wraps a running cluster as a region coordinator answering on
// link. The caller keeps ownership of the cluster: Serve returning (even on
// a shutdown frame) does not shut the sub-cluster down.
func NewRegion(id uint32, c *Cluster, link transport.Link) *Region {
	return &Region{id: id, c: c, link: link}
}

// ServeRegion runs a region coordinator until the parent sends a shutdown
// frame or the link closes — the goroutine (or process) body of one region
// tier. The sub-cluster must already be started.
func ServeRegion(id uint32, c *Cluster, link transport.Link) error {
	return NewRegion(id, c, link).Serve()
}

// Serve processes parent messages until a shutdown message arrives or the
// link closes. Every reply echoes its request's wire ID, so the parent can
// run many searches over this link concurrently, exactly as with a station.
func (r *Region) Serve() error {
	// The serve loop outlives any one parent exchange and has no caller
	// context to inherit; downstream fan-outs are bounded by the parent's
	// patience (a parent that gives up simply counts the region failed).
	ctx := context.Background() //dimatch:allow ctxflow — serve loop root: a region process has no parent context
	for {
		msg, err := r.link.Recv()
		if err != nil {
			if err == transport.ErrClosed {
				return nil
			}
			return fmt.Errorf("region %d: %w", r.id, err)
		}
		var reply *wire.Message
		switch msg.Kind {
		case wire.KindRouteQuery:
			reply, err = r.handleRoute(ctx, msg)
		case wire.KindBatchQuery:
			reply, err = r.handleBatchForward(ctx, msg)
		case wire.KindWBFQuery:
			reply, err = r.handleWBFForward(ctx, msg)
		case wire.KindBFQuery:
			reply, err = r.handleBFForward(ctx, msg)
		case wire.KindShipAll, wire.KindFetch:
			reply, err = r.handleDataForward(ctx, msg)
		case wire.KindDump:
			reply, err = r.handleDumpForward(ctx, msg)
		case wire.KindIngest:
			reply, err = r.handleIngest(ctx, msg)
		case wire.KindEvict:
			reply, err = r.handleEvict(ctx, msg)
		case wire.KindStats:
			reply, err = r.handleStats(ctx)
		case wire.KindSummary:
			reply = r.handleSummary(ctx)
		case wire.KindShutdown:
			return nil
		default:
			err = fmt.Errorf("region %d: unexpected message %v", r.id, msg.Kind)
		}
		if err != nil {
			return err
		}
		if reply != nil {
			if err := r.link.Send(reply.WithRequest(msg.Request)); err != nil {
				return fmt.Errorf("region %d: %w", r.id, err)
			}
		}
	}
}

// handleRoute answers the delegated search round: the full WBF search path
// over this region's stations, in raw mode — no Algorithm 3 deletion, no
// topK, no score band, no verification. The region must not finalize: the
// root holds partials from the other regions, and deleting or truncating
// here would change the merged outcome.
func (r *Region) handleRoute(ctx context.Context, msg wire.Message) (*wire.Message, error) {
	rq, err := wire.DecodeRouteQuery(msg)
	if err != nil {
		return nil, fmt.Errorf("region %d: %w", r.id, err)
	}
	mode := RoutingMode(rq.Routing)
	if mode < RoutingSummary || mode > RoutingTree {
		mode = RoutingSummary
	}
	out, err := r.c.Search(ctx, rq.Queries,
		WithStrategy(StrategyWBF),
		withParams(rq.Params),
		WithTargetFP(rq.TargetFP),
		WithBatching(rq.BatchSize),
		WithRouting(mode),
		WithTopK(0),
		WithMinScore(0),
		WithVerify(false),
		withRaw(),
	)
	if err != nil {
		return nil, fmt.Errorf("region %d: %w", r.id, err)
	}
	rr := wire.RouteReply{
		Region: r.id,
		Probes: out.Cost.SubtreeProbes,
		Pruned: uint32(out.Cost.StationsPruned),
		Failed: uint32(out.Cost.StationsFailed),
		Hops:   uint32(out.Cost.TierHops),
	}
	if visited := r.c.Stations() - out.Cost.StationsPruned; visited > 0 {
		rr.Visited = uint32(visited)
	}
	for _, q := range rq.Queries {
		for _, res := range out.PerQuery[q.ID] {
			rr.Results = append(rr.Results, wire.RouteResult{
				Query:       q.ID,
				Person:      res.Person,
				Numerator:   res.Numerator,
				Denominator: res.Denominator,
				Stations:    uint32(res.Stations),
			})
		}
	}
	reply := wire.EncodeRouteReply(rr)
	return &reply, nil
}

// handleStats aggregates the subtree into one stats reply and advertises the
// delegate capability. The parent caches this per epoch exactly as it would
// a station's.
func (r *Region) handleStats(ctx context.Context) (*wire.Message, error) {
	st, err := r.c.Stats(ctx)
	if err != nil {
		return nil, fmt.Errorf("region %d: %w", r.id, err)
	}
	reply := wire.EncodeStatsReply(wire.StatsReply{
		Station:      r.id,
		Residents:    uint64(st.TotalResidents()),
		StorageBytes: st.TotalStorageBytes(),
		Length:       uint32(r.c.PatternLength()),
		Flags:        wire.FlagRouteDelegate,
	})
	return &reply, nil
}

// handleSummary serves the subtree's routing digest — a single filter
// covering every resident of every member station, indistinguishable to the
// parent from one very large station's digest. On any failure the
// all-admitting saturated digest stands in, so a parent's pruning stays
// conservative: a region it cannot summarize is a region it visits.
func (r *Region) handleSummary(ctx context.Context) *wire.Message {
	reply := wire.EncodeSummaryReply(r.c.routingDigest(ctx), r.id)
	return &reply
}

// handleBatchForward forwards a classic batched round to every member
// station and concatenates their reports. Report boundaries are preserved —
// each report is one (person, weights) verdict from one station — so the
// parent's aggregation sees exactly what it would see with the stations as
// direct members.
func (r *Region) handleBatchForward(ctx context.Context, msg wire.Message) (*wire.Message, error) {
	bq, err := wire.DecodeBatchQuery(msg)
	if err != nil {
		return nil, fmt.Errorf("region %d: %w", r.id, err)
	}
	var reports []core.Report
	if err := r.forward(ctx, msg, func(reply wire.Message) error {
		br, err := wire.DecodeBatchReply(reply)
		if err != nil {
			return err
		}
		reports = append(reports, br.Reports...)
		return nil
	}); err != nil {
		return nil, err
	}
	reply := wire.EncodeBatchReply(wire.BatchReply{
		Station: r.id,
		Queries: uint32(len(bq.Queries)),
		Reports: reports,
	})
	return &reply, nil
}

// handleWBFForward forwards a legacy per-query frame, concatenating reports.
func (r *Region) handleWBFForward(ctx context.Context, msg wire.Message) (*wire.Message, error) {
	var reports []core.Report
	if err := r.forward(ctx, msg, func(reply wire.Message) error {
		rs, err := wire.DecodeReports(reply)
		if err != nil {
			return err
		}
		reports = append(reports, rs.Reports...)
		return nil
	}); err != nil {
		return nil, err
	}
	reply := wire.EncodeReports(wire.Reports{Station: r.id, Reports: reports})
	return &reply, nil
}

// handleBFForward forwards the BF baseline frame. Persons the region itself
// placed (full replicas of one pattern) are reported once, so the parent's
// station-count ranking is not inflated by region-internal replication.
func (r *Region) handleBFForward(ctx context.Context, msg wire.Message) (*wire.Message, error) {
	replicated := r.c.replicatedPred()
	seen := make(map[core.PersonID]bool)
	var persons []core.PersonID
	if err := r.forward(ctx, msg, func(reply wire.Message) error {
		bm, err := wire.DecodeBFMatches(reply)
		if err != nil {
			return err
		}
		for _, p := range bm.Persons {
			if replicated != nil && replicated(p) {
				if seen[p] {
					continue
				}
				seen[p] = true
			}
			persons = append(persons, p)
		}
		return nil
	}); err != nil {
		return nil, err
	}
	reply := wire.EncodeBFMatches(wire.BFMatches{Station: r.id, Persons: persons})
	return &reply, nil
}

// handleDataForward forwards ship-all and fetch frames, merging the raw
// pattern shipments. Region-placed persons ship a single copy (their
// replicas are identical; the parent would otherwise double their global);
// station-addressed persons keep every complementary piece.
func (r *Region) handleDataForward(ctx context.Context, msg wire.Message) (*wire.Message, error) {
	replicated := r.c.replicatedPred()
	seen := make(map[core.PersonID]bool)
	var persons []core.PersonID
	var locals []pattern.Pattern
	if err := r.forward(ctx, msg, func(reply wire.Message) error {
		data, err := wire.DecodeNaiveData(reply)
		if err != nil {
			return err
		}
		for i, p := range data.Persons {
			if replicated != nil && replicated(p) {
				if seen[p] {
					continue
				}
				seen[p] = true
			}
			persons = append(persons, p)
			locals = append(locals, data.Locals[i])
		}
		return nil
	}); err != nil {
		return nil, err
	}
	reply, err := wire.EncodeNaiveData(wire.NaiveData{Station: r.id, Persons: persons, Locals: locals})
	if err != nil {
		return nil, fmt.Errorf("region %d: %w", r.id, err)
	}
	return &reply, nil
}

// handleDumpForward forwards the re-replication pull, deduplicating
// region-placed replicas to one copy per person.
func (r *Region) handleDumpForward(ctx context.Context, msg wire.Message) (*wire.Message, error) {
	replicated := r.c.replicatedPred()
	seen := make(map[core.PersonID]bool)
	var persons []core.PersonID
	var locals []pattern.Pattern
	if err := r.forward(ctx, msg, func(reply wire.Message) error {
		data, err := wire.DecodeDumpReply(reply)
		if err != nil {
			return err
		}
		for i, p := range data.Persons {
			if replicated != nil && replicated(p) {
				if seen[p] {
					continue
				}
				seen[p] = true
			}
			persons = append(persons, p)
			locals = append(locals, data.Locals[i])
		}
		return nil
	}); err != nil {
		return nil, err
	}
	reply, err := wire.EncodeDumpReply(wire.DumpReply{Station: r.id, Persons: persons, Locals: locals})
	if err != nil {
		return nil, fmt.Errorf("region %d: %w", r.id, err)
	}
	return &reply, nil
}

// handleIngest places the parent's patterns inside the region. The parent
// addresses the region as one station; internally the region re-places each
// pattern on a single member (replication across regions is the parent's
// job — a copy per tier would multiply storage without surviving any
// additional failure the parent's cross-region replicas do not already
// cover).
func (r *Region) handleIngest(ctx context.Context, msg wire.Message) (*wire.Message, error) {
	in, err := wire.DecodeIngest(msg)
	if err != nil {
		return nil, fmt.Errorf("region %d: %w", r.id, err)
	}
	patterns := make(map[core.PersonID]pattern.Pattern, len(in.Persons))
	applied := 0
	for i, p := range in.Persons {
		if in.Locals[i].Sum() == 0 {
			continue
		}
		patterns[p] = in.Locals[i]
		applied++
	}
	if err := r.c.Place(ctx, patterns, WithReplication(1)); err != nil {
		return nil, fmt.Errorf("region %d: %w", r.id, err)
	}
	reply := wire.EncodeAck(wire.Ack{Station: r.id, Applied: uint64(applied)})
	return &reply, nil
}

// handleEvict releases the parent's persons from the region: placed copies
// through Unplace (evicted everywhere, intent dropped), station-addressed
// residue by a direct evict fan-out. Per-station failures are best-effort —
// the stations that answered have evicted, unknown persons are ignored by
// construction, and the parent invalidates its digest of this region either
// way — so a single dead member does not fail the exchange.
func (r *Region) handleEvict(ctx context.Context, msg wire.Message) (*wire.Message, error) {
	ev, err := wire.DecodeEvict(msg)
	if err != nil {
		return nil, fmt.Errorf("region %d: %w", r.id, err)
	}
	_ = r.c.Unplace(ctx, ev.Persons)
	ids, _ := r.c.aliveMembers()
	perStation := make(map[uint32][]core.PersonID, len(ids))
	for _, sid := range ids {
		perStation[sid] = ev.Persons
	}
	_, _ = r.c.evictGrouped(ctx, perStation, "region evict on")
	reply := wire.EncodeAck(wire.Ack{Station: r.id, Applied: uint64(len(ev.Persons))})
	return &reply, nil
}

// forward fans one frame to every member station and feeds each reply to
// handle, in ascending station order. A member that fails the exchange is
// skipped — the parent's answer covers the stations that answered, exactly
// as its own fan-out would — but a reply that fails to decode is fatal: it
// means protocol corruption, not a dead peer.
func (r *Region) forward(ctx context.Context, msg wire.Message, handle func(reply wire.Message) error) error {
	fwd := wire.Message{Kind: msg.Kind, Payload: msg.Payload}
	var scratch CostReport
	ep := r.c.currentEpoch()
	_, err := r.c.fanOut(ctx, ep, fwd, &scratch, handle)
	if err != nil {
		return fmt.Errorf("region %d: %w", r.id, err)
	}
	return nil
}

// upwardDigest caches the one subtree digest a region coordinator serves to
// its parent, together with the churn key it was built under. A single slot
// suffices: the digest always describes the whole current subtree.
type upwardDigest struct {
	mu  sync.Mutex
	key []uint64       // dimatch:guardedby mu
	sum *index.Summary // dimatch:guardedby mu
}

// get returns the cached digest if it was built under exactly this key.
func (u *upwardDigest) get(key []uint64) *index.Summary {
	u.mu.Lock()
	defer u.mu.Unlock()
	if u.sum == nil || len(u.key) != len(key) {
		return nil
	}
	for i := range key {
		if u.key[i] != key[i] {
			return nil
		}
	}
	return u.sum
}

// put installs a freshly built digest under its churn key.
func (u *upwardDigest) put(key []uint64, sum *index.Summary) {
	u.mu.Lock()
	defer u.mu.Unlock()
	u.key, u.sum = key, sum
}

// routingDigest returns the digest this coordinator serves upward as its
// subtree summary: a single filter built over every member's raw resident
// patterns, sized for the subtree's aggregate load — to the parent it is
// indistinguishable from the digest of one very large station. It is NOT the
// bitwise-OR union of the members' own digests: a small filter carries only
// as much information as it has bits, so expanding and OR-ing many member
// digests keeps each member's fill density and saturates at any aggregate
// scale (the in-coordinator Bloofi tree tolerates exactly this because
// sharper nodes below every union recover the precision — a region's digest
// has no sharper node at the parent, so it must be sharp itself). The raw
// patterns are pulled with one whole-store dump fan-out per churn: the
// result is cached under a key of the membership epoch and every member's
// summary generation, so steady state serves from memory and any mutation —
// ingest, evict, join, leave, kill — forces a rebuild. A mutation landing
// mid-rebuild bumps a generation read into the key before the dump went out,
// so the stale digest is stored under a key that no longer matches.
//
// The fallback is the saturated (all-ones) digest, which admits every probe:
// a subtree that cannot be dumped exactly — an unreachable member, a
// foreign pattern length — must never be pruned by the tier above. An empty
// region returns an empty digest that admits nothing, which is exactly
// right.
func (c *Cluster) routingDigest(ctx context.Context) *index.Summary {
	saturated := func() *index.Summary {
		return index.Saturated(maxInt(c.length, 1), index.DefaultSeed)
	}
	ep := c.currentEpoch()
	gens := c.summaries.genSnapshot(ep.ids)
	key := make([]uint64, 0, 2*len(ep.ids)+1)
	key = append(key, ep.version)
	for i, id := range ep.ids {
		key = append(key, uint64(id), gens[i])
	}
	if sum := c.upward.get(key); sum != nil {
		return sum
	}

	// Pull every member's whole store. Region-placed replicas collapse to
	// one copy — their cells are identical, and counting them once keeps the
	// filter sized for distinct residents.
	replicated := c.replicatedPred()
	seen := make(map[core.PersonID]bool)
	var locals []pattern.Pattern
	foreign := false
	var scratch CostReport
	failed, err := c.fanOut(ctx, ep, wire.EncodeDump(wire.Dump{}), &scratch, func(reply wire.Message) error {
		data, derr := wire.DecodeDumpReply(reply)
		if derr != nil {
			return derr
		}
		for i, p := range data.Persons {
			l := data.Locals[i]
			if l.Sum() == 0 {
				continue
			}
			if len(l) != c.length {
				foreign = true
				continue
			}
			if replicated != nil && replicated(p) {
				if seen[p] {
					continue
				}
				seen[p] = true
			}
			locals = append(locals, l)
		}
		return nil
	})
	if err != nil || failed > 0 || foreign {
		// A member that cannot be dumped — or one holding patterns of a
		// foreign length — makes the subtree unsummarizable: saturate rather
		// than under-report.
		return saturated()
	}
	sum, err := index.Build(maxInt(c.length, 1), locals)
	if err != nil {
		return saturated()
	}
	c.upward.put(key, sum)
	return sum
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
