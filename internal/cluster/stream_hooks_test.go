package cluster

import (
	"context"
	"testing"

	"dimatch/internal/core"
	"dimatch/internal/metrics"
	"dimatch/internal/pattern"
)

func newHooksCluster(t *testing.T, stations []uint32) *Cluster {
	t.Helper()
	c, err := NewEmpty(Options{}, stations, 3)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	t.Cleanup(func() { _ = c.Shutdown() })
	return c
}

func TestAliveStationIDs(t *testing.T) {
	c := newHooksCluster(t, []uint32{5, 1, 3})
	got := c.AliveStationIDs()
	if len(got) != 3 || got[0] != 1 || got[1] != 3 || got[2] != 5 {
		t.Fatalf("AliveStationIDs() = %v, want ascending {1,3,5}", got)
	}
	// The slice must be a copy: mutating it cannot corrupt the epoch.
	got[0] = 99
	if again := c.AliveStationIDs(); again[0] != 1 {
		t.Fatal("AliveStationIDs aliased the epoch's member slice")
	}
	if err := c.KillStation(3); err != nil {
		t.Fatal(err)
	}
	if got := c.AliveStationIDs(); len(got) != 2 || got[0] != 1 || got[1] != 5 {
		t.Fatalf("after kill, AliveStationIDs() = %v, want {1,5}", got)
	}
}

func TestNotePlacedRecordsIntents(t *testing.T) {
	c := newHooksCluster(t, []uint32{1, 2, 3})
	c.NotePlaced(nil, 2) // no-op, must not create entries
	if c.Placed() != 0 {
		t.Fatalf("Placed() = %d after empty NotePlaced", c.Placed())
	}
	c.NotePlaced([]core.PersonID{10, 11}, 2)
	c.NotePlaced([]core.PersonID{12}, 0) // r<=0 falls back to the default
	if c.Placed() != 3 {
		t.Fatalf("Placed() = %d, want 3", c.Placed())
	}
	// The intents are real placement intents: reconciliation must be able
	// to act on them (nothing to copy here — no pattern data was flushed —
	// so the persons count as lost-but-retained, not as errors).
	rep, err := c.Rebalance(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Placed != 3 {
		t.Fatalf("HealReport.Placed = %d, want the 3 noted persons", rep.Placed)
	}
}

func TestOnMembershipChangeFires(t *testing.T) {
	c := newHooksCluster(t, []uint32{1, 2, 3})
	fired := 0
	cancel := c.OnMembershipChange(func() { fired++ })

	ctx := context.Background()
	if err := c.Ingest(ctx, 1, map[core.PersonID]pattern.Pattern{7: {1, 2, 3}}); err != nil {
		t.Fatal(err)
	}
	if fired != 0 {
		t.Fatal("ingest must not fire the membership hook")
	}
	if err := c.KillStation(3); err != nil {
		t.Fatal(err)
	}
	if fired != 1 {
		t.Fatalf("fired = %d after KillStation, want 1", fired)
	}
	if err := c.RemoveStation(ctx, 2); err != nil {
		t.Fatal(err)
	}
	if fired != 2 {
		t.Fatalf("fired = %d after RemoveStation, want 2", fired)
	}
	cancel()
	cancel() // idempotent
	if err := c.AddStation(ctx, 9, nil); err != nil {
		t.Fatal(err)
	}
	if fired != 2 {
		t.Fatalf("fired = %d after cancel, want no further callbacks", fired)
	}
}

func TestRegisterStreamStatsMergesIntoStats(t *testing.T) {
	c := newHooksCluster(t, []uint32{1, 2})
	ctx := context.Background()

	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Stream != nil {
		t.Fatal("Stats.Stream must be nil with no pipeline registered")
	}

	cancelA := c.RegisterStreamStats(func() *metrics.StreamStats {
		return &metrics.StreamStats{
			Accepted: 5,
			Stations: []metrics.StreamStationStats{{Station: 1, QueueDepth: 2, QueueCap: 8}},
		}
	})
	cancelB := c.RegisterStreamStats(func() *metrics.StreamStats {
		return &metrics.StreamStats{
			Accepted: 3,
			Stations: []metrics.StreamStationStats{
				{Station: 1, QueueDepth: 1, QueueCap: 8},
				{Station: 99, QueueCap: 8}, // not a member: no link gauge, still reported
			},
		}
	})
	st, err = c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Stream == nil || st.Stream.Accepted != 8 {
		t.Fatalf("Stats.Stream = %+v, want merged Accepted 8", st.Stream)
	}
	if len(st.Stream.Stations) != 2 || st.Stream.Stations[0].QueueDepth != 3 {
		t.Fatalf("per-station merge wrong: %+v", st.Stream.Stations)
	}

	// A provider returning nil contributes nothing but must not wipe the
	// others.
	cancelNil := c.RegisterStreamStats(func() *metrics.StreamStats { return nil })
	st, err = c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Stream == nil || st.Stream.Accepted != 8 {
		t.Fatalf("nil provider corrupted the merge: %+v", st.Stream)
	}

	cancelA()
	cancelB()
	cancelB() // idempotent
	cancelNil()
	st, err = c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Stream != nil {
		t.Fatal("Stats.Stream must return to nil after every pipeline unregisters")
	}
}
