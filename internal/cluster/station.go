// Package cluster assembles the distributed system of the paper: one data
// center node N0 and l base station nodes N1..Nl, each base station holding
// the local patterns of the persons it observed. Stations run as goroutines
// (the paper used one thread per base station) connected to the center by
// metered message links, so a search measures real serialized traffic.
//
// Three end-to-end strategies are implemented, matching the paper's
// comparison set: StrategyNaive ships all data to the center, StrategyBF
// runs DI-matching with a plain Bloom filter, StrategyWBF runs full
// DI-matching with the Weighted Bloom Filter.
package cluster

import (
	"fmt"
	"sort"

	"dimatch/internal/core"
	"dimatch/internal/index"
	"dimatch/internal/pattern"
	"dimatch/internal/store"
	"dimatch/internal/transport"
	"dimatch/internal/wire"
)

// Station is one base station node: a local pattern store plus a serve loop
// answering the data center over a link. The store is mutable — ingest and
// evict messages arrive on the same link as queries and are applied by the
// serve loop between exchanges, so mutations and searches are serialized by
// construction and never race.
type Station struct {
	id   uint32
	link transport.Link

	// persons and locals are parallel: the station's resident patterns,
	// person-ID ascending for deterministic replies. Only the Serve loop
	// touches them after construction.
	persons []core.PersonID
	locals  []pattern.Pattern

	// summary memoizes the routing summary between store mutations, so a
	// coordinator refreshing after every search round does not rebuild the
	// digest per request. Only the Serve loop touches it (mutations arrive
	// on the same loop), so no locking is needed.
	summary *index.Summary

	// plan is the adaptive parameter table the coordinator rolled out over
	// wire v7, nil while the station runs the static table. paramEpoch is
	// the highest parameter epoch seen, so reordered rollout frames cannot
	// reinstall superseded parameters. Serve-loop-only, like summary; a
	// restarted durable station comes back with plan == nil and degrades to
	// the static table on its first rebuild — the coordinator's next rollout
	// re-adapts it.
	plan       *index.Plan
	paramEpoch uint64

	// durable, when non-nil, persists every applied batch before its ack is
	// sent (see NewStoredStation). Nil keeps the pre-persistence behavior:
	// the resident store lives in this process's memory only.
	durable store.Store
}

// NewStation builds a station from its local pattern store. All-zero
// patterns are dropped: a person with no measurable activity at the station
// has no local pattern there (and would otherwise spuriously probe the
// filters at accumulated value zero).
func NewStation(id uint32, locals map[core.PersonID]pattern.Pattern, link transport.Link) *Station {
	s := &Station{id: id, link: link}
	s.persons = make([]core.PersonID, 0, len(locals))
	for p, l := range locals {
		if l.Sum() == 0 {
			continue
		}
		s.persons = append(s.persons, p)
	}
	sort.Slice(s.persons, func(i, j int) bool { return s.persons[i] < s.persons[j] })
	s.locals = make([]pattern.Pattern, len(s.persons))
	for i, p := range s.persons {
		s.locals[i] = locals[p]
	}
	return s
}

// NewStoredStation builds a station whose resident store is backed by st:
// the durable state is recovered first (residents plus, when the backend has
// one that still covers them, the memoized routing digest), then any seed
// locals are applied and persisted on top. Restarting a crashed station is
// NewStoredStation with nil locals over the same backend. The station owns
// the store from here on — Serve closes it on exit.
func NewStoredStation(id uint32, locals map[core.PersonID]pattern.Pattern, link transport.Link, st store.Store) (*Station, error) {
	img, err := st.Recover()
	if err != nil {
		return nil, fmt.Errorf("station %d: recover: %w", id, err)
	}
	s := &Station{
		id:      id,
		link:    link,
		persons: img.Persons,
		locals:  img.Locals,
		summary: img.Digest,
		durable: st,
	}
	if length := s.patternLength(); length > 0 {
		for _, l := range img.Locals {
			if len(l) != length {
				return nil, fmt.Errorf("station %d: recovered pattern length %d alongside %d", id, len(l), length)
			}
		}
	}
	if len(locals) > 0 {
		seed := NewStation(id, locals, nil) // reuse its sort/filter rules
		if len(seed.persons) > 0 {
			if err := st.Append(store.Batch{Op: store.OpIngest, Persons: seed.persons, Locals: seed.locals}); err != nil {
				return nil, fmt.Errorf("station %d: persist seed: %w", id, err)
			}
			for i, p := range seed.persons {
				s.upsert(p, seed.locals[i])
			}
			s.summary = nil
		}
	}
	return s, nil
}

// ID returns the station identifier.
func (s *Station) ID() uint32 { return s.id }

// patternLength returns the resident patterns' shared length, 0 when empty.
func (s *Station) patternLength() int {
	if len(s.locals) > 0 {
		return len(s.locals[0])
	}
	return 0
}

// Residents returns the number of stored local patterns.
func (s *Station) Residents() int { return len(s.persons) }

// StorageBytes returns the bytes the station dedicates to its raw local
// patterns (8 bytes per value), the baseline storage every strategy pays.
func (s *Station) StorageBytes() uint64 {
	var n uint64
	for _, l := range s.locals {
		n += 8 * uint64(len(l))
	}
	return n
}

// Serve processes center messages until a shutdown message arrives or the
// link closes. It is the goroutine body of a station node. Every reply
// echoes its request's wire ID, which is what lets the center run many
// searches over this link concurrently: its dispatcher routes each reply to
// the search that asked.
//
// A durable station closes its store on the way out, flushing anything the
// sync policy still buffered — a graceful exit is a clean shutdown; only a
// kill -9 exercises recovery.
func (s *Station) Serve() error {
	err := s.serveLoop()
	if s.durable != nil {
		if cerr := s.durable.Close(); err == nil && cerr != nil {
			err = fmt.Errorf("station %d: %w", s.id, cerr)
		}
	}
	return err
}

func (s *Station) serveLoop() error {
	for {
		msg, err := s.link.Recv()
		if err != nil {
			if err == transport.ErrClosed {
				return nil
			}
			return fmt.Errorf("station %d: %w", s.id, err)
		}
		var reply *wire.Message
		switch msg.Kind {
		case wire.KindWBFQuery:
			reply, err = s.handleWBF(msg)
		case wire.KindBatchQuery:
			reply, err = s.handleBatch(msg)
		case wire.KindBFQuery:
			reply, err = s.handleBF(msg)
		case wire.KindShipAll:
			reply, err = s.handleShipAll()
		case wire.KindFetch:
			reply, err = s.handleFetch(msg)
		case wire.KindDump:
			reply, err = s.handleDump(msg)
		case wire.KindIngest:
			reply, err = s.handleIngest(msg)
		case wire.KindEvict:
			reply, err = s.handleEvict(msg)
		case wire.KindStats:
			reply = s.handleStats()
		case wire.KindSummary:
			reply, err = s.handleSummary()
		case wire.KindParamUpdate:
			reply, err = s.handleParamUpdate(msg)
		case wire.KindShutdown:
			return nil
		default:
			err = fmt.Errorf("station %d: unexpected message %v", s.id, msg.Kind)
		}
		if err != nil {
			return err
		}
		if reply != nil {
			if err := s.link.Send(reply.WithRequest(msg.Request)); err != nil {
				return fmt.Errorf("station %d: %w", s.id, err)
			}
		}
	}
}

// handleWBF runs Algorithm 2 over every resident pattern and reports the
// qualifying (person, weights) pairs — the legacy per-query exchange, one
// serial walk per received filter.
func (s *Station) handleWBF(msg wire.Message) (*wire.Message, error) {
	filter, err := wire.DecodeWBFQuery(msg)
	if err != nil {
		return nil, fmt.Errorf("station %d: %w", s.id, err)
	}
	reports, err := core.MatchResidents(filter, s.persons, s.locals, 1)
	if err != nil {
		return nil, fmt.Errorf("station %d: %w", s.id, err)
	}
	reply := wire.EncodeReports(wire.Reports{Station: s.id, Reports: reports})
	return &reply, nil
}

// handleBatch answers one batched search round: a single walk over the
// resident store, fanned across a GOMAXPROCS-bounded worker pool, probes
// the batch's combined filter once per resident and answers every query of
// the batch in one reply. Compared with the per-query path this station
// does 1/|batch| of the probe work and sends 1/|batch| of the frames.
func (s *Station) handleBatch(msg wire.Message) (*wire.Message, error) {
	bq, err := wire.DecodeBatchQuery(msg)
	if err != nil {
		return nil, fmt.Errorf("station %d: %w", s.id, err)
	}
	reports, err := core.MatchResidents(bq.Filter, s.persons, s.locals, 0)
	if err != nil {
		return nil, fmt.Errorf("station %d: %w", s.id, err)
	}
	reply := wire.EncodeBatchReply(wire.BatchReply{
		Station: s.id,
		Queries: uint32(len(bq.Queries)),
		Reports: reports,
	})
	return &reply, nil
}

// handleBF is the baseline: an all-bits-set pattern is reported by bare ID.
func (s *Station) handleBF(msg wire.Message) (*wire.Message, error) {
	q, err := wire.DecodeBFQuery(msg)
	if err != nil {
		return nil, fmt.Errorf("station %d: %w", s.id, err)
	}
	matcher, err := core.NewBFMatcher(q.Filter, q.Params, q.Length)
	if err != nil {
		return nil, fmt.Errorf("station %d: %w", s.id, err)
	}
	var persons []core.PersonID
	for i, local := range s.locals {
		if len(local) != q.Length {
			continue
		}
		ok, err := matcher.Match(local)
		if err != nil {
			return nil, fmt.Errorf("station %d: %w", s.id, err)
		}
		if ok {
			persons = append(persons, s.persons[i])
		}
	}
	reply := wire.EncodeBFMatches(wire.BFMatches{Station: s.id, Persons: persons})
	return &reply, nil
}

// handleFetch ships the local patterns of the requested persons only (the
// verification phase: the center double-checks its top candidates).
func (s *Station) handleFetch(msg wire.Message) (*wire.Message, error) {
	req, err := wire.DecodeFetch(msg)
	if err != nil {
		return nil, fmt.Errorf("station %d: %w", s.id, err)
	}
	wanted := make(map[core.PersonID]bool, len(req.Persons))
	for _, p := range req.Persons {
		wanted[p] = true
	}
	var (
		persons []core.PersonID
		locals  []pattern.Pattern
	)
	for i, p := range s.persons {
		if wanted[p] {
			persons = append(persons, p)
			locals = append(locals, s.locals[i])
		}
	}
	reply, err := wire.EncodeNaiveData(wire.NaiveData{
		Station: s.id,
		Persons: persons,
		Locals:  locals,
	})
	if err != nil {
		return nil, fmt.Errorf("station %d: %w", s.id, err)
	}
	return &reply, nil
}

// handleDump ships the raw local patterns of the requested persons — or the
// whole store when the filter is empty — for the coordinator's
// re-replication pull. Persons the station does not hold are simply absent
// from the reply.
func (s *Station) handleDump(msg wire.Message) (*wire.Message, error) {
	req, err := wire.DecodeDump(msg)
	if err != nil {
		return nil, fmt.Errorf("station %d: %w", s.id, err)
	}
	persons := s.persons
	locals := s.locals
	if len(req.Persons) > 0 {
		wanted := make(map[core.PersonID]bool, len(req.Persons))
		for _, p := range req.Persons {
			wanted[p] = true
		}
		persons, locals = nil, nil
		for i, p := range s.persons {
			if wanted[p] {
				persons = append(persons, p)
				locals = append(locals, s.locals[i])
			}
		}
	}
	reply, err := wire.EncodeDumpReply(wire.DumpReply{
		Station: s.id,
		Persons: persons,
		Locals:  locals,
	})
	if err != nil {
		return nil, fmt.Errorf("station %d: %w", s.id, err)
	}
	return &reply, nil
}

// handleIngest inserts or replaces resident patterns — the station absorbing
// freshly observed call data. All-zero patterns are skipped, matching the
// NewStation rule (no measurable activity means no local pattern); removal is
// the evict message's job. On a durable station the applied batch is appended
// to the store before the ack is encoded: a batch the center saw acknowledged
// is never lost to a crash the store's sync policy covers.
func (s *Station) handleIngest(msg wire.Message) (*wire.Message, error) {
	in, err := wire.DecodeIngest(msg)
	if err != nil {
		return nil, fmt.Errorf("station %d: %w", s.id, err)
	}
	var persons []core.PersonID
	var locals []pattern.Pattern
	applied := 0
	for i, p := range in.Persons {
		if in.Locals[i].Sum() == 0 {
			continue
		}
		s.upsert(p, in.Locals[i])
		applied++
		if s.durable != nil {
			persons = append(persons, p)
			locals = append(locals, in.Locals[i])
		}
	}
	if applied > 0 {
		s.summary = nil // the memoized routing summary no longer covers the store
		if s.durable != nil {
			if err := s.persist(store.Batch{Op: store.OpIngest, Persons: persons, Locals: locals}); err != nil {
				return nil, err
			}
		}
	}
	reply := wire.EncodeAck(wire.Ack{Station: s.id, Applied: uint64(applied)})
	return &reply, nil
}

// persist appends one applied batch to the durable store and lets it fold
// the log when its thresholds say so. The digest is built (if not already
// memoized) only when a fold actually happens, which is what writes the
// memoized summary into the snapshot for recovery. Errors are fatal to the
// serve loop: the ack for this batch must never be sent if durability was
// promised and not delivered.
func (s *Station) persist(b store.Batch) error {
	if err := s.durable.Append(b); err != nil {
		return fmt.Errorf("station %d: %w", s.id, err)
	}
	_, err := s.durable.Compact(func() (store.Image, error) {
		if err := s.ensureSummary(); err != nil {
			return store.Image{}, err
		}
		return store.Image{Persons: s.persons, Locals: s.locals, Digest: s.summary}, nil
	})
	if err != nil {
		return fmt.Errorf("station %d: %w", s.id, err)
	}
	return nil
}

// upsert inserts local at person p's slot in the sorted store, replacing the
// existing pattern if p is already resident.
func (s *Station) upsert(p core.PersonID, local pattern.Pattern) {
	i := sort.Search(len(s.persons), func(i int) bool { return s.persons[i] >= p })
	if i < len(s.persons) && s.persons[i] == p {
		s.locals[i] = local
		return
	}
	s.persons = append(s.persons, 0)
	copy(s.persons[i+1:], s.persons[i:])
	s.persons[i] = p
	s.locals = append(s.locals, nil)
	copy(s.locals[i+1:], s.locals[i:])
	s.locals[i] = local
}

// handleEvict removes residents — expired data, opted-out subscribers, or a
// person handed off to another station. Unknown persons are ignored.
func (s *Station) handleEvict(msg wire.Message) (*wire.Message, error) {
	ev, err := wire.DecodeEvict(msg)
	if err != nil {
		return nil, fmt.Errorf("station %d: %w", s.id, err)
	}
	var removed []core.PersonID
	applied := 0
	for _, p := range ev.Persons {
		i := sort.Search(len(s.persons), func(i int) bool { return s.persons[i] >= p })
		if i >= len(s.persons) || s.persons[i] != p {
			continue
		}
		s.persons = append(s.persons[:i], s.persons[i+1:]...)
		s.locals = append(s.locals[:i], s.locals[i+1:]...)
		applied++
		if s.durable != nil {
			removed = append(removed, p)
		}
	}
	if applied > 0 {
		s.summary = nil // rebuild on next pull: Bloom filters cannot delete
		if s.durable != nil {
			if err := s.persist(store.Batch{Op: store.OpEvict, Persons: removed}); err != nil {
				return nil, err
			}
		}
	}
	reply := wire.EncodeAck(wire.Ack{Station: s.id, Applied: uint64(applied)})
	return &reply, nil
}

// handleStats reports the station's resident count and storage footprint.
// The pattern length (0 when empty) lets the center sanity-check a joining
// link against the cluster's time-series length.
func (s *Station) handleStats() *wire.Message {
	length := s.patternLength()
	reply := wire.EncodeStatsReply(wire.StatsReply{
		Station:      s.id,
		Residents:    uint64(len(s.persons)),
		StorageBytes: s.StorageBytes(),
		Length:       uint32(length),
	})
	return &reply
}

// handleSummary answers the coordinator's routing-summary pull: a Bloom
// digest of every resident's accumulated cells (see internal/index). The
// digest is memoized until the next ingest or evict, so steady-state
// refreshes cost one encode, not one store walk.
func (s *Station) handleSummary() (*wire.Message, error) {
	if err := s.ensureSummary(); err != nil {
		return nil, err
	}
	reply := wire.EncodeSummaryReply(s.summary, s.id)
	return &reply, nil
}

// handleParamUpdate applies a coordinator parameter rollout (wire v7): a
// plan switches the routing digest onto the adaptive table, a nil plan
// orders the station back onto the static one. Updates whose epoch does not
// advance the station's are ignored — a reordered frame from a superseded
// rollout must not reinstall old parameters. The ack echoes the epoch the
// station now runs and whether an adaptive plan is in effect; Applied =
// false on a non-nil plan means the station could not honor it and degraded
// to the static table, which is always sound (an adaptive digest is a
// routing optimization, never a correctness dependency).
func (s *Station) handleParamUpdate(msg wire.Message) (*wire.Message, error) {
	pu, err := wire.DecodeParamUpdate(msg)
	if err != nil {
		return nil, fmt.Errorf("station %d: %w", s.id, err)
	}
	if pu.Epoch >= s.paramEpoch {
		// Same-epoch duplicates re-apply idempotently (the build is
		// deterministic); only a frame from a superseded epoch is dropped.
		s.paramEpoch = pu.Epoch
		s.applyPlan(pu.Plan)
	}
	reply := wire.EncodeParamAck(wire.ParamAck{Station: s.id, Epoch: s.paramEpoch, Applied: s.plan != nil})
	return &reply, nil
}

// applyPlan installs the adaptive plan (nil reverts to static), rebuilding
// the digest eagerly so the ack only reports Applied after the plan has
// actually been honored. Any failure degrades to the static table: plan and
// summary are cleared and the next pull rebuilds statically.
func (s *Station) applyPlan(p *index.Plan) {
	s.plan = nil
	s.summary = nil
	if p == nil {
		return
	}
	length := s.patternLength()
	if length == 0 {
		// An empty station cannot match the plan's length; its 1-cell static
		// placeholder admits nothing, which adaptive bits cannot improve on.
		return
	}
	sum, err := index.BuildAdaptive(p, length, s.locals)
	if err != nil {
		return
	}
	s.plan = p
	s.summary = sum
}

// ensureSummary (re)builds the memoized routing digest when a mutation
// dropped it — under the installed adaptive plan when one is live, else the
// static table. Both builders are deterministic in the resident set, which
// is what makes a digest rebuilt after recovery byte-identical to the
// pre-crash one. A plan the mutated store can no longer honor (e.g. the
// first ingest fixed a pattern length the plan does not match) is dropped:
// the station degrades to static rather than serve no digest at all.
func (s *Station) ensureSummary() error {
	if s.summary != nil {
		return nil
	}
	length := s.patternLength()
	if length == 0 {
		// An empty store has no length of its own; a 1-cell summary with
		// nothing inserted admits no query, which is exactly right.
		length = 1
	}
	if s.plan != nil {
		if sum, err := index.BuildAdaptive(s.plan, length, s.locals); err == nil {
			s.summary = sum
			return nil
		}
		s.plan = nil
	}
	sum, err := index.Build(length, s.locals)
	if err != nil {
		return fmt.Errorf("station %d: %w", s.id, err)
	}
	s.summary = sum
	return nil
}

// handleShipAll ships the whole local store (the naive strategy).
func (s *Station) handleShipAll() (*wire.Message, error) {
	reply, err := wire.EncodeNaiveData(wire.NaiveData{
		Station: s.id,
		Persons: s.persons,
		Locals:  s.locals,
	})
	if err != nil {
		return nil, fmt.Errorf("station %d: %w", s.id, err)
	}
	return &reply, nil
}
