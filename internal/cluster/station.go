// Package cluster assembles the distributed system of the paper: one data
// center node N0 and l base station nodes N1..Nl, each base station holding
// the local patterns of the persons it observed. Stations run as goroutines
// (the paper used one thread per base station) connected to the center by
// metered message links, so a search measures real serialized traffic.
//
// Three end-to-end strategies are implemented, matching the paper's
// comparison set: StrategyNaive ships all data to the center, StrategyBF
// runs DI-matching with a plain Bloom filter, StrategyWBF runs full
// DI-matching with the Weighted Bloom Filter.
package cluster

import (
	"fmt"
	"sort"

	"dimatch/internal/core"
	"dimatch/internal/pattern"
	"dimatch/internal/transport"
	"dimatch/internal/wire"
)

// Station is one base station node: a local pattern store plus a serve loop
// answering the data center over a link.
type Station struct {
	id   uint32
	link transport.Link

	// persons and locals are parallel: the station's resident patterns,
	// person-ID ascending for deterministic replies.
	persons []core.PersonID
	locals  []pattern.Pattern
}

// NewStation builds a station from its local pattern store. All-zero
// patterns are dropped: a person with no measurable activity at the station
// has no local pattern there (and would otherwise spuriously probe the
// filters at accumulated value zero).
func NewStation(id uint32, locals map[core.PersonID]pattern.Pattern, link transport.Link) *Station {
	s := &Station{id: id, link: link}
	s.persons = make([]core.PersonID, 0, len(locals))
	for p, l := range locals {
		if l.Sum() == 0 {
			continue
		}
		s.persons = append(s.persons, p)
	}
	sort.Slice(s.persons, func(i, j int) bool { return s.persons[i] < s.persons[j] })
	s.locals = make([]pattern.Pattern, len(s.persons))
	for i, p := range s.persons {
		s.locals[i] = locals[p]
	}
	return s
}

// ID returns the station identifier.
func (s *Station) ID() uint32 { return s.id }

// Residents returns the number of stored local patterns.
func (s *Station) Residents() int { return len(s.persons) }

// StorageBytes returns the bytes the station dedicates to its raw local
// patterns (8 bytes per value), the baseline storage every strategy pays.
func (s *Station) StorageBytes() uint64 {
	var n uint64
	for _, l := range s.locals {
		n += 8 * uint64(len(l))
	}
	return n
}

// Serve processes center messages until a shutdown message arrives or the
// link closes. It is the goroutine body of a station node. Every reply
// echoes its request's wire ID, which is what lets the center run many
// searches over this link concurrently: its dispatcher routes each reply to
// the search that asked.
func (s *Station) Serve() error {
	for {
		msg, err := s.link.Recv()
		if err != nil {
			if err == transport.ErrClosed {
				return nil
			}
			return fmt.Errorf("station %d: %w", s.id, err)
		}
		var reply *wire.Message
		switch msg.Kind {
		case wire.KindWBFQuery:
			reply, err = s.handleWBF(msg)
		case wire.KindBFQuery:
			reply, err = s.handleBF(msg)
		case wire.KindShipAll:
			reply, err = s.handleShipAll()
		case wire.KindFetch:
			reply, err = s.handleFetch(msg)
		case wire.KindShutdown:
			return nil
		default:
			err = fmt.Errorf("station %d: unexpected message %v", s.id, msg.Kind)
		}
		if err != nil {
			return err
		}
		if reply != nil {
			if err := s.link.Send(reply.WithRequest(msg.Request)); err != nil {
				return fmt.Errorf("station %d: %w", s.id, err)
			}
		}
	}
}

// handleWBF runs Algorithm 2 over every resident pattern and reports the
// qualifying (person, weights) pairs.
func (s *Station) handleWBF(msg wire.Message) (*wire.Message, error) {
	filter, err := wire.DecodeWBFQuery(msg)
	if err != nil {
		return nil, fmt.Errorf("station %d: %w", s.id, err)
	}
	matcher := core.NewMatcher(filter)
	var reports []core.Report
	for i, local := range s.locals {
		if len(local) != filter.Length() {
			continue // pattern from a different window; cannot qualify
		}
		ids, ok, err := matcher.Match(local)
		if err != nil {
			return nil, fmt.Errorf("station %d: %w", s.id, err)
		}
		if !ok {
			continue
		}
		// Algorithm 2 returns "the weight": one entry per query, the one
		// whose magnitude matches this piece.
		selected, err := core.SelectClosestWeights(filter, ids, local.Sum())
		if err != nil {
			return nil, fmt.Errorf("station %d: %w", s.id, err)
		}
		reports = append(reports, core.Report{
			Person:    s.persons[i],
			WeightIDs: selected,
		})
	}
	reply := wire.EncodeReports(wire.Reports{Station: s.id, Reports: reports})
	return &reply, nil
}

// handleBF is the baseline: an all-bits-set pattern is reported by bare ID.
func (s *Station) handleBF(msg wire.Message) (*wire.Message, error) {
	q, err := wire.DecodeBFQuery(msg)
	if err != nil {
		return nil, fmt.Errorf("station %d: %w", s.id, err)
	}
	matcher, err := core.NewBFMatcher(q.Filter, q.Params, q.Length)
	if err != nil {
		return nil, fmt.Errorf("station %d: %w", s.id, err)
	}
	var persons []core.PersonID
	for i, local := range s.locals {
		if len(local) != q.Length {
			continue
		}
		ok, err := matcher.Match(local)
		if err != nil {
			return nil, fmt.Errorf("station %d: %w", s.id, err)
		}
		if ok {
			persons = append(persons, s.persons[i])
		}
	}
	reply := wire.EncodeBFMatches(wire.BFMatches{Station: s.id, Persons: persons})
	return &reply, nil
}

// handleFetch ships the local patterns of the requested persons only (the
// verification phase: the center double-checks its top candidates).
func (s *Station) handleFetch(msg wire.Message) (*wire.Message, error) {
	req, err := wire.DecodeFetch(msg)
	if err != nil {
		return nil, fmt.Errorf("station %d: %w", s.id, err)
	}
	wanted := make(map[core.PersonID]bool, len(req.Persons))
	for _, p := range req.Persons {
		wanted[p] = true
	}
	var (
		persons []core.PersonID
		locals  []pattern.Pattern
	)
	for i, p := range s.persons {
		if wanted[p] {
			persons = append(persons, p)
			locals = append(locals, s.locals[i])
		}
	}
	reply, err := wire.EncodeNaiveData(wire.NaiveData{
		Station: s.id,
		Persons: persons,
		Locals:  locals,
	})
	if err != nil {
		return nil, fmt.Errorf("station %d: %w", s.id, err)
	}
	return &reply, nil
}

// handleShipAll ships the whole local store (the naive strategy).
func (s *Station) handleShipAll() (*wire.Message, error) {
	reply, err := wire.EncodeNaiveData(wire.NaiveData{
		Station: s.id,
		Persons: s.persons,
		Locals:  s.locals,
	})
	if err != nil {
		return nil, fmt.Errorf("station %d: %w", s.id, err)
	}
	return &reply, nil
}
