package cluster

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"dimatch/internal/adapt"
	"dimatch/internal/core"
	"dimatch/internal/pattern"
	"dimatch/internal/store"
	"dimatch/internal/transport"
)

// This file is the cluster side of station persistence (internal/store): the
// constructors that boot durable in-process stations and the rejoin path a
// restarted station takes. The division of labor: the station appends every
// applied batch to its store before acking (station.go), so the cluster only
// has to put a recovered station back into membership — the existing heal
// pass then tops up precisely the delta the station missed while down,
// because Rebalance diffs the recovered residents against the placement
// targets and ships only the copies that are actually absent.

// NewStored builds a cluster of in-process durable stations, one per store.
// Each station recovers its residents (and memoized routing digest) from its
// backend before joining, so booting over non-empty stores is a restart, not
// a cold start. The caller supplies the pattern length, as with NewEmpty;
// recovered residents must match it. The cluster is inert until Start.
func NewStored(opts Options, stations map[uint32]store.Store, patternLength int) (*Cluster, error) {
	if len(stations) == 0 {
		return nil, errors.New("cluster: no stations")
	}
	if patternLength <= 0 {
		return nil, fmt.Errorf("cluster: pattern length %d, want > 0", patternLength)
	}
	if opts.TargetFP == 0 {
		opts.TargetFP = 0.01
	}
	ids := make([]uint32, 0, len(stations))
	for id := range stations {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	c := &Cluster{
		opts:      opts,
		length:    patternLength,
		dead:      make(map[uint32]bool),
		downMeter: &transport.Meter{},
		upMeter:   &transport.Meter{},
	}
	muxes := make([]*transport.Mux, 0, len(ids))
	for _, id := range ids {
		center, stationEnd := transport.Pipe(c.downMeter, c.upMeter)
		st, err := NewStoredStation(id, nil, stationEnd, stations[id])
		if err != nil {
			return nil, err
		}
		if l := st.patternLength(); l != 0 && l != patternLength {
			return nil, fmt.Errorf("%w: station %d recovered pattern length %d, cluster is %d", ErrLengthMismatch, id, l, patternLength)
		}
		muxes = append(muxes, transport.NewMux(center))
		c.pending = append(c.pending, st)
	}
	c.profiler = adapt.NewProfiler(c.length, opts.AdaptWindow)
	c.installEpochLocked(ids, muxes)
	return c, nil
}

// AddStoredStation grows the membership with an in-process durable station —
// the rejoin path of a restarted station: recover from the store, join, and
// let the heal pass re-replicate only what the recovered residents are
// missing. Recovery runs before the cluster lock is taken, so replaying a
// large WAL never stalls concurrent searches. Seed locals (optional, usually
// nil on a rejoin) are persisted through the store like any ingest.
func (c *Cluster) AddStoredStation(ctx context.Context, id uint32, locals map[core.PersonID]pattern.Pattern, st store.Store) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("%w: %w", ErrCancelled, err)
	}
	for p, l := range locals {
		if len(l) != c.length {
			return fmt.Errorf("%w: station %d person %d pattern length %d, cluster is %d", ErrLengthMismatch, id, p, len(l), c.length)
		}
	}
	center, stationEnd := transport.Pipe(c.downMeter, c.upMeter)
	station, err := NewStoredStation(id, locals, stationEnd, st)
	if err != nil {
		return err
	}
	if l := station.patternLength(); l != 0 && l != c.length {
		return fmt.Errorf("%w: station %d recovered pattern length %d, cluster is %d", ErrLengthMismatch, id, l, c.length)
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClusterClosed
	}
	if c.ep.find(id) >= 0 {
		c.mu.Unlock()
		return fmt.Errorf("%w: station %d", ErrStationExists, id)
	}
	if c.started {
		c.serveLocked(station)
	} else {
		c.pending = append(c.pending, station)
	}
	c.addMemberLocked(id, transport.NewMux(center))
	c.mu.Unlock()
	// A departed member may have left a digest under the same id; the
	// rejoined station's recovered digest is refetched cold.
	c.summaries.invalidate(id)
	c.notifyMembership()
	c.heal(ctx)
	return nil
}

// ServeStoredStation runs a durable base station over an established link
// until the center sends a shutdown or the link closes — the body of a
// remote station process started with di-cluster -role station -store wal.
// The station owns the store; it is closed (flushing the sync buffer) when
// the loop exits.
func ServeStoredStation(id uint32, locals map[core.PersonID]pattern.Pattern, link transport.Link, st store.Store) error {
	s, err := NewStoredStation(id, locals, link, st)
	if err != nil {
		return err
	}
	return s.Serve()
}
