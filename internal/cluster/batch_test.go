package cluster

import (
	"context"
	"encoding/binary"
	"sort"
	"sync/atomic"
	"testing"

	"dimatch/internal/core"
	"dimatch/internal/pattern"
	"dimatch/internal/transport"
	"dimatch/internal/wire"
)

func batchTestCluster(t *testing.T) *Cluster {
	t.Helper()
	data := map[uint32]map[core.PersonID]pattern.Pattern{
		0: {10: {1, 2, 3}, 11: {3, 4, 5}},
		1: {10: {2, 2, 2}, 12: {9, 9, 9}},
		2: {13: {5, 0, 5}, 14: {1, 1, 1}},
	}
	c, err := New(Options{}, data)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	t.Cleanup(func() { _ = c.Shutdown() })
	return c
}

func batchTestQueries() []core.Query {
	return []core.Query{
		{ID: 1, Locals: []pattern.Pattern{{1, 2, 3}, {2, 2, 2}}},
		{ID: 2, Locals: []pattern.Pattern{{3, 4, 5}}},
		{ID: 3, Locals: []pattern.Pattern{{9, 9, 9}}},
		{ID: 4, Locals: []pattern.Pattern{{5, 0, 5}}},
		{ID: 5, Locals: []pattern.Pattern{{1, 1, 1}}},
	}
}

// TestBatchedMatchesLegacyResults pins the central equivalence: every batch
// size — all-in-one, split rounds, and the fully legacy per-query path —
// must return identical ranked answers.
func TestBatchedMatchesLegacyResults(t *testing.T) {
	c := batchTestCluster(t)
	queries := batchTestQueries()
	ctx := context.Background()

	want, err := c.Search(ctx, queries) // default: one batched round
	if err != nil {
		t.Fatal(err)
	}
	if want.Cost.Batches != 1 {
		t.Fatalf("default search Batches = %d, want 1", want.Cost.Batches)
	}
	for _, q := range queries {
		if len(want.PerQuery[q.ID]) == 0 {
			t.Fatalf("query %d matched nothing; test data broken", q.ID)
		}
	}

	for _, n := range []int{1, 2, 3, 100} {
		got, err := c.Search(ctx, queries, WithBatching(n))
		if err != nil {
			t.Fatalf("batch size %d: %v", n, err)
		}
		for _, q := range queries {
			w, g := want.PerQuery[q.ID], got.PerQuery[q.ID]
			if len(w) != len(g) {
				t.Fatalf("batch size %d query %d: %d results, want %d", n, q.ID, len(g), len(w))
			}
			for i := range w {
				if w[i].Person != g[i].Person || w[i].Numerator != g[i].Numerator || w[i].Denominator != g[i].Denominator {
					t.Fatalf("batch size %d query %d result %d: %+v, want %+v", n, q.ID, i, g[i], w[i])
				}
			}
		}
	}
}

// TestBatchingCostAccounting pins the messages-per-query contract that the
// batch pipeline exists for.
func TestBatchingCostAccounting(t *testing.T) {
	c := batchTestCluster(t)
	queries := batchTestQueries() // 5 queries over 3 stations
	ctx := context.Background()

	tests := []struct {
		name        string
		opts        []SearchOption
		wantDown    uint64
		wantBatches int
	}{
		{name: "default one round", opts: nil, wantDown: 3, wantBatches: 1},
		{name: "rounds of two", opts: []SearchOption{WithBatching(2)}, wantDown: 9, wantBatches: 3},
		{name: "legacy per-query", opts: []SearchOption{WithBatching(1)}, wantDown: 15, wantBatches: 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			out, err := c.Search(ctx, queries, tt.opts...)
			if err != nil {
				t.Fatal(err)
			}
			if out.Cost.MessagesDown != tt.wantDown {
				t.Fatalf("MessagesDown = %d, want %d", out.Cost.MessagesDown, tt.wantDown)
			}
			if out.Cost.MessagesUp != tt.wantDown {
				t.Fatalf("MessagesUp = %d, want %d (one reply per request)", out.Cost.MessagesUp, tt.wantDown)
			}
			if out.Cost.Batches != tt.wantBatches {
				t.Fatalf("Batches = %d, want %d", out.Cost.Batches, tt.wantBatches)
			}
			if out.Cost.FilterBytes == 0 || out.Cost.TotalBytes() == 0 {
				t.Fatal("cost tallies empty")
			}
		})
	}
}

// serveV2Station emulates a pre-batch (wire version ≤ 2) base station: it
// answers stats with the legacy four-field payload (no MaxVersion byte) and
// handles per-query WBF frames, but has never heard of KindBatchQuery — if
// one arrives, the violation is recorded and the link dies, exactly as an
// old binary would fail on an unknown kind.
func serveV2Station(id uint32, locals map[core.PersonID]pattern.Pattern, link transport.Link, sawBatch *atomic.Bool) {
	persons := make([]core.PersonID, 0, len(locals))
	for p := range locals {
		persons = append(persons, p)
	}
	sort.Slice(persons, func(i, j int) bool { return persons[i] < persons[j] })
	pats := make([]pattern.Pattern, len(persons))
	length := 0
	var storage uint64
	for i, p := range persons {
		pats[i] = locals[p]
		length = len(pats[i])
		storage += 8 * uint64(len(pats[i]))
	}
	for {
		msg, err := link.Recv()
		if err != nil {
			return
		}
		var reply wire.Message
		switch msg.Kind {
		case wire.KindStats:
			var buf []byte
			buf = binary.AppendUvarint(buf, uint64(id))
			buf = binary.AppendUvarint(buf, uint64(len(persons)))
			buf = binary.AppendUvarint(buf, storage)
			buf = binary.AppendUvarint(buf, uint64(length))
			reply = wire.Message{Kind: wire.KindStatsReply, Payload: buf}
		case wire.KindWBFQuery:
			f, err := wire.DecodeWBFQuery(msg)
			if err != nil {
				return
			}
			reports, err := core.MatchResidents(f, persons, pats, 1)
			if err != nil {
				return
			}
			reply = wire.EncodeReports(wire.Reports{Station: id, Reports: reports})
		case wire.KindBatchQuery:
			sawBatch.Store(true)
			return
		case wire.KindShutdown:
			return
		default:
			return
		}
		if err := link.Send(reply.WithRequest(msg.Request)); err != nil {
			return
		}
	}
}

// TestV2PeerFallsBackToPerQueryFrames is the negotiation test: a cluster
// with one version-3 station and one version-2 station serves the modern
// one a single batch frame and the old one per-query frames, and the two
// stations' reports still merge into one exact answer.
func TestV2PeerFallsBackToPerQueryFrames(t *testing.T) {
	modernCenter, modernStation := transport.Pipe(nil, nil)
	oldCenter, oldStation := transport.Pipe(nil, nil)

	go func() {
		_ = NewStation(1, map[core.PersonID]pattern.Pattern{
			10: {1, 2, 3}, 11: {3, 4, 5},
		}, modernStation).Serve()
	}()
	var sawBatch atomic.Bool
	go serveV2Station(2, map[core.PersonID]pattern.Pattern{
		10: {2, 2, 2}, 12: {9, 9, 9},
	}, oldStation, &sawBatch)

	c, err := NewWithLinks(Options{}, map[uint32]transport.Link{
		1: modernCenter,
		2: oldCenter,
	}, 3, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	ctx := context.Background()

	// The stats snapshot must expose the version asymmetry.
	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Stations) != 2 || st.Stations[0].WireVersion != int(wire.LatestVersion) || st.Stations[1].WireVersion != int(wire.Version2) {
		t.Fatalf("stats versions: %+v", st.Stations)
	}

	queries := []core.Query{
		{ID: 1, Locals: []pattern.Pattern{{1, 2, 3}, {2, 2, 2}}},
		{ID: 2, Locals: []pattern.Pattern{{3, 4, 5}}},
		{ID: 3, Locals: []pattern.Pattern{{9, 9, 9}}},
	}
	out, err := c.Search(ctx, queries)
	if err != nil {
		t.Fatal(err)
	}
	if sawBatch.Load() {
		t.Fatal("v2 station received a batch frame")
	}
	// 1 batch frame to station 1 + 3 per-query frames to station 2.
	if out.Cost.MessagesDown != 4 {
		t.Fatalf("MessagesDown = %d, want 4 (1 batched + 3 legacy)", out.Cost.MessagesDown)
	}
	if out.Cost.StationsFailed != 0 {
		t.Fatalf("StationsFailed = %d", out.Cost.StationsFailed)
	}

	// Person 10's pieces live on both stations; the cross-version merge must
	// still sum them to a complete partition (score 1).
	var found10 bool
	for _, r := range out.PerQuery[1] {
		if r.Person == 10 {
			found10 = true
			if r.Score() != 1 {
				t.Fatalf("person 10 score %v, want 1 (pieces from both versions)", r.Score())
			}
			if r.Stations != 2 {
				t.Fatalf("person 10 reported by %d stations, want 2", r.Stations)
			}
		}
	}
	if !found10 {
		t.Fatalf("person 10 missing from query 1: %+v", out.PerQuery[1])
	}
	// Query 3's only match lives on the v2 station.
	if len(out.PerQuery[3]) == 0 || out.PerQuery[3][0].Person != 12 {
		t.Fatalf("query 3 results %+v, want person 12 via the legacy path", out.PerQuery[3])
	}
}

// TestDesyncedBatchReplyIsTypedError: a station echoing the wrong query
// count fails the search with a descriptive error, not a panic.
func TestDesyncedBatchReplyIsTypedError(t *testing.T) {
	center, stationEnd := transport.Pipe(nil, nil)
	go func() {
		for {
			msg, err := stationEnd.Recv()
			if err != nil {
				return
			}
			var reply wire.Message
			switch msg.Kind {
			case wire.KindStats:
				reply = wire.EncodeStatsReply(wire.StatsReply{Station: 1, Length: 3})
			case wire.KindBatchQuery:
				reply = wire.EncodeBatchReply(wire.BatchReply{Station: 1, Queries: 99})
			case wire.KindShutdown:
				return
			default:
				return
			}
			if err := stationEnd.Send(reply.WithRequest(msg.Request)); err != nil {
				return
			}
		}
	}()
	c, err := NewWithLinks(Options{}, map[uint32]transport.Link{1: center}, 3, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()

	_, err = c.Search(context.Background(), []core.Query{{ID: 1, Locals: []pattern.Pattern{{1, 2, 3}}}})
	if err == nil {
		t.Fatal("desynced batch reply accepted")
	}
}

// TestAllV2FleetRunsPureLegacy: when no station can accept batch frames,
// the round runs purely legacy — no combined filter is billed and no batch
// round is counted.
func TestAllV2FleetRunsPureLegacy(t *testing.T) {
	oldCenter, oldStation := transport.Pipe(nil, nil)
	var sawBatch atomic.Bool
	go serveV2Station(2, map[core.PersonID]pattern.Pattern{
		10: {2, 2, 2}, 12: {9, 9, 9},
	}, oldStation, &sawBatch)

	c, err := NewWithLinks(Options{}, map[uint32]transport.Link{2: oldCenter}, 3, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()

	queries := []core.Query{
		{ID: 1, Locals: []pattern.Pattern{{2, 2, 2}}},
		{ID: 2, Locals: []pattern.Pattern{{9, 9, 9}}},
	}
	out, err := c.Search(context.Background(), queries)
	if err != nil {
		t.Fatal(err)
	}
	if sawBatch.Load() {
		t.Fatal("v2-only fleet received a batch frame")
	}
	if out.Cost.Batches != 0 {
		t.Fatalf("Batches = %d, want 0 (no batch frame was ever sent)", out.Cost.Batches)
	}
	if out.Cost.MessagesDown != 2 {
		t.Fatalf("MessagesDown = %d, want 2 (one legacy frame per query)", out.Cost.MessagesDown)
	}
	// FilterBytes counts only the two per-query filters actually built —
	// compare against a pure-legacy search, which bills identically.
	legacy, err := c.Search(context.Background(), queries, WithBatching(1))
	if err != nil {
		t.Fatal(err)
	}
	if out.Cost.FilterBytes != legacy.Cost.FilterBytes {
		t.Fatalf("FilterBytes %d vs pure-legacy %d: combined filter was billed without being sent",
			out.Cost.FilterBytes, legacy.Cost.FilterBytes)
	}
	if len(out.PerQuery[2]) == 0 || out.PerQuery[2][0].Person != 12 {
		t.Fatalf("query 2 results %+v", out.PerQuery[2])
	}
}

// TestBatchQueriesClampsToWireLimit: a search larger than one frame's
// query limit splits into multiple rounds instead of failing to encode.
func TestBatchQueriesClampsToWireLimit(t *testing.T) {
	queries := make([]core.Query, wire.MaxBatchQueries+5)
	rounds := batchQueries(queries, 0)
	if len(rounds) != 2 || len(rounds[0]) != wire.MaxBatchQueries || len(rounds[1]) != 5 {
		t.Fatalf("rounds %d/%v, want [MaxBatchQueries, 5]", len(rounds), []int{len(rounds[0])})
	}
	if rounds := batchQueries(queries, wire.MaxBatchQueries*3); len(rounds) != 2 {
		t.Fatalf("oversized explicit bound not clamped: %d rounds", len(rounds))
	}
	if rounds := batchQueries(queries[:10], 0); len(rounds) != 1 || len(rounds[0]) != 10 {
		t.Fatalf("small set split needlessly: %d rounds", len(rounds))
	}
	if rounds := batchQueries(queries[:10], 3); len(rounds) != 4 {
		t.Fatalf("explicit bound ignored: %d rounds", len(rounds))
	}
}

// TestVersionDiscoveryRetriesAfterTransientStatsFailure: a station whose
// first stats answer is corrupt (failing the epoch's snapshot fetch) is
// re-probed directly, so a capable v3 peer still gets batch frames instead
// of being stuck on the per-query path for the epoch's lifetime.
func TestVersionDiscoveryRetriesAfterTransientStatsFailure(t *testing.T) {
	center, stationEnd := transport.Pipe(nil, nil)
	persons := []core.PersonID{10}
	pats := []pattern.Pattern{{2, 2, 2}}
	var statsCalls, batchCalls atomic.Int32
	go func() {
		for {
			msg, err := stationEnd.Recv()
			if err != nil {
				return
			}
			var reply wire.Message
			switch msg.Kind {
			case wire.KindStats:
				if statsCalls.Add(1) == 1 {
					// Transient fault: a reply the center cannot decode.
					reply = wire.Message{Kind: wire.KindStatsReply, Payload: []byte{0xFF}}
				} else {
					reply = wire.EncodeStatsReply(wire.StatsReply{Station: 1, Residents: 1, Length: 3})
				}
			case wire.KindBatchQuery:
				batchCalls.Add(1)
				bq, err := wire.DecodeBatchQuery(msg)
				if err != nil {
					return
				}
				reports, err := core.MatchResidents(bq.Filter, persons, pats, 1)
				if err != nil {
					return
				}
				reply = wire.EncodeBatchReply(wire.BatchReply{Station: 1, Queries: uint32(len(bq.Queries)), Reports: reports})
			case wire.KindShutdown:
				return
			default:
				return
			}
			if err := stationEnd.Send(reply.WithRequest(msg.Request)); err != nil {
				return
			}
		}
	}()

	c, err := NewWithLinks(Options{}, map[uint32]transport.Link{1: center}, 3, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()

	queries := []core.Query{
		{ID: 1, Locals: []pattern.Pattern{{2, 2, 2}}},
		{ID: 2, Locals: []pattern.Pattern{{1, 1, 1}}},
	}
	out, err := c.Search(context.Background(), queries)
	if err != nil {
		t.Fatal(err)
	}
	if batchCalls.Load() != 1 || out.Cost.Batches != 1 {
		t.Fatalf("batch frames %d, Batches %d: v3 station fell back to per-query after a transient stats fault",
			batchCalls.Load(), out.Cost.Batches)
	}
	if statsCalls.Load() < 2 {
		t.Fatalf("stats exchanges %d, want the failed fetch plus a direct retry", statsCalls.Load())
	}
	if len(out.PerQuery[1]) == 0 || out.PerQuery[1][0].Person != 10 {
		t.Fatalf("query 1 results %+v", out.PerQuery[1])
	}
}
