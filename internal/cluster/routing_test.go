package cluster

import (
	"context"
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"

	"dimatch/internal/core"
	"dimatch/internal/pattern"
	"dimatch/internal/transport"
	"dimatch/internal/wire"
)

// routingTestCluster holds well-separated stores: each station's residents
// cluster around a distinct magnitude, so a single-target query admits
// exactly one station.
func routingTestCluster(t *testing.T) *Cluster {
	t.Helper()
	data := map[uint32]map[core.PersonID]pattern.Pattern{
		0: {10: {1, 2, 3}, 11: {2, 1, 2}},
		1: {20: {50, 60, 70}, 21: {55, 66, 77}},
		2: {30: {500, 600, 700}},
		3: {40: {5000, 6000, 7000}},
	}
	c, err := New(Options{}, data)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	t.Cleanup(func() { _ = c.Shutdown() })
	return c
}

// assertSameResults fails unless the two outcomes rank identically for
// every query.
func assertSameResults(t *testing.T, label string, queries []core.Query, want, got *Outcome) {
	t.Helper()
	for _, q := range queries {
		w, g := want.PerQuery[q.ID], got.PerQuery[q.ID]
		if len(w) != len(g) {
			t.Fatalf("%s query %d: %d results, want %d (%v vs %v)", label, q.ID, len(g), len(w), g, w)
		}
		for i := range w {
			if w[i].Person != g[i].Person || w[i].Numerator != g[i].Numerator || w[i].Denominator != g[i].Denominator {
				t.Fatalf("%s query %d result %d: %+v, want %+v", label, q.ID, i, g[i], w[i])
			}
		}
	}
}

// TestRoutedSearchPrunesAndMatchesFullFanOut is the tentpole's core pin: a
// routed search answers exactly like full fan-out while visiting only the
// stations that can report, across batched and legacy pipelines.
func TestRoutedSearchPrunesAndMatchesFullFanOut(t *testing.T) {
	c := routingTestCluster(t)
	ctx := context.Background()
	queries := []core.Query{{ID: 1, Locals: []pattern.Pattern{{50, 60, 70}}}}

	full, err := c.Search(ctx, queries, WithRouting(RoutingFull))
	if err != nil {
		t.Fatal(err)
	}
	if full.Cost.StationsPruned != 0 || full.Cost.SummaryRefreshes != 0 {
		t.Fatalf("full fan-out reported routing work: %+v", full.Cost)
	}
	if full.Cost.MessagesDown != 4 {
		t.Fatalf("full MessagesDown = %d, want 4", full.Cost.MessagesDown)
	}

	routed, err := c.Search(ctx, queries) // routing is the default
	if err != nil {
		t.Fatal(err)
	}
	assertSameResults(t, "routed", queries, full, routed)
	if routed.Cost.StationsPruned != 3 {
		t.Fatalf("StationsPruned = %d, want 3 (only station 1 can answer)", routed.Cost.StationsPruned)
	}
	if routed.Cost.MessagesDown != 1 {
		t.Fatalf("routed MessagesDown = %d, want 1", routed.Cost.MessagesDown)
	}
	if routed.Cost.SummaryRefreshes != 4 || routed.Cost.SummaryBytesUp == 0 {
		t.Fatalf("first routed search should refresh all 4 summaries: %+v", routed.Cost)
	}

	// The cache is warm now: the next routed search refreshes nothing.
	warm, err := c.Search(ctx, queries)
	if err != nil {
		t.Fatal(err)
	}
	assertSameResults(t, "warm", queries, full, warm)
	if warm.Cost.SummaryRefreshes != 0 || warm.Cost.StationsPruned != 3 {
		t.Fatalf("warm routed search: %+v", warm.Cost)
	}

	// The legacy per-query pipeline routes identically.
	legacy, err := c.Search(ctx, queries, WithBatching(1))
	if err != nil {
		t.Fatal(err)
	}
	assertSameResults(t, "legacy", queries, full, legacy)
	if legacy.Cost.StationsPruned != 3 || legacy.Cost.MessagesDown != 1 {
		t.Fatalf("legacy routed search: %+v", legacy.Cost)
	}
}

// TestRoutedBatchUnionsQueryAdmits: a batch visits the union of its
// queries' admitting stations — pruning is per batch, not per query.
func TestRoutedBatchUnionsQueryAdmits(t *testing.T) {
	c := routingTestCluster(t)
	ctx := context.Background()
	queries := []core.Query{
		{ID: 1, Locals: []pattern.Pattern{{1, 2, 3}}},
		{ID: 2, Locals: []pattern.Pattern{{500, 600, 700}}},
	}
	full, err := c.Search(ctx, queries, WithRouting(RoutingFull))
	if err != nil {
		t.Fatal(err)
	}
	routed, err := c.Search(ctx, queries)
	if err != nil {
		t.Fatal(err)
	}
	assertSameResults(t, "union", queries, full, routed)
	if routed.Cost.StationsPruned != 2 {
		t.Fatalf("StationsPruned = %d, want 2 (stations 0 and 2 admit)", routed.Cost.StationsPruned)
	}
}

// TestRoutingFallsBackWhenNothingAdmits pins the empty-candidate fallback:
// a query matching no station must run a full fan-out (stale summaries must
// never turn a search into a silent no-op), not a zero-station one.
func TestRoutingFallsBackWhenNothingAdmits(t *testing.T) {
	c := routingTestCluster(t)
	ctx := context.Background()
	queries := []core.Query{{ID: 1, Locals: []pattern.Pattern{{999999, 1, 1}}}}
	out, err := c.Search(ctx, queries)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.PerQuery[1]) != 0 {
		t.Fatalf("impossible query matched %v", out.PerQuery[1])
	}
	if out.Cost.StationsPruned != 0 {
		t.Fatalf("StationsPruned = %d, want 0 (all-pruned plans fall back to full fan-out)", out.Cost.StationsPruned)
	}
	if out.Cost.MessagesDown != 4 {
		t.Fatalf("MessagesDown = %d, want 4 (full fallback)", out.Cost.MessagesDown)
	}
}

// TestIngestDeltaUpdatesSummary pins the freshness contract on the ingest
// side: a person ingested onto a station the warm cache prunes must be
// found by the very next routed search, without a summary refetch (the
// cached digest absorbs the delta).
func TestIngestDeltaUpdatesSummary(t *testing.T) {
	c := routingTestCluster(t)
	ctx := context.Background()
	probe := []core.Query{{ID: 1, Locals: []pattern.Pattern{{7, 8, 9}}}}

	// Warm the summary cache; nothing matches {7,8,9} yet.
	if _, err := c.Search(ctx, probe); err != nil {
		t.Fatal(err)
	}
	// Station 3 (residents around 6000) is prunable for this query; land
	// the newcomer there.
	if err := c.Ingest(ctx, 3, map[core.PersonID]pattern.Pattern{99: {7, 8, 9}}); err != nil {
		t.Fatal(err)
	}
	out, err := c.Search(ctx, probe)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.PerQuery[1]) != 1 || out.PerQuery[1][0].Person != 99 {
		t.Fatalf("ingested person not found by routed search: %v", out.PerQuery[1])
	}
	if out.Cost.SummaryRefreshes != 0 {
		t.Fatalf("SummaryRefreshes = %d, want 0 (ingest delta-updates the cached digest)", out.Cost.SummaryRefreshes)
	}
	if out.Cost.StationsPruned == 0 {
		t.Fatal("unrelated stations should still be pruned after the delta update")
	}
}

// TestEvictInvalidatesSummary pins the eviction side: the digest is dropped
// (next routed search refetches) and the evicted person stays gone; the
// interim staleness can only waste probes, never resurrect results.
func TestEvictInvalidatesSummary(t *testing.T) {
	c := routingTestCluster(t)
	ctx := context.Background()
	queries := []core.Query{{ID: 1, Locals: []pattern.Pattern{{500, 600, 700}}}}

	if _, err := c.Search(ctx, queries); err != nil { // warm cache
		t.Fatal(err)
	}
	if err := c.Evict(ctx, 2, []core.PersonID{30}); err != nil {
		t.Fatal(err)
	}
	out, err := c.Search(ctx, queries)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.PerQuery[1]) != 0 {
		t.Fatalf("evicted person still retrieved: %v", out.PerQuery[1])
	}
	if out.Cost.SummaryRefreshes != 1 {
		t.Fatalf("SummaryRefreshes = %d, want 1 (evict invalidates station 2's digest)", out.Cost.SummaryRefreshes)
	}
}

// TestRoutedChurnNeverLosesRecall is the stale-summary correctness sweep
// (run it under -race): random ingests and evicts interleave with routed
// searches, and after every mutation the routed answer must equal the full
// fan-out answer on the same store — summaries may only ever waste probes.
func TestRoutedChurnNeverLosesRecall(t *testing.T) {
	c := routingTestCluster(t)
	ctx := context.Background()
	rng := rand.New(rand.NewSource(3))
	stations := []uint32{0, 1, 2, 3}
	next := core.PersonID(1000)
	type placedAt struct {
		person  core.PersonID
		station uint32
	}
	var live []placedAt

	for step := 0; step < 60; step++ {
		switch {
		case len(live) == 0 || rng.Intn(2) == 0:
			p := next
			next++
			s := stations[rng.Intn(len(stations))]
			pat := pattern.Pattern{rng.Int63n(40) + 1, rng.Int63n(40), rng.Int63n(40)}
			if err := c.Ingest(ctx, s, map[core.PersonID]pattern.Pattern{p: pat}); err != nil {
				t.Fatal(err)
			}
			live = append(live, placedAt{person: p, station: s})
		default:
			i := rng.Intn(len(live)) // delete a random live person
			if err := c.Evict(ctx, live[i].station, []core.PersonID{live[i].person}); err != nil {
				t.Fatal(err)
			}
			live = append(live[:i], live[i+1:]...)
		}
		queries := []core.Query{
			{ID: 1, Locals: []pattern.Pattern{{rng.Int63n(40) + 1, rng.Int63n(40), rng.Int63n(40)}}},
			{ID: 2, Locals: []pattern.Pattern{{50, 60, 70}}},
		}
		full, err := c.Search(ctx, queries, WithRouting(RoutingFull))
		if err != nil {
			t.Fatal(err)
		}
		routed, err := c.Search(ctx, queries)
		if err != nil {
			t.Fatal(err)
		}
		assertSameResults(t, fmt.Sprintf("step %d", step), queries, full, routed)
	}
}

// servePreRoutingStation emulates a wire-v4 station: it answers stats
// (advertising MaxVersion 4) and per-query/batch frames, but a KindSummary
// frame is recorded as a protocol violation and kills the link, exactly as
// an old binary would fail on an unknown kind.
func servePreRoutingStation(id uint32, locals map[core.PersonID]pattern.Pattern, link transport.Link, sawSummary *atomic.Bool) {
	st := NewStation(id, locals, link)
	for {
		msg, err := link.Recv()
		if err != nil {
			return
		}
		var reply *wire.Message
		switch msg.Kind {
		case wire.KindStats:
			length := 0
			if len(st.locals) > 0 {
				length = len(st.locals[0])
			}
			r := wire.EncodeStatsReply(wire.StatsReply{
				Station:      id,
				Residents:    uint64(len(st.persons)),
				StorageBytes: st.StorageBytes(),
				Length:       uint32(length),
				MaxVersion:   wire.Version4,
			})
			reply = &r
		case wire.KindBatchQuery:
			reply, err = st.handleBatch(msg)
		case wire.KindWBFQuery:
			reply, err = st.handleWBF(msg)
		case wire.KindSummary:
			sawSummary.Store(true)
			return
		case wire.KindShutdown:
			return
		default:
			return
		}
		if err != nil {
			return
		}
		if err := link.Send(reply.WithRequest(msg.Request)); err != nil {
			return
		}
	}
}

// TestPreV5StationIsNeverPruned is the negotiation pin: a station that
// advertised wire v4 receives no summary frame and is visited by every
// routed search, while its v5 neighbours still get pruned.
func TestPreV5StationIsNeverPruned(t *testing.T) {
	modernCenter, modernStation := transport.Pipe(nil, nil)
	oldCenter, oldStation := transport.Pipe(nil, nil)
	go func() {
		_ = NewStation(1, map[core.PersonID]pattern.Pattern{10: {1, 2, 3}}, modernStation).Serve()
	}()
	var sawSummary atomic.Bool
	go servePreRoutingStation(2, map[core.PersonID]pattern.Pattern{20: {50, 60, 70}}, oldStation, &sawSummary)

	c, err := NewWithLinks(Options{}, map[uint32]transport.Link{1: modernCenter, 2: oldCenter}, 3, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	ctx := context.Background()

	// The query matches nothing on either station; the v5 station is
	// pruned, the v4 one must still be visited.
	out, err := c.Search(ctx, []core.Query{{ID: 1, Locals: []pattern.Pattern{{900, 900, 900}}}})
	if err != nil {
		t.Fatal(err)
	}
	if sawSummary.Load() {
		t.Fatal("v4 station received a summary frame")
	}
	if out.Cost.StationsPruned != 1 {
		t.Fatalf("StationsPruned = %d, want 1 (only the v5 station is prunable)", out.Cost.StationsPruned)
	}
	if out.Cost.StationsFailed != 0 {
		t.Fatalf("StationsFailed = %d", out.Cost.StationsFailed)
	}
	// And the v4 station's matches are still found end to end.
	hit, err := c.Search(ctx, []core.Query{{ID: 1, Locals: []pattern.Pattern{{50, 60, 70}}}})
	if err != nil {
		t.Fatal(err)
	}
	if len(hit.PerQuery[1]) != 1 || hit.PerQuery[1][0].Person != 20 {
		t.Fatalf("v4 station's match lost under routing: %v", hit.PerQuery[1])
	}
}

// TestRoutingPlacedReplicas: routed searches on a placement-first cluster
// dedupe replicas exactly like full fan-out and visit only the replica
// holders.
func TestRoutingPlacedReplicas(t *testing.T) {
	c, err := NewEmpty(Options{}, []uint32{1, 2, 3, 4, 5, 6}, 3)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	defer c.Shutdown()
	ctx := context.Background()

	patterns := make(map[core.PersonID]pattern.Pattern)
	for p := core.PersonID(1); p <= 30; p++ {
		patterns[p] = pattern.Pattern{int64(p) * 10, int64(p), int64(p) * 3}
	}
	if err := c.Place(ctx, patterns, WithReplication(2)); err != nil {
		t.Fatal(err)
	}

	queries := []core.Query{{ID: 1, Locals: []pattern.Pattern{patterns[17]}}}
	full, err := c.Search(ctx, queries, WithRouting(RoutingFull))
	if err != nil {
		t.Fatal(err)
	}
	routed, err := c.Search(ctx, queries)
	if err != nil {
		t.Fatal(err)
	}
	assertSameResults(t, "placed", queries, full, routed)
	if len(routed.PerQuery[1]) == 0 {
		t.Fatal("placed person not found")
	}
	r := routed.PerQuery[1][0]
	if r.Person != 17 || r.Score() != 1.0 {
		t.Fatalf("replica dedup broke under routing: %+v", r)
	}
	if routed.Cost.StationsPruned < 3 {
		t.Fatalf("StationsPruned = %d, want most of the 6 stations (R=2 replicas)", routed.Cost.StationsPruned)
	}
}

// TestRoutingSurvivesDeadStation: a station killed after the cache warmed
// stays in the plan (its summary admits), fails the exchange, and is
// counted in StationsFailed exactly like an unrouted search would.
func TestRoutingSurvivesDeadStation(t *testing.T) {
	c := routingTestCluster(t)
	ctx := context.Background()
	queries := []core.Query{{ID: 1, Locals: []pattern.Pattern{{50, 60, 70}}}}
	if _, err := c.Search(ctx, queries); err != nil { // warm
		t.Fatal(err)
	}
	if err := c.KillStation(1); err != nil {
		t.Fatal(err)
	}
	out, err := c.Search(ctx, queries)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.PerQuery[1]) != 0 {
		t.Fatalf("dead station's residents retrieved: %v", out.PerQuery[1])
	}
	if out.Cost.StationsFailed != 1 {
		t.Fatalf("StationsFailed = %d, want 1", out.Cost.StationsFailed)
	}
}

// TestIngestFailureInvalidatesSummary pins the lost-ack staleness hole: a
// station that APPLIES an ingest but fails the acknowledgement (the
// exchange errors at the coordinator) must not keep a pre-ingest digest in
// the cache — that is the one staleness direction that loses recall. The
// failed ingest invalidates the slot, so the next routed search refetches
// and finds the applied resident.
func TestIngestFailureInvalidatesSummary(t *testing.T) {
	center, stationEnd := transport.Pipe(nil, nil)
	st := NewStation(1, map[core.PersonID]pattern.Pattern{10: {1, 2, 3}}, nil)
	go func() {
		for {
			msg, err := stationEnd.Recv()
			if err != nil {
				return
			}
			var reply *wire.Message
			switch msg.Kind {
			case wire.KindStats:
				reply = st.handleStats()
			case wire.KindSummary:
				reply, err = st.handleSummary()
			case wire.KindBatchQuery:
				reply, err = st.handleBatch(msg)
			case wire.KindIngest:
				// Apply for real, then answer with a frame the coordinator
				// cannot decode as an Ack — the applied-but-unacknowledged
				// failure.
				if _, err = st.handleIngest(msg); err == nil {
					r := wire.StatsMessage()
					reply = &r
				}
			case wire.KindShutdown:
				return
			default:
				return
			}
			if err != nil {
				return
			}
			if err := stationEnd.Send(reply.WithRequest(msg.Request)); err != nil {
				return
			}
		}
	}()
	// A second, ordinary station: routing is skipped entirely on
	// single-station clusters, and the test needs the digest cache warm.
	otherCenter, otherEnd := transport.Pipe(nil, nil)
	go func() {
		_ = NewStation(2, map[core.PersonID]pattern.Pattern{20: {500, 600, 700}}, otherEnd).Serve()
	}()
	c, err := NewWithLinks(Options{}, map[uint32]transport.Link{1: center, 2: otherCenter}, 3, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	ctx := context.Background()

	probe := []core.Query{{ID: 1, Locals: []pattern.Pattern{{7, 8, 9}}}}
	warm, err := c.Search(ctx, probe) // warm the (pre-ingest) digests
	if err != nil {
		t.Fatal(err)
	}
	if warm.Cost.SummaryRefreshes != 2 {
		t.Fatalf("warm-up SummaryRefreshes = %d, want 2", warm.Cost.SummaryRefreshes)
	}
	err = c.Ingest(ctx, 1, map[core.PersonID]pattern.Pattern{99: {7, 8, 9}})
	if err == nil {
		t.Fatal("corrupt ack accepted")
	}
	out, err := c.Search(ctx, probe)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.PerQuery[1]) != 1 || out.PerQuery[1][0].Person != 99 {
		t.Fatalf("applied-but-unacked ingest lost under routing: %v (stale digest survived the failed exchange)", out.PerQuery[1])
	}
	if out.Cost.SummaryRefreshes != 1 {
		t.Fatalf("SummaryRefreshes = %d, want 1 (failed ingest must invalidate the slot)", out.Cost.SummaryRefreshes)
	}
}

// TestParseRoutingMode pins the CLI surface.
func TestParseRoutingMode(t *testing.T) {
	for in, want := range map[string]RoutingMode{"summary": RoutingSummary, " FULL ": RoutingFull} {
		got, err := ParseRoutingMode(in)
		if err != nil || got != want {
			t.Fatalf("ParseRoutingMode(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseRoutingMode("sideways"); err == nil {
		t.Fatal("bad mode accepted")
	}
	if RoutingSummary.String() != "summary" || RoutingFull.String() != "full" {
		t.Fatal("RoutingMode.String drifted")
	}
}
