package cluster

import (
	"sort"

	"dimatch/internal/core"
	"dimatch/internal/pattern"
)

// Oracle computes the exact IPM answer (Eq. 2 over materialized globals)
// directly from the raw station data, bypassing the distributed machinery.
// It is the ground-truth reference the naive strategy must equal and the
// recall baseline for the filter strategies.
func Oracle(stationData map[uint32]map[core.PersonID]pattern.Pattern, query core.Query, eps int64, topK int) ([]core.PersonID, error) {
	if err := query.Validate(); err != nil {
		return nil, err
	}
	qGlobal, err := query.Global()
	if err != nil {
		return nil, err
	}
	globals := make(map[core.PersonID]pattern.Pattern)
	for _, locals := range stationData {
		for p, l := range locals {
			g := globals[p]
			if g == nil {
				g = make(pattern.Pattern, len(l))
				globals[p] = g
			}
			for i, v := range l {
				if i < len(g) {
					g[i] += v
				}
			}
		}
	}
	type cand struct {
		person core.PersonID
		dist   int64
	}
	var cands []cand
	for p, g := range globals {
		d, err := pattern.MaxAbsDiff(qGlobal, g)
		if err != nil {
			continue
		}
		if d <= eps {
			cands = append(cands, cand{person: p, dist: d})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].dist != cands[j].dist {
			return cands[i].dist < cands[j].dist
		}
		return cands[i].person < cands[j].person
	})
	if topK > 0 && len(cands) > topK {
		cands = cands[:topK]
	}
	out := make([]core.PersonID, len(cands))
	for i, c := range cands {
		out[i] = c.person
	}
	return out, nil
}
