package cluster

import (
	"context"
	"testing"

	"dimatch/internal/core"
	"dimatch/internal/pattern"
	"dimatch/internal/transport"
)

// threeTier wires stations behind leaf regions, leaf regions behind mid
// regions, and mid regions behind a root — regions of regions, so a root
// search crosses three coordinator tiers. With hierData's 12 stations and
// (perLeaf=3, leavesPerMid=2): leaves 200..203 over stations {0-2} {3-5}
// {6-8} {9-11}, mids 100..101 over leaves {200,201} {202,203}.
//
// Shutdown runs top-down like the 2-tier harness: each tier's shutdown
// frame makes the ServeRegion loops below it return without touching their
// sub-clusters, which the test then shuts down itself.
type threeTier struct {
	root   *Cluster
	mids   []*Cluster
	leaves []*Cluster
}

func buildThreeTier(t *testing.T, data map[uint32]map[core.PersonID]pattern.Pattern, perLeaf, leavesPerMid, length int) *threeTier {
	t.Helper()
	var ids []uint32
	for id := range data {
		ids = append(ids, id)
	}
	for i := range ids {
		for j := i + 1; j < len(ids); j++ {
			if ids[j] < ids[i] {
				ids[i], ids[j] = ids[j], ids[i]
			}
		}
	}
	tt := &threeTier{}
	rootLinks := make(map[uint32]transport.Link)
	midLinks := make(map[uint32]transport.Link)
	flushMid := func() {
		if len(midLinks) == 0 {
			return
		}
		mc, err := NewWithLinks(Options{}, midLinks, length, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		tt.mids = append(tt.mids, mc)
		midID := uint32(100 + len(tt.mids) - 1)
		rootEnd, midEnd := transport.Pipe(nil, nil)
		go func() { _ = ServeRegion(midID, mc, midEnd) }()
		rootLinks[midID] = rootEnd
		midLinks = make(map[uint32]transport.Link)
	}
	for start := 0; start < len(ids); start += perLeaf {
		end := start + perLeaf
		if end > len(ids) {
			end = len(ids)
		}
		sub := make(map[uint32]map[core.PersonID]pattern.Pattern, end-start)
		for _, id := range ids[start:end] {
			sub[id] = data[id]
		}
		lc, err := New(Options{}, sub)
		if err != nil {
			t.Fatal(err)
		}
		lc.Start()
		tt.leaves = append(tt.leaves, lc)
		leafID := uint32(200 + start/perLeaf)
		midEnd, leafEnd := transport.Pipe(nil, nil)
		go func() { _ = ServeRegion(leafID, lc, leafEnd) }()
		midLinks[leafID] = midEnd
		if len(midLinks) == leavesPerMid {
			flushMid()
		}
	}
	flushMid()
	root, err := NewWithLinks(Options{}, rootLinks, length, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	tt.root = root
	t.Cleanup(func() {
		_ = root.Shutdown()
		for _, mc := range tt.mids {
			_ = mc.Shutdown()
		}
		for _, lc := range tt.leaves {
			_ = lc.Shutdown()
		}
	})
	return tt
}

// TestThreeTierSearchMatchesFlat is satellite 3's equivalence pin: a
// three-tier hierarchy (regions of regions) answers every routing mode
// byte-identically to a flat full fan-out over the same 12 stations, and
// the cost report shows the query actually descended three tiers.
func TestThreeTierSearchMatchesFlat(t *testing.T) {
	data := hierData()
	flat, err := New(Options{}, data)
	if err != nil {
		t.Fatal(err)
	}
	flat.Start()
	t.Cleanup(func() { _ = flat.Shutdown() })
	tt := buildThreeTier(t, data, 3, 2, 3)

	ctx := context.Background()
	queries := []core.Query{
		{ID: 1, Locals: []pattern.Pattern{{10, 11, 12}}},          // station 0 (leaf 200, mid 100)
		{ID: 2, Locals: []pattern.Pattern{{7010, 7011, 7012}}},    // station 7 (leaf 202, mid 101)
		{ID: 3, Locals: []pattern.Pattern{{40404, 40404, 40404}}}, // empty everywhere
	}
	want, err := flat.Search(ctx, queries, WithRouting(RoutingFull))
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []RoutingMode{RoutingFull, RoutingSummary, RoutingTree} {
		got, err := tt.root.Search(ctx, queries, WithRouting(mode))
		if err != nil {
			t.Fatal(err)
		}
		assertSameResults(t, "3-tier "+mode.String(), queries, want, got)
		if got.Cost.TierHops != 3 {
			t.Fatalf("%v TierHops = %d, want 3", mode, got.Cost.TierHops)
		}
		if mode != RoutingFull && got.Cost.StationsPruned == 0 {
			t.Fatalf("%v pruned nothing across three tiers", mode)
		}
	}
}

// TestThreeTierRegionKillDegradation kills one leaf region at depth 2 (from
// its mid-tier parent) and checks graceful degradation seen from the root:
// the severed leaf's residents disappear, everyone else still reports at
// full score, and the partial failure propagates up two coordinator tiers
// into the root's cost report.
func TestThreeTierRegionKillDegradation(t *testing.T) {
	tt := buildThreeTier(t, hierData(), 3, 2, 3)
	ctx := context.Background()
	inKilled := []core.Query{{ID: 1, Locals: []pattern.Pattern{{10, 11, 12}}}}        // person 1, station 0, leaf 200
	elsewhere := []core.Query{{ID: 2, Locals: []pattern.Pattern{{7010, 7011, 7012}}}} // person 22, station 7, leaf 202

	for _, qs := range [][]core.Query{inKilled, elsewhere} {
		out, err := tt.root.Search(ctx, qs)
		if err != nil {
			t.Fatal(err)
		}
		if len(out.PerQuery[qs[0].ID]) == 0 || out.Cost.StationsFailed != 0 {
			t.Fatalf("pre-kill search degraded: %+v", out)
		}
	}

	// Sever leaf 200 from mid 100: stations 0-2 (persons 1..9) are gone.
	if err := tt.mids[0].KillStation(200); err != nil {
		t.Fatal(err)
	}

	lost, err := tt.root.Search(ctx, inKilled)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range lost.PerQuery[1] {
		if r.Person <= 9 {
			t.Fatalf("person %d answered from a killed region", r.Person)
		}
	}
	if lost.Cost.StationsFailed == 0 {
		t.Fatal("leaf-region kill did not propagate into the root's failure count")
	}

	kept, err := tt.root.Search(ctx, elsewhere)
	if err != nil {
		t.Fatal(err)
	}
	if len(kept.PerQuery[2]) == 0 || kept.PerQuery[2][0].Person != 22 {
		t.Fatalf("survivors stopped answering after a sibling kill: %v", kept.PerQuery[2])
	}
	if kept.Cost.TierHops != 3 {
		t.Fatalf("post-kill TierHops = %d, want 3", kept.Cost.TierHops)
	}
}
