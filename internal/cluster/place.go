package cluster

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"dimatch/internal/adapt"
	"dimatch/internal/core"
	"dimatch/internal/pattern"
	"dimatch/internal/placement"
	"dimatch/internal/transport"
	"dimatch/internal/wire"
)

// DefaultReplication is the replica count Place uses when WithReplication is
// not given: every placed pattern survives any single station failure.
const DefaultReplication = 2

// healTimeout bounds the synchronous reconciliation a membership change
// triggers, so a stalled station cannot wedge KillStation or RemoveStation.
const healTimeout = 30 * time.Second

// placeConfig is one Place call's resolved knobs.
type placeConfig struct {
	replication int
}

// PlaceOption configures a single Place call.
type PlaceOption func(*placeConfig)

// WithReplication sets how many stations receive a copy of each placed
// pattern (default DefaultReplication). r is clamped to the number of alive
// stations at execution time, but the requested factor is what the table
// records: when the membership later grows, reconciliation tops placements
// back up to r.
func WithReplication(r int) PlaceOption {
	return func(c *placeConfig) { c.replication = r }
}

// HealReport summarizes one reconciliation pass over the placed patterns.
type HealReport struct {
	// Placed is the number of persons under automatic placement when the
	// pass started.
	Placed int
	// Copied counts (person, station) copies ingested onto new rendezvous
	// targets.
	Copied int
	// Removed counts stale (person, station) copies evicted from stations
	// that are no longer rendezvous targets.
	Removed int
	// Lost counts placed persons with no reachable copy anywhere — their
	// pattern cannot be restored. They stay in the table, so a later pass
	// retries if a holder was only transiently unreachable.
	Lost int
}

// placementTable returns the cluster's placement table, creating it on first
// use.
func (c *Cluster) placementTable() *placement.Table {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.placeTab == nil {
		c.placeTab = placement.NewTable()
	}
	return c.placeTab
}

// replicatedPred returns the predicate marking placed persons for the
// replica-aware aggregation, or nil when nothing is placed — the zero-cost
// path every purely station-addressed cluster stays on. The predicate is
// backed by a snapshot, not the live table: a Place or Unplace landing
// mid-aggregation must not flip a person between the max-dedup and
// summation models halfway through their reports (summing onto an already
// maxed numerator would push a true match past 1 and delete it).
func (c *Cluster) replicatedPred() func(core.PersonID) bool {
	c.mu.Lock()
	t := c.placeTab
	c.mu.Unlock()
	if t == nil || t.Len() == 0 {
		return nil
	}
	snap := t.Snapshot()
	return func(p core.PersonID) bool {
		_, ok := snap[p]
		return ok
	}
}

// Placed returns the number of persons under automatic placement.
func (c *Cluster) Placed() int {
	c.mu.Lock()
	t := c.placeTab
	c.mu.Unlock()
	if t == nil {
		return 0
	}
	return t.Len()
}

// aliveMembers snapshots the current epoch's non-dead stations.
func (c *Cluster) aliveMembers() (ids []uint32, muxes []*transport.Mux) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, id := range c.ep.ids {
		if c.dead[id] {
			continue
		}
		ids = append(ids, id)
		muxes = append(muxes, c.ep.muxes[i])
	}
	return ids, muxes
}

// Place ingests patterns under automatic placement: each person's pattern is
// copied to the r stations that win the rendezvous (HRW) hash of (person,
// station) over the currently alive membership, r per WithReplication
// (default DefaultReplication). Place serializes with reconciliation passes
// (and with Unplace), so an in-flight heal cannot interleave stale copies
// with a placement in progress. Unlike the station-addressed Ingest, the
// caller names no station — placement is the coordinator's job, and it is
// self-healing: when the membership changes, reconciliation re-replicates
// under-replicated patterns onto the survivors and rebalances the ones whose
// rendezvous winners changed.
//
// A placed person's replicas hold full copies of one pattern, so the search
// aggregation dedupes their reports (highest score wins) instead of summing
// them. Consequently a person must be either placed or station-addressed,
// never both: Place records the person as managed, and reconciliation will
// move their copies to the rendezvous targets, clobbering any
// station-addressed copy under the same ID. Use Unplace to release a person
// back to manual management.
//
// Partial failure is not fatal: a person who reached at least one station is
// recorded as placed (reconciliation restores the missing copies on the next
// membership change or Rebalance call); the error joins every failed station
// exchange. All-zero patterns are skipped entirely, matching the stations'
// ingest rule (no measurable activity means no pattern).
func (c *Cluster) Place(ctx context.Context, patterns map[core.PersonID]pattern.Pattern, opts ...PlaceOption) error {
	if ctx == nil {
		ctx = context.Background()
	}
	// Serialize against reconciliation: a heal that pulled copies before
	// this call must not push them back over the fresh placement after it.
	c.healMu.Lock()
	defer c.healMu.Unlock()
	cfg := placeConfig{replication: DefaultReplication}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.replication <= 0 {
		cfg.replication = DefaultReplication
	}
	if len(patterns) == 0 {
		return nil
	}
	for p, pat := range patterns {
		if len(pat) != c.length {
			return fmt.Errorf("%w: place person %d pattern length %d, cluster is %d", ErrLengthMismatch, p, len(pat), c.length)
		}
	}
	alive, _ := c.aliveMembers()
	if len(alive) == 0 {
		return ErrNoAliveStations
	}

	// Group the copies by target station so each station receives one
	// ingest exchange regardless of how many persons land on it.
	perStation := make(map[uint32]map[core.PersonID]pattern.Pattern)
	targetsOf := make(map[core.PersonID][]uint32, len(patterns))
	for p, pat := range patterns {
		if pat.Sum() == 0 {
			// Stations drop all-zero patterns on ingest (no measurable
			// activity means no local pattern); recording such a person as
			// placed would leave an intent no copy can ever satisfy, counted
			// Lost by every reconciliation forever.
			continue
		}
		targets := placement.Pick(p, alive, cfg.replication)
		targetsOf[p] = targets
		for _, sid := range targets {
			g := perStation[sid]
			if g == nil {
				g = make(map[core.PersonID]pattern.Pattern)
				perStation[sid] = g
			}
			g[p] = pat
		}
	}
	// Record the intents BEFORE pushing any copy: a search starting between
	// the first ingest and the table update would otherwise sum the replica
	// reports (the person is not marked yet) and delete the person as
	// over-matched. The early mark is harmless the other way around —
	// max-dedup over zero or one reports ranks identically to summation.
	// Persons whose every target fails are rolled back below.
	tab := c.placementTable()
	prior := make(map[core.PersonID]int)
	for p := range targetsOf {
		if r, ok := tab.Factor(p); ok {
			prior[p] = r
		}
		tab.Set(p, cfg.replication)
	}

	failed, errs := c.ingestGrouped(ctx, perStation, "place on")

	for p, targets := range targetsOf {
		landed := false
		for _, sid := range targets {
			if !failed[sid] {
				landed = true
				break
			}
		}
		if !landed {
			// Nothing of this person reached any station: restore whatever
			// intent existed before the call.
			if r, ok := prior[p]; ok {
				tab.Set(p, r)
			} else {
				tab.Remove(p)
			}
		}
	}
	return errors.Join(errs...)
}

// groupedFanOut runs one mutation exchange per station concurrently — a
// heal after a kill must not pay one sequential round trip per surviving
// station — and reports the stations whose exchange failed, errors in
// ascending station order.
func groupedFanOut[T any](perStation map[uint32]T, what string, do func(sid uint32, payload T) error) (failed map[uint32]bool, errs []error) {
	stations := make([]uint32, 0, len(perStation))
	for sid := range perStation {
		stations = append(stations, sid)
	}
	sort.Slice(stations, func(i, j int) bool { return stations[i] < stations[j] })

	perErr := make([]error, len(stations))
	var wg sync.WaitGroup
	for i, sid := range stations {
		i, sid := i, sid
		wg.Add(1)
		go func() {
			defer wg.Done()
			perErr[i] = do(sid, perStation[sid])
		}()
	}
	wg.Wait()

	failed = make(map[uint32]bool)
	for i, sid := range stations {
		if perErr[i] != nil {
			failed[sid] = true
			errs = append(errs, fmt.Errorf("%s station %d: %w", what, sid, perErr[i]))
		}
	}
	return failed, errs
}

// ingestGrouped pushes one grouped ingest exchange per target station.
func (c *Cluster) ingestGrouped(ctx context.Context, perStation map[uint32]map[core.PersonID]pattern.Pattern, what string) (failed map[uint32]bool, errs []error) {
	return groupedFanOut(perStation, what, func(sid uint32, patterns map[core.PersonID]pattern.Pattern) error {
		return c.Ingest(ctx, sid, patterns)
	})
}

// evictGrouped is ingestGrouped's counterpart: one concurrent evict
// exchange per station.
func (c *Cluster) evictGrouped(ctx context.Context, perStation map[uint32][]core.PersonID, what string) (failed map[uint32]bool, errs []error) {
	return groupedFanOut(perStation, what, func(sid uint32, persons []core.PersonID) error {
		return c.Evict(ctx, sid, persons)
	})
}

// Unplace releases persons from automatic placement: their copies are
// evicted from every alive station and the placement table forgets them.
// Persons that were never placed are ignored. On a failed eviction the table
// keeps the affected persons (their copies may still exist, so the
// replica-aware dedup must stay in force) and the error is returned; calling
// Unplace again retries.
func (c *Cluster) Unplace(ctx context.Context, persons []core.PersonID) error {
	if ctx == nil {
		ctx = context.Background()
	}
	// Serialize against reconciliation: an in-flight heal could otherwise
	// re-ingest copies it pulled before this eviction, leaving orphaned,
	// unmanaged replicas of a person Unplace reported released.
	c.healMu.Lock()
	defer c.healMu.Unlock()
	c.mu.Lock()
	t := c.placeTab
	c.mu.Unlock()
	if t == nil {
		return nil
	}
	placed := make([]core.PersonID, 0, len(persons))
	for _, p := range persons {
		if t.Contains(p) {
			placed = append(placed, p)
		}
	}
	if len(placed) == 0 {
		return nil
	}
	alive, _ := c.aliveMembers()
	perStation := make(map[uint32][]core.PersonID, len(alive))
	for _, sid := range alive {
		perStation[sid] = placed
	}
	if _, errs := c.evictGrouped(ctx, perStation, "unplace on"); len(errs) > 0 {
		return errors.Join(errs...)
	}
	for _, p := range placed {
		t.Remove(p)
	}
	return nil
}

// Rebalance runs one reconciliation pass over the placed patterns: it pulls
// the placed persons' copies from the alive stations (KindDump), recomputes
// every person's rendezvous targets over the alive membership, ingests the
// missing copies onto new targets and evicts stale copies from stations that
// are no longer targets. Membership changes trigger this automatically;
// calling it explicitly is useful after transient failures or to inspect the
// placement's health.
//
// The pass is conservative: stale copies are only evicted when every missing
// copy was ingested successfully, so a partially failed pass never reduces a
// pattern's replica count. Persons with no reachable copy are counted in
// HealReport.Lost and left in the table for later retries.
func (c *Cluster) Rebalance(ctx context.Context) (HealReport, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	// One pass at a time: concurrent membership changes queue their heals
	// rather than interleaving conflicting move plans.
	c.healMu.Lock()
	defer c.healMu.Unlock()

	// The epoch and the alive member list come from one lock window: a
	// station joining between two separate reads would be alive but absent
	// from the epoch's stats snapshot, scored version 0 and wrongly skipped
	// by the pull below for the whole pass.
	c.mu.Lock()
	closed, t := c.closed, c.placeTab
	ep := c.ep
	var alive []uint32
	var muxes []*transport.Mux
	for i, id := range ep.ids {
		if c.dead[id] {
			continue
		}
		alive = append(alive, id)
		muxes = append(muxes, ep.muxes[i])
	}
	c.mu.Unlock()
	if closed {
		return HealReport{}, ErrClusterClosed
	}
	if t == nil || t.Len() == 0 {
		return HealReport{}, nil
	}
	// One snapshot drives the whole pass: deriving the dump filter from a
	// second table read would let a concurrent Unplace strand a person in
	// intents but out of the filter, spuriously counted as lost.
	intents := t.Snapshot()
	keys := make([]core.PersonID, 0, len(intents))
	for p := range intents {
		keys = append(keys, p)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	report := HealReport{Placed: len(intents)}

	if len(alive) == 0 {
		report.Lost = len(intents)
		return report, ErrNoAliveStations
	}

	// Pull the placed persons' copies from every alive station that can
	// answer a dump (wire v4+). Stations below v4 can still receive the
	// ingest push below; they just cannot be pulled from.
	vers := c.peerVersions(ctx, ep)
	dump := wire.EncodeDump(wire.Dump{Persons: keys})
	type pulled struct {
		reply wire.DumpReply
		err   error
	}
	results := make([]pulled, len(alive))
	var wg sync.WaitGroup
	for i := range alive {
		if vers[alive[i]] < wire.Version4 {
			results[i].err = fmt.Errorf("cluster: station %d speaks wire v%d, cannot dump", alive[i], vers[alive[i]])
			continue
		}
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			reply, err := muxes[i].Roundtrip(ctx, dump)
			if err != nil {
				results[i].err = err
				return
			}
			results[i].reply, results[i].err = wire.DecodeDumpReply(reply)
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return report, fmt.Errorf("%w: %w", ErrCancelled, err)
	}

	holders := make(map[core.PersonID]map[uint32]bool, len(intents))
	copies := make(map[core.PersonID]pattern.Pattern, len(intents))
	for i, r := range results {
		if r.err != nil {
			continue
		}
		for j, p := range r.reply.Persons {
			if _, placed := intents[p]; !placed {
				continue
			}
			hs := holders[p]
			if hs == nil {
				hs = make(map[uint32]bool, 2)
				holders[p] = hs
			}
			hs[alive[i]] = true
			if _, ok := copies[p]; !ok && len(r.reply.Locals[j]) == c.length {
				copies[p] = r.reply.Locals[j]
			}
		}
	}

	// Plan the moves: every person's targets are recomputed from scratch, so
	// the same pass covers under-replication (a holder died), rebalancing (a
	// new station out-scores an incumbent) and topping up after the
	// membership grew past a previously clamped factor.
	adds := make(map[uint32]map[core.PersonID]pattern.Pattern)
	dels := make(map[uint32][]core.PersonID)
	for p, r := range intents {
		pat, ok := copies[p]
		if !ok {
			report.Lost++
			continue
		}
		targets := placement.Pick(p, alive, r)
		targetSet := make(map[uint32]bool, len(targets))
		for _, sid := range targets {
			targetSet[sid] = true
			if !holders[p][sid] {
				g := adds[sid]
				if g == nil {
					g = make(map[core.PersonID]pattern.Pattern)
					adds[sid] = g
				}
				g[p] = pat
			}
		}
		for sid := range holders[p] {
			if !targetSet[sid] {
				dels[sid] = append(dels[sid], p)
			}
		}
	}

	// Copied/Removed count completed work, not the plan: a partially failed
	// pass must not report healing that never happened. Both phases fan out
	// concurrently, one grouped exchange per station.
	failedAdds, errs := c.ingestGrouped(ctx, adds, "re-replicate to")
	for sid, g := range adds {
		if !failedAdds[sid] {
			report.Copied += len(g)
		}
	}
	if len(errs) == 0 {
		// A failed ingest means the plan is stale; keep the extra copies.
		failedDels, delErrs := c.evictGrouped(ctx, dels, "rebalance evict on")
		errs = delErrs
		for sid, ps := range dels {
			if !failedDels[sid] {
				report.Removed += len(ps)
			}
		}
	}
	return report, errors.Join(errs...)
}

// heal is the membership-change hook: a best-effort, bounded reconciliation.
// It is a no-op while nothing is placed, so purely station-addressed
// clusters never pay for it. Errors are swallowed — reconciliation is
// idempotent and the next membership change (or an explicit Rebalance)
// retries.
func (c *Cluster) heal(ctx context.Context) {
	if c.Placed() == 0 {
		return
	}
	if ctx == nil {
		ctx = context.Background()
	}
	ctx, cancel := context.WithTimeout(ctx, healTimeout)
	defer cancel()
	_, _ = c.Rebalance(ctx)
}

// NewEmpty builds a cluster of in-process stations that hold no patterns
// yet — the starting point of a placement-first deployment, where every
// pattern arrives through Place (or Ingest) on the running cluster. The
// caller supplies the pattern length New would otherwise derive from the
// seed data. The cluster is inert until Start.
func NewEmpty(opts Options, stationIDs []uint32, patternLength int) (*Cluster, error) {
	if len(stationIDs) == 0 {
		return nil, errors.New("cluster: no stations")
	}
	if patternLength <= 0 {
		return nil, fmt.Errorf("cluster: pattern length %d, want > 0", patternLength)
	}
	if opts.TargetFP == 0 {
		opts.TargetFP = 0.01
	}
	ids := append([]uint32(nil), stationIDs...)
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for i := 1; i < len(ids); i++ {
		if ids[i] == ids[i-1] {
			return nil, fmt.Errorf("%w: station %d", ErrStationExists, ids[i])
		}
	}
	c := &Cluster{
		opts:      opts,
		length:    patternLength,
		dead:      make(map[uint32]bool),
		downMeter: &transport.Meter{},
		upMeter:   &transport.Meter{},
	}
	muxes := make([]*transport.Mux, 0, len(ids))
	for _, id := range ids {
		center, stationEnd := transport.Pipe(c.downMeter, c.upMeter)
		muxes = append(muxes, transport.NewMux(center))
		c.pending = append(c.pending, NewStation(id, nil, stationEnd))
	}
	c.profiler = adapt.NewProfiler(c.length, opts.AdaptWindow)
	c.installEpochLocked(ids, muxes)
	return c, nil
}
