package cluster

// Adaptive routing-digest parameters (wire v7). The coordinator profiles the
// band traffic its routing step actually sees (internal/adapt), derives a
// Daisy-style per-position parameter plan, and rolls it out to capable
// stations as one epoch-atomic KindParamUpdate fan-out. Stations rebuild
// their routing digests under the plan inside their existing memory budget;
// everything stays sound if any piece fails — an adaptive digest is a
// routing optimization, never a correctness dependency, and every failure
// path degrades to the static table.

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"dimatch/internal/adapt"
	"dimatch/internal/index"
	"dimatch/internal/wire"
)

// ParamRollout summarizes one parameter rollout: which stations now run the
// plan, which stayed (or fell back to) static, and which could not be
// reached. Station IDs ascend in every slice.
type ParamRollout struct {
	// Epoch is the parameter epoch this rollout installed. It advances on
	// every RederiveParams/ResetParams call; searches stamp the epoch live
	// at their start into CostReport.ParamEpoch.
	Epoch uint64
	// Plan is the rolled-out parameter table, nil for a reset to static.
	Plan *index.Plan
	// Applied lists stations that acknowledged running the plan.
	Applied []uint32
	// Static lists v7 stations that answered but run the static table — a
	// reset target, or a station that could not honor the plan (e.g. an
	// empty store) and degraded.
	Static []uint32
	// Skipped lists peers the update was never sent to: pre-v7 stations and
	// route delegates (regions adapt their own tier, not through this one).
	Skipped []uint32
	// Failed lists stations whose update exchange failed. Their digest state
	// is unknown, so their cached summaries are invalidated like the rest.
	Failed []uint32
}

// ParamState returns the coordinator's live parameter epoch and plan. Epoch
// 0 with a nil plan means no rollout has happened (pure static).
func (c *Cluster) ParamState() (uint64, *index.Plan) {
	c.paramMu.Lock()
	defer c.paramMu.Unlock()
	return c.paramEpoch, c.paramPlan
}

// TrafficSnapshot returns the coordinator's current traffic profile — the
// per-position probe, volume and emptiness counters the routing step has
// accumulated (see internal/adapt). Mostly an observability hook; Derive
// consumes the same snapshot inside RederiveParams.
func (c *Cluster) TrafficSnapshot() adapt.Snapshot {
	return c.profiler.Snapshot()
}

// observeRoute feeds the traffic profiler from one routing pass: every
// probe's bands count into the per-position probe/volume counters, and a
// band no consulted digest admits counts as a miss — to within the digests'
// own false-positive rate the band is empty cluster-wide, which is exactly
// the traffic whose false admissions the adaptive solver should spend bits
// suppressing. With no digests consulted (cold cache, all-pre-v5 fleet)
// emptiness is unobservable and only the raw counters advance.
func (c *Cluster) observeRoute(probes []index.Probe, sums []*index.Summary) {
	for _, pr := range probes {
		c.profiler.Observe(pr)
	}
	if len(sums) == 0 {
		return
	}
	for _, pr := range probes {
		pr.EachBand(func(pos int, lo, hi int64) {
			for _, sum := range sums {
				if sum.BandAdmit(pos, lo, hi) {
					return
				}
			}
			c.profiler.ObserveMiss(pos, lo, hi)
		})
	}
}

// RederiveParams derives a fresh adaptive parameter plan from the traffic
// profiled since the last derivation and rolls it out to every capable
// station as one epoch-atomic fan-out. The plan is sized for the largest
// station's resident count (conservative for smaller ones: they get the
// same shape over their own smaller budget). Stations below wire v7 and
// route delegates are skipped; a station that cannot honor the plan
// acknowledges static and keeps its exact static behavior. The rollout
// epoch only becomes the cluster's live epoch after the fan-out completes,
// and every touched station's cached summary is invalidated so the next
// routed search refetches digests built under the new parameters.
//
// Errors (no traffic yet, an empty cluster, encoding failures) leave the
// previous parameter state fully intact.
func (c *Cluster) RederiveParams(ctx context.Context) (*ParamRollout, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	c.rolloutMu.Lock()
	defer c.rolloutMu.Unlock()

	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClusterClosed
	}
	ep := c.ep
	c.mu.Unlock()

	st, err := c.epochStats(ctx, ep)
	if err != nil {
		return nil, err
	}
	residents := 0
	for _, s := range st.Stations {
		if s.Residents > residents {
			residents = s.Residents
		}
	}
	if residents == 0 {
		return nil, fmt.Errorf("cluster: no resident patterns to adapt parameters for")
	}

	c.paramMu.Lock()
	epoch := c.paramEpoch + 1
	c.paramMu.Unlock()

	plan, err := adapt.Derive(c.profiler.Snapshot(), residents, index.DefaultSeed, epoch)
	if err != nil {
		return nil, err
	}
	return c.rolloutLocked(ctx, ep, st, epoch, plan)
}

// ResetParams orders every capable station back onto the static table under
// a fresh parameter epoch and clears the traffic profile, so the next
// derivation starts from a clean window. The freeze knob of
// docs/OPERATIONS.md: reset and simply stop calling RederiveParams.
func (c *Cluster) ResetParams(ctx context.Context) (*ParamRollout, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	c.rolloutMu.Lock()
	defer c.rolloutMu.Unlock()

	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClusterClosed
	}
	ep := c.ep
	c.mu.Unlock()

	st, err := c.epochStats(ctx, ep)
	if err != nil {
		return nil, err
	}
	c.paramMu.Lock()
	epoch := c.paramEpoch + 1
	c.paramMu.Unlock()

	roll, err := c.rolloutLocked(ctx, ep, st, epoch, nil)
	if err == nil {
		c.profiler.Reset()
	}
	return roll, err
}

// rolloutLocked fans one ParamUpdate (plan, or nil for static) to the
// epoch's eligible stations and installs the epoch as live once the fan-out
// has completed. Callers hold rolloutMu, which is what makes a rollout
// epoch-atomic: two concurrent derivations cannot interleave their updates.
func (c *Cluster) rolloutLocked(ctx context.Context, ep *epoch, st *Stats, epoch uint64, plan *index.Plan) (*ParamRollout, error) {
	msg, err := wire.EncodeParamUpdate(wire.ParamUpdate{Epoch: epoch, Plan: plan})
	if err != nil {
		return nil, err
	}
	info := make(map[uint32]StationStats, len(st.Stations))
	for _, s := range st.Stations {
		info[s.Station] = s
	}

	roll := &ParamRollout{Epoch: epoch, Plan: plan}
	type target struct {
		id  uint32
		idx int
	}
	var targets []target
	for i, id := range ep.ids {
		s, ok := info[id]
		if !ok || s.WireVersion < int(wire.Version7) || s.Delegate {
			// No stats (can't prove v7), too old, or a region coordinator:
			// the peer keeps whatever table it runs. Regions adapt their own
			// tier from their own traffic; pushing a leaf plan at them would
			// mis-shape their union digests.
			roll.Skipped = append(roll.Skipped, id)
			continue
		}
		targets = append(targets, target{id: id, idx: i})
	}

	type answer struct {
		ack    wire.ParamAck
		failed bool
	}
	answers := make([]answer, len(targets))
	var wg sync.WaitGroup
	for i, tg := range targets {
		i, mx := i, ep.muxes[tg.idx]
		wg.Add(1)
		go func() {
			defer wg.Done()
			reply, err := mx.Roundtrip(ctx, msg)
			if err != nil {
				answers[i].failed = true
				return
			}
			ack, err := wire.DecodeParamAck(reply)
			if err != nil {
				answers[i].failed = true
				return
			}
			answers[i].ack = ack
		}()
	}
	wg.Wait()
	if ctxErr := ctx.Err(); ctxErr != nil {
		// The fan-out may have half-landed; invalidate every target's digest
		// (their state is unknown) but do not advance the live epoch.
		for _, tg := range targets {
			c.summaries.invalidate(tg.id)
		}
		return nil, fmt.Errorf("%w: %w", ErrCancelled, ctxErr)
	}

	for i, tg := range targets {
		// Whatever happened, the station's digest may have changed shape:
		// drop the cached copy so the next routed search refetches. (A
		// failed exchange may still have applied — same rule as Ingest's
		// error path.)
		c.summaries.invalidate(tg.id)
		a := answers[i]
		switch {
		case a.failed:
			roll.Failed = append(roll.Failed, tg.id)
		case a.ack.Epoch == epoch && a.ack.Applied && plan != nil:
			roll.Applied = append(roll.Applied, tg.id)
		default:
			roll.Static = append(roll.Static, tg.id)
		}
	}
	for _, s := range [][]uint32{roll.Applied, roll.Static, roll.Skipped, roll.Failed} {
		sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	}

	c.paramMu.Lock()
	if epoch > c.paramEpoch {
		c.paramEpoch = epoch
		c.paramPlan = plan
	}
	c.paramMu.Unlock()
	return roll, nil
}
