package cluster

import (
	"context"
	"testing"

	"dimatch/internal/core"
	"dimatch/internal/pattern"
)

// TestVerifyRemovesFalsePositives builds a scenario where the WBF pipeline
// admits a person whose global pattern does not actually match (an ε-band
// artifact) and checks that the verification phase deletes them while
// keeping every true match.
func TestVerifyRemovesFalsePositives(t *testing.T) {
	// Query: global {4,8,12} as locals {2,4,6} and {2,4,6}. With ε=1 and
	// scaled bands, person 30's single-station {4,9,14} matches the full
	// combination in accumulated space (acc {4,13,27} vs {4,12,24}: diffs
	// 0,1,3 within bands 1,2,3) — but per-interval diffs are 0,1,2, which
	// violates Eq. 2 at ε=1. Persons 10/11 are true matches.
	opts := Options{
		Params: core.Params{
			Bits:           1 << 14,
			Hashes:         4,
			Samples:        3,
			Epsilon:        1,
			Seed:           9,
			PositionSalted: true,
		},
		MinScore: 0.9,
	}
	data := map[uint32]map[core.PersonID]pattern.Pattern{
		0: {
			10: {2, 4, 6},
			30: {4, 9, 14},
		},
		1: {
			10: {2, 4, 6},
			11: {4, 8, 12},
		},
	}
	query := core.Query{ID: 1, Locals: []pattern.Pattern{{2, 4, 6}, {2, 4, 6}}}

	// Without verification the artifact is reported.
	c := startCluster(t, opts, data)
	out, err := c.Search(context.Background(), []core.Query{query}, WithStrategy(StrategyWBF))
	if err != nil {
		t.Fatal(err)
	}
	unverified := make(map[core.PersonID]bool)
	for _, r := range out.PerQuery[1] {
		unverified[r.Person] = true
	}
	if !unverified[30] {
		t.Skip("scenario no longer produces the band artifact; adjust values")
	}

	// With verification it is gone and the true matches survive.
	opts.Verify = true
	cv := startCluster(t, opts, data)
	out, err = cv.Search(context.Background(), []core.Query{query}, WithStrategy(StrategyWBF))
	if err != nil {
		t.Fatal(err)
	}
	verified := make(map[core.PersonID]bool)
	for _, r := range out.PerQuery[1] {
		verified[r.Person] = true
	}
	if verified[30] {
		t.Fatalf("verification kept the false positive: %+v", out.PerQuery[1])
	}
	if !verified[10] || !verified[11] {
		t.Fatalf("verification dropped a true match: %+v", out.PerQuery[1])
	}
}

func TestVerifyAccountsCostsAndKeepsExactMatches(t *testing.T) {
	base := testOptions()
	verified := base
	verified.Verify = true

	c1 := startCluster(t, base, paperScenario())
	plain, err := c1.Search(context.Background(), []core.Query{paperQuery()}, WithStrategy(StrategyWBF))
	if err != nil {
		t.Fatal(err)
	}
	c2 := startCluster(t, verified, paperScenario())
	ver, err := c2.Search(context.Background(), []core.Query{paperQuery()}, WithStrategy(StrategyWBF))
	if err != nil {
		t.Fatal(err)
	}
	// The fetch round trip is metered: verified searches move more bytes
	// than unverified ones (candidate patterns come back).
	if ver.Cost.BytesUp <= plain.Cost.BytesUp {
		t.Fatalf("verification fetch not metered: %d <= %d", ver.Cost.BytesUp, plain.Cost.BytesUp)
	}
	if ver.Cost.CenterStorageBytes <= plain.Cost.CenterStorageBytes {
		t.Fatal("fetched patterns not accounted in center storage")
	}
	// On this exact-match scenario verification keeps the true global
	// matches (10 and 11) and removes the partial match (14), whose
	// aggregate {1,2,3} is not the query global.
	got := ver.Persons(1)
	if len(got) != 2 || got[0] != 10 || got[1] != 11 {
		t.Fatalf("verified results = %v, want [10 11]", got)
	}
}

func TestVerifyNoCandidatesIsNoop(t *testing.T) {
	opts := testOptions()
	opts.Verify = true
	c := startCluster(t, opts, paperScenario())
	// A query matching nobody.
	q := core.Query{ID: 5, Locals: []pattern.Pattern{{90, 90, 90}}}
	out, err := c.Search(context.Background(), []core.Query{q}, WithStrategy(StrategyWBF))
	if err != nil {
		t.Fatal(err)
	}
	if len(out.PerQuery[5]) != 0 {
		t.Fatalf("unexpected results: %+v", out.PerQuery[5])
	}
}

func TestVerifyPartialMatchSurvives(t *testing.T) {
	// Verification checks Eq. 2 on the materialized global. Person 14 holds
	// only the first local piece, so their global is {1,2,3}, which does
	// NOT match the query global {3,4,5}: strict verification removes
	// partial matches. This is the documented semantics: Verify answers the
	// exact IPM question.
	opts := testOptions()
	opts.Verify = true
	c := startCluster(t, opts, map[uint32]map[core.PersonID]pattern.Pattern{
		0: {14: {1, 2, 3}},
		1: {10: {1, 2, 3}},
		2: {10: {2, 2, 2}},
	})
	out, err := c.Search(context.Background(), []core.Query{paperQuery()}, WithStrategy(StrategyWBF))
	if err != nil {
		t.Fatal(err)
	}
	got := out.Persons(1)
	if len(got) != 1 || got[0] != 10 {
		t.Fatalf("verified results = %v, want [10] (partial match removed)", got)
	}
}
