package cluster

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"dimatch/internal/adapt"
	"dimatch/internal/core"
	"dimatch/internal/index"
	"dimatch/internal/pattern"
	"dimatch/internal/transport"
	"dimatch/internal/wire"
)

// paramTestCluster is routingTestCluster's shape (well-separated magnitudes,
// single-target queries) with enough residents per station that the static
// memory budget covers one filter word per position — the floor below which
// stations intentionally refuse a plan and stay static.
func paramTestCluster(t *testing.T) *Cluster {
	t.Helper()
	data := make(map[uint32]map[core.PersonID]pattern.Pattern, 4)
	for s := uint32(0); s < 4; s++ {
		scale := int64(1)
		for i := uint32(0); i < s; i++ {
			scale *= 10
		}
		st := make(map[core.PersonID]pattern.Pattern, 5)
		for j := int64(0); j < 5; j++ {
			pid := core.PersonID(10*(s+1)) + core.PersonID(j)
			st[pid] = pattern.Pattern{(1 + j) * scale, (2 + j) * scale, (3 + j) * scale}
		}
		data[s] = st
	}
	c, err := New(Options{}, data)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	t.Cleanup(func() { _ = c.Shutdown() })
	return c
}

func testPlan(epoch uint64, length int) *index.Plan {
	groups := make([]index.PlanGroup, length)
	for i := range groups {
		groups[i] = index.PlanGroup{Weight: uint32(i + 1), Hashes: 4, Quantum: 1}
	}
	return &index.Plan{Epoch: epoch, Seed: index.DefaultSeed, Length: length, Groups: groups}
}

func paramUpdateMsg(t *testing.T, epoch uint64, plan *index.Plan) wire.Message {
	t.Helper()
	m, err := wire.EncodeParamUpdate(wire.ParamUpdate{Epoch: epoch, Plan: plan})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func stationAck(t *testing.T, s *Station, msg wire.Message) wire.ParamAck {
	t.Helper()
	reply, err := s.handleParamUpdate(msg)
	if err != nil {
		t.Fatal(err)
	}
	ack, err := wire.DecodeParamAck(*reply)
	if err != nil {
		t.Fatal(err)
	}
	return ack
}

func stationDigest(t *testing.T, s *Station) *index.Summary {
	t.Helper()
	reply, err := s.handleSummary()
	if err != nil {
		t.Fatal(err)
	}
	_, sum, err := wire.DecodeSummaryReply(*reply)
	if err != nil {
		t.Fatal(err)
	}
	return sum
}

// TestStationParamUpdateLifecycle walks one station through the whole
// parameter protocol: apply, superseded-frame rejection, reset to static,
// and the degrade paths (mismatched plan shape, empty store) — every
// failure leaves the station on the exact static table.
func TestStationParamUpdateLifecycle(t *testing.T) {
	// Five residents keep the static budget above one filter word per
	// position; smaller stores refuse any plan by design (covered below).
	st := NewStation(1, map[core.PersonID]pattern.Pattern{
		10: {1, 2, 3}, 11: {4, 5, 6}, 12: {7, 8, 9}, 13: {2, 4, 6}, 14: {3, 5, 7},
	}, nil)

	// Before any update the digest is the static table.
	if sum := stationDigest(t, st); sum.Adaptive() {
		t.Fatal("fresh station serves an adaptive digest")
	}

	// Epoch 1 installs the plan; the digest rebuilds under it.
	ack := stationAck(t, st, paramUpdateMsg(t, 1, testPlan(1, 3)))
	if !ack.Applied || ack.Epoch != 1 || ack.Station != 1 {
		t.Fatalf("apply ack = %+v", ack)
	}
	if sum := stationDigest(t, st); !sum.Adaptive() || sum.AdaptiveEpoch() != 1 {
		t.Fatalf("digest after apply: adaptive=%v epoch=%d", sum.Adaptive(), sum.AdaptiveEpoch())
	}

	// A reordered frame from a superseded epoch must not roll back.
	ack = stationAck(t, st, paramUpdateMsg(t, 0, nil))
	if !ack.Applied || ack.Epoch != 1 {
		t.Fatalf("stale frame changed state: %+v", ack)
	}

	// Ingest keeps the plan: the rebuilt digest covers the new resident and
	// stays adaptive under the same epoch.
	in, err := wire.EncodeIngest(wire.Ingest{Persons: []core.PersonID{15}, Locals: []pattern.Pattern{{8, 9, 10}}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.handleIngest(in); err != nil {
		t.Fatal(err)
	}
	if sum := stationDigest(t, st); !sum.Adaptive() || sum.Residents() != 6 {
		t.Fatalf("digest after ingest: adaptive=%v residents=%d", sum.Adaptive(), sum.Residents())
	}

	// A plan the store cannot honor (wrong length) degrades to static.
	ack = stationAck(t, st, paramUpdateMsg(t, 2, testPlan(2, 5)))
	if ack.Applied || ack.Epoch != 2 {
		t.Fatalf("mismatched plan ack = %+v", ack)
	}
	if sum := stationDigest(t, st); sum.Adaptive() {
		t.Fatal("mismatched plan left an adaptive digest behind")
	}

	// Re-apply, then an explicit reset.
	if ack = stationAck(t, st, paramUpdateMsg(t, 3, testPlan(3, 3))); !ack.Applied {
		t.Fatalf("re-apply ack = %+v", ack)
	}
	if ack = stationAck(t, st, paramUpdateMsg(t, 4, nil)); ack.Applied || ack.Epoch != 4 {
		t.Fatalf("reset ack = %+v", ack)
	}
	if sum := stationDigest(t, st); sum.Adaptive() {
		t.Fatal("reset left an adaptive digest behind")
	}

	// An empty station cannot match any plan length: it stays static.
	empty := NewStation(2, nil, nil)
	if ack := stationAck(t, empty, paramUpdateMsg(t, 1, testPlan(1, 3))); ack.Applied {
		t.Fatal("empty station claimed to apply a plan")
	}

	// A store too small for one filter word per group refuses the plan too.
	tiny := NewStation(3, map[core.PersonID]pattern.Pattern{10: {1, 2, 3}}, nil)
	if ack := stationAck(t, tiny, paramUpdateMsg(t, 1, testPlan(1, 3))); ack.Applied {
		t.Fatal("tiny station applied a plan its budget cannot fit")
	}
	if sum := stationDigest(t, tiny); sum.Adaptive() {
		t.Fatal("tiny station serves an adaptive digest")
	}
}

// TestRederiveParamsRollout is the tentpole's coordinator pin: traffic in,
// epoch-atomic rollout out — every capable station rebuilds adaptively
// under the new epoch, searches answer exactly as before at the same
// memory, and the live epoch is stamped into every search's cost report.
func TestRederiveParamsRollout(t *testing.T) {
	c := paramTestCluster(t)
	ctx := context.Background()

	// No traffic yet: nothing to derive from, and the previous (static)
	// state stays untouched.
	if _, err := c.RederiveParams(ctx); !errors.Is(err, adapt.ErrNoTraffic) {
		t.Fatalf("cold rederive err = %v, want ErrNoTraffic", err)
	}

	queries := []core.Query{
		{ID: 1, Locals: []pattern.Pattern{{50, 60, 70}}},          // station 1's resident
		{ID: 2, Locals: []pattern.Pattern{{40404, 40404, 40404}}}, // empty everywhere: emptiness feedback
	}
	for i := 0; i < 10; i++ {
		if _, err := c.Search(ctx, queries); err != nil {
			t.Fatal(err)
		}
	}
	snap := c.TrafficSnapshot()
	if snap.Queries == 0 {
		t.Fatal("routed searches fed no traffic into the profiler")
	}

	roll, err := c.RederiveParams(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if roll.Epoch != 1 || roll.Plan == nil || roll.Plan.Epoch != 1 || roll.Plan.Length != 3 {
		t.Fatalf("rollout = %+v", roll)
	}
	if len(roll.Applied) != 4 || len(roll.Static) != 0 || len(roll.Skipped) != 0 || len(roll.Failed) != 0 {
		t.Fatalf("rollout coverage: %+v", roll)
	}
	if epoch, plan := c.ParamState(); epoch != 1 || !plan.Equal(roll.Plan) {
		t.Fatalf("ParamState = (%d, %+v)", epoch, plan)
	}

	// Post-rollout searches answer byte-identically to full fan-out, keep
	// pruning, and pin the new epoch. Both routing modes must agree —
	// adaptive digests fall off the Bloofi tree (not Unionable) onto the
	// flat probe path, which must stay exact.
	full, err := c.Search(ctx, queries, WithRouting(RoutingFull))
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []RoutingMode{RoutingSummary, RoutingTree} {
		routed, err := c.Search(ctx, queries, WithRouting(mode))
		if err != nil {
			t.Fatal(err)
		}
		assertSameResults(t, "adaptive "+mode.String(), queries, full, routed)
		if routed.Cost.ParamEpoch != 1 {
			t.Fatalf("%v ParamEpoch = %d, want 1", mode, routed.Cost.ParamEpoch)
		}
		// At least two of the three off-target stations must still prune
		// (the adaptive digests keep their ~1% fp budget, so we don't pin
		// an exact count).
		if routed.Cost.StationsPruned < 2 {
			t.Fatalf("%v StationsPruned = %d, want >= 2", mode, routed.Cost.StationsPruned)
		}
	}
	if full.Cost.ParamEpoch != 1 {
		t.Fatalf("full fan-out ParamEpoch = %d, want 1", full.Cost.ParamEpoch)
	}

	// The refetched digests really were built under the rollout epoch.
	id := c.currentEpoch().ids[0]
	sum, _ := c.summaries.get(id)
	if sum == nil || !sum.Adaptive() || sum.AdaptiveEpoch() != 1 {
		t.Fatalf("cached digest for station %d not adaptive at epoch 1: %+v", id, sum)
	}

	// A joining empty station cannot honor the plan and lands in Static; a
	// second derivation advances the epoch atomically for everyone else.
	if err := c.AddStation(ctx, 9, nil); err != nil {
		t.Fatal(err)
	}
	roll2, err := c.RederiveParams(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if roll2.Epoch != 2 || len(roll2.Applied) != 4 {
		t.Fatalf("second rollout = %+v", roll2)
	}
	if len(roll2.Static) != 1 || roll2.Static[0] != 9 {
		t.Fatalf("empty station not reported static: %+v", roll2)
	}
}

// TestResetParams pins the freeze/revert control: a reset rolls every
// station back onto the static table under a fresh epoch and clears the
// traffic window, and searches keep answering exactly as before.
func TestResetParams(t *testing.T) {
	c := paramTestCluster(t)
	ctx := context.Background()
	queries := []core.Query{{ID: 1, Locals: []pattern.Pattern{{50, 60, 70}}}}
	for i := 0; i < 5; i++ {
		if _, err := c.Search(ctx, queries); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.RederiveParams(ctx); err != nil {
		t.Fatal(err)
	}

	roll, err := c.ResetParams(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if roll.Epoch != 2 || roll.Plan != nil || len(roll.Static) != 4 || len(roll.Applied) != 0 {
		t.Fatalf("reset rollout = %+v", roll)
	}
	if epoch, plan := c.ParamState(); epoch != 2 || plan != nil {
		t.Fatalf("ParamState after reset = (%d, %+v)", epoch, plan)
	}
	if snap := c.TrafficSnapshot(); snap.Queries != 0 {
		t.Fatalf("reset left %v profiled queries", snap.Queries)
	}

	full, err := c.Search(ctx, queries, WithRouting(RoutingFull))
	if err != nil {
		t.Fatal(err)
	}
	routed, err := c.Search(ctx, queries)
	if err != nil {
		t.Fatal(err)
	}
	assertSameResults(t, "post-reset", queries, full, routed)
	id := c.currentEpoch().ids[1]
	if sum, _ := c.summaries.get(id); sum == nil || sum.Adaptive() {
		t.Fatalf("station %d digest still adaptive after reset: %+v", id, sum)
	}
}

// TestRederiveParamsSkipsIncapablePeers pins the capability gate: a pre-v7
// station never receives a KindParamUpdate frame (it would kill its serve
// loop), and a route delegate adapts its own tier instead of taking a leaf
// plan from above.
func TestRederiveParamsSkipsIncapablePeers(t *testing.T) {
	modernCenter, modernStation := transport.Pipe(nil, nil)
	oldCenter, oldStation := transport.Pipe(nil, nil)
	// The modern station needs enough residents for its static budget to
	// cover the plan (see paramTestCluster); the v4 one's size is irrelevant.
	modernLocals := map[core.PersonID]pattern.Pattern{
		10: {1, 2, 3}, 11: {2, 3, 4}, 12: {3, 4, 5}, 13: {4, 5, 6}, 14: {5, 6, 7},
	}
	go func() {
		_ = NewStation(1, modernLocals, modernStation).Serve()
	}()
	var sawSummary atomic.Bool
	go servePreRoutingStation(2, map[core.PersonID]pattern.Pattern{20: {50, 60, 70}}, oldStation, &sawSummary)

	// A region coordinator hangs off the same center: its stats advertise
	// the delegate flag, which must exempt it from leaf-plan rollouts.
	inner, err := New(Options{}, map[uint32]map[core.PersonID]pattern.Pattern{
		7: {30: {500, 600, 700}, 31: {550, 660, 770}},
		8: {40: {5000, 6000, 7000}},
	})
	if err != nil {
		t.Fatal(err)
	}
	inner.Start()
	t.Cleanup(func() { _ = inner.Shutdown() })
	regionCenter, regionEnd := transport.Pipe(nil, nil)
	go func() { _ = ServeRegion(100, inner, regionEnd) }()

	c, err := NewWithLinks(Options{}, map[uint32]transport.Link{
		1: modernCenter, 2: oldCenter, 100: regionCenter,
	}, 3, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	ctx := context.Background()
	queries := []core.Query{{ID: 1, Locals: []pattern.Pattern{{1, 2, 3}}}}
	for i := 0; i < 5; i++ {
		if _, err := c.Search(ctx, queries); err != nil {
			t.Fatal(err)
		}
	}
	roll, err := c.RederiveParams(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(roll.Applied) != 1 || roll.Applied[0] != 1 {
		t.Fatalf("Applied = %v, want [1]", roll.Applied)
	}
	if len(roll.Skipped) != 2 || roll.Skipped[0] != 2 || roll.Skipped[1] != 100 {
		t.Fatalf("Skipped = %v, want [2 100] (pre-v7 station and region delegate)", roll.Skipped)
	}

	// All three peer classes keep answering together after the rollout.
	out, err := c.Search(ctx, queries)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.PerQuery[1]) == 0 || out.PerQuery[1][0].Person != 10 {
		t.Fatalf("mixed-capability search lost the match: %v", out.PerQuery[1])
	}
	deep, err := c.Search(ctx, []core.Query{{ID: 9, Locals: []pattern.Pattern{{500, 600, 700}}}})
	if err != nil {
		t.Fatal(err)
	}
	if len(deep.PerQuery[9]) == 0 || deep.PerQuery[9][0].Person != 30 {
		t.Fatalf("search through skipped region lost the match: %v", deep.PerQuery[9])
	}
}

// TestAdaptiveChurnEquivalence is satellite 2, meant for -race runs: a live
// cluster churns (ingest/evict) while parameter epochs roll — sequentially
// first, then concurrently with in-flight searches — and every answer must
// be identical to a static twin fed the exact same mutations and queries.
// The stamped parameter epoch never regresses across sequential searches:
// each search runs under exactly one epoch, never a mix.
func TestAdaptiveChurnEquivalence(t *testing.T) {
	const stations, length = 6, 4
	seedData := func() map[uint32]map[core.PersonID]pattern.Pattern {
		data := make(map[uint32]map[core.PersonID]pattern.Pattern, stations)
		pid := core.PersonID(1)
		for s := uint32(0); s < stations; s++ {
			// Six residents per station: enough static budget that plans
			// actually apply, so the churn runs genuinely mixed digests.
			st := make(map[core.PersonID]pattern.Pattern, 6)
			base := int64(s)*100 + 10
			for j := int64(0); j < 6; j++ {
				st[pid] = pattern.Pattern{base + j, base + 2*j + 1, base + 3*j, base + j + 2}
				pid++
			}
			data[s] = st
		}
		return data
	}
	adaptive, err := New(Options{AdaptWindow: 4096}, seedData())
	if err != nil {
		t.Fatal(err)
	}
	adaptive.Start()
	t.Cleanup(func() { _ = adaptive.Shutdown() })
	staticTwin, err := New(Options{}, seedData())
	if err != nil {
		t.Fatal(err)
	}
	staticTwin.Start()
	t.Cleanup(func() { _ = staticTwin.Shutdown() })

	ctx := context.Background()
	rng := rand.New(rand.NewSource(3))
	next := core.PersonID(1000)
	type placedAt struct {
		person  core.PersonID
		station uint32
	}
	var live []placedAt
	randQueries := func() []core.Query {
		base := rng.Int63n(int64(stations) * 100)
		return []core.Query{
			{ID: 1, Locals: []pattern.Pattern{{base + 10, base + 11, base + 10, base + 12}}},
			{ID: 2, Locals: []pattern.Pattern{{9000, 9000, 9000, 9000}}}, // always empty
		}
	}
	compare := func(label string, queries []core.Query) uint64 {
		t.Helper()
		got, err := adaptive.Search(ctx, queries)
		if err != nil {
			t.Fatal(err)
		}
		want, err := staticTwin.Search(ctx, queries)
		if err != nil {
			t.Fatal(err)
		}
		assertSameResults(t, label, queries, want, got)
		return got.Cost.ParamEpoch
	}

	lastEpoch := uint64(0)
	for step := 0; step < 30; step++ {
		if len(live) == 0 || rng.Intn(2) == 0 {
			p, s := next, uint32(rng.Intn(stations))
			next++
			pat := pattern.Pattern{1 + rng.Int63n(600), 1 + rng.Int63n(600), 1 + rng.Int63n(600), 1 + rng.Int63n(600)}
			for _, c := range []*Cluster{adaptive, staticTwin} {
				if err := c.Ingest(ctx, s, map[core.PersonID]pattern.Pattern{p: pat}); err != nil {
					t.Fatal(err)
				}
			}
			live = append(live, placedAt{person: p, station: s})
		} else {
			i := rng.Intn(len(live))
			for _, c := range []*Cluster{adaptive, staticTwin} {
				if err := c.Evict(ctx, live[i].station, []core.PersonID{live[i].person}); err != nil {
					t.Fatal(err)
				}
			}
			live = append(live[:i], live[i+1:]...)
		}
		epoch := compare(fmt.Sprintf("churn step %d", step), randQueries())
		if epoch < lastEpoch {
			t.Fatalf("step %d: parameter epoch regressed %d -> %d", step, lastEpoch, epoch)
		}
		lastEpoch = epoch
		if step%7 == 3 {
			if _, err := adaptive.RederiveParams(ctx); err != nil && !errors.Is(err, adapt.ErrNoTraffic) {
				t.Fatal(err)
			}
		}
	}
	if epoch, _ := adaptive.ParamState(); epoch == 0 {
		t.Fatal("no parameter epoch ever rolled during churn")
	}

	// Concurrent phase: rollouts and resets race in-flight searches. Every
	// answer still matches the static twin — a digest swap mid-search is
	// invisible in results.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 8; i++ {
			_, _ = adaptive.RederiveParams(ctx)
			if i%3 == 2 {
				_, _ = adaptive.ResetParams(ctx)
			}
		}
	}()
	for i := 0; i < 20; i++ {
		compare(fmt.Sprintf("concurrent step %d", i), randQueries())
	}
	wg.Wait()
}
