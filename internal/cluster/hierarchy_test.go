package cluster

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"dimatch/internal/core"
	"dimatch/internal/pattern"
	"dimatch/internal/transport"
)

// hierData builds 12 well-separated station stores (3 residents each,
// magnitudes clustered per station) keyed by station id 0..11 — the same
// data set the flat and hierarchical topologies are built from, so their
// answers are directly comparable.
func hierData() map[uint32]map[core.PersonID]pattern.Pattern {
	data := make(map[uint32]map[core.PersonID]pattern.Pattern)
	pid := core.PersonID(1)
	for s := uint32(0); s < 12; s++ {
		st := make(map[core.PersonID]pattern.Pattern, 3)
		base := int64(s)*1000 + 10
		for j := int64(0); j < 3; j++ {
			st[pid] = pattern.Pattern{base + j, base + 2*j + 1, base + 3*j + 2}
			pid++
		}
		data[s] = st
	}
	return data
}

// hierarchy wires sub-clusters of stations behind region coordinators and a
// root over the coordinators: stations 0-2 behind region 100, 3-5 behind
// 101, and so on. Shutdown order matters — the root's shutdown frame makes
// each ServeRegion return without touching its sub-cluster, which the test
// then shuts down itself.
type hierarchy struct {
	root    *Cluster
	regions []*Cluster
}

func buildHierarchy(t *testing.T, data map[uint32]map[core.PersonID]pattern.Pattern, perRegion int, length int, rootOpts Options) *hierarchy {
	t.Helper()
	var ids []uint32
	for id := range data {
		ids = append(ids, id)
	}
	for i := range ids {
		for j := i + 1; j < len(ids); j++ {
			if ids[j] < ids[i] {
				ids[i], ids[j] = ids[j], ids[i]
			}
		}
	}
	h := &hierarchy{}
	links := make(map[uint32]transport.Link)
	for start := 0; start < len(ids); start += perRegion {
		end := start + perRegion
		if end > len(ids) {
			end = len(ids)
		}
		sub := make(map[uint32]map[core.PersonID]pattern.Pattern, end-start)
		for _, id := range ids[start:end] {
			sub[id] = data[id]
		}
		rc, err := New(Options{}, sub)
		if err != nil {
			t.Fatal(err)
		}
		rc.Start()
		h.regions = append(h.regions, rc)
		regionID := uint32(100 + start/perRegion)
		rootEnd, regionEnd := transport.Pipe(nil, nil)
		go func() { _ = ServeRegion(regionID, rc, regionEnd) }()
		links[regionID] = rootEnd
	}
	root, err := NewWithLinks(rootOpts, links, length, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	h.root = root
	t.Cleanup(func() {
		_ = root.Shutdown()
		for _, rc := range h.regions {
			_ = rc.Shutdown()
		}
	})
	return h
}

// emptyHierarchy builds regions with empty stations, for placement-driven
// tests: stationsPerRegion stations per region, ids dense from 0.
func emptyHierarchy(t *testing.T, regions, stationsPerRegion, length int) *hierarchy {
	t.Helper()
	h := &hierarchy{}
	links := make(map[uint32]transport.Link)
	for r := 0; r < regions; r++ {
		var ids []uint32
		for s := 0; s < stationsPerRegion; s++ {
			ids = append(ids, uint32(r*stationsPerRegion+s))
		}
		rc, err := NewEmpty(Options{}, ids, length)
		if err != nil {
			t.Fatal(err)
		}
		rc.Start()
		h.regions = append(h.regions, rc)
		regionID := uint32(100 + r)
		rootEnd, regionEnd := transport.Pipe(nil, nil)
		go func() { _ = ServeRegion(regionID, rc, regionEnd) }()
		links[regionID] = rootEnd
	}
	root, err := NewWithLinks(Options{}, links, length, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	h.root = root
	t.Cleanup(func() {
		_ = root.Shutdown()
		for _, rc := range h.regions {
			_ = rc.Shutdown()
		}
	})
	return h
}

// TestTreeRoutedSearchMatchesSummaryAndFull is the flat-cluster pin for the
// new mode: tree descent answers exactly like the per-station scan and like
// full fan-out, prunes at least as hard, and bills its union probes.
func TestTreeRoutedSearchMatchesSummaryAndFull(t *testing.T) {
	c := routingTestCluster(t)
	ctx := context.Background()
	queries := []core.Query{{ID: 1, Locals: []pattern.Pattern{{50, 60, 70}}}}

	full, err := c.Search(ctx, queries, WithRouting(RoutingFull))
	if err != nil {
		t.Fatal(err)
	}
	summary, err := c.Search(ctx, queries, WithRouting(RoutingSummary))
	if err != nil {
		t.Fatal(err)
	}
	tree, err := c.Search(ctx, queries, WithRouting(RoutingTree))
	if err != nil {
		t.Fatal(err)
	}
	assertSameResults(t, "summary", queries, full, summary)
	assertSameResults(t, "tree", queries, full, tree)
	if tree.Cost.StationsPruned != 3 {
		t.Fatalf("tree StationsPruned = %d, want 3", tree.Cost.StationsPruned)
	}
	if tree.Cost.SubtreeProbes == 0 {
		t.Fatal("tree search billed no SubtreeProbes")
	}
	if tree.Cost.TierHops != 1 {
		t.Fatalf("flat tree search TierHops = %d, want 1", tree.Cost.TierHops)
	}
	st := c.RoutingState()
	if st.Entries == 0 || st.TreeBytes == 0 || st.TotalBytes() == 0 {
		t.Fatalf("RoutingState not populated after tree search: %+v", st)
	}
}

// TestTreeChurnEquivalence is the three-way churn sweep (run under -race):
// random ingests, evicts, station adds, removes and kills interleave with
// searches, and after every mutation the tree-routed and summary-routed
// answers must equal the full fan-out answer on the same store.
func TestTreeChurnEquivalence(t *testing.T) {
	c := routingTestCluster(t)
	ctx := context.Background()
	rng := rand.New(rand.NewSource(7))
	stations := []uint32{0, 1, 2, 3}
	nextStation := uint32(4)
	next := core.PersonID(1000)
	type placedAt struct {
		person  core.PersonID
		station uint32
	}
	var live []placedAt

	for step := 0; step < 50; step++ {
		switch op := rng.Intn(10); {
		case op == 0 && len(stations) < 8:
			id := nextStation
			nextStation++
			if err := c.AddStation(ctx, id, map[core.PersonID]pattern.Pattern{
				next: {int64(rng.Intn(40)) + 1, int64(rng.Intn(40)), int64(rng.Intn(40))},
			}); err != nil {
				t.Fatal(err)
			}
			live = append(live, placedAt{person: next, station: id})
			next++
			stations = append(stations, id)
		case op == 1 && len(stations) > 2:
			i := 4 + rng.Intn(len(stations)-4+1)
			if i >= len(stations) {
				break // only remove stations this sweep added
			}
			id := stations[i]
			if err := c.RemoveStation(ctx, id); err != nil {
				t.Fatal(err)
			}
			stations = append(stations[:i], stations[i+1:]...)
			kept := live[:0]
			for _, l := range live {
				if l.station != id {
					kept = append(kept, l)
				}
			}
			live = kept
		case op < 6 || len(live) == 0:
			p := next
			next++
			s := stations[rng.Intn(len(stations))]
			pat := pattern.Pattern{int64(rng.Intn(40)) + 1, int64(rng.Intn(40)), int64(rng.Intn(40))}
			if err := c.Ingest(ctx, s, map[core.PersonID]pattern.Pattern{p: pat}); err != nil {
				t.Fatal(err)
			}
			live = append(live, placedAt{person: p, station: s})
		default:
			i := rng.Intn(len(live))
			if err := c.Evict(ctx, live[i].station, []core.PersonID{live[i].person}); err != nil {
				t.Fatal(err)
			}
			live = append(live[:i], live[i+1:]...)
		}
		queries := []core.Query{
			{ID: 1, Locals: []pattern.Pattern{{int64(rng.Intn(40)) + 1, int64(rng.Intn(40)), int64(rng.Intn(40))}}},
			{ID: 2, Locals: []pattern.Pattern{{50, 60, 70}}},
		}
		full, err := c.Search(ctx, queries, WithRouting(RoutingFull))
		if err != nil {
			t.Fatal(err)
		}
		summary, err := c.Search(ctx, queries, WithRouting(RoutingSummary))
		if err != nil {
			t.Fatal(err)
		}
		tree, err := c.Search(ctx, queries, WithRouting(RoutingTree))
		if err != nil {
			t.Fatal(err)
		}
		assertSameResults(t, fmt.Sprintf("summary step %d", step), queries, full, summary)
		assertSameResults(t, fmt.Sprintf("tree step %d", step), queries, full, tree)
	}
}

// TestHierarchicalSearchMatchesFlat is the tentpole's multi-tier pin: the
// same data behind region coordinators answers byte-identically to a flat
// cluster, under every routing mode, and the root's plan actually prunes
// whole regions.
func TestHierarchicalSearchMatchesFlat(t *testing.T) {
	data := hierData()
	flat, err := New(Options{}, data)
	if err != nil {
		t.Fatal(err)
	}
	flat.Start()
	t.Cleanup(func() { _ = flat.Shutdown() })
	h := buildHierarchy(t, data, 3, 3, Options{})
	ctx := context.Background()

	queries := []core.Query{
		{ID: 1, Locals: []pattern.Pattern{{2010, 2011, 2012}}}, // station 2's first resident
		{ID: 2, Locals: []pattern.Pattern{{9011, 9013, 9015}}}, // station 9's second resident
		{ID: 3, Locals: []pattern.Pattern{{1, 2, 3}}},          // matches nothing
	}
	want, err := flat.Search(ctx, queries, WithRouting(RoutingFull))
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []RoutingMode{RoutingFull, RoutingSummary, RoutingTree} {
		got, err := h.root.Search(ctx, queries, WithRouting(mode))
		if err != nil {
			t.Fatal(err)
		}
		assertSameResults(t, "hier "+mode.String(), queries, want, got)
		if got.Cost.TierHops != 2 {
			t.Fatalf("%s TierHops = %d, want 2 (root + regions)", mode, got.Cost.TierHops)
		}
		if mode != RoutingFull && got.Cost.StationsPruned == 0 {
			t.Fatalf("%s pruned nothing across 4 regions of well-separated data", mode)
		}
	}
	if len(want.PerQuery[1]) == 0 || len(want.PerQuery[2]) == 0 {
		t.Fatal("probe queries found nothing — test data drifted")
	}
}

// TestHierarchicalClassicForwarding pins the drop-in-station property: the
// BF and naive strategies (and WBF verification) never send a route frame,
// only classic station kinds, and a region forwarding them to its members
// must answer exactly like the flat cluster.
func TestHierarchicalClassicForwarding(t *testing.T) {
	data := hierData()
	flat, err := New(Options{}, data)
	if err != nil {
		t.Fatal(err)
	}
	flat.Start()
	t.Cleanup(func() { _ = flat.Shutdown() })
	h := buildHierarchy(t, data, 3, 3, Options{})
	ctx := context.Background()

	queries := []core.Query{{ID: 1, Locals: []pattern.Pattern{{5010, 5011, 5012}}}}
	for _, strat := range []Strategy{StrategyNaive, StrategyBF} {
		want, err := flat.Search(ctx, queries, WithStrategy(strat))
		if err != nil {
			t.Fatal(err)
		}
		got, err := h.root.Search(ctx, queries, WithStrategy(strat))
		if err != nil {
			t.Fatal(err)
		}
		if len(want.PerQuery[1]) == 0 {
			t.Fatalf("%v baseline found nothing", strat)
		}
		if strat == StrategyBF {
			// BF results carry no weights; their Denominator is the fan-out
			// peer count, which is 4 regions here vs 12 flat stations — a
			// presentation difference, not a recall one. Compare the ranked
			// persons and their reporting-station counts instead.
			w, g := want.PerQuery[1], got.PerQuery[1]
			if len(w) != len(g) {
				t.Fatalf("forwarded BF: %d results, want %d", len(g), len(w))
			}
			for i := range w {
				if w[i].Person != g[i].Person || w[i].Stations != g[i].Stations {
					t.Fatalf("forwarded BF result %d: %+v, want %+v", i, g[i], w[i])
				}
			}
			continue
		}
		assertSameResults(t, fmt.Sprintf("forwarded %v", strat), queries, want, got)
	}

	// Verification fetches raw patterns (KindFetch) through the regions.
	verified, err := h.root.Search(ctx, queries, WithVerify(true))
	if err != nil {
		t.Fatal(err)
	}
	if len(verified.PerQuery[1]) == 0 || verified.PerQuery[1][0].Score() != 1.0 {
		t.Fatalf("verified hierarchical search lost the match: %v", verified.PerQuery[1])
	}
}

// TestHierarchicalPlacementAndRegionKill is the chaos pin: persons placed at
// the root with R=2 land on two distinct regions; killing one region
// coordinator mid-life costs availability of nothing — every queried person
// is still found at full score through its surviving replica — and the dead
// region is billed as failed, never silently skipped.
func TestHierarchicalPlacementAndRegionKill(t *testing.T) {
	h := emptyHierarchy(t, 4, 2, 3)
	ctx := context.Background()

	patterns := make(map[core.PersonID]pattern.Pattern)
	for p := core.PersonID(1); p <= 20; p++ {
		patterns[p] = pattern.Pattern{int64(p) * 10, int64(p), int64(p) * 3}
	}
	if err := h.root.Place(ctx, patterns, WithReplication(2)); err != nil {
		t.Fatal(err)
	}

	probe := func(p core.PersonID) []core.Query {
		return []core.Query{{ID: core.QueryID(p), Locals: []pattern.Pattern{patterns[p]}}}
	}
	for _, p := range []core.PersonID{3, 11, 19} {
		out, err := h.root.Search(ctx, probe(p))
		if err != nil {
			t.Fatal(err)
		}
		if len(out.PerQuery[core.QueryID(p)]) == 0 || out.PerQuery[core.QueryID(p)][0].Person != p ||
			out.PerQuery[core.QueryID(p)][0].Score() != 1.0 {
			t.Fatalf("person %d not found at full score before kill: %v", p, out.PerQuery[core.QueryID(p)])
		}
	}

	// Kill one region coordinator: its link closes, ServeRegion exits.
	var regionIDs []uint32
	for _, id := range h.root.currentEpoch().ids {
		regionIDs = append(regionIDs, id)
	}
	if err := h.root.KillStation(regionIDs[1]); err != nil {
		t.Fatal(err)
	}

	sawFailure := false
	for p := core.PersonID(1); p <= 20; p++ {
		out, err := h.root.Search(ctx, probe(p))
		if err != nil {
			t.Fatal(err)
		}
		res := out.PerQuery[core.QueryID(p)]
		if len(res) == 0 || res[0].Person != p || res[0].Score() != 1.0 {
			t.Fatalf("person %d lost after region kill: %v", p, res)
		}
		if out.Cost.StationsFailed > 0 {
			sawFailure = true
		}
	}
	if !sawFailure {
		t.Fatal("no search billed the dead region as failed")
	}
}

// TestHierarchicalIngestEvictThroughRoot pins the mutation path one tier up:
// the root addresses a region like a station, the region re-places
// internally, and routed searches observe the mutation immediately — the
// root's cached region digest is delta-updated or invalidated exactly like
// a station's.
func TestHierarchicalIngestEvictThroughRoot(t *testing.T) {
	h := emptyHierarchy(t, 3, 2, 3)
	ctx := context.Background()
	region := h.root.currentEpoch().ids[0]

	if err := h.root.Ingest(ctx, region, map[core.PersonID]pattern.Pattern{42: {7, 8, 9}}); err != nil {
		t.Fatal(err)
	}
	queries := []core.Query{{ID: 1, Locals: []pattern.Pattern{{7, 8, 9}}}}
	for _, mode := range []RoutingMode{RoutingSummary, RoutingTree, RoutingFull} {
		out, err := h.root.Search(ctx, queries, WithRouting(mode))
		if err != nil {
			t.Fatal(err)
		}
		if len(out.PerQuery[1]) != 1 || out.PerQuery[1][0].Person != 42 {
			t.Fatalf("%v: ingested person not found through hierarchy: %v", mode, out.PerQuery[1])
		}
	}
	if err := h.root.Evict(ctx, region, []core.PersonID{42}); err != nil {
		t.Fatal(err)
	}
	out, err := h.root.Search(ctx, queries)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.PerQuery[1]) != 0 {
		t.Fatalf("evicted person still retrieved through hierarchy: %v", out.PerQuery[1])
	}
}

// TestHierarchicalChurnEquivalence (run under -race) sweeps root-level
// ingests and evicts across regions while comparing every routing mode
// against full fan-out on the hierarchical topology itself.
func TestHierarchicalChurnEquivalence(t *testing.T) {
	h := emptyHierarchy(t, 3, 2, 3)
	ctx := context.Background()
	rng := rand.New(rand.NewSource(11))
	regionIDs := append([]uint32(nil), h.root.currentEpoch().ids...)
	next := core.PersonID(500)
	type placedAt struct {
		person core.PersonID
		region uint32
	}
	var live []placedAt

	for step := 0; step < 25; step++ {
		if len(live) == 0 || rng.Intn(2) == 0 {
			p := next
			next++
			r := regionIDs[rng.Intn(len(regionIDs))]
			pat := pattern.Pattern{int64(rng.Intn(40)) + 1, int64(rng.Intn(40)), int64(rng.Intn(40))}
			if err := h.root.Ingest(ctx, r, map[core.PersonID]pattern.Pattern{p: pat}); err != nil {
				t.Fatal(err)
			}
			live = append(live, placedAt{person: p, region: r})
		} else {
			i := rng.Intn(len(live))
			if err := h.root.Evict(ctx, live[i].region, []core.PersonID{live[i].person}); err != nil {
				t.Fatal(err)
			}
			live = append(live[:i], live[i+1:]...)
		}
		queries := []core.Query{
			{ID: 1, Locals: []pattern.Pattern{{int64(rng.Intn(40)) + 1, int64(rng.Intn(40)), int64(rng.Intn(40))}}},
		}
		full, err := h.root.Search(ctx, queries, WithRouting(RoutingFull))
		if err != nil {
			t.Fatal(err)
		}
		for _, mode := range []RoutingMode{RoutingSummary, RoutingTree} {
			got, err := h.root.Search(ctx, queries, WithRouting(mode))
			if err != nil {
				t.Fatal(err)
			}
			assertSameResults(t, fmt.Sprintf("%v step %d", mode, step), queries, full, got)
		}
	}
}
