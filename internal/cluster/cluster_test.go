package cluster

import (
	"context"
	"testing"

	"dimatch/internal/core"
	"dimatch/internal/pattern"
	"dimatch/internal/transport"
)

func newTestPipe() (transport.Link, transport.Link) {
	return transport.Pipe(nil, nil)
}

// paperScenario builds the running example of Section IV-B as a cluster:
// the query person's data is {1,2,3} at station 0 and {2,2,2} at station 1.
// Residents:
//
//	person 10: exact split across stations 0 and 1 (true match, weight 1)
//	person 11: global pattern {3,4,5} stored whole at station 2 (true match)
//	person 12: {3,4,5} at ALL of stations 0,1,2 (the paper's counterexample:
//	           aggregate {9,12,15}, must be deleted by the sum>1 rule)
//	person 13: unrelated {7,1,9} at station 0 (no match)
//	person 14: {1,2,3} at station 0 only (partial: weight 1/2)
func paperScenario() map[uint32]map[core.PersonID]pattern.Pattern {
	return map[uint32]map[core.PersonID]pattern.Pattern{
		0: {
			10: {1, 2, 3},
			12: {3, 4, 5},
			13: {7, 1, 9},
			14: {1, 2, 3},
		},
		1: {
			10: {2, 2, 2},
			12: {3, 4, 5},
		},
		2: {
			11: {3, 4, 5},
			12: {3, 4, 5},
		},
	}
}

func paperQuery() core.Query {
	return core.Query{ID: 1, Locals: []pattern.Pattern{{1, 2, 3}, {2, 2, 2}}}
}

func testOptions() Options {
	return Options{
		Params: core.Params{
			Bits:    1 << 14,
			Hashes:  4,
			Samples: 3,
			Epsilon: 0,
			Seed:    77,
		},
	}
}

func startCluster(t *testing.T, opts Options, data map[uint32]map[core.PersonID]pattern.Pattern) *Cluster {
	t.Helper()
	c, err := New(opts, data)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	t.Cleanup(func() {
		if err := c.Shutdown(); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return c
}

func TestWBFSearchPaperScenario(t *testing.T) {
	c := startCluster(t, testOptions(), paperScenario())
	out, err := c.Search(context.Background(), []core.Query{paperQuery()}, WithStrategy(StrategyWBF))
	if err != nil {
		t.Fatal(err)
	}
	results := out.PerQuery[1]
	if len(results) < 2 {
		t.Fatalf("results = %+v, want at least persons 10 and 11", results)
	}
	// Persons 10 and 11 tie at weight 1 and rank first; person 12 deleted;
	// person 13 absent; person 14 at weight 1/2 behind them.
	if results[0].Person != 10 || results[0].Score() != 1.0 {
		t.Fatalf("first = %+v, want person 10 at weight 1", results[0])
	}
	if results[1].Person != 11 || results[1].Score() != 1.0 {
		t.Fatalf("second = %+v, want person 11 at weight 1", results[1])
	}
	for _, r := range results {
		if r.Person == 12 {
			t.Fatalf("person 12 (aggregate {9,12,15}) must be deleted: %+v", results)
		}
		if r.Person == 13 {
			t.Fatalf("person 13 must not match: %+v", results)
		}
	}
	if last := results[len(results)-1]; last.Person != 14 || last.Score() != 0.5 {
		t.Fatalf("last = %+v, want person 14 at weight 1/2", last)
	}
	if out.Cost.BytesDown == 0 || out.Cost.BytesUp == 0 {
		t.Fatalf("costs not metered: %+v", out.Cost)
	}
	if out.Cost.FilterBytes == 0 {
		t.Fatal("filter bytes not recorded")
	}
}

func TestNaiveMatchesOracle(t *testing.T) {
	data := paperScenario()
	c := startCluster(t, testOptions(), data)
	q := paperQuery()
	out, err := c.Search(context.Background(), []core.Query{q}, WithStrategy(StrategyNaive))
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := Oracle(data, q, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	got := out.Persons(1)
	if len(got) != len(oracle) {
		t.Fatalf("naive %v vs oracle %v", got, oracle)
	}
	for i := range got {
		if got[i] != oracle[i] {
			t.Fatalf("naive %v vs oracle %v", got, oracle)
		}
	}
	// Exact-match scenario: persons 10 and 11 only.
	if len(got) != 2 || got[0] != 10 || got[1] != 11 {
		t.Fatalf("naive results %v, want [10 11]", got)
	}
	if out.Cost.CenterStorageBytes == 0 {
		t.Fatal("naive center storage must count shipped data")
	}
}

func TestBFSearchSupersetOfWBF(t *testing.T) {
	data := paperScenario()
	c := startCluster(t, testOptions(), data)
	q := paperQuery()
	wbf, err := c.Search(context.Background(), []core.Query{q}, WithStrategy(StrategyWBF))
	if err != nil {
		t.Fatal(err)
	}
	bf, err := c.Search(context.Background(), []core.Query{q}, WithStrategy(StrategyBF))
	if err != nil {
		t.Fatal(err)
	}
	bfSet := make(map[core.PersonID]bool)
	for _, r := range bf.PerQuery[1] {
		bfSet[r.Person] = true
	}
	// Everyone the WBF pipeline reported at a station must appear in BF's
	// candidate set (weights only prune); note WBF's final ranking also
	// deletes over-matchers, which BF cannot.
	for _, r := range wbf.PerQuery[1] {
		if !bfSet[r.Person] {
			t.Fatalf("person %d in WBF results but not BF candidates", r.Person)
		}
	}
	// Person 12 is reported by BF (each station piece matches the global
	// combination) but deleted by WBF: the baseline's false positive.
	if !bfSet[12] {
		t.Fatal("BF should report person 12; it cannot verify aggregates")
	}
}

func TestCommunicationOrdering(t *testing.T) {
	// Figure 4c's shape on a single scenario: WBF replies are (ID, weight)
	// tuples and BF replies bare IDs, both tiny against naive's full
	// shipment. Dissemination (the filter) dominates WBF's downlink, so
	// compare uplink traffic, which is what grows with data size.
	c := startCluster(t, testOptions(), paperScenario())
	q := []core.Query{paperQuery()}

	naive, err := c.Search(context.Background(), q, WithStrategy(StrategyNaive))
	if err != nil {
		t.Fatal(err)
	}
	wbf, err := c.Search(context.Background(), q, WithStrategy(StrategyWBF))
	if err != nil {
		t.Fatal(err)
	}
	if wbf.Cost.BytesUp >= naive.Cost.BytesUp {
		t.Fatalf("WBF uplink %d >= naive uplink %d", wbf.Cost.BytesUp, naive.Cost.BytesUp)
	}
}

func TestSearchValidation(t *testing.T) {
	c := startCluster(t, testOptions(), paperScenario())
	if _, err := c.Search(context.Background(), nil, WithStrategy(StrategyWBF)); err == nil {
		t.Fatal("empty query batch accepted")
	}
	if _, err := c.Search(context.Background(), []core.Query{{ID: 1}}, WithStrategy(StrategyWBF)); err == nil {
		t.Fatal("invalid query accepted")
	}
	badLen := core.Query{ID: 1, Locals: []pattern.Pattern{{1, 2}}}
	if _, err := c.Search(context.Background(), []core.Query{badLen}, WithStrategy(StrategyWBF)); err == nil {
		t.Fatal("length-mismatched query accepted")
	}
	if _, err := c.Search(context.Background(), []core.Query{paperQuery()}, WithStrategy(Strategy(99))); err == nil {
		t.Fatal("unknown strategy accepted")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Options{}, nil); err == nil {
		t.Fatal("no stations accepted")
	}
	mixed := map[uint32]map[core.PersonID]pattern.Pattern{
		0: {1: {1, 2}},
		1: {2: {1, 2, 3}},
	}
	if _, err := New(Options{}, mixed); err == nil {
		t.Fatal("mixed pattern lengths accepted")
	}
	empty := map[uint32]map[core.PersonID]pattern.Pattern{0: {}}
	if _, err := New(Options{}, empty); err == nil {
		t.Fatal("patternless cluster accepted")
	}
}

func TestKillStationDegradesGracefully(t *testing.T) {
	data := paperScenario()
	c := startCluster(t, testOptions(), data)
	if err := c.KillStation(1); err != nil {
		t.Fatal(err)
	}
	if err := c.KillStation(1); err != nil {
		t.Fatal("second kill should be a no-op")
	}
	if err := c.KillStation(99); err == nil {
		t.Fatal("unknown station accepted")
	}
	out, err := c.Search(context.Background(), []core.Query{paperQuery()}, WithStrategy(StrategyWBF))
	if err != nil {
		t.Fatal(err)
	}
	if out.Cost.StationsFailed != 1 {
		t.Fatalf("StationsFailed = %d, want 1", out.Cost.StationsFailed)
	}
	// Person 10's station-1 half is lost: they degrade to weight 1/2;
	// person 11 (whole pattern at station 2) is unaffected.
	for _, r := range out.PerQuery[1] {
		if r.Person == 10 && r.Score() == 1.0 {
			t.Fatal("person 10 should lose the dead station's weight")
		}
		if r.Person == 11 && r.Score() != 1.0 {
			t.Fatal("person 11 should be unaffected")
		}
	}
}

func TestAutoSizing(t *testing.T) {
	opts := testOptions()
	opts.Params.Bits = 0 // request auto-sizing
	opts.Params.Hashes = 0
	c := startCluster(t, opts, paperScenario())
	out, err := c.Search(context.Background(), []core.Query{paperQuery()}, WithStrategy(StrategyWBF))
	if err != nil {
		t.Fatal(err)
	}
	if len(out.PerQuery[1]) == 0 {
		t.Fatal("auto-sized search returned nothing")
	}
}

func TestTopKTruncation(t *testing.T) {
	opts := testOptions()
	opts.TopK = 1
	c := startCluster(t, opts, paperScenario())
	for _, strat := range []Strategy{StrategyWBF, StrategyBF, StrategyNaive} {
		out, err := c.Search(context.Background(), []core.Query{paperQuery()}, WithStrategy(strat))
		if err != nil {
			t.Fatal(err)
		}
		if len(out.PerQuery[1]) > 1 {
			t.Fatalf("%v returned %d results with TopK=1", strat, len(out.PerQuery[1]))
		}
	}
}

func TestEpsilonToleranceEndToEnd(t *testing.T) {
	opts := testOptions()
	opts.Params.Epsilon = 1
	// Position salting isolates the ε semantics from cross-position value
	// coincidences (the paper's unsalted scheme admits a few more
	// candidates; that difference is measured by the ablation bench).
	opts.Params.PositionSalted = true
	data := map[uint32]map[core.PersonID]pattern.Pattern{
		0: {
			20: {1, 2, 3}, // exact local
			21: {2, 2, 3}, // within ε of local {1,2,3}
			22: {9, 2, 3}, // beyond even the accumulated ε band
		},
		1: {
			20: {2, 2, 2},
			21: {2, 2, 2},
		},
	}
	c := startCluster(t, opts, data)
	out, err := c.Search(context.Background(), []core.Query{paperQuery()}, WithStrategy(StrategyWBF))
	if err != nil {
		t.Fatal(err)
	}
	got := make(map[core.PersonID]bool)
	for _, r := range out.PerQuery[1] {
		got[r.Person] = true
	}
	if !got[20] || !got[21] {
		t.Fatalf("ε-tolerant search missed true matches: %v", out.PerQuery[1])
	}
	if got[22] {
		t.Fatalf("person 22 beyond ε matched: %v", out.PerQuery[1])
	}
}

func TestMultiQuerySearch(t *testing.T) {
	data := paperScenario()
	c := startCluster(t, testOptions(), data)
	queries := []core.Query{
		paperQuery(),
		{ID: 2, Locals: []pattern.Pattern{{7, 1, 9}}}, // person 13's pattern
	}
	out, err := c.Search(context.Background(), queries, WithStrategy(StrategyWBF))
	if err != nil {
		t.Fatal(err)
	}
	if len(out.PerQuery) != 2 {
		t.Fatalf("PerQuery has %d entries", len(out.PerQuery))
	}
	q2 := out.Persons(2)
	if len(q2) != 1 || q2[0] != 13 {
		t.Fatalf("query 2 results %v, want [13]", q2)
	}
	// Query 1 results unchanged by batching.
	foundTen := false
	for _, r := range out.PerQuery[1] {
		if r.Person == 13 {
			t.Fatal("query 1 contaminated by query 2's match")
		}
		if r.Person == 10 {
			foundTen = true
		}
	}
	if !foundTen {
		t.Fatal("query 1 lost person 10 when batched")
	}
}

func TestRepeatedSearches(t *testing.T) {
	c := startCluster(t, testOptions(), paperScenario())
	for i := 0; i < 3; i++ {
		for _, strat := range []Strategy{StrategyWBF, StrategyBF, StrategyNaive} {
			if _, err := c.Search(context.Background(), []core.Query{paperQuery()}, WithStrategy(strat)); err != nil {
				t.Fatalf("round %d %v: %v", i, strat, err)
			}
		}
	}
}

func TestStationSkipsZeroPatterns(t *testing.T) {
	link1, _ := newTestPipe()
	s := NewStation(0, map[core.PersonID]pattern.Pattern{
		1: {0, 0, 0},
		2: {1, 2, 3},
	}, link1)
	if s.Residents() != 1 {
		t.Fatalf("Residents = %d, want 1 (zero pattern dropped)", s.Residents())
	}
	if s.StorageBytes() != 24 {
		t.Fatalf("StorageBytes = %d, want 24", s.StorageBytes())
	}
}

func TestStrategyStrings(t *testing.T) {
	if StrategyNaive.String() != "naive" || StrategyBF.String() != "bf" || StrategyWBF.String() != "wbf" {
		t.Fatal("strategy names wrong")
	}
	if Strategy(9).String() == "" {
		t.Fatal("unknown strategy should render")
	}
}

func TestOracleValidation(t *testing.T) {
	if _, err := Oracle(nil, core.Query{}, 0, 0); err == nil {
		t.Fatal("invalid query accepted")
	}
}
