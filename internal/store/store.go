// Package store defines the pluggable station persistence layer: the
// contract a base station's resident store is made durable through, plus the
// in-memory default backend. A station appends every applied ingest/evict
// batch to its Store before acknowledging it, so an acknowledged mutation is
// exactly as durable as the backend promises — not at all for the in-memory
// backend, fsync-bounded for the snapshot+WAL backend in the wal subpackage.
//
// The contract is deliberately small. Recover replays the durable state into
// a full station image; Append records one applied batch; Snapshot replaces
// the durable state wholesale; Compact lets the backend fold its log into a
// fresh snapshot when its own thresholds say the log has grown past its
// keep. Stores are single-owner: the station serve loop is the only caller
// after construction, so implementations need no internal locking.
package store

import (
	"fmt"
	"sort"

	"dimatch/internal/core"
	"dimatch/internal/index"
	"dimatch/internal/pattern"
)

// Op tags one durable batch with the mutation it records.
type Op uint8

const (
	// OpIngest inserts or replaces resident patterns.
	OpIngest Op = 1
	// OpEvict removes residents by person ID.
	OpEvict Op = 2
)

// String names the op for errors and logs.
func (o Op) String() string {
	switch o {
	case OpIngest:
		return "ingest"
	case OpEvict:
		return "evict"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// Batch is one applied station mutation, recorded after the station's apply
// rules already ran: an OpIngest batch holds only patterns that were
// actually inserted or replaced (never all-zero ones), an OpEvict batch only
// persons that were actually resident. Locals is parallel to Persons for
// OpIngest and nil for OpEvict.
type Batch struct {
	Op      Op
	Persons []core.PersonID
	Locals  []pattern.Pattern
}

// Image is a complete station state: the resident store in person-ascending
// order plus, optionally, the memoized routing digest covering exactly those
// residents. Digest is nil when the caller had none memoized — recovery then
// leaves the station to rebuild it lazily, which yields byte-identical
// results because index.Build is deterministic in the resident set.
type Image struct {
	Persons []core.PersonID
	Locals  []pattern.Pattern
	Digest  *index.Summary
}

// Residents returns the image's resident count.
func (img Image) Residents() int { return len(img.Persons) }

// Store is the station persistence contract.
//
// Implementations are not goroutine-safe: the owning station serve loop
// serializes all calls, mirroring how the resident store itself is owned.
type Store interface {
	// Recover replays the durable state into a station image. It is safe to
	// call at any point (not just startup); batches appended since the last
	// snapshot are folded in.
	Recover() (Image, error)

	// Append records one applied batch. The station calls it before sending
	// the mutation's ack, so a batch the center saw acknowledged is never
	// lost by a crash the backend's durability policy covers.
	Append(Batch) error

	// Snapshot replaces the durable state with the image, folding away any
	// appended log.
	Snapshot(Image) error

	// Compact takes a fresh snapshot when the backend's thresholds say the
	// appended log has grown past its keep, and reports whether it did. The
	// image callback is invoked only when folding actually happens, so
	// callers defer expensive work — the station builds its routing digest
	// inside it, which is what puts the memoized digest on disk.
	Compact(image func() (Image, error)) (bool, error)

	// Close releases the backend, flushing anything buffered.
	Close() error
}

// Fold accumulates batches into a station image with exactly the station's
// apply semantics: all-zero ingest patterns are skipped, evicts of absent
// persons are ignored, and persons stay sorted ascending. WAL replay and the
// in-memory backend share it, so every backend recovers precisely the state
// the station would have held.
type Fold struct {
	persons []core.PersonID
	locals  []pattern.Pattern
}

// Apply folds one batch in.
func (f *Fold) Apply(b Batch) error {
	switch b.Op {
	case OpIngest:
		if len(b.Persons) != len(b.Locals) {
			return fmt.Errorf("store: ingest batch with %d persons but %d locals", len(b.Persons), len(b.Locals))
		}
		for i, p := range b.Persons {
			if b.Locals[i].Sum() == 0 {
				continue
			}
			f.upsert(p, b.Locals[i])
		}
	case OpEvict:
		for _, p := range b.Persons {
			i := sort.Search(len(f.persons), func(i int) bool { return f.persons[i] >= p })
			if i >= len(f.persons) || f.persons[i] != p {
				continue
			}
			f.persons = append(f.persons[:i], f.persons[i+1:]...)
			f.locals = append(f.locals[:i], f.locals[i+1:]...)
		}
	default:
		return fmt.Errorf("store: unknown batch op %v", b.Op)
	}
	return nil
}

// upsert inserts local at person p's slot in the sorted store, replacing the
// existing pattern if p is already present. Appends beyond the current tail
// skip the search and the shift — replay of sorted batches (snapshot chunks,
// Rebalance copies) stays linear in the resident count.
func (f *Fold) upsert(p core.PersonID, local pattern.Pattern) {
	if n := len(f.persons); n == 0 || p > f.persons[n-1] {
		f.persons = append(f.persons, p)
		f.locals = append(f.locals, local)
		return
	}
	i := sort.Search(len(f.persons), func(i int) bool { return f.persons[i] >= p })
	if i < len(f.persons) && f.persons[i] == p {
		f.locals[i] = local
		return
	}
	f.persons = append(f.persons, 0)
	copy(f.persons[i+1:], f.persons[i:])
	f.persons[i] = p
	f.locals = append(f.locals, nil)
	copy(f.locals[i+1:], f.locals[i:])
	f.locals[i] = local
}

// Load replaces the fold's state with the image's residents, run through the
// same apply rules as a batch so a hand-built image cannot smuggle in
// unsorted, duplicate or all-zero entries.
func (f *Fold) Load(img Image) error {
	f.persons = f.persons[:0]
	f.locals = f.locals[:0]
	return f.Apply(Batch{Op: OpIngest, Persons: img.Persons, Locals: img.Locals})
}

// Residents returns the folded resident count.
func (f *Fold) Residents() int { return len(f.persons) }

// Image returns an independent copy of the folded state (no digest — folds
// track residents only).
func (f *Fold) Image() Image {
	return Image{
		Persons: append([]core.PersonID(nil), f.persons...),
		Locals:  append([]pattern.Pattern(nil), f.locals...),
	}
}

// Take moves the folded state out, leaving the fold empty. Single-owner
// recovery paths use it to hand the result off without Image's deep copy.
func (f *Fold) Take() Image {
	img := Image{Persons: f.persons, Locals: f.locals}
	f.persons, f.locals = nil, nil
	return img
}

// Adopt replaces the fold's state with an image already known to obey the
// fold invariants — the output of another Fold. Unlike Load it takes
// ownership of the slices without re-validating; callers feeding it anything
// but fold output must use Load.
func (f *Fold) Adopt(img Image) {
	f.persons, f.locals = img.Persons, img.Locals
}

// Memory is the default backend: state lives in process memory only, so a
// station over it behaves exactly like a pre-persistence station — Recover
// after a process restart finds nothing. It exists so the store contract has
// one implementation with zero durability cost, and so contract tests can
// diff the WAL backend against a trivially correct reference.
type Memory struct {
	fold   Fold
	digest *index.Summary
}

// NewMemory returns an empty in-memory store.
func NewMemory() *Memory { return &Memory{} }

// Recover returns the folded state of everything applied so far.
func (m *Memory) Recover() (Image, error) {
	img := m.fold.Image()
	img.Digest = m.digest
	return img, nil
}

// Append folds the batch in. Any remembered digest no longer covers the
// store and is dropped.
func (m *Memory) Append(b Batch) error {
	m.digest = nil
	return m.fold.Apply(b)
}

// Snapshot replaces the state with the image.
func (m *Memory) Snapshot(img Image) error {
	if err := m.fold.Load(img); err != nil {
		return err
	}
	m.digest = img.Digest
	return nil
}

// Compact is a no-op: there is no log to fold.
func (m *Memory) Compact(func() (Image, error)) (bool, error) { return false, nil }

// Close is a no-op.
func (m *Memory) Close() error { return nil }
