package store_test

import (
	"reflect"
	"testing"

	"dimatch/internal/core"
	"dimatch/internal/index"
	"dimatch/internal/pattern"
	"dimatch/internal/store"
	"dimatch/internal/store/wal"
	"dimatch/internal/wire"
)

// backends enumerates every store implementation under one contract: the
// in-memory default is the trivially correct reference, and the WAL backend
// must recover exactly what it would.
func backends(t *testing.T) map[string]func(t *testing.T) store.Store {
	return map[string]func(t *testing.T) store.Store{
		"memory": func(t *testing.T) store.Store { return store.NewMemory() },
		"wal": func(t *testing.T) store.Store {
			s, err := wal.Open(t.TempDir(), wal.Options{})
			if err != nil {
				t.Fatalf("wal.Open: %v", err)
			}
			return s
		},
	}
}

func pat(vs ...int64) pattern.Pattern { return pattern.Pattern(vs) }

func ingest(persons []core.PersonID, locals []pattern.Pattern) store.Batch {
	return store.Batch{Op: store.OpIngest, Persons: persons, Locals: locals}
}

func evict(persons ...core.PersonID) store.Batch {
	return store.Batch{Op: store.OpEvict, Persons: persons}
}

// wantImage asserts the recovered residents match.
func wantImage(t *testing.T, s store.Store, persons []core.PersonID, locals []pattern.Pattern) {
	t.Helper()
	img, err := s.Recover()
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if len(img.Persons) == 0 {
		img.Persons = nil
	}
	if len(img.Locals) == 0 {
		img.Locals = nil
	}
	if !reflect.DeepEqual(img.Persons, persons) {
		t.Fatalf("recovered persons %v, want %v", img.Persons, persons)
	}
	if !reflect.DeepEqual(img.Locals, locals) {
		t.Fatalf("recovered locals %v, want %v", img.Locals, locals)
	}
}

func TestStoreContract(t *testing.T) {
	for name, open := range backends(t) {
		t.Run(name, func(t *testing.T) {
			s := open(t)
			defer s.Close()

			wantImage(t, s, nil, nil)

			// Appends fold with station semantics: sorted, zero-sum skipped,
			// upsert replaces.
			if err := s.Append(ingest(
				[]core.PersonID{7, 3, 5},
				[]pattern.Pattern{pat(1, 2), pat(3, 4), pat(0, 0)},
			)); err != nil {
				t.Fatalf("Append: %v", err)
			}
			wantImage(t, s,
				[]core.PersonID{3, 7},
				[]pattern.Pattern{pat(3, 4), pat(1, 2)})

			if err := s.Append(ingest(
				[]core.PersonID{3, 9},
				[]pattern.Pattern{pat(8, 8), pat(5, 5)},
			)); err != nil {
				t.Fatalf("Append: %v", err)
			}
			// Evicts of absent persons are ignored.
			if err := s.Append(evict(7, 100)); err != nil {
				t.Fatalf("Append: %v", err)
			}
			wantImage(t, s,
				[]core.PersonID{3, 9},
				[]pattern.Pattern{pat(8, 8), pat(5, 5)})

			// Snapshot replaces the durable state and preserves the digest.
			digest, err := index.Build(2, []pattern.Pattern{pat(4, 2)})
			if err != nil {
				t.Fatalf("index.Build: %v", err)
			}
			if err := s.Snapshot(store.Image{
				Persons: []core.PersonID{42},
				Locals:  []pattern.Pattern{pat(4, 2)},
				Digest:  digest,
			}); err != nil {
				t.Fatalf("Snapshot: %v", err)
			}
			img, err := s.Recover()
			if err != nil {
				t.Fatalf("Recover: %v", err)
			}
			if img.Digest == nil {
				t.Fatal("snapshot digest not recovered")
			}
			if got, want := wire.EncodeSummaryPayload(img.Digest, 0), wire.EncodeSummaryPayload(digest, 0); !reflect.DeepEqual(got, want) {
				t.Fatal("recovered digest differs from the snapshot's")
			}
			wantImage(t, s, []core.PersonID{42}, []pattern.Pattern{pat(4, 2)})

			// A post-snapshot append invalidates the digest: it no longer
			// covers the store, and the station rebuilds deterministically.
			if err := s.Append(evict(42)); err != nil {
				t.Fatalf("Append: %v", err)
			}
			img, err = s.Recover()
			if err != nil {
				t.Fatalf("Recover: %v", err)
			}
			if img.Digest != nil {
				t.Fatal("stale digest survived a post-snapshot append")
			}
			wantImage(t, s, nil, nil)

			// Unknown ops are typed errors.
			if err := s.Append(store.Batch{Op: 99}); err == nil {
				t.Fatal("Append of unknown op succeeded")
			}
		})
	}
}

// TestWALSurvivesReopen is the durability half the memory backend cannot
// share: state must come back through a fresh Open of the same directory.
func TestWALSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatalf("wal.Open: %v", err)
	}
	if err := s.Append(ingest(
		[]core.PersonID{1, 2},
		[]pattern.Pattern{pat(1, 1), pat(2, 2)},
	)); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := s.Append(evict(1)); err != nil {
		t.Fatalf("Append: %v", err)
	}
	// No Close: simulate the process dying without a clean shutdown. With
	// SyncEvery=1 every acked batch is already on disk.
	s2, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	wantImage(t, s2, []core.PersonID{2}, []pattern.Pattern{pat(2, 2)})
}

// TestWALCompactFolds exercises the record-count trigger: the log folds into
// a snapshot generation and recovery still sees every batch.
func TestWALCompactFolds(t *testing.T) {
	dir := t.TempDir()
	s, err := wal.Open(dir, wal.Options{SnapshotEvery: 3, SnapshotBytes: -1})
	if err != nil {
		t.Fatalf("wal.Open: %v", err)
	}
	var wantPersons []core.PersonID
	var wantLocals []pattern.Pattern
	imageCalls := 0
	for i := 1; i <= 10; i++ {
		p := core.PersonID(i)
		l := pat(int64(i), int64(i))
		if err := s.Append(ingest([]core.PersonID{p}, []pattern.Pattern{l})); err != nil {
			t.Fatalf("Append: %v", err)
		}
		wantPersons = append(wantPersons, p)
		wantLocals = append(wantLocals, l)
		if _, err := s.Compact(func() (store.Image, error) {
			imageCalls++
			return store.Image{Persons: wantPersons, Locals: wantLocals}, nil
		}); err != nil {
			t.Fatalf("Compact: %v", err)
		}
	}
	if imageCalls == 0 {
		t.Fatal("Compact never folded despite SnapshotEvery=3")
	}
	if s.Generation() == 0 {
		t.Fatal("Compact folded but the generation never advanced")
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	s2, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	wantImage(t, s2, wantPersons, wantLocals)
}
