package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Record framing, shared by the log and the snapshot body. Every record is
// length-prefixed and CRC-framed so a torn or bit-rotted tail is detected,
// never replayed:
//
//	+-----------+-----------+---------+--------------------+
//	| length u32| crc32 u32 | kind u8 | body (length-1 B)  |
//	| little-endian LE      |         | wire payload bytes |
//	+-----------+-----------+---------+--------------------+
//
// length counts the kind byte plus the body; crc32 is IEEE over the kind
// byte plus the body. Bodies reuse the wire payload codecs verbatim: a
// recIngest body is exactly wire.EncodeIngestPayload's output, a recEvict
// body wire.EncodeEvictPayload's, a recDigest body
// wire.EncodeSummaryPayload's — persistence and the wire share one binary
// vocabulary (docs/WIRE.md).
const headerSize = 8

// MaxRecordBytes bounds one framed record. A length field beyond it is
// rejected as corruption before any allocation or read is attempted, so a
// flipped bit in a length prefix can never balloon recovery memory.
const MaxRecordBytes = 64 << 20

// Record kinds. Log records carry applied station batches; snapshot records
// carry the folded image.
const (
	recIngest byte = 0x01 // body: wire ingest payload (applied upserts)
	recEvict  byte = 0x02 // body: wire evict payload (applied removals)

	recResidents byte = 0x11 // snapshot: one chunk of the resident store (ingest payload)
	recDigest    byte = 0x12 // snapshot: the memoized routing digest (summary payload)
	recSeal      byte = 0x1f // snapshot terminator: u64 LE total resident count
)

// Typed decode errors. Recovery treats any of them at the log tail as a torn
// write and truncates; the snapshot loader treats them as fatal corruption
// (snapshots are written atomically, so a damaged one is disk rot, not a
// crash artifact).
var (
	// ErrTruncated marks a record whose header or body runs past the end of
	// the data — the classic torn tail.
	ErrTruncated = errors.New("wal: truncated record")
	// ErrBadLength marks a zero length prefix (too short to hold the kind).
	ErrBadLength = errors.New("wal: bad record length")
	// ErrTooLarge marks a length prefix beyond MaxRecordBytes.
	ErrTooLarge = errors.New("wal: record exceeds size bound")
	// ErrChecksum marks a CRC mismatch.
	ErrChecksum = errors.New("wal: record checksum mismatch")
	// ErrBadKind marks a record kind the reader does not know.
	ErrBadKind = errors.New("wal: unknown record kind")
	// ErrBadSnapshot marks a snapshot file with a bad header, a missing
	// seal, or sections that do not add up to the sealed resident count.
	ErrBadSnapshot = errors.New("wal: corrupt snapshot")
)

// appendRecord frames body under kind onto dst.
func appendRecord(dst []byte, kind byte, body []byte) []byte {
	if 1+len(body) > MaxRecordBytes {
		// Callers chunk their payloads well below the bound; reaching it is
		// a programming error, not a runtime condition.
		panic(fmt.Sprintf("wal: record body %d bytes exceeds MaxRecordBytes", len(body)))
	}
	var hdr [headerSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(1+len(body)))
	sum := crc32.Update(0, crc32.IEEETable, []byte{kind})
	sum = crc32.Update(sum, crc32.IEEETable, body)
	binary.LittleEndian.PutUint32(hdr[4:8], sum)
	dst = append(dst, hdr[:]...)
	dst = append(dst, kind)
	return append(dst, body...)
}

// readRecord decodes the first framed record in b, returning its kind, body
// and the total bytes consumed. The body aliases b — decoding allocates
// nothing, and a corrupt length field is checked against the bytes actually
// present before anything else, so it can never cause an over-allocation.
func readRecord(b []byte) (kind byte, body []byte, n int, err error) {
	if len(b) < headerSize {
		return 0, nil, 0, fmt.Errorf("%w: %d header bytes", ErrTruncated, len(b))
	}
	ln := binary.LittleEndian.Uint32(b[0:4])
	if ln == 0 {
		return 0, nil, 0, ErrBadLength
	}
	if ln > MaxRecordBytes {
		return 0, nil, 0, fmt.Errorf("%w: %d bytes", ErrTooLarge, ln)
	}
	if int(ln) > len(b)-headerSize {
		return 0, nil, 0, fmt.Errorf("%w: %d byte record, %d present", ErrTruncated, ln, len(b)-headerSize)
	}
	payload := b[headerSize : headerSize+int(ln)]
	if got := crc32.ChecksumIEEE(payload); got != binary.LittleEndian.Uint32(b[4:8]) {
		return 0, nil, 0, ErrChecksum
	}
	return payload[0], payload[1:], headerSize + int(ln), nil
}
