package wal

import (
	"encoding/binary"
	"fmt"

	"dimatch/internal/store"
	"dimatch/internal/wire"
)

// Snapshot file layout: a 5-byte header (magic "D1SN", version 1) followed
// by framed records — the resident store chunked into recResidents records
// (each body a wire ingest payload), an optional recDigest record (body a
// wire summary payload: the memoized routing digest), and a mandatory
// recSeal terminator whose body is the u64 LE total resident count. The seal
// lets the loader distinguish a complete snapshot from one a sector-level
// failure cut short even though the rename was atomic.

var snapMagic = [4]byte{'D', '1', 'S', 'N'}

const (
	snapVersion    = 1
	snapHeaderSize = 5

	// snapChunk bounds one resident record, keeping every framed record far
	// below MaxRecordBytes whatever the pattern length.
	snapChunk = 4096
)

// encodeSnapshot renders a station image as a snapshot file body.
func encodeSnapshot(img store.Image) ([]byte, error) {
	buf := append([]byte(nil), snapMagic[:]...)
	buf = append(buf, snapVersion)
	for start := 0; start < len(img.Persons); start += snapChunk {
		end := start + snapChunk
		if end > len(img.Persons) {
			end = len(img.Persons)
		}
		body, err := wire.EncodeIngestPayload(wire.Ingest{
			Persons: img.Persons[start:end],
			Locals:  img.Locals[start:end],
		})
		if err != nil {
			return nil, fmt.Errorf("wal: snapshot: %w", err)
		}
		buf = appendRecord(buf, recResidents, body)
	}
	if img.Digest != nil {
		buf = appendRecord(buf, recDigest, wire.EncodeSummaryPayload(img.Digest, 0))
	}
	var seal [8]byte
	binary.LittleEndian.PutUint64(seal[:], uint64(len(img.Persons)))
	return appendRecord(buf, recSeal, seal[:]), nil
}

// decodeSnapshot parses a snapshot file body back into a station image.
// Every failure is typed under ErrBadSnapshot: snapshots are written
// atomically, so damage here is disk rot, not a crash artifact, and the
// loader refuses it rather than recovering a silently incomplete store.
func decodeSnapshot(data []byte) (store.Image, error) {
	if len(data) < snapHeaderSize {
		return store.Image{}, fmt.Errorf("%w: %d byte header", ErrBadSnapshot, len(data))
	}
	if [4]byte(data[0:4]) != snapMagic {
		return store.Image{}, fmt.Errorf("%w: bad magic", ErrBadSnapshot)
	}
	if data[4] != snapVersion {
		return store.Image{}, fmt.Errorf("%w: version %d", ErrBadSnapshot, data[4])
	}
	var fold store.Fold
	img := store.Image{}
	sealed := int64(-1)
	off := snapHeaderSize
	for off < len(data) {
		kind, body, n, err := readRecord(data[off:])
		if err != nil {
			return store.Image{}, fmt.Errorf("%w: %w", ErrBadSnapshot, err)
		}
		off += n
		switch kind {
		case recResidents:
			in, err := wire.DecodeIngestPayload(body)
			if err != nil {
				return store.Image{}, fmt.Errorf("%w: residents: %w", ErrBadSnapshot, err)
			}
			if err := fold.Apply(store.Batch{Op: store.OpIngest, Persons: in.Persons, Locals: in.Locals}); err != nil {
				return store.Image{}, fmt.Errorf("%w: %w", ErrBadSnapshot, err)
			}
		case recDigest:
			_, sum, err := wire.DecodeSummaryPayload(body)
			if err != nil {
				return store.Image{}, fmt.Errorf("%w: digest: %w", ErrBadSnapshot, err)
			}
			img.Digest = sum
		case recSeal:
			if len(body) != 8 {
				return store.Image{}, fmt.Errorf("%w: %d byte seal", ErrBadSnapshot, len(body))
			}
			sealed = int64(binary.LittleEndian.Uint64(body))
			if off != len(data) {
				return store.Image{}, fmt.Errorf("%w: %d bytes after seal", ErrBadSnapshot, len(data)-off)
			}
		default:
			return store.Image{}, fmt.Errorf("%w: record kind 0x%02x", ErrBadSnapshot, kind)
		}
	}
	if sealed < 0 {
		return store.Image{}, fmt.Errorf("%w: missing seal", ErrBadSnapshot)
	}
	if int64(fold.Residents()) != sealed {
		return store.Image{}, fmt.Errorf("%w: sealed %d residents, decoded %d", ErrBadSnapshot, sealed, fold.Residents())
	}
	folded := fold.Take()
	img.Persons, img.Locals = folded.Persons, folded.Locals
	return img, nil
}
