// Package wal implements the snapshot + write-ahead-log station store: every
// applied batch is appended to a CRC-framed log before the station acks it,
// and the log is periodically folded into an atomic snapshot so recovery
// replays a bounded tail instead of the station's whole history.
//
// On-disk layout (one directory per station):
//
//	wal-<seq>.log    the active log generation: framed batch records
//	snap-<seq>.snap  the snapshot the generation starts from (absent at seq 0)
//
// A snapshot is written to a temp file, fsynced and atomically renamed into
// place before the next log generation is created and the old generation
// removed — so at every crash point the directory holds one recoverable
// state, and recovery is "load highest snapshot, replay its log". A torn or
// corrupt log tail is detected by the per-record CRC and cleanly truncated:
// recovery yields a prefix of the applied batches, never a partial batch.
//
// Durability is tunable (Options): SyncEvery=1 (the default) fsyncs every
// append, so an acked batch survives kill -9 and power loss; SyncInterval
// trades a bounded window of acked-but-unsynced batches for throughput.
package wal

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"dimatch/internal/index"
	"dimatch/internal/store"
	"dimatch/internal/wire"
)

// Options tunes durability and compaction. The zero value is the safe
// default: fsync every append, fold the log every 4096 records or 16 MiB.
type Options struct {
	// SyncEvery fsyncs the log after every Nth appended batch. 1 (the
	// default when SyncInterval is also unset) makes every acked batch
	// durable before the ack leaves the station.
	SyncEvery int

	// SyncInterval, when SyncEvery is 0, bounds how long an acked batch may
	// sit unsynced: an append fsyncs once this much time has passed since
	// the last sync. A crash inside the window loses at most the batches
	// acked since that sync — never a partial batch, and never anything a
	// completed Snapshot covered.
	SyncInterval time.Duration

	// SnapshotEvery folds the log into a fresh snapshot once it holds this
	// many records (default 4096; negative disables the record trigger).
	SnapshotEvery int

	// SnapshotBytes folds once the log file exceeds this size (default
	// 16 MiB; negative disables the size trigger).
	SnapshotBytes int64
}

func (o Options) withDefaults() Options {
	if o.SyncEvery == 0 && o.SyncInterval <= 0 {
		o.SyncEvery = 1
	}
	if o.SnapshotEvery == 0 {
		o.SnapshotEvery = 4096
	}
	if o.SnapshotBytes == 0 {
		o.SnapshotBytes = 16 << 20
	}
	return o
}

// Store is the snapshot+WAL backend. It implements store.Store and, like
// every backend, is single-owner: the station serve loop serializes calls.
type Store struct {
	dir  string
	opts Options

	seq        uint64   // current generation
	log        *os.File // active log, positioned at its end
	logBytes   int64
	logRecords int

	unsynced int
	lastSync time.Time

	torn int64 // torn-tail bytes truncated at Open

	buf []byte // record staging buffer, reused across appends
}

var _ store.Store = (*Store)(nil)

// Open opens (or initializes) a station's persistence directory, truncating
// any torn log tail left by a crash. Call Recover for the replayed state.
func Open(dir string, opts Options) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	s := &Store{dir: dir, opts: opts.withDefaults(), lastSync: time.Now()}
	if err := s.boot(); err != nil {
		return nil, err
	}
	return s, nil
}

func (s *Store) logPath(seq uint64) string {
	return filepath.Join(s.dir, fmt.Sprintf("wal-%016x.log", seq))
}

func (s *Store) snapPath(seq uint64) string {
	return filepath.Join(s.dir, fmt.Sprintf("snap-%016x.snap", seq))
}

// parseSeq extracts the generation from a store file name, reporting whether
// the name matches prefix-<16 hex>-suffix.
func parseSeq(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	hex := strings.TrimSuffix(strings.TrimPrefix(name, prefix), suffix)
	if len(hex) != 16 {
		return 0, false
	}
	seq, err := strconv.ParseUint(hex, 16, 64)
	if err != nil {
		return 0, false
	}
	return seq, true
}

// boot scans the directory, picks the newest generation, sweeps crash debris
// (temp files, superseded generations) and opens the log for append with any
// torn tail truncated.
func (s *Store) boot() error {
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	snaps := map[uint64]bool{}
	logs := map[uint64]bool{}
	gen := uint64(0)
	for _, ent := range ents {
		name := ent.Name()
		if strings.HasSuffix(name, ".tmp") {
			// A snapshot that never reached its rename: dead weight.
			_ = os.Remove(filepath.Join(s.dir, name))
			continue
		}
		if seq, ok := parseSeq(name, "snap-", ".snap"); ok {
			snaps[seq] = true
			if seq > gen {
				gen = seq
			}
		}
		if seq, ok := parseSeq(name, "wal-", ".log"); ok {
			logs[seq] = true
			if seq > gen {
				gen = seq
			}
		}
	}
	// Rotation creates wal-N only after snap-N is durable, so a log at a
	// non-zero generation without its snapshot means the base state is gone.
	if logs[gen] && gen > 0 && !snaps[gen] {
		return fmt.Errorf("%w: generation %d log without its snapshot", ErrBadSnapshot, gen)
	}
	// Sweep superseded generations a crash between rotation and cleanup left
	// behind: the newest snapshot folds them in entirely.
	for seq := range snaps {
		if seq != gen {
			_ = os.Remove(s.snapPath(seq))
		}
	}
	for seq := range logs {
		if seq != gen {
			_ = os.Remove(s.logPath(seq))
		}
	}
	s.seq = gen

	f, err := os.OpenFile(s.logPath(gen), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	data, err := os.ReadFile(s.logPath(gen))
	if err != nil {
		_ = f.Close()
		return fmt.Errorf("wal: %w", err)
	}
	good, records := scanLog(data)
	if good < int64(len(data)) {
		s.torn = int64(len(data)) - good
		if err := f.Truncate(good); err != nil {
			_ = f.Close()
			return fmt.Errorf("wal: truncating torn tail: %w", err)
		}
		if err := f.Sync(); err != nil {
			_ = f.Close()
			return fmt.Errorf("wal: %w", err)
		}
	}
	if _, err := f.Seek(good, io.SeekStart); err != nil {
		_ = f.Close()
		return fmt.Errorf("wal: %w", err)
	}
	s.log = f
	s.logBytes = good
	s.logRecords = records
	return nil
}

// scanLog walks framed records from the front and returns the byte length of
// the longest well-framed prefix plus its record count. Anything after the
// first framing error is a torn tail. Framing (length + CRC over kind+body)
// is the whole integrity check: a torn or corrupted write cannot survive the
// CRC, so bodies are decoded once, at replay, not here.
func scanLog(data []byte) (good int64, records int) {
	off := 0
	for off < len(data) {
		_, _, n, err := readRecord(data[off:])
		if err != nil {
			break
		}
		off += n
		records++
	}
	return int64(off), records
}

// encodeBatch maps a store batch to its record kind and wire payload body.
func encodeBatch(b store.Batch) (byte, []byte, error) {
	switch b.Op {
	case store.OpIngest:
		body, err := wire.EncodeIngestPayload(wire.Ingest{Persons: b.Persons, Locals: b.Locals})
		if err != nil {
			return 0, nil, fmt.Errorf("wal: %w", err)
		}
		return recIngest, body, nil
	case store.OpEvict:
		return recEvict, wire.EncodeEvictPayload(wire.Evict{Persons: b.Persons}), nil
	default:
		return 0, nil, fmt.Errorf("%w: batch op %v", ErrBadKind, b.Op)
	}
}

// decodeBatch maps a log record back to the batch it recorded.
func decodeBatch(kind byte, body []byte) (store.Batch, error) {
	switch kind {
	case recIngest:
		in, err := wire.DecodeIngestPayload(body)
		if err != nil {
			return store.Batch{}, fmt.Errorf("wal: ingest record: %w", err)
		}
		return store.Batch{Op: store.OpIngest, Persons: in.Persons, Locals: in.Locals}, nil
	case recEvict:
		ev, err := wire.DecodeEvictPayload(body)
		if err != nil {
			return store.Batch{}, fmt.Errorf("wal: evict record: %w", err)
		}
		return store.Batch{Op: store.OpEvict, Persons: ev.Persons}, nil
	default:
		return store.Batch{}, fmt.Errorf("%w: 0x%02x", ErrBadKind, kind)
	}
}

// Recover replays the durable state: the generation's snapshot (if any) plus
// every replayable log record. The snapshot's digest is returned only when
// zero log records followed it — a digest does not cover later mutations,
// and the station rebuilds an identical one lazily from the residents.
func (s *Store) Recover() (store.Image, error) {
	var fold store.Fold
	var digest *index.Summary
	snap, err := os.ReadFile(s.snapPath(s.seq))
	switch {
	case err == nil:
		img, derr := decodeSnapshot(snap)
		if derr != nil {
			return store.Image{}, derr
		}
		// The decoder's own fold produced the image, so its invariants hold
		// and the slices can be adopted without the Load re-validation pass.
		fold.Adopt(img)
		digest = img.Digest
	case os.IsNotExist(err):
		// Generation 0 never has a snapshot: recovery starts empty.
	default:
		return store.Image{}, fmt.Errorf("wal: %w", err)
	}

	data, err := os.ReadFile(s.logPath(s.seq))
	if err != nil {
		return store.Image{}, fmt.Errorf("wal: %w", err)
	}
	off, replayed := 0, 0
	for off < len(data) {
		kind, body, n, err := readRecord(data[off:])
		if err != nil {
			break // boot truncated the tail; records appended since are whole
		}
		batch, err := decodeBatch(kind, body)
		if err != nil {
			break
		}
		if err := fold.Apply(batch); err != nil {
			return store.Image{}, err
		}
		off += n
		replayed++
	}
	img := fold.Take()
	if replayed == 0 {
		img.Digest = digest
	}
	return img, nil
}

// Append frames one applied batch onto the log and syncs per the configured
// policy. The station calls it before acking, so an Append error is fatal to
// the serve loop — the center never sees an ack for a batch that was not
// made as durable as the policy promises.
func (s *Store) Append(b store.Batch) error {
	kind, body, err := encodeBatch(b)
	if err != nil {
		return err
	}
	s.buf = appendRecord(s.buf[:0], kind, body)
	if _, err := s.log.Write(s.buf); err != nil {
		return fmt.Errorf("wal: append: %w", err)
	}
	s.logBytes += int64(len(s.buf))
	s.logRecords++
	s.unsynced++
	return s.maybeSync()
}

func (s *Store) maybeSync() error {
	if s.opts.SyncEvery > 0 {
		if s.unsynced < s.opts.SyncEvery {
			return nil
		}
	} else if time.Since(s.lastSync) < s.opts.SyncInterval {
		return nil
	}
	return s.syncLog()
}

func (s *Store) syncLog() error {
	if err := s.log.Sync(); err != nil {
		return fmt.Errorf("wal: sync: %w", err)
	}
	s.unsynced = 0
	s.lastSync = time.Now()
	return nil
}

// Snapshot folds the image into a fresh generation: temp-write + fsync +
// atomic rename for the snapshot, then a new empty log, then the old
// generation is removed. A crash at any point leaves either the old
// generation intact or the new snapshot complete — never a half state. A
// Snapshot error leaves the store unusable for further appends (the station
// treats it as fatal), because the generation bookkeeping may be mid-flight.
func (s *Store) Snapshot(img store.Image) error {
	next := s.seq + 1
	data, err := encodeSnapshot(img)
	if err != nil {
		return err
	}
	tmp := s.snapPath(next) + ".tmp"
	if err := writeFileSync(tmp, data); err != nil {
		_ = os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, s.snapPath(next)); err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("wal: %w", err)
	}
	if err := syncDir(s.dir); err != nil {
		return err
	}
	nf, err := os.OpenFile(s.logPath(next), os.O_CREATE|os.O_EXCL|os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if err := syncDir(s.dir); err != nil {
		_ = nf.Close()
		return err
	}
	old, oldSeq := s.log, s.seq
	s.log = nf
	s.seq = next
	s.logBytes, s.logRecords, s.unsynced = 0, 0, 0
	_ = old.Close()
	_ = os.Remove(s.logPath(oldSeq))
	_ = os.Remove(s.snapPath(oldSeq)) // absent at generation 0; best-effort either way
	return syncDir(s.dir)
}

// Compact folds the log into a fresh snapshot once it exceeds the configured
// record or byte threshold. The image callback runs only when folding
// happens, so the station can defer building its digest to it.
func (s *Store) Compact(image func() (store.Image, error)) (bool, error) {
	byRecords := s.opts.SnapshotEvery > 0 && s.logRecords >= s.opts.SnapshotEvery
	byBytes := s.opts.SnapshotBytes > 0 && s.logBytes >= s.opts.SnapshotBytes
	if !byRecords && !byBytes {
		return false, nil
	}
	img, err := image()
	if err != nil {
		return false, err
	}
	if err := s.Snapshot(img); err != nil {
		return false, err
	}
	return true, nil
}

// Close syncs and releases the log. Idempotent.
func (s *Store) Close() error {
	if s.log == nil {
		return nil
	}
	err := s.syncLog()
	if cerr := s.log.Close(); err == nil && cerr != nil {
		err = fmt.Errorf("wal: %w", cerr)
	}
	s.log = nil
	return err
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// Generation returns the current snapshot/log generation.
func (s *Store) Generation() uint64 { return s.seq }

// TornBytes reports how many trailing log bytes Open discarded as a torn
// tail — zero after a clean shutdown.
func (s *Store) TornBytes() int64 { return s.torn }

// LogRecords reports how many batch records the active log holds.
func (s *Store) LogRecords() int { return s.logRecords }

// SnapshotBytes reports the current generation's snapshot size on disk,
// zero at generation 0 (no snapshot yet).
func (s *Store) SnapshotBytes() int64 {
	if s.seq == 0 {
		return 0
	}
	fi, err := os.Stat(s.snapPath(s.seq))
	if err != nil {
		return 0
	}
	return fi.Size()
}

// writeFileSync writes data to path and fsyncs it before returning.
func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	_, werr := f.Write(data)
	if werr == nil {
		werr = f.Sync()
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return fmt.Errorf("wal: %w", werr)
	}
	return nil
}

// syncDir fsyncs a directory so renames and creates within it are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	serr := d.Sync()
	if cerr := d.Close(); serr == nil {
		serr = cerr
	}
	if serr != nil {
		return fmt.Errorf("wal: sync dir: %w", serr)
	}
	return nil
}
