package wal

import (
	"bytes"
	"encoding/hex"
	"errors"
	"reflect"
	"testing"

	"dimatch/internal/core"
	"dimatch/internal/pattern"
	"dimatch/internal/store"
	"dimatch/internal/wire"
)

// Worked records, the persistence counterparts of docs/WIRE.md's worked
// frames (see ARCHITECTURE.md "Station persistence"). Each is a framed
// record: length u32 LE | crc32(IEEE over kind+body) LE | kind u8 | body.
const (
	// An ingest record: persons 7 and 9 with patterns [3,-1,4] and [2,2,2]
	// (the body is exactly wire.EncodeIngestPayload's output).
	workedIngestRecordHex = "0c0000007df0ab94010207030601080903040404"
	// An evict record: persons {7, 9}, sorted and delta-encoded.
	workedEvictRecordHex = "040000001234862902020702"
	// A complete snapshot: header "D1SN" v1, one resident chunk (person 7,
	// pattern [3,-1,4]), the memoized digest, and the seal (1 resident).
	workedSnapshotHex = "4431534e01070000009e2d4124110107030601081f000000bc69702e12000301719a3d0cbfe5a7511d00000000000000070301ffb98b0400000000090000009099da591f0100000000000000"
	// The same snapshot without a digest record.
	workedSnapshotNoDigestHex = "4431534e01070000009e2d412411010703060108090000009099da591f0100000000000000"
)

func mustHex(t interface{ Fatalf(string, ...any) }, s string) []byte {
	b, err := hex.DecodeString(s)
	if err != nil {
		t.Fatalf("bad hex constant: %v", err)
	}
	return b
}

// TestWorkedRecordHex pins the worked constants to the live encoders, so the
// documented hex cannot drift from what the store actually writes.
func TestWorkedRecordHex(t *testing.T) {
	inBody, err := wire.EncodeIngestPayload(wire.Ingest{
		Persons: []core.PersonID{7, 9},
		Locals:  []pattern.Pattern{{3, -1, 4}, {2, 2, 2}},
	})
	if err != nil {
		t.Fatalf("EncodeIngestPayload: %v", err)
	}
	if got := appendRecord(nil, recIngest, inBody); !bytes.Equal(got, mustHex(t, workedIngestRecordHex)) {
		t.Errorf("worked ingest record drifted:\n got %x\nwant %s", got, workedIngestRecordHex)
	}
	evBody := wire.EncodeEvictPayload(wire.Evict{Persons: []core.PersonID{9, 7}})
	if got := appendRecord(nil, recEvict, evBody); !bytes.Equal(got, mustHex(t, workedEvictRecordHex)) {
		t.Errorf("worked evict record drifted:\n got %x\nwant %s", got, workedEvictRecordHex)
	}
}

// typedRecordErr reports whether err is one of the package's typed decode
// errors — the only failures a corrupt record may produce.
func typedRecordErr(err error) bool {
	return errors.Is(err, ErrTruncated) || errors.Is(err, ErrBadLength) ||
		errors.Is(err, ErrTooLarge) || errors.Is(err, ErrChecksum) ||
		errors.Is(err, ErrBadKind) || errors.Is(err, ErrBadSnapshot)
}

// FuzzWALRecord hammers the record frame decoder: arbitrary bytes must
// either fail with a typed error or decode into a batch that re-encodes and
// re-decodes to the same value — and must never panic or allocate off a
// corrupt length field (readRecord only ever aliases its input).
func FuzzWALRecord(f *testing.F) {
	f.Add(mustHex(f, workedIngestRecordHex))
	f.Add(mustHex(f, workedEvictRecordHex))
	// A torn tail and a flipped CRC byte, straight from the matrix the crash
	// tests replay.
	f.Add(mustHex(f, workedIngestRecordHex)[:7])
	corrupt := mustHex(f, workedEvictRecordHex)
	corrupt[5] ^= 0x40
	f.Add(corrupt)
	f.Fuzz(func(t *testing.T, data []byte) {
		kind, body, n, err := readRecord(data)
		if err != nil {
			if !typedRecordErr(err) {
				t.Fatalf("untyped decode error: %v", err)
			}
			return
		}
		if n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		// The frame is intact; the body must decode cleanly or fail typed
		// (wire decode errors are wrapped but never panic), and a decodable
		// batch must survive an encode/decode roundtrip.
		batch, err := decodeBatch(kind, body)
		if err != nil {
			return
		}
		k2, body2, err := encodeBatch(batch)
		if err != nil {
			t.Fatalf("re-encoding decoded batch: %v", err)
		}
		batch2, err := decodeBatch(k2, body2)
		if err != nil {
			t.Fatalf("re-decoding encoded batch: %v", err)
		}
		if !reflect.DeepEqual(normalizeBatch(batch), normalizeBatch(batch2)) {
			t.Fatalf("batch roundtrip drifted:\n in  %+v\n out %+v", batch, batch2)
		}
	})
}

// normalizeBatch maps empty slices to nil so DeepEqual compares values, not
// allocation accidents.
func normalizeBatch(b store.Batch) store.Batch {
	if len(b.Persons) == 0 {
		b.Persons = nil
	}
	if len(b.Locals) == 0 {
		b.Locals = nil
	}
	return b
}

// FuzzSnapshot hammers the snapshot loader: arbitrary bytes must either fail
// with a typed error or yield a well-formed image (persons strictly
// ascending, locals parallel, no all-zero patterns) — never panic, never
// trust a corrupt length or seal.
func FuzzSnapshot(f *testing.F) {
	f.Add(mustHex(f, workedSnapshotHex))
	f.Add(mustHex(f, workedSnapshotNoDigestHex))
	// Header-only, truncated mid-record, and a flipped seal count.
	f.Add(mustHex(f, workedSnapshotHex)[:5])
	f.Add(mustHex(f, workedSnapshotHex)[:20])
	sealFlip := mustHex(f, workedSnapshotNoDigestHex)
	sealFlip[len(sealFlip)-8] ^= 0x01
	f.Add(sealFlip)
	f.Fuzz(func(t *testing.T, data []byte) {
		img, err := decodeSnapshot(data)
		if err != nil {
			if !errors.Is(err, ErrBadSnapshot) {
				t.Fatalf("snapshot decode error not typed ErrBadSnapshot: %v", err)
			}
			return
		}
		if len(img.Persons) != len(img.Locals) {
			t.Fatalf("decoded %d persons but %d locals", len(img.Persons), len(img.Locals))
		}
		for i := range img.Persons {
			if i > 0 && img.Persons[i] <= img.Persons[i-1] {
				t.Fatalf("persons not strictly ascending at %d: %v", i, img.Persons[i])
			}
			if img.Locals[i].Sum() == 0 {
				t.Fatalf("all-zero pattern for person %d survived the fold", img.Persons[i])
			}
		}
		// A decodable snapshot must roundtrip through the encoder.
		re, err := encodeSnapshot(img)
		if err != nil {
			t.Fatalf("re-encoding decoded snapshot: %v", err)
		}
		img2, err := decodeSnapshot(re)
		if err != nil {
			t.Fatalf("re-decoding encoded snapshot: %v", err)
		}
		if !reflect.DeepEqual(imgResidents(img), imgResidents(img2)) {
			t.Fatal("snapshot residents drifted through a roundtrip")
		}
	})
}

func imgResidents(img store.Image) store.Image {
	return store.Image{Persons: img.Persons, Locals: img.Locals}
}
