package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"dimatch/internal/core"
	"dimatch/internal/pattern"
	"dimatch/internal/store"
)

// matrixBatches builds a small, varied batch history: inserts, replacements,
// evicts, a batch that is entirely skipped (all-zero), interleaved so every
// prefix is a distinct store state.
func matrixBatches() []store.Batch {
	return []store.Batch{
		{Op: store.OpIngest, Persons: []core.PersonID{5, 2}, Locals: []pattern.Pattern{{1, 1}, {2, 2}}},
		{Op: store.OpIngest, Persons: []core.PersonID{8}, Locals: []pattern.Pattern{{3, 3}}},
		{Op: store.OpEvict, Persons: []core.PersonID{2}},
		{Op: store.OpIngest, Persons: []core.PersonID{5, 11}, Locals: []pattern.Pattern{{9, 9}, {4, 4}}},
		{Op: store.OpIngest, Persons: []core.PersonID{13}, Locals: []pattern.Pattern{{0, 0}}}, // skipped entirely
		{Op: store.OpEvict, Persons: []core.PersonID{8, 99}},
		{Op: store.OpIngest, Persons: []core.PersonID{1, 3}, Locals: []pattern.Pattern{{7, 0}, {0, 7}}},
		{Op: store.OpEvict, Persons: []core.PersonID{5}},
		{Op: store.OpIngest, Persons: []core.PersonID{21, 22, 23}, Locals: []pattern.Pattern{{1, 2}, {3, 4}, {5, 6}}},
		{Op: store.OpEvict, Persons: []core.PersonID{22, 1}},
	}
}

// prefixImages folds every batch prefix: prefixImages(batches)[m] is the
// exact store state after the first m batches applied.
func prefixImages(t *testing.T, batches []store.Batch) []store.Image {
	t.Helper()
	var fold store.Fold
	images := []store.Image{fold.Image()}
	for _, b := range batches {
		if err := fold.Apply(b); err != nil {
			t.Fatalf("fold: %v", err)
		}
		images = append(images, fold.Image())
	}
	return images
}

// recordWAL appends the batches through a real store (no folding, sync every
// record) and returns the raw log bytes plus each record's end offset —
// boundaries[m] is the byte length of a log holding exactly m records.
func recordWAL(t *testing.T, batches []store.Batch) (raw []byte, boundaries []int) {
	t.Helper()
	dir := t.TempDir()
	s, err := Open(dir, Options{SnapshotEvery: -1, SnapshotBytes: -1})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	logPath := s.logPath(0)
	boundaries = []int{0}
	for _, b := range batches {
		if err := s.Append(b); err != nil {
			t.Fatalf("Append: %v", err)
		}
		data, err := os.ReadFile(logPath)
		if err != nil {
			t.Fatalf("ReadFile: %v", err)
		}
		boundaries = append(boundaries, len(data))
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	raw, err = os.ReadFile(logPath)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	return raw, boundaries
}

// completeRecords returns how many whole records fit in the first n bytes.
func completeRecords(boundaries []int, n int) int {
	m := 0
	for m+1 < len(boundaries) && boundaries[m+1] <= n {
		m++
	}
	return m
}

// checkRecovered opens a directory holding the given log bytes, recovers,
// and asserts the result is exactly the m-batch prefix state — then appends
// one more batch and recovers again, proving the truncated store is live.
func checkRecovered(t *testing.T, label string, logBytes []byte, want store.Image) {
	t.Helper()
	dir := t.TempDir()
	logName := fmt.Sprintf("wal-%016x.log", 0)
	if err := os.WriteFile(filepath.Join(dir, logName), logBytes, 0o644); err != nil {
		t.Fatalf("%s: %v", label, err)
	}
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("%s: Open: %v", label, err)
	}
	defer s.Close()
	img, err := s.Recover()
	if err != nil {
		t.Fatalf("%s: Recover: %v", label, err)
	}
	if !sameResidents(img, want) {
		t.Fatalf("%s: recovered %d residents %v, want %d %v",
			label, len(img.Persons), img.Persons, len(want.Persons), want.Persons)
	}
	// The tail must be gone from disk, not just skipped: the file ends at a
	// record boundary and re-opening finds nothing torn.
	fi, err := os.Stat(filepath.Join(dir, logName))
	if err != nil {
		t.Fatalf("%s: %v", label, err)
	}
	if good, _ := scanLog(logBytes); fi.Size() != good {
		t.Fatalf("%s: file is %d bytes after recovery, want clean truncation at %d", label, fi.Size(), good)
	}
	// Liveness: the recovered store accepts appends and folds them in.
	extra := store.Batch{Op: store.OpIngest, Persons: []core.PersonID{777}, Locals: []pattern.Pattern{{6, 6}}}
	if err := s.Append(extra); err != nil {
		t.Fatalf("%s: post-recovery Append: %v", label, err)
	}
	img2, err := s.Recover()
	if err != nil {
		t.Fatalf("%s: post-append Recover: %v", label, err)
	}
	var fold store.Fold
	if err := fold.Load(want); err != nil {
		t.Fatalf("%s: %v", label, err)
	}
	if err := fold.Apply(extra); err != nil {
		t.Fatalf("%s: %v", label, err)
	}
	if !sameResidents(img2, fold.Image()) {
		t.Fatalf("%s: post-append recovery diverged", label)
	}
}

func sameResidents(a, b store.Image) bool {
	if len(a.Persons) != len(b.Persons) {
		return false
	}
	if len(a.Persons) == 0 {
		return true
	}
	return reflect.DeepEqual(a.Persons, b.Persons) && reflect.DeepEqual(a.Locals, b.Locals)
}

// TestCrashPointMatrix replays every byte-prefix truncation of a recorded
// WAL — every possible torn write the OS could leave — and asserts recovery
// always yields the exact state of a whole-batch prefix: no partial batch is
// ever visible, and the torn tail is truncated from disk.
func TestCrashPointMatrix(t *testing.T) {
	batches := matrixBatches()
	images := prefixImages(t, batches)
	raw, boundaries := recordWAL(t, batches)
	if len(raw) == 0 || boundaries[len(boundaries)-1] != len(raw) {
		t.Fatalf("recorded WAL is %d bytes, boundaries %v", len(raw), boundaries)
	}
	for cut := 0; cut <= len(raw); cut++ {
		m := completeRecords(boundaries, cut)
		checkRecovered(t, fmt.Sprintf("cut=%d", cut), raw[:cut], images[m])
	}
}

// TestCrashPointCorruptTail flips every single byte of the recorded WAL in
// turn and asserts recovery still yields a consistent whole-batch prefix:
// the CRC catches the corruption and everything from the flipped record on
// is truncated.
func TestCrashPointCorruptTail(t *testing.T) {
	batches := matrixBatches()
	images := prefixImages(t, batches)
	raw, boundaries := recordWAL(t, batches)
	for flip := 0; flip < len(raw); flip++ {
		corrupted := append([]byte(nil), raw...)
		corrupted[flip] ^= 0xff
		// The flipped byte lives in record j: recovery must surface exactly
		// the first j batches. (A flip in record j's length prefix makes the
		// CRC check read the wrong span; IEEE CRC32 catches it.)
		j := completeRecords(boundaries, flip)
		checkRecovered(t, fmt.Sprintf("flip=%d", flip), corrupted, images[j])
	}
}

// TestCrashPointWithSnapshot runs the truncation matrix on a generation that
// starts from a snapshot: recovery must fold snapshot + log-prefix, and a
// torn tail must never disturb the snapshot floor.
func TestCrashPointWithSnapshot(t *testing.T) {
	base := store.Image{
		Persons: []core.PersonID{2, 5, 8},
		Locals:  []pattern.Pattern{{2, 2}, {1, 1}, {3, 3}},
	}
	batches := matrixBatches()

	// Record a generation-1 store: snapshot the base, then append.
	dir := t.TempDir()
	s, err := Open(dir, Options{SnapshotEvery: -1, SnapshotBytes: -1})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if err := s.Snapshot(base); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	logPath := s.logPath(s.Generation())
	snapPath := s.snapPath(s.Generation())
	boundaries := []int{0}
	for _, b := range batches {
		if err := s.Append(b); err != nil {
			t.Fatalf("Append: %v", err)
		}
		data, err := os.ReadFile(logPath)
		if err != nil {
			t.Fatalf("ReadFile: %v", err)
		}
		boundaries = append(boundaries, len(data))
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	raw, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	snapRaw, err := os.ReadFile(snapPath)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}

	// Fold the expected prefixes on top of the snapshot base.
	var fold store.Fold
	if err := fold.Load(base); err != nil {
		t.Fatalf("fold: %v", err)
	}
	images := []store.Image{fold.Image()}
	for _, b := range batches {
		if err := fold.Apply(b); err != nil {
			t.Fatalf("fold: %v", err)
		}
		images = append(images, fold.Image())
	}

	for cut := 0; cut <= len(raw); cut += 3 { // stride 3: same coverage class, faster
		dir2 := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir2, filepath.Base(snapPath)), snapRaw, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir2, filepath.Base(logPath)), raw[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		s2, err := Open(dir2, Options{})
		if err != nil {
			t.Fatalf("cut=%d: Open: %v", cut, err)
		}
		img, err := s2.Recover()
		if err != nil {
			t.Fatalf("cut=%d: Recover: %v", cut, err)
		}
		m := completeRecords(boundaries, cut)
		if !sameResidents(img, images[m]) {
			t.Fatalf("cut=%d: recovered %v, want prefix %d = %v", cut, img.Persons, m, images[m].Persons)
		}
		if err := s2.Close(); err != nil {
			t.Fatalf("cut=%d: Close: %v", cut, err)
		}
	}
}
