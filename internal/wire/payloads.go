package wire

import (
	"fmt"
	"math"
	"math/bits"
	"sort"

	"dimatch/internal/bloom"
	"dimatch/internal/core"
	"dimatch/internal/index"
	"dimatch/internal/pattern"
)

// ---- WBF query dissemination ----

// writeFilter renders a WBF — params, bit array, weight table, slot lists —
// into w. The layout is shared by KindWBFQuery and KindBatchQuery.
func writeFilter(w *writer, f *core.Filter) {
	p := f.Params()
	w.u64(p.Bits)
	w.uvarint(uint64(p.Hashes))
	w.uvarint(uint64(p.Samples))
	w.uvarint(uint64(p.Epsilon))
	w.u8(uint8(p.Tolerance))
	w.u64(p.Seed)
	w.u8(boolByte(p.PositionSalted))
	w.uvarint(uint64(f.Length()))
	w.uvarint(f.Inserted())

	words := f.Words()
	w.uvarint(uint64(len(words)))
	for _, word := range words {
		w.u64(word)
	}

	weights := f.Weights()
	w.uvarint(uint64(len(weights)))
	for _, e := range weights {
		w.uvarint(uint64(e.Query))
		w.uvarint(uint64(e.Mask))
		w.uvarint(uint64(e.Numerator))
		w.uvarint(uint64(e.Denominator))
	}

	bitIdx, ids := f.Slots()
	w.uvarint(uint64(len(bitIdx)))
	prev := uint64(0)
	for i, idx := range bitIdx {
		w.uvarint(idx - prev) // indexes ascend; delta-encode
		prev = idx
		w.uvarint(uint64(len(ids[i])))
		prevID := uint64(0)
		for _, id := range ids[i] {
			w.uvarint(uint64(id) - prevID) // ids ascend within a slot
			prevID = uint64(id)
		}
	}
}

// readFilter reconstructs a WBF from r, validating through core.FromParts.
func readFilter(r *reader) (*core.Filter, error) {
	var p core.Params
	p.Bits = r.u64()
	p.Hashes = int(r.uvarint())
	p.Samples = int(r.uvarint())
	p.Epsilon = int64(r.uvarint())
	p.Tolerance = core.ToleranceMode(r.u8())
	p.Seed = r.u64()
	p.PositionSalted = r.u8() != 0
	length := int(r.uvarint())
	inserted := r.uvarint()

	nWords := r.count(8)
	// A filter's serialized form carries exactly ceil(Bits/64) words, so the
	// declared bit-array size is bounded by the payload actually present.
	// Checking here — before FromParts — keeps a forged header from driving
	// the bitset allocation inside reconstruction with an arbitrary size.
	if p.Bits == 0 || uint64(nWords) != (p.Bits-1)/64+1 {
		return nil, fmt.Errorf("wire: filter declares %d bits but carries %d words: %w", p.Bits, nWords, ErrTruncated)
	}
	words := make([]uint64, nWords)
	for i := range words {
		words[i] = r.u64()
	}

	nWeights := r.count(4)
	weights := make([]core.WeightEntry, nWeights)
	for i := range weights {
		weights[i] = core.WeightEntry{
			Query:       core.QueryID(r.uvarint()),
			Mask:        pattern.Subset(r.uvarint()),
			Numerator:   int64(r.uvarint()),
			Denominator: int64(r.uvarint()),
		}
	}

	nSlots := r.count(3)
	bitIdx := make([]uint64, nSlots)
	ids := make([][]core.WeightID, nSlots)
	prev := uint64(0)
	for i := 0; i < nSlots; i++ {
		prev += r.uvarint()
		bitIdx[i] = prev
		listLen := r.count(1)
		list := make([]core.WeightID, listLen)
		prevID := uint64(0)
		for j := range list {
			prevID += r.uvarint()
			list[j] = core.WeightID(prevID)
		}
		ids[i] = list
	}
	if r.err != nil {
		return nil, r.err
	}
	return core.FromParts(p, length, words, bitIdx, ids, weights, inserted)
}

// EncodeWBFQuery renders a filter for dissemination to stations — the
// legacy (version ≤ 2) single-exchange form, still used as the per-query
// fallback for stations that never advertised version 3.
func EncodeWBFQuery(f *core.Filter) Message {
	var w writer
	writeFilter(&w, f)
	return Message{Kind: KindWBFQuery, Payload: w.buf}
}

// DecodeWBFQuery reconstructs the filter.
func DecodeWBFQuery(m Message) (*core.Filter, error) {
	if m.Kind != KindWBFQuery {
		return nil, fmt.Errorf("wire: decoding %v as wbf-query", m.Kind)
	}
	r := &reader{buf: m.Payload}
	f, err := readFilter(r)
	if err != nil {
		return nil, err
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return f, nil
}

// ---- batched search round (v3) ----

// BatchQuery packs one whole search round for one station: the IDs of every
// query in the batch and the combined WBF that encodes all of them. One
// exchange replaces the per-query frames of the legacy path, which is where
// the batch pipeline's messages-per-query savings come from.
type BatchQuery struct {
	// Queries are the batch's query IDs, ascending and unique. Every weight
	// entry of Filter must reference one of them.
	Queries []core.QueryID
	// Filter is the combined WBF covering all queries of the batch.
	Filter *core.Filter
}

// EncodeBatchQuery renders the batch round. Query IDs are sorted,
// de-duplicated and delta-encoded. It fails on an empty batch, on more than
// MaxBatchQueries queries (ErrBatchTooLarge), and on a filter whose weight
// table references a query outside the batch (ErrBatchMismatch).
func EncodeBatchQuery(b BatchQuery) (Message, error) {
	if len(b.Queries) == 0 {
		return Message{}, fmt.Errorf("%w: zero queries", ErrBatchMismatch)
	}
	if len(b.Queries) > MaxBatchQueries {
		return Message{}, fmt.Errorf("%w: %d > %d", ErrBatchTooLarge, len(b.Queries), MaxBatchQueries)
	}
	sorted := append([]core.QueryID(nil), b.Queries...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	declared := make(map[core.QueryID]bool, len(sorted))
	for _, q := range sorted {
		declared[q] = true
	}
	for _, e := range b.Filter.Weights() {
		if !declared[e.Query] {
			return Message{}, fmt.Errorf("%w: weight entry references undeclared query %d", ErrBatchMismatch, e.Query)
		}
	}
	var w writer
	w.uvarint(uint64(len(sorted)))
	prev := uint64(0)
	first := true
	for _, q := range sorted {
		if !first && uint64(q) == prev {
			return Message{}, fmt.Errorf("%w: duplicate query id %d", ErrBatchMismatch, q)
		}
		w.uvarint(uint64(q) - prev)
		prev = uint64(q)
		first = false
	}
	writeFilter(&w, b.Filter)
	return Message{Kind: KindBatchQuery, Payload: w.buf}, nil
}

// DecodeBatchQuery parses and validates a batch round: the declared query
// count is bounded by MaxBatchQueries, the filter reconstructs through the
// same validation as a legacy WBF query, and every weight entry must
// reference a declared query. Corrupt payloads fail with typed errors —
// never a panic.
func DecodeBatchQuery(m Message) (BatchQuery, error) {
	if m.Kind != KindBatchQuery {
		return BatchQuery{}, fmt.Errorf("wire: decoding %v as batch-query", m.Kind)
	}
	r := &reader{buf: m.Payload}
	n := r.uvarint()
	if r.err != nil {
		return BatchQuery{}, r.err
	}
	if n > MaxBatchQueries {
		return BatchQuery{}, fmt.Errorf("%w: %d > %d", ErrBatchTooLarge, n, MaxBatchQueries)
	}
	if n == 0 {
		return BatchQuery{}, fmt.Errorf("%w: zero queries", ErrBatchMismatch)
	}
	out := BatchQuery{Queries: make([]core.QueryID, 0, n)}
	declared := make(map[core.QueryID]bool, n)
	prev := uint64(0)
	for i := uint64(0); i < n; i++ {
		d := r.uvarint()
		if r.err != nil {
			return BatchQuery{}, r.err
		}
		if i > 0 && d == 0 {
			return BatchQuery{}, fmt.Errorf("%w: duplicate query id %d", ErrBatchMismatch, prev)
		}
		prev += d
		out.Queries = append(out.Queries, core.QueryID(prev))
		declared[core.QueryID(prev)] = true
	}
	f, err := readFilter(r)
	if err != nil {
		return BatchQuery{}, err
	}
	if err := r.done(); err != nil {
		return BatchQuery{}, err
	}
	for _, e := range f.Weights() {
		if !declared[e.Query] {
			return BatchQuery{}, fmt.Errorf("%w: weight entry references undeclared query %d", ErrBatchMismatch, e.Query)
		}
	}
	out.Filter = f
	return out, nil
}

// BatchReply answers a batch round: one station's (person, weight-pointer)
// reports covering every query of the batch, plus an echo of the batch's
// query count so the center can detect a desynchronized peer.
type BatchReply struct {
	Station uint32
	// Queries echoes the number of queries the station matched against.
	Queries uint32
	Reports []core.Report
}

// EncodeBatchReply renders the batch answer in a single exactly-sized
// allocation.
func EncodeBatchReply(b BatchReply) Message {
	payload := AppendBatchReplyPayload(make([]byte, 0, BatchReplyPayloadSize(b)), b)
	return Message{Kind: KindBatchReply, Payload: payload}
}

// AppendBatchReplyPayload appends the batch answer's payload bytes to dst and
// returns the extended slice. It allocates nothing beyond dst's own growth,
// so a station answering a batch stream can reuse one buffer across rounds.
//
//dimatch:noalloc
func AppendBatchReplyPayload(dst []byte, b BatchReply) []byte {
	w := writer{buf: dst[:len(dst)]}
	w.uvarint(uint64(b.Station))
	w.uvarint(uint64(b.Queries))
	w.uvarint(uint64(len(b.Reports)))
	for _, rep := range b.Reports {
		w.uvarint(uint64(rep.Person))
		w.uvarint(uint64(len(rep.WeightIDs)))
		for _, id := range rep.WeightIDs {
			w.uvarint(uint64(id))
		}
	}
	return w.buf
}

// BatchReplyPayloadSize returns the exact number of bytes
// AppendBatchReplyPayload will append for b.
func BatchReplyPayloadSize(b BatchReply) int {
	n := uvarintLen(uint64(b.Station)) + uvarintLen(uint64(b.Queries)) +
		uvarintLen(uint64(len(b.Reports)))
	for _, rep := range b.Reports {
		n += uvarintLen(uint64(rep.Person)) + uvarintLen(uint64(len(rep.WeightIDs)))
		for _, id := range rep.WeightIDs {
			n += uvarintLen(uint64(id))
		}
	}
	return n
}

// uvarintLen returns the encoded length of v as an unsigned varint.
func uvarintLen(v uint64) int {
	return (bits.Len64(v|1) + 6) / 7
}

// DecodeBatchReply parses the batch answer.
func DecodeBatchReply(m Message) (BatchReply, error) {
	if m.Kind != KindBatchReply {
		return BatchReply{}, fmt.Errorf("wire: decoding %v as batch-reply", m.Kind)
	}
	r := &reader{buf: m.Payload}
	out := BatchReply{
		Station: uint32(r.uvarint()),
		Queries: uint32(r.uvarint()),
	}
	n := r.count(2)
	out.Reports = make([]core.Report, 0, n)
	for i := 0; i < n; i++ {
		rep := core.Report{Person: core.PersonID(r.uvarint())}
		ids := r.count(1)
		rep.WeightIDs = make([]core.WeightID, ids)
		for j := range rep.WeightIDs {
			rep.WeightIDs[j] = core.WeightID(r.uvarint())
		}
		out.Reports = append(out.Reports, rep)
	}
	if err := r.done(); err != nil {
		return BatchReply{}, err
	}
	return out, nil
}

// ---- BF query dissemination ----

// BFQuery bundles the baseline filter with the pipeline parameters stations
// need to process it identically.
type BFQuery struct {
	Filter *bloom.Filter
	Params core.Params
	Length int
}

// EncodeBFQuery renders the baseline dissemination message.
func EncodeBFQuery(q BFQuery) Message {
	p := q.Params
	var w writer
	w.u64(p.Bits)
	w.uvarint(uint64(p.Hashes))
	w.uvarint(uint64(p.Samples))
	w.uvarint(uint64(p.Epsilon))
	w.u8(uint8(p.Tolerance))
	w.u64(p.Seed)
	w.u8(boolByte(p.PositionSalted))
	w.uvarint(uint64(q.Length))
	w.uvarint(q.Filter.N())
	words := q.Filter.Words()
	w.uvarint(uint64(len(words)))
	for _, word := range words {
		w.u64(word)
	}
	return Message{Kind: KindBFQuery, Payload: w.buf}
}

// DecodeBFQuery reconstructs the baseline query.
func DecodeBFQuery(m Message) (BFQuery, error) {
	if m.Kind != KindBFQuery {
		return BFQuery{}, fmt.Errorf("wire: decoding %v as bf-query", m.Kind)
	}
	r := &reader{buf: m.Payload}
	var p core.Params
	p.Bits = r.u64()
	p.Hashes = int(r.uvarint())
	p.Samples = int(r.uvarint())
	p.Epsilon = int64(r.uvarint())
	p.Tolerance = core.ToleranceMode(r.u8())
	p.Seed = r.u64()
	p.PositionSalted = r.u8() != 0
	length := int(r.uvarint())
	n := r.uvarint()
	nWords := r.count(8)
	words := make([]uint64, nWords)
	for i := range words {
		words[i] = r.u64()
	}
	if err := r.done(); err != nil {
		return BFQuery{}, err
	}
	f, err := bloom.FromParts(words, p.Bits, p.Hashes, p.Seed, n)
	if err != nil {
		return BFQuery{}, err
	}
	return BFQuery{Filter: f, Params: p, Length: length}, nil
}

// ---- station reports ----

// Reports is one station's batch of WBF match reports.
type Reports struct {
	Station uint32
	Reports []core.Report
}

// EncodeReports renders a station's (person, weights) matches.
func EncodeReports(rs Reports) Message {
	var w writer
	w.uvarint(uint64(rs.Station))
	w.uvarint(uint64(len(rs.Reports)))
	for _, rep := range rs.Reports {
		w.uvarint(uint64(rep.Person))
		w.uvarint(uint64(len(rep.WeightIDs)))
		for _, id := range rep.WeightIDs {
			w.uvarint(uint64(id))
		}
	}
	return Message{Kind: KindReports, Payload: w.buf}
}

// DecodeReports parses a report batch.
func DecodeReports(m Message) (Reports, error) {
	if m.Kind != KindReports {
		return Reports{}, fmt.Errorf("wire: decoding %v as reports", m.Kind)
	}
	r := &reader{buf: m.Payload}
	out := Reports{Station: uint32(r.uvarint())}
	n := r.count(2)
	out.Reports = make([]core.Report, 0, n)
	for i := 0; i < n; i++ {
		rep := core.Report{Person: core.PersonID(r.uvarint())}
		ids := r.count(1)
		rep.WeightIDs = make([]core.WeightID, ids)
		for j := range rep.WeightIDs {
			rep.WeightIDs[j] = core.WeightID(r.uvarint())
		}
		out.Reports = append(out.Reports, rep)
	}
	if err := r.done(); err != nil {
		return Reports{}, err
	}
	return out, nil
}

// ---- BF matches ----

// BFMatches is the baseline's report: bare person IDs, no weights.
type BFMatches struct {
	Station uint32
	Persons []core.PersonID
}

// EncodeBFMatches renders the baseline match list.
func EncodeBFMatches(b BFMatches) Message {
	var w writer
	w.uvarint(uint64(b.Station))
	w.uvarint(uint64(len(b.Persons)))
	for _, p := range b.Persons {
		w.uvarint(uint64(p))
	}
	return Message{Kind: KindBFMatches, Payload: w.buf}
}

// DecodeBFMatches parses the baseline match list.
func DecodeBFMatches(m Message) (BFMatches, error) {
	if m.Kind != KindBFMatches {
		return BFMatches{}, fmt.Errorf("wire: decoding %v as bf-matches", m.Kind)
	}
	r := &reader{buf: m.Payload}
	out := BFMatches{Station: uint32(r.uvarint())}
	n := r.count(1)
	out.Persons = make([]core.PersonID, n)
	for i := range out.Persons {
		out.Persons[i] = core.PersonID(r.uvarint())
	}
	if err := r.done(); err != nil {
		return BFMatches{}, err
	}
	return out, nil
}

// ---- naive data shipment ----

// NaiveData is a station's full local dataset, shipped for centralized
// matching (the paper's Approach 1).
type NaiveData struct {
	Station uint32
	Persons []core.PersonID
	Locals  []pattern.Pattern
}

// EncodeNaiveData renders the shipment.
func EncodeNaiveData(d NaiveData) (Message, error) {
	if len(d.Persons) != len(d.Locals) {
		return Message{}, fmt.Errorf("wire: %d persons but %d locals", len(d.Persons), len(d.Locals))
	}
	var w writer
	w.uvarint(uint64(d.Station))
	w.uvarint(uint64(len(d.Persons)))
	for i, p := range d.Persons {
		w.uvarint(uint64(p))
		w.uvarint(uint64(len(d.Locals[i])))
		for _, v := range d.Locals[i] {
			w.uvarint(zigzag(v))
		}
	}
	return Message{Kind: KindNaiveData, Payload: w.buf}, nil
}

// DecodeNaiveData parses the shipment.
func DecodeNaiveData(m Message) (NaiveData, error) {
	if m.Kind != KindNaiveData {
		return NaiveData{}, fmt.Errorf("wire: decoding %v as naive-data", m.Kind)
	}
	r := &reader{buf: m.Payload}
	out := NaiveData{Station: uint32(r.uvarint())}
	n := r.count(2)
	out.Persons = make([]core.PersonID, 0, n)
	out.Locals = make([]pattern.Pattern, 0, n)
	for i := 0; i < n; i++ {
		out.Persons = append(out.Persons, core.PersonID(r.uvarint()))
		l := r.count(1)
		pat := make(pattern.Pattern, l)
		for j := range pat {
			pat[j] = unzigzag(r.uvarint())
		}
		out.Locals = append(out.Locals, pat)
	}
	if err := r.done(); err != nil {
		return NaiveData{}, err
	}
	return out, nil
}

// ---- verification fetch ----

// Fetch asks a station for the local patterns of specific persons, so the
// center can verify its top candidates exactly ("... sent to the data
// center for aggregation and verification", Section I).
type Fetch struct {
	Persons []core.PersonID
}

// EncodeFetch renders the request. Person IDs are sent sorted and
// delta-encoded.
func EncodeFetch(f Fetch) Message {
	sorted := append([]core.PersonID(nil), f.Persons...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var w writer
	w.uvarint(uint64(len(sorted)))
	prev := uint64(0)
	for _, p := range sorted {
		w.uvarint(uint64(p) - prev)
		prev = uint64(p)
	}
	return Message{Kind: KindFetch, Payload: w.buf}
}

// DecodeFetch parses the request.
func DecodeFetch(m Message) (Fetch, error) {
	if m.Kind != KindFetch {
		return Fetch{}, fmt.Errorf("wire: decoding %v as fetch", m.Kind)
	}
	r := &reader{buf: m.Payload}
	n := r.count(1)
	out := Fetch{Persons: make([]core.PersonID, n)}
	prev := uint64(0)
	for i := range out.Persons {
		prev += r.uvarint()
		out.Persons[i] = core.PersonID(prev)
	}
	if err := r.done(); err != nil {
		return Fetch{}, err
	}
	return out, nil
}

// ---- replication: dump (v4) ----

// Dump asks a station for the raw local patterns of specific persons, or —
// with an empty person filter — for its entire resident store. It is the
// pull half of re-replication: after a membership change the coordinator
// dumps the placed persons from surviving replicas and pushes the copies
// onto their new rendezvous targets with KindIngest. Unlike KindFetch (which
// feeds the verification phase and answers with KindNaiveData), a dump can
// cover the whole store and its reply is a distinct kind, so the two
// workloads stay separately meterable and separately versioned.
type Dump struct {
	// Persons restricts the dump; empty means every resident. IDs are sent
	// sorted and delta-encoded.
	Persons []core.PersonID
}

// EncodeDump renders the pull request.
func EncodeDump(d Dump) Message {
	sorted := append([]core.PersonID(nil), d.Persons...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var w writer
	w.uvarint(uint64(len(sorted)))
	prev := uint64(0)
	for _, p := range sorted {
		w.uvarint(uint64(p) - prev)
		prev = uint64(p)
	}
	return Message{Kind: KindDump, Payload: w.buf}
}

// DecodeDump parses the pull request.
func DecodeDump(m Message) (Dump, error) {
	if m.Kind != KindDump {
		return Dump{}, fmt.Errorf("wire: decoding %v as dump", m.Kind)
	}
	r := &reader{buf: m.Payload}
	n := r.count(1)
	out := Dump{}
	if n > 0 {
		out.Persons = make([]core.PersonID, n)
	}
	prev := uint64(0)
	for i := range out.Persons {
		prev += r.uvarint()
		out.Persons[i] = core.PersonID(prev)
	}
	if err := r.done(); err != nil {
		return Dump{}, err
	}
	return out, nil
}

// DumpReply is a station's answer to KindDump: the requested (person, local
// pattern) tuples it actually holds, person-ID ascending. Persons the
// station does not hold are simply absent.
type DumpReply struct {
	Station uint32
	Persons []core.PersonID
	Locals  []pattern.Pattern
}

// EncodeDumpReply renders the dump answer.
func EncodeDumpReply(d DumpReply) (Message, error) {
	if len(d.Persons) != len(d.Locals) {
		return Message{}, fmt.Errorf("wire: %d persons but %d locals", len(d.Persons), len(d.Locals))
	}
	var w writer
	w.uvarint(uint64(d.Station))
	w.uvarint(uint64(len(d.Persons)))
	for i, p := range d.Persons {
		w.uvarint(uint64(p))
		w.uvarint(uint64(len(d.Locals[i])))
		for _, v := range d.Locals[i] {
			w.uvarint(zigzag(v))
		}
	}
	return Message{Kind: KindDumpReply, Payload: w.buf}, nil
}

// DecodeDumpReply parses the dump answer.
func DecodeDumpReply(m Message) (DumpReply, error) {
	if m.Kind != KindDumpReply {
		return DumpReply{}, fmt.Errorf("wire: decoding %v as dump-reply", m.Kind)
	}
	r := &reader{buf: m.Payload}
	out := DumpReply{Station: uint32(r.uvarint())}
	n := r.count(2)
	out.Persons = make([]core.PersonID, 0, n)
	out.Locals = make([]pattern.Pattern, 0, n)
	for i := 0; i < n; i++ {
		out.Persons = append(out.Persons, core.PersonID(r.uvarint()))
		l := r.count(1)
		pat := make(pattern.Pattern, l)
		for j := range pat {
			pat[j] = unzigzag(r.uvarint())
		}
		out.Locals = append(out.Locals, pat)
	}
	if err := r.done(); err != nil {
		return DumpReply{}, err
	}
	return out, nil
}

// ---- routing: summary (v5) ----

// SummaryReply carries one station's routing summary: the Bloom digest of
// every resident pattern's accumulated cells, which the coordinator caches
// and probes to decide whether a search batch needs to visit the station at
// all. The filter parameters travel with the words so the coordinator
// reconstructs the exact key space the station inserted into; Residents is
// diagnostic (how many patterns the digest covers).
type SummaryReply struct {
	Station   uint32
	Length    uint32
	Residents uint64
	Seed      uint64
	Bits      uint64
	Hashes    uint32
	Inserted  uint64
	Words     []uint64
	// ParamEpoch is the adaptive parameter epoch the digest was built
	// under, zero for the static table. When nonzero, Hashes is zero on the
	// wire and a per-group geometry table follows the words (v7 digests).
	ParamEpoch uint64
}

// EncodeSummaryPayload renders a routing summary's payload bytes without the
// message envelope. The station WAL (internal/store/wal) persists the
// memoized digest in exactly this form, so a recovered digest is
// byte-comparable with what the station last served. A static digest
// encodes exactly as it has since v5; a digest built under an adaptive plan
// writes 0 in the hash-count field (no static filter has zero hashes) and
// appends its parameter epoch plus the per-group geometry table after the
// words, so the payload stays self-contained.
func EncodeSummaryPayload(s *index.Summary, station uint32) []byte {
	var w writer
	w.uvarint(uint64(station))
	w.uvarint(uint64(s.Length()))
	w.uvarint(s.Residents())
	w.u64(s.Seed())
	w.u64(s.Bits())
	w.uvarint(uint64(s.Hashes()))
	w.uvarint(s.Inserted())
	words := s.Words()
	w.uvarint(uint64(len(words)))
	for _, word := range words {
		w.u64(word)
	}
	if s.Adaptive() {
		w.uvarint(s.AdaptiveEpoch())
		for _, g := range s.Geometry() {
			w.uvarint(g.Bits)
			w.u8(g.Hashes)
			w.uvarint(uint64(g.Quantum))
		}
	}
	return w.buf
}

// EncodeSummaryReply renders a station's routing summary from its parts.
func EncodeSummaryReply(s *index.Summary, station uint32) Message {
	return Message{Kind: KindSummaryReply, Payload: EncodeSummaryPayload(s, station)}
}

// DecodeSummaryPayload parses a routing summary's payload bytes,
// reconstructing the probeable filter through index.FromParts (which
// validates the word count against the declared bit length) or, for an
// adaptive digest (hash-count field 0), through index.AdaptiveFromParts
// after reading the trailing geometry table.
func DecodeSummaryPayload(payload []byte) (SummaryReply, *index.Summary, error) {
	r := &reader{buf: payload}
	out := SummaryReply{
		Station:   uint32(r.uvarint()),
		Length:    uint32(r.uvarint()),
		Residents: r.uvarint(),
		Seed:      r.u64(),
		Bits:      r.u64(),
		Hashes:    uint32(r.uvarint()),
		Inserted:  r.uvarint(),
	}
	nWords := r.count(8)
	out.Words = make([]uint64, nWords)
	for i := range out.Words {
		out.Words[i] = r.u64()
	}
	if out.Hashes != 0 {
		if err := r.done(); err != nil {
			return SummaryReply{}, nil, err
		}
		s, err := index.FromParts(int(out.Length), out.Seed, out.Words, out.Bits, int(out.Hashes), out.Inserted, out.Residents)
		if err != nil {
			return SummaryReply{}, nil, err
		}
		return out, s, nil
	}
	// Adaptive digest: parameter epoch plus one geometry entry per position
	// group. The group count is pinned to Length (no separate count field
	// to forge) and the summed group bits must match the declared total.
	out.ParamEpoch = r.uvarint()
	if out.Length == 0 || int64(out.Length) > index.MaxPlanGroups {
		return SummaryReply{}, nil, fmt.Errorf("wire: adaptive summary length %d outside [1, %d]", out.Length, index.MaxPlanGroups)
	}
	geoms := make([]index.GroupGeom, out.Length)
	var total uint64
	for i := range geoms {
		geoms[i] = index.GroupGeom{
			Bits:    r.uvarint(),
			Hashes:  r.u8(),
			Quantum: int64(r.uvarint()),
		}
		total += geoms[i].Bits
	}
	if err := r.done(); err != nil {
		return SummaryReply{}, nil, err
	}
	if total != out.Bits {
		return SummaryReply{}, nil, fmt.Errorf("wire: adaptive summary group bits %d disagree with declared total %d", total, out.Bits)
	}
	s, err := index.AdaptiveFromParts(int(out.Length), out.Seed, out.ParamEpoch, geoms, out.Words, out.Inserted, out.Residents)
	if err != nil {
		return SummaryReply{}, nil, err
	}
	return out, s, nil
}

// DecodeSummaryReply parses a routing summary message.
func DecodeSummaryReply(m Message) (SummaryReply, *index.Summary, error) {
	if m.Kind != KindSummaryReply {
		return SummaryReply{}, nil, fmt.Errorf("wire: decoding %v as summary-reply", m.Kind)
	}
	return DecodeSummaryPayload(m.Payload)
}

// ---- hierarchy: route delegation (v6) ----

// RouteQuery delegates one whole search round to a region coordinator: the
// raw queries plus every knob the region needs to resolve the exact same
// filter parameters the root would (core.SizedParams is deterministic, so
// shipping the knobs — not the filter — keeps the frame small and the
// regions' results byte-identical to a direct search). The region runs the
// full existing WBF search path over its own stations and answers with raw
// per-person weight sums (KindRouteReply); ranking, thresholding and
// verification stay at the root, which is what makes the delegated plan's
// results provably equal to a flat fan-out.
type RouteQuery struct {
	// Queries is the search batch, ascending and unique by ID.
	Queries []core.Query
	// Params are the root's (possibly zero-valued) filter parameters before
	// sizing; Bits == 0 means the region auto-sizes with TargetFP exactly
	// like the root does.
	Params core.Params
	// TargetFP is the false-positive sizing target for auto-sized filters.
	TargetFP float64
	// BatchSize is the root's batching bound, forwarded so the region's
	// station exchanges match a direct search's.
	BatchSize int
	// Routing is the region's fan-out mode, as a RoutingMode ordinal. Any
	// conservative mode yields identical results; forwarding the root's
	// choice keeps cost accounting comparable.
	Routing uint8
}

// EncodeRouteQuery renders the delegated round. Queries are validated for
// count only; the region re-validates them through its own search path.
func EncodeRouteQuery(q RouteQuery) (Message, error) {
	if len(q.Queries) == 0 {
		return Message{}, fmt.Errorf("%w: zero queries", ErrBatchMismatch)
	}
	if len(q.Queries) > MaxBatchQueries {
		return Message{}, fmt.Errorf("%w: %d > %d", ErrBatchTooLarge, len(q.Queries), MaxBatchQueries)
	}
	var w writer
	w.uvarint(uint64(len(q.Queries)))
	for _, query := range q.Queries {
		w.uvarint(uint64(query.ID))
		w.uvarint(uint64(len(query.Locals)))
		for _, local := range query.Locals {
			w.uvarint(uint64(len(local)))
			for _, v := range local {
				w.uvarint(zigzag(v))
			}
		}
	}
	p := q.Params
	w.u64(p.Bits)
	w.uvarint(uint64(p.Hashes))
	w.uvarint(uint64(p.Samples))
	w.uvarint(uint64(p.Epsilon))
	w.u8(uint8(p.Tolerance))
	w.u64(p.Seed)
	w.u8(boolByte(p.PositionSalted))
	w.u64(math.Float64bits(q.TargetFP))
	w.uvarint(zigzag(int64(q.BatchSize)))
	w.u8(q.Routing)
	return Message{Kind: KindRouteQuery, Payload: w.buf}, nil
}

// DecodeRouteQuery parses the delegated round.
func DecodeRouteQuery(m Message) (RouteQuery, error) {
	if m.Kind != KindRouteQuery {
		return RouteQuery{}, fmt.Errorf("wire: decoding %v as route-query", m.Kind)
	}
	r := &reader{buf: m.Payload}
	n := r.count(2)
	if uint64(n) > MaxBatchQueries {
		return RouteQuery{}, fmt.Errorf("%w: %d > %d", ErrBatchTooLarge, n, MaxBatchQueries)
	}
	out := RouteQuery{Queries: make([]core.Query, 0, n)}
	for i := 0; i < n; i++ {
		q := core.Query{ID: core.QueryID(r.uvarint())}
		locals := r.count(1)
		q.Locals = make([]pattern.Pattern, 0, locals)
		for j := 0; j < locals; j++ {
			l := r.count(1)
			pat := make(pattern.Pattern, l)
			for g := range pat {
				pat[g] = unzigzag(r.uvarint())
			}
			q.Locals = append(q.Locals, pat)
		}
		out.Queries = append(out.Queries, q)
	}
	out.Params.Bits = r.u64()
	out.Params.Hashes = int(r.uvarint())
	out.Params.Samples = int(r.uvarint())
	out.Params.Epsilon = int64(r.uvarint())
	out.Params.Tolerance = core.ToleranceMode(r.u8())
	out.Params.Seed = r.u64()
	out.Params.PositionSalted = r.u8() != 0
	out.TargetFP = math.Float64frombits(r.u64())
	out.BatchSize = int(unzigzag(r.uvarint()))
	out.Routing = r.u8()
	if err := r.done(); err != nil {
		return RouteQuery{}, err
	}
	return out, nil
}

// RouteResult is one raw per-(query, person) partial from a region: the
// summed weight numerator over the region's stations, before the root's
// Algorithm 3 deletion and ranking.
type RouteResult struct {
	Query       core.QueryID
	Person      core.PersonID
	Numerator   int64
	Denominator int64
	Stations    uint32
}

// RouteReply answers a route query: the region's raw partial results plus
// the routing counters the root folds into its CostReport.
type RouteReply struct {
	// Region is the answering region coordinator's station ID.
	Region uint32
	// Results are the raw partials, one per (query, person) the region's
	// stations reported.
	Results []RouteResult
	// Probes counts the digest-probe (Admits) evaluations the region's own
	// planning performed.
	Probes uint64
	// Pruned / Visited / Failed count the region's stations by fan-out fate.
	Pruned  uint32
	Visited uint32
	Failed  uint32
	// Hops is the tier depth below and including this region (1 for a region
	// of plain stations).
	Hops uint32
}

// EncodeRouteReply renders the region's answer.
func EncodeRouteReply(rr RouteReply) Message {
	var w writer
	w.uvarint(uint64(rr.Region))
	w.uvarint(rr.Probes)
	w.uvarint(uint64(rr.Pruned))
	w.uvarint(uint64(rr.Visited))
	w.uvarint(uint64(rr.Failed))
	w.uvarint(uint64(rr.Hops))
	w.uvarint(uint64(len(rr.Results)))
	for _, res := range rr.Results {
		w.uvarint(uint64(res.Query))
		w.uvarint(uint64(res.Person))
		w.uvarint(zigzag(res.Numerator))
		w.uvarint(zigzag(res.Denominator))
		w.uvarint(uint64(res.Stations))
	}
	return Message{Kind: KindRouteReply, Payload: w.buf}
}

// DecodeRouteReply parses the region's answer.
func DecodeRouteReply(m Message) (RouteReply, error) {
	if m.Kind != KindRouteReply {
		return RouteReply{}, fmt.Errorf("wire: decoding %v as route-reply", m.Kind)
	}
	r := &reader{buf: m.Payload}
	out := RouteReply{
		Region:  uint32(r.uvarint()),
		Probes:  r.uvarint(),
		Pruned:  uint32(r.uvarint()),
		Visited: uint32(r.uvarint()),
		Failed:  uint32(r.uvarint()),
		Hops:    uint32(r.uvarint()),
	}
	n := r.count(5)
	out.Results = make([]RouteResult, 0, n)
	for i := 0; i < n; i++ {
		out.Results = append(out.Results, RouteResult{
			Query:       core.QueryID(r.uvarint()),
			Person:      core.PersonID(r.uvarint()),
			Numerator:   unzigzag(r.uvarint()),
			Denominator: unzigzag(r.uvarint()),
			Stations:    uint32(r.uvarint()),
		})
	}
	if err := r.done(); err != nil {
		return RouteReply{}, err
	}
	return out, nil
}

// ---- lifecycle: ingest / evict / stats / ack ----

// Ingest adds (or replaces) resident patterns at one station — the center
// forwarding freshly observed call data. It travels over the target
// station's own link, so no station field is needed.
type Ingest struct {
	Persons []core.PersonID
	Locals  []pattern.Pattern
}

// EncodeIngestPayload renders an ingest batch's payload bytes without the
// message envelope. The station WAL (internal/store/wal) persists applied
// batches in exactly this form, so persistence and the wire share one codec.
func EncodeIngestPayload(in Ingest) ([]byte, error) {
	if len(in.Persons) != len(in.Locals) {
		return nil, fmt.Errorf("wire: %d persons but %d locals", len(in.Persons), len(in.Locals))
	}
	var w writer
	w.uvarint(uint64(len(in.Persons)))
	for i, p := range in.Persons {
		w.uvarint(uint64(p))
		w.uvarint(uint64(len(in.Locals[i])))
		for _, v := range in.Locals[i] {
			w.uvarint(zigzag(v))
		}
	}
	return w.buf, nil
}

// EncodeIngest renders the ingest request.
func EncodeIngest(in Ingest) (Message, error) {
	payload, err := EncodeIngestPayload(in)
	if err != nil {
		return Message{}, err
	}
	return Message{Kind: KindIngest, Payload: payload}, nil
}

// DecodeIngestPayload parses an ingest batch's payload bytes.
func DecodeIngestPayload(payload []byte) (Ingest, error) {
	r := &reader{buf: payload}
	n := r.count(2)
	out := Ingest{
		Persons: make([]core.PersonID, 0, n),
		Locals:  make([]pattern.Pattern, 0, n),
	}
	// All pattern values land in one arena, sliced up only once it stops
	// growing: a per-person allocation here dominates bulk replays (snapshot
	// chunks, WAL recovery, grouped Rebalance copies). The capped re-slices
	// keep an append on one pattern from bleeding into its neighbor; resident
	// patterns are replaced wholesale, never grown, so sharing a backing
	// array is safe.
	arena := make([]int64, 0, len(payload))
	offs := make([]int, 0, n+1)
	for i := 0; i < n; i++ {
		out.Persons = append(out.Persons, core.PersonID(r.uvarint()))
		l := r.count(1)
		offs = append(offs, len(arena))
		for j := 0; j < l; j++ {
			arena = append(arena, unzigzag(r.uvarint()))
		}
	}
	offs = append(offs, len(arena))
	if err := r.done(); err != nil {
		return Ingest{}, err
	}
	for i := 0; i < n; i++ {
		out.Locals = append(out.Locals, pattern.Pattern(arena[offs[i]:offs[i+1]:offs[i+1]]))
	}
	return out, nil
}

// DecodeIngest parses the ingest request.
func DecodeIngest(m Message) (Ingest, error) {
	if m.Kind != KindIngest {
		return Ingest{}, fmt.Errorf("wire: decoding %v as ingest", m.Kind)
	}
	return DecodeIngestPayload(m.Payload)
}

// Evict removes residents from one station. Person IDs are sent sorted and
// delta-encoded, like Fetch.
type Evict struct {
	Persons []core.PersonID
}

// EncodeEvictPayload renders an evict batch's payload bytes without the
// message envelope (sorted, delta-encoded) — shared with the station WAL.
func EncodeEvictPayload(e Evict) []byte {
	sorted := append([]core.PersonID(nil), e.Persons...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var w writer
	w.uvarint(uint64(len(sorted)))
	prev := uint64(0)
	for _, p := range sorted {
		w.uvarint(uint64(p) - prev)
		prev = uint64(p)
	}
	return w.buf
}

// EncodeEvict renders the evict request.
func EncodeEvict(e Evict) Message {
	return Message{Kind: KindEvict, Payload: EncodeEvictPayload(e)}
}

// DecodeEvictPayload parses an evict batch's payload bytes.
func DecodeEvictPayload(payload []byte) (Evict, error) {
	r := &reader{buf: payload}
	n := r.count(1)
	out := Evict{Persons: make([]core.PersonID, n)}
	prev := uint64(0)
	for i := range out.Persons {
		prev += r.uvarint()
		out.Persons[i] = core.PersonID(prev)
	}
	if err := r.done(); err != nil {
		return Evict{}, err
	}
	return out, nil
}

// DecodeEvict parses the evict request.
func DecodeEvict(m Message) (Evict, error) {
	if m.Kind != KindEvict {
		return Evict{}, fmt.Errorf("wire: decoding %v as evict", m.Kind)
	}
	return DecodeEvictPayload(m.Payload)
}

// StatsReply is one station's answer to KindStats: how many residents it
// holds, the raw bytes they occupy, and the pattern length it serves (0 when
// empty) — which doubles as a handshake check when a link joins a cluster.
// MaxVersion advertises the highest wire version the station speaks; the
// center's per-epoch stats exchange is how it discovers which stations can
// receive version-3 batch frames.
type StatsReply struct {
	Station      uint32
	Residents    uint64
	StorageBytes uint64
	Length       uint32
	// MaxVersion is the peer's highest supported wire version. The field was
	// added with version 3; a reply without it decodes as Version2, which is
	// exactly what its absence proves about the sender. The flip side: a
	// pre-batch decoder rejects the byte as trailing garbage, so data
	// centers must upgrade before stations.
	MaxVersion uint8
	// Flags carries capability bits (FlagRouteDelegate). The byte was added
	// with version 6 and is encoded only when nonzero, so a plain station's
	// reply stays byte-identical to its version-5 form; a reply without it
	// decodes as Flags == 0 — no capabilities, which is exactly what its
	// absence proves.
	Flags uint8
}

// FlagRouteDelegate marks a peer that answers KindRouteQuery — a region
// coordinator fronting a subtree of stations rather than a plain station.
// Version alone cannot distinguish the two once both speak v6, and sending
// a route query to a plain station would poison its serve loop, so the root
// only delegates to peers that set this bit.
const FlagRouteDelegate = uint8(1)

// EncodeStatsReply renders the stats answer, advertising LatestVersion when
// MaxVersion is unset. The Flags byte is written only when nonzero, keeping
// a plain station's reply byte-identical to its pre-v6 form.
func EncodeStatsReply(s StatsReply) Message {
	if s.MaxVersion == 0 {
		s.MaxVersion = LatestVersion
	}
	var w writer
	w.uvarint(uint64(s.Station))
	w.uvarint(s.Residents)
	w.uvarint(s.StorageBytes)
	w.uvarint(uint64(s.Length))
	w.u8(s.MaxVersion)
	if s.Flags != 0 {
		w.u8(s.Flags)
	}
	return Message{Kind: KindStatsReply, Payload: w.buf}
}

// DecodeStatsReply parses the stats answer. The MaxVersion byte is optional
// on the wire: pre-batch peers end the payload after Length, and their reply
// reads back with MaxVersion == Version2. The Flags byte is optional after
// that: a reply without it reads back with Flags == 0.
func DecodeStatsReply(m Message) (StatsReply, error) {
	if m.Kind != KindStatsReply {
		return StatsReply{}, fmt.Errorf("wire: decoding %v as stats-reply", m.Kind)
	}
	r := &reader{buf: m.Payload}
	out := StatsReply{
		Station:      uint32(r.uvarint()),
		Residents:    r.uvarint(),
		StorageBytes: r.uvarint(),
		Length:       uint32(r.uvarint()),
		MaxVersion:   Version2,
	}
	if r.err == nil && r.off < len(r.buf) {
		out.MaxVersion = r.u8()
	}
	if r.err == nil && r.off < len(r.buf) {
		out.Flags = r.u8()
	}
	if err := r.done(); err != nil {
		return StatsReply{}, err
	}
	return out, nil
}

// Ack acknowledges an applied mutation: Applied counts the residents the
// station actually inserted, replaced or removed.
type Ack struct {
	Station uint32
	Applied uint64
}

// EncodeAck renders the acknowledgment.
func EncodeAck(a Ack) Message {
	var w writer
	w.uvarint(uint64(a.Station))
	w.uvarint(a.Applied)
	return Message{Kind: KindAck, Payload: w.buf}
}

// DecodeAck parses the acknowledgment.
func DecodeAck(m Message) (Ack, error) {
	if m.Kind != KindAck {
		return Ack{}, fmt.Errorf("wire: decoding %v as ack", m.Kind)
	}
	r := &reader{buf: m.Payload}
	out := Ack{Station: uint32(r.uvarint()), Applied: r.uvarint()}
	if err := r.done(); err != nil {
		return Ack{}, err
	}
	return out, nil
}

// ---- trivial messages ----

// StatsMessage asks a station for its resident count and storage footprint.
func StatsMessage() Message { return Message{Kind: KindStats} }

// SummaryMessage asks a station for its routing summary (v5).
func SummaryMessage() Message { return Message{Kind: KindSummary} }

// ShipAllMessage asks a station to ship its complete local data.
func ShipAllMessage() Message { return Message{Kind: KindShipAll} }

// ShutdownMessage tells a station loop to exit.
func ShutdownMessage() Message { return Message{Kind: KindShutdown} }

func boolByte(b bool) uint8 {
	if b {
		return 1
	}
	return 0
}

// ---- adaptive parameters (v7) ----

// ParamUpdate ships a traffic-adaptive parameter plan to a station (wire v7).
// A nil Plan orders the station back onto the static table; a non-nil Plan
// carries the per-group weights, hash counts and quanta the station resolves
// against its own memory budget. Epoch is the parameter epoch the update
// installs — it must match Plan.Epoch when a plan is present, and stations
// ignore updates whose epoch does not advance theirs.
type ParamUpdate struct {
	Epoch uint64
	Plan  *index.Plan
}

// EncodeParamUpdate renders a parameter rollout frame. It rejects plans that
// fail validation or whose epoch disagrees with the update's, so a malformed
// solver output can never reach the wire.
func EncodeParamUpdate(u ParamUpdate) (Message, error) {
	if u.Plan != nil {
		if err := u.Plan.Validate(); err != nil {
			return Message{}, fmt.Errorf("wire: param-update plan: %w", err)
		}
		if u.Plan.Epoch != u.Epoch {
			return Message{}, fmt.Errorf("wire: param-update epoch %d disagrees with plan epoch %d",
				u.Epoch, u.Plan.Epoch)
		}
	}
	var w writer
	w.u64(u.Epoch)
	w.u8(boolByte(u.Plan != nil))
	if u.Plan != nil {
		w.u64(u.Plan.Seed)
		w.uvarint(uint64(u.Plan.Length))
		for _, g := range u.Plan.Groups {
			w.uvarint(uint64(g.Weight))
			w.u8(g.Hashes)
			w.uvarint(uint64(g.Quantum))
		}
	}
	return Message{Kind: KindParamUpdate, Payload: w.buf}, nil
}

// DecodeParamUpdate parses a parameter rollout frame, re-validating the plan
// so a corrupted or hostile frame cannot install unsound parameters.
func DecodeParamUpdate(m Message) (ParamUpdate, error) {
	if m.Kind != KindParamUpdate {
		return ParamUpdate{}, fmt.Errorf("wire: decoding %v as param-update", m.Kind)
	}
	r := &reader{buf: m.Payload}
	out := ParamUpdate{Epoch: r.u64()}
	has := r.u8()
	if has > 1 {
		return ParamUpdate{}, fmt.Errorf("wire: param-update plan marker %d is not a boolean", has)
	}
	if has == 0 {
		if err := r.done(); err != nil {
			return ParamUpdate{}, err
		}
		return out, nil
	}
	seed := r.u64()
	length := r.count(3)
	if length > index.MaxPlanGroups {
		return ParamUpdate{}, fmt.Errorf("wire: param-update declares %d groups (max %d)",
			length, index.MaxPlanGroups)
	}
	groups := make([]index.PlanGroup, length)
	for i := range groups {
		groups[i] = index.PlanGroup{
			Weight:  uint32(r.uvarint()),
			Hashes:  r.u8(),
			Quantum: int64(r.uvarint()),
		}
	}
	if err := r.done(); err != nil {
		return ParamUpdate{}, err
	}
	plan := &index.Plan{Epoch: out.Epoch, Seed: seed, Length: length, Groups: groups}
	if err := plan.Validate(); err != nil {
		return ParamUpdate{}, fmt.Errorf("wire: param-update plan: %w", err)
	}
	out.Plan = plan
	return out, nil
}

// ParamAck is a station's answer to a ParamUpdate: which epoch it now runs
// and whether the plan was applied (false means the station fell back to the
// static table — the coordinator must not assume adaptive pruning there).
type ParamAck struct {
	Station uint32
	Epoch   uint64
	Applied bool
}

// EncodeParamAck renders a parameter acknowledgement.
func EncodeParamAck(a ParamAck) Message {
	var w writer
	w.uvarint(uint64(a.Station))
	w.u64(a.Epoch)
	w.u8(boolByte(a.Applied))
	return Message{Kind: KindParamAck, Payload: w.buf}
}

// DecodeParamAck parses a parameter acknowledgement.
func DecodeParamAck(m Message) (ParamAck, error) {
	if m.Kind != KindParamAck {
		return ParamAck{}, fmt.Errorf("wire: decoding %v as param-ack", m.Kind)
	}
	r := &reader{buf: m.Payload}
	out := ParamAck{
		Station: uint32(r.uvarint()),
		Epoch:   r.u64(),
	}
	applied := r.u8()
	if applied > 1 {
		return ParamAck{}, fmt.Errorf("wire: param-ack applied marker %d is not a boolean", applied)
	}
	out.Applied = applied == 1
	if err := r.done(); err != nil {
		return ParamAck{}, err
	}
	return out, nil
}

// zigzag maps signed to unsigned so small-magnitude values stay short.
func zigzag(v int64) uint64 { return uint64((v << 1) ^ (v >> 63)) }

func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }
