package wire

import (
	"testing"

	"dimatch/internal/bloom"
	"dimatch/internal/core"
	"dimatch/internal/pattern"
)

func buildFilter(t *testing.T) *core.Filter {
	t.Helper()
	params := core.Params{
		Bits:           1 << 12,
		Hashes:         3,
		Samples:        3,
		Epsilon:        1,
		Tolerance:      core.ToleranceScaled,
		Seed:           99,
		PositionSalted: true,
	}
	enc, err := core.NewEncoder(params, 3)
	if err != nil {
		t.Fatal(err)
	}
	queries := []core.Query{
		{ID: 1, Locals: []pattern.Pattern{{1, 2, 3}, {2, 2, 2}}},
		{ID: 7, Locals: []pattern.Pattern{{4, 0, 4}}},
	}
	for _, q := range queries {
		if err := enc.AddQuery(q); err != nil {
			t.Fatal(err)
		}
	}
	return enc.Filter()
}

func TestWBFQueryRoundTrip(t *testing.T) {
	f := buildFilter(t)
	m := EncodeWBFQuery(f)
	if m.Kind != KindWBFQuery {
		t.Fatalf("kind = %v", m.Kind)
	}
	got, err := DecodeWBFQuery(m)
	if err != nil {
		t.Fatal(err)
	}
	if got.Params() != f.Params() {
		t.Fatalf("params: %+v vs %+v", got.Params(), f.Params())
	}
	if got.Length() != f.Length() || got.Inserted() != f.Inserted() {
		t.Fatal("length/inserted lost")
	}
	if len(got.Weights()) != len(f.Weights()) {
		t.Fatal("weight table size changed")
	}
	for i, w := range f.Weights() {
		if got.Weights()[i] != w {
			t.Fatalf("weight %d: %+v vs %+v", i, got.Weights()[i], w)
		}
	}
	// Matching behaviour is preserved: the decoded filter gives identical
	// verdicts on a probe sweep.
	m1 := core.NewMatcher(f)
	m2 := core.NewMatcher(got)
	for _, cand := range []pattern.Pattern{{1, 2, 3}, {2, 2, 2}, {3, 4, 5}, {4, 0, 4}, {9, 9, 9}, {0, 0, 1}} {
		ids1, ok1, err1 := m1.Match(cand)
		ids2, ok2, err2 := m2.Match(cand)
		if (err1 == nil) != (err2 == nil) || ok1 != ok2 || len(ids1) != len(ids2) {
			t.Fatalf("verdict diverged for %v", cand)
		}
		for i := range ids1 {
			if ids1[i] != ids2[i] {
				t.Fatalf("weights diverged for %v", cand)
			}
		}
	}
}

func TestWBFQueryDecodeWrongKind(t *testing.T) {
	if _, err := DecodeWBFQuery(Message{Kind: KindShipAll}); err == nil {
		t.Fatal("wrong kind accepted")
	}
}

func TestWBFQueryDecodeCorrupt(t *testing.T) {
	m := EncodeWBFQuery(buildFilter(t))
	for cut := 0; cut < len(m.Payload); cut += 7 {
		trunc := Message{Kind: KindWBFQuery, Payload: m.Payload[:cut]}
		if _, err := DecodeWBFQuery(trunc); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestBFQueryRoundTrip(t *testing.T) {
	bf, err := bloom.New(1<<10, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	for v := int64(0); v < 50; v++ {
		bf.Add(v * 3)
	}
	params := core.Params{Bits: 1 << 10, Hashes: 4, Samples: 5, Epsilon: 2, Tolerance: core.ToleranceAbsolute, Seed: 5}
	m := EncodeBFQuery(BFQuery{Filter: bf, Params: params, Length: 9})
	got, err := DecodeBFQuery(m)
	if err != nil {
		t.Fatal(err)
	}
	if got.Params != params || got.Length != 9 {
		t.Fatalf("params/length lost: %+v", got)
	}
	if got.Filter.N() != bf.N() {
		t.Fatal("insert count lost")
	}
	for v := int64(0); v < 200; v++ {
		if got.Filter.Contains(v) != bf.Contains(v) {
			t.Fatalf("verdict diverged for %d", v)
		}
	}
	if _, err := DecodeBFQuery(Message{Kind: KindReports}); err == nil {
		t.Fatal("wrong kind accepted")
	}
}

func TestReportsRoundTrip(t *testing.T) {
	in := Reports{
		Station: 42,
		Reports: []core.Report{
			{Person: 1, WeightIDs: []core.WeightID{0, 5, 9}},
			{Person: 1 << 40, WeightIDs: []core.WeightID{3}},
			{Person: 7, WeightIDs: nil},
		},
	}
	got, err := DecodeReports(EncodeReports(in))
	if err != nil {
		t.Fatal(err)
	}
	if got.Station != in.Station || len(got.Reports) != len(in.Reports) {
		t.Fatalf("got %+v", got)
	}
	for i, rep := range in.Reports {
		if got.Reports[i].Person != rep.Person || len(got.Reports[i].WeightIDs) != len(rep.WeightIDs) {
			t.Fatalf("report %d: %+v vs %+v", i, got.Reports[i], rep)
		}
		for j, id := range rep.WeightIDs {
			if got.Reports[i].WeightIDs[j] != id {
				t.Fatalf("report %d id %d differs", i, j)
			}
		}
	}
	if _, err := DecodeReports(Message{Kind: KindShipAll}); err == nil {
		t.Fatal("wrong kind accepted")
	}
}

func TestBFMatchesRoundTrip(t *testing.T) {
	in := BFMatches{Station: 3, Persons: []core.PersonID{5, 1, 1 << 50}}
	got, err := DecodeBFMatches(EncodeBFMatches(in))
	if err != nil {
		t.Fatal(err)
	}
	if got.Station != 3 || len(got.Persons) != 3 {
		t.Fatalf("got %+v", got)
	}
	for i := range in.Persons {
		if got.Persons[i] != in.Persons[i] {
			t.Fatal("persons differ")
		}
	}
	if _, err := DecodeBFMatches(Message{Kind: KindShipAll}); err == nil {
		t.Fatal("wrong kind accepted")
	}
}

func TestNaiveDataRoundTrip(t *testing.T) {
	in := NaiveData{
		Station: 9,
		Persons: []core.PersonID{1, 2},
		Locals:  []pattern.Pattern{{0, 3, 7}, {5, 0, 0}},
	}
	m, err := EncodeNaiveData(in)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeNaiveData(m)
	if err != nil {
		t.Fatal(err)
	}
	if got.Station != 9 || len(got.Persons) != 2 {
		t.Fatalf("got %+v", got)
	}
	for i := range in.Locals {
		if got.Persons[i] != in.Persons[i] || !got.Locals[i].Equal(in.Locals[i]) {
			t.Fatalf("tuple %d differs", i)
		}
	}
	if _, err := EncodeNaiveData(NaiveData{Persons: []core.PersonID{1}}); err == nil {
		t.Fatal("mismatched persons/locals accepted")
	}
	if _, err := DecodeNaiveData(Message{Kind: KindShipAll}); err == nil {
		t.Fatal("wrong kind accepted")
	}
}

func TestDecodersNeverPanicOnMutatedPayloads(t *testing.T) {
	// Stations decode filters from the network; arbitrary corruption must
	// surface as errors, never panics or runaway allocations.
	base := EncodeWBFQuery(buildFilter(t))
	decoders := []func(Message) error{
		func(m Message) error { _, err := DecodeWBFQuery(m); return err },
		func(m Message) error {
			_, err := DecodeBFQuery(Message{Kind: KindBFQuery, Payload: m.Payload})
			return err
		},
		func(m Message) error {
			_, err := DecodeReports(Message{Kind: KindReports, Payload: m.Payload})
			return err
		},
		func(m Message) error {
			_, err := DecodeBFMatches(Message{Kind: KindBFMatches, Payload: m.Payload})
			return err
		},
		func(m Message) error {
			_, err := DecodeNaiveData(Message{Kind: KindNaiveData, Payload: m.Payload})
			return err
		},
		func(m Message) error { _, err := DecodeFetch(Message{Kind: KindFetch, Payload: m.Payload}); return err },
		func(m Message) error {
			_, err := DecodeIngest(Message{Kind: KindIngest, Payload: m.Payload})
			return err
		},
		func(m Message) error { _, err := DecodeEvict(Message{Kind: KindEvict, Payload: m.Payload}); return err },
		func(m Message) error {
			_, err := DecodeStatsReply(Message{Kind: KindStatsReply, Payload: m.Payload})
			return err
		},
		func(m Message) error { _, err := DecodeAck(Message{Kind: KindAck, Payload: m.Payload}); return err },
	}
	// Deterministic byte mutations across the payload.
	for step := 1; step < 97; step += 3 {
		payload := append([]byte(nil), base.Payload...)
		for i := step; i < len(payload); i += 101 {
			payload[i] ^= byte(step)
		}
		m := Message{Kind: KindWBFQuery, Payload: payload}
		for di, dec := range decoders {
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("decoder %d panicked on mutation step %d: %v", di, step, r)
					}
				}()
				_ = dec(m) // error or success are both fine; panics are not
			}()
		}
	}
}

func TestFetchRoundTrip(t *testing.T) {
	in := Fetch{Persons: []core.PersonID{42, 7, 7000, 1}}
	got, err := DecodeFetch(EncodeFetch(in))
	if err != nil {
		t.Fatal(err)
	}
	// IDs come back sorted (the encoding delta-compresses them).
	want := []core.PersonID{1, 7, 42, 7000}
	if len(got.Persons) != len(want) {
		t.Fatalf("got %v", got.Persons)
	}
	for i := range want {
		if got.Persons[i] != want[i] {
			t.Fatalf("got %v, want %v", got.Persons, want)
		}
	}
	if _, err := DecodeFetch(Message{Kind: KindShipAll}); err == nil {
		t.Fatal("wrong kind accepted")
	}
	// Empty fetch round-trips.
	empty, err := DecodeFetch(EncodeFetch(Fetch{}))
	if err != nil || len(empty.Persons) != 0 {
		t.Fatalf("empty fetch: %v, %v", empty, err)
	}
}

func TestTrivialMessages(t *testing.T) {
	if ShipAllMessage().Kind != KindShipAll {
		t.Fatal("ShipAllMessage kind")
	}
	if ShutdownMessage().Kind != KindShutdown {
		t.Fatal("ShutdownMessage kind")
	}
	if StatsMessage().Kind != KindStats {
		t.Fatal("StatsMessage kind")
	}
}

func TestIngestRoundTrip(t *testing.T) {
	in := Ingest{
		Persons: []core.PersonID{3, 1, 400},
		Locals:  []pattern.Pattern{{1, -2, 3}, {0, 0, 7}, {9, 9, 9}},
	}
	m, err := EncodeIngest(in)
	if err != nil {
		t.Fatal(err)
	}
	if m.Kind != KindIngest {
		t.Fatalf("kind = %v", m.Kind)
	}
	got, err := DecodeIngest(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Persons) != len(in.Persons) {
		t.Fatalf("got %v", got.Persons)
	}
	for i, p := range in.Persons {
		if got.Persons[i] != p {
			t.Fatalf("person %d: got %v, want %v", i, got.Persons, in.Persons)
		}
		for j, v := range in.Locals[i] {
			if got.Locals[i][j] != v {
				t.Fatalf("local %d: got %v, want %v", i, got.Locals[i], in.Locals[i])
			}
		}
	}
	if _, err := EncodeIngest(Ingest{Persons: []core.PersonID{1}}); err == nil {
		t.Fatal("mismatched persons/locals accepted")
	}
	if _, err := DecodeIngest(Message{Kind: KindFetch}); err == nil {
		t.Fatal("wrong kind accepted")
	}
}

func TestEvictRoundTrip(t *testing.T) {
	got, err := DecodeEvict(EncodeEvict(Evict{Persons: []core.PersonID{50, 2, 2000}}))
	if err != nil {
		t.Fatal(err)
	}
	want := []core.PersonID{2, 50, 2000} // sorted by the delta encoding
	if len(got.Persons) != len(want) {
		t.Fatalf("got %v", got.Persons)
	}
	for i := range want {
		if got.Persons[i] != want[i] {
			t.Fatalf("got %v, want %v", got.Persons, want)
		}
	}
	if _, err := DecodeEvict(Message{Kind: KindFetch}); err == nil {
		t.Fatal("wrong kind accepted")
	}
}

func TestStatsAckRoundTrip(t *testing.T) {
	s := StatsReply{Station: 9, Residents: 1234, StorageBytes: 98765, Length: 8, MaxVersion: LatestVersion}
	gotS, err := DecodeStatsReply(EncodeStatsReply(s))
	if err != nil || gotS != s {
		t.Fatalf("stats reply: got %+v, %v; want %+v", gotS, err, s)
	}
	a := Ack{Station: 3, Applied: 17}
	gotA, err := DecodeAck(EncodeAck(a))
	if err != nil || gotA != a {
		t.Fatalf("ack: got %+v, %v; want %+v", gotA, err, a)
	}
	if _, err := DecodeStatsReply(Message{Kind: KindAck}); err == nil {
		t.Fatal("wrong kind accepted")
	}
	if _, err := DecodeAck(Message{Kind: KindStatsReply}); err == nil {
		t.Fatal("wrong kind accepted")
	}
}

func TestWBFQueryCompactness(t *testing.T) {
	// The dissemination message must be far smaller than the naive shipment
	// of even a modest station's data — the whole point of the scheme.
	f := buildFilter(t)
	m := EncodeWBFQuery(f)
	if m.EncodedSize() > 1<<16 {
		t.Fatalf("WBF query frame unexpectedly large: %d bytes", m.EncodedSize())
	}
}
