package wire

import (
	"encoding/hex"
	"testing"

	"dimatch/internal/core"
	"dimatch/internal/pattern"
)

// workedRouteQuery reconstructs the docs/WIRE.md worked route-query frame
// from the live encoder; TestWorkedRouteHex pins the documented hex to it.
func workedRouteQuery(t *testing.T) Message {
	t.Helper()
	m, err := EncodeRouteQuery(RouteQuery{
		Queries: []core.Query{{
			ID:     7,
			Locals: []pattern.Pattern{{1, 2, 0, 1}, {0, 1, 1, 2}},
		}},
		TargetFP:  0.01,
		BatchSize: 0,
		Routing:   2,
	})
	if err != nil {
		t.Fatalf("EncodeRouteQuery: %v", err)
	}
	return m.WithRequest(42)
}

func workedRouteReply() Message {
	return EncodeRouteReply(RouteReply{
		Region:  3,
		Probes:  5,
		Pruned:  2,
		Visited: 1,
		Failed:  0,
		Hops:    1,
		Results: []RouteResult{{Query: 7, Person: 9, Numerator: 12, Denominator: 12, Stations: 1}},
	}).WithRequest(42)
}

// TestWorkedRouteHex pins the docs/WIRE.md worked v6 frames to the live
// encoders, so the documentation cannot drift from the code.
func TestWorkedRouteHex(t *testing.T) {
	if got := hex.EncodeToString(workedRouteQuery(t).Encode()); got != workedRouteQueryHex {
		t.Fatalf("route-query worked frame drifted:\n got %s\nwant %s", got, workedRouteQueryHex)
	}
	if got := hex.EncodeToString(workedRouteReply().Encode()); got != workedRouteReplyHex {
		t.Fatalf("route-reply worked frame drifted:\n got %s\nwant %s", got, workedRouteReplyHex)
	}
}

// TestRouteQueryRoundtrip pins the full delegated-round codec.
func TestRouteQueryRoundtrip(t *testing.T) {
	in := RouteQuery{
		Queries: []core.Query{
			{ID: 3, Locals: []pattern.Pattern{{5, 0, 2}, {1, 1, 1}}},
			{ID: 9, Locals: []pattern.Pattern{{2, 2, 2}}},
		},
		Params:    core.Params{Bits: 128, Hashes: 3, Samples: 3, Epsilon: 1, Tolerance: 1, Seed: 0xabc, PositionSalted: true},
		TargetFP:  0.02,
		BatchSize: 4,
		Routing:   1,
	}
	m, err := EncodeRouteQuery(in)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	if m.Kind != KindRouteQuery {
		t.Fatalf("kind = %v", m.Kind)
	}
	if v := m.Encode()[2]; v != Version6 {
		t.Fatalf("route-query frame stamped v%d, want v6", v)
	}
	out, err := DecodeRouteQuery(Message{Kind: KindRouteQuery, Payload: m.Payload})
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(out.Queries) != 2 || out.Queries[0].ID != 3 || out.Queries[1].ID != 9 {
		t.Fatalf("queries changed: %+v", out.Queries)
	}
	for i, q := range out.Queries {
		if len(q.Locals) != len(in.Queries[i].Locals) {
			t.Fatalf("query %d locals changed", i)
		}
		for j, l := range q.Locals {
			for g, v := range l {
				if in.Queries[i].Locals[j][g] != v {
					t.Fatalf("query %d local %d pos %d: %d", i, j, g, v)
				}
			}
		}
	}
	if out.Params != in.Params || out.TargetFP != in.TargetFP || out.BatchSize != in.BatchSize || out.Routing != in.Routing {
		t.Fatalf("knobs changed: %+v", out)
	}

	// Oversized and empty batches are rejected.
	if _, err := EncodeRouteQuery(RouteQuery{}); err == nil {
		t.Fatal("empty route query encoded")
	}
	big := RouteQuery{Queries: make([]core.Query, MaxBatchQueries+1)}
	if _, err := EncodeRouteQuery(big); err == nil {
		t.Fatal("oversized route query encoded")
	}
}

// TestRouteReplyRoundtrip pins the region-answer codec, including negative
// partials (zigzag).
func TestRouteReplyRoundtrip(t *testing.T) {
	in := RouteReply{
		Region: 11,
		Probes: 99,
		Pruned: 3, Visited: 5, Failed: 1, Hops: 2,
		Results: []RouteResult{
			{Query: 1, Person: 2, Numerator: -4, Denominator: 12, Stations: 2},
			{Query: 1, Person: 7, Numerator: 12, Denominator: 12, Stations: 1},
		},
	}
	m := EncodeRouteReply(in)
	if v := m.Encode()[2]; v != Version6 {
		t.Fatalf("route-reply frame stamped v%d, want v6", v)
	}
	out, err := DecodeRouteReply(Message{Kind: KindRouteReply, Payload: m.Payload})
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if out.Region != in.Region || out.Probes != in.Probes || out.Pruned != in.Pruned ||
		out.Visited != in.Visited || out.Failed != in.Failed || out.Hops != in.Hops {
		t.Fatalf("counters changed: %+v", out)
	}
	if len(out.Results) != 2 || out.Results[0] != in.Results[0] || out.Results[1] != in.Results[1] {
		t.Fatalf("results changed: %+v", out.Results)
	}
}

// TestRouteKindsVersionGated pins the v6 gating: a route kind in a v5 frame
// is as unknown as kind 200.
func TestRouteKindsVersionGated(t *testing.T) {
	frame := workedRouteQuery(t).Encode()
	for _, v := range []uint8{Version2, Version3, Version4, Version5} {
		bad := append([]byte(nil), frame...)
		bad[2] = v
		if _, err := Decode(bad); err != ErrBadKind {
			t.Fatalf("route-query in v%d frame: err = %v, want ErrBadKind", v, err)
		}
	}
	if m, err := Decode(frame); err != nil || m.Version != Version6 {
		t.Fatalf("v6 route-query rejected: %v (version %d)", err, m.Version)
	}
}

// TestStatsReplyFlags pins the optional capability byte: absent decodes as
// zero, nonzero survives a roundtrip, and a plain (flagless) reply encodes
// byte-identically to the pre-v6 form.
func TestStatsReplyFlags(t *testing.T) {
	plain := EncodeStatsReply(StatsReply{Station: 3, Residents: 5, StorageBytes: 80, Length: 24})
	got, err := DecodeStatsReply(plain)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.Flags != 0 {
		t.Fatalf("plain reply Flags = %d, want 0", got.Flags)
	}
	delegate := EncodeStatsReply(StatsReply{Station: 3, Residents: 5, Length: 24, Flags: FlagRouteDelegate})
	if len(delegate.Payload) != len(plain.Payload)+1 {
		t.Fatalf("delegate payload %d bytes, plain %d: flag byte missing", len(delegate.Payload), len(plain.Payload))
	}
	got, err = DecodeStatsReply(delegate)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.Flags != FlagRouteDelegate {
		t.Fatalf("Flags = %d, want %d", got.Flags, FlagRouteDelegate)
	}
	// A v5-era payload that ends after MaxVersion still decodes (the flag
	// byte is optional), proving rolling upgrades keep handshaking.
	legacy := Message{Kind: KindStatsReply, Payload: plain.Payload}
	if got, err := DecodeStatsReply(legacy); err != nil || got.MaxVersion != LatestVersion {
		t.Fatalf("legacy-shaped reply: %+v, %v", got, err)
	}
}
