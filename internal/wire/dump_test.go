package wire

import (
	"encoding/binary"
	"errors"
	"testing"

	"dimatch/internal/core"
	"dimatch/internal/pattern"
)

// TestDumpVersionStamping pins the v4 negotiation contract: dump kinds travel
// in version-4 frames and nothing below.
func TestDumpVersionStamping(t *testing.T) {
	d := EncodeDump(Dump{Persons: []core.PersonID{1}})
	if got := d.Encode()[2]; got != Version4 {
		t.Fatalf("dump kind stamped version %d, want %d", got, Version4)
	}
	// An explicit downgrade request on a dump kind is overridden: the codec
	// never emits a frame an old peer would misparse as a known kind.
	d.Version = Version3
	if got := d.Encode()[2]; got != Version4 {
		t.Fatalf("dump kind downgraded to version %d", got)
	}
	got, err := Decode(d.Encode())
	if err != nil || got.Version != Version4 {
		t.Fatalf("decoded version %d (%v), want %d", got.Version, err, Version4)
	}
}

// TestDumpKindRejectedInOldFrames: a dump kind smuggled into a pre-v4 frame
// is as unknown as any garbage kind — including in a version-3 frame, which
// does know the batch kinds.
func TestDumpKindRejectedInOldFrames(t *testing.T) {
	for _, v := range []uint8{Version2, Version3} {
		b := EncodeDump(Dump{}).Encode()
		b[2] = v
		if _, err := Decode(b); !errors.Is(err, ErrBadKind) {
			t.Fatalf("v%d frame with dump kind: err = %v, want ErrBadKind", v, err)
		}
	}
	v1 := make([]byte, headerSizeV1)
	binary.LittleEndian.PutUint16(v1[0:2], magic)
	v1[2] = Version1
	v1[3] = uint8(KindDumpReply)
	if _, err := Decode(v1); !errors.Is(err, ErrBadKind) {
		t.Fatalf("v1 frame with dump kind: err = %v, want ErrBadKind", err)
	}
}

func TestDumpRoundTrip(t *testing.T) {
	in := Dump{Persons: []core.PersonID{90, 4, 17}}
	out, err := DecodeDump(EncodeDump(in))
	if err != nil {
		t.Fatal(err)
	}
	want := []core.PersonID{4, 17, 90} // sent sorted
	if len(out.Persons) != len(want) {
		t.Fatalf("got %d persons, want %d", len(out.Persons), len(want))
	}
	for i, p := range want {
		if out.Persons[i] != p {
			t.Fatalf("person[%d] = %d, want %d", i, out.Persons[i], p)
		}
	}

	// Empty filter means "everything" and must round-trip as empty.
	all, err := DecodeDump(EncodeDump(Dump{}))
	if err != nil {
		t.Fatal(err)
	}
	if len(all.Persons) != 0 {
		t.Fatalf("empty dump decoded %d persons", len(all.Persons))
	}

	if _, err := DecodeDump(StatsMessage()); err == nil {
		t.Fatal("decoding a stats message as dump succeeded")
	}
}

func TestDumpReplyRoundTrip(t *testing.T) {
	in := DumpReply{
		Station: 7,
		Persons: []core.PersonID{1, 5},
		Locals:  []pattern.Pattern{{1, -2, 3}, {0, 4, 0}},
	}
	m, err := EncodeDumpReply(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodeDumpReply(m)
	if err != nil {
		t.Fatal(err)
	}
	if out.Station != in.Station || len(out.Persons) != 2 {
		t.Fatalf("got station %d, %d persons", out.Station, len(out.Persons))
	}
	for i := range in.Persons {
		if out.Persons[i] != in.Persons[i] || !out.Locals[i].Equal(in.Locals[i]) {
			t.Fatalf("tuple %d mismatch: %d %v", i, out.Persons[i], out.Locals[i])
		}
	}

	if _, err := EncodeDumpReply(DumpReply{Persons: []core.PersonID{1}}); err == nil {
		t.Fatal("mismatched persons/locals encoded successfully")
	}
	if _, err := DecodeDumpReply(StatsMessage()); err == nil {
		t.Fatal("decoding a stats message as dump-reply succeeded")
	}
}

// TestDumpDecodeCorrupt: truncations and bit flips fail with errors, never
// panic — the same guarantee the other decoders give.
func TestDumpDecodeCorrupt(t *testing.T) {
	m, err := EncodeDumpReply(DumpReply{
		Station: 3,
		Persons: []core.PersonID{1, 2, 9},
		Locals:  []pattern.Pattern{{5, 6}, {7, 8}, {9, 10}},
	})
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(m.Payload); cut++ {
		trunc := Message{Kind: KindDumpReply, Payload: m.Payload[:cut]}
		if _, err := DecodeDumpReply(trunc); err == nil && cut < len(m.Payload) {
			// Some prefixes decode as valid shorter replies only if they end
			// exactly on a tuple boundary AND the count matches; the reader's
			// done() check makes that impossible here because the count is
			// fixed at 3.
			t.Fatalf("truncation at %d decoded successfully", cut)
		}
	}
	for i := 0; i < len(m.Payload); i++ {
		mut := Message{Kind: KindDumpReply, Payload: append([]byte(nil), m.Payload...)}
		mut.Payload[i] ^= 0xff
		_, _ = DecodeDumpReply(mut) // must not panic
	}
}
