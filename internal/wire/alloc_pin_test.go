// AllocsPerRun pins for the //dimatch:noalloc functions of this package:
// Message.AppendFrame (the hot-path frame renderer behind every pooled
// send) and AppendBatchReplyPayload (a station's streaming batch answer).
// The noalloc analyzer is the static early warning; these tests are the
// runtime ground truth. cmd/di-lint -allocharness reports any annotated
// function missing from this file.
package wire

import (
	"testing"

	"dimatch/internal/core"
)

var frameSink []byte

func TestNoallocMessageAppendFrame(t *testing.T) {
	m := Message{Kind: KindAck, Request: 7, Payload: []byte{1, 2, 3, 4}}
	buf := make([]byte, 0, 64)
	if n := testing.AllocsPerRun(100, func() {
		frameSink = m.AppendFrame(buf[:0])
	}); n != 0 {
		t.Fatalf("Message.AppendFrame allocates %v times per run; //dimatch:noalloc requires 0", n)
	}
}

func TestNoallocAppendBatchReplyPayload(t *testing.T) {
	b := BatchReply{
		Station: 3,
		Queries: 2,
		Reports: []core.Report{
			{Person: 11, WeightIDs: []core.WeightID{1, 2}},
			{Person: 12, WeightIDs: []core.WeightID{3}},
		},
	}
	buf := make([]byte, 0, BatchReplyPayloadSize(b))
	if n := testing.AllocsPerRun(100, func() {
		frameSink = AppendBatchReplyPayload(buf[:0], b)
	}); n != 0 {
		t.Fatalf("AppendBatchReplyPayload allocates %v times per run; //dimatch:noalloc requires 0", n)
	}
}
