package wire

import (
	"encoding/binary"
	"errors"
	"testing"

	"dimatch/internal/core"
)

// TestFrameVersionStamping pins the negotiation contract: batch kinds travel
// in version-3 frames, everything else stays at version 2 so pre-batch peers
// keep decoding it.
func TestFrameVersionStamping(t *testing.T) {
	legacy := Message{Kind: KindReports, Payload: []byte{1}}
	if got := legacy.Encode()[2]; got != Version2 {
		t.Fatalf("legacy kind stamped version %d, want %d", got, Version2)
	}
	batch := Message{Kind: KindBatchQuery, Payload: []byte{1}}
	if got := batch.Encode()[2]; got != Version3 {
		t.Fatalf("batch kind stamped version %d, want %d", got, Version3)
	}
	// An explicit downgrade request on a batch kind is overridden: the codec
	// never emits a frame an old peer would misparse as a known kind.
	batch.Version = Version2
	if got := batch.Encode()[2]; got != Version3 {
		t.Fatalf("batch kind downgraded to version %d", got)
	}
	// Decoding records the frame version.
	got, err := Decode(legacy.Encode())
	if err != nil || got.Version != Version2 {
		t.Fatalf("decoded version %d (%v), want %d", got.Version, err, Version2)
	}
	got, err = Decode(Message{Kind: KindBatchReply}.Encode())
	if err != nil || got.Version != Version3 {
		t.Fatalf("decoded version %d (%v), want %d", got.Version, err, Version3)
	}
}

// TestBatchKindRejectedInOldFrames: a batch kind smuggled into a version-1
// or version-2 frame is as unknown as any garbage kind.
func TestBatchKindRejectedInOldFrames(t *testing.T) {
	b := Message{Kind: KindBatchQuery, Payload: []byte{1, 2}}.Encode()
	b[2] = Version2
	if _, err := Decode(b); !errors.Is(err, ErrBadKind) {
		t.Fatalf("v2 frame with batch kind: err = %v, want ErrBadKind", err)
	}
	v1 := make([]byte, headerSizeV1)
	binary.LittleEndian.PutUint16(v1[0:2], magic)
	v1[2] = Version1
	v1[3] = uint8(KindBatchReply)
	if _, err := Decode(v1); !errors.Is(err, ErrBadKind) {
		t.Fatalf("v1 frame with batch kind: err = %v, want ErrBadKind", err)
	}
}

func TestBatchQueryRoundTrip(t *testing.T) {
	f := buildFilter(t)
	m, err := EncodeBatchQuery(BatchQuery{Queries: []core.QueryID{7, 1}, Filter: f})
	if err != nil {
		t.Fatal(err)
	}
	if m.Kind != KindBatchQuery {
		t.Fatalf("kind = %v", m.Kind)
	}
	if m.Encode()[2] != Version3 {
		t.Fatalf("batch query frame version = %d", m.Encode()[2])
	}
	got, err := DecodeBatchQuery(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Queries) != 2 || got.Queries[0] != 1 || got.Queries[1] != 7 {
		t.Fatalf("queries = %v, want sorted [1 7]", got.Queries)
	}
	if got.Filter.Params() != f.Params() || got.Filter.Length() != f.Length() {
		t.Fatal("filter params/length lost")
	}
	if len(got.Filter.Weights()) != len(f.Weights()) {
		t.Fatal("weight table size changed")
	}
}

func TestBatchQueryEncodeErrors(t *testing.T) {
	f := buildFilter(t)
	if _, err := EncodeBatchQuery(BatchQuery{Filter: f}); !errors.Is(err, ErrBatchMismatch) {
		t.Fatalf("empty batch: %v", err)
	}
	// The filter encodes queries 1 and 7; declaring only 1 must fail.
	if _, err := EncodeBatchQuery(BatchQuery{Queries: []core.QueryID{1}, Filter: f}); !errors.Is(err, ErrBatchMismatch) {
		t.Fatalf("undeclared query: %v", err)
	}
	if _, err := EncodeBatchQuery(BatchQuery{Queries: []core.QueryID{1, 1, 7}, Filter: f}); !errors.Is(err, ErrBatchMismatch) {
		t.Fatalf("duplicate query: %v", err)
	}
	big := make([]core.QueryID, MaxBatchQueries+1)
	for i := range big {
		big[i] = core.QueryID(i)
	}
	if _, err := EncodeBatchQuery(BatchQuery{Queries: big, Filter: f}); !errors.Is(err, ErrBatchTooLarge) {
		t.Fatalf("oversized batch: %v", err)
	}
}

// TestBatchQueryDecodeCorrupt drives corrupt and hostile payloads through
// the decoder: every one must fail with a typed error, never panic.
func TestBatchQueryDecodeCorrupt(t *testing.T) {
	f := buildFilter(t)
	good, err := EncodeBatchQuery(BatchQuery{Queries: []core.QueryID{1, 7}, Filter: f})
	if err != nil {
		t.Fatal(err)
	}

	t.Run("wrong kind", func(t *testing.T) {
		if _, err := DecodeBatchQuery(Message{Kind: KindReports}); err == nil {
			t.Fatal("wrong kind accepted")
		}
	})
	t.Run("empty payload", func(t *testing.T) {
		if _, err := DecodeBatchQuery(Message{Kind: KindBatchQuery}); err == nil {
			t.Fatal("empty payload accepted")
		}
	})
	t.Run("oversized count", func(t *testing.T) {
		var w writer
		w.uvarint(MaxBatchQueries + 1)
		_, err := DecodeBatchQuery(Message{Kind: KindBatchQuery, Payload: w.buf})
		if !errors.Is(err, ErrBatchTooLarge) {
			t.Fatalf("err = %v, want ErrBatchTooLarge", err)
		}
	})
	t.Run("zero count", func(t *testing.T) {
		var w writer
		w.uvarint(0)
		_, err := DecodeBatchQuery(Message{Kind: KindBatchQuery, Payload: w.buf})
		if !errors.Is(err, ErrBatchMismatch) {
			t.Fatalf("err = %v, want ErrBatchMismatch", err)
		}
	})
	t.Run("duplicate id", func(t *testing.T) {
		var w writer
		w.uvarint(2)
		w.uvarint(3) // id 3
		w.uvarint(0) // delta 0: duplicate
		_, err := DecodeBatchQuery(Message{Kind: KindBatchQuery, Payload: w.buf})
		if !errors.Is(err, ErrBatchMismatch) {
			t.Fatalf("err = %v, want ErrBatchMismatch", err)
		}
	})
	t.Run("undeclared weight query", func(t *testing.T) {
		// Re-declare only query 1 in front of a filter that encodes 1 and 7.
		var w writer
		w.uvarint(1)
		w.uvarint(1)
		writeFilter(&w, f)
		_, err := DecodeBatchQuery(Message{Kind: KindBatchQuery, Payload: w.buf})
		if !errors.Is(err, ErrBatchMismatch) {
			t.Fatalf("err = %v, want ErrBatchMismatch", err)
		}
	})
	t.Run("truncations", func(t *testing.T) {
		// Every prefix of a valid payload must fail loudly, not panic.
		for i := 0; i < len(good.Payload); i += 7 {
			if _, err := DecodeBatchQuery(Message{Kind: KindBatchQuery, Payload: good.Payload[:i]}); err == nil {
				t.Fatalf("truncation at %d accepted", i)
			}
		}
	})
	t.Run("trailing garbage", func(t *testing.T) {
		p := append(append([]byte(nil), good.Payload...), 0xFF)
		if _, err := DecodeBatchQuery(Message{Kind: KindBatchQuery, Payload: p}); err == nil {
			t.Fatal("trailing bytes accepted")
		}
	})
}

func TestBatchReplyRoundTrip(t *testing.T) {
	in := BatchReply{
		Station: 3,
		Queries: 2,
		Reports: []core.Report{
			{Person: 10, WeightIDs: []core.WeightID{0, 4}},
			{Person: 42, WeightIDs: []core.WeightID{1}},
		},
	}
	m := EncodeBatchReply(in)
	if m.Kind != KindBatchReply || m.Encode()[2] != Version3 {
		t.Fatalf("frame: kind %v version %d", m.Kind, m.Encode()[2])
	}
	got, err := DecodeBatchReply(m)
	if err != nil {
		t.Fatal(err)
	}
	if got.Station != 3 || got.Queries != 2 || len(got.Reports) != 2 {
		t.Fatalf("got %+v", got)
	}
	if got.Reports[0].Person != 10 || len(got.Reports[0].WeightIDs) != 2 || got.Reports[1].WeightIDs[0] != 1 {
		t.Fatalf("reports %+v", got.Reports)
	}
	if _, err := DecodeBatchReply(Message{Kind: KindAck}); err == nil {
		t.Fatal("wrong kind accepted")
	}
	if _, err := DecodeBatchReply(Message{Kind: KindBatchReply, Payload: []byte{0x80}}); err == nil {
		t.Fatal("truncated payload accepted")
	}
}

// TestStatsReplyMaxVersion pins the capability handshake: modern replies
// advertise LatestVersion, and a legacy payload that ends after Length reads
// back as a Version2 peer.
func TestStatsReplyMaxVersion(t *testing.T) {
	m := EncodeStatsReply(StatsReply{Station: 9, Residents: 4, StorageBytes: 96, Length: 3})
	got, err := DecodeStatsReply(m)
	if err != nil {
		t.Fatal(err)
	}
	if got.MaxVersion != LatestVersion {
		t.Fatalf("MaxVersion = %d, want %d", got.MaxVersion, LatestVersion)
	}

	// A pre-batch peer's payload: four uvarints, no capability byte.
	var legacy []byte
	legacy = binary.AppendUvarint(legacy, 9)  // station
	legacy = binary.AppendUvarint(legacy, 4)  // residents
	legacy = binary.AppendUvarint(legacy, 96) // storage bytes
	legacy = binary.AppendUvarint(legacy, 3)  // length
	got, err = DecodeStatsReply(Message{Kind: KindStatsReply, Payload: legacy})
	if err != nil {
		t.Fatal(err)
	}
	if got.MaxVersion != Version2 {
		t.Fatalf("legacy MaxVersion = %d, want %d", got.MaxVersion, Version2)
	}
	if got.Station != 9 || got.Residents != 4 || got.StorageBytes != 96 || got.Length != 3 {
		t.Fatalf("legacy fields lost: %+v", got)
	}
}
