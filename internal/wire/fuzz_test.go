package wire

import (
	"bytes"
	"encoding/hex"
	"testing"

	"dimatch/internal/core"
	"dimatch/internal/pattern"
)

// The two worked frames from docs/WIRE.md, byte for byte: a v3
// KindBatchQuery carrying one query's combined filter, and a v5
// KindSummaryReply carrying a one-resident routing digest. Seeding the
// fuzzers with real, documented frames means every mutation starts from a
// fully valid header + payload and immediately explores the interesting
// corrupt-field space instead of rediscovering the magic number.
const (
	workedBatchQueryHex = "a7d1030e2a000000" + "34000000" +
		"0101400000000000000002020001050000000000000000" +
		"020201000000050020200001010103030418010002010013010008" + "0100"
	workedSummaryReplyHex = "a7d105132a000000" + "1e000000" +
		"030201719a3d0cbfe5a75140000000000000000702" +
		"010119402202542008"
	// The v6 worked frames from docs/WIRE.md: a KindRouteQuery delegating a
	// one-query round (auto-sized params, tree routing) and the region's
	// KindRouteReply carrying one raw partial result.
	workedRouteQueryHex = "a7d106142a000000" + "2c000000" +
		"01070204020400020400020204" +
		"000000000000000000000000000000000000000000" +
		"7b14ae47e17a843f" + "0002"
	workedRouteReplyHex = "a7d106152a000000" + "0c000000" +
		"030502010001" + "010709181801"
	// The v7 worked frame from docs/WIRE.md: a KindParamUpdate installing a
	// three-group adaptive plan at epoch 2.
	workedParamUpdateHex = "a7d107162a000000" + "1b000000" +
		"020000000000000001" + "1704000000000000" + "03" +
		"020501" + "030604" + "040710"
)

func mustHex(t testing.TB, s string) []byte {
	t.Helper()
	b, err := hex.DecodeString(s)
	if err != nil {
		t.Fatalf("bad hex seed: %v", err)
	}
	return b
}

// FuzzDecode exercises the frame codec: any byte string must either be
// rejected with an error or decode into a message that survives an
// encode/decode roundtrip, respects the kind's version-gating floor, and
// reads back identically through the streaming ReadMessage path.
func FuzzDecode(f *testing.F) {
	f.Add(mustHex(f, workedBatchQueryHex))
	f.Add(mustHex(f, workedSummaryReplyHex))
	f.Add(Message{Kind: KindStats, Request: 7}.Encode())
	f.Add(Message{Kind: KindShutdown}.Encode())
	f.Add(EncodeFetch(Fetch{Persons: []core.PersonID{1, 2, 3}}).WithRequest(9).Encode())
	f.Add(EncodeAck(Ack{Station: 4, Applied: 2}).Encode())
	// Truncation and corruption seeds: a frame cut mid-header, mid-payload,
	// and one with a poisoned version byte.
	full := mustHex(f, workedBatchQueryHex)
	f.Add(full[:7])
	f.Add(full[:20])
	bad := append([]byte(nil), full...)
	bad[2] = 9
	f.Add(bad)

	f.Fuzz(func(t *testing.T, b []byte) {
		m, err := Decode(b)
		if err != nil {
			return // rejected input: nothing further to hold
		}
		if m.Version < Version1 || m.Version > LatestVersion {
			t.Fatalf("decoded version %d outside [%d, %d]", m.Version, Version1, LatestVersion)
		}
		floor, known := MinVersion(m.Kind)
		if !known {
			t.Fatalf("decoded unknown kind %d", m.Kind)
		}
		if m.Version < floor {
			t.Fatalf("kind %v decoded from version-%d frame below its floor %d", m.Kind, m.Version, floor)
		}
		// The streaming reader must agree with the one-shot decoder on the
		// exact same bytes.
		ms, err := ReadMessage(bytes.NewReader(b))
		if err != nil {
			t.Fatalf("Decode accepted but ReadMessage rejected: %v", err)
		}
		if ms.Kind != m.Kind || ms.Request != m.Request || ms.Version != m.Version || !bytes.Equal(ms.Payload, m.Payload) {
			t.Fatalf("ReadMessage disagrees with Decode: %+v vs %+v", ms, m)
		}
		// Re-encoding must produce a decodable frame carrying the same
		// message (the version may be re-stamped: v1 frames re-encode as v2,
		// and every kind is raised to at least its floor).
		re, err := Decode(m.Encode())
		if err != nil {
			t.Fatalf("re-encode of decoded message rejected: %v", err)
		}
		if re.Kind != m.Kind || re.Request != m.Request || !bytes.Equal(re.Payload, m.Payload) {
			t.Fatalf("encode/decode roundtrip changed the message: %+v vs %+v", re, m)
		}
		if re.Version < floor {
			t.Fatalf("re-encoded kind %v stamped version %d below floor %d", m.Kind, re.Version, floor)
		}
	})
}

// FuzzDecodePayload drives every payload decoder with arbitrary bytes
// under its own kind: decoders must reject garbage with an error (the
// reader's count guard bounds allocations), never panic, and — for the
// fixed-shape payloads — survive a decode/encode/decode roundtrip.
func FuzzDecodePayload(f *testing.F) {
	// Payloads of the worked frames (frame header stripped).
	f.Add(uint8(KindBatchQuery), mustHex(f, workedBatchQueryHex)[12:])
	f.Add(uint8(KindSummaryReply), mustHex(f, workedSummaryReplyHex)[12:])
	f.Add(uint8(KindFetch), EncodeFetch(Fetch{Persons: []core.PersonID{1, 2, 3}}).Payload)
	f.Add(uint8(KindEvict), EncodeEvict(Evict{Persons: []core.PersonID{9, 10}}).Payload)
	f.Add(uint8(KindAck), EncodeAck(Ack{Station: 7, Applied: 2}).Payload)
	f.Add(uint8(KindStatsReply), EncodeStatsReply(StatsReply{Station: 3, Residents: 5, StorageBytes: 80, Length: 24}).Payload)
	f.Add(uint8(KindBFMatches), EncodeBFMatches(BFMatches{Station: 2, Persons: []core.PersonID{11}}).Payload)
	if nd, err := EncodeNaiveData(NaiveData{Station: 1, Persons: []core.PersonID{4}, Locals: []pattern.Pattern{{1, 2, 3}}}); err == nil {
		f.Add(uint8(KindNaiveData), nd.Payload)
		f.Add(uint8(KindDumpReply), nd.Payload)
	}
	f.Add(uint8(KindDump), EncodeDump(Dump{}).Payload)
	f.Add(uint8(KindRouteQuery), mustHex(f, workedRouteQueryHex)[12:])
	f.Add(uint8(KindRouteReply), mustHex(f, workedRouteReplyHex)[12:])
	f.Add(uint8(KindRouteReply), EncodeRouteReply(RouteReply{
		Region:  2,
		Results: []RouteResult{{Query: 1, Person: 9, Numerator: 12, Denominator: 12, Stations: 3}},
		Probes:  5, Visited: 2, Pruned: 1, Hops: 1,
	}).Payload)
	f.Add(uint8(KindParamUpdate), mustHex(f, workedParamUpdateHex)[12:])
	if pu, err := EncodeParamUpdate(ParamUpdate{Epoch: 9}); err == nil {
		f.Add(uint8(KindParamUpdate), pu.Payload)
	}
	f.Add(uint8(KindParamAck), EncodeParamAck(ParamAck{Station: 4, Epoch: 3, Applied: true}).Payload)

	f.Fuzz(func(t *testing.T, kind uint8, payload []byte) {
		k := Kind(kind%uint8(maxKind)) + 1
		m := Message{Kind: k, Payload: payload}
		switch k {
		case KindWBFQuery:
			_, _ = DecodeWBFQuery(m)
		case KindBFQuery:
			_, _ = DecodeBFQuery(m)
		case KindReports:
			_, _ = DecodeReports(m)
		case KindBFMatches:
			bm, err := DecodeBFMatches(m)
			if err == nil {
				roundtripBFMatches(t, bm)
			}
		case KindNaiveData:
			_, _ = DecodeNaiveData(m)
		case KindFetch:
			fe, err := DecodeFetch(m)
			if err == nil {
				re, err := DecodeFetch(EncodeFetch(fe))
				if err != nil {
					t.Fatalf("fetch re-decode failed: %v", err)
				}
				if !personsEqual(re.Persons, fe.Persons) {
					t.Fatalf("fetch roundtrip changed persons: %v vs %v", re.Persons, fe.Persons)
				}
			}
		case KindIngest:
			_, _ = DecodeIngest(m)
		case KindEvict:
			ev, err := DecodeEvict(m)
			if err == nil {
				re, err := DecodeEvict(EncodeEvict(ev))
				if err != nil {
					t.Fatalf("evict re-decode failed: %v", err)
				}
				if !personsEqual(re.Persons, ev.Persons) {
					t.Fatalf("evict roundtrip changed persons: %v vs %v", re.Persons, ev.Persons)
				}
			}
		case KindStatsReply:
			sr, err := DecodeStatsReply(m)
			if err == nil {
				re, err := DecodeStatsReply(EncodeStatsReply(sr))
				if err != nil {
					t.Fatalf("stats-reply re-decode failed: %v", err)
				}
				// Encode always writes the capability byte, so a legacy
				// payload without one reads back advertising the latest
				// version — every other field must hold exactly.
				if re.Station != sr.Station || re.Residents != sr.Residents || re.StorageBytes != sr.StorageBytes || re.Length != sr.Length {
					t.Fatalf("stats-reply roundtrip changed fields: %+v vs %+v", re, sr)
				}
			}
		case KindAck:
			a, err := DecodeAck(m)
			if err == nil {
				re, err := DecodeAck(EncodeAck(a))
				if err != nil || re != a {
					t.Fatalf("ack roundtrip: %+v, %v; want %+v", re, err, a)
				}
			}
		case KindBatchQuery:
			_, _ = DecodeBatchQuery(m)
		case KindBatchReply:
			_, _ = DecodeBatchReply(m)
		case KindDump:
			_, _ = DecodeDump(m)
		case KindDumpReply:
			_, _ = DecodeDumpReply(m)
		case KindSummaryReply:
			_, _, _ = DecodeSummaryReply(m)
		case KindRouteQuery:
			rq, err := DecodeRouteQuery(m)
			if err == nil {
				enc, err := EncodeRouteQuery(rq)
				if err != nil {
					t.Fatalf("route-query re-encode failed: %v", err)
				}
				re, err := DecodeRouteQuery(enc)
				if err != nil {
					t.Fatalf("route-query re-decode failed: %v", err)
				}
				if len(re.Queries) != len(rq.Queries) || re.Params != rq.Params || re.Routing != rq.Routing || re.BatchSize != rq.BatchSize {
					t.Fatalf("route-query roundtrip changed: %+v vs %+v", re, rq)
				}
			}
		case KindRouteReply:
			rr, err := DecodeRouteReply(m)
			if err == nil {
				re, err := DecodeRouteReply(EncodeRouteReply(rr))
				if err != nil {
					t.Fatalf("route-reply re-decode failed: %v", err)
				}
				if re.Region != rr.Region || re.Probes != rr.Probes || len(re.Results) != len(rr.Results) {
					t.Fatalf("route-reply roundtrip changed: %+v vs %+v", re, rr)
				}
				for i := range re.Results {
					if re.Results[i] != rr.Results[i] {
						t.Fatalf("route-reply result %d changed: %+v vs %+v", i, re.Results[i], rr.Results[i])
					}
				}
			}
		case KindParamUpdate:
			pu, err := DecodeParamUpdate(m)
			if err == nil {
				enc, err := EncodeParamUpdate(pu)
				if err != nil {
					t.Fatalf("param-update re-encode failed: %v", err)
				}
				re, err := DecodeParamUpdate(enc)
				if err != nil {
					t.Fatalf("param-update re-decode failed: %v", err)
				}
				if re.Epoch != pu.Epoch || (re.Plan == nil) != (pu.Plan == nil) {
					t.Fatalf("param-update roundtrip changed: %+v vs %+v", re, pu)
				}
				if re.Plan != nil && !re.Plan.Equal(pu.Plan) {
					t.Fatalf("param-update plan roundtrip changed: %+v vs %+v", re.Plan, pu.Plan)
				}
			}
		case KindParamAck:
			pa, err := DecodeParamAck(m)
			if err == nil {
				re, err := DecodeParamAck(EncodeParamAck(pa))
				if err != nil {
					t.Fatalf("param-ack re-decode failed: %v", err)
				}
				if re != pa {
					t.Fatalf("param-ack roundtrip changed: %+v vs %+v", re, pa)
				}
			}
		case KindShipAll, KindShutdown, KindStats, KindSummary:
			// Bare request kinds carry no payload and have no decoder.
		default:
			t.Fatalf("fuzz dispatch misses kind %v; add its decoder here", k)
		}
	})
}

func roundtripBFMatches(t *testing.T, bm BFMatches) {
	t.Helper()
	re, err := DecodeBFMatches(EncodeBFMatches(bm))
	if err != nil {
		t.Fatalf("bf-matches re-decode failed: %v", err)
	}
	if re.Station != bm.Station || !personsEqual(re.Persons, bm.Persons) {
		t.Fatalf("bf-matches roundtrip changed: %+v vs %+v", re, bm)
	}
}

func personsEqual(a, b []core.PersonID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
