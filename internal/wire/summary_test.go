package wire

import (
	"encoding/hex"
	"errors"
	"testing"

	"dimatch/internal/core"
	"dimatch/internal/index"
	"dimatch/internal/pattern"
)

func TestSummaryReplyRoundtrip(t *testing.T) {
	s, err := index.Build(4, []pattern.Pattern{{1, 2, 3, 4}, {0, 5, 0, 5}})
	if err != nil {
		t.Fatal(err)
	}
	msg := EncodeSummaryReply(s, 7)
	decoded, err := Decode(msg.WithRequest(9).Encode())
	if err != nil {
		t.Fatal(err)
	}
	if decoded.Version != Version5 {
		t.Fatalf("summary reply stamped v%d, want v5", decoded.Version)
	}
	sr, got, err := DecodeSummaryReply(decoded)
	if err != nil {
		t.Fatal(err)
	}
	if sr.Station != 7 || sr.Residents != 2 || int(sr.Length) != 4 {
		t.Fatalf("header %+v, want station 7, 2 residents, length 4", sr)
	}
	probe, err := index.NewProbe(core.Query{ID: 1, Locals: []pattern.Pattern{{1, 2, 3, 4}}}, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Admits(probe) {
		t.Fatal("round-tripped summary lost its cells")
	}
	miss, err := index.NewProbe(core.Query{ID: 1, Locals: []pattern.Pattern{{9, 9, 9, 9}}}, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got.Admits(miss) {
		t.Fatal("round-tripped summary admits an unrelated query at ε=0")
	}
}

// TestWorkedSummaryHex pins the docs/WIRE.md worked v5 summary-reply frame
// to the live encoder, so the documentation cannot drift from the code.
func TestWorkedSummaryHex(t *testing.T) {
	s, err := index.Build(2, []pattern.Pattern{{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	got := hex.EncodeToString(EncodeSummaryReply(s, 3).WithRequest(42).Encode())
	if got != workedSummaryReplyHex {
		t.Fatalf("summary-reply worked frame drifted:\n got %s\nwant %s", got, workedSummaryReplyHex)
	}
}

// TestSummaryKindsVersionGated pins the v5 gate: a summary kind inside a
// frame stamped 4 or below is ErrBadKind, exactly like an unknown kind.
func TestSummaryKindsVersionGated(t *testing.T) {
	for _, kind := range []Kind{KindSummary, KindSummaryReply} {
		for _, v := range []uint8{Version1, Version2, Version3, Version4} {
			frame := Message{Kind: kind, Payload: nil}.Encode()
			frame[2] = v
			if v == Version1 {
				// v1 headers are 4 bytes shorter; rebuild the frame.
				frame = append(frame[:4], frame[8:]...)
			}
			if _, err := Decode(frame); !errors.Is(err, ErrBadKind) {
				t.Errorf("kind %v in v%d frame: err %v, want ErrBadKind", kind, v, err)
			}
		}
		// The same kind in a v5 frame decodes.
		if _, err := Decode(Message{Kind: kind}.Encode()); err != nil {
			t.Errorf("kind %v in v5 frame: %v", kind, err)
		}
	}
}

// TestSummaryReplyRejectsCorruption: truncated payloads and implausible
// word counts fail with typed errors, never panic.
func TestSummaryReplyRejectsCorruption(t *testing.T) {
	s, err := index.Build(3, []pattern.Pattern{{1, 1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	msg := EncodeSummaryReply(s, 1)
	for cut := 1; cut < len(msg.Payload); cut++ {
		bad := Message{Kind: KindSummaryReply, Payload: msg.Payload[:cut]}
		if _, _, err := DecodeSummaryReply(bad); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	if _, _, err := DecodeSummaryReply(Message{Kind: KindStats}); err == nil {
		t.Fatal("wrong kind accepted")
	}
	// Word count disagreeing with the declared bit length is rejected by
	// the index reconstruction.
	trunc := append([]byte(nil), msg.Payload...)
	bad := Message{Kind: KindSummaryReply, Payload: append(trunc, 0, 0, 0, 0, 0, 0, 0, 0)}
	if _, _, err := DecodeSummaryReply(bad); err == nil {
		t.Fatal("trailing garbage accepted")
	}
}

// TestStatsReplyAdvertisesV7 pins the capability handshake: a modern
// station's stats reply advertises LatestVersion = 7.
func TestStatsReplyAdvertisesV7(t *testing.T) {
	sr, err := DecodeStatsReply(EncodeStatsReply(StatsReply{Station: 3}))
	if err != nil {
		t.Fatal(err)
	}
	if sr.MaxVersion != Version7 {
		t.Fatalf("MaxVersion %d, want %d", sr.MaxVersion, Version7)
	}
}
