package wire

import (
	"strings"
	"testing"
)

// TestKindTablesInSync pins the three places a message kind must be
// registered — the String table, the maxKind* boundary constants and the
// kindFloors version-gating table — against each other. A new kind missing
// from any one of them fails here, complementing the wirekind analyzer
// (which proves the same property statically in cmd/di-lint): the analyzer
// catches the omission at lint time, this test catches it even when the
// lint step is skipped.
func TestKindTablesInSync(t *testing.T) {
	if len(kindFloors) != int(maxKind) {
		t.Fatalf("kindFloors has %d entries, maxKind is %d: a kind is missing from (or beyond) the gating table", len(kindFloors), maxKind)
	}
	for k := Kind(1); k <= maxKind; k++ {
		floor, ok := kindFloors[k]
		if !ok {
			t.Errorf("kind %d (%v) is below maxKind but absent from kindFloors", k, k)
			continue
		}
		if floor < Version1 || floor > LatestVersion {
			t.Errorf("kind %v floor %d outside [%d, %d]", k, floor, Version1, LatestVersion)
		}
		if s := k.String(); strings.HasPrefix(s, "Kind(") {
			t.Errorf("kind %d is registered in kindFloors but missing from the String table (got %q)", k, s)
		}
		// MinVersion is the public face of the table; it must agree.
		if got, ok := MinVersion(k); !ok || got != floor {
			t.Errorf("MinVersion(%v) = %d, %v; want %d, true", k, got, ok, floor)
		}
	}

	// The boundary constants gate the same kinds the floors do: everything
	// at or below maxKindV2 must float at v1, the batch kinds between
	// maxKindV2 and maxKindV3 at v3, and so on. A kind whose floor
	// disagrees with its position in the const block fails here.
	for k := Kind(1); k <= maxKind; k++ {
		want := Version1
		switch {
		case k > maxKindV6:
			want = Version7
		case k > maxKindV5:
			want = Version6
		case k > maxKindV4:
			want = Version5
		case k > maxKindV3:
			want = Version4
		case k > maxKindV2:
			want = Version3
		}
		if kindFloors[k] != want {
			t.Errorf("kind %v: floor %d disagrees with maxKind* boundaries (want %d)", k, kindFloors[k], want)
		}
	}

	// Beyond the table nothing exists: the kind after the last registered
	// one must be unknown to both MinVersion and the String table.
	next := maxKind + 1
	if _, ok := MinVersion(next); ok {
		t.Errorf("MinVersion(%d) unexpectedly known; maxKind is stale", next)
	}
	if s := next.String(); !strings.HasPrefix(s, "Kind(") {
		t.Errorf("Kind(%d).String() = %q; a named kind beyond maxKind means the boundary constant is stale", next, s)
	}
	if _, ok := MinVersion(0); ok {
		t.Error("MinVersion(0) unexpectedly known; kind 0 is reserved as invalid")
	}
}
