package wire

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func TestFrameRoundTrip(t *testing.T) {
	m := Message{Kind: KindReports, Request: 7, Payload: []byte{1, 2, 3}}
	got, err := Decode(m.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Kind != m.Kind || got.Request != 7 || !bytes.Equal(got.Payload, m.Payload) {
		t.Fatalf("round trip: %+v", got)
	}
	if m.EncodedSize() != len(m.Encode()) {
		t.Fatal("EncodedSize disagrees with Encode")
	}
}

func TestWithRequest(t *testing.T) {
	m := Message{Kind: KindShipAll}.WithRequest(41)
	if m.Request != 41 {
		t.Fatalf("Request = %d", m.Request)
	}
	got, err := Decode(m.Encode())
	if err != nil || got.Request != 41 {
		t.Fatalf("decoded %+v, %v", got, err)
	}
}

// TestDecodeVersion1Frame checks the compatibility path: a version-1 frame
// (8-byte header, no request ID) still decodes, reading back with Request 0.
func TestDecodeVersion1Frame(t *testing.T) {
	payload := []byte("v1")
	v1 := make([]byte, headerSizeV1+len(payload))
	v1[0] = 0xA7
	v1[1] = 0xD1
	v1[2] = Version1
	v1[3] = uint8(KindReports)
	v1[4] = uint8(len(payload))
	copy(v1[headerSizeV1:], payload)

	got, err := Decode(v1)
	if err != nil {
		t.Fatal(err)
	}
	if got.Kind != KindReports || got.Request != 0 || !bytes.Equal(got.Payload, payload) {
		t.Fatalf("v1 decode: %+v", got)
	}
	stream, err := ReadMessage(bytes.NewReader(v1))
	if err != nil {
		t.Fatal(err)
	}
	if stream.Kind != KindReports || stream.Request != 0 || !bytes.Equal(stream.Payload, payload) {
		t.Fatalf("v1 stream decode: %+v", stream)
	}
}

func TestFrameErrors(t *testing.T) {
	good := Message{Kind: KindShipAll}.Encode()

	tests := []struct {
		name   string
		mutate func([]byte) []byte
		want   error
	}{
		{name: "short", mutate: func(b []byte) []byte { return b[:4] }, want: ErrTruncated},
		{name: "bad magic", mutate: func(b []byte) []byte { b[0] = 0; return b }, want: ErrBadMagic},
		{name: "bad version", mutate: func(b []byte) []byte { b[2] = 9; return b }, want: ErrBadVersion},
		{name: "zero kind", mutate: func(b []byte) []byte { b[3] = 0; return b }, want: ErrBadKind},
		{name: "unknown kind", mutate: func(b []byte) []byte { b[3] = 200; return b }, want: ErrBadKind},
		{name: "length mismatch", mutate: func(b []byte) []byte { b[8] = 5; return b }, want: ErrTruncated},
		{name: "truncated v2 header", mutate: func(b []byte) []byte { return b[:10] }, want: ErrTruncated},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			b := append([]byte(nil), good...)
			if _, err := Decode(tt.mutate(b)); !errors.Is(err, tt.want) {
				t.Fatalf("err = %v, want %v", err, tt.want)
			}
		})
	}
}

func TestReadWriteMessage(t *testing.T) {
	var buf bytes.Buffer
	msgs := []Message{
		{Kind: KindShipAll, Request: 1},
		{Kind: KindReports, Request: 2, Payload: []byte("abc")},
		{Kind: KindShutdown},
	}
	for _, m := range msgs {
		if err := WriteMessage(&buf, m); err != nil {
			t.Fatal(err)
		}
	}
	for _, want := range msgs {
		got, err := ReadMessage(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if got.Kind != want.Kind || got.Request != want.Request || !bytes.Equal(got.Payload, want.Payload) {
			t.Fatalf("got %+v, want %+v", got, want)
		}
	}
	if _, err := ReadMessage(&buf); err == nil {
		t.Fatal("expected EOF-ish error on empty stream")
	}
}

func TestReadMessageRejectsGarbage(t *testing.T) {
	if _, err := ReadMessage(bytes.NewReader([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9})); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestKindStrings(t *testing.T) {
	for k := KindWBFQuery; k <= maxKind; k++ {
		if k.String() == "" || k.String()[0] == 'K' {
			t.Fatalf("kind %d missing name: %q", k, k.String())
		}
	}
	if Kind(99).String() != "Kind(99)" {
		t.Fatal("unknown kind string wrong")
	}
}

func TestPropertyFrameRoundTrip(t *testing.T) {
	f := func(kindRaw uint8, request uint32, payload []byte) bool {
		kind := Kind(kindRaw%uint8(maxKind)) + 1
		m := Message{Kind: kind, Request: request, Payload: payload}
		got, err := Decode(m.Encode())
		return err == nil && got.Kind == kind && got.Request == request && bytes.Equal(got.Payload, payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestZigzag(t *testing.T) {
	for _, v := range []int64{0, 1, -1, 63, -64, 1 << 40, -(1 << 40)} {
		if got := unzigzag(zigzag(v)); got != v {
			t.Fatalf("zigzag(%d) round-tripped to %d", v, got)
		}
	}
}

func TestReaderGuards(t *testing.T) {
	// A count field claiming more elements than the buffer could hold must
	// be rejected rather than allocated.
	var w writer
	w.uvarint(1 << 40)
	r := &reader{buf: w.buf}
	if r.count(8); r.err == nil {
		t.Fatal("implausible count accepted")
	}

	// Truncated varint.
	r = &reader{buf: []byte{0x80}}
	if r.uvarint(); r.err == nil {
		t.Fatal("truncated varint accepted")
	}

	// Short u64 / u8.
	r = &reader{buf: []byte{1, 2}}
	if r.u64(); r.err == nil {
		t.Fatal("short u64 accepted")
	}
	r = &reader{buf: nil}
	if r.u8(); r.err == nil {
		t.Fatal("u8 on empty accepted")
	}

	// Trailing bytes.
	r = &reader{buf: []byte{1, 2}}
	r.u8()
	if err := r.done(); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}
