// Package wire defines the binary message format exchanged between the
// data center and base stations. Every message knows its encoded size, which
// is what the communication-cost experiments (Figure 4c) meter: the paper's
// central claim is that shipping a filter out and (ID, weight) pairs back is
// orders of magnitude cheaper than shipping raw pattern data in.
//
// Frame layout, version 2 (little endian):
//
//	magic     uint16  0xD1A7 ("DI-matching")
//	version   uint8   2
//	kind      uint8
//	requestID uint32  correlates a reply with the request that caused it
//	length    uint32  payload byte count
//	payload   [length]byte
//
// The request ID is what lets many searches share one link: the data center
// stamps every outgoing request with a fresh ID, stations echo it on their
// reply, and a per-link dispatcher routes each reply to the owning search.
// ID 0 is reserved for fire-and-forget frames (shutdown) that expect no
// reply. Version-1 frames (no requestID field) are still decoded — they read
// back with request ID 0 — so old peers can at least shut down cleanly.
//
// Payloads use unsigned varints for counts and small integers, raw 64-bit
// words for bit arrays.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Kind discriminates message payloads.
type Kind uint8

// Message kinds. The three query kinds correspond to the three strategies
// under evaluation (WBF, BF baseline, naive baseline).
const (
	// KindWBFQuery disseminates a Weighted Bloom Filter to stations.
	KindWBFQuery Kind = iota + 1
	// KindBFQuery disseminates a plain Bloom filter plus pipeline params.
	KindBFQuery
	// KindShipAll asks a station to ship its entire local dataset (naive).
	KindShipAll
	// KindReports carries (person, weight-pointers) matches to the center.
	KindReports
	// KindBFMatches carries bare person IDs (BF baseline has no weights).
	KindBFMatches
	// KindNaiveData carries raw (person, local pattern) tuples.
	KindNaiveData
	// KindFetch asks a station for specific persons' local patterns (the
	// verification phase); the station answers with KindNaiveData.
	KindFetch
	// KindShutdown tells a station loop to exit cleanly.
	KindShutdown
	// KindIngest adds (or replaces) resident patterns at a station; the
	// station answers with KindAck.
	KindIngest
	// KindEvict removes residents from a station; answered with KindAck.
	KindEvict
	// KindStats asks a station for its resident count and storage footprint;
	// answered with KindStatsReply.
	KindStats
	// KindStatsReply carries one station's resident count and storage bytes.
	KindStatsReply
	// KindAck acknowledges an applied mutation (ingest or evict).
	KindAck

	maxKind = KindAck
)

func (k Kind) String() string {
	switch k {
	case KindWBFQuery:
		return "wbf-query"
	case KindBFQuery:
		return "bf-query"
	case KindShipAll:
		return "ship-all"
	case KindReports:
		return "reports"
	case KindBFMatches:
		return "bf-matches"
	case KindNaiveData:
		return "naive-data"
	case KindFetch:
		return "fetch"
	case KindShutdown:
		return "shutdown"
	case KindIngest:
		return "ingest"
	case KindEvict:
		return "evict"
	case KindStats:
		return "stats"
	case KindStatsReply:
		return "stats-reply"
	case KindAck:
		return "ack"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

const (
	magic        = uint16(0xD1A7)
	version1     = uint8(1)
	version2     = uint8(2)
	headerSizeV1 = 8
	headerSize   = 12
	// MaxPayload bounds a single frame; large enough for city-scale naive
	// shipments, small enough to reject corrupt length fields.
	MaxPayload = 1 << 30
)

// Errors returned by frame decoding.
var (
	ErrBadMagic    = errors.New("wire: bad magic")
	ErrBadVersion  = errors.New("wire: unsupported version")
	ErrBadKind     = errors.New("wire: unknown message kind")
	ErrTruncated   = errors.New("wire: truncated message")
	ErrOversized   = errors.New("wire: payload exceeds limit")
	errShortBuffer = errors.New("wire: short buffer")
)

// Message is one framed unit on a link. Request correlates a reply with the
// request that caused it; 0 marks fire-and-forget frames.
type Message struct {
	Kind    Kind
	Request uint32
	Payload []byte
}

// WithRequest returns a copy of the message stamped with the given request
// ID. The payload is shared, not copied.
func (m Message) WithRequest(id uint32) Message {
	m.Request = id
	return m
}

// EncodedSize returns the full frame size in bytes — the unit the cost
// meters count.
func (m Message) EncodedSize() int { return headerSize + len(m.Payload) }

// Encode renders the frame (always version 2).
func (m Message) Encode() []byte {
	out := make([]byte, headerSize+len(m.Payload))
	binary.LittleEndian.PutUint16(out[0:2], magic)
	out[2] = version2
	out[3] = uint8(m.Kind)
	binary.LittleEndian.PutUint32(out[4:8], m.Request)
	binary.LittleEndian.PutUint32(out[8:12], uint32(len(m.Payload)))
	copy(out[headerSize:], m.Payload)
	return out
}

// parseHeader validates the fixed fields shared by Decode and ReadMessage.
// It returns the decoded kind/request/length plus the version's header size.
func parseHeader(hdr []byte) (kind Kind, request uint32, n uint32, size int, err error) {
	if binary.LittleEndian.Uint16(hdr[0:2]) != magic {
		return 0, 0, 0, 0, ErrBadMagic
	}
	switch hdr[2] {
	case version2:
		size = headerSize
		request = binary.LittleEndian.Uint32(hdr[4:8])
		n = binary.LittleEndian.Uint32(hdr[8:12])
	case version1:
		size = headerSizeV1
		n = binary.LittleEndian.Uint32(hdr[4:8])
	default:
		return 0, 0, 0, 0, ErrBadVersion
	}
	kind = Kind(hdr[3])
	if kind == 0 || kind > maxKind {
		return 0, 0, 0, 0, ErrBadKind
	}
	if n > MaxPayload {
		return 0, 0, 0, 0, ErrOversized
	}
	return kind, request, n, size, nil
}

// Decode parses a frame from b, which must contain exactly one frame.
// Version-1 and version-2 frames are both accepted.
func Decode(b []byte) (Message, error) {
	if len(b) < headerSizeV1 {
		return Message{}, ErrTruncated
	}
	hdr := b
	if len(hdr) > headerSize {
		hdr = hdr[:headerSize]
	}
	if len(hdr) < headerSize && len(b) >= 3 && b[2] == version2 {
		return Message{}, ErrTruncated
	}
	kind, request, n, size, err := parseHeader(hdr)
	if err != nil {
		return Message{}, err
	}
	if len(b) != size+int(n) {
		return Message{}, ErrTruncated
	}
	payload := make([]byte, n)
	copy(payload, b[size:])
	return Message{Kind: kind, Request: request, Payload: payload}, nil
}

// WriteMessage writes one frame to w.
func WriteMessage(w io.Writer, m Message) error {
	_, err := w.Write(m.Encode())
	return err
}

// ReadMessage reads exactly one frame from r, accepting version-1 and
// version-2 frames.
func ReadMessage(r io.Reader) (Message, error) {
	var hdr [headerSize]byte
	// Read the version-1 prefix first: both layouts share magic, version and
	// kind, and a v1 frame may legitimately end 4 bytes before a v2 header
	// would.
	if _, err := io.ReadFull(r, hdr[:headerSizeV1]); err != nil {
		return Message{}, err
	}
	if binary.LittleEndian.Uint16(hdr[0:2]) != magic {
		return Message{}, ErrBadMagic
	}
	if hdr[2] == version2 {
		if _, err := io.ReadFull(r, hdr[headerSizeV1:]); err != nil {
			return Message{}, fmt.Errorf("%w: %v", ErrTruncated, err)
		}
	}
	kind, request, n, _, err := parseHeader(hdr[:])
	if err != nil {
		return Message{}, err
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return Message{}, fmt.Errorf("%w: %v", ErrTruncated, err)
	}
	return Message{Kind: kind, Request: request, Payload: payload}, nil
}

// ---- payload buffer helpers ----

// writer accumulates a payload.
type writer struct {
	buf []byte
}

func (w *writer) uvarint(v uint64) {
	w.buf = binary.AppendUvarint(w.buf, v)
}

func (w *writer) u8(v uint8) { w.buf = append(w.buf, v) }

func (w *writer) u64(v uint64) {
	w.buf = binary.LittleEndian.AppendUint64(w.buf, v)
}

// reader consumes a payload, remembering the first error.
type reader struct {
	buf []byte
	off int
	err error
}

func (r *reader) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

func (r *reader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		r.fail(errShortBuffer)
		return 0
	}
	r.off += n
	return v
}

func (r *reader) u8() uint8 {
	if r.err != nil {
		return 0
	}
	if r.off >= len(r.buf) {
		r.fail(errShortBuffer)
		return 0
	}
	v := r.buf[r.off]
	r.off++
	return v
}

func (r *reader) u64() uint64 {
	if r.err != nil {
		return 0
	}
	if r.off+8 > len(r.buf) {
		r.fail(errShortBuffer)
		return 0
	}
	v := binary.LittleEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return v
}

// count reads a length prefix and sanity-checks it against a per-element
// minimum size, so corrupt counts cannot trigger huge allocations.
func (r *reader) count(minElemBytes int) int {
	v := r.uvarint()
	if r.err != nil {
		return 0
	}
	remaining := len(r.buf) - r.off
	if minElemBytes < 1 {
		minElemBytes = 1
	}
	if v > uint64(remaining/minElemBytes)+1 {
		r.fail(fmt.Errorf("wire: count %d implausible for %d remaining bytes", v, remaining))
		return 0
	}
	return int(v)
}

func (r *reader) done() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.buf) {
		return fmt.Errorf("wire: %d trailing bytes", len(r.buf)-r.off)
	}
	return nil
}
