// Package wire defines the binary message format exchanged between the
// data center and base stations. Every message knows its encoded size, which
// is what the communication-cost experiments (Figure 4c) meter: the paper's
// central claim is that shipping a filter out and (ID, weight) pairs back is
// orders of magnitude cheaper than shipping raw pattern data in.
//
// Frame layout, versions 2 and 3 (little endian):
//
//	magic     uint16  0xD1A7 ("DI-matching")
//	version   uint8   2 or 3
//	kind      uint8
//	requestID uint32  correlates a reply with the request that caused it
//	length    uint32  payload byte count
//	payload   [length]byte
//
// The request ID is what lets many searches share one link: the data center
// stamps every outgoing request with a fresh ID, stations echo it on their
// reply, and a per-link dispatcher routes each reply to the owning search.
// ID 0 is reserved for fire-and-forget frames (shutdown) that expect no
// reply. Version-1 frames (no requestID field) are still decoded — they read
// back with request ID 0 — so old peers can at least shut down cleanly.
//
// Version 3 keeps the version-2 header byte-for-byte and adds the batch
// kinds (KindBatchQuery, KindBatchReply), which pack a whole search round
// into one exchange. Those kinds exist only from version 3: a batch kind in
// a frame stamped 1 or 2 is rejected with ErrBadKind, and Encode stamps
// batch frames version 3 and everything else version 2, so pre-batch peers
// keep decoding the frames a modern peer sends them — with one deliberate
// exception: StatsReply gained an optional trailing capability byte (see
// MaxVersion) that pre-batch decoders reject as trailing garbage, so in a
// rolling upgrade the data center must upgrade before its stations (the
// modern center decodes both payload forms; an old center cannot handshake
// an upgraded station). The center's per-epoch stats exchange doubles as
// version discovery, and it falls back to per-query version-2 frames for
// stations that never advertised version 3. See docs/WIRE.md for the full
// negotiation rules.
//
// Version 4 repeats the pattern for the replication layer: the header is
// unchanged and the dump kinds (KindDump, KindDumpReply) — the coordinator
// pulling a surviving replica's raw patterns during re-replication — exist
// only from version 4. A dump kind in a frame stamped 3 or below is
// rejected with ErrBadKind, Encode stamps dump frames version 4, and the
// coordinator only sends KindDump to stations whose stats reply advertised
// MaxVersion >= 4; older stations can still receive the KindIngest push
// half of re-replication, they just cannot be pulled from.
//
// Version 5 adds the summary kinds (KindSummary, KindSummaryReply) the same
// way: the coordinator pulls a station's routing summary — a compact Bloom
// digest of the resident patterns' accumulated cells — and probes it before
// fanning a search out, skipping stations whose summary admits no possible
// match. A summary kind in a frame stamped 4 or below is rejected with
// ErrBadKind, Encode stamps summary frames version 5, and the coordinator
// only sends KindSummary to stations that advertised MaxVersion >= 5;
// pre-v5 stations are simply never pruned — every search still visits them.
//
// Version 6 adds the routing kinds (KindRouteQuery, KindRouteReply) for the
// multi-tier coordinator topology: a root coordinator delegates a whole
// search round — raw queries plus the knobs to process them identically — to
// a region coordinator, which runs the full search path over its own
// stations and answers with raw per-person weight sums the root merges and
// ranks. A route kind in a frame stamped 5 or below is rejected with
// ErrBadKind, Encode stamps route frames version 6, and the root only sends
// KindRouteQuery to peers whose stats reply advertised MaxVersion >= 6 with
// the route-delegate capability flag set (StatsReply.Flags); everything else
// is searched directly, never pruned. docs/ROUTING.md covers the topology.
//
// Version 7 adds the adaptive-parameter kinds (KindParamUpdate,
// KindParamAck) for traffic-adaptive routing digests: the coordinator
// derives a Daisy-style per-group parameter plan from its observed query
// mix (internal/adapt) and ships it to stations, which rebuild their
// routing digest under the plan — same memory budget, re-partitioned — and
// acknowledge with the parameter epoch. A parameter kind in a frame stamped
// 6 or below is rejected with ErrBadKind, Encode stamps parameter frames
// version 7, and the coordinator only sends KindParamUpdate to stations
// whose stats reply advertised MaxVersion >= 7 without the route-delegate
// flag; every other peer stays on the static table. Digests built under a
// plan self-describe their geometry in the KindSummaryReply payload (the
// hash-count field is 0 and a geometry table follows the words), so a
// received digest probes correctly whatever parameter epoch it came from.
//
// Payloads use unsigned varints for counts and small integers, raw 64-bit
// words for bit arrays.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Kind discriminates message payloads.
type Kind uint8

// Message kinds. The three query kinds correspond to the three strategies
// under evaluation (WBF, BF baseline, naive baseline).
const (
	// KindWBFQuery disseminates a Weighted Bloom Filter to stations.
	KindWBFQuery Kind = iota + 1
	// KindBFQuery disseminates a plain Bloom filter plus pipeline params.
	KindBFQuery
	// KindShipAll asks a station to ship its entire local dataset (naive).
	KindShipAll
	// KindReports carries (person, weight-pointers) matches to the center.
	KindReports
	// KindBFMatches carries bare person IDs (BF baseline has no weights).
	KindBFMatches
	// KindNaiveData carries raw (person, local pattern) tuples.
	KindNaiveData
	// KindFetch asks a station for specific persons' local patterns (the
	// verification phase); the station answers with KindNaiveData.
	KindFetch
	// KindShutdown tells a station loop to exit cleanly.
	KindShutdown
	// KindIngest adds (or replaces) resident patterns at a station; the
	// station answers with KindAck.
	KindIngest
	// KindEvict removes residents from a station; answered with KindAck.
	KindEvict
	// KindStats asks a station for its resident count and storage footprint;
	// answered with KindStatsReply.
	KindStats
	// KindStatsReply carries one station's resident count and storage bytes.
	KindStatsReply
	// KindAck acknowledges an applied mutation (ingest or evict).
	KindAck
	// KindBatchQuery packs one whole search round — the query-ID set and the
	// combined WBF covering all of them — into a single request (v3 only).
	KindBatchQuery
	// KindBatchReply answers a batch query with per-person reports covering
	// every query of the batch (v3 only).
	KindBatchReply
	// KindDump asks a station for the raw local patterns of specific persons
	// (or its whole store when the filter is empty) — the coordinator pulling
	// a surviving replica's copy during re-replication (v4 only).
	KindDump
	// KindDumpReply answers a dump with (person, local pattern) tuples plus
	// the reporting station's ID (v4 only).
	KindDumpReply
	// KindSummary asks a station for its routing summary — the Bloom digest
	// of its residents' accumulated cells the coordinator probes to prune
	// search fan-out (v5 only).
	KindSummary
	// KindSummaryReply carries one station's routing summary (v5 only).
	KindSummaryReply
	// KindRouteQuery delegates a whole search round — raw queries plus the
	// processing knobs — to a region coordinator, which fans it out over its
	// own stations (v6 only).
	KindRouteQuery
	// KindRouteReply answers a route query with the region's raw per-person
	// weight sums and routing counters (v6 only).
	KindRouteReply
	// KindParamUpdate ships an adaptive routing-digest parameter plan (or a
	// revert-to-static directive) to a station; the station rebuilds its
	// digest under the plan and answers with KindParamAck (v7 only).
	KindParamUpdate
	// KindParamAck acknowledges a parameter update, echoing the parameter
	// epoch and whether the plan was applied (v7 only).
	KindParamAck

	// maxKindV2 is the last kind a version-1/2 peer understands; the batch
	// kinds beyond it require version-3 frames, the dump kinds beyond those
	// require version-4 frames, the summary kinds version-5 frames, the
	// route kinds version-6 frames, and the parameter kinds version-7
	// frames.
	maxKindV2 = KindAck
	maxKindV3 = KindBatchReply
	maxKindV4 = KindDumpReply
	maxKindV5 = KindSummaryReply
	maxKindV6 = KindRouteReply
	maxKind   = KindParamAck
)

func (k Kind) String() string {
	switch k {
	case KindWBFQuery:
		return "wbf-query"
	case KindBFQuery:
		return "bf-query"
	case KindShipAll:
		return "ship-all"
	case KindReports:
		return "reports"
	case KindBFMatches:
		return "bf-matches"
	case KindNaiveData:
		return "naive-data"
	case KindFetch:
		return "fetch"
	case KindShutdown:
		return "shutdown"
	case KindIngest:
		return "ingest"
	case KindEvict:
		return "evict"
	case KindStats:
		return "stats"
	case KindStatsReply:
		return "stats-reply"
	case KindAck:
		return "ack"
	case KindBatchQuery:
		return "batch-query"
	case KindBatchReply:
		return "batch-reply"
	case KindDump:
		return "dump"
	case KindDumpReply:
		return "dump-reply"
	case KindSummary:
		return "summary"
	case KindSummaryReply:
		return "summary-reply"
	case KindRouteQuery:
		return "route-query"
	case KindRouteReply:
		return "route-reply"
	case KindParamUpdate:
		return "param-update"
	case KindParamAck:
		return "param-ack"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Protocol versions. Version1 frames lack the requestID field; Version2
// added it; Version3 added the batch kinds with an unchanged header;
// Version4 added the dump kinds, Version5 the summary kinds, Version6 the
// route kinds and Version7 the adaptive-parameter kinds, each again with an
// unchanged header. A receiver accepts any version up to Version7.
const (
	Version1 = uint8(1)
	Version2 = uint8(2)
	Version3 = uint8(3)
	Version4 = uint8(4)
	Version5 = uint8(5)
	Version6 = uint8(6)
	Version7 = uint8(7)
	// LatestVersion is the highest version this codec speaks — what a
	// station advertises in its StatsReply.
	LatestVersion = Version7
)

// kindFloors is the version-gating table: the lowest frame version each
// kind may travel in. A kind absent from this table does not exist, and a
// kind in a frame stamped below its floor is as unknown as kind 200 would
// be (ErrBadKind) — that is what stops an old peer from silently accepting
// a frame it cannot interpret. Every Kind constant MUST be registered here,
// in the String table, and below maxKind; the wirekind analyzer
// (cmd/di-lint) checks the first two mechanically and TestKindTablesInSync
// pins all three against each other at runtime.
var kindFloors = map[Kind]uint8{
	KindWBFQuery:     Version1,
	KindBFQuery:      Version1,
	KindShipAll:      Version1,
	KindReports:      Version1,
	KindBFMatches:    Version1,
	KindNaiveData:    Version1,
	KindFetch:        Version1,
	KindShutdown:     Version1,
	KindIngest:       Version1,
	KindEvict:        Version1,
	KindStats:        Version1,
	KindStatsReply:   Version1,
	KindAck:          Version1,
	KindBatchQuery:   Version3,
	KindBatchReply:   Version3,
	KindDump:         Version4,
	KindDumpReply:    Version4,
	KindSummary:      Version5,
	KindSummaryReply: Version5,
	KindRouteQuery:   Version6,
	KindRouteReply:   Version6,
	KindParamUpdate:  Version7,
	KindParamAck:     Version7,
}

// MinVersion returns the lowest frame version the kind may appear in, and
// false for kinds this codec does not know.
func MinVersion(k Kind) (uint8, bool) {
	v, ok := kindFloors[k]
	return v, ok
}

const (
	magic        = uint16(0xD1A7)
	headerSizeV1 = 8
	headerSize   = 12
	// MaxPayload bounds a single frame; large enough for city-scale naive
	// shipments, small enough to reject corrupt length fields.
	MaxPayload = 1 << 30
	// MaxBatchQueries bounds the query count of one batch frame, so a
	// corrupt count is rejected before any allocation.
	MaxBatchQueries = 4096
)

// Errors returned by frame decoding.
var (
	ErrBadMagic   = errors.New("wire: bad magic")
	ErrBadVersion = errors.New("wire: unsupported version")
	ErrBadKind    = errors.New("wire: unknown message kind")
	ErrTruncated  = errors.New("wire: truncated message")
	ErrOversized  = errors.New("wire: payload exceeds limit")
	// ErrBatchTooLarge rejects a batch frame declaring more than
	// MaxBatchQueries queries (or an encode request exceeding it).
	ErrBatchTooLarge = errors.New("wire: batch query count exceeds limit")
	// ErrBatchMismatch rejects a batch payload whose parts disagree — a
	// weight entry referencing a query the batch never declared.
	ErrBatchMismatch = errors.New("wire: batch payload inconsistent")
	errShortBuffer   = errors.New("wire: short buffer")
)

// Message is one framed unit on a link. Request correlates a reply with the
// request that caused it; 0 marks fire-and-forget frames. Version records
// the frame version a decoded message arrived in (0 on locally constructed
// messages, where Encode picks the version from the kind).
type Message struct {
	Kind    Kind
	Request uint32
	Version uint8
	Payload []byte
}

// WithRequest returns a copy of the message stamped with the given request
// ID. The payload is shared, not copied.
func (m Message) WithRequest(id uint32) Message {
	m.Request = id
	return m
}

// EncodedSize returns the full frame size in bytes — the unit the cost
// meters count.
func (m Message) EncodedSize() int { return headerSize + len(m.Payload) }

// encodeVersion resolves the version byte a frame is stamped with: the
// kind's gating floor (kindFloors) is the minimum — parameter kinds version
// 7, route kinds version 6, summary kinds version 5, dump kinds version 4,
// batch kinds version 3 — and everything else defaults to version 2 so
// pre-batch peers keep decoding it. An explicit Version in [2,7] overrides
// the default (but never below a kind's floor); version-1 encoding is not
// supported — v1 is a decode-compatibility floor only.
func (m Message) encodeVersion() uint8 {
	v := m.Version
	if v < Version2 || v > LatestVersion {
		v = Version2
	}
	if floor, ok := kindFloors[m.Kind]; ok && v < floor {
		v = floor
	}
	return v
}

// Encode renders the frame. Parameter kinds are stamped version 7, route
// kinds version 6, summary kinds version 5, dump kinds version 4, batch
// kinds version 3, everything else version 2 (see encodeVersion).
func (m Message) Encode() []byte {
	out := make([]byte, 0, headerSize+len(m.Payload))
	return m.AppendFrame(out)
}

// AppendFrame appends the encoded frame to dst and returns the extended
// slice — the pooled-buffer variant of Encode for send paths that reuse one
// buffer across frames (transport's TCP link). With sufficient capacity it
// performs no allocation.
//
//dimatch:noalloc
func (m Message) AppendFrame(dst []byte) []byte {
	buf := dst[:len(dst)]
	var hdr [headerSize]byte
	binary.LittleEndian.PutUint16(hdr[0:2], magic)
	hdr[2] = m.encodeVersion()
	hdr[3] = uint8(m.Kind)
	binary.LittleEndian.PutUint32(hdr[4:8], m.Request)
	binary.LittleEndian.PutUint32(hdr[8:12], uint32(len(m.Payload)))
	buf = append(buf, hdr[:]...)
	return append(buf, m.Payload...)
}

// parseHeader validates the fixed fields shared by Decode and ReadMessage.
// It returns the decoded kind/request/length plus the version's header size.
func parseHeader(hdr []byte) (kind Kind, request uint32, n uint32, version uint8, size int, err error) {
	if binary.LittleEndian.Uint16(hdr[0:2]) != magic {
		return 0, 0, 0, 0, 0, ErrBadMagic
	}
	version = hdr[2]
	switch version {
	case Version2, Version3, Version4, Version5, Version6, Version7:
		size = headerSize
		request = binary.LittleEndian.Uint32(hdr[4:8])
		n = binary.LittleEndian.Uint32(hdr[8:12])
	case Version1:
		size = headerSizeV1
		n = binary.LittleEndian.Uint32(hdr[4:8])
	default:
		return 0, 0, 0, 0, 0, ErrBadVersion
	}
	kind = Kind(hdr[3])
	// The batch kinds exist only from version 3, the dump kinds only from
	// version 4, the summary kinds only from version 5, the route kinds only
	// from version 6 and the parameter kinds only from version 7
	// (kindFloors): a newer kind in an older frame is as unknown as kind 200
	// would be.
	if floor, ok := kindFloors[kind]; !ok || version < floor {
		return 0, 0, 0, 0, 0, ErrBadKind
	}
	if n > MaxPayload {
		return 0, 0, 0, 0, 0, ErrOversized
	}
	return kind, request, n, version, size, nil
}

// Decode parses a frame from b, which must contain exactly one frame.
// Frames of any version up to Version7 are accepted; the version is
// recorded on the returned message.
func Decode(b []byte) (Message, error) {
	if len(b) < headerSizeV1 {
		return Message{}, ErrTruncated
	}
	hdr := b
	if len(hdr) > headerSize {
		hdr = hdr[:headerSize]
	}
	if len(hdr) < headerSize && len(b) >= 3 && b[2] >= Version2 {
		return Message{}, ErrTruncated
	}
	kind, request, n, version, size, err := parseHeader(hdr)
	if err != nil {
		return Message{}, err
	}
	if len(b) != size+int(n) {
		return Message{}, ErrTruncated
	}
	payload := make([]byte, n)
	copy(payload, b[size:])
	return Message{Kind: kind, Request: request, Version: version, Payload: payload}, nil
}

// WriteMessage writes one frame to w.
func WriteMessage(w io.Writer, m Message) error {
	_, err := w.Write(m.Encode())
	return err
}

// ReadMessage reads exactly one frame from r, accepting frames of any
// version up to Version7.
func ReadMessage(r io.Reader) (Message, error) {
	var hdr [headerSize]byte
	// Read the version-1 prefix first: all layouts share magic, version and
	// kind, and a v1 frame may legitimately end 4 bytes before a v2/v3
	// header would.
	if _, err := io.ReadFull(r, hdr[:headerSizeV1]); err != nil {
		return Message{}, err
	}
	if binary.LittleEndian.Uint16(hdr[0:2]) != magic {
		return Message{}, ErrBadMagic
	}
	if hdr[2] >= Version2 {
		if _, err := io.ReadFull(r, hdr[headerSizeV1:]); err != nil {
			return Message{}, fmt.Errorf("%w: %v", ErrTruncated, err)
		}
	}
	kind, request, n, version, _, err := parseHeader(hdr[:])
	if err != nil {
		return Message{}, err
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return Message{}, fmt.Errorf("%w: %v", ErrTruncated, err)
	}
	return Message{Kind: kind, Request: request, Version: version, Payload: payload}, nil
}

// ---- payload buffer helpers ----

// writer accumulates a payload.
type writer struct {
	buf []byte
}

func (w *writer) uvarint(v uint64) {
	w.buf = binary.AppendUvarint(w.buf, v)
}

func (w *writer) u8(v uint8) { w.buf = append(w.buf, v) }

func (w *writer) u64(v uint64) {
	w.buf = binary.LittleEndian.AppendUint64(w.buf, v)
}

// reader consumes a payload, remembering the first error.
type reader struct {
	buf []byte
	off int
	err error
}

func (r *reader) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

func (r *reader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		r.fail(errShortBuffer)
		return 0
	}
	r.off += n
	return v
}

func (r *reader) u8() uint8 {
	if r.err != nil {
		return 0
	}
	if r.off >= len(r.buf) {
		r.fail(errShortBuffer)
		return 0
	}
	v := r.buf[r.off]
	r.off++
	return v
}

func (r *reader) u64() uint64 {
	if r.err != nil {
		return 0
	}
	if r.off+8 > len(r.buf) {
		r.fail(errShortBuffer)
		return 0
	}
	v := binary.LittleEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return v
}

// count reads a length prefix and sanity-checks it against a per-element
// minimum size, so corrupt counts cannot trigger huge allocations.
func (r *reader) count(minElemBytes int) int {
	v := r.uvarint()
	if r.err != nil {
		return 0
	}
	remaining := len(r.buf) - r.off
	if minElemBytes < 1 {
		minElemBytes = 1
	}
	if v > uint64(remaining/minElemBytes)+1 {
		r.fail(fmt.Errorf("wire: count %d implausible for %d remaining bytes", v, remaining))
		return 0
	}
	return int(v)
}

func (r *reader) done() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.buf) {
		return fmt.Errorf("wire: %d trailing bytes", len(r.buf)-r.off)
	}
	return nil
}
