package wire

import (
	"encoding/hex"
	"testing"

	"dimatch/internal/core"
	"dimatch/internal/index"
	"dimatch/internal/pattern"
)

// workedParamPlan is the adaptive plan carried by docs/WIRE.md's worked v7
// KindParamUpdate frame: three position groups with growing bit weights,
// re-fitted hash counts, and coarsening quanta.
func workedParamPlan() *index.Plan {
	return &index.Plan{
		Epoch:  2,
		Seed:   0x0417,
		Length: 3,
		Groups: []index.PlanGroup{
			{Weight: 2, Hashes: 5, Quantum: 1},
			{Weight: 3, Hashes: 6, Quantum: 4},
			{Weight: 4, Hashes: 7, Quantum: 16},
		},
	}
}

// TestWorkedParamUpdateHex pins the worked v7 frame from docs/WIRE.md to the
// live encoder, byte for byte: if the encoding changes shape, the doc and
// this pin fail together.
func TestWorkedParamUpdateHex(t *testing.T) {
	m, err := EncodeParamUpdate(ParamUpdate{Epoch: 2, Plan: workedParamPlan()})
	if err != nil {
		t.Fatal(err)
	}
	got := hex.EncodeToString(m.WithRequest(42).Encode())
	if got != workedParamUpdateHex {
		t.Fatalf("worked param-update frame drifted from docs/WIRE.md:\n got  %s\n want %s", got, workedParamUpdateHex)
	}
}

func TestParamUpdateRoundtrip(t *testing.T) {
	plan := workedParamPlan()
	m, err := EncodeParamUpdate(ParamUpdate{Epoch: plan.Epoch, Plan: plan})
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodeParamUpdate(m)
	if err != nil {
		t.Fatal(err)
	}
	if out.Epoch != plan.Epoch || out.Plan == nil || !out.Plan.Equal(plan) {
		t.Fatalf("roundtrip changed the update: %+v", out)
	}

	// A nil plan is the revert-to-static order; it must survive too.
	rm, err := EncodeParamUpdate(ParamUpdate{Epoch: 9})
	if err != nil {
		t.Fatal(err)
	}
	rev, err := DecodeParamUpdate(rm)
	if err != nil {
		t.Fatal(err)
	}
	if rev.Epoch != 9 || rev.Plan != nil {
		t.Fatalf("revert roundtrip changed the update: %+v", rev)
	}
}

// TestParamUpdateVersionGating pins the frame to wire v7: the encoder stamps
// Version7, and a peer replaying the same kind under an older version header
// must be rejected by the floor table.
func TestParamUpdateVersionGating(t *testing.T) {
	m, err := EncodeParamUpdate(ParamUpdate{Epoch: 1})
	if err != nil {
		t.Fatal(err)
	}
	frame := m.Encode()
	if frame[2] != Version7 {
		t.Fatalf("param-update stamped version %d, want %d", frame[2], Version7)
	}
	old := append([]byte(nil), frame...)
	old[2] = Version6
	if _, err := Decode(old); err == nil {
		t.Fatal("param-update accepted under a v6 header")
	}
	ack := EncodeParamAck(ParamAck{Station: 1, Epoch: 1, Applied: true}).Encode()
	if ack[2] != Version7 {
		t.Fatalf("param-ack stamped version %d, want %d", ack[2], Version7)
	}
}

func TestEncodeParamUpdateRejects(t *testing.T) {
	plan := workedParamPlan()
	if _, err := EncodeParamUpdate(ParamUpdate{Epoch: plan.Epoch + 1, Plan: plan}); err == nil {
		t.Fatal("epoch disagreeing with plan epoch accepted")
	}
	bad := plan.Clone()
	bad.Groups[1].Hashes = 0
	if _, err := EncodeParamUpdate(ParamUpdate{Epoch: bad.Epoch, Plan: bad}); err == nil {
		t.Fatal("zero-hash group accepted")
	}
}

func TestDecodeParamUpdateRejectsCorruption(t *testing.T) {
	plan := workedParamPlan()
	m, err := EncodeParamUpdate(ParamUpdate{Epoch: plan.Epoch, Plan: plan})
	if err != nil {
		t.Fatal(err)
	}
	corrupt := func(mutate func(p []byte)) Message {
		p := append([]byte(nil), m.Payload...)
		mutate(p)
		return Message{Kind: KindParamUpdate, Payload: p}
	}
	// Payload layout: epoch u64 | marker u8 | seed u64 | length uvarint |
	// (weight uvarint, hashes u8, quantum uvarint) per group.
	cases := map[string]Message{
		"non-boolean plan marker": corrupt(func(p []byte) { p[8] = 2 }),
		"zero-hash group":         corrupt(func(p []byte) { p[19] = 0 }),
		"truncated mid-plan":      {Kind: KindParamUpdate, Payload: m.Payload[:len(m.Payload)-2]},
		"trailing garbage":        {Kind: KindParamUpdate, Payload: append(append([]byte(nil), m.Payload...), 0)},
		"wrong kind":              {Kind: KindAck, Payload: m.Payload},
	}
	for name, msg := range cases {
		if _, err := DecodeParamUpdate(msg); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
	// A group count far beyond the remaining bytes must trip the count
	// guard, and one beyond MaxPlanGroups the explicit bound.
	var w writer
	w.u64(1)
	w.u8(1)
	w.u64(0)
	w.uvarint(uint64(index.MaxPlanGroups) + 1)
	if _, err := DecodeParamUpdate(Message{Kind: KindParamUpdate, Payload: w.buf}); err == nil {
		t.Error("oversized group count accepted")
	}
}

func TestParamAckRoundtrip(t *testing.T) {
	for _, ack := range []ParamAck{
		{Station: 7, Epoch: 3, Applied: true},
		{Station: 0, Epoch: 12, Applied: false},
	} {
		out, err := DecodeParamAck(EncodeParamAck(ack))
		if err != nil {
			t.Fatal(err)
		}
		if out != ack {
			t.Fatalf("roundtrip changed the ack: %+v vs %+v", out, ack)
		}
	}
	m := EncodeParamAck(ParamAck{Station: 1, Epoch: 1, Applied: true})
	bad := append([]byte(nil), m.Payload...)
	bad[len(bad)-1] = 2
	if _, err := DecodeParamAck(Message{Kind: KindParamAck, Payload: bad}); err == nil {
		t.Fatal("non-boolean applied marker accepted")
	}
	if _, err := DecodeParamAck(Message{Kind: KindAck, Payload: m.Payload}); err == nil {
		t.Fatal("wrong kind accepted")
	}
}

// TestAdaptiveSummaryRoundtrip covers the v7 extension of the digest codec:
// an adaptive digest ships its epoch and per-group geometry table after the
// words, reconstructs into an equivalent summary, and keeps answering probes
// identically — while static digests stay byte-identical to their v5
// encoding.
func TestAdaptiveSummaryRoundtrip(t *testing.T) {
	locals := make([]pattern.Pattern, 0, 8)
	for i := 0; i < 8; i++ {
		base := int64(i*37 + 5)
		locals = append(locals, pattern.Pattern{base, base * 2, base + 90, base % 17})
	}
	plan := &index.Plan{
		Epoch:  4,
		Seed:   31,
		Length: 4,
		Groups: []index.PlanGroup{
			{Weight: 1, Hashes: 3, Quantum: 1},
			{Weight: 2, Hashes: 4, Quantum: 2},
			{Weight: 3, Hashes: 5, Quantum: 4},
			{Weight: 2, Hashes: 4, Quantum: 8},
		},
	}
	sum, err := index.BuildAdaptive(plan, 4, locals)
	if err != nil {
		t.Fatal(err)
	}
	if !sum.Adaptive() || sum.AdaptiveEpoch() != 4 {
		t.Fatalf("BuildAdaptive produced a non-adaptive summary (epoch %d)", sum.AdaptiveEpoch())
	}

	m := EncodeSummaryReply(sum, 8)
	sr, got, err := DecodeSummaryReply(m)
	if err != nil {
		t.Fatal(err)
	}
	if sr.Station != 8 || sr.Hashes != 0 || sr.ParamEpoch != 4 {
		t.Fatalf("adaptive reply header wrong: %+v", sr)
	}
	if !got.Adaptive() || got.AdaptiveEpoch() != 4 {
		t.Fatal("decoded summary lost adaptivity")
	}
	if got.Bits() != sum.Bits() || got.Inserted() != sum.Inserted() || got.SizeBytes() != sum.SizeBytes() {
		t.Fatalf("decoded summary geometry drifted: bits %d vs %d, inserted %d vs %d",
			got.Bits(), sum.Bits(), got.Inserted(), sum.Inserted())
	}
	gg, sg := got.Geometry(), sum.Geometry()
	if len(gg) != len(sg) {
		t.Fatalf("geometry table length %d vs %d", len(gg), len(sg))
	}
	for i := range gg {
		if gg[i] != sg[i] {
			t.Fatalf("group %d geometry drifted: %+v vs %+v", i, gg[i], sg[i])
		}
	}
	// The decoded digest must admit exactly what the original admits.
	for qi, q := range append(locals, pattern.Pattern{1, 2, 3, 4}) {
		probe, err := index.NewProbe(core.Query{ID: core.QueryID(qi + 1), Locals: []pattern.Pattern{q}}, 2, 3)
		if err != nil {
			t.Fatal(err)
		}
		if got.Admits(probe) != sum.Admits(probe) {
			t.Fatalf("decoded digest disagrees on %v", q)
		}
	}

	// Corruption: a truncated geometry table must be rejected, not read as
	// a static digest.
	bad := append([]byte(nil), m.Payload[:len(m.Payload)-1]...)
	if _, _, err := DecodeSummaryReply(Message{Kind: KindSummaryReply, Payload: bad}); err == nil {
		t.Fatal("truncated adaptive geometry accepted")
	}
}

// FuzzParamUpdate mutates the worked v7 rollout frame: any accepted frame
// must yield a plan that passes validation and survives a re-encode/decode
// roundtrip unchanged.
func FuzzParamUpdate(f *testing.F) {
	f.Add(mustHex(f, workedParamUpdateHex))
	if m, err := EncodeParamUpdate(ParamUpdate{Epoch: 5}); err == nil {
		f.Add(m.WithRequest(7).Encode())
	}
	f.Fuzz(func(t *testing.T, b []byte) {
		m, err := Decode(b)
		if err != nil || m.Kind != KindParamUpdate {
			return
		}
		pu, err := DecodeParamUpdate(m)
		if err != nil {
			return
		}
		if pu.Plan != nil {
			if err := pu.Plan.Validate(); err != nil {
				t.Fatalf("decoder let an invalid plan through: %v", err)
			}
		}
		enc, err := EncodeParamUpdate(pu)
		if err != nil {
			t.Fatalf("re-encode of accepted update failed: %v", err)
		}
		re, err := DecodeParamUpdate(enc)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if re.Epoch != pu.Epoch || (re.Plan == nil) != (pu.Plan == nil) {
			t.Fatalf("roundtrip changed the update: %+v vs %+v", re, pu)
		}
		if re.Plan != nil && !re.Plan.Equal(pu.Plan) {
			t.Fatalf("roundtrip changed the plan: %+v vs %+v", re.Plan, pu.Plan)
		}
	})
}
