package metrics

import (
	"reflect"
	"testing"
)

func TestStreamCountersSnapshot(t *testing.T) {
	var c StreamCounters
	c.Submitted.Store(10)
	c.Accepted.Store(7)
	c.Shed.Store(2)
	c.Rejected.Store(1)
	c.Blocked.Store(3)
	c.Rerouted.Store(4)
	c.Flushes.Store(5)
	c.FlushedPatterns.Store(14)
	c.FlushFailures.Store(1)
	c.TTLEvictions.Store(6)
	got := c.Snapshot()
	want := StreamStats{
		Submitted: 10, Accepted: 7, Shed: 2, Rejected: 1, Blocked: 3,
		Rerouted: 4, Flushes: 5, FlushedPatterns: 14, FlushFailures: 1,
		TTLEvictions: 6,
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Snapshot() = %+v, want %+v", got, want)
	}
	// The snapshot must be a copy: bumping the live counters afterwards
	// must not change it.
	c.Accepted.Add(100)
	if got.Accepted != 7 {
		t.Fatal("snapshot aliased the live counters")
	}
}

func TestMergeStreamStats(t *testing.T) {
	if MergeStreamStats(nil) != nil {
		t.Fatal("merge of nothing must be nil")
	}
	if MergeStreamStats([]*StreamStats{nil, nil}) != nil {
		t.Fatal("merge of only-nil parts must be nil")
	}

	a := &StreamStats{
		Submitted: 5, Accepted: 5, Flushes: 2, FlushedPatterns: 10,
		Stations: []StreamStationStats{
			{Station: 3, QueueDepth: 1, QueueCap: 8, Flushes: 1, FlushedPatterns: 4, LinkInFlight: 2},
			{Station: 7, QueueCap: 8, Flushes: 1, FlushedPatterns: 6},
		},
	}
	b := &StreamStats{
		Submitted: 4, Accepted: 3, Shed: 1, Blocked: 2, Rerouted: 1,
		FlushFailures: 1, TTLEvictions: 2, Flushes: 1, FlushedPatterns: 3,
		Stations: []StreamStationStats{
			{Station: 1, QueueCap: 4, Evictions: 2},
			{Station: 3, QueueDepth: 2, QueueCap: 8, LinkInFlight: 1},
		},
	}
	out := MergeStreamStats([]*StreamStats{a, nil, b})
	if out == nil {
		t.Fatal("merge returned nil with live parts")
	}
	if out.Submitted != 9 || out.Accepted != 8 || out.Shed != 1 || out.Blocked != 2 ||
		out.Rerouted != 1 || out.Flushes != 3 || out.FlushedPatterns != 13 ||
		out.FlushFailures != 1 || out.TTLEvictions != 2 {
		t.Fatalf("totals did not sum: %+v", out)
	}
	if len(out.Stations) != 3 {
		t.Fatalf("want 3 merged stations, got %+v", out.Stations)
	}
	for i, want := range []uint32{1, 3, 7} {
		if out.Stations[i].Station != want {
			t.Fatalf("stations not ascending: %+v", out.Stations)
		}
	}
	s3 := out.Stations[1]
	if s3.QueueDepth != 3 || s3.QueueCap != 16 || s3.Flushes != 1 || s3.FlushedPatterns != 4 {
		t.Fatalf("station 3 entries did not add: %+v", s3)
	}
	if s3.LinkInFlight != 2 {
		t.Fatalf("LinkInFlight must merge as max (one link, two observers): %+v", s3)
	}
	// Inputs must be untouched (the merge copies).
	if a.Stations[0].QueueDepth != 1 || b.Stations[1].QueueDepth != 2 {
		t.Fatal("merge mutated its inputs")
	}
}
