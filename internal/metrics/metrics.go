// Package metrics implements the evaluation measures of the paper's
// Section V: precision, recall and F1 over retrieved-vs-relevant person
// sets (Table II, Figure 4a), plus the CDF helper behind Figure 1b.
package metrics

import (
	"fmt"
	"sort"

	"dimatch/internal/core"
)

// Confusion counts retrieval outcomes. True negatives are not tracked; none
// of the paper's measures need them.
type Confusion struct {
	TP int // retrieved and relevant
	FP int // retrieved but not relevant
	FN int // relevant but not retrieved
}

// Evaluate scores a retrieved set against the relevant (ground truth) set.
func Evaluate(retrieved, relevant []core.PersonID) Confusion {
	rel := make(map[core.PersonID]bool, len(relevant))
	for _, p := range relevant {
		rel[p] = true
	}
	var c Confusion
	seen := make(map[core.PersonID]bool, len(retrieved))
	for _, p := range retrieved {
		if seen[p] {
			continue // duplicates in a ranking count once
		}
		seen[p] = true
		if rel[p] {
			c.TP++
		} else {
			c.FP++
		}
	}
	for _, p := range relevant {
		if !seen[p] {
			c.FN++
		}
	}
	return c
}

// Add accumulates another confusion (micro-averaging across queries).
func (c *Confusion) Add(o Confusion) {
	c.TP += o.TP
	c.FP += o.FP
	c.FN += o.FN
}

// Precision returns TP/(TP+FP); 1 when nothing was retrieved (vacuous).
func (c Confusion) Precision() float64 {
	if c.TP+c.FP == 0 {
		return 1
	}
	return float64(c.TP) / float64(c.TP+c.FP)
}

// Recall returns TP/(TP+FN); 1 when nothing was relevant (vacuous).
func (c Confusion) Recall() float64 {
	if c.TP+c.FN == 0 {
		return 1
	}
	return float64(c.TP) / float64(c.TP+c.FN)
}

// F1 returns the harmonic mean of precision and recall.
func (c Confusion) F1() float64 {
	p, r := c.Precision(), c.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// String renders the three measures the way Table II reports them.
func (c Confusion) String() string {
	return fmt.Sprintf("precision=%.2f recall=%.2f f1=%.2f", c.Precision(), c.Recall(), c.F1())
}

// CDFPoint is one step of an empirical distribution function.
type CDFPoint struct {
	X int     // value
	P float64 // P(X <= x)
}

// CDF computes the empirical distribution of integer observations, one
// point per distinct value (Figure 1b plots this over the number of similar
// local patterns).
func CDF(observations []int) []CDFPoint {
	if len(observations) == 0 {
		return nil
	}
	counts := make(map[int]int)
	for _, v := range observations {
		counts[v]++
	}
	values := make([]int, 0, len(counts))
	for v := range counts {
		values = append(values, v)
	}
	sort.Ints(values)
	out := make([]CDFPoint, 0, len(values))
	cum := 0
	for _, v := range values {
		cum += counts[v]
		out = append(out, CDFPoint{X: v, P: float64(cum) / float64(len(observations))})
	}
	return out
}
