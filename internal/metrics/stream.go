package metrics

import (
	"sort"
	"sync/atomic"
)

// StreamCounters is the live counter block of one streaming ingest
// pipeline. Every field is updated lock-free by the pipeline's workers —
// Submit callers, encoder workers, per-station appliers and the TTL
// evictor all bump their own counters concurrently — and Snapshot reads a
// consistent-enough point-in-time view for health reporting (each counter
// is individually exact; cross-counter invariants such as
// Accepted+Shed+Rejected == Submitted hold exactly only once the pipeline
// is quiescent).
type StreamCounters struct {
	// Submitted counts every Submit call, whatever its outcome.
	Submitted atomic.Uint64
	// Accepted counts submissions admitted into the pipeline.
	Accepted atomic.Uint64
	// Shed counts submissions dropped by shed-mode admission control
	// (Submit returned ErrOverloaded). Always 0 in block mode.
	Shed atomic.Uint64
	// Rejected counts submissions refused before admission: length
	// mismatches, all-zero patterns, closed pipeline, cancelled contexts.
	Rejected atomic.Uint64
	// Blocked counts block-mode submissions that had to wait for queue
	// space before being accepted (they are also counted in Accepted).
	Blocked atomic.Uint64
	// Rerouted counts pattern copies re-keyed to a different station after
	// a flush failure or a membership change retired their shard.
	Rerouted atomic.Uint64
	// Flushes / FlushedPatterns count successful flush exchanges and the
	// pattern copies they carried.
	Flushes         atomic.Uint64
	FlushedPatterns atomic.Uint64
	// FlushFailures counts pattern copies abandoned after exhausting their
	// flush retry budget — the only way an accepted copy is lost.
	FlushFailures atomic.Uint64
	// TTLEvictions counts persons evicted by the TTL deadline wheel.
	TTLEvictions atomic.Uint64
}

// Snapshot copies the counter block into a plain-value StreamStats with no
// per-station breakdown (the pipeline attaches that itself).
func (c *StreamCounters) Snapshot() StreamStats {
	return StreamStats{
		Submitted:       c.Submitted.Load(),
		Accepted:        c.Accepted.Load(),
		Shed:            c.Shed.Load(),
		Rejected:        c.Rejected.Load(),
		Blocked:         c.Blocked.Load(),
		Rerouted:        c.Rerouted.Load(),
		Flushes:         c.Flushes.Load(),
		FlushedPatterns: c.FlushedPatterns.Load(),
		FlushFailures:   c.FlushFailures.Load(),
		TTLEvictions:    c.TTLEvictions.Load(),
	}
}

// StreamStats is a point-in-time health snapshot of a streaming ingest
// pipeline: the pipeline-wide admission and flush counters plus a
// per-station breakdown of queue depth and flush/eviction activity. It is
// what Ingestor.Report returns and what Cluster.Stats surfaces (merged
// across every registered pipeline) in its Stream field.
type StreamStats struct {
	Submitted       uint64 `json:"submitted"`
	Accepted        uint64 `json:"accepted"`
	Shed            uint64 `json:"shed"`
	Rejected        uint64 `json:"rejected"`
	Blocked         uint64 `json:"blocked"`
	Rerouted        uint64 `json:"rerouted"`
	Flushes         uint64 `json:"flushes"`
	FlushedPatterns uint64 `json:"flushed_patterns"`
	FlushFailures   uint64 `json:"flush_failures"`
	TTLEvictions    uint64 `json:"ttl_evictions"`
	// Stations holds the per-station figures, ascending by station ID.
	Stations []StreamStationStats `json:"stations,omitempty"`
}

// StreamStationStats is one station shard's view of the pipeline.
type StreamStationStats struct {
	// Station is the shard's target station ID.
	Station uint32 `json:"station"`
	// QueueDepth is the number of pattern copies waiting in the shard's
	// bounded queue (including a batch being assembled); QueueCap is the
	// queue's capacity.
	QueueDepth int `json:"queue_depth"`
	QueueCap   int `json:"queue_cap"`
	// Flushes / FlushedPatterns count the shard's successful flush
	// exchanges and the pattern copies they carried.
	Flushes         uint64 `json:"flushes"`
	FlushedPatterns uint64 `json:"flushed_patterns"`
	// Evictions counts TTL evictions that named this station as a holder.
	Evictions uint64 `json:"evictions"`
	// LinkInFlight is the number of wire exchanges currently awaiting a
	// reply on the station's link — backlog past the pipeline's own queues
	// (0 when the cluster cannot observe the link).
	LinkInFlight int `json:"link_in_flight"`
}

// MergeStreamStats combines several pipelines' snapshots into one: totals
// sum, per-station entries merge by station ID (queue depths add, ascending
// order preserved). nil inputs are skipped; the result is nil when nothing
// contributed.
func MergeStreamStats(parts []*StreamStats) *StreamStats {
	var out *StreamStats
	byStation := make(map[uint32]*StreamStationStats)
	for _, p := range parts {
		if p == nil {
			continue
		}
		if out == nil {
			out = &StreamStats{}
		}
		out.Submitted += p.Submitted
		out.Accepted += p.Accepted
		out.Shed += p.Shed
		out.Rejected += p.Rejected
		out.Blocked += p.Blocked
		out.Rerouted += p.Rerouted
		out.Flushes += p.Flushes
		out.FlushedPatterns += p.FlushedPatterns
		out.FlushFailures += p.FlushFailures
		out.TTLEvictions += p.TTLEvictions
		for _, s := range p.Stations {
			dst := byStation[s.Station]
			if dst == nil {
				dst = &StreamStationStats{Station: s.Station}
				byStation[s.Station] = dst
			}
			dst.QueueDepth += s.QueueDepth
			dst.QueueCap += s.QueueCap
			dst.Flushes += s.Flushes
			dst.FlushedPatterns += s.FlushedPatterns
			dst.Evictions += s.Evictions
			if s.LinkInFlight > dst.LinkInFlight {
				dst.LinkInFlight = s.LinkInFlight
			}
		}
	}
	if out == nil {
		return nil
	}
	ids := make([]uint32, 0, len(byStation))
	for id := range byStation {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		out.Stations = append(out.Stations, *byStation[id])
	}
	return out
}
