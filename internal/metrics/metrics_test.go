package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"dimatch/internal/core"
)

func ids(vs ...uint64) []core.PersonID {
	out := make([]core.PersonID, len(vs))
	for i, v := range vs {
		out[i] = core.PersonID(v)
	}
	return out
}

func TestEvaluateBasic(t *testing.T) {
	tests := []struct {
		name      string
		retrieved []core.PersonID
		relevant  []core.PersonID
		want      Confusion
	}{
		{
			name:      "perfect",
			retrieved: ids(1, 2, 3),
			relevant:  ids(1, 2, 3),
			want:      Confusion{TP: 3},
		},
		{
			name:      "one fp one fn",
			retrieved: ids(1, 2, 4),
			relevant:  ids(1, 2, 3),
			want:      Confusion{TP: 2, FP: 1, FN: 1},
		},
		{
			name:      "nothing retrieved",
			retrieved: nil,
			relevant:  ids(1),
			want:      Confusion{FN: 1},
		},
		{
			name:      "nothing relevant",
			retrieved: ids(1),
			relevant:  nil,
			want:      Confusion{FP: 1},
		},
		{
			name:      "duplicates count once",
			retrieved: ids(1, 1, 1),
			relevant:  ids(1),
			want:      Confusion{TP: 1},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Evaluate(tt.retrieved, tt.relevant); got != tt.want {
				t.Fatalf("Evaluate = %+v, want %+v", got, tt.want)
			}
		})
	}
}

func TestMeasures(t *testing.T) {
	c := Confusion{TP: 8, FP: 2, FN: 2}
	if got := c.Precision(); got != 0.8 {
		t.Fatalf("Precision = %v", got)
	}
	if got := c.Recall(); got != 0.8 {
		t.Fatalf("Recall = %v", got)
	}
	if got := c.F1(); math.Abs(got-0.8) > 1e-12 {
		t.Fatalf("F1 = %v", got)
	}
	var empty Confusion
	if empty.Precision() != 1 || empty.Recall() != 1 {
		t.Fatal("vacuous precision/recall should be 1")
	}
	if (Confusion{FP: 1, FN: 1}).F1() != 0 {
		t.Fatal("all-wrong F1 should be 0")
	}
	if !strings.Contains(c.String(), "precision=0.80") {
		t.Fatalf("String = %q", c.String())
	}
}

func TestAddAccumulates(t *testing.T) {
	a := Confusion{TP: 1, FP: 2, FN: 3}
	a.Add(Confusion{TP: 4, FP: 5, FN: 6})
	if a != (Confusion{TP: 5, FP: 7, FN: 9}) {
		t.Fatalf("Add = %+v", a)
	}
}

func TestPropertyMeasuresInRange(t *testing.T) {
	f := func(tp, fp, fn uint8) bool {
		c := Confusion{TP: int(tp), FP: int(fp), FN: int(fn)}
		for _, v := range []float64{c.Precision(), c.Recall(), c.F1()} {
			if v < 0 || v > 1 || math.IsNaN(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCDF(t *testing.T) {
	points := CDF([]int{0, 1, 1, 2, 4})
	want := []CDFPoint{{0, 0.2}, {1, 0.6}, {2, 0.8}, {4, 1.0}}
	if len(points) != len(want) {
		t.Fatalf("CDF = %v", points)
	}
	for i := range want {
		if points[i].X != want[i].X || math.Abs(points[i].P-want[i].P) > 1e-12 {
			t.Fatalf("CDF[%d] = %+v, want %+v", i, points[i], want[i])
		}
	}
	if CDF(nil) != nil {
		t.Fatal("CDF(nil) should be nil")
	}
}

func TestCDFMonotone(t *testing.T) {
	f := func(raw []uint8) bool {
		obs := make([]int, len(raw))
		for i, v := range raw {
			obs[i] = int(v % 10)
		}
		points := CDF(obs)
		prev := 0.0
		for _, p := range points {
			if p.P < prev || p.P > 1+1e-12 {
				return false
			}
			prev = p.P
		}
		return len(obs) == 0 || math.Abs(points[len(points)-1].P-1) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
