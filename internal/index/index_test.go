package index

import (
	"math/rand"
	"testing"

	"dimatch/internal/core"
	"dimatch/internal/pattern"
)

// randPattern builds a deterministic random pattern of the given length.
func randPattern(rng *rand.Rand, length int, maxVal int64) pattern.Pattern {
	p := make(pattern.Pattern, length)
	for i := range p {
		p[i] = rng.Int63n(maxVal + 1)
	}
	return p
}

// TestSummaryNeverPrunesBandMatches is the soundness pin: any resident
// within the scaled ε band of a query combination at every position — in
// particular every true Eq. 2 match — must be admitted by the summary, for
// every sample count a search could use.
func TestSummaryNeverPrunesBandMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const length, eps = 12, 2
	for trial := 0; trial < 200; trial++ {
		target := randPattern(rng, length, 20)
		// Perturb within the per-interval ε: still a true Eq. 2 match.
		resident := target.Clone()
		for i := range resident {
			resident[i] += rng.Int63n(2*eps+1) - eps
			if resident[i] < 0 {
				resident[i] = 0
			}
		}
		if resident.Sum() == 0 || target.Sum() == 0 {
			continue
		}
		s, err := Build(length, []pattern.Pattern{resident})
		if err != nil {
			t.Fatal(err)
		}
		for _, samples := range []int{1, 3, 5, 12, 40} {
			probe, err := NewProbe(core.Query{ID: 1, Locals: []pattern.Pattern{target}}, samples, eps)
			if err != nil {
				t.Fatal(err)
			}
			if !s.Admits(probe) {
				t.Fatalf("trial %d samples %d: summary pruned a within-band resident\nquery    %v\nresident %v",
					trial, samples, target, resident)
			}
		}
	}
}

// TestSummaryAdmitsMultiLocalCombination pins the combination enumeration:
// a station holding only a sub-combination of a multi-local query (one
// piece of a split person) must still be admitted — it will report that
// combination's weight.
func TestSummaryAdmitsMultiLocalCombination(t *testing.T) {
	locals := []pattern.Pattern{{1, 2, 3}, {2, 2, 2}}
	q := core.Query{ID: 1, Locals: locals}
	// The station holds only the first local piece.
	s, err := Build(3, []pattern.Pattern{{1, 2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	probe, err := NewProbe(q, 12, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Admits(probe) {
		t.Fatal("summary pruned a station holding a query sub-combination")
	}
	// A station holding something unrelated is pruned.
	other, err := Build(3, []pattern.Pattern{{9, 0, 9}})
	if err != nil {
		t.Fatal(err)
	}
	if other.Admits(probe) {
		t.Fatal("summary admitted an unrelated resident at ε=0")
	}
}

// TestFalseRouteRateBound pins the advertised sizing: with stores at the
// default false-positive target, the fraction of stations falsely admitted
// for queries that match none of their residents stays within a small
// multiple of the per-probe target. The workload is seeded, so the measured
// rate is deterministic.
func TestFalseRouteRateBound(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const (
		length    = 12
		stations  = 40
		residents = 50
		queries   = 50
	)
	sums := make([]*Summary, stations)
	for i := range sums {
		locals := make([]pattern.Pattern, residents)
		for j := range locals {
			// Resident values in [0, 30]: disjoint from the query range below,
			// so every admit is a false route.
			locals[j] = randPattern(rng, length, 30)
			locals[j][0]++ // never all-zero
		}
		s, err := Build(length, locals)
		if err != nil {
			t.Fatal(err)
		}
		sums[i] = s
	}
	falseAdmits, probesRun := 0, 0
	for qi := 0; qi < queries; qi++ {
		// Query values in [1000, 1030]: accumulated cells are far outside
		// every resident band, so the truth is "no station matches".
		q := randPattern(rng, length, 30)
		for i := range q {
			q[i] += 1000
		}
		probe, err := NewProbe(core.Query{ID: core.QueryID(qi + 1), Locals: []pattern.Pattern{q}}, core.DefaultSamples, 1)
		if err != nil {
			t.Fatal(err)
		}
		if !probe.Selective() {
			t.Fatal("probe unexpectedly over budget")
		}
		for _, s := range sums {
			probesRun++
			if s.Admits(probe) {
				falseAdmits++
			}
		}
	}
	rate := float64(falseAdmits) / float64(probesRun)
	// Admission needs a false hit at EVERY sampled position of some
	// combination, so the station-level rate sits far below the per-probe
	// 1% target; 2% leaves headroom without letting the bound rot.
	if rate > 0.02 {
		t.Fatalf("false-route rate %.4f exceeds the 0.02 bound (%d/%d)", rate, falseAdmits, probesRun)
	}
}

// TestStaleAfterEvictOnlyWastesProbes pins the eviction half of the
// staleness contract: a summary that still contains an evicted resident's
// cells admits the station (a wasted probe), it never prunes differently —
// pruning decisions are monotone in the summarized set.
func TestStaleAfterEvictOnlyWastesProbes(t *testing.T) {
	kept := pattern.Pattern{5, 5, 5, 5}
	gone := pattern.Pattern{1, 0, 2, 1}
	stale, err := Build(4, []pattern.Pattern{kept, gone})
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := Build(4, []pattern.Pattern{kept})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []pattern.Pattern{kept, gone, {9, 9, 9, 9}} {
		probe, err := NewProbe(core.Query{ID: 1, Locals: []pattern.Pattern{q}}, 4, 0)
		if err != nil {
			t.Fatal(err)
		}
		if fresh.Admits(probe) && !stale.Admits(probe) {
			t.Fatalf("stale summary pruned a station the fresh one admits (query %v)", q)
		}
	}
	// The evicted resident's cells still admit on the stale copy: the
	// documented wasted probe.
	probe, err := NewProbe(core.Query{ID: 1, Locals: []pattern.Pattern{gone}}, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !stale.Admits(probe) {
		t.Fatal("stale summary should still admit the evicted resident's band")
	}
}

// TestCloneAndAddIsolation pins the copy-on-write contract behind the
// coordinator's delta updates.
func TestCloneAndAddIsolation(t *testing.T) {
	base, err := Build(3, []pattern.Pattern{{1, 1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	clone := base.Clone()
	if err := clone.Add(pattern.Pattern{7, 7, 7}); err != nil {
		t.Fatal(err)
	}
	probe, err := NewProbe(core.Query{ID: 1, Locals: []pattern.Pattern{{7, 7, 7}}}, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !clone.Admits(probe) {
		t.Fatal("clone missing the added resident")
	}
	if base.Admits(probe) {
		t.Fatal("Add on the clone leaked into the base summary")
	}
	if base.Residents() != 1 || clone.Residents() != 2 {
		t.Fatalf("residents base=%d clone=%d, want 1 and 2", base.Residents(), clone.Residents())
	}
}

// TestWireRoundtripParts pins FromParts against the accessors a wire codec
// uses.
func TestWireRoundtripParts(t *testing.T) {
	s, err := Build(5, []pattern.Pattern{{1, 2, 3, 4, 5}, {2, 0, 0, 1, 0}})
	if err != nil {
		t.Fatal(err)
	}
	got, err := FromParts(s.Length(), s.Seed(), append([]uint64(nil), s.Words()...), s.Bits(), s.Hashes(), s.Inserted(), s.Residents())
	if err != nil {
		t.Fatal(err)
	}
	probe, err := NewProbe(core.Query{ID: 1, Locals: []pattern.Pattern{{1, 2, 3, 4, 5}}}, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Admits(probe) {
		t.Fatal("reconstructed summary lost its cells")
	}
	if got.Residents() != 2 || got.SizeBytes() != s.SizeBytes() {
		t.Fatalf("reconstructed metadata %d residents / %d B, want %d / %d",
			got.Residents(), got.SizeBytes(), s.Residents(), s.SizeBytes())
	}
}

// TestProbeBudget pins the unselective fallback: a band volume beyond
// MaxProbeValues must not fail, it must stop pruning.
func TestProbeBudget(t *testing.T) {
	long := make(pattern.Pattern, 64)
	for i := range long {
		long[i] = 1
	}
	probe, err := NewProbe(core.Query{ID: 1, Locals: []pattern.Pattern{long}}, 64, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if probe.Selective() {
		t.Fatal("probe over MaxProbeValues still claims to be selective")
	}
	s, err := Build(64, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Admits(probe) {
		t.Fatal("unselective probe must admit everywhere")
	}
}

// TestEmptyStationIsPruned: a station with no residents can never report;
// its summary admits nothing selective.
func TestEmptyStationIsPruned(t *testing.T) {
	s, err := Build(3, nil)
	if err != nil {
		t.Fatal(err)
	}
	probe, err := NewProbe(core.Query{ID: 1, Locals: []pattern.Pattern{{1, 2, 3}}}, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if s.Admits(probe) {
		t.Fatal("empty summary admitted a query")
	}
}
