package tree

import (
	"fmt"
	"math/rand"
	"testing"

	"dimatch/internal/core"
	"dimatch/internal/index"
	"dimatch/internal/pattern"
)

const testLength = 8

// buildSummary makes a station digest over the given residents.
func buildSummary(t *testing.T, locals []pattern.Pattern) *index.Summary {
	t.Helper()
	s, err := index.Build(testLength, locals)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return s
}

func randPattern(rng *rand.Rand) pattern.Pattern {
	p := make(pattern.Pattern, testLength)
	for i := range p {
		p[i] = int64(rng.Intn(40))
	}
	return p
}

func probeFor(t *testing.T, locals []pattern.Pattern, eps int64) index.Probe {
	t.Helper()
	q := core.Query{ID: 1, Locals: locals}
	p, err := index.NewProbe(q, testLength, eps)
	if err != nil {
		t.Fatalf("NewProbe: %v", err)
	}
	return p
}

// flatAdmitted is the reference: probe every station digest directly.
func flatAdmitted(sums map[uint32]*index.Summary, probes []index.Probe) map[uint32]bool {
	out := make(map[uint32]bool)
	for id, s := range sums {
		for _, p := range probes {
			if s.Admits(p) {
				out[id] = true
				break
			}
		}
	}
	return out
}

// TestTreeNeverPrunesFlatAdmitted is the soundness pin: any station the flat
// scan admits must be admitted by the tree descent, across random
// membership, fanouts, and union caps.
func TestTreeNeverPrunesFlatAdmitted(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, fanout := range []int{2, 3, 8} {
		for _, cap := range []uint64{64, 1 << 10, 1 << 15} {
			tr := New(Options{Fanout: fanout, MaxUnionBits: cap})
			sums := make(map[uint32]*index.Summary)
			for id := uint32(0); id < 60; id++ {
				locals := []pattern.Pattern{randPattern(rng), randPattern(rng)}
				s := buildSummary(t, locals)
				sums[id] = s
				if err := tr.Add(id, s); err != nil {
					t.Fatalf("Add(%d): %v", id, err)
				}
			}
			for trial := 0; trial < 30; trial++ {
				probe := probeFor(t, []pattern.Pattern{randPattern(rng)}, int64(trial%3))
				want := flatAdmitted(sums, []index.Probe{probe})
				got, evaluated := tr.Route([]index.Probe{probe})
				if evaluated == 0 {
					t.Fatalf("fanout=%d cap=%d: no Admits evaluations", fanout, cap)
				}
				gotSet := make(map[uint32]bool, len(got))
				for _, id := range got {
					gotSet[id] = true
				}
				for id := range want {
					if !gotSet[id] {
						t.Fatalf("fanout=%d cap=%d: tree pruned station %d that flat scan admits", fanout, cap, id)
					}
				}
			}
		}
	}
}

// TestTreeStructure pins B-tree shape invariants through adds and removes.
func TestTreeStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tr := New(Options{Fanout: 3})
	present := make(map[uint32]*index.Summary)
	for i := 0; i < 200; i++ {
		id := uint32(rng.Intn(50))
		if _, ok := present[id]; ok && rng.Intn(2) == 0 {
			tr.Remove(id)
			delete(present, id)
		} else {
			s := buildSummary(t, []pattern.Pattern{randPattern(rng)})
			if err := tr.Add(id, s); err != nil {
				t.Fatalf("Add: %v", err)
			}
			present[id] = s
		}
		if tr.Len() != len(present) {
			t.Fatalf("Len = %d, want %d", tr.Len(), len(present))
		}
		checkInvariants(t, tr)
		for id := range present {
			if !tr.Has(id) {
				t.Fatalf("Has(%d) = false after add", id)
			}
		}
	}
	for id := range present {
		tr.Remove(id)
	}
	if tr.Len() != 0 || tr.root != nil {
		t.Fatalf("tree not empty after removing all: len=%d", tr.Len())
	}
}

// checkInvariants verifies sorted disjoint child ranges, fanout bounds,
// uniform leaf depth, and correct min/max on every inner node.
func checkInvariants(t *testing.T, tr *Tree) {
	t.Helper()
	if tr.root == nil {
		return
	}
	leafDepth := -1
	var walk func(n *node, depth int)
	walk = func(n *node, depth int) {
		if n.leaf {
			if leafDepth == -1 {
				leafDepth = depth
			} else if depth != leafDepth {
				t.Fatalf("leaf depth %d != %d", depth, leafDepth)
			}
			if n.min != n.station || n.max != n.station {
				t.Fatalf("leaf range [%d,%d] != station %d", n.min, n.max, n.station)
			}
			return
		}
		if len(n.children) == 0 {
			t.Fatalf("empty inner node survived")
		}
		if len(n.children) > tr.opts.Fanout {
			t.Fatalf("node has %d children, fanout %d", len(n.children), tr.opts.Fanout)
		}
		if n.sum == nil {
			t.Fatalf("inner node without union")
		}
		min, max := n.children[0].min, n.children[0].max
		prev := n.children[0]
		for _, c := range n.children[1:] {
			if c.min <= prev.max {
				t.Fatalf("child ranges overlap or out of order: [%d,%d] after [%d,%d]", c.min, c.max, prev.min, prev.max)
			}
			if c.min < min {
				min = c.min
			}
			if c.max > max {
				max = c.max
			}
			prev = c
		}
		if n.min != min || n.max != max {
			t.Fatalf("inner range [%d,%d], children span [%d,%d]", n.min, n.max, min, max)
		}
		for _, c := range n.children {
			walk(c, depth+1)
		}
	}
	walk(tr.root, 0)
}

// TestDeltaAddPropagates pins the copy-on-write ingest path: after DeltaAdd
// the new resident is admitted through every union on the root path.
func TestDeltaAddPropagates(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tr := New(Options{Fanout: 2})
	for id := uint32(0); id < 20; id++ {
		if err := tr.Add(id, buildSummary(t, []pattern.Pattern{randPattern(rng)})); err != nil {
			t.Fatalf("Add: %v", err)
		}
	}
	delta := randPattern(rng)
	leaf := tr.find(9).sum.Clone()
	if err := leaf.Add(delta); err != nil {
		t.Fatalf("leaf Add: %v", err)
	}
	oldRoot := tr.root.sum
	ok, err := tr.DeltaAdd(9, leaf, delta)
	if err != nil || !ok {
		t.Fatalf("DeltaAdd = %v, %v", ok, err)
	}
	if tr.root.sum == oldRoot {
		t.Fatalf("DeltaAdd did not copy-on-write the root union")
	}
	probe := probeFor(t, []pattern.Pattern{delta}, 0)
	got, _ := tr.Route([]index.Probe{probe})
	found := false
	for _, id := range got {
		if id == 9 {
			found = true
		}
	}
	if !found {
		t.Fatalf("station 9 not admitted after DeltaAdd of its own resident")
	}
	if ok, err := tr.DeltaAdd(99, nil, delta); ok || err != nil {
		t.Fatalf("DeltaAdd(absent) = %v, %v; want false, nil", ok, err)
	}
}

// TestTreeReplaceAndIntrospection covers Add-as-replace, UnionBytes and
// Nodes.
func TestTreeReplaceAndIntrospection(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tr := New(Options{Fanout: 4, MaxUnionBits: 1 << 12})
	for id := uint32(0); id < 30; id++ {
		if err := tr.Add(id, buildSummary(t, []pattern.Pattern{randPattern(rng)})); err != nil {
			t.Fatalf("Add: %v", err)
		}
	}
	if err := tr.Add(5, buildSummary(t, []pattern.Pattern{randPattern(rng)})); err != nil {
		t.Fatalf("replace Add: %v", err)
	}
	if tr.Len() != 30 {
		t.Fatalf("Len after replace = %d, want 30", tr.Len())
	}
	inner, leaves := tr.Nodes()
	if leaves != 30 {
		t.Fatalf("leaves = %d, want 30", leaves)
	}
	if inner < 8 { // 30 leaves at fanout 4 need >= ceil(30/4) bottom inners
		t.Fatalf("inner = %d, implausibly few for fanout 4", inner)
	}
	if tr.UnionBytes() == 0 {
		t.Fatalf("UnionBytes = 0 with %d inner nodes", inner)
	}
	// The cap bounds every union: no inner node may exceed it.
	var walk func(n *node)
	walk = func(n *node) {
		if n.leaf {
			return
		}
		if n.sum.Bits() > 1<<12 {
			t.Fatalf("union of %d bits exceeds cap", n.sum.Bits())
		}
		for _, c := range n.children {
			walk(c)
		}
	}
	walk(tr.root)
}

// TestTreeRejectsForeignGeometry pins the admission guard: digests from a
// different key space are rejected and the tree is unchanged.
func TestTreeRejectsForeignGeometry(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	tr := New(Options{})
	if err := tr.Add(1, buildSummary(t, []pattern.Pattern{randPattern(rng)})); err != nil {
		t.Fatalf("Add: %v", err)
	}
	foreign, err := index.New(testLength, 4, index.DefaultFPTarget, index.DefaultSeed+1)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := tr.Add(2, foreign); err == nil {
		t.Fatalf("Add of foreign-seed digest succeeded, want error")
	}
	if tr.Len() != 1 || tr.Has(2) {
		t.Fatalf("rejected add mutated the tree")
	}
	if err := tr.Add(3, nil); err == nil {
		t.Fatalf("Add(nil) succeeded, want error")
	}
}

// TestRouteCountsAndEmptyTree pins the evaluated counter and empty-tree
// behavior.
func TestRouteCountsAndEmptyTree(t *testing.T) {
	tr := New(Options{})
	if got, n := tr.Route(nil); got != nil || n != 0 {
		t.Fatalf("empty tree Route = %v, %d", got, n)
	}
	rng := rand.New(rand.NewSource(9))
	var patterns []pattern.Pattern
	for id := uint32(0); id < 10; id++ {
		p := randPattern(rng)
		patterns = append(patterns, p)
		if err := tr.Add(id, buildSummary(t, []pattern.Pattern{p})); err != nil {
			t.Fatalf("Add: %v", err)
		}
	}
	probe := probeFor(t, []pattern.Pattern{patterns[0]}, 0)
	admitted, evaluated := tr.Route([]index.Probe{probe})
	if len(admitted) == 0 {
		t.Fatalf("resident's own pattern admitted nowhere")
	}
	inner, leaves := tr.Nodes()
	if evaluated == 0 || evaluated > inner+leaves {
		t.Fatalf("evaluated %d Admits across %d nodes (one probe)", evaluated, inner+leaves)
	}
}

func ExampleTree() {
	tr := New(Options{Fanout: 4})
	for id := uint32(0); id < 12; id++ {
		s, _ := index.Build(4, []pattern.Pattern{{int64(id), 1, 2, 3}})
		_ = tr.Add(id, s)
	}
	inner, leaves := tr.Nodes()
	fmt.Println(tr.Len(), leaves, inner > 0)
	// Output: 12 12 true
}
