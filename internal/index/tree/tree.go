// Package tree arranges per-station routing summaries into a Bloofi-style
// B-tree (Crainiceanu & Lemire, "Bloofi: Multidimensional Bloom Filters").
//
// Leaves are the stations' Bloom digests exactly as the flat summary cache
// holds them; every inner node is the bitwise-OR union of its children,
// folded onto a bounded power-of-two geometry (index.Summary.Absorb). A
// selective query then descends from the root and visits only the subtrees
// whose union admits a possible match, so planning cost grows with the
// admitted paths instead of with the station count, and the same subtrees
// map one-to-one onto region coordinators in a multi-tier deployment.
//
// Pruning soundness is inherited from the union property: a child's every
// set position maps into its parent's geometry, so if any station in a
// subtree admits a probe, the subtree's union admits it too. The tree can
// therefore only over-visit (union false positives), never skip a station
// the flat scan would have visited — docs/ROUTING.md carries the full
// argument.
//
// Maintenance is incremental and rides the summary-cache hooks:
//
//   - Add/Remove restructure the B-tree and rebuild the unions on the one
//     root path they touched (plus a split/collapse sibling), leaving every
//     other subtree untouched.
//   - DeltaAdd propagates an ingest's new cells up the root path
//     copy-on-write: each ancestor's union is cloned, the cells are inserted
//     at the ancestor's own geometry (Bloom inserts are monotone), and the
//     clone is swapped in.
//
// The tree is not safe for concurrent use; the summary cache serializes
// access under its mutex.
package tree

import (
	"fmt"

	"dimatch/internal/index"
	"dimatch/internal/pattern"
)

// DefaultFanout bounds the children per inner node when Options.Fanout is
// zero. Eight keeps the tree shallow (1024 stations in four levels) while
// each descent step stays a handful of filter probes.
const DefaultFanout = 8

// DefaultMaxUnionBits caps an inner node's filter length (bits). Unions
// near the root summarize unboundedly many stations; capping their geometry
// keeps per-coordinator routing state sublinear in the fleet size at the
// cost of a higher false-admit rate high in the tree — which only costs
// extra descent, never a wrong prune. 32 Kibit = 4 KiB per node.
const DefaultMaxUnionBits = 1 << 15

// Options configures a Tree.
type Options struct {
	// Fanout is the maximum number of children per inner node (minimum 2;
	// DefaultFanout when zero).
	Fanout int
	// MaxUnionBits caps inner-node filter lengths (DefaultMaxUnionBits when
	// zero; rounded up to a power of two, minimum index.MinFilterBits).
	MaxUnionBits uint64
}

func (o Options) withDefaults() Options {
	if o.Fanout == 0 {
		o.Fanout = DefaultFanout
	}
	if o.Fanout < 2 {
		o.Fanout = 2
	}
	if o.MaxUnionBits == 0 {
		o.MaxUnionBits = DefaultMaxUnionBits
	}
	if o.MaxUnionBits < index.MinFilterBits {
		o.MaxUnionBits = index.MinFilterBits
	}
	return o
}

// node is one tree node: a leaf carries a station's digest, an inner node
// the union of its children. Children are kept sorted by station-id range
// and every leaf sits at the same depth (classic B-tree shape).
type node struct {
	leaf     bool
	station  uint32
	sum      *index.Summary
	children []*node
	min, max uint32
}

// Tree is the Bloofi-style digest tree. The zero value is not usable;
// construct with New.
type Tree struct {
	opts Options
	root *node
	size int
}

// New returns an empty tree.
func New(opts Options) *Tree {
	return &Tree{opts: opts.withDefaults()}
}

// Len returns the number of stations in the tree.
func (t *Tree) Len() int { return t.size }

// Fanout returns the effective fanout.
func (t *Tree) Fanout() int { return t.opts.Fanout }

// Has reports whether the station is tracked.
func (t *Tree) Has(station uint32) bool {
	return t.find(station) != nil
}

func (t *Tree) find(station uint32) *node {
	n := t.root
	for n != nil && !n.leaf {
		var next *node
		for _, c := range n.children {
			if station >= c.min && station <= c.max {
				next = c
				break
			}
		}
		n = next
	}
	if n != nil && n.leaf && n.station == station {
		return n
	}
	return nil
}

// Add inserts (or replaces) a station's digest. The digest must be
// unionable with the tree's existing members — same seed and pattern
// length, power-of-two filter geometry — or an error is returned and the
// tree is left unchanged; the caller must then keep the station outside the
// tree and never prune it.
func (t *Tree) Add(station uint32, sum *index.Summary) error {
	if sum == nil {
		return fmt.Errorf("tree: nil summary for station %d", station)
	}
	probe, err := index.NewUnion(sum.Length(), sum.Seed(), index.MinFilterBits, 1)
	if err != nil {
		return fmt.Errorf("tree: station %d digest unusable: %w", station, err)
	}
	if !probe.Unionable(sum) {
		return fmt.Errorf("tree: station %d digest geometry is not unionable (need power-of-two bits)", station)
	}
	if t.root != nil {
		ref := t.anyLeaf(t.root)
		if ref != nil && (ref.sum.Seed() != sum.Seed() || ref.sum.Length() != sum.Length()) {
			return fmt.Errorf("tree: station %d digest key space differs from the tree's", station)
		}
	}
	t.Remove(station)
	leaf := &node{leaf: true, station: station, sum: sum, min: station, max: station}
	if t.root == nil {
		t.root = &node{children: []*node{leaf}}
		t.refresh(t.root)
		t.size = 1
		return nil
	}
	path := t.descendToLeafParent(station)
	parent := path[len(path)-1]
	insertChild(parent, leaf)
	t.size++
	// Split overfull nodes bottom-up, then refresh unions and ranges along
	// the whole touched path.
	for i := len(path) - 1; i >= 0; i-- {
		n := path[i]
		if len(n.children) > t.opts.Fanout {
			left, right := t.split(n)
			if i == 0 {
				t.root = &node{children: []*node{left, right}}
				t.refresh(t.root)
				return nil
			}
			p := path[i-1]
			replaceChild(p, n, left, right)
		} else {
			t.refresh(n)
		}
	}
	return nil
}

// anyLeaf returns some leaf under n, for key-space reference.
func (t *Tree) anyLeaf(n *node) *node {
	for !n.leaf {
		if len(n.children) == 0 {
			return nil
		}
		n = n.children[0]
	}
	return n
}

// descendToLeafParent walks from the root to the inner node whose children
// are leaves and whose range should receive station, returning the path
// (root first).
func (t *Tree) descendToLeafParent(station uint32) []*node {
	path := []*node{t.root}
	n := t.root
	for {
		if len(n.children) == 0 || n.children[0].leaf {
			return path
		}
		next := n.children[len(n.children)-1]
		for _, c := range n.children {
			if station <= c.max || c == n.children[len(n.children)-1] {
				next = c
				break
			}
		}
		path = append(path, next)
		n = next
	}
}

// insertChild places c into n.children in station-id order.
func insertChild(n *node, c *node) {
	at := len(n.children)
	for i, ch := range n.children {
		if c.min < ch.min {
			at = i
			break
		}
	}
	n.children = append(n.children, nil)
	copy(n.children[at+1:], n.children[at:])
	n.children[at] = c
}

// replaceChild swaps old for the two split halves in p's child list.
func replaceChild(p *node, old, left, right *node) {
	for i, c := range p.children {
		if c == old {
			p.children = append(p.children, nil)
			copy(p.children[i+2:], p.children[i+1:])
			p.children[i] = left
			p.children[i+1] = right
			return
		}
	}
}

// split divides an overfull node into two halves with fresh unions.
func (t *Tree) split(n *node) (left, right *node) {
	mid := len(n.children) / 2
	left = &node{children: append([]*node(nil), n.children[:mid]...)}
	right = &node{children: append([]*node(nil), n.children[mid:]...)}
	t.refresh(left)
	t.refresh(right)
	return left, right
}

// refresh rebuilds n's union and id range from its current children — the
// "rebuild only the affected subtree" step of every structural change.
func (t *Tree) refresh(n *node) {
	if n.leaf || len(n.children) == 0 {
		return
	}
	n.min, n.max = n.children[0].min, n.children[0].max
	var bits uint64
	hashes := 0
	for _, c := range n.children {
		if c.min < n.min {
			n.min = c.min
		}
		if c.max > n.max {
			n.max = c.max
		}
		bits += c.sum.Bits()
		if hashes == 0 || c.sum.Hashes() < hashes {
			hashes = c.sum.Hashes()
		}
	}
	if bits > t.opts.MaxUnionBits {
		bits = t.opts.MaxUnionBits
	}
	ref := n.children[0].sum
	u, err := index.NewUnion(ref.Length(), ref.Seed(), bits, hashes)
	if err != nil {
		panic(fmt.Sprintf("tree: union geometry invalid: %v", err))
	}
	for _, c := range n.children {
		if err := u.Absorb(c.sum); err != nil {
			// Members are admission-checked in Add, and unions of unionable
			// children stay unionable; an absorb failure is a bug.
			panic(fmt.Sprintf("tree: absorb of admitted member failed: %v", err))
		}
	}
	n.sum = u
}

// Remove deletes a station, collapsing emptied inner nodes and rebuilding
// the unions on the touched root path. Removing an absent station is a
// no-op.
func (t *Tree) Remove(station uint32) {
	if t.root == nil {
		return
	}
	if !t.remove(t.root, station) {
		return
	}
	t.size--
	if len(t.root.children) == 0 {
		t.root = nil
		return
	}
	// Shrink height while the root has a single inner child.
	for len(t.root.children) == 1 && !t.root.children[0].leaf {
		t.root = t.root.children[0]
	}
}

// remove deletes the leaf under n, refreshing unions on the way out. It
// returns whether the leaf was found.
func (t *Tree) remove(n *node, station uint32) bool {
	for i, c := range n.children {
		if station < c.min || station > c.max {
			continue
		}
		if c.leaf {
			if c.station != station {
				continue
			}
			n.children = append(n.children[:i], n.children[i+1:]...)
			t.refresh(n)
			return true
		}
		if !t.remove(c, station) {
			continue
		}
		if len(c.children) == 0 {
			n.children = append(n.children[:i], n.children[i+1:]...)
		}
		t.refresh(n)
		return true
	}
	return false
}

// DeltaAdd applies one ingested pattern to a tracked station: the leaf's
// digest is replaced with newLeaf (the cache's already-updated clone) and
// the pattern's cells are inserted into a copy-on-write clone of every
// ancestor union. It reports whether the station is tracked; an error means
// the delta could not be applied soundly and the caller must drop the
// station from the tree.
func (t *Tree) DeltaAdd(station uint32, newLeaf *index.Summary, local pattern.Pattern) (bool, error) {
	if t.root == nil {
		return false, nil
	}
	var path []*node
	n := t.root
	for !n.leaf {
		path = append(path, n)
		var next *node
		for _, c := range n.children {
			if station >= c.min && station <= c.max {
				if c.leaf && c.station != station {
					continue
				}
				next = c
				break
			}
		}
		if next == nil {
			return false, nil
		}
		n = next
	}
	if n.station != station {
		return false, nil
	}
	if newLeaf != nil {
		n.sum = newLeaf
	}
	for _, a := range path {
		u := a.sum.Clone()
		if err := u.Add(local); err != nil {
			return true, fmt.Errorf("tree: delta into ancestor union: %w", err)
		}
		a.sum = u
	}
	return true, nil
}

// Route descends the tree with one search's probes and returns the
// admitted stations plus the number of Admits evaluations performed (the
// planning-cost figure the hierarchy bench records). A subtree is skipped
// only when its union denies every probe; an unselective probe admits
// everything, exactly as in the flat scan.
func (t *Tree) Route(probes []index.Probe) (admitted []uint32, evaluated int) {
	if t.root == nil {
		return nil, 0
	}
	var walk func(n *node)
	walk = func(n *node) {
		if n.sum != nil {
			hit := false
			for _, p := range probes {
				evaluated++
				if n.sum.Admits(p) {
					hit = true
					break
				}
			}
			if !hit {
				return
			}
		}
		if n.leaf {
			admitted = append(admitted, n.station)
			return
		}
		for _, c := range n.children {
			walk(c)
		}
	}
	walk(t.root)
	return admitted, evaluated
}

// UnionBytes returns the memory held by inner-node unions — the tree's
// routing-state overhead beyond the cached leaf digests.
func (t *Tree) UnionBytes() uint64 {
	var total uint64
	var walk func(n *node)
	walk = func(n *node) {
		if n.leaf {
			return
		}
		if n.sum != nil {
			total += n.sum.SizeBytes()
		}
		for _, c := range n.children {
			walk(c)
		}
	}
	if t.root != nil {
		walk(t.root)
	}
	return total
}

// Nodes returns the inner-node and leaf counts, for introspection and
// tests.
func (t *Tree) Nodes() (inner, leaves int) {
	var walk func(n *node)
	walk = func(n *node) {
		if n.leaf {
			leaves++
			return
		}
		inner++
		for _, c := range n.children {
			walk(c)
		}
	}
	if t.root != nil {
		walk(t.root)
	}
	return inner, leaves
}
