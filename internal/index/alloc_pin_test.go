// AllocsPerRun pins for the //dimatch:noalloc functions of this package:
// (*Summary).Admits and (*Summary).contains, the coordinator's per-station
// routing decision. The noalloc analyzer is the static early warning; these
// tests are the runtime ground truth. cmd/di-lint -allocharness reports any
// annotated function missing from this file.
package index

import (
	"testing"

	"dimatch/internal/core"
	"dimatch/internal/pattern"
)

var admitSink bool

func buildPinFixture(t *testing.T) (*Summary, Probe) {
	t.Helper()
	s, err := Build(3, []pattern.Pattern{{1, 2, 3}, {2, 2, 2}})
	if err != nil {
		t.Fatal(err)
	}
	q := core.Query{ID: 1, Locals: []pattern.Pattern{{1, 2, 3}}}
	p, err := NewProbe(q, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	return s, p
}

func TestNoallocSummaryAdmits(t *testing.T) {
	s, p := buildPinFixture(t)
	if n := testing.AllocsPerRun(100, func() {
		admitSink = s.Admits(p)
	}); n != 0 {
		t.Fatalf("(*Summary).Admits allocates %v times per run; //dimatch:noalloc requires 0", n)
	}
}

func TestNoallocSummarycontains(t *testing.T) {
	s, _ := buildPinFixture(t)
	if n := testing.AllocsPerRun(100, func() {
		admitSink = s.contains(0, 1)
	}); n != 0 {
		t.Fatalf("(*Summary).contains allocates %v times per run; //dimatch:noalloc requires 0", n)
	}
}
