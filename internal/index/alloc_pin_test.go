// AllocsPerRun pins for the //dimatch:noalloc functions of this package:
// (*Summary).Admits and (*Summary).contains, the coordinator's per-station
// routing decision. The noalloc analyzer is the static early warning; these
// tests are the runtime ground truth. cmd/di-lint -allocharness reports any
// annotated function missing from this file.
package index

import (
	"testing"

	"dimatch/internal/core"
	"dimatch/internal/pattern"
)

var admitSink bool

func buildPinFixture(t *testing.T) (*Summary, Probe) {
	t.Helper()
	s, err := Build(3, []pattern.Pattern{{1, 2, 3}, {2, 2, 2}})
	if err != nil {
		t.Fatal(err)
	}
	q := core.Query{ID: 1, Locals: []pattern.Pattern{{1, 2, 3}}}
	p, err := NewProbe(q, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	return s, p
}

func TestNoallocSummaryAdmits(t *testing.T) {
	s, p := buildPinFixture(t)
	if n := testing.AllocsPerRun(100, func() {
		admitSink = s.Admits(p)
	}); n != 0 {
		t.Fatalf("(*Summary).Admits allocates %v times per run; //dimatch:noalloc requires 0", n)
	}
}

func TestNoallocSummarycontains(t *testing.T) {
	s, _ := buildPinFixture(t)
	if n := testing.AllocsPerRun(100, func() {
		admitSink = s.contains(0, 1)
	}); n != 0 {
		t.Fatalf("(*Summary).contains allocates %v times per run; //dimatch:noalloc requires 0", n)
	}
}

func TestNoallocSummarycontainsAdaptive(t *testing.T) {
	locals := make([]pattern.Pattern, 0, 8)
	for i := 0; i < 8; i++ {
		base := int64(i*19 + 3)
		locals = append(locals, pattern.Pattern{base, base + 40, base * 3})
	}
	plan := &Plan{
		Epoch:  1,
		Seed:   9,
		Length: 3,
		Groups: []PlanGroup{
			{Weight: 1, Hashes: 3, Quantum: 1},
			{Weight: 2, Hashes: 4, Quantum: 2},
			{Weight: 1, Hashes: 3, Quantum: 4},
		},
	}
	s, err := BuildAdaptive(plan, 3, locals)
	if err != nil {
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(100, func() {
		admitSink = s.containsAdaptive(1, 4)
	}); n != 0 {
		t.Fatalf("(*Summary).containsAdaptive allocates %v times per run; //dimatch:noalloc requires 0", n)
	}
}

func TestNoallocSummarybandAdmit(t *testing.T) {
	s, _ := buildPinFixture(t)
	if n := testing.AllocsPerRun(100, func() {
		admitSink = s.bandAdmit(0, 0, 3)
	}); n != 0 {
		t.Fatalf("(*Summary).bandAdmit allocates %v times per run; //dimatch:noalloc requires 0", n)
	}
}
