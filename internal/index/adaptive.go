// Traffic-adaptive routing digests (Daisy-style parameterization).
//
// The static summary gives every pattern position the same share of one
// Bloom filter: one geometry, one hash count, every resident cell inserted
// at full value resolution. Observed traffic is not uniform across
// positions — the scaled tolerance widens ε bands with the position index,
// per-search sample counts probe different position subsets, and skewed
// query mixes concentrate band volume on a few positions — so the uniform
// table overspends bits where probes are rare and underspends where band
// volume concentrates, exactly the mismatch Daisy Bloom filters (Bercea,
// Houen & Pagh) address by choosing per-element parameters from the
// insert/query frequency distribution.
//
// A Plan is the adaptive parameter table the coordinator derives from its
// traffic profile (internal/adapt) and ships to stations over wire v7: per
// position group g a bit-budget weight, a hash count k_g, and a value
// quantum q_g. A station partitions its *existing* memory budget — the same
// total bit count the static summary would use — into per-group regions by
// the plan's weights, hashes each group with its own k_g, and inserts cells
// at quantized resolution floor(v/q_g). Probes quantize their band the same
// way, so a band probe costs ceil(width/q_g) lookups instead of width.
//
// Soundness is unchanged from the static table: quantization maps a band
// [lo,hi] onto the quantized superset [floor(lo/q), floor(hi/q)] (floor
// division is monotone), so every resident value inside the band is probed
// under its inserted key, and Bloom insertion keeps zero false negatives
// per group. An adaptive digest can only over-admit — wasted visits, never
// a lost match — and it self-describes its geometry on the wire, so a
// coordinator probing digests from mixed parameter epochs stays
// conservative for each of them individually. Adaptive digests are excluded
// from the Bloofi union tree (Unionable reports false): their partitioned
// key space does not fold, so the tree's callers keep such stations on the
// flat probe path instead.
package index

import (
	"fmt"

	"dimatch/internal/bitset"
	"dimatch/internal/bloom"
	"dimatch/internal/hash"
	"dimatch/internal/pattern"
)

// Plan parameter bounds. They keep wire-decoded plans from forcing absurd
// geometries: a hash count beyond MaxPlanHashes only slows probing, a
// quantum beyond MaxPlanQuantum collapses every band to one bucket, and
// weights are relative so MaxPlanWeight is pure DoS hygiene.
const (
	// MaxPlanHashes caps a group's hash count.
	MaxPlanHashes = 16
	// MaxPlanQuantum caps a group's value quantization step.
	MaxPlanQuantum = 1 << 20
	// MaxPlanWeight caps a group's relative bit-budget weight.
	MaxPlanWeight = 1 << 20
	// MaxPlanGroups caps the group count (one group per pattern position).
	MaxPlanGroups = 1 << 12
)

// PlanGroup is one position's entry in an adaptive parameter table.
type PlanGroup struct {
	// Weight is the group's relative share of the station's bit budget.
	// Weights are normalized at build time, so only ratios matter.
	Weight uint32
	// Hashes is the group's Bloom hash count k_g, in [1, MaxPlanHashes].
	Hashes uint8
	// Quantum is the group's value quantization step q_g, in
	// [1, MaxPlanQuantum]. 1 keeps full resolution.
	Quantum int64
}

// Plan is a traffic-adaptive parameter table: per-group bit-budget weights,
// hash counts and value quanta, derived by the coordinator's solver
// (internal/adapt) and applied by stations under their existing memory
// budget. A Plan is immutable once shared.
type Plan struct {
	// Epoch identifies the parameter derivation; it increases with every
	// rollout and is echoed by digests built under the plan. Zero is
	// reserved for "static parameters".
	Epoch uint64
	// Seed is the digest key-space seed the plan applies to.
	Seed uint64
	// Length is the pattern length; Groups has exactly one entry per
	// position.
	Length int
	// Groups holds the per-position parameters.
	Groups []PlanGroup
}

// Validate checks the plan's shape and parameter ranges.
func (p *Plan) Validate() error {
	if p == nil {
		return fmt.Errorf("index: nil plan")
	}
	if p.Epoch == 0 {
		return fmt.Errorf("index: plan epoch 0 is reserved for static parameters")
	}
	if p.Length <= 0 || p.Length > MaxPlanGroups {
		return fmt.Errorf("index: plan length %d outside [1, %d]", p.Length, MaxPlanGroups)
	}
	if len(p.Groups) != p.Length {
		return fmt.Errorf("index: plan has %d groups for length %d", len(p.Groups), p.Length)
	}
	for g, pg := range p.Groups {
		if pg.Weight == 0 || pg.Weight > MaxPlanWeight {
			return fmt.Errorf("index: plan group %d weight %d outside [1, %d]", g, pg.Weight, MaxPlanWeight)
		}
		if pg.Hashes == 0 || pg.Hashes > MaxPlanHashes {
			return fmt.Errorf("index: plan group %d hash count %d outside [1, %d]", g, pg.Hashes, MaxPlanHashes)
		}
		if pg.Quantum <= 0 || pg.Quantum > MaxPlanQuantum {
			return fmt.Errorf("index: plan group %d quantum %d outside [1, %d]", g, pg.Quantum, MaxPlanQuantum)
		}
	}
	return nil
}

// Clone returns a deep copy.
func (p *Plan) Clone() *Plan {
	if p == nil {
		return nil
	}
	q := *p
	q.Groups = append([]PlanGroup(nil), p.Groups...)
	return &q
}

// Equal reports whether two plans carry identical parameters.
func (p *Plan) Equal(o *Plan) bool {
	if p == nil || o == nil {
		return p == o
	}
	if p.Epoch != o.Epoch || p.Seed != o.Seed || p.Length != o.Length || len(p.Groups) != len(o.Groups) {
		return false
	}
	for i := range p.Groups {
		if p.Groups[i] != o.Groups[i] {
			return false
		}
	}
	return true
}

// GroupGeom is one group's geometry as actually built into a digest: the
// absolute bit count the weight share resolved to, plus the hash count and
// quantum carried over from the plan. Digests ship their geometry table on
// the wire, so a received adaptive digest is self-contained.
type GroupGeom struct {
	// Bits is the group's region length in bits (a multiple of 64).
	Bits uint64
	// Hashes is the group's hash count.
	Hashes uint8
	// Quantum is the group's value quantization step.
	Quantum int64
}

// GeomFPRate returns the analytic per-lookup false-positive rate of one
// group region holding n distinct quantized cells — the building block of
// the adaptive solver's objective and the statistical test harness's bound.
func GeomFPRate(g GroupGeom, n uint64) float64 {
	return bloom.AnalyticFPRate(g.Bits, int(g.Hashes), n)
}

// StaticBudgetBits returns the total filter length the *static* summary
// sizing would grant a station of the given shape — the memory budget an
// adaptive digest must fit in. It mirrors New: OptimalParams over
// residents·length insertions at DefaultFPTarget, rounded up to a power of
// two with the MinFilterBits floor.
func StaticBudgetBits(length, residents int) uint64 {
	if residents < 0 {
		residents = 0
	}
	m, _ := bloom.OptimalParams(uint64(residents)*uint64(length), DefaultFPTarget)
	return ceilPow2(m)
}

// PartitionBudget resolves a plan's relative weights into absolute
// per-group geometries under a total bit budget. Allocation is in whole
// 64-bit words, deterministic (largest-remainder with index-order
// tie-break), every group floored at one word, and the result sums to
// exactly totalBits. An error means the budget cannot cover one word per
// group; the caller must stay on the static table.
func PartitionBudget(p *Plan, totalBits uint64) ([]GroupGeom, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if totalBits%64 != 0 {
		return nil, fmt.Errorf("index: budget %d bits is not word-aligned", totalBits)
	}
	words := totalBits / 64
	n := uint64(len(p.Groups))
	if words < n {
		return nil, fmt.Errorf("index: budget %d bits cannot cover %d groups at one word each", totalBits, n)
	}
	var sumW uint64
	for _, g := range p.Groups {
		sumW += uint64(g.Weight)
	}
	// One word each up front; the remainder is split by weight share.
	spare := words - n
	alloc := make([]uint64, len(p.Groups))
	remNum := make([]uint64, len(p.Groups))
	var given uint64
	for i, g := range p.Groups {
		share := spare * uint64(g.Weight)
		alloc[i] = 1 + share/sumW
		remNum[i] = share % sumW
		given += alloc[i]
	}
	// Hand the rounding leftover out by largest fractional remainder,
	// breaking ties toward lower indexes — fully deterministic.
	for given < words {
		best := -1
		for i, r := range remNum {
			if r == 0 {
				continue
			}
			if best < 0 || r > remNum[best] {
				best = i
			}
		}
		if best < 0 {
			best = 0
		}
		alloc[best]++
		remNum[best] = 0
		given++
	}
	geoms := make([]GroupGeom, len(p.Groups))
	for i, g := range p.Groups {
		geoms[i] = GroupGeom{Bits: alloc[i] * 64, Hashes: g.Hashes, Quantum: g.Quantum}
	}
	return geoms, nil
}

// FloorDiv is the plan's quantization bucket map: the bucket of value v at
// quantum q, rounding toward negative infinity. Exported so test harnesses
// and tooling can reproduce a digest's ground truth exactly; insertion and
// probing use the same function, which is what makes quantized probing a
// monotone (conservative) superset of the raw band.
func FloorDiv(v, q int64) int64 { return floorDiv(v, q) }

// floorDiv divides rounding toward negative infinity; q must be positive.
// Accumulated pattern values are signed, and the conservative band mapping
// needs monotone quantization across zero.
func floorDiv(v, q int64) int64 {
	d := v / q
	if v%q != 0 && v < 0 {
		d--
	}
	return d
}

// newAdaptive assembles the adaptive representation: the partitioned bit
// array, per-group offsets and per-group hash families.
func newAdaptive(length int, seed, epoch uint64, geoms []GroupGeom, words []uint64, inserted, residents uint64) (*Summary, error) {
	if length <= 0 {
		return nil, fmt.Errorf("index: summary pattern length %d, want > 0", length)
	}
	if epoch == 0 {
		return nil, fmt.Errorf("index: adaptive digest epoch 0 is reserved for static")
	}
	if len(geoms) != length {
		return nil, fmt.Errorf("index: %d group geometries for length %d", len(geoms), length)
	}
	var total uint64
	offsets := make([]uint64, len(geoms))
	families := make([]hash.Family, len(geoms))
	for i, g := range geoms {
		if g.Bits == 0 || g.Bits%64 != 0 {
			return nil, fmt.Errorf("index: group %d bits %d not a positive word multiple", i, g.Bits)
		}
		if g.Hashes == 0 || g.Hashes > MaxPlanHashes {
			return nil, fmt.Errorf("index: group %d hash count %d outside [1, %d]", i, g.Hashes, MaxPlanHashes)
		}
		if g.Quantum <= 0 || g.Quantum > MaxPlanQuantum {
			return nil, fmt.Errorf("index: group %d quantum %d outside [1, %d]", i, g.Quantum, MaxPlanQuantum)
		}
		offsets[i] = total
		total += g.Bits
		if total > 1<<34 {
			return nil, fmt.Errorf("index: adaptive digest exceeds %d bits", uint64(1)<<34)
		}
		families[i] = hash.NewFamily(seed, int(g.Hashes), g.Bits)
	}
	var set *bitset.Set
	var err error
	if words == nil {
		set = bitset.New(total)
	} else if set, err = bitset.FromWords(words, total); err != nil {
		return nil, fmt.Errorf("index: %w", err)
	}
	return &Summary{
		length:    length,
		seed:      seed,
		residents: residents,
		planEpoch: epoch,
		geoms:     append([]GroupGeom(nil), geoms...),
		offsets:   offsets,
		families:  families,
		abits:     set,
		inserted:  inserted,
	}, nil
}

// BuildAdaptive constructs a station's routing digest under an adaptive
// plan, spending exactly the memory budget the static table would: the
// static sizing for len(locals) residents, partitioned by the plan's
// weights. The plan's length must match the patterns'; any shape that
// cannot be honored returns an error and the station falls back to Build.
func BuildAdaptive(p *Plan, length int, locals []pattern.Pattern) (*Summary, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if p.Length != length {
		return nil, fmt.Errorf("index: plan length %d, station length %d", p.Length, length)
	}
	geoms, err := PartitionBudget(p, StaticBudgetBits(length, len(locals)))
	if err != nil {
		return nil, err
	}
	s, err := newAdaptive(length, p.Seed, p.Epoch, geoms, nil, 0, 0)
	if err != nil {
		return nil, err
	}
	for _, l := range locals {
		if err := s.Add(l); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// AdaptiveFromParts reconstructs a received adaptive digest (wire
// decoding): the geometry table plus the partitioned bit words.
func AdaptiveFromParts(length int, seed, epoch uint64, geoms []GroupGeom, words []uint64, inserted, residents uint64) (*Summary, error) {
	return newAdaptive(length, seed, epoch, geoms, words, inserted, residents)
}

// Adaptive reports whether the summary was built under an adaptive plan.
func (s *Summary) Adaptive() bool { return s.planEpoch != 0 }

// AdaptiveEpoch returns the parameter epoch the digest was built under, or
// zero for the static table.
func (s *Summary) AdaptiveEpoch() uint64 { return s.planEpoch }

// Geometry returns a copy of the per-group geometry table (nil for static
// summaries).
func (s *Summary) Geometry() []GroupGeom {
	if s.planEpoch == 0 {
		return nil
	}
	return append([]GroupGeom(nil), s.geoms...)
}

// addAdaptive inserts one resident's cells at quantized resolution.
func (s *Summary) addAdaptive(local pattern.Pattern) {
	var buf [MaxPlanHashes]uint64
	run := int64(0)
	for g, v := range local {
		run += v
		k := key(s.seed, g, floorDiv(run, s.geoms[g].Quantum))
		off := s.offsets[g]
		for _, idx := range s.families[g].Indexes(k, buf[:0]) {
			s.abits.Set(off + idx)
		}
		s.inserted++
	}
	s.residents++
}

// containsAdaptive probes one quantized cell of one group region.
//
//dimatch:noalloc
func (s *Summary) containsAdaptive(pos int, qv int64) bool {
	k := key(s.seed, pos, qv)
	off := s.offsets[pos]
	var buf [MaxPlanHashes]uint64
	for _, idx := range s.families[pos].Indexes(k, buf[:0]) {
		if !s.abits.Test(off + idx) {
			return false
		}
	}
	return true
}
