// Package index implements the coordinator's summary-routing layer: a
// compact per-station Bloom summary of the station's resident patterns,
// probed at the data center to decide which stations a search batch must
// fan out to at all.
//
// The idea follows Bloofi (Crainiceanu & Lemire): keep a hierarchy of Bloom
// summaries above the stores so a membership query visits only the servers
// that might hold a match. Here the hierarchy is one level deep — one
// summary per station, cached at the coordinator — and the "membership"
// being summarized is the set of discriminative cells of the station's
// residents: every (position, accumulated value) pair of every resident
// pattern. A query combination can only be matched by a resident whose
// accumulated value sits inside the combination's ε band at every sampled
// position, so a station whose summary shows no resident value inside the
// band at even one sampled position cannot contribute a within-band report
// and may be skipped.
//
// The summary is a plain Bloom filter, so it has false positives (a pruned
// fan-out may still visit a station that reports nothing — a wasted probe)
// but no false negatives: a station holding a resident inside every band is
// always admitted. Routing therefore never loses a true match; see
// docs/OPERATIONS.md for the operator's view of the trade.
package index

import (
	"fmt"

	"dimatch/internal/bitset"
	"dimatch/internal/bloom"
	"dimatch/internal/core"
	"dimatch/internal/hash"
	"dimatch/internal/pattern"
)

// DefaultSeed fixes the summary key space. Every station and the
// coordinator must hash identically; the seed travels in the summary reply,
// so a deployment could vary it per station, but the stock stations all use
// this value.
const DefaultSeed = 0x51a7e5bf0c3d9a71

// DefaultFPTarget sizes a summary's filter: roughly one false admit per
// hundred probed bands. Larger stations pay proportionally more bits
// (OptimalParams is linear in insertions), keeping the false-route rate
// flat as stores grow.
const DefaultFPTarget = 0.01

// MaxProbeValues bounds the total number of membership probes one query's
// admission test may cost (every combination, every sampled position, every
// value in the ε band). A query whose bands are wider than the budget —
// huge ε against a long series — is treated as admitting every station:
// routing degrades to full fan-out rather than burning coordinator CPU.
const MaxProbeValues = 1 << 16

// saltConst spreads position salts across the key space (an odd 64-bit
// multiplier, the same construction core's position-salted keyer uses).
const saltConst = 0x8f3c9d1b5a7e42d1

// positionSalt derives the key-space salt of one pattern position.
func positionSalt(seed uint64, pos int) uint64 {
	return hash.Mix64(seed ^ (uint64(pos+1) * saltConst))
}

// key maps a (position, accumulated value) cell to the hashed element. Every
// position gets its own key space, so a value observed at hour 3 never
// satisfies a probe for hour 7.
func key(seed uint64, pos int, value int64) int64 {
	return int64(hash.Mix64(uint64(value)) ^ positionSalt(seed, pos))
}

// Summary is one station's routing summary: a Bloom filter containing the
// cell (g, acc[g]) of every resident pattern at every position g, where acc
// is the resident's accumulated (prefix-sum) form. Covering every position —
// not a fixed sample subset — is what keeps admission sound for any
// per-search sample count: whatever positions a search samples, the summary
// has the residents' values there.
//
// A Summary is immutable from the coordinator's point of view once shared:
// delta updates go through Clone + Add so concurrent probers never observe a
// half-written filter.
type Summary struct {
	length    int
	seed      uint64
	residents uint64
	filter    *bloom.Filter

	// Adaptive representation (see adaptive.go): when planEpoch is nonzero
	// the summary is a partitioned bit array — one region per pattern
	// position with its own geometry — and filter is nil.
	planEpoch uint64
	geoms     []GroupGeom
	offsets   []uint64
	families  []hash.Family
	abits     *bitset.Set
	inserted  uint64
}

// New returns an empty summary for patterns of the given length, sized for
// expectedResidents patterns at the false-positive target (DefaultFPTarget
// when fpTarget <= 0).
func New(length, expectedResidents int, fpTarget float64, seed uint64) (*Summary, error) {
	if length <= 0 {
		return nil, fmt.Errorf("index: summary pattern length %d, want > 0", length)
	}
	if fpTarget <= 0 {
		fpTarget = DefaultFPTarget
	}
	if expectedResidents < 0 {
		expectedResidents = 0
	}
	m, k := bloom.OptimalParams(uint64(expectedResidents)*uint64(length), fpTarget)
	f, err := bloom.New(ceilPow2(m), k, seed)
	if err != nil {
		return nil, err
	}
	return &Summary{length: length, seed: seed, filter: f}, nil
}

// MinFilterBits floors every summary's filter length: 64 bits keeps the
// smallest summary word-aligned, which the fold/expand union arithmetic
// (Absorb) depends on.
const MinFilterBits = 64

// ceilPow2 rounds m up to the next power of two, at least MinFilterBits.
// Power-of-two lengths cost at most 2x the optimal bit count (so the
// false-admit rate only drops) and buy the union property: with the
// double-hashed position sequence (h1 + i*h2) mod m, a filter folds onto any
// smaller power-of-two geometry and expands onto any larger one without
// losing an element — the basis of the Bloofi-style digest tree in
// index/tree.
func ceilPow2(m uint64) uint64 {
	p := uint64(MinFilterBits)
	for p < m {
		p <<= 1
	}
	return p
}

// isPow2 reports whether m is a power of two.
func isPow2(m uint64) bool { return m != 0 && m&(m-1) == 0 }

// NewUnion returns an empty union summary with explicit power-of-two
// geometry, the inner-node shape of the digest tree. bits is rounded up to
// a power of two (minimum MinFilterBits); hashes must be positive.
func NewUnion(length int, seed uint64, bits uint64, hashes int) (*Summary, error) {
	if length <= 0 {
		return nil, fmt.Errorf("index: union pattern length %d, want > 0", length)
	}
	f, err := bloom.New(ceilPow2(bits), hashes, seed)
	if err != nil {
		return nil, err
	}
	return &Summary{length: length, seed: seed, filter: f}, nil
}

// Unionable reports whether child can be conservatively absorbed into s:
// same key space (seed and pattern length), power-of-two geometries on both
// sides so the fold/expand arithmetic applies, and a child hash count no
// smaller than s's — s probes its own k positions, and each of those is
// among the k' >= k positions the child set per element. Adaptive digests
// (per-group partitioned key spaces) never union: their positions do not
// fold onto a flat geometry, so callers must keep them on the flat probe
// path.
func (s *Summary) Unionable(child *Summary) bool {
	return child != nil &&
		s.planEpoch == 0 && child.planEpoch == 0 &&
		s.seed == child.seed &&
		s.length == child.length &&
		isPow2(s.filter.M()) && isPow2(child.filter.M()) &&
		child.filter.K() >= s.filter.K()
}

// Absorb ORs child into s (fold or expand, depending on which geometry is
// larger) and accounts its residents. After a successful Absorb, every probe
// the child admits is admitted by s too — the union is strictly
// conservative. Children that fail Unionable are rejected; the caller must
// leave their station un-pruned instead.
func (s *Summary) Absorb(child *Summary) error {
	if !s.Unionable(child) {
		return fmt.Errorf("index: cannot union summaries (seed/length/geometry mismatch)")
	}
	if err := s.filter.AbsorbFold(child.filter); err != nil {
		return err
	}
	s.residents += child.residents
	return nil
}

// Saturated returns a minimal summary that admits every selective probe: all
// bits set, one accounted insertion. A region coordinator answers a summary
// pull with it when it cannot assemble a sound aggregate digest (a station
// refresh failed mid-build), so the tier above keeps visiting the subtree —
// the conservative fallback required at every tier.
func Saturated(length int, seed uint64) *Summary {
	words := []uint64{^uint64(0)}
	f, err := bloom.FromParts(words, 64, 1, seed, 1)
	if err != nil {
		panic(fmt.Sprintf("index: saturated summary: %v", err))
	}
	return &Summary{length: length, seed: seed, residents: 1, filter: f}
}

// Build constructs a summary over a station's resident patterns with the
// default seed and false-positive target — what a station does to answer a
// summary request.
func Build(length int, locals []pattern.Pattern) (*Summary, error) {
	s, err := New(length, len(locals), DefaultFPTarget, DefaultSeed)
	if err != nil {
		return nil, err
	}
	for _, l := range locals {
		if err := s.Add(l); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// Add inserts one resident pattern's cells. Adding beyond the sizing
// estimate only raises the false-admit rate (wasted probes), never causes a
// false prune.
func (s *Summary) Add(local pattern.Pattern) error {
	if len(local) != s.length {
		return fmt.Errorf("index: pattern length %d, summary wants %d", len(local), s.length)
	}
	if s.planEpoch != 0 {
		s.addAdaptive(local)
		return nil
	}
	run := int64(0)
	for g, v := range local {
		run += v
		s.filter.Add(key(s.seed, g, run))
	}
	s.residents++
	return nil
}

// Clone returns an independent deep copy, the basis of copy-on-write delta
// updates at the coordinator.
func (s *Summary) Clone() *Summary {
	if s.planEpoch != 0 {
		// The geometry tables are immutable once built and safe to share;
		// only the bit storage needs copying.
		return &Summary{
			length:    s.length,
			seed:      s.seed,
			residents: s.residents,
			planEpoch: s.planEpoch,
			geoms:     s.geoms,
			offsets:   s.offsets,
			families:  s.families,
			abits:     s.abits.Clone(),
			inserted:  s.inserted,
		}
	}
	words := append([]uint64(nil), s.filter.Words()...)
	f, err := bloom.FromParts(words, s.filter.M(), s.filter.K(), s.seed, s.filter.N())
	if err != nil {
		// The parts come from a valid filter; reconstruction cannot fail.
		panic(fmt.Sprintf("index: clone of valid summary failed: %v", err))
	}
	return &Summary{length: s.length, seed: s.seed, residents: s.residents, filter: f}
}

// contains probes one cell.
//
//dimatch:noalloc
func (s *Summary) contains(pos int, value int64) bool {
	return s.filter.Contains(key(s.seed, pos, value))
}

// bandAdmit reports whether the digest has a summarized cell inside the
// band [lo, hi] at the given position. Adaptive digests probe at the
// group's quantized resolution: floor division is monotone, so the
// quantized range is a superset of the band's inserted keys — the
// conservative direction — and costs width/q lookups.
//
//dimatch:noalloc
func (s *Summary) bandAdmit(pos int, lo, hi int64) bool {
	if s.planEpoch != 0 {
		q := s.geoms[pos].Quantum
		for qv := floorDiv(lo, q); qv <= floorDiv(hi, q); qv++ {
			if s.containsAdaptive(pos, qv) {
				return true
			}
		}
		return false
	}
	for v := lo; v <= hi; v++ {
		if s.contains(pos, v) {
			return true
		}
	}
	return false
}

// BandAdmit is the exported per-band admission primitive behind Admits:
// whether the digest would admit the single band [lo, hi] at pos. Bench and
// statistical harnesses measure per-band false-admission rates with it;
// positions outside the digest's geometry admit (never prune on
// incomparable cells), and an empty digest admits nothing.
func (s *Summary) BandAdmit(pos int, lo, hi int64) bool {
	if pos < 0 || pos >= s.length {
		return true
	}
	if s.Inserted() == 0 {
		return false
	}
	return s.bandAdmit(pos, lo, hi)
}

// Length returns the pattern length the summary covers.
func (s *Summary) Length() int { return s.length }

// Seed returns the summary's key-space seed.
func (s *Summary) Seed() uint64 { return s.seed }

// Residents returns the number of patterns added.
func (s *Summary) Residents() uint64 { return s.residents }

// Bits returns the filter length in bits (the total across group regions
// for an adaptive digest).
func (s *Summary) Bits() uint64 {
	if s.planEpoch != 0 {
		return s.abits.Len()
	}
	return s.filter.M()
}

// Hashes returns the filter's hash count. An adaptive digest has one hash
// count per group, not a single figure; it reports 0 here and exposes the
// per-group table through Geometry.
func (s *Summary) Hashes() int {
	if s.planEpoch != 0 {
		return 0
	}
	return s.filter.K()
}

// Inserted returns the number of cell insertions performed.
func (s *Summary) Inserted() uint64 {
	if s.planEpoch != 0 {
		return s.inserted
	}
	return s.filter.N()
}

// Words exposes the filter's bit storage for serialization.
func (s *Summary) Words() []uint64 {
	if s.planEpoch != 0 {
		return s.abits.Words()
	}
	return s.filter.Words()
}

// SizeBytes returns the summary's in-memory footprint — the figure an
// operator weighs against the raw store when sizing the false-route rate
// (docs/OPERATIONS.md).
func (s *Summary) SizeBytes() uint64 {
	if s.planEpoch != 0 {
		return s.abits.SizeBytes()
	}
	return s.filter.SizeBytes()
}

// FalseAdmitRate returns the analytic per-probe false-positive rate at the
// current load. For an adaptive digest this is the insertion-weighted mean
// across group regions.
func (s *Summary) FalseAdmitRate() float64 {
	if s.planEpoch == 0 {
		return s.filter.FalsePositiveRate()
	}
	if s.length == 0 {
		return 0
	}
	// Insertions spread one cell per position per resident, so each group
	// holds roughly inserted/length cells.
	perGroup := s.inserted / uint64(s.length)
	var sum float64
	for _, g := range s.geoms {
		sum += GeomFPRate(g, perGroup)
	}
	return sum / float64(len(s.geoms))
}

// FromParts reconstructs a received summary (wire decoding).
func FromParts(length int, seed uint64, words []uint64, bits uint64, hashes int, inserted, residents uint64) (*Summary, error) {
	if length <= 0 {
		return nil, fmt.Errorf("index: summary pattern length %d, want > 0", length)
	}
	f, err := bloom.FromParts(words, bits, hashes, seed, inserted)
	if err != nil {
		return nil, fmt.Errorf("index: %w", err)
	}
	return &Summary{length: length, seed: seed, residents: residents, filter: f}, nil
}

// band is one admission condition: some resident value in [lo, hi] must
// exist at position pos.
type band struct {
	pos    int
	lo, hi int64
}

// Probe is the precomputed admission test of one query: the sampled ε bands
// of every non-zero-weight combination of the query's locals. It is built
// once per search and shared across every station's summary, so the
// combination enumeration is not repeated per station.
type Probe struct {
	// combos holds one band list per combination; a summary admits the
	// query if any combination has a resident-value hit in every band.
	combos [][]band
	// selective is false when the probe budget was exceeded (or the query
	// has nothing usable): Admits then always reports true and the query
	// cannot prune anything.
	selective bool
}

// NewProbe builds a query's admission test for the given per-search sample
// count and tolerance ε. Bands use the scaled (per-position) widening
// ε·(g+1) — the accumulated-domain superset of the per-interval Eq. 2
// tolerance — so the test admits every station that could report the query
// under either tolerance mode. A probe whose total band volume exceeds
// MaxProbeValues is returned unselective rather than failing the search.
func NewProbe(q core.Query, samples int, eps int64) (Probe, error) {
	if err := q.Validate(); err != nil {
		return Probe{}, err
	}
	if samples <= 0 {
		samples = core.DefaultSamples
	}
	if eps < 0 {
		return Probe{}, fmt.Errorf("index: negative epsilon %d", eps)
	}
	positions, err := pattern.SampleIndexes(q.Length(), samples)
	if err != nil {
		return Probe{}, err
	}
	subsets, err := pattern.EnumerateSubsets(len(q.Locals))
	if err != nil {
		return Probe{}, err
	}
	p := Probe{combos: make([][]band, 0, len(subsets))}
	budget := int64(MaxProbeValues)
	for _, mask := range subsets {
		num, err := pattern.WeightNumerator(q.Locals, mask)
		if err != nil {
			return Probe{}, err
		}
		if num == 0 {
			// Zero-weight combinations are never encoded into a search
			// filter, so no station reports them; probing for one would
			// admit stations for matches that cannot be asked about.
			continue
		}
		combined, err := pattern.Combine(q.Locals, mask)
		if err != nil {
			return Probe{}, err
		}
		acc := combined.Accumulate()
		bands := make([]band, len(positions))
		for i, g := range positions {
			tol := eps * int64(g+1)
			bands[i] = band{pos: g, lo: acc[g] - tol, hi: acc[g] + tol}
			budget -= 2*tol + 1
			if budget < 0 {
				return Probe{}, nil // over budget: unselective
			}
		}
		p.combos = append(p.combos, bands)
	}
	if len(p.combos) == 0 {
		return Probe{}, nil // nothing usable: unselective
	}
	p.selective = true
	return p, nil
}

// Selective reports whether the probe can prune at all.
func (p Probe) Selective() bool { return p.selective }

// EachBand visits every (position, band) of the probe's combinations — the
// coordinator's traffic profiler consumes this to fold a search's observed
// band volume into the adaptive parameter solver. An unselective probe has
// no bands to visit.
func (p Probe) EachBand(f func(pos int, lo, hi int64)) {
	for _, bands := range p.combos {
		for _, b := range bands {
			f(b.pos, b.lo, b.hi)
		}
	}
}

// Admits reports whether the summary's station might hold a resident
// matching the probed query: some combination must have a summarized cell
// inside its band at every sampled position. An unselective probe (over
// budget) always admits; so does a summary built for a shorter pattern
// length, since its cells are incomparable and pruning on them would be
// unsound.
//
//dimatch:noalloc
func (s *Summary) Admits(p Probe) bool {
	if !p.selective {
		return true
	}
	if s.Inserted() == 0 {
		// Nothing was ever summarized: the station holds no residents and
		// cannot report, whatever the geometry.
		return false
	}
combos:
	for _, bands := range p.combos {
		for _, b := range bands {
			if b.pos >= s.length {
				return true // incomparable geometry: never prune on it
			}
			if !s.bandAdmit(b.pos, b.lo, b.hi) {
				continue combos
			}
		}
		return true
	}
	return false
}
