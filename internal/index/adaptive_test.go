package index

import (
	"testing"

	"dimatch/internal/core"
	"dimatch/internal/pattern"
)

func adaptiveFixturePlan(length int) *Plan {
	groups := make([]PlanGroup, length)
	for g := range groups {
		groups[g] = PlanGroup{
			Weight:  uint32(g + 1),
			Hashes:  uint8(3 + g%3),
			Quantum: int64(1) << uint(g%4),
		}
	}
	return &Plan{Epoch: 7, Seed: 41, Length: length, Groups: groups}
}

func adaptiveFixtureLocals(length, n int) []pattern.Pattern {
	locals := make([]pattern.Pattern, n)
	for i := range locals {
		p := make(pattern.Pattern, length)
		for j := range p {
			p[j] = int64((i*131 + j*17) % 997)
		}
		locals[i] = p
	}
	return locals
}

func TestPlanValidate(t *testing.T) {
	good := adaptiveFixturePlan(4)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := map[string]func(p *Plan){
		"zero epoch":        func(p *Plan) { p.Epoch = 0 },
		"zero length":       func(p *Plan) { p.Length = 0; p.Groups = nil },
		"group mismatch":    func(p *Plan) { p.Groups = p.Groups[:2] },
		"zero weight":       func(p *Plan) { p.Groups[1].Weight = 0 },
		"zero hashes":       func(p *Plan) { p.Groups[2].Hashes = 0 },
		"oversized hashes":  func(p *Plan) { p.Groups[0].Hashes = MaxPlanHashes + 1 },
		"zero quantum":      func(p *Plan) { p.Groups[3].Quantum = 0 },
		"oversized quantum": func(p *Plan) { p.Groups[3].Quantum = MaxPlanQuantum + 1 },
		"oversized weight":  func(p *Plan) { p.Groups[0].Weight = MaxPlanWeight + 1 },
		"too many groups":   func(p *Plan) { p.Length = MaxPlanGroups + 1 },
	}
	for name, mutate := range cases {
		p := good.Clone()
		mutate(p)
		if err := p.Validate(); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

// TestAdaptiveEqualMemory pins the ISSUE's equal-memory constraint: the
// adaptive digest partitions exactly the bits the static digest would
// allocate for the same station, regardless of how the weights skew.
func TestAdaptiveEqualMemory(t *testing.T) {
	length := 6
	locals := adaptiveFixtureLocals(length, 20)
	static, err := Build(length, locals)
	if err != nil {
		t.Fatal(err)
	}
	adaptive, err := BuildAdaptive(adaptiveFixturePlan(length), length, locals)
	if err != nil {
		t.Fatal(err)
	}
	if adaptive.Bits() != static.Bits() {
		t.Fatalf("adaptive spends %d bits, static %d — must be equal", adaptive.Bits(), static.Bits())
	}
	if adaptive.SizeBytes() != static.SizeBytes() {
		t.Fatalf("adaptive SizeBytes %d, static %d", adaptive.SizeBytes(), static.SizeBytes())
	}
}

// TestAdaptiveNoFalseNegatives is the recall side of the digest contract:
// every resident's own pattern must be admitted at every sample count and
// tolerance, because a routing digest may only over-admit, never miss.
func TestAdaptiveNoFalseNegatives(t *testing.T) {
	length := 5
	locals := adaptiveFixtureLocals(length, 24)
	sum, err := BuildAdaptive(adaptiveFixturePlan(length), length, locals)
	if err != nil {
		t.Fatal(err)
	}
	for qi, local := range locals {
		for _, samples := range []int{2, 3, 5} {
			for _, eps := range []int64{0, 1, 3} {
				q := core.Query{ID: core.QueryID(qi + 1), Locals: []pattern.Pattern{local}}
				probe, err := NewProbe(q, samples, eps)
				if err != nil {
					t.Fatal(err)
				}
				if !sum.Admits(probe) {
					t.Fatalf("resident %v missed at samples=%d eps=%d", local, samples, eps)
				}
			}
		}
	}
}

// TestAdaptiveQuantizationConservative pins the superset property the
// soundness argument rests on: for any band [lo,hi] and any quantum, the
// probed quantized range covers every value bucket a resident inside the
// band could have inserted.
func TestAdaptiveQuantizationConservative(t *testing.T) {
	for _, q := range []int64{1, 2, 4, 7, 16} {
		for lo := int64(-40); lo <= 40; lo++ {
			for hi := lo; hi <= lo+5; hi++ {
				for v := lo; v <= hi; v++ {
					if fd := floorDiv(v, q); fd < floorDiv(lo, q) || fd > floorDiv(hi, q) {
						t.Fatalf("q=%d: value %d bucket %d escapes band [%d,%d] buckets [%d,%d]",
							q, v, fd, lo, hi, floorDiv(lo, q), floorDiv(hi, q))
					}
				}
			}
		}
	}
}

// TestAdaptiveNotUnionable pins the tree-safety property: adaptive digests
// refuse to merge (with static peers and with each other), so the summary
// tree never aggregates mixed-parameter bit arrays and the coordinator falls
// back to flat per-station probing for adaptive members.
func TestAdaptiveNotUnionable(t *testing.T) {
	length := 4
	locals := adaptiveFixtureLocals(length, 16)
	static, err := Build(length, locals)
	if err != nil {
		t.Fatal(err)
	}
	adaptive, err := BuildAdaptive(adaptiveFixturePlan(length), length, locals)
	if err != nil {
		t.Fatal(err)
	}
	if static.Unionable(adaptive) || adaptive.Unionable(static) {
		t.Fatal("adaptive digest claims unionability with a static one")
	}
	other, err := BuildAdaptive(adaptiveFixturePlan(length), length, locals[:8])
	if err != nil {
		t.Fatal(err)
	}
	if adaptive.Unionable(other) {
		t.Fatal("two adaptive digests claim unionability")
	}
	if static.Unionable(static.Clone()) != true {
		t.Fatal("static unionability regressed")
	}
}

// TestAdaptiveCloneAndAdd: Clone must deep-copy the bit array (mutating the
// clone leaves the original alone) while sharing the immutable geometry.
func TestAdaptiveCloneAndAdd(t *testing.T) {
	length := 4
	locals := adaptiveFixtureLocals(length, 16)
	sum, err := BuildAdaptive(adaptiveFixturePlan(length), length, locals)
	if err != nil {
		t.Fatal(err)
	}
	clone := sum.Clone()
	extra := pattern.Pattern{901, 902, 903, 904}
	if err := clone.Add(extra); err != nil {
		t.Fatal(err)
	}
	if clone.Inserted() <= sum.Inserted() {
		t.Fatal("Add did not advance the clone's insertion count")
	}
	probe, err := NewProbe(core.Query{ID: 1, Locals: []pattern.Pattern{extra}}, length, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !clone.Admits(probe) {
		t.Fatal("clone does not admit the added resident")
	}
	if sum.Inserted() != uint64(16*length) {
		t.Fatalf("original mutated: inserted %d", sum.Inserted())
	}
}

// TestAdaptiveFromPartsRejects covers the codec-facing constructor: geometry
// and words that disagree must error rather than build an unsound digest.
func TestAdaptiveFromPartsRejects(t *testing.T) {
	length := 3
	locals := adaptiveFixtureLocals(length, 12)
	sum, err := BuildAdaptive(adaptiveFixturePlan(length), length, locals)
	if err != nil {
		t.Fatal(err)
	}
	geoms := sum.Geometry()
	words := sum.Words()
	if _, err := AdaptiveFromParts(length, sum.Seed(), sum.AdaptiveEpoch(), geoms, words, sum.Inserted(), 12); err != nil {
		t.Fatalf("faithful reconstruction rejected: %v", err)
	}
	if _, err := AdaptiveFromParts(length, sum.Seed(), sum.AdaptiveEpoch(), geoms[:2], words, sum.Inserted(), 12); err == nil {
		t.Fatal("geometry/length mismatch accepted")
	}
	if _, err := AdaptiveFromParts(length, sum.Seed(), sum.AdaptiveEpoch(), geoms, words[:len(words)-1], sum.Inserted(), 12); err == nil {
		t.Fatal("word/geometry size mismatch accepted")
	}
	if _, err := AdaptiveFromParts(length, sum.Seed(), 0, geoms, words, sum.Inserted(), 12); err == nil {
		t.Fatal("zero epoch accepted")
	}
	bad := append([]GroupGeom(nil), geoms...)
	bad[0].Bits = 63 // not word-aligned
	if _, err := AdaptiveFromParts(length, sum.Seed(), sum.AdaptiveEpoch(), bad, words, sum.Inserted(), 12); err == nil {
		t.Fatal("unaligned group accepted")
	}
}

// TestPartitionBudgetExact: weights resolve to word-aligned regions that sum
// exactly to the budget, with every group keeping at least one word.
func TestPartitionBudgetExact(t *testing.T) {
	p := &Plan{Epoch: 1, Seed: 1, Length: 5, Groups: []PlanGroup{
		{Weight: 1, Hashes: 2, Quantum: 1},
		{Weight: 1000, Hashes: 8, Quantum: 1},
		{Weight: 3, Hashes: 3, Quantum: 2},
		{Weight: 7, Hashes: 4, Quantum: 4},
		{Weight: 11, Hashes: 5, Quantum: 8},
	}}
	for _, budget := range []uint64{5 * 64, 8 * 64, 1 << 12, 1 << 16} {
		geoms, err := PartitionBudget(p, budget)
		if err != nil {
			t.Fatal(err)
		}
		var total uint64
		for g, geom := range geoms {
			if geom.Bits == 0 || geom.Bits%64 != 0 {
				t.Fatalf("budget %d: group %d got %d bits", budget, g, geom.Bits)
			}
			total += geom.Bits
		}
		if total != budget {
			t.Fatalf("budget %d: partition sums to %d", budget, total)
		}
	}
	if _, err := PartitionBudget(p, 4*64); err == nil {
		t.Fatal("budget below one word per group accepted")
	}
}

func TestFloorDiv(t *testing.T) {
	cases := []struct{ v, q, want int64 }{
		{7, 2, 3}, {-7, 2, -4}, {-1, 4, -1}, {-4, 4, -1}, {-5, 4, -2}, {0, 3, 0}, {5, 5, 1},
	}
	for _, c := range cases {
		if got := floorDiv(c.v, c.q); got != c.want {
			t.Errorf("floorDiv(%d,%d) = %d, want %d", c.v, c.q, got, c.want)
		}
	}
}
