package hash

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMix64Bijective(t *testing.T) {
	// A bijection cannot collide; spot-check a window of inputs.
	seen := make(map[uint64]uint64, 4096)
	for i := uint64(0); i < 4096; i++ {
		h := Mix64(i)
		if prev, ok := seen[h]; ok {
			t.Fatalf("Mix64 collision: Mix64(%d) == Mix64(%d) == %#x", i, prev, h)
		}
		seen[h] = i
	}
}

func TestMix64Avalanche(t *testing.T) {
	// Flipping one input bit should flip roughly half the output bits.
	const trials = 256
	var totalFlips, totalBits int
	for i := 0; i < trials; i++ {
		x := Mix64(uint64(i) * 0x1234567) // arbitrary spread of inputs
		for bit := 0; bit < 64; bit++ {
			diff := Mix64(x) ^ Mix64(x^(1<<bit))
			totalFlips += popcount64(diff)
			totalBits += 64
		}
	}
	ratio := float64(totalFlips) / float64(totalBits)
	if math.Abs(ratio-0.5) > 0.02 {
		t.Fatalf("avalanche ratio = %.4f, want within 0.02 of 0.5", ratio)
	}
}

func popcount64(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

func TestNewFamilyPanics(t *testing.T) {
	tests := []struct {
		name string
		k    int
		m    uint64
	}{
		{name: "zero k", k: 0, m: 8},
		{name: "negative k", k: -1, m: 8},
		{name: "zero m", k: 3, m: 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			NewFamily(1, tt.k, tt.m)
		})
	}
}

func TestFamilyDeterministicAcrossInstances(t *testing.T) {
	f1 := NewFamily(42, 5, 1<<20)
	f2 := NewFamily(42, 5, 1<<20)
	for _, v := range []int64{0, 1, -1, 12345, math.MaxInt64, math.MinInt64} {
		a := f1.Indexes(v, nil)
		b := f2.Indexes(v, nil)
		if len(a) != len(b) {
			t.Fatalf("length mismatch: %d vs %d", len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("index %d for value %d: %d vs %d", i, v, a[i], b[i])
			}
		}
	}
}

func TestFamilySeedChangesIndexes(t *testing.T) {
	f1 := NewFamily(1, 4, 1<<16)
	f2 := NewFamily(2, 4, 1<<16)
	same := 0
	const n = 1000
	for v := int64(0); v < n; v++ {
		a := f1.Indexes(v, nil)
		b := f2.Indexes(v, nil)
		equal := true
		for i := range a {
			if a[i] != b[i] {
				equal = false
				break
			}
		}
		if equal {
			same++
		}
	}
	if same > n/100 {
		t.Fatalf("%d/%d values hashed identically under different seeds", same, n)
	}
}

func TestFamilyIndexesInRange(t *testing.T) {
	f := NewFamily(7, 6, 1000) // non-power-of-two range
	err := quick.Check(func(v int64) bool {
		for _, idx := range f.Indexes(v, nil) {
			if idx >= 1000 {
				return false
			}
		}
		return true
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestFamilyIndexMatchesIndexes(t *testing.T) {
	f := NewFamily(9, 7, 1<<14)
	err := quick.Check(func(v int64) bool {
		all := f.Indexes(v, nil)
		for i := range all {
			if f.Index(v, i) != all[i] {
				return false
			}
		}
		return true
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestFamilyIndexesAppendsToDst(t *testing.T) {
	f := NewFamily(3, 2, 64)
	dst := make([]uint64, 0, 8)
	dst = f.Indexes(1, dst)
	dst = f.Indexes(2, dst)
	if len(dst) != 4 {
		t.Fatalf("len(dst) = %d, want 4", len(dst))
	}
	fresh := append(f.Indexes(1, nil), f.Indexes(2, nil)...)
	for i := range dst {
		if dst[i] != fresh[i] {
			t.Fatalf("dst[%d] = %d, want %d", i, dst[i], fresh[i])
		}
	}
}

func TestFamilyUniformity(t *testing.T) {
	// Chi-squared sanity check: hash 64k sequential integers into 256
	// buckets with one hash function and verify the statistic is not wildly
	// off. Sequential integers are the adversarial case for weak mixers.
	const (
		buckets = 256
		n       = 1 << 16
	)
	f := NewFamily(123, 1, buckets)
	counts := make([]int, buckets)
	for v := int64(0); v < n; v++ {
		counts[f.Index(v, 0)]++
	}
	expected := float64(n) / buckets
	chi2 := 0.0
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	// 255 degrees of freedom: mean 255, stddev ~22.6. Allow a generous
	// ±8 sigma band so the test is stable while still catching a broken mixer
	// (which lands orders of magnitude away).
	if chi2 < 255-8*22.6 || chi2 > 255+8*22.6 {
		t.Fatalf("chi-squared = %.1f, outside sanity band around 255", chi2)
	}
}

func TestFamilyKDistinctnessForPow2M(t *testing.T) {
	// With odd h2 and power-of-two m, the k probe positions of one value are
	// distinct whenever k <= m.
	f := NewFamily(5, 8, 64)
	for v := int64(0); v < 2000; v++ {
		seen := make(map[uint64]bool, 8)
		for _, idx := range f.Indexes(v, nil) {
			if seen[idx] {
				t.Fatalf("value %d produced duplicate probe index %d", v, idx)
			}
			seen[idx] = true
		}
	}
}

func BenchmarkFamilyIndexes(b *testing.B) {
	f := NewFamily(1, 7, 1<<22)
	dst := make([]uint64, 0, 7)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		dst = f.Indexes(int64(i), dst[:0])
	}
	_ = dst
}
