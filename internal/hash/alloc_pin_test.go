// AllocsPerRun pins for the //dimatch:noalloc functions of this package.
// The noalloc analyzer is the static early warning; these tests are the
// runtime ground truth. cmd/di-lint -allocharness reports any annotated
// function missing from this file.
package hash

import "testing"

var mixSink uint64

func TestNoallocMix64(t *testing.T) {
	if n := testing.AllocsPerRun(100, func() {
		mixSink = Mix64(mixSink + 0x9e3779b9)
	}); n != 0 {
		t.Fatalf("Mix64 allocates %v times per run; //dimatch:noalloc requires 0", n)
	}
}
