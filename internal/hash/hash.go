// Package hash provides the deterministic hash family used by the Bloom
// filter variants in this repository.
//
// The data center encodes query patterns into a filter and ships it to base
// stations, which probe the same filter against their local data. Both sides
// must therefore derive bit-for-bit identical hash values for the same input
// on any machine and in any process. The package consequently avoids
// process-seeded hashes (hash/maphash) and uses a fixed, explicitly seeded
// 64-bit mixing function instead.
//
// K independent-enough hash functions are derived from two base hashes with
// the Kirsch–Mitzenmacher double-hashing construction,
//
//	h_i(x) = h1(x) + i*h2(x)  (mod m),
//
// which preserves the asymptotic false-positive behaviour of k independent
// hashes while costing only two hash evaluations per element.
package hash

// Golden-ratio odd constants used by the splitmix64 finalizer.
const (
	splitmixGamma = 0x9e3779b97f4a7c15
	mixMul1       = 0xbf58476d1ce4e5b9
	mixMul2       = 0x94d049bb133111eb
)

// Mix64 applies the splitmix64 finalizer to x, producing a well-distributed
// 64-bit value. It is a bijection on uint64, so distinct inputs can never
// collide at this stage.
//
//dimatch:noalloc
func Mix64(x uint64) uint64 {
	x += splitmixGamma
	x = (x ^ (x >> 30)) * mixMul1
	x = (x ^ (x >> 27)) * mixMul2
	return x ^ (x >> 31)
}

// Family is a deterministic family of k hash functions over signed 64-bit
// values, mapping each value to k indices in [0, m).
//
// The zero value is not usable; construct with NewFamily.
type Family struct {
	seed1 uint64
	seed2 uint64
	k     int
	m     uint64
}

// NewFamily returns a hash family of k functions onto the range [0, m).
// Families built with equal (seed, k, m) are interchangeable across
// processes. k and m must be positive.
func NewFamily(seed uint64, k int, m uint64) Family {
	if k <= 0 {
		panic("hash: k must be positive")
	}
	if m == 0 {
		panic("hash: m must be positive")
	}
	return Family{
		// Derive two decorrelated seeds from the user seed.
		seed1: Mix64(seed),
		seed2: Mix64(seed ^ 0xa5a5a5a5a5a5a5a5),
		k:     k,
		m:     m,
	}
}

// K returns the number of hash functions in the family.
func (f Family) K() int { return f.k }

// M returns the size of the index range.
func (f Family) M() uint64 { return f.m }

// Indexes appends the k bit indices for value v to dst and returns the
// extended slice. Passing a reusable dst avoids per-call allocations on the
// hot path (stations hash every resident pattern against the filter).
func (f Family) Indexes(v int64, dst []uint64) []uint64 {
	h1, h2 := f.base(v)
	for i := 0; i < f.k; i++ {
		dst = append(dst, (h1+uint64(i)*h2)%f.m)
	}
	return dst
}

// Index returns the i-th hash of v, for i in [0, k).
func (f Family) Index(v int64, i int) uint64 {
	h1, h2 := f.base(v)
	return (h1 + uint64(i)*h2) % f.m
}

// base computes the two underlying hashes for the double-hashing scheme.
// h2 is forced odd so that, for power-of-two m, the probe sequence visits m
// distinct slots; for general m it simply avoids the degenerate h2 = 0.
func (f Family) base(v int64) (h1, h2 uint64) {
	x := uint64(v)
	h1 = Mix64(x ^ f.seed1)
	h2 = Mix64(x^f.seed2) | 1
	return h1, h2
}
