package cdr

import (
	"math"

	"dimatch/internal/hash"
)

// Person is one synthetic mobile-phone user. Category is the ground-truth
// label used by the effectiveness experiments (Table II).
type Person struct {
	ID       PersonID
	Category Category
	// Anchors maps each role the category uses to the base station where
	// that slice of the person's life happens. Distinct roles may share a
	// station (living next to the office), which is exactly the
	// incomplete-pattern aggregation case DI-matching must handle.
	Anchors map[Role]StationID
	// Outlier marks persons with doubled jitter range (Config.OutlierRate).
	Outlier bool
}

// mix folds a sequence of values into one well-distributed 64-bit key. All
// randomness in the generator derives from such keys, so generation is
// order-independent and reproducible.
func mix(vals ...uint64) uint64 {
	h := uint64(0x6a09e667f3bcc909)
	for _, v := range vals {
		h = hash.Mix64(h ^ v)
	}
	return h
}

// boundedInt maps a key to a uniform integer in [lo, hi].
func boundedInt(key uint64, lo, hi int64) int64 {
	if hi <= lo {
		return lo
	}
	span := uint64(hi - lo + 1)
	return lo + int64(key%span)
}

// unitFloat maps a key to [0, 1).
func unitFloat(key uint64) float64 {
	return float64(key>>11) / float64(1<<53)
}

// Zone tags in the mix keys, so each random decision has its own stream.
const (
	tagCategory = iota + 1
	tagOutlier
	tagAnchor
	tagJitterCalls
	tagJitterMinutes
	tagJitterPartners
	tagSplit
	tagContact
	tagScale
)

// newPerson derives person id deterministically from the config.
func newPerson(cfg Config, id PersonID) Person {
	cat := assignCategory(cfg, id)
	p := Person{
		ID:       id,
		Category: cat,
		Anchors:  make(map[Role]StationID, numRoles),
		Outlier:  unitFloat(mix(cfg.Seed, uint64(id), tagOutlier)) < cfg.OutlierRate,
	}
	prof := profileFor(cat)
	for _, role := range prof.roles {
		p.Anchors[role] = anchorStation(cfg, id, cat, role)
	}
	return p
}

// assignCategory picks a person's category: round-robin when the mix is
// uniform (exact proportions), weighted hashing otherwise.
func assignCategory(cfg Config, id PersonID) Category {
	cats := Categories()
	if len(cfg.CategoryWeights) == 0 {
		return cats[uint64(id)%numCategories]
	}
	var total float64
	for _, w := range cfg.CategoryWeights {
		total += w
	}
	u := unitFloat(mix(cfg.Seed, uint64(id), tagCategory)) * total
	for i, w := range cfg.CategoryWeights {
		if u < w {
			return cats[i]
		}
		u -= w
	}
	return cats[len(cats)-1]
}

// gridDims returns the station grid dimensions (gw columns × gh rows,
// gw*gh >= cfg.Stations).
func gridDims(cfg Config) (gw, gh int) {
	gw = int(math.Ceil(math.Sqrt(float64(cfg.Stations))))
	gh = (cfg.Stations + gw - 1) / gw
	return gw, gh
}

// anchorStation places a person's role anchor in the city. Work-like roles
// concentrate in category zones (downtown, campus, industrial, nightlife);
// home is spread across the whole city; leisure sits near home.
func anchorStation(cfg Config, id PersonID, cat Category, role Role) StationID {
	gw, gh := gridDims(cfg)
	key := mix(cfg.Seed, uint64(id), tagAnchor, uint64(cat), uint64(role))

	var cx, cy, radius float64 // grid-fraction center and scatter radius
	switch role {
	case RoleHome:
		cx, cy = unitFloat(key), unitFloat(hash.Mix64(key))
		radius = 0.05
	case RoleWork:
		switch cat {
		case OfficeWorker:
			cx, cy, radius = 0.5, 0.5, 0.08
		case Student:
			cx, cy, radius = 0.2, 0.2, 0.06
		case NightShift:
			cx, cy, radius = 0.8, 0.2, 0.08
		case FieldSales:
			cx, cy, radius = 0.5, 0.6, 0.1
		case Entertainment:
			cx, cy, radius = 0.65, 0.5, 0.06
		default:
			cx, cy, radius = 0.5, 0.5, 0.1
		}
	case RoleLeisure:
		// Near home, offset toward the city's leisure belt.
		hk := mix(cfg.Seed, uint64(id), tagAnchor, uint64(cat), uint64(RoleHome))
		cx = 0.7*unitFloat(hk) + 0.3*0.6
		cy = 0.7*unitFloat(hash.Mix64(hk)) + 0.3*0.45
		radius = 0.08
	case RoleExtra:
		// Client districts: scattered city-wide per person.
		cx, cy = unitFloat(key^0xabcd), unitFloat(hash.Mix64(key^0xabcd))
		radius = 0.15
	}

	dx := (unitFloat(hash.Mix64(key^1)) - 0.5) * 2 * radius
	dy := (unitFloat(hash.Mix64(key^2)) - 0.5) * 2 * radius
	col := clampInt(int(math.Round((cx+dx)*float64(gw-1))), 0, gw-1)
	row := clampInt(int(math.Round((cy+dy)*float64(gh-1))), 0, gh-1)
	s := row*gw + col
	if s >= cfg.Stations {
		s = cfg.Stations - 1
	}
	return StationID(s)
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// contactPool returns n distinct callee IDs for a person, drawn from an
// extended universe of twice the population (the second half models
// out-of-network numbers), never including the person itself.
func contactPool(cfg Config, id PersonID, n int) []PersonID {
	universe := uint64(2 * cfg.Persons)
	if universe < 2 {
		universe = 2
	}
	out := make([]PersonID, 0, n)
	seen := make(map[PersonID]bool, n+1)
	seen[id] = true
	for i := uint64(0); len(out) < n; i++ {
		cand := PersonID(mix(cfg.Seed, uint64(id), tagContact, i) % universe)
		if seen[cand] {
			continue
		}
		seen[cand] = true
		out = append(out, cand)
	}
	return out
}
