package cdr

// Role is a slot in a person's daily routine; each role maps to one anchor
// base station for that person. Roles are the mechanism behind the paper's
// Observation 2: two same-category persons use different stations, but the
// slice of activity each role contributes is category-typical, so their
// per-station local patterns are mutually similar.
type Role int

const (
	RoleHome Role = iota
	RoleWork
	RoleLeisure
	RoleExtra

	numRoles = 4
)

func (r Role) String() string {
	switch r {
	case RoleHome:
		return "home"
	case RoleWork:
		return "work"
	case RoleLeisure:
		return "leisure"
	case RoleExtra:
		return "extra"
	default:
		return "unknown"
	}
}

// profile defines one category's deterministic behaviour: how much calling
// happens at each hour, where it happens, and how long/spread the calls are.
type profile struct {
	// diurnal is the relative activity weight per hour of day; it need not
	// be normalized.
	diurnal [24]float64
	// callsPerDay is the mean weekday call volume.
	callsPerDay float64
	// weekendFactor scales weekend volume.
	weekendFactor float64
	// minutesPerCall is the mean call duration in minutes.
	minutesPerCall float64
	// partnerRatio is distinct partners per call (0..1].
	partnerRatio float64
	// location[h][r] is the fraction of hour-h activity happening at role r.
	// Rows must sum to 1 over the roles the category uses.
	location [24][numRoles]float64
	// roles lists the roles this category occupies (and therefore how many
	// anchor stations, hence local patterns, its members have).
	roles []Role
}

// hoursBlock fills location rows h0..h1-1 with the given role fractions.
func (p *profile) hoursBlock(h0, h1 int, fractions [numRoles]float64) {
	for h := h0; h < h1; h++ {
		p.location[h] = fractions
	}
}

// profiles returns the six category definitions. The curves are crafted so
// that (a) each repeats daily (Observation 1, periodicity), (b) total
// volumes differ enough across categories that accumulated curves diverge
// (Observation 1, divisibility; Figure 3) and (c) every category has a
// distinct peak structure (Figure 1a).
func profileFor(c Category) profile {
	var p profile
	switch c {
	case OfficeWorker:
		p.callsPerDay = 24
		p.weekendFactor = 0.5
		p.minutesPerCall = 3
		p.partnerRatio = 0.6
		p.roles = []Role{RoleHome, RoleWork, RoleLeisure}
		for h := 8; h < 12; h++ {
			p.diurnal[h] = 2.0
		}
		for h := 14; h < 18; h++ {
			p.diurnal[h] = 2.4
		}
		for h := 19; h < 23; h++ {
			p.diurnal[h] = 1.0
		}
		p.diurnal[7], p.diurnal[12], p.diurnal[13], p.diurnal[18] = 0.6, 1.2, 1.2, 1.1
		p.hoursBlock(0, 8, [numRoles]float64{RoleHome: 1})
		p.hoursBlock(8, 18, [numRoles]float64{RoleHome: 0.05, RoleWork: 0.95})
		p.hoursBlock(18, 20, [numRoles]float64{RoleHome: 0.5, RoleLeisure: 0.5})
		p.hoursBlock(20, 24, [numRoles]float64{RoleHome: 0.9, RoleLeisure: 0.1})
	case Student:
		p.callsPerDay = 15
		p.weekendFactor = 1.3
		p.minutesPerCall = 4
		p.partnerRatio = 0.45
		p.roles = []Role{RoleHome, RoleWork, RoleLeisure} // work = campus
		for h := 10; h < 13; h++ {
			p.diurnal[h] = 1.0
		}
		for h := 16; h < 20; h++ {
			p.diurnal[h] = 2.0
		}
		for h := 20; h < 24; h++ {
			p.diurnal[h] = 2.6
		}
		p.diurnal[9], p.diurnal[14], p.diurnal[15] = 0.5, 0.8, 0.9
		p.hoursBlock(0, 9, [numRoles]float64{RoleHome: 1})
		p.hoursBlock(9, 17, [numRoles]float64{RoleHome: 0.1, RoleWork: 0.9})
		p.hoursBlock(17, 22, [numRoles]float64{RoleHome: 0.3, RoleLeisure: 0.7})
		p.hoursBlock(22, 24, [numRoles]float64{RoleHome: 0.8, RoleLeisure: 0.2})
	case NightShift:
		p.callsPerDay = 10
		p.weekendFactor = 0.9
		p.minutesPerCall = 2
		p.partnerRatio = 0.5
		p.roles = []Role{RoleHome, RoleWork}
		for h := 0; h < 5; h++ {
			p.diurnal[h] = 1.8
		}
		for h := 15; h < 19; h++ {
			p.diurnal[h] = 1.2
		}
		for h := 21; h < 24; h++ {
			p.diurnal[h] = 2.2
		}
		p.diurnal[5], p.diurnal[14], p.diurnal[19], p.diurnal[20] = 1.0, 0.5, 0.8, 1.4
		p.hoursBlock(0, 7, [numRoles]float64{RoleWork: 1})
		p.hoursBlock(7, 14, [numRoles]float64{RoleHome: 1})
		p.hoursBlock(14, 21, [numRoles]float64{RoleHome: 0.8, RoleLeisure: 0.2})
		p.hoursBlock(21, 24, [numRoles]float64{RoleWork: 1})
		// Leisure appears in the schedule with small weight but is not an
		// anchor role for this category; fold it into home.
		for h := 14; h < 21; h++ {
			p.location[h][RoleHome] += p.location[h][RoleLeisure]
			p.location[h][RoleLeisure] = 0
		}
	case Retiree:
		p.callsPerDay = 6
		p.weekendFactor = 1.0
		p.minutesPerCall = 8
		p.partnerRatio = 0.35
		p.roles = []Role{RoleHome, RoleLeisure}
		for h := 8; h < 11; h++ {
			p.diurnal[h] = 2.0
		}
		for h := 15; h < 18; h++ {
			p.diurnal[h] = 1.5
		}
		p.diurnal[7], p.diurnal[11], p.diurnal[12], p.diurnal[19] = 0.8, 1.2, 0.6, 0.7
		p.hoursBlock(0, 9, [numRoles]float64{RoleHome: 1})
		p.hoursBlock(9, 12, [numRoles]float64{RoleHome: 0.4, RoleLeisure: 0.6})
		p.hoursBlock(12, 24, [numRoles]float64{RoleHome: 0.85, RoleLeisure: 0.15})
	case FieldSales:
		p.callsPerDay = 40
		p.weekendFactor = 0.6
		p.minutesPerCall = 2
		p.partnerRatio = 0.85
		p.roles = []Role{RoleHome, RoleWork, RoleLeisure, RoleExtra} // extra = client district
		for h := 8; h < 20; h++ {
			p.diurnal[h] = 2.0
		}
		p.diurnal[7], p.diurnal[20], p.diurnal[21] = 1.0, 1.0, 0.5
		p.hoursBlock(0, 8, [numRoles]float64{RoleHome: 1})
		p.hoursBlock(8, 11, [numRoles]float64{RoleWork: 0.7, RoleExtra: 0.3})
		p.hoursBlock(11, 16, [numRoles]float64{RoleWork: 0.2, RoleExtra: 0.8})
		p.hoursBlock(16, 19, [numRoles]float64{RoleWork: 0.6, RoleExtra: 0.4})
		p.hoursBlock(19, 24, [numRoles]float64{RoleHome: 0.7, RoleLeisure: 0.3})
	case Entertainment:
		p.callsPerDay = 20
		p.weekendFactor = 1.8
		p.minutesPerCall = 5
		p.partnerRatio = 0.7
		p.roles = []Role{RoleHome, RoleWork, RoleLeisure} // work = venue
		for h := 11; h < 14; h++ {
			p.diurnal[h] = 0.8
		}
		for h := 18; h < 24; h++ {
			p.diurnal[h] = 2.4
		}
		p.diurnal[10], p.diurnal[14], p.diurnal[15], p.diurnal[16], p.diurnal[17] = 0.4, 0.6, 0.6, 0.9, 1.4
		p.hoursBlock(0, 11, [numRoles]float64{RoleHome: 1})
		p.hoursBlock(11, 17, [numRoles]float64{RoleHome: 0.2, RoleWork: 0.8})
		p.hoursBlock(17, 24, [numRoles]float64{RoleWork: 0.6, RoleLeisure: 0.4})
	default:
		// Unknown categories behave like a flat low-volume profile; callers
		// validate categories, so this is a conservative fallback.
		p.callsPerDay = 5
		p.weekendFactor = 1
		p.minutesPerCall = 2
		p.partnerRatio = 0.5
		p.roles = []Role{RoleHome}
		for h := range p.diurnal {
			p.diurnal[h] = 1
		}
		p.hoursBlock(0, 24, [numRoles]float64{RoleHome: 1})
	}
	return p
}

// diurnalTotal returns the sum of hourly weights, the normalization base.
func (p profile) diurnalTotal() float64 {
	var s float64
	for _, w := range p.diurnal {
		s += w
	}
	return s
}
