package cdr

import "testing"

func TestSynthesizeIntervalRealizesTriple(t *testing.T) {
	cfg := DefaultConfig()
	person := newPerson(cfg, 3)
	contacts := contactPool(cfg, person.ID, 10)
	tr := triple{calls: 5, minutes: 7, partners: 3}
	recs, err := synthesizeInterval(cfg, person, 4, 1, 2, tr, contacts)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(recs)) != tr.calls {
		t.Fatalf("%d records, want %d", len(recs), tr.calls)
	}
	var durSec int64
	distinct := make(map[PersonID]bool)
	intervalSec := cfg.intervalMinutes() * 60
	for _, r := range recs {
		if r.Caller != person.ID || r.Station != 4 || r.Day != 1 {
			t.Fatalf("record fields wrong: %+v", r)
		}
		if r.Type != MobileOriginated {
			t.Fatalf("record type = %v", r.Type)
		}
		if r.StartSec < 2*intervalSec || r.StartSec >= 3*intervalSec {
			t.Fatalf("record start %d outside interval 2", r.StartSec)
		}
		durSec += int64(r.DurSec)
		distinct[r.Callee] = true
	}
	if durSec != tr.minutes*60 {
		t.Fatalf("total duration %ds, want %ds", durSec, tr.minutes*60)
	}
	if int64(len(distinct)) != tr.partners {
		t.Fatalf("%d distinct partners, want %d", len(distinct), tr.partners)
	}
}

func TestSynthesizeIntervalZeroCalls(t *testing.T) {
	cfg := DefaultConfig()
	recs, err := synthesizeInterval(cfg, newPerson(cfg, 1), 0, 0, 0, triple{}, nil)
	if err != nil || recs != nil {
		t.Fatalf("zero triple: recs=%v err=%v", recs, err)
	}
}

func TestSynthesizeIntervalRejectsUnrealizable(t *testing.T) {
	cfg := DefaultConfig()
	person := newPerson(cfg, 1)
	contacts := contactPool(cfg, person.ID, 4)
	if _, err := synthesizeInterval(cfg, person, 0, 0, 0, triple{calls: 2, partners: 3}, contacts); err == nil {
		t.Fatal("partners > calls accepted")
	}
	if _, err := synthesizeInterval(cfg, person, 0, 0, 0, triple{calls: 9, partners: 8}, contacts); err == nil {
		t.Fatal("insufficient contact pool accepted")
	}
}

func TestContactPool(t *testing.T) {
	cfg := DefaultConfig()
	pool := contactPool(cfg, 5, 20)
	if len(pool) != 20 {
		t.Fatalf("pool size %d", len(pool))
	}
	seen := make(map[PersonID]bool)
	for _, c := range pool {
		if c == 5 {
			t.Fatal("contact pool contains self")
		}
		if seen[c] {
			t.Fatalf("duplicate contact %d", c)
		}
		seen[c] = true
	}
	// Deterministic.
	pool2 := contactPool(cfg, 5, 20)
	for i := range pool {
		if pool[i] != pool2[i] {
			t.Fatal("contact pool not deterministic")
		}
	}
}

func TestAnchorStationsInRange(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Stations = 49
	for id := 0; id < 200; id++ {
		p := newPerson(cfg, PersonID(id))
		if len(p.Anchors) == 0 {
			t.Fatalf("person %d has no anchors", id)
		}
		for role, s := range p.Anchors {
			if int(s) >= cfg.Stations {
				t.Fatalf("person %d role %v anchored at station %d >= %d", id, role, s, cfg.Stations)
			}
		}
	}
}

func TestAnchorWorkZonesCluster(t *testing.T) {
	// Observation 2's engine: same-category persons work in the same zone,
	// so their work anchors concentrate on few stations.
	cfg := DefaultConfig()
	cfg.Stations = 100
	stations := make(map[StationID]bool)
	persons := 0
	for id := 0; persons < 40; id++ {
		p := newPerson(cfg, PersonID(id))
		if p.Category != OfficeWorker {
			continue
		}
		persons++
		stations[p.Anchors[RoleWork]] = true
	}
	if len(stations) > 15 {
		t.Fatalf("office workers spread over %d work stations; want clustered", len(stations))
	}
}

func TestLayoutCells(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Stations = 10
	cells := layoutCells(cfg)
	if len(cells) != 10 {
		t.Fatalf("%d cells", len(cells))
	}
	seen := make(map[[2]float64]bool)
	for i, c := range cells {
		if c.Station != StationID(i) {
			t.Fatalf("cell %d has station %d", i, c.Station)
		}
		key := [2]float64{c.X, c.Y}
		if seen[key] {
			t.Fatalf("duplicate cell position %v", key)
		}
		seen[key] = true
	}
}

func TestExtractIgnoresMobileTerminated(t *testing.T) {
	cfg := testConfig()
	rs, err := GenerateRecords(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Extract(rs)
	if err != nil {
		t.Fatal(err)
	}
	// Add an incoming-call record for person 0; patterns must not change.
	var anyStation StationID
	for s := range rs.Records {
		anyStation = s
		break
	}
	rs.Records[anyStation] = append(rs.Records[anyStation], CDR{
		Caller:  0,
		Type:    MobileTerminated,
		Callee:  1,
		Station: anyStation,
		Day:     0,
		DurSec:  600,
	})
	got, err := Extract(rs)
	if err != nil {
		t.Fatal(err)
	}
	if !got.GlobalOf(0).Equal(want.GlobalOf(0)) {
		t.Fatal("MobileTerminated record changed a pattern")
	}
}

func TestExtractRejectsBadRecords(t *testing.T) {
	cfg := testConfig()
	rs, err := GenerateRecords(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rs.Records[0] = append(rs.Records[0], CDR{Caller: 1, Type: MobileOriginated, Day: 99})
	if _, err := Extract(rs); err == nil {
		t.Fatal("out-of-window day accepted")
	}
	rs, err = GenerateRecords(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rs.Records[0] = append(rs.Records[0], CDR{Caller: 1, Type: MobileOriginated, Day: 0, StartSec: 999999})
	if _, err := Extract(rs); err == nil {
		t.Fatal("out-of-day start accepted")
	}
}

func TestRoleStrings(t *testing.T) {
	for r := RoleHome; r <= RoleExtra; r++ {
		if r.String() == "unknown" {
			t.Fatalf("role %d unnamed", r)
		}
	}
	if Role(99).String() != "unknown" {
		t.Fatal("unknown role should say so")
	}
}
