// Package cdr is the data substrate of the reproduction: a deterministic,
// city-scale synthetic generator of mobile-phone Call Detail Records (CDR)
// and Cell Detail Lists (CDL), standing in for the paper's proprietary
// 2008 dataset (3.6M users, 5120 stations, ~1 TB; see DESIGN.md §2).
//
// The generator is built around the two empirical properties DI-matching
// exploits:
//
//   - Observation 1 (periodicity/divisibility): each of six occupation
//     categories follows a periodic diurnal activity curve, and the
//     accumulated curves of different categories diverge over time.
//   - Observation 2 (local similarity): persons of one category share the
//     same home/work/leisure routine, so their per-station local patterns
//     are mutually similar, not just their global patterns.
//
// Generation is two-phase. Phase one derives exact integer target
// attributes (calls, duration minutes, distinct partners) per person,
// station and interval — category base curve plus bounded personal jitter,
// split across the person's anchor stations by the category's location
// schedule. Phase two synthesizes raw CDR records realizing those targets,
// and the extractor recovers the patterns from records alone. A property
// test pins the round trip: extract(synthesize(targets)) == targets.
package cdr

import (
	"errors"
	"fmt"
)

// PersonID identifies a mobile phone across the synthetic city.
type PersonID uint64

// StationID identifies a base station (cell).
type StationID uint32

// Category labels an occupation group, the ground truth for effectiveness
// experiments (paper Data set 2: 310 persons, six categories).
type Category int

// The six population categories, mirroring Figure 1's six curves.
const (
	OfficeWorker Category = iota + 1
	Student
	NightShift
	Retiree
	FieldSales
	Entertainment

	numCategories = 6
)

func (c Category) String() string {
	switch c {
	case OfficeWorker:
		return "office-worker"
	case Student:
		return "student"
	case NightShift:
		return "night-shift"
	case Retiree:
		return "retiree"
	case FieldSales:
		return "field-sales"
	case Entertainment:
		return "entertainment"
	default:
		return fmt.Sprintf("Category(%d)", int(c))
	}
}

// Categories returns all six categories in order.
func Categories() []Category {
	return []Category{OfficeWorker, Student, NightShift, Retiree, FieldSales, Entertainment}
}

// Config parameterizes a synthetic city.
type Config struct {
	// Seed makes the whole city reproducible. Two generators with equal
	// configs emit identical datasets.
	Seed uint64
	// Persons is the population size.
	Persons int
	// Stations is the number of base stations; they are laid out on a
	// square-ish grid (the paper's city: 5120 stations over 8700 km²).
	Stations int
	// Days is the observation window length in days.
	Days int
	// IntervalsPerDay sets the pattern resolution. The paper's default
	// interval is one minute but its figures aggregate to 6-hour units
	// (IntervalsPerDay = 4), which is also our default.
	IntervalsPerDay int
	// Noise bounds the per-interval personal jitter added to the category
	// base attributes. 0 makes every person an exact category clone.
	Noise int64
	// OutlierRate is the fraction of persons whose jitter range is doubled,
	// producing the occasional within-category outlier that keeps recall
	// realistically below 1.0 (Table II reports 0.99).
	OutlierRate float64
	// CategoryWeights optionally skews the category mix (six non-negative
	// values in category order; empty means uniform). Real populations are
	// not uniform over occupation segments, and the communication-cost
	// experiments query a minority segment as a provider would.
	CategoryWeights []float64
	// VolumeLevels quantizes per-person call volume into this many discrete
	// scale steps around the category mean (0 or 1 disables). It provides
	// within-category pattern diversity that survives exact (ε = 0)
	// matching: persons on the same level share identical patterns, persons
	// on different levels differ — the workload regime of the paper's
	// accuracy/efficiency sweep.
	VolumeLevels int
}

// DefaultConfig returns a laptop-scale city with the paper's figure
// resolution: 6-hour intervals over two days.
func DefaultConfig() Config {
	return Config{
		Seed:            1,
		Persons:         310, // paper Data set 2 population
		Stations:        64,
		Days:            2,
		IntervalsPerDay: 4,
		Noise:           1,
		OutlierRate:     0.05,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Persons <= 0 {
		return fmt.Errorf("cdr: Persons = %d, want > 0", c.Persons)
	}
	if c.Stations <= 0 {
		return fmt.Errorf("cdr: Stations = %d, want > 0", c.Stations)
	}
	if c.Days <= 0 {
		return fmt.Errorf("cdr: Days = %d, want > 0", c.Days)
	}
	if c.IntervalsPerDay <= 0 || c.IntervalsPerDay > 24*60 {
		return fmt.Errorf("cdr: IntervalsPerDay = %d, want 1..1440", c.IntervalsPerDay)
	}
	if 24*60%c.IntervalsPerDay != 0 {
		return fmt.Errorf("cdr: IntervalsPerDay = %d must divide the 1440-minute day", c.IntervalsPerDay)
	}
	if c.Noise < 0 {
		return fmt.Errorf("cdr: Noise = %d, want >= 0", c.Noise)
	}
	if c.OutlierRate < 0 || c.OutlierRate > 1 {
		return fmt.Errorf("cdr: OutlierRate = %v, want [0,1]", c.OutlierRate)
	}
	if len(c.CategoryWeights) != 0 {
		if len(c.CategoryWeights) != numCategories {
			return fmt.Errorf("cdr: %d category weights, want %d", len(c.CategoryWeights), numCategories)
		}
		var sum float64
		for i, w := range c.CategoryWeights {
			if w < 0 {
				return fmt.Errorf("cdr: negative weight for category %v", Categories()[i])
			}
			sum += w
		}
		if sum <= 0 {
			return fmt.Errorf("cdr: category weights sum to %v, want > 0", sum)
		}
	}
	if c.VolumeLevels < 0 || c.VolumeLevels > 17 {
		return fmt.Errorf("cdr: VolumeLevels = %d, want 0..17 (scale steps of 5%% stay within ±40%%)", c.VolumeLevels)
	}
	return nil
}

// Length returns the total number of intervals in the window.
func (c Config) Length() int { return c.Days * c.IntervalsPerDay }

// intervalMinutes returns the interval width in minutes.
func (c Config) intervalMinutes() int { return 24 * 60 / c.IntervalsPerDay }

// ErrUnknownPerson is returned by dataset lookups for absent IDs.
var ErrUnknownPerson = errors.New("cdr: unknown person")
