package cdr

import "fmt"

// CallType distinguishes record directions, mirroring the paper's CDR
// schema ("mobile phone ID, call type ID, opposite mobile phone ID, start
// time, call duration, ... and call moment").
type CallType int

const (
	// MobileOriginated is an outgoing call (the only type the generator
	// emits; patterns are defined over calls a person makes).
	MobileOriginated CallType = iota + 1
	// MobileTerminated is an incoming call, accepted by the extractor but
	// not counted into communication patterns.
	MobileTerminated
)

// CDR is one Call Detail Record as stored at a base station.
type CDR struct {
	Caller   PersonID
	Type     CallType
	Callee   PersonID
	Station  StationID
	Day      int
	StartSec int // seconds since midnight of Day
	DurSec   int
}

// CDL is one Cell Detail List row: a base station and its location (km).
type CDL struct {
	Station StationID
	X, Y    float64
}

// RecordSet is a full synthetic capture: the city layout, the labelled
// population and every CDR of the observation window, station-major like
// the real deployment ("the communication data are distributively stored in
// base stations").
type RecordSet struct {
	Cfg     Config
	Persons []Person
	Cells   []CDL
	// Records holds each station's CDRs, indexed by station.
	Records map[StationID][]CDR
}

// TotalRecords returns the number of CDRs across all stations.
func (rs *RecordSet) TotalRecords() int {
	n := 0
	for _, recs := range rs.Records {
		n += len(recs)
	}
	return n
}

// stationSpacingKm mimics the paper's density: 8700 km² / 5120 stations
// ≈ 1.7 km² per cell, i.e. ~1.3 km spacing.
const stationSpacingKm = 1.3

// layoutCells places cfg.Stations cells on a grid.
func layoutCells(cfg Config) []CDL {
	gw, _ := gridDims(cfg)
	cells := make([]CDL, cfg.Stations)
	for s := 0; s < cfg.Stations; s++ {
		cells[s] = CDL{
			Station: StationID(s),
			X:       float64(s%gw) * stationSpacingKm,
			Y:       float64(s/gw) * stationSpacingKm,
		}
	}
	return cells
}

// synthesizeInterval emits CDRs realizing one exact target triple for one
// person at one station in one interval: t.calls records whose durations
// sum to t.minutes*60 seconds and whose callees cover exactly t.partners
// distinct contacts.
func synthesizeInterval(cfg Config, person Person, station StationID, day, interval int, t triple, contacts []PersonID) ([]CDR, error) {
	if t.calls == 0 {
		return nil, nil
	}
	if t.partners < 1 || t.partners > t.calls {
		return nil, fmt.Errorf("cdr: unrealizable triple %+v for person %d", t, person.ID)
	}
	if int64(len(contacts)) < t.partners {
		return nil, fmt.Errorf("cdr: contact pool %d too small for %d partners", len(contacts), t.partners)
	}
	recs := make([]CDR, 0, t.calls)
	intervalSec := cfg.intervalMinutes() * 60
	startBase := interval * intervalSec
	spacing := intervalSec / int(t.calls)
	if spacing == 0 {
		spacing = 1
	}
	totalSec := t.minutes * 60
	baseDur := totalSec / t.calls
	extra := totalSec % t.calls
	for i := int64(0); i < t.calls; i++ {
		callee := contacts[0]
		if i < t.partners {
			callee = contacts[i]
		}
		dur := baseDur
		if i < extra {
			dur++
		}
		recs = append(recs, CDR{
			Caller:   person.ID,
			Type:     MobileOriginated,
			Callee:   callee,
			Station:  station,
			Day:      day,
			StartSec: startBase + int(i)*spacing,
			DurSec:   int(dur),
		})
	}
	return recs, nil
}
