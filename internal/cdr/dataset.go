package cdr

import (
	"sort"

	"dimatch/internal/pattern"
)

// Dataset is the pattern-level view of a synthetic city: per-station,
// per-person local communication patterns (Definition 1 values), plus the
// ground-truth category labels. It is what base stations load and what
// queries are built from.
type Dataset struct {
	Cfg     Config
	Persons []Person
	Cells   []CDL
	// locals[station][person] is the person's local pattern at that
	// station; only persons with activity there appear.
	locals map[StationID]map[PersonID]pattern.Pattern
}

// Length returns the pattern length (total intervals).
func (d *Dataset) Length() int { return d.Cfg.Length() }

// StationIDs returns every station that holds at least one local pattern,
// ascending.
func (d *Dataset) StationIDs() []StationID {
	out := make([]StationID, 0, len(d.locals))
	for s := range d.locals {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// StationLocals returns the local patterns stored at one station. The
// returned map is the dataset's own storage; callers must not mutate it.
func (d *Dataset) StationLocals(s StationID) map[PersonID]pattern.Pattern {
	return d.locals[s]
}

// LocalsOf returns one person's local patterns keyed by station.
func (d *Dataset) LocalsOf(id PersonID) map[StationID]pattern.Pattern {
	out := make(map[StationID]pattern.Pattern)
	for s, persons := range d.locals {
		if p, ok := persons[id]; ok {
			out[s] = p
		}
	}
	return out
}

// GlobalOf returns the person's global pattern: the element-wise sum of
// their locals (Vi = Σj Vi,j — never materialized in the distributed
// system, but available here as ground truth).
func (d *Dataset) GlobalOf(id PersonID) pattern.Pattern {
	global := make(pattern.Pattern, d.Length())
	for _, persons := range d.locals {
		if p, ok := persons[id]; ok {
			for i, v := range p {
				global[i] += v
			}
		}
	}
	return global
}

// QueryLocalsOf returns the person's local patterns ordered by station ID:
// the pattern set a service provider would submit when searching for
// customers similar to this person.
func (d *Dataset) QueryLocalsOf(id PersonID) []pattern.Pattern {
	byStation := d.LocalsOf(id)
	stations := make([]StationID, 0, len(byStation))
	for s := range byStation {
		stations = append(stations, s)
	}
	sort.Slice(stations, func(i, j int) bool { return stations[i] < stations[j] })
	out := make([]pattern.Pattern, len(stations))
	for i, s := range stations {
		out[i] = byStation[s]
	}
	return out
}

// PersonByID returns the person record.
func (d *Dataset) PersonByID(id PersonID) (Person, error) {
	if int(id) < len(d.Persons) && d.Persons[id].ID == id {
		return d.Persons[id], nil
	}
	for _, p := range d.Persons {
		if p.ID == id {
			return p, nil
		}
	}
	return Person{}, ErrUnknownPerson
}

// PersonsInCategory returns the IDs of all persons with the given label,
// ascending — the ground-truth relevant set for effectiveness metrics.
func (d *Dataset) PersonsInCategory(c Category) []PersonID {
	var out []PersonID
	for _, p := range d.Persons {
		if p.Category == c {
			out = append(out, p.ID)
		}
	}
	return out
}

// CategoryMean returns the mean global pattern of a category, as float64
// per interval (for the Figure 1a / Figure 3 reproductions).
func (d *Dataset) CategoryMean(c Category) []float64 {
	sum := make([]float64, d.Length())
	n := 0
	for _, p := range d.Persons {
		if p.Category != c {
			continue
		}
		g := d.GlobalOf(p.ID)
		for i, v := range g {
			sum[i] += float64(v)
		}
		n++
	}
	if n == 0 {
		return sum
	}
	for i := range sum {
		sum[i] /= float64(n)
	}
	return sum
}

// TotalPatternValues returns the number of stored (station, person,
// interval) values — the storage baseline the naive strategy ships.
func (d *Dataset) TotalPatternValues() uint64 {
	var n uint64
	for _, persons := range d.locals {
		n += uint64(len(persons)) * uint64(d.Length())
	}
	return n
}
