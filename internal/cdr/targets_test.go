package cdr

import (
	"testing"
	"testing/quick"
)

func TestTripleValueRounding(t *testing.T) {
	tests := []struct {
		give triple
		want int64
	}{
		{give: triple{}, want: 0},
		{give: triple{calls: 1}, want: 0},                             // 1/3 -> 0
		{give: triple{calls: 1, partners: 1}, want: 1},                // 2/3 -> 1
		{give: triple{calls: 1, minutes: 1, partners: 1}, want: 1},    // 1
		{give: triple{calls: 2, minutes: 2, partners: 1}, want: 2},    // 5/3 -> 2
		{give: triple{calls: 4, minutes: 12, partners: 2}, want: 6},   // 6
		{give: triple{calls: 10, minutes: 30, partners: 6}, want: 15}, // 46/3 -> 15.33 -> 15
	}
	for _, tt := range tests {
		if got := tt.give.value(); got != tt.want {
			t.Errorf("value(%+v) = %d, want %d", tt.give, got, tt.want)
		}
	}
}

func TestLargestRemainderProperties(t *testing.T) {
	f := func(rawTotal uint16, rawWeights [5]uint8) bool {
		total := int64(rawTotal % 1000)
		weights := make([]float64, 5)
		var sum float64
		for i, w := range rawWeights {
			weights[i] = float64(w)
			sum += float64(w)
		}
		if sum == 0 {
			weights[0] = 1
			sum = 1
		}
		for i := range weights {
			weights[i] /= sum
		}
		alloc := largestRemainder(total, weights)
		var got int64
		for _, a := range alloc {
			if a < 0 {
				return false
			}
			got += a
		}
		return got == total
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLargestRemainderExact(t *testing.T) {
	alloc := largestRemainder(10, []float64{0.5, 0.3, 0.2})
	if alloc[0] != 5 || alloc[1] != 3 || alloc[2] != 2 {
		t.Fatalf("alloc = %v", alloc)
	}
	if got := largestRemainder(0, []float64{1}); got[0] != 0 {
		t.Fatal("zero total should allocate nothing")
	}
	if got := largestRemainder(5, nil); len(got) != 0 {
		t.Fatal("empty weights should return empty")
	}
}

func TestBaseTripleInvariants(t *testing.T) {
	cfg := DefaultConfig()
	for _, c := range Categories() {
		prof := profileFor(c)
		var daySum int64
		for day := 0; day < 7; day++ {
			for i := 0; i < cfg.IntervalsPerDay; i++ {
				tr := baseTriple(prof, cfg, day, i)
				if tr.calls < 0 || tr.minutes < 0 || tr.partners < 0 {
					t.Fatalf("%v day %d interval %d: negative attribute %+v", c, day, i, tr)
				}
				if tr.calls == 0 && !tr.isZero() {
					t.Fatalf("%v: zero calls with non-zero attrs %+v", c, tr)
				}
				if tr.partners > tr.calls {
					t.Fatalf("%v: partners %d > calls %d", c, tr.partners, tr.calls)
				}
				if day == 0 {
					daySum += tr.calls
				}
			}
		}
		if daySum == 0 {
			t.Fatalf("category %v generates no weekday calls", c)
		}
	}
}

func TestBaseTripleWeekendFactor(t *testing.T) {
	cfg := DefaultConfig()
	prof := profileFor(OfficeWorker) // weekendFactor 0.5
	weekday, weekend := int64(0), int64(0)
	for i := 0; i < cfg.IntervalsPerDay; i++ {
		weekday += baseTriple(prof, cfg, 0, i).calls
		weekend += baseTriple(prof, cfg, 5, i).calls
	}
	if weekend >= weekday {
		t.Fatalf("office worker weekend volume %d >= weekday %d", weekend, weekday)
	}
}

func TestPersonTripleJitterBounded(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Noise = 2
	person := newPerson(cfg, 1)
	person.Outlier = false
	prof := profileFor(person.Category)
	for day := 0; day < cfg.Days; day++ {
		for i := 0; i < cfg.IntervalsPerDay; i++ {
			base := baseTriple(prof, cfg, day, i)
			got := personTriple(cfg, person, base, day, i)
			if base.isZero() {
				if !got.isZero() {
					t.Fatal("jitter created activity from nothing")
				}
				continue
			}
			if got.isZero() {
				continue // calls jittered to zero: allowed
			}
			if d := got.calls - base.calls; d > cfg.Noise || d < -cfg.Noise {
				t.Fatalf("calls jitter %d beyond ±%d", d, cfg.Noise)
			}
			if got.partners > got.calls || got.partners < 1 {
				t.Fatalf("invalid partners %d for calls %d", got.partners, got.calls)
			}
			if got.minutes < 0 {
				t.Fatal("negative minutes")
			}
		}
	}
}

func TestPersonTripleNoNoiseIsBase(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Noise = 0
	person := newPerson(cfg, 2)
	prof := profileFor(person.Category)
	base := baseTriple(prof, cfg, 0, 1)
	if got := personTriple(cfg, person, base, 0, 1); got != base {
		t.Fatalf("noise 0: got %+v, want %+v", got, base)
	}
}

func TestSplitTripleConservesCalls(t *testing.T) {
	cfg := DefaultConfig()
	for _, c := range Categories() {
		prof := profileFor(c)
		for i := 0; i < cfg.IntervalsPerDay; i++ {
			tr := baseTriple(prof, cfg, 0, i)
			if tr.isZero() {
				continue
			}
			_, fractions := intervalActivity(prof, cfg, i)
			byRole := splitTriple(tr, fractions, prof.roles)
			var calls int64
			for role, rt := range byRole {
				if rt.calls == 0 {
					t.Fatalf("%v: zero-call piece emitted for role %v", c, role)
				}
				if rt.partners < 1 || rt.partners > rt.calls {
					t.Fatalf("%v role %v: invalid partners %+v", c, role, rt)
				}
				calls += rt.calls
			}
			if calls != tr.calls {
				t.Fatalf("%v interval %d: split calls %d != total %d", c, i, calls, tr.calls)
			}
		}
	}
}

func TestSplitTripleEmpty(t *testing.T) {
	if got := splitTriple(triple{}, [numRoles]float64{}, []Role{RoleHome}); len(got) != 0 {
		t.Fatal("zero triple should split to nothing")
	}
	if got := splitTriple(triple{calls: 3, minutes: 3, partners: 1}, [numRoles]float64{}, nil); len(got) != 0 {
		t.Fatal("no roles should split to nothing")
	}
}

func TestIntervalActivityFractionsNormalized(t *testing.T) {
	cfg := DefaultConfig()
	for _, c := range Categories() {
		prof := profileFor(c)
		var total float64
		for i := 0; i < cfg.IntervalsPerDay; i++ {
			w, fr := intervalActivity(prof, cfg, i)
			total += w
			if w == 0 {
				continue
			}
			var sum float64
			for r := 0; r < numRoles; r++ {
				if fr[r] < -1e-9 {
					t.Fatalf("%v: negative fraction", c)
				}
				sum += fr[r]
			}
			if sum < 0.999 || sum > 1.001 {
				t.Fatalf("%v interval %d: fractions sum to %v", c, i, sum)
			}
		}
		if diff := total - prof.diurnalTotal(); diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("%v: interval weights %v do not cover diurnal total %v", c, total, prof.diurnalTotal())
		}
	}
}

func TestIntervalActivityMinuteResolution(t *testing.T) {
	// Minute-level intervals (the paper's default granularity) must also
	// partition the day's activity exactly.
	cfg := DefaultConfig()
	cfg.IntervalsPerDay = 1440
	prof := profileFor(OfficeWorker)
	var total float64
	for i := 0; i < cfg.IntervalsPerDay; i++ {
		w, _ := intervalActivity(prof, cfg, i)
		total += w
	}
	if diff := total - prof.diurnalTotal(); diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("minute resolution loses activity: %v vs %v", total, prof.diurnalTotal())
	}
}
