package cdr

import (
	"fmt"

	"dimatch/internal/pattern"
)

// Generate builds the pattern-level dataset directly from the deterministic
// target attributes — the fast path used by large parameter sweeps. It is
// pinned by test to agree exactly with the full record pipeline
// (GenerateRecords + Extract).
func Generate(cfg Config) (*Dataset, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	d := &Dataset{
		Cfg:    cfg,
		Cells:  layoutCells(cfg),
		locals: make(map[StationID]map[PersonID]pattern.Pattern),
	}
	length := cfg.Length()
	d.Persons = make([]Person, cfg.Persons)
	for id := 0; id < cfg.Persons; id++ {
		person := newPerson(cfg, PersonID(id))
		d.Persons[id] = person
		forEachStationTriple(cfg, person, func(day, interval int, station StationID, t triple) error {
			persons := d.locals[station]
			if persons == nil {
				persons = make(map[PersonID]pattern.Pattern)
				d.locals[station] = persons
			}
			local := persons[person.ID]
			if local == nil {
				local = make(pattern.Pattern, length)
				persons[person.ID] = local
			}
			local[day*cfg.IntervalsPerDay+interval] = t.value()
			return nil
		})
	}
	return d, nil
}

// GenerateRecords builds the full record-level capture: every CDR each base
// station would have logged during the window.
func GenerateRecords(cfg Config) (*RecordSet, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rs := &RecordSet{
		Cfg:     cfg,
		Cells:   layoutCells(cfg),
		Records: make(map[StationID][]CDR),
	}
	rs.Persons = make([]Person, cfg.Persons)
	var synthErr error
	for id := 0; id < cfg.Persons; id++ {
		person := newPerson(cfg, PersonID(id))
		rs.Persons[id] = person
		// The contact pool must cover the largest per-interval partner
		// count; size it to the largest call burst plus jitter headroom.
		contacts := contactPool(cfg, person.ID, maxPartnerPool(cfg, person))
		err := forEachStationTriple(cfg, person, func(day, interval int, station StationID, t triple) error {
			recs, err := synthesizeInterval(cfg, person, station, day, interval, t, contacts)
			if err != nil {
				return err
			}
			rs.Records[station] = append(rs.Records[station], recs...)
			return nil
		})
		if err != nil && synthErr == nil {
			synthErr = err
		}
	}
	if synthErr != nil {
		return nil, synthErr
	}
	return rs, nil
}

// maxPartnerPool bounds the distinct partners any single interval can
// demand for this person.
func maxPartnerPool(cfg Config, p Person) int {
	prof := profileFor(p.Category)
	maxCalls := int64(0)
	for day := 0; day < minInt(cfg.Days, 7); day++ {
		for i := 0; i < cfg.IntervalsPerDay; i++ {
			if t := baseTriple(prof, cfg, day, i); t.calls > maxCalls {
				maxCalls = t.calls
			}
		}
	}
	jitter := cfg.Noise * 2 // outliers double the range
	return int(maxCalls+jitter) + 2
}

// forEachStationTriple walks a person's deterministic target triples in
// (day, interval, station) order, yielding only non-zero station pieces.
// Both generation paths share it, which is what guarantees they agree.
func forEachStationTriple(cfg Config, person Person, yield func(day, interval int, station StationID, t triple) error) error {
	prof := profileFor(person.Category)
	scale := personScale(cfg, person.ID)
	for day := 0; day < cfg.Days; day++ {
		for interval := 0; interval < cfg.IntervalsPerDay; interval++ {
			base := scaleTriple(baseTriple(prof, cfg, day, interval), scale)
			t := personTriple(cfg, person, base, day, interval)
			if t.isZero() {
				continue
			}
			_, fractions := intervalActivity(prof, cfg, interval)
			byRole := personRoleTriples(base, t, fractions, prof.roles)
			byStation := stationTriples(person, byRole)
			// Deterministic station order: ascending IDs.
			for _, st := range sortedStations(byStation) {
				if err := yield(day, interval, st, byStation[st]); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

func sortedStations(m map[StationID]triple) []StationID {
	out := make([]StationID, 0, len(m))
	for s := range m {
		out = append(out, s)
	}
	for i := 1; i < len(out); i++ { // insertion sort: maps here are tiny (<= 4 roles)
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// Extract rebuilds the pattern-level dataset from raw records only — the
// base-station side of the real pipeline ("Base on CDR and CDL, we can get
// the personal communication data (Definition 1) in the base stations").
// Only MobileOriginated records contribute to patterns.
func Extract(rs *RecordSet) (*Dataset, error) {
	cfg := rs.Cfg
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	d := &Dataset{
		Cfg:     cfg,
		Persons: rs.Persons,
		Cells:   rs.Cells,
		locals:  make(map[StationID]map[PersonID]pattern.Pattern),
	}
	length := cfg.Length()
	intervalSec := cfg.intervalMinutes() * 60

	type cell struct {
		calls    int64
		durSec   int64
		partners map[PersonID]bool
	}
	for station, recs := range rs.Records {
		// agg[(person, intervalIdx)] accumulates the three attributes.
		agg := make(map[PersonID]map[int]*cell)
		for _, r := range recs {
			if r.Type != MobileOriginated {
				continue
			}
			if r.Day < 0 || r.Day >= cfg.Days {
				return nil, fmt.Errorf("cdr: record day %d outside window", r.Day)
			}
			intervalOfDay := r.StartSec / intervalSec
			if intervalOfDay < 0 || intervalOfDay >= cfg.IntervalsPerDay {
				return nil, fmt.Errorf("cdr: record start %ds outside day", r.StartSec)
			}
			idx := r.Day*cfg.IntervalsPerDay + intervalOfDay
			byInterval := agg[r.Caller]
			if byInterval == nil {
				byInterval = make(map[int]*cell)
				agg[r.Caller] = byInterval
			}
			c := byInterval[idx]
			if c == nil {
				c = &cell{partners: make(map[PersonID]bool)}
				byInterval[idx] = c
			}
			c.calls++
			c.durSec += int64(r.DurSec)
			c.partners[r.Callee] = true
		}
		persons := make(map[PersonID]pattern.Pattern, len(agg))
		for pid, byInterval := range agg {
			local := make(pattern.Pattern, length)
			for idx, c := range byInterval {
				t := triple{
					calls:    c.calls,
					minutes:  (c.durSec + 30) / 60,
					partners: int64(len(c.partners)),
				}
				local[idx] = t.value()
			}
			persons[pid] = local
		}
		if len(persons) > 0 {
			d.locals[StationID(station)] = persons
		}
	}
	return d, nil
}
