package cdr

import (
	"math"
	"sort"
)

// triple is the integer attribute vector of Definition 1 for one interval:
// number of calls, total call minutes, distinct partners.
type triple struct {
	calls    int64
	minutes  int64
	partners int64
}

func (t triple) isZero() bool { return t.calls == 0 && t.minutes == 0 && t.partners == 0 }

func (t triple) add(o triple) triple {
	return triple{
		calls:    t.calls + o.calls,
		minutes:  t.minutes + o.minutes,
		partners: t.partners + o.partners,
	}
}

// value reduces the triple to the communication-pattern value of
// Definition 1 with equal attribute weights (m = 3, w_f = 1): the rounded
// mean of the three attributes. Integer arithmetic: round(s/3) = ⌊(2s+3)/6⌋
// for s >= 0.
func (t triple) value() int64 {
	s := t.calls + t.minutes + t.partners
	return (2*s + 3) / 6
}

// intervalActivity returns the diurnal weight captured by interval i of a
// day (activity-proportional, before volume scaling) along with the
// role-fraction split of that weight.
func intervalActivity(p profile, cfg Config, interval int) (weight float64, fractions [numRoles]float64) {
	w := cfg.intervalMinutes()
	startMin := interval * w
	endMin := startMin + w
	for h := startMin / 60; h*60 < endMin; h++ {
		lo := maxInt(startMin, h*60)
		hi := minInt(endMin, (h+1)*60)
		portion := float64(hi-lo) / 60 * p.diurnal[h]
		weight += portion
		for r := 0; r < numRoles; r++ {
			fractions[r] += portion * p.location[h][r]
		}
	}
	if weight <= 0 {
		fractions = [numRoles]float64{RoleHome: 1}
		return 0, fractions
	}
	for r := 0; r < numRoles; r++ {
		fractions[r] /= weight
	}
	return weight, fractions
}

// baseTriple returns the deterministic category-level attributes for one
// interval of one day. Day volume is the category's weekday volume, scaled
// by weekendFactor on days 5 and 6 of each week.
func baseTriple(p profile, cfg Config, day, interval int) triple {
	weight, _ := intervalActivity(p, cfg, interval)
	if weight == 0 {
		return triple{}
	}
	volume := p.callsPerDay
	if day%7 >= 5 {
		volume *= p.weekendFactor
	}
	expCalls := volume * weight / p.diurnalTotal()
	calls := int64(math.Round(expCalls))
	if calls == 0 {
		return triple{}
	}
	minutes := int64(math.Round(expCalls * p.minutesPerCall))
	partners := int64(math.Round(expCalls * p.partnerRatio))
	if partners < 1 {
		partners = 1
	}
	if partners > calls {
		partners = calls
	}
	return triple{calls: calls, minutes: minutes, partners: partners}
}

// personScale returns the person's deterministic volume factor, one of
// cfg.VolumeLevels steps of 5% centred on 1.0.
func personScale(cfg Config, id PersonID) float64 {
	if cfg.VolumeLevels <= 1 {
		return 1
	}
	level := mix(cfg.Seed, uint64(id), tagScale) % uint64(cfg.VolumeLevels)
	return 1 + 0.05*(float64(level)-float64(cfg.VolumeLevels-1)/2)
}

// scaleTriple scales attributes by the person's volume factor, preserving
// realizability (an active interval keeps >= 1 call, partners in [1,calls]).
func scaleTriple(t triple, s float64) triple {
	if t.isZero() || s == 1 {
		return t
	}
	out := triple{
		calls:    int64(math.Round(float64(t.calls) * s)),
		minutes:  int64(math.Round(float64(t.minutes) * s)),
		partners: int64(math.Round(float64(t.partners) * s)),
	}
	if out.calls < 1 {
		out.calls = 1
	}
	if out.minutes < 0 {
		out.minutes = 0
	}
	if out.partners < 1 {
		out.partners = 1
	}
	if out.partners > out.calls {
		out.partners = out.calls
	}
	return out
}

// personTriple perturbs the person's (already volume-scaled) base with
// bounded jitter. The invariants partners <= calls and (calls == 0 => all
// zero) are preserved; they are what make record synthesis realizable.
func personTriple(cfg Config, p Person, base triple, day, interval int) triple {
	if base.isZero() {
		return base
	}
	n := cfg.Noise
	if p.Outlier {
		n *= 2
	}
	if n == 0 {
		return base
	}
	d, i := uint64(day), uint64(interval)
	calls := base.calls + boundedInt(mix(cfg.Seed, uint64(p.ID), tagJitterCalls, d, i), -n, n)
	if calls < 1 {
		// An active interval stays active: zeroing it would erase every
		// role piece at once, a far larger perturbation than the jitter
		// bound promises (and than real behaviour suggests — the category
		// curve is the person's routine).
		calls = 1
	}
	minutes := base.minutes + boundedInt(mix(cfg.Seed, uint64(p.ID), tagJitterMinutes, d, i), -n, n)
	if minutes < 0 {
		minutes = 0
	}
	partners := base.partners + boundedInt(mix(cfg.Seed, uint64(p.ID), tagJitterPartners, d, i), -n, n)
	if partners < 1 {
		partners = 1
	}
	if partners > calls {
		partners = calls
	}
	return triple{calls: calls, minutes: minutes, partners: partners}
}

// splitTriple distributes a person's interval attributes over the roles the
// category uses, by largest-remainder allocation of calls (so the role
// pieces sum exactly to the global triple), with minutes and partners
// following the call allocation.
func splitTriple(t triple, fractions [numRoles]float64, roles []Role) map[Role]triple {
	out := make(map[Role]triple, len(roles))
	if t.isZero() || len(roles) == 0 {
		return out
	}
	// Restrict fractions to the category roles and renormalize.
	var total float64
	for _, r := range roles {
		total += fractions[r]
	}
	weights := make([]float64, len(roles))
	if total <= 0 {
		weights[0] = 1
	} else {
		for i, r := range roles {
			weights[i] = fractions[r] / total
		}
	}

	callAlloc := largestRemainder(t.calls, weights)
	// Minutes and partners follow the realized call split.
	callWeights := make([]float64, len(roles))
	for i, c := range callAlloc {
		callWeights[i] = float64(c) / float64(t.calls)
	}
	minAlloc := largestRemainder(t.minutes, callWeights)
	partAlloc := largestRemainder(t.partners, callWeights)

	// Enforce per-role realizability: a zero-call role carries nothing, and
	// a role with calls has between 1 and calls distinct partners. The role
	// pieces — not the intermediate global triple — are the dataset's ground
	// truth, so clamping here keeps synthesis exact without redistribution.
	for i := range roles {
		if callAlloc[i] == 0 {
			minAlloc[i] = 0
			partAlloc[i] = 0
			continue
		}
		if partAlloc[i] > callAlloc[i] {
			partAlloc[i] = callAlloc[i]
		}
		if partAlloc[i] == 0 {
			partAlloc[i] = 1
		}
	}

	for i, r := range roles {
		rt := triple{calls: callAlloc[i], minutes: minAlloc[i], partners: partAlloc[i]}
		if rt.calls == 0 {
			continue
		}
		out[r] = rt
	}
	return out
}

// largestRemainder allocates total into len(weights) integer parts
// proportional to weights, summing exactly to total. Ties go to the lowest
// index for determinism.
func largestRemainder(total int64, weights []float64) []int64 {
	n := len(weights)
	alloc := make([]int64, n)
	if total <= 0 || n == 0 {
		return alloc
	}
	type rem struct {
		idx  int
		frac float64
	}
	rems := make([]rem, n)
	var assigned int64
	for i, w := range weights {
		if w < 0 {
			w = 0
		}
		exact := float64(total) * w
		base := int64(math.Floor(exact))
		alloc[i] = base
		assigned += base
		rems[i] = rem{idx: i, frac: exact - float64(base)}
	}
	sort.Slice(rems, func(a, b int) bool {
		if rems[a].frac != rems[b].frac {
			return rems[a].frac > rems[b].frac
		}
		return rems[a].idx < rems[b].idx
	})
	for i := 0; assigned < total; i++ {
		alloc[rems[i%n].idx]++
		assigned++
	}
	return alloc
}

// personRoleTriples derives a person's per-role attributes for one
// interval: the category's deterministic base split plus the person's
// jitter delta applied entirely to the interval's dominant role.
//
// Splitting the *base* triple (identical for every member of the category)
// and localizing the jitter keeps minor-role locals exactly equal across a
// category — the strong form of the paper's Observation 2 that makes
// ε-banded local matching reliable. Spreading the jitter across roles by
// per-person largest-remainder allocation instead flips single units
// between roles at low-activity intervals, which at small counts is a
// relative perturbation far larger than the jitter itself.
func personRoleTriples(base, jittered triple, fractions [numRoles]float64, roles []Role) map[Role]triple {
	split := splitTriple(base, fractions, roles)
	if len(split) == 0 {
		return split
	}
	delta := triple{
		calls:    jittered.calls - base.calls,
		minutes:  jittered.minutes - base.minutes,
		partners: jittered.partners - base.partners,
	}
	if delta.isZero() {
		return split
	}
	// Dominant role: most base calls, ties to the smallest role index.
	dom := Role(-1)
	var domCalls int64 = -1
	for _, r := range roles {
		t, ok := split[r]
		if !ok {
			continue
		}
		if t.calls > domCalls {
			dom, domCalls = r, t.calls
		}
	}
	t := split[dom].add(delta)
	// Clamp back to realizability.
	if t.calls <= 0 {
		delete(split, dom)
		return split
	}
	if t.minutes < 0 {
		t.minutes = 0
	}
	if t.partners < 1 {
		t.partners = 1
	}
	if t.partners > t.calls {
		t.partners = t.calls
	}
	split[dom] = t
	return split
}

// stationTriples merges a person's per-role pieces into per-station pieces:
// two roles anchored at one station contribute a single aggregated local
// pattern there (the paper's "home and work place in the same base
// station" case).
func stationTriples(p Person, byRole map[Role]triple) map[StationID]triple {
	out := make(map[StationID]triple, len(byRole))
	for role, t := range byRole {
		st := p.Anchors[role]
		out[st] = out[st].add(t)
	}
	return out
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
