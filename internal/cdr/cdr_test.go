package cdr

import (
	"testing"

	"dimatch/internal/pattern"
)

func testConfig() Config {
	cfg := DefaultConfig()
	cfg.Persons = 60
	cfg.Stations = 36
	cfg.Days = 2
	return cfg
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{name: "zero persons", mutate: func(c *Config) { c.Persons = 0 }},
		{name: "zero stations", mutate: func(c *Config) { c.Stations = 0 }},
		{name: "zero days", mutate: func(c *Config) { c.Days = 0 }},
		{name: "zero intervals", mutate: func(c *Config) { c.IntervalsPerDay = 0 }},
		{name: "non-dividing intervals", mutate: func(c *Config) { c.IntervalsPerDay = 7 }},
		{name: "too many intervals", mutate: func(c *Config) { c.IntervalsPerDay = 2000 }},
		{name: "negative noise", mutate: func(c *Config) { c.Noise = -1 }},
		{name: "bad outlier rate", mutate: func(c *Config) { c.OutlierRate = 1.5 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := DefaultConfig()
			tt.mutate(&cfg)
			if err := cfg.Validate(); err == nil {
				t.Fatal("expected validation error")
			}
		})
	}
}

func TestCategoryStrings(t *testing.T) {
	for _, c := range Categories() {
		if c.String() == "" || c.String() == "Category(0)" {
			t.Fatalf("category %d has no name", c)
		}
	}
	if len(Categories()) != numCategories {
		t.Fatal("Categories() incomplete")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := testConfig()
	d1, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(d1.Persons) != len(d2.Persons) {
		t.Fatal("person counts differ")
	}
	for _, p := range d1.Persons {
		g1 := d1.GlobalOf(p.ID)
		g2 := d2.GlobalOf(p.ID)
		if !g1.Equal(g2) {
			t.Fatalf("person %d global differs across runs", p.ID)
		}
	}
	// A different seed must actually change the data.
	cfg.Seed = 999
	d3, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for _, p := range d1.Persons {
		if d1.GlobalOf(p.ID).Equal(d3.GlobalOf(p.ID)) {
			same++
		}
	}
	if same == len(d1.Persons) {
		t.Fatal("seed change did not alter the dataset")
	}
}

func TestRecordPipelineMatchesFastPath(t *testing.T) {
	// DESIGN.md: extract(synthesize(targets)) == targets. The fast path and
	// the record pipeline must produce identical datasets.
	cfg := testConfig()
	fast, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := GenerateRecords(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rs.TotalRecords() == 0 {
		t.Fatal("no records generated")
	}
	extracted, err := Extract(rs)
	if err != nil {
		t.Fatal(err)
	}
	stations1 := fast.StationIDs()
	stations2 := extracted.StationIDs()
	if len(stations1) != len(stations2) {
		t.Fatalf("station counts differ: %d vs %d", len(stations1), len(stations2))
	}
	for _, s := range stations1 {
		l1 := fast.StationLocals(s)
		l2 := extracted.StationLocals(s)
		if len(l1) != len(l2) {
			t.Fatalf("station %d: %d vs %d persons", s, len(l1), len(l2))
		}
		for pid, p1 := range l1 {
			p2, ok := l2[pid]
			if !ok {
				t.Fatalf("station %d lost person %d", s, pid)
			}
			if !p1.Equal(p2) {
				t.Fatalf("station %d person %d: fast %v vs extracted %v", s, pid, p1, p2)
			}
		}
	}
}

func TestEveryPersonHasLocals(t *testing.T) {
	d, err := Generate(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range d.Persons {
		locals := d.LocalsOf(p.ID)
		if len(locals) == 0 {
			t.Fatalf("person %d has no local patterns", p.ID)
		}
		if len(locals) > numRoles {
			t.Fatalf("person %d has %d locals, max %d roles", p.ID, len(locals), numRoles)
		}
		if d.GlobalOf(p.ID).Sum() == 0 {
			t.Fatalf("person %d has zero global activity", p.ID)
		}
		// Locals must sum to the global by construction.
		sum := make(pattern.Pattern, d.Length())
		for _, l := range locals {
			for i, v := range l {
				sum[i] += v
			}
		}
		if !sum.Equal(d.GlobalOf(p.ID)) {
			t.Fatalf("person %d: locals do not sum to global", p.ID)
		}
	}
}

func TestObservation1PeriodicityAndDivisibility(t *testing.T) {
	// Figure 1a / Figure 3: category curves repeat across weekdays, and the
	// accumulated category curves diverge from each other.
	cfg := testConfig()
	cfg.Persons = 120
	d, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n := cfg.IntervalsPerDay
	for _, c := range Categories() {
		mean := d.CategoryMean(c)
		// Periodicity: day-1 and day-2 profiles (both weekdays) are close.
		for i := 0; i < n; i++ {
			d1, d2 := mean[i], mean[n+i]
			if diff := d1 - d2; diff > 3 || diff < -3 {
				t.Fatalf("category %v not periodic at interval %d: %v vs %v", c, i, d1, d2)
			}
		}
	}
	// Divisibility: final accumulated values differ pairwise.
	finals := make(map[Category]float64)
	for _, c := range Categories() {
		mean := d.CategoryMean(c)
		var acc float64
		for _, v := range mean {
			acc += v
		}
		finals[c] = acc
	}
	cats := Categories()
	for i := 0; i < len(cats); i++ {
		for j := i + 1; j < len(cats); j++ {
			a, b := finals[cats[i]], finals[cats[j]]
			if diff := a - b; diff < 4 && diff > -4 {
				t.Fatalf("categories %v and %v accumulate too closely: %v vs %v", cats[i], cats[j], a, b)
			}
		}
	}
}

func TestObservation2WithinCategorySimilarity(t *testing.T) {
	// Within a category, non-outlier persons must have globally similar
	// patterns at a modest ε; and — statistically, per Figure 1b — over 90%
	// of similar-global pairs must share at least one similar local pattern.
	// (Not all: a person whose anchors collapse onto one station has a
	// single merged local that no single-role local resembles; the paper's
	// CDF likewise starts above zero at x=0.)
	cfg := testConfig()
	cfg.Persons = 120
	d, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const eps = 4
	pairs, withSimilarLocal := 0, 0
	for _, c := range Categories() {
		ids := nonOutliers(d, c)
		if len(ids) < 2 {
			continue
		}
		ref := ids[0]
		refGlobal := d.GlobalOf(ref)
		refLocals := d.QueryLocalsOf(ref)
		for _, other := range ids[1:] {
			if !pattern.Similar(refGlobal, d.GlobalOf(other), eps) {
				t.Fatalf("category %v: persons %d and %d not globally similar at ε=%d:\n%v\n%v",
					c, ref, other, eps, refGlobal, d.GlobalOf(other))
			}
			pairs++
			for _, ol := range d.QueryLocalsOf(other) {
				found := false
				for _, rl := range refLocals {
					if pattern.Similar(ol, rl, eps) {
						found = true
						break
					}
				}
				if found {
					withSimilarLocal++
					break
				}
			}
		}
	}
	if pairs == 0 {
		t.Fatal("no similar-global pairs to evaluate")
	}
	if ratio := float64(withSimilarLocal) / float64(pairs); ratio < 0.9 {
		t.Fatalf("only %.0f%% of similar-global pairs share a similar local; paper observes > 90%%", ratio*100)
	}
}

func TestCrossCategoryDissimilarity(t *testing.T) {
	cfg := testConfig()
	d, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const eps = 4
	cats := Categories()
	for i := 0; i < len(cats); i++ {
		idsA := nonOutliers(d, cats[i])
		if len(idsA) == 0 {
			continue
		}
		for j := i + 1; j < len(cats); j++ {
			idsB := nonOutliers(d, cats[j])
			if len(idsB) == 0 {
				continue
			}
			if pattern.Similar(d.GlobalOf(idsA[0]), d.GlobalOf(idsB[0]), eps) {
				t.Fatalf("categories %v and %v produce ε-similar globals", cats[i], cats[j])
			}
		}
	}
}

func nonOutliers(d *Dataset, c Category) []PersonID {
	var out []PersonID
	for _, p := range d.Persons {
		if p.Category == c && !p.Outlier {
			out = append(out, p.ID)
		}
	}
	return out
}

func TestDatasetAccessors(t *testing.T) {
	d, err := Generate(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	p, err := d.PersonByID(0)
	if err != nil || p.ID != 0 {
		t.Fatalf("PersonByID(0) = %+v, %v", p, err)
	}
	if _, err := d.PersonByID(PersonID(len(d.Persons) + 5)); err == nil {
		t.Fatal("expected ErrUnknownPerson")
	}
	total := 0
	for _, c := range Categories() {
		total += len(d.PersonsInCategory(c))
	}
	if total != len(d.Persons) {
		t.Fatalf("category partition covers %d of %d persons", total, len(d.Persons))
	}
	if d.TotalPatternValues() == 0 {
		t.Fatal("no stored pattern values")
	}
	if len(d.StationIDs()) == 0 {
		t.Fatal("no active stations")
	}
	q := d.QueryLocalsOf(0)
	if len(q) == 0 {
		t.Fatal("query locals empty")
	}
}

func TestGenerateRejectsInvalidConfig(t *testing.T) {
	var cfg Config
	if _, err := Generate(cfg); err == nil {
		t.Fatal("expected error")
	}
	if _, err := GenerateRecords(cfg); err == nil {
		t.Fatal("expected error")
	}
}
