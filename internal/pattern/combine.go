package pattern

import (
	"errors"
	"fmt"
	"math/bits"
)

// MaxLocals bounds the number of local patterns a query set may carry.
// Combinations are enumerated as bitmasks over the locals, and the count of
// combinations (2^e - 1) must stay tractable; the paper's scenarios have a
// handful of locals (home, office, shopping, ...), so 20 is generous.
const MaxLocals = 20

// Subset is a bitmask over the local patterns of a query set: bit j selects
// local j. The zero Subset is empty and never a valid combination.
type Subset uint32

// Contains reports whether local j is in the subset.
func (s Subset) Contains(j int) bool { return s&(1<<uint(j)) != 0 }

// Card returns the number of locals in the subset.
func (s Subset) Card() int { return bits.OnesCount32(uint32(s)) }

// Full returns the subset containing all e locals.
func Full(e int) Subset { return Subset(1<<uint(e)) - 1 }

// String renders the subset as e.g. {0,2,3}.
func (s Subset) String() string {
	out := "{"
	first := true
	for j := 0; j < 32; j++ {
		if !s.Contains(j) {
			continue
		}
		if !first {
			out += ","
		}
		out += fmt.Sprint(j)
		first = false
	}
	return out + "}"
}

// EnumerateSubsets returns every non-empty subset mask of e locals, in
// increasing mask order. The count is exactly 2^e - 1, matching the paper's
// Ψ = Σ_{j=1..l} C(l,j) comparison count (Eq. 4).
func EnumerateSubsets(e int) ([]Subset, error) {
	if e <= 0 || e > MaxLocals {
		return nil, fmt.Errorf("pattern: EnumerateSubsets e=%d, want 1..%d", e, MaxLocals)
	}
	out := make([]Subset, 0, (1<<uint(e))-1)
	for m := Subset(1); m < 1<<uint(e); m++ {
		out = append(out, m)
	}
	return out, nil
}

// Combine returns the element-wise sum of the locals selected by mask.
// All locals must share one length and mask must be non-empty and within
// range.
func Combine(locals []Pattern, mask Subset) (Pattern, error) {
	if mask == 0 {
		return nil, errors.New("pattern: Combine with empty subset")
	}
	if int(mask) >= 1<<uint(len(locals)) {
		return nil, fmt.Errorf("pattern: subset %s references locals beyond %d", mask, len(locals))
	}
	var out Pattern
	for j := 0; j < len(locals); j++ {
		if !mask.Contains(j) {
			continue
		}
		if out == nil {
			out = locals[j].Clone()
			continue
		}
		if len(locals[j]) != len(out) {
			return nil, fmt.Errorf("%w: local %d has length %d, want %d", ErrLengthMismatch, j, len(locals[j]), len(out))
		}
		for i, v := range locals[j] {
			out[i] += v
		}
	}
	return out, nil
}

// WeightNumerator returns the exact integer weight numerator of the
// combination selected by mask: the sum of all values of the combined
// pattern, which equals the maximum of its accumulated form. The weight the
// paper assigns is numerator / WeightNumerator(all locals).
//
// Because value sums are additive over disjoint subsets, so are weight
// numerators — the invariant that makes the ranker's "sum of weights == 1"
// test identify correctly partitioned matches.
func WeightNumerator(locals []Pattern, mask Subset) (int64, error) {
	if mask == 0 {
		return 0, errors.New("pattern: WeightNumerator with empty subset")
	}
	if int(mask) >= 1<<uint(len(locals)) {
		return 0, fmt.Errorf("pattern: subset %s references locals beyond %d", mask, len(locals))
	}
	var num int64
	for j := 0; j < len(locals); j++ {
		if mask.Contains(j) {
			num += locals[j].Sum()
		}
	}
	return num, nil
}
