// Package pattern implements the communication-pattern time-series model of
// the paper: integer-valued series (Definition 1 reduces the three call
// attributes to one integer per interval), the accumulation transform
// (Eq. 3), the ε-similarity predicate (Eq. 2), deterministic uniform
// sampling, and subset combination of local patterns with their exact
// integer weights.
package pattern

import (
	"errors"
	"fmt"
)

// Pattern is an integer time series: one value per time interval, in time
// order. The paper works with non-negative integers (call counts, durations,
// partner counts); several transforms below document where that matters.
type Pattern []int64

// ErrLengthMismatch is returned by operations that require equal-length
// patterns.
var ErrLengthMismatch = errors.New("pattern: length mismatch")

// Clone returns a deep copy of p.
func (p Pattern) Clone() Pattern {
	if p == nil {
		return nil
	}
	out := make(Pattern, len(p))
	copy(out, p)
	return out
}

// Equal reports whether p and q have identical length and values.
func (p Pattern) Equal(q Pattern) bool {
	if len(p) != len(q) {
		return false
	}
	for i, v := range p {
		if q[i] != v {
			return false
		}
	}
	return true
}

// Sum returns the sum of all values. For a non-negative pattern this equals
// the maximum of its accumulated form, which is exactly the weight numerator
// the paper assigns to the pattern (see Weight in combine.go).
func (p Pattern) Sum() int64 {
	var s int64
	for _, v := range p {
		s += v
	}
	return s
}

// Max returns the maximum value of p, or 0 for an empty pattern.
func (p Pattern) Max() int64 {
	var m int64
	for i, v := range p {
		if i == 0 || v > m {
			m = v
		}
	}
	return m
}

// IsNonNegative reports whether every value of p is >= 0.
func (p Pattern) IsNonNegative() bool {
	for _, v := range p {
		if v < 0 {
			return false
		}
	}
	return true
}

// Accumulate returns the accumulated form of p per Eq. 3:
// f(0) = p[0], f(g) = f(g-1) + p[g]. The accumulated form of a non-negative
// pattern is monotonically non-decreasing, which is what lets a single value
// carry both magnitude and time-order information.
func (p Pattern) Accumulate() Pattern {
	if len(p) == 0 {
		return nil
	}
	out := make(Pattern, len(p))
	var run int64
	for i, v := range p {
		run += v
		out[i] = run
	}
	return out
}

// Decumulate inverts Accumulate: it recovers the original per-interval
// values from a prefix-sum series.
func (p Pattern) Decumulate() Pattern {
	if len(p) == 0 {
		return nil
	}
	out := make(Pattern, len(p))
	prev := int64(0)
	for i, v := range p {
		out[i] = v - prev
		prev = v
	}
	return out
}

// IsMonotone reports whether p is non-decreasing, the defining shape of an
// accumulated non-negative pattern.
func (p Pattern) IsMonotone() bool {
	for i := 1; i < len(p); i++ {
		if p[i] < p[i-1] {
			return false
		}
	}
	return true
}

// Similar implements Eq. 2: it reports whether |p[t] - q[t]| <= eps for
// every interval t. Patterns of different lengths are never similar.
// eps must be non-negative.
func Similar(p, q Pattern, eps int64) bool {
	if len(p) != len(q) {
		return false
	}
	for i, v := range p {
		d := v - q[i]
		if d < 0 {
			d = -d
		}
		if d > eps {
			return false
		}
	}
	return true
}

// MaxAbsDiff returns the L∞ distance between p and q, the largest
// per-interval absolute difference. It errors on length mismatch.
func MaxAbsDiff(p, q Pattern) (int64, error) {
	if len(p) != len(q) {
		return 0, fmt.Errorf("%w: %d vs %d", ErrLengthMismatch, len(p), len(q))
	}
	var m int64
	for i, v := range p {
		d := v - q[i]
		if d < 0 {
			d = -d
		}
		if d > m {
			m = d
		}
	}
	return m, nil
}

// Add returns the element-wise sum of p and q. It errors on length
// mismatch. Aggregating local patterns into a global one (Vi = Σj Vi,j) is
// repeated element-wise addition.
func Add(p, q Pattern) (Pattern, error) {
	if len(p) != len(q) {
		return nil, fmt.Errorf("%w: %d vs %d", ErrLengthMismatch, len(p), len(q))
	}
	out := make(Pattern, len(p))
	for i, v := range p {
		out[i] = v + q[i]
	}
	return out, nil
}

// SumAll returns the element-wise sum of all patterns. All patterns must
// share one length; SumAll errors otherwise and on an empty input.
func SumAll(patterns []Pattern) (Pattern, error) {
	if len(patterns) == 0 {
		return nil, errors.New("pattern: SumAll of no patterns")
	}
	out := patterns[0].Clone()
	for _, p := range patterns[1:] {
		if len(p) != len(out) {
			return nil, fmt.Errorf("%w: %d vs %d", ErrLengthMismatch, len(p), len(out))
		}
		for i, v := range p {
			out[i] += v
		}
	}
	return out, nil
}

// Normalize returns p scaled so its mean is 1, as float64 values. It is
// used only for plotting-oriented outputs (Figure 1a); the matching pipeline
// never leaves integer space. A zero-sum pattern normalizes to all zeros.
func (p Pattern) Normalize() []float64 {
	out := make([]float64, len(p))
	sum := p.Sum()
	if sum == 0 {
		return out
	}
	mean := float64(sum) / float64(len(p))
	for i, v := range p {
		out[i] = float64(v) / mean
	}
	return out
}
