package pattern

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestAccumulatePaperExamples(t *testing.T) {
	tests := []struct {
		name string
		give Pattern
		want Pattern
	}{
		{name: "paper {1,2,3}", give: Pattern{1, 2, 3}, want: Pattern{1, 3, 6}},
		{name: "paper {3,2,1}", give: Pattern{3, 2, 1}, want: Pattern{3, 5, 6}},
		{name: "empty", give: nil, want: nil},
		{name: "single", give: Pattern{7}, want: Pattern{7}},
		{name: "zeros", give: Pattern{0, 0, 0}, want: Pattern{0, 0, 0}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.give.Accumulate(); !got.Equal(tt.want) {
				t.Fatalf("Accumulate(%v) = %v, want %v", tt.give, got, tt.want)
			}
		})
	}
}

func TestAccumulateDistinguishesPermutations(t *testing.T) {
	// The motivating example: a plain value-set view cannot tell {1,2,3}
	// from {3,2,1}; the accumulated forms differ.
	a := Pattern{1, 2, 3}.Accumulate()
	b := Pattern{3, 2, 1}.Accumulate()
	if a.Equal(b) {
		t.Fatal("accumulated forms of distinct orderings are equal")
	}
}

func TestDecumulateInvertsAccumulate(t *testing.T) {
	f := func(raw []int32) bool {
		p := make(Pattern, len(raw))
		for i, v := range raw {
			p[i] = int64(v)
		}
		return p.Accumulate().Decumulate().Equal(p)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAccumulateMonotoneForNonNegative(t *testing.T) {
	f := func(raw []uint16) bool {
		p := make(Pattern, len(raw))
		for i, v := range raw {
			p[i] = int64(v)
		}
		return p.Accumulate().IsMonotone()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAccumulateMaxEqualsSum(t *testing.T) {
	// For non-negative p, max(Accumulate(p)) == Sum(p): the weight-numerator
	// identity the WBF relies on.
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		p := make(Pattern, len(raw))
		for i, v := range raw {
			p[i] = int64(v)
		}
		return p.Accumulate().Max() == p.Sum()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSimilar(t *testing.T) {
	tests := []struct {
		name string
		p, q Pattern
		eps  int64
		want bool
	}{
		{name: "identical eps 0", p: Pattern{3, 4, 5}, q: Pattern{3, 4, 5}, eps: 0, want: true},
		{name: "off by one within eps", p: Pattern{3, 4, 5}, q: Pattern{4, 3, 5}, eps: 1, want: true},
		{name: "off by one outside eps", p: Pattern{3, 4, 5}, q: Pattern{4, 3, 5}, eps: 0, want: false},
		{name: "length mismatch", p: Pattern{1, 2}, q: Pattern{1, 2, 3}, eps: 10, want: false},
		{name: "empty vs empty", p: nil, q: nil, eps: 0, want: true},
		{name: "one interval violates", p: Pattern{1, 1, 9}, q: Pattern{1, 1, 1}, eps: 2, want: false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Similar(tt.p, tt.q, tt.eps); got != tt.want {
				t.Fatalf("Similar(%v,%v,%d) = %v, want %v", tt.p, tt.q, tt.eps, got, tt.want)
			}
		})
	}
}

func TestSimilarMatchesMaxAbsDiff(t *testing.T) {
	f := func(rawP, rawQ []uint8, eps uint8) bool {
		n := len(rawP)
		if len(rawQ) < n {
			n = len(rawQ)
		}
		p := make(Pattern, n)
		q := make(Pattern, n)
		for i := 0; i < n; i++ {
			p[i], q[i] = int64(rawP[i]), int64(rawQ[i])
		}
		d, err := MaxAbsDiff(p, q)
		if err != nil {
			return false
		}
		return Similar(p, q, int64(eps)) == (d <= int64(eps))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMaxAbsDiffLengthMismatch(t *testing.T) {
	if _, err := MaxAbsDiff(Pattern{1}, Pattern{1, 2}); !errors.Is(err, ErrLengthMismatch) {
		t.Fatalf("err = %v, want ErrLengthMismatch", err)
	}
}

func TestAddAndSumAll(t *testing.T) {
	a := Pattern{1, 2, 3}
	b := Pattern{2, 2, 2}
	got, err := Add(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(Pattern{3, 4, 5}) {
		t.Fatalf("Add = %v, want {3,4,5}", got)
	}
	// The paper's running example: three station pieces aggregate to the
	// query pattern.
	sum, err := SumAll([]Pattern{{1, 1, 1}, {2, 2, 0}, {0, 1, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if !sum.Equal(Pattern{3, 4, 5}) {
		t.Fatalf("SumAll = %v, want {3,4,5}", sum)
	}
	if _, err := Add(Pattern{1}, Pattern{1, 2}); !errors.Is(err, ErrLengthMismatch) {
		t.Fatalf("Add mismatch err = %v", err)
	}
	if _, err := SumAll(nil); err == nil {
		t.Fatal("SumAll(nil) should error")
	}
	if _, err := SumAll([]Pattern{{1}, {1, 2}}); !errors.Is(err, ErrLengthMismatch) {
		t.Fatalf("SumAll mismatch err = %v", err)
	}
}

func TestAddDoesNotAliasInputs(t *testing.T) {
	a := Pattern{1, 2}
	b := Pattern{3, 4}
	got, err := Add(a, b)
	if err != nil {
		t.Fatal(err)
	}
	got[0] = 99
	if a[0] != 1 || b[0] != 3 {
		t.Fatal("Add result aliases an input")
	}
}

func TestCloneIndependence(t *testing.T) {
	p := Pattern{1, 2, 3}
	c := p.Clone()
	c[0] = 42
	if p[0] != 1 {
		t.Fatal("Clone aliases original")
	}
	if Pattern(nil).Clone() != nil {
		t.Fatal("Clone(nil) should be nil")
	}
}

func TestSumMaxNonNegative(t *testing.T) {
	p := Pattern{5, 1, 4}
	if p.Sum() != 10 {
		t.Fatalf("Sum = %d", p.Sum())
	}
	if p.Max() != 5 {
		t.Fatalf("Max = %d", p.Max())
	}
	if Pattern(nil).Max() != 0 {
		t.Fatal("Max(nil) should be 0")
	}
	if !p.IsNonNegative() {
		t.Fatal("IsNonNegative false for non-negative pattern")
	}
	if (Pattern{1, -1}).IsNonNegative() {
		t.Fatal("IsNonNegative true for negative pattern")
	}
	if (Pattern{-5, 3}).Max() != 3 {
		t.Fatal("Max mishandles leading negative")
	}
}

func TestNormalize(t *testing.T) {
	p := Pattern{1, 2, 3}
	norm := p.Normalize()
	// Mean of {1,2,3} is 2, so normalized = {0.5, 1, 1.5}.
	want := []float64{0.5, 1, 1.5}
	for i := range want {
		if math.Abs(norm[i]-want[i]) > 1e-12 {
			t.Fatalf("Normalize[%d] = %v, want %v", i, norm[i], want[i])
		}
	}
	zeros := Pattern{0, 0}.Normalize()
	if zeros[0] != 0 || zeros[1] != 0 {
		t.Fatal("Normalize of zero pattern should be zeros")
	}
}
