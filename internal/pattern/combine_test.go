package pattern

import (
	"testing"
	"testing/quick"
)

func TestEnumerateSubsetsCount(t *testing.T) {
	for e := 1; e <= 10; e++ {
		subs, err := EnumerateSubsets(e)
		if err != nil {
			t.Fatal(err)
		}
		if want := (1 << uint(e)) - 1; len(subs) != want {
			t.Fatalf("e=%d: %d subsets, want %d (= 2^e - 1, Eq. 4)", e, len(subs), want)
		}
		seen := make(map[Subset]bool, len(subs))
		for _, s := range subs {
			if s == 0 {
				t.Fatal("empty subset enumerated")
			}
			if seen[s] {
				t.Fatalf("duplicate subset %s", s)
			}
			seen[s] = true
		}
	}
}

func TestEnumerateSubsetsBounds(t *testing.T) {
	if _, err := EnumerateSubsets(0); err == nil {
		t.Fatal("expected error for e=0")
	}
	if _, err := EnumerateSubsets(MaxLocals + 1); err == nil {
		t.Fatal("expected error for e beyond MaxLocals")
	}
}

func TestSubsetHelpers(t *testing.T) {
	s := Subset(0b101)
	if !s.Contains(0) || s.Contains(1) || !s.Contains(2) {
		t.Fatal("Contains wrong")
	}
	if s.Card() != 2 {
		t.Fatalf("Card = %d", s.Card())
	}
	if Full(3) != 0b111 {
		t.Fatalf("Full(3) = %b", Full(3))
	}
	if got := s.String(); got != "{0,2}" {
		t.Fatalf("String = %q", got)
	}
}

func TestCombinePaperExample(t *testing.T) {
	// Query global {3,4,5} with locals {1,2,3} and {2,2,2}.
	locals := []Pattern{{1, 2, 3}, {2, 2, 2}}
	tests := []struct {
		mask Subset
		want Pattern
	}{
		{mask: 0b01, want: Pattern{1, 2, 3}},
		{mask: 0b10, want: Pattern{2, 2, 2}},
		{mask: 0b11, want: Pattern{3, 4, 5}},
	}
	for _, tt := range tests {
		got, err := Combine(locals, tt.mask)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(tt.want) {
			t.Fatalf("Combine(%s) = %v, want %v", tt.mask, got, tt.want)
		}
	}
}

func TestCombineErrors(t *testing.T) {
	locals := []Pattern{{1, 2}, {1, 2, 3}}
	if _, err := Combine(locals, 0); err == nil {
		t.Fatal("expected error for empty subset")
	}
	if _, err := Combine(locals, 0b100); err == nil {
		t.Fatal("expected error for out-of-range subset")
	}
	if _, err := Combine(locals, 0b11); err == nil {
		t.Fatal("expected length-mismatch error")
	}
}

func TestCombineDoesNotAliasLocals(t *testing.T) {
	locals := []Pattern{{1, 2, 3}}
	got, err := Combine(locals, 0b1)
	if err != nil {
		t.Fatal(err)
	}
	got[0] = 99
	if locals[0][0] != 1 {
		t.Fatal("Combine aliases a local pattern")
	}
}

func TestWeightNumeratorPaperExample(t *testing.T) {
	// Paper: "the weight of a pattern {1,2,3} is 3/9, with respect to the
	// global pattern {4,7,9}" — in accumulated form {1,3,6} has max 6 and
	// the accumulated global {4,11,20} has max 20; but the paper's fraction
	// 3/9 uses the accumulated-form maxima of the ORIGINAL series stated in
	// accumulated terms: {1,2,3} accumulates to max 6 and the global
	// non-accumulated max is 9. We follow the self-consistent rule
	// weight = sum(local)/sum(global), which reproduces the paper's 1/…
	// additivity exactly: sums are 6 and 20 here, and for the worked
	// running example below the weights add to 1.
	locals := []Pattern{{1, 2, 3}, {2, 2, 2}} // global {3,4,5}, sum 12
	w1, err := WeightNumerator(locals, 0b01)
	if err != nil {
		t.Fatal(err)
	}
	w2, err := WeightNumerator(locals, 0b10)
	if err != nil {
		t.Fatal(err)
	}
	wAll, err := WeightNumerator(locals, 0b11)
	if err != nil {
		t.Fatal(err)
	}
	if w1 != 6 || w2 != 6 || wAll != 12 {
		t.Fatalf("numerators = %d,%d,%d, want 6,6,12", w1, w2, wAll)
	}
	if w1+w2 != wAll {
		t.Fatal("weight additivity violated")
	}
}

func TestWeightNumeratorErrors(t *testing.T) {
	locals := []Pattern{{1}}
	if _, err := WeightNumerator(locals, 0); err == nil {
		t.Fatal("expected error for empty subset")
	}
	if _, err := WeightNumerator(locals, 0b10); err == nil {
		t.Fatal("expected error for out-of-range subset")
	}
}

func TestPropertyWeightAdditivity(t *testing.T) {
	// For disjoint subsets S and T, num(S|T) = num(S) + num(T), and the full
	// subset has numerator sum(global). This is invariant #2 of DESIGN.md.
	f := func(vals [4][3]uint8, rawS, rawT uint8) bool {
		locals := make([]Pattern, 4)
		for i := range locals {
			locals[i] = Pattern{int64(vals[i][0]), int64(vals[i][1]), int64(vals[i][2])}
		}
		s := Subset(rawS % 16)
		tt := Subset(rawT % 16)
		if s == 0 || tt == 0 || s&tt != 0 {
			return true // only disjoint non-empty pairs are constrained
		}
		ns, err1 := WeightNumerator(locals, s)
		nt, err2 := WeightNumerator(locals, tt)
		nst, err3 := WeightNumerator(locals, s|tt)
		if err1 != nil || err2 != nil || err3 != nil {
			return false
		}
		if ns+nt != nst {
			return false
		}
		global, err := Combine(locals, Full(4))
		if err != nil {
			return false
		}
		nFull, err := WeightNumerator(locals, Full(4))
		if err != nil {
			return false
		}
		return nFull == global.Sum()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyCombineMatchesSumAll(t *testing.T) {
	f := func(vals [3][4]uint8) bool {
		locals := make([]Pattern, 3)
		for i := range locals {
			locals[i] = Pattern{int64(vals[i][0]), int64(vals[i][1]), int64(vals[i][2]), int64(vals[i][3])}
		}
		combined, err := Combine(locals, Full(3))
		if err != nil {
			return false
		}
		summed, err := SumAll(locals)
		if err != nil {
			return false
		}
		return combined.Equal(summed)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
