package pattern

import "fmt"

// SampleIndexes returns b deterministic, evenly spaced sample positions for
// a pattern of the given length, always including the last position (the
// maximum of an accumulated pattern, which carries the pattern's weight
// numerator).
//
// Determinism matters: the data center hashes sampled query values into the
// filter and base stations hash sampled data values against it, so both
// sides must pick identical positions. The paper calls this "uniform
// sampling" of b values (Algorithm 1, line 6).
//
// If b >= length every index is returned. b and length must be positive.
func SampleIndexes(length, b int) ([]int, error) {
	if length <= 0 {
		return nil, fmt.Errorf("pattern: SampleIndexes length %d, want > 0", length)
	}
	if b <= 0 {
		return nil, fmt.Errorf("pattern: SampleIndexes b %d, want > 0", b)
	}
	if b >= length {
		idx := make([]int, length)
		for i := range idx {
			idx[i] = i
		}
		return idx, nil
	}
	idx := make([]int, b)
	// Evenly spaced: position j maps to round((j+1)*length/b) - 1, which
	// lands the final sample exactly on length-1.
	for j := 0; j < b; j++ {
		idx[j] = (j+1)*length/b - 1
	}
	// Spacing guarantees strict monotonicity for b < length except when the
	// integer grid collides; deduplicate defensively while preserving order.
	out := idx[:1]
	for _, v := range idx[1:] {
		if v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out, nil
}

// SampleAt extracts the values of p at the given indexes. Indexes must be
// valid positions in p.
func (p Pattern) SampleAt(indexes []int) ([]int64, error) {
	out := make([]int64, len(indexes))
	for i, idx := range indexes {
		if idx < 0 || idx >= len(p) {
			return nil, fmt.Errorf("pattern: sample index %d out of range [0,%d)", idx, len(p))
		}
		out[i] = p[idx]
	}
	return out, nil
}
