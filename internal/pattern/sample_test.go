package pattern

import (
	"testing"
	"testing/quick"
)

func TestSampleIndexesBasic(t *testing.T) {
	tests := []struct {
		name   string
		length int
		b      int
		want   []int
	}{
		{name: "b divides length", length: 12, b: 4, want: []int{2, 5, 8, 11}},
		{name: "b equals length", length: 5, b: 5, want: []int{0, 1, 2, 3, 4}},
		{name: "b exceeds length", length: 3, b: 10, want: []int{0, 1, 2}},
		{name: "single sample is last", length: 9, b: 1, want: []int{8}},
		{name: "length 1", length: 1, b: 4, want: []int{0}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := SampleIndexes(tt.length, tt.b)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(tt.want) {
				t.Fatalf("got %v, want %v", got, tt.want)
			}
			for i := range got {
				if got[i] != tt.want[i] {
					t.Fatalf("got %v, want %v", got, tt.want)
				}
			}
		})
	}
}

func TestSampleIndexesErrors(t *testing.T) {
	if _, err := SampleIndexes(0, 3); err == nil {
		t.Fatal("expected error for zero length")
	}
	if _, err := SampleIndexes(5, 0); err == nil {
		t.Fatal("expected error for zero b")
	}
	if _, err := SampleIndexes(-1, -1); err == nil {
		t.Fatal("expected error for negative inputs")
	}
}

func TestSampleIndexesProperties(t *testing.T) {
	f := func(rawLen, rawB uint8) bool {
		length := int(rawLen)%200 + 1
		b := int(rawB)%32 + 1
		idx, err := SampleIndexes(length, b)
		if err != nil {
			return false
		}
		// Last position always sampled: it carries the accumulated maximum.
		if idx[len(idx)-1] != length-1 {
			return false
		}
		// Strictly increasing and in range.
		for i, v := range idx {
			if v < 0 || v >= length {
				return false
			}
			if i > 0 && v <= idx[i-1] {
				return false
			}
		}
		// Never more samples than requested or than available.
		return len(idx) <= b && len(idx) <= length
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSampleIndexesDeterministic(t *testing.T) {
	a, err := SampleIndexes(97, 12)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SampleIndexes(97, 12)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("SampleIndexes is not deterministic")
		}
	}
}

func TestSampleAt(t *testing.T) {
	p := Pattern{10, 20, 30, 40}
	got, err := p.SampleAt([]int{0, 3})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 10 || got[1] != 40 {
		t.Fatalf("SampleAt = %v", got)
	}
	if _, err := p.SampleAt([]int{4}); err == nil {
		t.Fatal("expected out-of-range error")
	}
	if _, err := p.SampleAt([]int{-1}); err == nil {
		t.Fatal("expected out-of-range error")
	}
}
