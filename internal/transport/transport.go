// Package transport moves wire messages between the data center and base
// stations. Two implementations share one interface: an in-process pipe for
// simulations (a goroutine per station, as the paper used a thread per
// station) and a TCP transport for genuinely distributed deployments.
//
// Both implementations serialize every message through the wire codec, so
// the in-process simulation measures exactly the bytes a network deployment
// would move — the communication-cost experiments depend on that.
package transport

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"dimatch/internal/wire"
)

// ErrClosed is returned by operations on a closed link.
var ErrClosed = errors.New("transport: link closed")

// Link is one end of a bidirectional, ordered message pipe.
type Link interface {
	// Send transmits one message. It is safe for one goroutine at a time.
	Send(m wire.Message) error
	// Recv blocks until a message arrives or the link closes.
	Recv() (wire.Message, error)
	// Close releases the link; pending and future Recv calls fail.
	Close() error
}

// Meter counts traffic crossing a set of links. All methods are safe for
// concurrent use.
type Meter struct {
	bytes    atomic.Uint64
	messages atomic.Uint64
}

// Add records one message of the given encoded size.
func (m *Meter) Add(size int) {
	if m == nil {
		return
	}
	m.bytes.Add(uint64(size))
	m.messages.Add(1)
}

// Bytes returns the total encoded bytes recorded.
func (m *Meter) Bytes() uint64 {
	if m == nil {
		return 0
	}
	return m.bytes.Load()
}

// Messages returns the number of messages recorded.
func (m *Meter) Messages() uint64 {
	if m == nil {
		return 0
	}
	return m.messages.Load()
}

// Reset zeroes the counters.
func (m *Meter) Reset() {
	if m == nil {
		return
	}
	m.bytes.Store(0)
	m.messages.Store(0)
}

// chanLink is the in-process implementation: frames flow through buffered
// byte channels and are re-decoded on receipt, exercising the same codec
// path as TCP.
type chanLink struct {
	out   chan<- []byte
	in    <-chan []byte
	meter *Meter // meters this end's sends

	closeOnce sync.Once
	done      chan struct{}
	peerDone  <-chan struct{}
}

// Pipe returns the two ends of an in-process link. Sends from the first end
// are recorded on meterA, sends from the second on meterB (either may be
// nil). Separate meters let the cluster report dissemination (center→
// stations) and reporting (stations→center) traffic independently.
func Pipe(meterA, meterB *Meter) (Link, Link) {
	const depth = 16 // small buffer decouples request fan-out from replies
	ab := make(chan []byte, depth)
	ba := make(chan []byte, depth)
	aDone := make(chan struct{})
	bDone := make(chan struct{})
	a := &chanLink{out: ab, in: ba, meter: meterA, done: aDone, peerDone: bDone}
	b := &chanLink{out: ba, in: ab, meter: meterB, done: bDone, peerDone: aDone}
	return a, b
}

func (l *chanLink) Send(m wire.Message) error {
	frame := m.Encode()
	// Check for closure first: the combined select below would otherwise be
	// free to pick the buffered send even on a link already closed.
	select {
	case <-l.done:
		return ErrClosed
	case <-l.peerDone:
		return ErrClosed
	default:
	}
	select {
	case <-l.done:
		return ErrClosed
	case <-l.peerDone:
		return ErrClosed
	case l.out <- frame:
		l.meter.Add(len(frame))
		return nil
	}
}

func (l *chanLink) Recv() (wire.Message, error) {
	select {
	case <-l.done:
		return wire.Message{}, ErrClosed
	case frame := <-l.in:
		if frame == nil {
			return wire.Message{}, ErrClosed
		}
		m, err := wire.Decode(frame)
		if err != nil {
			return wire.Message{}, fmt.Errorf("transport: %w", err)
		}
		return m, nil
	case <-l.peerDone:
		// Drain anything the peer sent before closing.
		select {
		case frame := <-l.in:
			if frame != nil {
				m, err := wire.Decode(frame)
				if err != nil {
					return wire.Message{}, fmt.Errorf("transport: %w", err)
				}
				return m, nil
			}
		default:
		}
		return wire.Message{}, ErrClosed
	}
}

func (l *chanLink) Close() error {
	l.closeOnce.Do(func() { close(l.done) })
	return nil
}
